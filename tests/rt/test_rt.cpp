#include <gtest/gtest.h>

#include "nodetr/models/zoo.hpp"
#include "nodetr/nn/attention.hpp"
#include "nodetr/rt/board.hpp"
#include "nodetr/tensor/ops.hpp"

namespace rt = nodetr::rt;
namespace hls = nodetr::hls;
namespace m = nodetr::models;
namespace nt = nodetr::tensor;
namespace fx = nodetr::fx;

TEST(Ddr, WriteReadRoundTrip) {
  rt::DdrMemory ddr(1 << 20);
  nt::Rng rng(1);
  auto t = rng.randn(nt::Shape{4, 5});
  ddr.write_tensor(0x1000, t);
  auto u = ddr.read_tensor(0x1000, nt::Shape{4, 5});
  EXPECT_TRUE(nt::allclose(u, t, 0.0f, 0.0f));
}

TEST(Ddr, OutOfRangeAccessThrows) {
  rt::DdrMemory ddr(1024);
  nt::Tensor t(nt::Shape{1024});
  EXPECT_THROW(ddr.write_tensor(512, t), std::out_of_range);
  EXPECT_THROW(ddr.read_tensor(1020, nt::Shape{2}), std::out_of_range);
}

TEST(Dma, TransferCyclesModel) {
  // setup + ceil(bytes/4) beats.
  EXPECT_EQ(rt::AxiStreamDma::transfer_cycles(0), 120);
  EXPECT_EQ(rt::AxiStreamDma::transfer_cycles(4), 121);
  EXPECT_EQ(rt::AxiStreamDma::transfer_cycles(6), 122);
  EXPECT_EQ(rt::AxiStreamDma::transfer_cycles(4000), 120 + 1000);
  rt::AxiStreamDma dma;
  dma.transfer(400);
  dma.transfer(400);
  EXPECT_EQ(dma.total_cycles(), 2 * (120 + 100));
  dma.reset();
  EXPECT_EQ(dma.total_cycles(), 0);
}

TEST(AxiLite, RegistersAndHooks) {
  rt::AxiLiteRegisterFile regs;
  EXPECT_EQ(regs.read(0x10), 0u);  // unwritten registers read zero
  regs.write(0x10, 42);
  EXPECT_EQ(regs.read(0x10), 42u);
  int fired = 0;
  regs.on_write(0x00, [&](std::uint32_t v) { fired += static_cast<int>(v); });
  regs.write(0x00, 3);
  EXPECT_EQ(fired, 3);
}

namespace {

std::unique_ptr<m::OdeNet> tiny_proposed(nt::Rng& rng) {
  auto mod = m::make_model(m::ModelKind::kTinyProposed, 32, 10, rng);
  return std::unique_ptr<m::OdeNet>(static_cast<m::OdeNet*>(mod.release()));
}

}  // namespace

TEST(Accelerator, DriverSequenceMatchesDirectIp) {
  nt::Rng rng(2);
  auto model = tiny_proposed(rng);
  model->train(false);
  auto& mhsa = model->mhsa_block()->mhsa();
  const auto& mc = mhsa.config();
  hls::MhsaDesignPoint point;
  point.dim = mc.dim;
  point.height = mc.height;
  point.width = mc.width;
  point.heads = mc.heads;
  point.dtype = hls::DataType::kFloat32;
  rt::DdrMemory ddr;
  rt::MhsaAccelerator accel(
      std::make_unique<hls::MhsaIpCore>(point, hls::MhsaWeights::from_module(mhsa)), ddr);
  auto x = rng.randn(nt::Shape{2, mc.dim, mc.height, mc.width});
  auto via_driver = accel.execute(x);
  hls::MhsaIpCore direct(point, hls::MhsaWeights::from_module(mhsa));
  EXPECT_TRUE(nt::allclose(via_driver, direct.run(x), 1e-5f, 1e-6f));
  // Cycles include DMA on top of the IP compute.
  EXPECT_GT(accel.last_cycles(), direct.last_cycles().total());
  EXPECT_EQ(accel.regs().read(rt::MhsaRegs::kStatus), 1u);
}

TEST(Accelerator, RejectsInputMismatchingDesignPoint) {
  nt::Rng rng(8);
  auto model = tiny_proposed(rng);
  auto& mhsa = model->mhsa_block()->mhsa();
  const auto& mc = mhsa.config();
  hls::MhsaDesignPoint point;
  point.dim = mc.dim;
  point.height = mc.height;
  point.width = mc.width;
  point.heads = mc.heads;
  point.dtype = hls::DataType::kFloat32;
  rt::DdrMemory ddr;
  rt::MhsaAccelerator accel(
      std::make_unique<hls::MhsaIpCore>(point, hls::MhsaWeights::from_module(mhsa)), ddr);
  EXPECT_THROW((void)accel.execute(rng.randn(nt::Shape{1, mc.dim + 1, mc.height, mc.width})),
               std::invalid_argument);
  EXPECT_THROW((void)accel.execute(rng.randn(nt::Shape{mc.dim, mc.height, mc.width})),
               std::invalid_argument);
}

TEST(Accelerator, BatchRegisterMismatchingStagedShapeThrows) {
  // Regression: START used to trust the BATCH register blindly, so a driver
  // that staged B images but programmed a different batch silently read a
  // mis-sized tensor out of DDR.
  nt::Rng rng(9);
  auto model = tiny_proposed(rng);
  auto& mhsa = model->mhsa_block()->mhsa();
  const auto& mc = mhsa.config();
  hls::MhsaDesignPoint point;
  point.dim = mc.dim;
  point.height = mc.height;
  point.width = mc.width;
  point.heads = mc.heads;
  point.dtype = hls::DataType::kFloat32;
  rt::DdrMemory ddr;
  rt::MhsaAccelerator accel(
      std::make_unique<hls::MhsaIpCore>(point, hls::MhsaWeights::from_module(mhsa)), ddr);
  auto x = rng.randn(nt::Shape{2, mc.dim, mc.height, mc.width});
  (void)accel.execute(x);  // stages a 2-image batch
  accel.regs().write(rt::MhsaRegs::kBatch, 5);
  EXPECT_THROW(accel.regs().write(rt::MhsaRegs::kCtrl, 1), std::invalid_argument);
  accel.regs().write(rt::MhsaRegs::kBatch, 0);
  EXPECT_THROW(accel.regs().write(rt::MhsaRegs::kCtrl, 1), std::invalid_argument);
  // Restoring the staged batch makes START valid again.
  accel.regs().write(rt::MhsaRegs::kBatch, 2);
  accel.regs().write(rt::MhsaRegs::kCtrl, 1);
  EXPECT_EQ(accel.regs().read(rt::MhsaRegs::kStatus), 1u);
}

TEST(Accelerator, BatchResidentWeightsAmortizeDmaAndStreaming) {
  nt::Rng rng(10);
  auto model = tiny_proposed(rng);
  auto& mhsa = model->mhsa_block()->mhsa();
  const auto& mc = mhsa.config();
  hls::MhsaDesignPoint point;
  point.dim = mc.dim;
  point.height = mc.height;
  point.width = mc.width;
  point.heads = mc.heads;
  point.dtype = hls::DataType::kFloat32;
  auto weights = hls::MhsaWeights::from_module(mhsa);
  auto x = rng.randn(nt::Shape{4, mc.dim, mc.height, mc.width});

  rt::DdrMemory ddr_seq;
  rt::MhsaAccelerator per_image(std::make_unique<hls::MhsaIpCore>(point, weights), ddr_seq);
  auto y_seq = per_image.execute(x);
  const auto cycles_per_image = per_image.last_cycles();

  point.residency = hls::WeightResidency::kBatchResident;
  rt::DdrMemory ddr_res;
  rt::MhsaAccelerator resident(std::make_unique<hls::MhsaIpCore>(point, weights), ddr_res);
  auto y_res = resident.execute(x);
  const auto cycles_resident = resident.last_cycles();

  // Identical numerics, strictly fewer simulated cycles at batch > 1.
  EXPECT_TRUE(nt::allclose(y_res, y_seq, 0.0f, 0.0f));
  EXPECT_LT(cycles_resident, cycles_per_image);
}

TEST(Accelerator, QuantizedWeightWireShrinksBatchResidentDma) {
  nt::Rng rng(11);
  // LayerNorm params always ride at full width, so the clean >= 3.5x gate
  // geometry is an LN-free MHSA; with LN the ratio dips below 3.5 only for
  // very small dims (2D/3D² extra float words).
  nodetr::nn::MhsaConfig mc;
  mc.layer_norm_out = false;
  nodetr::nn::MultiHeadSelfAttention mhsa(mc, rng);
  mhsa.train(false);
  hls::MhsaDesignPoint point;
  point.dim = mc.dim;
  point.height = mc.height;
  point.width = mc.width;
  point.heads = mc.heads;
  point.dtype = hls::DataType::kFloat32;
  point.residency = hls::WeightResidency::kBatchResident;
  auto weights = hls::MhsaWeights::from_module(mhsa);
  auto x = rng.randn(nt::Shape{4, mc.dim, mc.height, mc.width});

  rt::DdrMemory ddr_f;
  rt::MhsaAccelerator word32(std::make_unique<hls::MhsaIpCore>(point, weights), ddr_f);
  auto y_f = word32.execute(x);

  point.wire = hls::WeightWire::kBlockInt8;
  rt::DdrMemory ddr_q;
  rt::MhsaAccelerator quant(std::make_unique<hls::MhsaIpCore>(point, weights), ddr_q);
  auto y_q = quant.execute(x);

  const auto& cf = word32.counters();
  const auto& cq = quant.counters();
  // The acceptance gate: the int8 wire moves >= 3.5x fewer weight bytes.
  EXPECT_GE(static_cast<double>(cf.weight_bytes) / static_cast<double>(cq.weight_bytes), 3.5);
  // Both report the same logical float weight size; word32 streams exactly it.
  EXPECT_EQ(cf.weight_bytes_float, cq.weight_bytes_float);
  EXPECT_EQ(cf.weight_bytes, cf.weight_bytes_float);
  // Satellite regression: bytes_saved under batch residency is counted in
  // *streamed* (wire) bytes, so the quantized wire's avoided re-streams are
  // proportionally smaller too.
  EXPECT_EQ(cf.weight_bytes_saved, cf.weight_bytes * 3);
  EXPECT_EQ(cq.weight_bytes_saved, cq.weight_bytes * 3);
  // Less data on the bus -> fewer DMA cycles end to end.
  EXPECT_LT(cq.dma_cycles, cf.dma_cycles);
  EXPECT_LT(cq.dma_bytes_in, cf.dma_bytes_in);
  // The quantized wire degrades the weights but must stay close (int8 block
  // round-trip on well-scaled projection weights).
  EXPECT_LT(nt::max_abs_diff(y_q, y_f), 0.5f);
}

TEST(Accelerator, Int4WireCompressesHarderThanInt8) {
  nt::Rng rng(12);
  auto model = tiny_proposed(rng);
  auto& mhsa = model->mhsa_block()->mhsa();
  const auto& mc = mhsa.config();
  hls::MhsaDesignPoint point;
  point.dim = mc.dim;
  point.height = mc.height;
  point.width = mc.width;
  point.heads = mc.heads;
  point.dtype = hls::DataType::kFloat32;
  auto weights = hls::MhsaWeights::from_module(mhsa);
  point.wire = hls::WeightWire::kBlockInt8;
  hls::MhsaIpCore ip8(point, weights);
  point.wire = hls::WeightWire::kBlockInt4;
  hls::MhsaIpCore ip4(point, weights);
  EXPECT_LT(ip4.weight_dma_bytes(), ip8.weight_dma_bytes());
  EXPECT_EQ(ip8.weight_float_bytes(), ip4.weight_float_bytes());
}

TEST(Offload, FloatOffloadPreservesLogits) {
  nt::Rng rng(3);
  auto model = tiny_proposed(rng);
  model->train(false);
  auto x = rng.rand(nt::Shape{2, 3, 32, 32});
  auto sw = model->forward(x);
  rt::OffloadedModel offload(*model, hls::DataType::kFloat32);
  auto hw = offload.forward(x);
  EXPECT_TRUE(nt::allclose(hw, sw, 1e-3f, 1e-4f));
  EXPECT_GT(offload.last_timing().pl_ms, 0.0);
  EXPECT_GT(offload.last_timing().ps_ms, 0.0);
}

TEST(Offload, FixedOffloadCloseToFloat) {
  nt::Rng rng(4);
  auto model = tiny_proposed(rng);
  model->train(false);
  auto x = rng.rand(nt::Shape{1, 3, 32, 32});
  auto sw = model->forward(x);
  rt::OffloadedModel offload(*model, hls::DataType::kFixed, fx::scheme_32_24());
  auto hw = offload.forward(x);
  // 32(16)-24(8): no accuracy degradation expected (Table VIII).
  EXPECT_LT(nt::max_abs_diff(hw, sw), 0.05f);
}

TEST(Offload, FixedIpIsFasterThanFloatIpOnPaperPoint) {
  // Timing comes from the cycle model, which is data-type independent in
  // compute but the fixed IP enables a deeper unroll in the paper; at equal
  // unroll the cycles match, so assert DMA+cycles are identical and rely on
  // resource/power for the fixed-vs-float contrast instead.
  nt::Rng rng(5);
  auto model = tiny_proposed(rng);
  model->train(false);
  auto x = rng.rand(nt::Shape{1, 3, 32, 32});
  rt::OffloadedModel f32(*model, hls::DataType::kFloat32);
  (void)f32.forward(x);
  const double pl_float = f32.last_timing().pl_ms;
  EXPECT_GT(pl_float, 0.0);
}

TEST(Offload, DestructorRestoresSoftwarePath) {
  nt::Rng rng(6);
  auto model = tiny_proposed(rng);
  model->train(false);
  auto x = rng.rand(nt::Shape{1, 3, 32, 32});
  auto before = model->forward(x);
  {
    rt::OffloadedModel offload(*model, hls::DataType::kFloat32);
    (void)offload.forward(x);
    EXPECT_TRUE(model->mhsa_block()->mhsa().has_forward_override());
  }
  EXPECT_FALSE(model->mhsa_block()->mhsa().has_forward_override());
  EXPECT_TRUE(nt::allclose(model->forward(x), before, 1e-5f, 1e-6f));
}

TEST(Offload, RejectsModelWithoutMhsa) {
  nt::Rng rng(7);
  auto plain = m::make_model(m::ModelKind::kTinyOdeNet, 32, 10, rng);
  auto* ode = static_cast<m::OdeNet*>(plain.get());
  EXPECT_THROW(rt::OffloadedModel(*ode, hls::DataType::kFloat32), std::invalid_argument);
}

TEST(TimingStats, Summarize) {
  auto s = rt::summarize({10.0, 12.0, 14.0});
  EXPECT_DOUBLE_EQ(s.mean_ms, 12.0);
  EXPECT_DOUBLE_EQ(s.max_ms, 14.0);
  EXPECT_NEAR(s.stddev_ms, std::sqrt(8.0 / 3.0), 1e-9);
  auto e = rt::summarize({});
  EXPECT_EQ(e.mean_ms, 0.0);
}
