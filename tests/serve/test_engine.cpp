// InferenceEngine and RequestQueue behaviour under concurrency: backpressure,
// N concurrent producers, clean shutdown draining in-flight requests, and
// exactly-once future fulfilment.
#include <gtest/gtest.h>

#include <thread>

#include "nodetr/nn/attention.hpp"
#include "nodetr/serve/serve.hpp"
#include "nodetr/tensor/ops.hpp"

namespace serve = nodetr::serve;
namespace hls = nodetr::hls;
namespace nn = nodetr::nn;
namespace nt = nodetr::tensor;
namespace fx = nodetr::fx;
using nt::index_t;

namespace {

serve::RequestPtr dummy_request(std::uint64_t id) {
  auto r = std::make_shared<serve::Request>();
  r->id = id;
  r->input = nt::Tensor(nt::Shape{1, 2, 1, 2});
  r->enqueued_at = std::chrono::steady_clock::now();
  return r;
}

struct EngineFixture {
  nt::Rng rng{7};
  nn::MhsaConfig cfg;
  std::unique_ptr<nn::MultiHeadSelfAttention> mhsa;
  hls::MhsaDesignPoint point;

  EngineFixture() {
    cfg.dim = 16;
    cfg.heads = 2;
    cfg.height = 4;
    cfg.width = 4;
    mhsa = std::make_unique<nn::MultiHeadSelfAttention>(cfg, rng);
    mhsa->train(false);
    point.dim = cfg.dim;
    point.height = cfg.height;
    point.width = cfg.width;
    point.heads = cfg.heads;
    point.scheme = fx::scheme_32_24();
  }

  [[nodiscard]] hls::MhsaWeights weights() { return hls::MhsaWeights::from_module(*mhsa); }

  [[nodiscard]] serve::EngineConfig config(serve::Backend backend, std::size_t workers,
                                           std::size_t capacity) {
    serve::EngineConfig c;
    c.point = point;
    c.backend = backend;
    c.workers = workers;
    c.queue_capacity = capacity;
    return c;
  }
};

}  // namespace

// ---------------------------------------------------------------- queue ----

TEST(RequestQueue, RejectPolicyReportsFullAtCapacity) {
  serve::RequestQueue q(2, serve::BackpressurePolicy::kReject);
  EXPECT_EQ(q.push(dummy_request(0)), serve::PushResult::kOk);
  EXPECT_EQ(q.push(dummy_request(1)), serve::PushResult::kOk);
  EXPECT_EQ(q.push(dummy_request(2)), serve::PushResult::kFull);
  (void)q.try_pop();
  EXPECT_EQ(q.push(dummy_request(3)), serve::PushResult::kOk);
}

TEST(RequestQueue, BlockPolicyWaitsForSpace) {
  serve::RequestQueue q(1, serve::BackpressurePolicy::kBlock);
  ASSERT_EQ(q.push(dummy_request(0)), serve::PushResult::kOk);
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_EQ(q.push(dummy_request(1)), serve::PushResult::kOk);
    pushed.store(true);
  });
  // The producer must be blocked until we pop.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  auto r = q.pop();
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->id, 0u);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.size(), 1u);
}

TEST(RequestQueue, CloseDrainsQueuedItemsThenReturnsNull) {
  serve::RequestQueue q(4, serve::BackpressurePolicy::kBlock);
  ASSERT_EQ(q.push(dummy_request(0)), serve::PushResult::kOk);
  ASSERT_EQ(q.push(dummy_request(1)), serve::PushResult::kOk);
  q.close();
  EXPECT_EQ(q.push(dummy_request(2)), serve::PushResult::kClosed);
  EXPECT_NE(q.pop(), nullptr);
  EXPECT_NE(q.pop(), nullptr);
  EXPECT_EQ(q.pop(), nullptr);  // closed and drained — no blocking
}

TEST(RequestQueue, CloseUnblocksBlockedProducer) {
  serve::RequestQueue q(1, serve::BackpressurePolicy::kBlock);
  ASSERT_EQ(q.push(dummy_request(0)), serve::PushResult::kOk);
  std::thread producer([&] { EXPECT_EQ(q.push(dummy_request(1)), serve::PushResult::kClosed); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  producer.join();
}

// --------------------------------------------------------------- engine ----

TEST(Engine, ConcurrentProducersEveryFutureFulfilledExactlyOnce) {
  EngineFixture fx_;
  constexpr int kProducers = 6;
  constexpr int kPerProducer = 20;
  serve::InferenceEngine engine(fx_.config(serve::Backend::kFpgaFloat, 2, 8), fx_.weights());

  hls::MhsaDesignPoint p = fx_.point;
  p.dtype = hls::DataType::kFloat32;
  hls::MhsaIpCore reference(p, fx_.weights());

  struct Slot {
    nt::Tensor input;
    std::future<nt::Tensor> future;
  };
  std::vector<std::vector<Slot>> slots(kProducers);
  std::vector<std::thread> producers;
  std::mutex rng_mu;  // Rng is not thread-safe; inputs are drawn under a lock
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      for (int i = 0; i < kPerProducer; ++i) {
        nt::Tensor x;
        {
          std::lock_guard lk(rng_mu);
          const index_t rows = 1 + (t + i) % 3;
          x = fx_.rng.rand(nt::Shape{rows, fx_.cfg.dim, fx_.cfg.height, fx_.cfg.width});
        }
        auto f = engine.submit(x);  // kBlock: never rejects, may wait
        slots[t].push_back({std::move(x), std::move(f)});
      }
    });
  }
  for (auto& t : producers) t.join();

  std::uint64_t total_rows = 0;
  for (auto& per_producer : slots) {
    ASSERT_EQ(per_producer.size(), static_cast<std::size_t>(kPerProducer));
    for (auto& slot : per_producer) {
      auto y = slot.future.get();  // throws if the future was lost or doubled
      total_rows += static_cast<std::uint64_t>(slot.input.dim(0));
      EXPECT_TRUE(nt::allclose(y, reference.run(slot.input), 0.0f, 0.0f));
    }
  }

  const auto stats = engine.stats();
  EXPECT_EQ(stats.submitted, static_cast<std::uint64_t>(kProducers * kPerProducer));
  EXPECT_EQ(stats.completed, stats.submitted);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.rows, total_rows);
  EXPECT_GE(stats.batches, 1u);
  EXPECT_GT(stats.sim_cycles, 0);
  EXPECT_LE(stats.occupancy(engine.config().batcher.max_batch), 1.0);
}

TEST(EngineQuant, CpuQuantMatchesDirectQuantizedIpBitwise) {
  // The kCpuQuant replica must run the fixed datapath on int8-block-degraded
  // weights — exactly what a standalone MhsaIpCore at the same design point
  // (kFixed dtype, kBlockInt8 wire) computes.
  EngineFixture fx_;
  auto x = fx_.rng.rand(nt::Shape{2, fx_.cfg.dim, fx_.cfg.height, fx_.cfg.width});
  nt::Tensor served;
  {
    serve::InferenceEngine engine(fx_.config(serve::Backend::kCpuQuant, 1, 8), fx_.weights());
    served = engine.submit(x).get();
  }
  hls::MhsaDesignPoint point = fx_.point;
  point.dtype = hls::DataType::kFixed;
  point.wire = hls::WeightWire::kBlockInt8;
  hls::MhsaIpCore direct(point, fx_.weights());
  EXPECT_TRUE(nt::allclose(served, direct.run(x), 0.0f, 0.0f));
}

TEST(EngineQuant, CpuQuantStaysCloseToFloatBackend) {
  // Accuracy contract for the quantized backend: int8-wire weights + the
  // 32(16)/24(8) fixed scheme serve within tight tolerance of float.
  EngineFixture fx_;
  auto x = fx_.rng.rand(nt::Shape{1, fx_.cfg.dim, fx_.cfg.height, fx_.cfg.width});
  nt::Tensor y_float, y_quant;
  {
    serve::InferenceEngine engine(fx_.config(serve::Backend::kCpuFloat, 1, 8), fx_.weights());
    y_float = engine.submit(x).get();
  }
  {
    serve::InferenceEngine engine(fx_.config(serve::Backend::kCpuQuant, 1, 8), fx_.weights());
    y_quant = engine.submit(x).get();
  }
  EXPECT_LT(nt::max_abs_diff(y_quant, y_float), 0.5f);
  auto stats_name = serve::to_string(serve::Backend::kCpuQuant);
  EXPECT_STREQ(stats_name, "cpu_quant");
}

TEST(EngineQuant, MixedWorkerBackendsServeConcurrently) {
  EngineFixture fx_;
  serve::EngineConfig config = fx_.config(serve::Backend::kCpuFloat, 2, 32);
  config.worker_backends = {serve::Backend::kCpuFloat, serve::Backend::kCpuQuant};
  serve::InferenceEngine engine(config, fx_.weights());
  std::vector<std::future<nt::Tensor>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(
        engine.submit(fx_.rng.rand(nt::Shape{1, fx_.cfg.dim, fx_.cfg.height, fx_.cfg.width})));
  }
  for (auto& f : futures) EXPECT_EQ(f.get().dim(0), 1);
  engine.shutdown();
  EXPECT_EQ(engine.stats().completed, 16u);
  EXPECT_EQ(engine.stats().failed, 0u);
}

TEST(Engine, ShutdownDrainsInFlightThenRejectsNewWork) {
  EngineFixture fx_;
  serve::InferenceEngine engine(fx_.config(serve::Backend::kFpgaFloat, 2, 64), fx_.weights());
  std::vector<std::future<nt::Tensor>> futures;
  for (int i = 0; i < 30; ++i) {
    futures.push_back(
        engine.submit(fx_.rng.rand(nt::Shape{1, fx_.cfg.dim, fx_.cfg.height, fx_.cfg.width})));
  }
  engine.shutdown();
  for (auto& f : futures) {
    auto y = f.get();  // every accepted request must still complete
    EXPECT_EQ(y.dim(0), 1);
  }
  EXPECT_EQ(engine.stats().completed, 30u);
  EXPECT_THROW(
      (void)engine.submit(nt::Tensor(nt::Shape{1, fx_.cfg.dim, fx_.cfg.height, fx_.cfg.width})),
      std::runtime_error);
  engine.shutdown();  // idempotent
}

TEST(Engine, DestructorDrainsOutstandingFutures) {
  EngineFixture fx_;
  std::vector<std::future<nt::Tensor>> futures;
  {
    serve::InferenceEngine engine(fx_.config(serve::Backend::kCpuFloat, 2, 32), fx_.weights());
    for (int i = 0; i < 12; ++i) {
      futures.push_back(
          engine.submit(fx_.rng.rand(nt::Shape{2, fx_.cfg.dim, fx_.cfg.height, fx_.cfg.width})));
    }
  }
  for (auto& f : futures) EXPECT_EQ(f.get().dim(0), 2);
}

TEST(Engine, RejectPolicySurfacesQueueFullError) {
  EngineFixture fx_;
  serve::EngineConfig config = fx_.config(serve::Backend::kCpuFloat, 1, 1);
  config.policy = serve::BackpressurePolicy::kReject;
  config.batcher.max_batch = 2;
  config.batcher.max_wait_us = 0;
  serve::InferenceEngine engine(config, fx_.weights());
  // Pin the single worker on a long request: once popped, its remaining rows
  // are carried worker-locally, so the queue is not polled again until all
  // 256 micro-batches are done — plenty of time to overfill the 1-slot queue.
  auto big = engine.submit(
      fx_.rng.rand(nt::Shape{512, fx_.cfg.dim, fx_.cfg.height, fx_.cfg.width}));
  while (engine.stats().batches == 0) std::this_thread::yield();
  auto filler = engine.submit(
      fx_.rng.rand(nt::Shape{1, fx_.cfg.dim, fx_.cfg.height, fx_.cfg.width}));
  EXPECT_THROW(
      (void)engine.submit(
          fx_.rng.rand(nt::Shape{1, fx_.cfg.dim, fx_.cfg.height, fx_.cfg.width})),
      serve::QueueFullError);
  EXPECT_EQ(engine.stats().rejected, 1u);
  EXPECT_EQ(big.get().dim(0), 512);
  EXPECT_EQ(filler.get().dim(0), 1);  // accepted requests still complete
}

TEST(Engine, ZeroRowRequestResolvesImmediately) {
  EngineFixture fx_;
  serve::InferenceEngine engine(fx_.config(serve::Backend::kCpuFloat, 1, 4), fx_.weights());
  auto f = engine.submit(nt::Tensor(nt::Shape{0, fx_.cfg.dim, fx_.cfg.height, fx_.cfg.width}));
  ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(f.get().dim(0), 0);
}

TEST(Engine, RejectsMismatchedGeometryAndBadConfig) {
  EngineFixture fx_;
  serve::InferenceEngine engine(fx_.config(serve::Backend::kCpuFloat, 1, 4), fx_.weights());
  EXPECT_THROW((void)engine.submit(nt::Tensor(nt::Shape{1, 8, 4, 4})), std::invalid_argument);
  EXPECT_THROW((void)engine.submit(nt::Tensor(nt::Shape{16})), std::invalid_argument);

  serve::EngineConfig bad = fx_.config(serve::Backend::kCpuFloat, 0, 4);
  EXPECT_THROW(serve::InferenceEngine(bad, fx_.weights()), std::invalid_argument);
  bad = fx_.config(serve::Backend::kCpuFloat, 2, 4);
  bad.worker_backends = {serve::Backend::kCpuFloat};  // 1 entry, 2 workers
  EXPECT_THROW(serve::InferenceEngine(bad, fx_.weights()), std::invalid_argument);
}

TEST(Engine, SplitRequestYieldsFullBatchesAndExactStats) {
  EngineFixture fx_;
  serve::EngineConfig config = fx_.config(serve::Backend::kFpgaFloat, 1, 4);
  config.batcher.max_batch = 8;
  config.batcher.max_wait_us = 0;
  serve::InferenceEngine engine(config, fx_.weights());
  auto x = fx_.rng.rand(nt::Shape{16, fx_.cfg.dim, fx_.cfg.height, fx_.cfg.width});
  auto y = engine.submit(x).get();
  EXPECT_EQ(y.dim(0), 16);
  const auto stats = engine.stats();
  // One 16-row request at max_batch 8 splits into exactly two full batches.
  EXPECT_EQ(stats.batches, 2u);
  EXPECT_EQ(stats.rows, 16u);
  EXPECT_DOUBLE_EQ(stats.occupancy(config.batcher.max_batch), 1.0);
}

TEST(Engine, MixedFloatWorkerBackendsStayBitwiseExact) {
  EngineFixture fx_;
  serve::EngineConfig config = fx_.config(serve::Backend::kFpgaFloat, 2, 16);
  config.worker_backends = {serve::Backend::kCpuFloat, serve::Backend::kFpgaFloat};
  serve::InferenceEngine engine(config, fx_.weights());
  hls::MhsaDesignPoint p = fx_.point;
  p.dtype = hls::DataType::kFloat32;
  hls::MhsaIpCore reference(p, fx_.weights());
  std::vector<nt::Tensor> xs;
  std::vector<std::future<nt::Tensor>> futures;
  for (int i = 0; i < 10; ++i) {
    xs.push_back(fx_.rng.rand(nt::Shape{1 + i % 3, fx_.cfg.dim, fx_.cfg.height, fx_.cfg.width}));
    futures.push_back(engine.submit(xs.back()));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    EXPECT_TRUE(nt::allclose(futures[i].get(), reference.run(xs[i]), 0.0f, 0.0f))
        << "request " << i;
  }
}
