// ClusterRouter unit and property tests: the dispatch decision is a pure,
// deterministic argmin over tracked state, so every invariant here is checked
// without an engine — breaker eligibility, cost-model arithmetic, pending
// accounting, EWMA adaptation, and a 1000-seed randomized state sweep.
#include <gtest/gtest.h>

#include <random>

#include "nodetr/serve/router.hpp"

namespace serve = nodetr::serve;
using serve::ClusterRouter;
using serve::RouterConfig;
using Seed = ClusterRouter::DeviceSeed;
using Clock = ClusterRouter::Clock;

namespace {

ClusterRouter make_router(std::size_t n, RouterConfig cfg = {}) {
  std::vector<Seed> seeds;
  for (std::size_t i = 0; i < n; ++i) {
    seeds.push_back(Seed{"dev" + std::to_string(i), 1.0});
  }
  return ClusterRouter(std::move(seeds), cfg);
}

}  // namespace

TEST(Router, ConstructorValidatesConfig) {
  EXPECT_THROW(ClusterRouter({}, RouterConfig{}), std::invalid_argument);
  RouterConfig bad_alpha;
  bad_alpha.ewma_alpha = 0.0;
  EXPECT_THROW(ClusterRouter({Seed{"d", 1.0}}, bad_alpha), std::invalid_argument);
  bad_alpha.ewma_alpha = 1.5;
  EXPECT_THROW(ClusterRouter({Seed{"d", 1.0}}, bad_alpha), std::invalid_argument);
  RouterConfig bad_penalty;
  bad_penalty.queue_penalty_us = -1.0;
  EXPECT_THROW(ClusterRouter({Seed{"d", 1.0}}, bad_penalty), std::invalid_argument);
}

TEST(Router, TieBreaksToLowestIndexDeterministically) {
  auto router = make_router(4);
  const auto now = Clock::now();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(router.pick(2, now), 0u);  // identical state -> identical pick
  }
}

TEST(Router, CostModelMatchesDocumentedFormula) {
  RouterConfig cfg;
  cfg.queue_penalty_us = 25.0;
  ClusterRouter router({Seed{"a", 3.0}, Seed{"b", 5.0}}, cfg);
  router.on_dispatch(0, 4);  // a: 4 pending rows, 1 pending request
  // cost(a, 2) = 3.0 * (4 + 2) + 25.0 * 1 = 43; cost(b, 2) = 5.0 * 2 = 10.
  EXPECT_DOUBLE_EQ(router.cost_us(0, 2), 43.0);
  EXPECT_DOUBLE_EQ(router.cost_us(1, 2), 10.0);
  EXPECT_EQ(router.pick(2), 1u);
}

TEST(Router, PicksLeastLoadedAsDispatchesAccumulate) {
  auto router = make_router(3);
  // Round-robin emerges from the cost model itself when devices are equal.
  const auto now = Clock::now();
  const std::size_t first = router.pick(1, now);
  router.on_dispatch(first, 1);
  const std::size_t second = router.pick(1, now);
  router.on_dispatch(second, 1);
  const std::size_t third = router.pick(1, now);
  EXPECT_EQ(first, 0u);
  EXPECT_EQ(second, 1u);
  EXPECT_EQ(third, 2u);
}

TEST(Router, ResolvedReleasesPendingLoad) {
  auto router = make_router(2);
  router.on_dispatch(0, 8);
  EXPECT_EQ(router.pending_rows(0), 8);
  EXPECT_EQ(router.pending_requests(0), 1);
  EXPECT_EQ(router.pending_requests_total(), 1);
  router.on_resolved(0, 8);
  EXPECT_EQ(router.pending_rows(0), 0);
  EXPECT_EQ(router.pending_requests(0), 0);
  EXPECT_EQ(router.pending_requests_total(), 0);
}

TEST(Router, NeverPicksOpenDeviceWhileAClosedOneExists) {
  auto router = make_router(2);
  const auto now = Clock::now();
  router.on_breaker_open(0, 1'000'000, now);  // 1 s cooldown
  EXPECT_TRUE(router.breaker_open(0));
  // dev0 would win every tie, but it is mid-cooldown.
  for (int i = 0; i < 20; ++i) {
    const std::size_t d = router.pick(1, now);
    EXPECT_EQ(d, 1u);
    router.on_dispatch(d, 1);
  }
}

TEST(Router, OpenDeviceBecomesRoutableAfterCooldownForProbe) {
  auto router = make_router(2);
  const auto now = Clock::now();
  router.on_breaker_open(0, 1'000, now);  // 1 ms cooldown
  EXPECT_EQ(router.pick(1, now), 1u);
  // Past the cooldown the open device is eligible again (half-open probe
  // traffic); with equal costs the tie-break returns it.
  EXPECT_EQ(router.pick(1, now + std::chrono::milliseconds(2)), 0u);
  router.on_breaker_close(0);
  EXPECT_FALSE(router.breaker_open(0));
  EXPECT_EQ(router.pick(1, now), 0u);
}

TEST(Router, AllOpenMidCooldownStillRoutesToCheapest) {
  ClusterRouter router({Seed{"a", 9.0}, Seed{"b", 2.0}}, RouterConfig{});
  const auto now = Clock::now();
  router.on_breaker_open(0, 1'000'000, now);
  router.on_breaker_open(1, 1'000'000, now);
  EXPECT_EQ(router.pick(1, now), 1u);  // cheapest, despite being open
}

TEST(Router, LostDeviceIsNeverRoutedAgain) {
  auto router = make_router(2);
  router.on_device_lost(0);
  EXPECT_TRUE(router.lost(0));
  const auto now = Clock::now();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(router.pick(1, now), 1u);
    router.on_dispatch(1, 1);
  }
  // Even once the survivor's breaker opens, a lost device stays out.
  router.on_breaker_open(1, 1'000'000, now);
  EXPECT_EQ(router.pick(1, now), 1u);
}

TEST(Router, ObserveFoldsEwma) {
  RouterConfig cfg;
  cfg.ewma_alpha = 0.5;
  ClusterRouter router({Seed{"a", 1.0}}, cfg);
  router.observe(0, 3.0);
  EXPECT_DOUBLE_EQ(router.us_per_row(0), 2.0);  // 1 + 0.5 * (3 - 1)
  router.observe(0, 2.0);
  EXPECT_DOUBLE_EQ(router.us_per_row(0), 2.0);
  router.observe(0, 0.0);  // non-positive samples are ignored
  EXPECT_DOUBLE_EQ(router.us_per_row(0), 2.0);
}

TEST(Router, RebalancesWithinFewBatchesAfterTenfoldSlowdown) {
  auto router = make_router(2);
  const auto now = Clock::now();
  ASSERT_EQ(router.pick(4, now), 0u);  // healthy tie -> dev0
  // dev0 starts delivering 10x its seeded cost (simulated throttling). The
  // EWMA must make it the expensive choice within a handful of batches.
  int batches_until_rebalance = 0;
  for (; batches_until_rebalance < 10; ++batches_until_rebalance) {
    if (router.pick(4, now) != 0u) break;
    router.observe(0, 10.0);
  }
  EXPECT_LE(batches_until_rebalance, 3);
  EXPECT_EQ(router.pick(4, now), 1u);
  EXPECT_GT(router.us_per_row(0), router.us_per_row(1));
}

// 1000-seed property sweep: random fleet sizes, costs, loads, breaker and
// lost states. Invariants:
//   (1) pick() is deterministic (same state, same now -> same device);
//   (2) a lost device is never picked while any live device exists;
//   (3) an open device mid-cooldown is never picked while an eligible
//       (closed, or cooldown-elapsed) live device exists;
//   (4) among eligible devices the pick is the cost argmin, lowest index.
TEST(RouterProperty, RandomizedStateSweepHoldsInvariants) {
  for (std::uint64_t seed = 0; seed < 1000; ++seed) {
    std::mt19937_64 rng(seed);
    const std::size_t n = 1 + rng() % 8;
    RouterConfig cfg;
    cfg.queue_penalty_us = static_cast<double>(rng() % 100);
    std::vector<Seed> seeds;
    for (std::size_t i = 0; i < n; ++i) {
      seeds.push_back(Seed{"dev" + std::to_string(i),
                           1.0 + static_cast<double>(rng() % 1000) / 100.0});
    }
    ClusterRouter router(std::move(seeds), cfg);
    const auto now = Clock::now();
    std::vector<bool> lost(n, false), open_waiting(n, false), eligible(n, true);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::uint64_t d = rng() % 4; d > 0; --d) {
        router.on_dispatch(i, 1 + static_cast<nodetr::tensor::index_t>(rng() % 8));
      }
      const std::uint64_t state = rng() % 4;
      if (state == 1) {
        router.on_breaker_open(i, 10'000'000, now);  // cooldown still running
        open_waiting[i] = true;
        eligible[i] = false;
      } else if (state == 2) {
        router.on_breaker_open(i, 0, now - std::chrono::seconds(1));  // elapsed
      } else if (state == 3) {
        router.on_device_lost(i);
        lost[i] = true;
        eligible[i] = false;
      }
    }
    const nodetr::tensor::index_t rows = 1 + static_cast<nodetr::tensor::index_t>(rng() % 8);
    const std::size_t picked = router.pick(rows, now);
    ASSERT_LT(picked, n) << "seed " << seed;
    EXPECT_EQ(picked, router.pick(rows, now)) << "seed " << seed;  // (1)

    bool any_live = false, any_eligible = false;
    for (std::size_t i = 0; i < n; ++i) {
      any_live = any_live || !lost[i];
      any_eligible = any_eligible || (eligible[i] && !lost[i]);
    }
    if (any_live) {
      EXPECT_FALSE(lost[picked]) << "seed " << seed;  // (2)
    }
    if (any_eligible) {
      EXPECT_FALSE(open_waiting[picked]) << "seed " << seed;  // (3)
      std::size_t best = ClusterRouter::kNone;
      double best_cost = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        if (lost[i] || open_waiting[i]) continue;
        const double c = router.cost_us(i, rows);
        if (best == ClusterRouter::kNone || c < best_cost) {
          best = i;
          best_cost = c;
        }
      }
      EXPECT_EQ(picked, best) << "seed " << seed;  // (4)
    }
  }
}
