// Differential timeline tests for observability v2: every request that goes
// through the engine must leave a complete, ordered flight-recorder timeline
// — across batch split/merge, retry, worker crash + requeue, and shed — and
// the same identity must be traceable in the Chrome trace via flow events.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <future>
#include <vector>

#include "nodetr/fault/fault.hpp"
#include "nodetr/nn/attention.hpp"
#include "nodetr/obs/obs.hpp"
#include "nodetr/serve/serve.hpp"
#include "nodetr/tensor/ops.hpp"

namespace serve = nodetr::serve;
namespace fault = nodetr::fault;
namespace hls = nodetr::hls;
namespace nn = nodetr::nn;
namespace nt = nodetr::tensor;
namespace obs = nodetr::obs;
namespace fx = nodetr::fx;
using nt::index_t;

namespace {

/// Position of the first event of `kind` in a ts-ordered timeline, or -1.
int index_of(const std::vector<obs::FlightEvent>& tl, obs::FlightKind kind) {
  for (std::size_t i = 0; i < tl.size(); ++i) {
    if (tl[i].kind == kind) return static_cast<int>(i);
  }
  return -1;
}

int count_of(const std::vector<obs::FlightEvent>& tl, obs::FlightKind kind) {
  return static_cast<int>(std::count_if(tl.begin(), tl.end(), [&](const obs::FlightEvent& e) {
    return e.kind == kind;
  }));
}

/// Asserts the canonical happy-path order: submit -> enqueued -> dequeued ->
/// batch-join -> exec-begin -> exec-end -> completed. Extra events (retries,
/// carries) may interleave; the canonical ones must exist and be ordered.
void expect_complete_timeline(const std::vector<obs::FlightEvent>& tl, std::uint64_t id) {
  const int submit = index_of(tl, obs::FlightKind::kSubmit);
  const int enq = index_of(tl, obs::FlightKind::kEnqueued);
  const int deq = index_of(tl, obs::FlightKind::kDequeued);
  const int join = index_of(tl, obs::FlightKind::kBatchJoin);
  const int begin = index_of(tl, obs::FlightKind::kExecBegin);
  const int end = index_of(tl, obs::FlightKind::kExecEnd);
  const int done = index_of(tl, obs::FlightKind::kCompleted);
  EXPECT_GE(submit, 0) << "trace " << id << " missing kSubmit";
  EXPECT_GT(enq, submit) << "trace " << id;
  // kEnqueued is recorded by the submitter after push() returns, so a fast
  // worker may record kDequeued first — both are ordered against kSubmit,
  // not against each other.
  EXPECT_GT(deq, submit) << "trace " << id;
  EXPECT_GT(join, deq) << "trace " << id;
  EXPECT_GT(begin, join) << "trace " << id;
  EXPECT_GT(end, begin) << "trace " << id;
  EXPECT_GT(done, end) << "trace " << id;
  // Timeline events all carry the queried id and are ts-ordered.
  for (const auto& e : tl) EXPECT_EQ(e.trace_id, id);
  for (std::size_t i = 1; i < tl.size(); ++i) EXPECT_LE(tl[i - 1].ts_ns, tl[i].ts_ns);
}

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto& inj = fault::Injector::instance();
    inj.reset();
    inj.seed(0x5eedf417u);
    obs::FlightRecorder::instance().clear();
    obs::FlightRecorder::instance().set_enabled(true);
    cfg_.dim = 16;
    cfg_.heads = 2;
    cfg_.height = 4;
    cfg_.width = 4;
    mhsa_ = std::make_unique<nn::MultiHeadSelfAttention>(cfg_, rng_);
    mhsa_->train(false);
    point_.dim = cfg_.dim;
    point_.height = cfg_.height;
    point_.width = cfg_.width;
    point_.heads = cfg_.heads;
    point_.scheme = fx::scheme_32_24();
  }

  void TearDown() override {
    fault::Injector::instance().reset();
    obs::FlightRecorder::instance().set_dump_path("");
    obs::FlightRecorder::instance().clear();
  }

  [[nodiscard]] hls::MhsaWeights weights() { return hls::MhsaWeights::from_module(*mhsa_); }

  [[nodiscard]] serve::EngineConfig config(serve::Backend backend, std::size_t workers = 1) {
    serve::EngineConfig c;
    c.point = point_;
    c.backend = backend;
    c.workers = workers;
    c.queue_capacity = 64;
    c.fault.backoff_us = 10;
    c.fault.max_backoff_us = 100;
    return c;
  }

  [[nodiscard]] nt::Tensor input(index_t rows = 1) {
    return rng_.rand(nt::Shape{rows, point_.dim, point_.height, point_.width});
  }

  nt::Rng rng_{7};
  nn::MhsaConfig cfg_;
  std::unique_ptr<nn::MultiHeadSelfAttention> mhsa_;
  hls::MhsaDesignPoint point_;
};

}  // namespace

// Every request leaves the full submit→…→completed chain, with no event
// borrowed from a neighbouring request (differential: N requests in flight).
TEST_F(TraceTest, EveryRequestTimelineCompleteAndOrdered) {
  serve::InferenceEngine engine(config(serve::Backend::kCpuFloat, 2), weights());
  constexpr int kRequests = 12;
  std::vector<std::future<nt::Tensor>> futures;
  for (int i = 0; i < kRequests; ++i) {
    serve::SubmitOptions opts;
    opts.trace_id = 1000 + static_cast<std::uint64_t>(i);
    futures.push_back(engine.submit(input(), opts));
  }
  for (auto& f : futures) (void)f.get();
  engine.shutdown();  // quiesce workers before reading the rings

  auto& flight = obs::FlightRecorder::instance();
  for (int i = 0; i < kRequests; ++i) {
    const std::uint64_t id = 1000 + static_cast<std::uint64_t>(i);
    expect_complete_timeline(flight.events_for(id), id);
  }
  const serve::EngineStats stats = engine.stats();
  EXPECT_EQ(stats.completed, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(stats.slo.window_completed, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(stats.slo.goodput, 1.0);
  EXPECT_FALSE(stats.slo.breached());
}

// A request wider than max_batch is split across micro-batches: its timeline
// must show the carry and *multiple* batch joins, yet exactly one completion.
TEST_F(TraceTest, SplitRequestCarriesAcrossBatchesOnce) {
  serve::EngineConfig c = config(serve::Backend::kCpuFloat, 1);
  c.batcher.max_batch = 2;
  c.batcher.max_wait_us = 0;
  serve::InferenceEngine engine(c, weights());
  serve::SubmitOptions opts;
  opts.trace_id = 7001;
  auto f = engine.submit(input(/*rows=*/5), opts);  // 5 rows over batches of 2
  (void)f.get();
  engine.shutdown();

  const auto tl = obs::FlightRecorder::instance().events_for(7001);
  expect_complete_timeline(tl, 7001);
  EXPECT_GE(count_of(tl, obs::FlightKind::kCarried), 2);   // 5 rows = 3 batches
  EXPECT_GE(count_of(tl, obs::FlightKind::kBatchJoin), 3);
  EXPECT_EQ(count_of(tl, obs::FlightKind::kCompleted), 1);
}

// A transient device fault shows up as kRetry between exec-begin events, and
// the request still completes.
TEST_F(TraceTest, RetryEventsRecordedOnTransientFault) {
  fault::Injector::instance().arm("rt.dma.error", fault::Schedule::once(0));
  serve::InferenceEngine engine(config(serve::Backend::kFpgaFloat, 1), weights());
  serve::SubmitOptions opts;
  opts.trace_id = 7010;
  auto f = engine.submit(input(), opts);
  (void)f.get();
  engine.shutdown();

  const auto tl = obs::FlightRecorder::instance().events_for(7010);
  expect_complete_timeline(tl, 7010);
  EXPECT_GE(count_of(tl, obs::FlightKind::kRetry), 1);
  EXPECT_GE(count_of(tl, obs::FlightKind::kExecBegin), 2);  // failed + retried
}

// A worker crash requeues untouched requests (kRequeued) and auto-dumps the
// merged timeline; the dump file must contain the crashed request's trace.
TEST_F(TraceTest, WorkerCrashDumpContainsRequeuedTimeline) {
  const std::string dump_path = ::testing::TempDir() + "nodetr_flight_crash.txt";
  std::remove(dump_path.c_str());
  auto& flight = obs::FlightRecorder::instance();
  flight.set_dump_path(dump_path);
  const std::uint64_t dumps_before = flight.dump_count();

  fault::Injector::instance().arm("serve.worker_crash", fault::Schedule::once(0));
  serve::InferenceEngine engine(config(serve::Backend::kCpuFloat, 1), weights());
  std::vector<std::future<nt::Tensor>> futures;
  for (int i = 0; i < 6; ++i) {
    serve::SubmitOptions opts;
    opts.trace_id = 7100 + static_cast<std::uint64_t>(i);
    futures.push_back(engine.submit(input(), opts));
  }
  for (auto& f : futures) (void)f.get();  // crash is between batches: all served
  engine.shutdown();

  EXPECT_GE(engine.stats().respawns, 1u);
  EXPECT_GT(flight.dump_count(), dumps_before);
  // At least one request was salvaged back into the queue...
  int requeued = 0;
  for (int i = 0; i < 6; ++i) {
    const auto tl = flight.events_for(7100 + static_cast<std::uint64_t>(i));
    expect_complete_timeline(tl, 7100 + static_cast<std::uint64_t>(i));
    requeued += count_of(tl, obs::FlightKind::kRequeued) > 0 ? 1 : 0;
  }
  EXPECT_GE(requeued, 1);
  // ...and the on-disk dump names the crash and carries our trace ids.
  std::ifstream in(dump_path);
  ASSERT_TRUE(in.good()) << "no flight dump at " << dump_path;
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("worker_crash"), std::string::npos);
  EXPECT_NE(text.find("7100"), std::string::npos);
  std::remove(dump_path.c_str());
}

// Queue-full rejection is visible as kRejected; the id never reaches exec.
TEST_F(TraceTest, RejectedRequestLeavesRejectedEvent) {
  serve::EngineConfig c = config(serve::Backend::kCpuFloat, 1);
  c.policy = serve::BackpressurePolicy::kReject;
  c.queue_capacity = 1;
  c.batcher.max_batch = 2;
  serve::InferenceEngine engine(c, weights());
  std::vector<std::future<nt::Tensor>> futures;
  // A 64-row request keeps the single worker busy for 32 micro-batches; the
  // capacity-1 queue must overflow for one of the singles submitted behind it.
  futures.push_back(engine.submit(input(/*rows=*/64)));
  bool saw_reject = false;
  for (int i = 0; i < 8 && !saw_reject; ++i) {
    serve::SubmitOptions opts;
    opts.trace_id = 7200 + static_cast<std::uint64_t>(i);
    try {
      futures.push_back(engine.submit(input(), opts));
    } catch (const serve::QueueFullError&) {
      saw_reject = true;
      const auto tl = obs::FlightRecorder::instance().events_for(opts.trace_id);
      EXPECT_GE(index_of(tl, obs::FlightKind::kRejected), 0);
      EXPECT_EQ(index_of(tl, obs::FlightKind::kExecBegin), -1);
    }
  }
  engine.shutdown();
  for (auto& f : futures) (void)f.get();
  EXPECT_TRUE(saw_reject);
}

// The same identity is visible in the Chrome trace as s/t/f flow events, so
// Perfetto can draw one request as a clickable arrow chain.
TEST_F(TraceTest, FlowEventsLinkSubmitToCompletion) {
  auto& tracer = obs::Tracer::instance();
  tracer.clear();
  tracer.set_enabled(true);
  serve::InferenceEngine engine(config(serve::Backend::kCpuFloat, 1), weights());
  serve::SubmitOptions opts;
  opts.trace_id = 7300;
  (void)engine.submit(input(), opts).get();
  engine.shutdown();
  tracer.set_enabled(false);

  const auto flows = tracer.flow_snapshot();
  int starts = 0, steps = 0, ends = 0;
  for (const auto& f : flows) {
    if (f.id != 7300) continue;
    starts += f.phase == 's' ? 1 : 0;
    steps += f.phase == 't' ? 1 : 0;
    ends += f.phase == 'f' ? 1 : 0;
  }
  EXPECT_EQ(starts, 1);
  EXPECT_GE(steps, 1);
  EXPECT_EQ(ends, 1);
  // And the exported JSON carries the flow phases with the binding flag.
  const std::string json = tracer.chrome_trace_json();
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"id\":7300"), std::string::npos);
  tracer.clear();
}

// Device counters surface per backend in stats(): DMA traffic, stall cycles
// (via an injected IP stall), weight bytes saved by batch residency.
TEST_F(TraceTest, DeviceCountersSurfaceInStats) {
  serve::EngineConfig c = config(serve::Backend::kFpgaFixed, 1);
  c.batcher.max_batch = 4;
  c.batcher.max_wait_us = 20'000;  // linger long enough to form real batches
  serve::InferenceEngine engine(c, weights());
  std::vector<std::future<nt::Tensor>> futures;
  for (int i = 0; i < 8; ++i) futures.push_back(engine.submit(input(2)));
  for (auto& f : futures) (void)f.get();
  engine.shutdown();

  const serve::EngineStats stats = engine.stats();
  ASSERT_EQ(stats.devices.count("fpga_fixed"), 1u);
  const auto& d = stats.devices.at("fpga_fixed");
  EXPECT_GT(d.starts, 0u);
  EXPECT_GT(d.dma_bytes_in, 0u);
  EXPECT_GT(d.dma_bytes_out, 0u);
  EXPECT_GT(d.weight_bytes_saved, 0u);  // multi-row batches keep weights resident
  EXPECT_GT(d.compute_cycles, 0u);
  EXPECT_GT(d.utilization_pct(), 0.0);
  EXPECT_LE(d.utilization_pct(), 100.0);
}

TEST_F(TraceTest, StallCyclesAccountedOnDeadline) {
  serve::EngineConfig c = config(serve::Backend::kFpgaFloat, 1);
  fault::Injector::instance().arm("hls.ip.stall", fault::Schedule::once(0));
  serve::InferenceEngine engine(c, weights());
  (void)engine.submit(input()).get();  // stall -> deadline -> retry succeeds
  engine.shutdown();

  const serve::EngineStats stats = engine.stats();
  ASSERT_EQ(stats.devices.count("fpga_float"), 1u);
  EXPECT_GT(stats.devices.at("fpga_float").stall_cycles, 0u);
  EXPECT_GT(stats.devices.at("fpga_float").stalls, 0u);
}

// Shed-at-admission requests are recorded in both the flight ring and the
// SLO window, and never reach the execution stage.
TEST_F(TraceTest, ShedOldestLeavesShedTimelineAndSloSample) {
  serve::EngineConfig c = config(serve::Backend::kCpuFloat, 1);
  c.policy = serve::BackpressurePolicy::kShedOldest;
  c.queue_capacity = 2;
  c.batcher.max_batch = 2;
  serve::InferenceEngine engine(c, weights());
  std::vector<std::future<nt::Tensor>> futures;
  // Occupy the worker with a 64-row request, then flood the capacity-2 queue:
  // the kShedOldest policy must evict queued requests to admit newer ones.
  futures.push_back(engine.submit(input(/*rows=*/64)));
  for (int i = 0; i < 24; ++i) {
    serve::SubmitOptions opts;
    opts.trace_id = 7400 + static_cast<std::uint64_t>(i);
    futures.push_back(engine.submit(input(), opts));
  }
  engine.shutdown();
  std::uint64_t shed = 0;
  for (auto& f : futures) {
    try {
      (void)f.get();
    } catch (const serve::RequestShedError&) {
      ++shed;
    }
  }
  ASSERT_GT(shed, 0u);
  const serve::EngineStats stats = engine.stats();
  EXPECT_EQ(stats.slo.window_shed, shed);
  EXPECT_LT(stats.slo.goodput, 1.0);
  // A shed request's timeline ends at kShed with no exec events.
  auto& flight = obs::FlightRecorder::instance();
  bool checked = false;
  for (int i = 0; i < 24 && !checked; ++i) {
    const auto tl = flight.events_for(7400 + static_cast<std::uint64_t>(i));
    if (count_of(tl, obs::FlightKind::kShed) == 0) continue;
    EXPECT_EQ(index_of(tl, obs::FlightKind::kExecBegin), -1)
        << "shed request 7400+" << i << " still executed";
    EXPECT_EQ(index_of(tl, obs::FlightKind::kCompleted), -1);
    checked = true;
  }
  EXPECT_TRUE(checked);
}
