// Differential correctness harness: the batched engine must be numerically
// indistinguishable from running each request alone through the same backend.
//   - float backends (CPU datapath and simulated-FPGA offload): bitwise equal
//     to sequential single-request MhsaAccelerator::execute / MhsaIpCore::run;
//   - fixed-point offload: bitwise equal to sequential fixed-point execute,
//     and within the quantization tolerance of the float reference (the same
//     0.05 bound tests/hls/test_qexec.cpp uses at scheme_32_24).
#include <gtest/gtest.h>

#include "nodetr/nn/attention.hpp"
#include "nodetr/serve/serve.hpp"
#include "nodetr/tensor/ops.hpp"

namespace serve = nodetr::serve;
namespace hls = nodetr::hls;
namespace rt = nodetr::rt;
namespace nn = nodetr::nn;
namespace nt = nodetr::tensor;
namespace fx = nodetr::fx;
using nt::index_t;

namespace {

struct ServeFixture {
  nt::Rng rng{42};
  nn::MhsaConfig cfg;
  std::unique_ptr<nn::MultiHeadSelfAttention> mhsa;
  hls::MhsaDesignPoint point;

  ServeFixture() {
    cfg.dim = 16;
    cfg.heads = 2;
    cfg.height = 4;
    cfg.width = 4;
    mhsa = std::make_unique<nn::MultiHeadSelfAttention>(cfg, rng);
    mhsa->train(false);
    point.dim = cfg.dim;
    point.height = cfg.height;
    point.width = cfg.width;
    point.heads = cfg.heads;
    point.scheme = fx::scheme_32_24();
  }

  [[nodiscard]] hls::MhsaWeights weights() { return hls::MhsaWeights::from_module(*mhsa); }

  /// Mixed-size request set; rand (0..1) inputs stay inside the fixed-point
  /// range so the quantization-tolerance comparison is meaningful.
  [[nodiscard]] std::vector<nt::Tensor> make_requests(const std::vector<index_t>& rows) {
    std::vector<nt::Tensor> xs;
    xs.reserve(rows.size());
    for (index_t r : rows) {
      xs.push_back(rng.rand(nt::Shape{r, cfg.dim, cfg.height, cfg.width}));
    }
    return xs;
  }

  /// Sequential single-request offload through a private accelerator.
  [[nodiscard]] std::vector<nt::Tensor> sequential_execute(hls::DataType dtype,
                                                           const std::vector<nt::Tensor>& xs) {
    hls::MhsaDesignPoint p = point;
    p.dtype = dtype;
    rt::DdrMemory ddr;
    rt::MhsaAccelerator accel(std::make_unique<hls::MhsaIpCore>(p, weights()), ddr);
    std::vector<nt::Tensor> ys;
    ys.reserve(xs.size());
    for (const auto& x : xs) ys.push_back(accel.execute(x));
    return ys;
  }

  [[nodiscard]] std::vector<nt::Tensor> batched(serve::Backend backend, std::size_t workers,
                                                const std::vector<nt::Tensor>& xs) {
    serve::EngineConfig config;
    config.point = point;
    config.backend = backend;
    config.workers = workers;
    config.batcher.max_batch = 4;
    config.batcher.max_wait_us = 20000;  // linger so requests actually coalesce
    serve::InferenceEngine engine(config, weights());
    std::vector<std::future<nt::Tensor>> futures;
    futures.reserve(xs.size());
    for (const auto& x : xs) futures.push_back(engine.submit(x));
    std::vector<nt::Tensor> ys;
    ys.reserve(xs.size());
    for (auto& f : futures) ys.push_back(f.get());
    EXPECT_GE(engine.stats().batches, 1u);
    return ys;
  }
};

}  // namespace

TEST(Differential, FpgaFloatBatchedBitwiseEqualsSequentialExecute) {
  ServeFixture fx_;
  const auto xs = fx_.make_requests({1, 2, 3, 1, 4, 2, 3});
  const auto ref = fx_.sequential_execute(hls::DataType::kFloat32, xs);
  const auto got = fx_.batched(serve::Backend::kFpgaFloat, 1, xs);
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(got[i].shape(), ref[i].shape()) << "request " << i;
    EXPECT_TRUE(nt::allclose(got[i], ref[i], 0.0f, 0.0f)) << "request " << i;
  }
}

TEST(Differential, CpuFloatBackendBitwiseEqualsDirectIpRun) {
  ServeFixture fx_;
  const auto xs = fx_.make_requests({2, 1, 3, 2, 1, 1, 2});
  hls::MhsaDesignPoint p = fx_.point;
  p.dtype = hls::DataType::kFloat32;
  hls::MhsaIpCore direct(p, fx_.weights());
  const auto got = fx_.batched(serve::Backend::kCpuFloat, 1, xs);
  ASSERT_EQ(got.size(), xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_TRUE(nt::allclose(got[i], direct.run(xs[i]), 0.0f, 0.0f)) << "request " << i;
  }
}

TEST(Differential, FpgaFixedBatchedBitwiseEqualsSequentialFixedExecute) {
  ServeFixture fx_;
  const auto xs = fx_.make_requests({1, 3, 2, 4, 1, 2});
  const auto ref = fx_.sequential_execute(hls::DataType::kFixed, xs);
  const auto got = fx_.batched(serve::Backend::kFpgaFixed, 1, xs);
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_TRUE(nt::allclose(got[i], ref[i], 0.0f, 0.0f)) << "request " << i;
  }
}

TEST(Differential, FpgaFixedWithinQuantizationToleranceOfFloat) {
  ServeFixture fx_;
  const auto xs = fx_.make_requests({2, 1, 4, 2});
  const auto ref = fx_.sequential_execute(hls::DataType::kFloat32, xs);
  const auto got = fx_.batched(serve::Backend::kFpgaFixed, 1, xs);
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    // scheme_32_24: the paper's "no degradation" point (cf. QExec tests).
    EXPECT_LE(nt::max_abs_diff(got[i], ref[i]), 0.05f) << "request " << i;
  }
}

TEST(Differential, MultiWorkerFloatRemainsBitwiseExact) {
  ServeFixture fx_;
  const auto xs = fx_.make_requests({1, 2, 1, 3, 2, 1, 4, 1, 2, 3, 1, 2});
  const auto ref = fx_.sequential_execute(hls::DataType::kFloat32, xs);
  const auto got = fx_.batched(serve::Backend::kFpgaFloat, 3, xs);
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_TRUE(nt::allclose(got[i], ref[i], 0.0f, 0.0f)) << "request " << i;
  }
}

TEST(Differential, Rank3SubmissionRoundTripsAsOneRow) {
  ServeFixture fx_;
  serve::EngineConfig config;
  config.point = fx_.point;
  config.backend = serve::Backend::kFpgaFloat;
  config.workers = 1;
  serve::InferenceEngine engine(config, fx_.weights());
  auto x3 = fx_.rng.rand(nt::Shape{fx_.cfg.dim, fx_.cfg.height, fx_.cfg.width});
  auto y = engine.submit(x3).get();
  ASSERT_EQ(y.rank(), 3);
  EXPECT_EQ(y.shape(), x3.shape());
  auto x4 = x3.reshape(nt::Shape{1, fx_.cfg.dim, fx_.cfg.height, fx_.cfg.width});
  const auto ref = fx_.sequential_execute(hls::DataType::kFloat32, {x4});
  EXPECT_TRUE(nt::allclose(y.reshape(ref[0].shape()), ref[0], 0.0f, 0.0f));
}
