// Live model updates: versioned weight hot-swap with canary validation,
// auto-rollback, and the swap-under-storm differential suite.
//
// The load-bearing invariants:
//   - zero dropped/failed futures across ANY number of hot-swaps, with or
//     without a device fault storm underneath;
//   - every response is bitwise attributable to exactly one published
//     version — never a mix within a batch — because canary routing only
//     considers whole-request batches and sessions re-stage at batch
//     boundaries (RCU-style, no drain);
//   - a bad candidate auto-rolls-back and the baseline keeps serving
//     bitwise-identically;
//   - the commit point itself is faultable and rolls back atomically.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "nodetr/fault/fault.hpp"
#include "nodetr/nn/attention.hpp"
#include "nodetr/serve/serve.hpp"
#include "nodetr/tensor/ops.hpp"
#include "nodetr/train/checkpoint.hpp"
#include "nodetr/train/continual_tuner.hpp"

namespace serve = nodetr::serve;
namespace hls = nodetr::hls;
namespace nn = nodetr::nn;
namespace nt = nodetr::tensor;
namespace fx = nodetr::fx;
namespace fault = nodetr::fault;
namespace train = nodetr::train;
using nt::index_t;

namespace {

/// Small MHSA design point, two distinct weight versions (B = A shifted by a
/// constant — structurally valid, numerically distinguishable), and bitwise
/// float references for both.
struct HotSwapFixture : ::testing::Test {
  nt::Rng rng{1234};
  nn::MhsaConfig cfg;
  std::unique_ptr<nn::MultiHeadSelfAttention> mhsa;
  hls::MhsaDesignPoint point;
  hls::MhsaWeights weights_a;
  hls::MhsaWeights weights_b;

  void SetUp() override {
    fault::Injector::instance().reset();
    fault::Injector::instance().seed(0x5eedf417u);
    cfg.dim = 16;
    cfg.heads = 2;
    cfg.height = 4;
    cfg.width = 4;
    mhsa = std::make_unique<nn::MultiHeadSelfAttention>(cfg, rng);
    mhsa->train(false);
    point.dim = cfg.dim;
    point.height = cfg.height;
    point.width = cfg.width;
    point.heads = cfg.heads;
    point.scheme = fx::scheme_32_24();
    weights_a = hls::MhsaWeights::from_module(*mhsa);
    weights_b = perturbed(weights_a, 0.05f);
  }

  void TearDown() override { fault::Injector::instance().reset(); }

  static hls::MhsaWeights perturbed(const hls::MhsaWeights& w, float delta) {
    hls::MhsaWeights out = w;
    auto shift = [delta](nt::Tensor& t) {
      float* p = t.data();
      for (index_t i = 0; i < t.numel(); ++i) p[i] += delta;
    };
    shift(out.wq);
    shift(out.wk);
    shift(out.wv);
    if (out.rel_h.numel() > 0) shift(out.rel_h);
    if (out.rel_w.numel() > 0) shift(out.rel_w);
    return out;  // LayerNorm params untouched — still a valid candidate
  }

  [[nodiscard]] nt::Tensor reference(const hls::MhsaWeights& w, const nt::Tensor& x) const {
    hls::MhsaDesignPoint p = point;
    p.dtype = hls::DataType::kFloat32;
    hls::MhsaIpCore ip(p, w);
    return ip.run(x);
  }

  [[nodiscard]] serve::EngineConfig config(serve::Backend backend, std::size_t workers) const {
    serve::EngineConfig c;
    c.point = point;
    c.backend = backend;
    c.workers = workers;
    c.queue_capacity = 128;
    c.batcher.max_wait_us = 100;  // keep single-request batches snappy
    c.fault.backoff_us = 10;
    c.fault.max_backoff_us = 100;
    c.fault.max_retries = 8;
    // Swap-suite defaults: every whole-request batch canaries, one clean
    // shadow-scored batch promotes, and the quality/SLO triggers are off so
    // individual tests opt into exactly the trigger they exercise.
    c.hot_swap.canary_fraction = 1.0;
    c.hot_swap.min_canary_batches = 1;
    c.hot_swap.shadow_every = 1;
    c.hot_swap.max_divergence = 0.0;  // divergence gate off unless a test arms it
    c.hot_swap.rollback_fault_burst = 0;
    c.hot_swap.rollback_slo_breaches = 0;
    c.hot_swap.swap_timeout_us = 60'000'000;
    return c;
  }

  /// Drive single-row requests until the in-flight swap concludes (commit or
  /// rollback) or `budget` elapses. Collected futures are the caller's to
  /// check; returns false on budget exhaustion.
  static bool drive_until_swap_concludes(
      serve::InferenceEngine& engine, const nt::Tensor& x,
      std::vector<std::pair<nt::Tensor, std::future<nt::Tensor>>>& out,
      std::chrono::milliseconds budget = std::chrono::milliseconds(10'000)) {
    const auto deadline = std::chrono::steady_clock::now() + budget;
    while (engine.swap_stats().canary_in_flight) {
      if (std::chrono::steady_clock::now() > deadline) return false;
      out.emplace_back(x, engine.submit(x));
      out.back().second.wait();
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    return true;
  }
};

}  // namespace

TEST_F(HotSwapFixture, RegistryLifecycleAndValidation) {
  serve::ModelRegistry registry(point, weights_a);
  EXPECT_EQ(registry.active(), 1u);
  EXPECT_EQ(registry.state(1), serve::VersionState::kActive);

  const auto id = registry.publish(weights_b, "candidate B");
  EXPECT_EQ(id, 2u);
  EXPECT_EQ(registry.state(id), serve::VersionState::kCandidate);
  EXPECT_EQ(registry.active(), 1u);  // publish never touches live traffic

  registry.activate(id);
  EXPECT_EQ(registry.active(), 2u);
  EXPECT_EQ(registry.state(1), serve::VersionState::kRetired);
  EXPECT_THROW(registry.activate(2), std::invalid_argument);  // already active
  EXPECT_THROW(registry.reject(1), std::invalid_argument);    // not a candidate
  EXPECT_THROW((void)registry.get(99), std::invalid_argument);

  // Structural validation names the offending tensor.
  hls::MhsaWeights bad = weights_a;
  bad.wq = nt::Tensor(nt::Shape{4, 4});
  try {
    (void)registry.publish(bad);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("'wq'"), std::string::npos) << e.what();
  }
  hls::MhsaWeights nan_w = weights_a;
  nan_w.wv.data()[3] = std::numeric_limits<float>::quiet_NaN();
  try {
    (void)registry.publish(nan_w);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("non-finite"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("'wv'"), std::string::npos) << e.what();
  }
  // Rejected versions are terminal: no resurrection without a republish.
  const auto id3 = registry.publish(weights_b);
  registry.reject(id3);
  EXPECT_THROW(registry.activate(id3), std::invalid_argument);
}

TEST_F(HotSwapFixture, RegistryPublishCheckpointValidatesStructure) {
  serve::ModelRegistry registry(point, weights_a);
  const std::string good = ::testing::TempDir() + "/hotswap_good_ckpt.bin";
  train::save_checkpoint(good, *mhsa);
  const auto id = registry.publish_checkpoint(good);
  EXPECT_EQ(registry.state(id), serve::VersionState::kCandidate);
  // The checkpoint round-trips bitwise: same module, same weights.
  const auto x = rng.rand(nt::Shape{2, cfg.dim, cfg.height, cfg.width});
  EXPECT_TRUE(nt::allclose(reference(registry.get(id)->weights, x),
                           reference(weights_a, x), 0.0f, 0.0f));

  // A structurally wrong checkpoint (different dim) is rejected by the
  // stage-validate-commit loader with the offending param named; nothing is
  // published.
  nn::MhsaConfig other_cfg = cfg;
  other_cfg.dim = 32;
  other_cfg.heads = 4;
  nn::MultiHeadSelfAttention other(other_cfg, rng);
  other.train(false);
  const std::string mismatched = ::testing::TempDir() + "/hotswap_mismatch_ckpt.bin";
  train::save_checkpoint(mismatched, other);
  const auto before = registry.size();
  try {
    (void)registry.publish_checkpoint(mismatched);
    FAIL() << "expected CheckpointError";
  } catch (const train::CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("shape mismatch for wq"), std::string::npos)
        << e.what();
  }
  EXPECT_EQ(registry.size(), before);
  std::remove(good.c_str());
  std::remove(mismatched.c_str());
}

TEST_F(HotSwapFixture, HotSwapCommitsAndServesNewVersionBitwise) {
  serve::InferenceEngine engine(config(serve::Backend::kCpuFloat, 1), weights_a);
  const auto x = rng.rand(nt::Shape{1, cfg.dim, cfg.height, cfg.width});
  const auto ref_a = reference(weights_a, x);
  const auto ref_b = reference(weights_b, x);

  // Pre-swap traffic serves version 1 bitwise.
  EXPECT_TRUE(nt::allclose(engine.submit(x).get(), ref_a, 0.0f, 0.0f));
  EXPECT_EQ(engine.active_version(), 1u);

  const auto id = engine.registry().publish(weights_b, "B");
  engine.begin_swap(id);
  std::vector<std::pair<nt::Tensor, std::future<nt::Tensor>>> traffic;
  ASSERT_TRUE(drive_until_swap_concludes(engine, x, traffic));

  const auto swap = engine.swap_stats();
  EXPECT_EQ(swap.swaps_committed, 1u);
  EXPECT_EQ(swap.swaps_rolled_back, 0u);
  EXPECT_EQ(engine.active_version(), id);
  EXPECT_EQ(engine.registry().state(1), serve::VersionState::kRetired);
  EXPECT_GE(swap.canary_batches, 1u);
  EXPECT_GE(swap.shadow_samples, 1u);
  EXPECT_GT(swap.divergence_mean, 0.0);  // A and B genuinely differ

  // Every canary-phase response was bitwise one version or the other.
  for (auto& [input, f] : traffic) {
    const auto y = f.get();
    EXPECT_TRUE(nt::allclose(y, ref_a, 0.0f, 0.0f) || nt::allclose(y, ref_b, 0.0f, 0.0f));
  }
  // Post-commit traffic serves version 2 bitwise.
  EXPECT_TRUE(nt::allclose(engine.submit(x).get(), ref_b, 0.0f, 0.0f));
  EXPECT_EQ(engine.stats().failed, 0u);
}

TEST_F(HotSwapFixture, BadCandidateAutoRollsBackAndRestoresBaseline) {
  auto cfg_e = config(serve::Backend::kCpuFloat, 1);
  cfg_e.hot_swap.max_divergence = 1e-4;    // tight quality gate
  cfg_e.hot_swap.min_canary_batches = 4;   // divergence trips before promotion
  serve::InferenceEngine engine(cfg_e, weights_a);
  const auto x = rng.rand(nt::Shape{1, cfg.dim, cfg.height, cfg.width});
  const auto ref_a = reference(weights_a, x);

  // A wildly off candidate: every output diverges far beyond the gate.
  const auto id = engine.registry().publish(perturbed(weights_a, 2.0f), "bad");
  engine.begin_swap(id);
  std::vector<std::pair<nt::Tensor, std::future<nt::Tensor>>> traffic;
  ASSERT_TRUE(drive_until_swap_concludes(engine, x, traffic));

  const auto swap = engine.swap_stats();
  EXPECT_EQ(swap.swaps_rolled_back, 1u);
  EXPECT_EQ(swap.rollbacks_divergence, 1u);
  EXPECT_EQ(swap.swaps_committed, 0u);
  EXPECT_EQ(engine.active_version(), 1u);
  EXPECT_EQ(engine.registry().state(id), serve::VersionState::kRejected);
  // The rejected candidate cannot be swapped in again.
  EXPECT_THROW(engine.begin_swap(id), std::invalid_argument);
  // Baseline restored: post-rollback traffic is bitwise version 1.
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(nt::allclose(engine.submit(x).get(), ref_a, 0.0f, 0.0f));
  }
  EXPECT_EQ(engine.stats().failed, 0u);
}

TEST_F(HotSwapFixture, CommitFaultRollsBackAtomicallyThenRetrySucceeds) {
  serve::InferenceEngine engine(config(serve::Backend::kCpuFloat, 1), weights_a);
  const auto x = rng.rand(nt::Shape{1, cfg.dim, cfg.height, cfg.width});
  const auto ref_a = reference(weights_a, x);
  const auto ref_b = reference(weights_b, x);

  fault::Injector::instance().arm("serve.swap.commit", fault::Schedule::once());
  const auto id = engine.registry().publish(weights_b);
  engine.begin_swap(id);
  std::vector<std::pair<nt::Tensor, std::future<nt::Tensor>>> traffic;
  ASSERT_TRUE(drive_until_swap_concludes(engine, x, traffic));

  auto swap = engine.swap_stats();
  EXPECT_EQ(swap.swaps_committed, 0u);
  EXPECT_EQ(swap.rollbacks_commit_fault, 1u);
  EXPECT_EQ(engine.active_version(), 1u);  // no half-commit
  EXPECT_TRUE(nt::allclose(engine.submit(x).get(), ref_a, 0.0f, 0.0f));

  // The site fired once; a republished candidate commits cleanly.
  const auto id2 = engine.registry().publish(weights_b);
  engine.begin_swap(id2);
  ASSERT_TRUE(drive_until_swap_concludes(engine, x, traffic));
  swap = engine.swap_stats();
  EXPECT_EQ(swap.swaps_committed, 1u);
  EXPECT_EQ(engine.active_version(), id2);
  EXPECT_TRUE(nt::allclose(engine.submit(x).get(), ref_b, 0.0f, 0.0f));
  EXPECT_EQ(engine.stats().failed, 0u);
}

TEST_F(HotSwapFixture, SwapTimesOutWhenStagingKeepsFailing) {
  auto cfg_e = config(serve::Backend::kCpuFloat, 1);
  cfg_e.hot_swap.swap_timeout_us = 150'000;
  serve::InferenceEngine engine(cfg_e, weights_a);
  const auto x = rng.rand(nt::Shape{1, cfg.dim, cfg.height, cfg.width});
  const auto ref_a = reference(weights_a, x);

  // Staging fails at every batch boundary: the canary replicas can never be
  // built, so no canary batch ever runs and the timeout concludes the swap.
  fault::Injector::instance().arm("serve.swap.stage", fault::Schedule::always());
  const auto id = engine.registry().publish(weights_b);
  engine.begin_swap(id);
  std::vector<std::pair<nt::Tensor, std::future<nt::Tensor>>> traffic;
  ASSERT_TRUE(drive_until_swap_concludes(engine, x, traffic));

  const auto swap = engine.swap_stats();
  EXPECT_EQ(swap.swaps_committed, 0u);
  EXPECT_EQ(swap.rollbacks_timeout, 1u);
  EXPECT_GE(swap.stage_failures, 1u);
  EXPECT_EQ(swap.canary_batches, 0u);
  EXPECT_EQ(engine.active_version(), 1u);
  // Traffic kept flowing on the coherently staged old version throughout.
  for (auto& [input, f] : traffic) {
    EXPECT_TRUE(nt::allclose(f.get(), ref_a, 0.0f, 0.0f));
  }
  EXPECT_EQ(engine.stats().failed, 0u);
}

TEST_F(HotSwapFixture, ProbeRaceServesCoherentVersion) {
  // Satellite: a circuit-breaker half-open probe racing a version swap on the
  // same board. The demoted session's CPU fallback, the probe's re-driven
  // accelerator, and the canary replica must all serve a coherent version —
  // every output bitwise version A or version B, never a hybrid.
  auto cfg_e = config(serve::Backend::kFpgaFloat, 1);
  cfg_e.breaker.open_after = 2;
  cfg_e.breaker.cooldown_us = 2'000;  // probe fires quickly, mid-swap
  serve::InferenceEngine engine(cfg_e, weights_a);
  const auto x = rng.rand(nt::Shape{1, cfg.dim, cfg.height, cfg.width});
  const auto ref_a = reference(weights_a, x);
  const auto ref_b = reference(weights_b, x);

  // Storm the device (AXI NACKs — device-side only, so the CPU fallback
  // keeps serving) until the breaker opens and the session demotes.
  fault::Injector::instance().arm("rt.axi.nack", fault::Schedule::always());
  while (engine.stats().breaker_opens == 0) {
    (void)engine.submit(x).get();  // served by the CPU fallback after demotion
  }
  fault::Injector::instance().disarm("rt.axi.nack");

  // Swap begins while the breaker cooldown is pending: the half-open probe
  // races canary staging and the commit on this board.
  const auto id = engine.registry().publish(weights_b);
  engine.begin_swap(id);
  std::vector<std::pair<nt::Tensor, std::future<nt::Tensor>>> traffic;
  ASSERT_TRUE(drive_until_swap_concludes(engine, x, traffic));
  // Keep driving until the probe has re-driven the device and closed the
  // breaker, so the post-swap accelerator path is exercised too.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (engine.stats().breaker_closes == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    traffic.emplace_back(x, engine.submit(x));
    traffic.back().second.wait();
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }

  EXPECT_EQ(engine.swap_stats().swaps_committed, 1u);
  EXPECT_GE(engine.stats().breaker_probes, 1u);
  EXPECT_GE(engine.stats().breaker_closes, 1u);
  EXPECT_EQ(engine.stats().failed, 0u);
  for (auto& [input, f] : traffic) {
    const auto y = f.get();
    EXPECT_TRUE(nt::allclose(y, ref_a, 0.0f, 0.0f) || nt::allclose(y, ref_b, 0.0f, 0.0f))
        << "response is neither version A nor version B bitwise";
  }
  // Post-storm, post-swap: the device path serves the promoted version.
  EXPECT_TRUE(nt::allclose(engine.submit(x).get(), ref_b, 0.0f, 0.0f));
}

TEST_F(HotSwapFixture, ThousandSwapsUnderStormNoDroppedFuturesAllAttributable) {
  // The acceptance soak in miniature process: 1000 hot-swaps under a
  // deterministic device fault storm. Zero dropped or failed futures; every
  // response bitwise attributable to version A or version B.
  int swaps = 1000;
  if (const char* env = std::getenv("NODETR_SWAP_COUNT")) {
    swaps = std::max(1, std::atoi(env));
  }
  auto cfg_e = config(serve::Backend::kFpgaFloat, 2);
  cfg_e.breaker.open_after = 2;
  cfg_e.breaker.cooldown_us = 1'000;
  serve::InferenceEngine engine(cfg_e, weights_a);
  const auto x = rng.rand(nt::Shape{1, cfg.dim, cfg.height, cfg.width});
  const auto ref_a = reference(weights_a, x);
  const auto ref_b = reference(weights_b, x);

  fault::Injector::instance().arm("rt.axi.nack", fault::Schedule::with_probability(0.05));
  fault::Injector::instance().arm("hls.ip.stall", fault::Schedule::with_probability(0.02));

  std::uint64_t responses = 0;
  for (int i = 0; i < swaps; ++i) {
    const auto id =
        engine.registry().publish(i % 2 == 0 ? weights_b : weights_a, "swap " + std::to_string(i));
    engine.begin_swap(id);
    std::vector<std::pair<nt::Tensor, std::future<nt::Tensor>>> traffic;
    ASSERT_TRUE(drive_until_swap_concludes(engine, x, traffic)) << "swap " << i << " stuck";
    for (auto& [input, f] : traffic) {
      const auto y = f.get();  // throws -> dropped/failed future -> test fails
      ++responses;
      ASSERT_TRUE(nt::allclose(y, ref_a, 0.0f, 0.0f) || nt::allclose(y, ref_b, 0.0f, 0.0f))
          << "swap " << i << ": response is a version hybrid";
    }
  }
  fault::Injector::instance().reset();

  const auto swap = engine.swap_stats();
  const auto stats = engine.stats();
  EXPECT_EQ(swap.swaps_begun, static_cast<std::uint64_t>(swaps));
  EXPECT_EQ(swap.swaps_committed + swap.swaps_rolled_back,
            static_cast<std::uint64_t>(swaps));  // every swap reached a terminal state
  EXPECT_EQ(swap.swaps_committed, static_cast<std::uint64_t>(swaps));
  EXPECT_EQ(stats.failed, 0u) << "futures failed under swap storm";
  EXPECT_GT(responses, 0u);
  // Convergence: the engine serves exactly the last committed version.
  const auto& final_ref = (swaps - 1) % 2 == 0 ? ref_b : ref_a;
  EXPECT_TRUE(nt::allclose(engine.submit(x).get(), final_ref, 0.0f, 0.0f));
  EXPECT_EQ(engine.active_version(), engine.registry().active());
}

TEST_F(HotSwapFixture, ContinualTunerLearnsAndPublishes) {
  // Teacher-student drift: the stream's targets come from weights_b; the
  // tuner starts at weights_a and must reduce MSE across publishes.
  hls::MhsaDesignPoint p = point;
  p.dtype = hls::DataType::kFloat32;
  hls::MhsaIpCore teacher(p, weights_b);
  nt::Rng stream_rng(99);
  auto stream = [&]() {
    train::DriftBatch b;
    b.input = stream_rng.rand(nt::Shape{4, cfg.dim, cfg.height, cfg.width});
    b.target = teacher.run(b.input);
    return b;
  };
  std::vector<double> losses;
  std::mutex mu;
  serve::ModelRegistry registry(point, weights_a);
  auto publish = [&](const hls::MhsaWeights& w, const train::TunerStats& s) {
    (void)registry.publish(w, "tuner");  // validates: finite, right shapes
    std::lock_guard lk(mu);
    losses.push_back(s.last_loss);
  };
  train::TunerConfig tc;
  tc.sgd.lr = 0.05f;
  tc.sgd.momentum = 0.9f;
  tc.sgd.weight_decay = 0.0f;
  tc.steps_per_publish = 8;
  tc.max_publishes = 4;
  train::ContinualTuner tuner(cfg, weights_a, tc, stream, publish);
  tuner.start();
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (tuner.stats().publishes < tc.max_publishes &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  tuner.stop();
  const auto stats = tuner.stats();
  ASSERT_EQ(stats.publishes, 4u);
  EXPECT_EQ(stats.steps, 32u);
  EXPECT_EQ(stats.crashes, 0u);
  ASSERT_EQ(losses.size(), 4u);
  EXPECT_LT(losses.back(), losses.front()) << "fine-tuning did not reduce drift MSE";
  EXPECT_EQ(registry.latest(), 5u);  // seed + 4 published candidates
}

TEST_F(HotSwapFixture, TunerSurvivesInjectedCrashAndKeepsPublishing) {
  nt::Rng stream_rng(7);
  hls::MhsaDesignPoint p = point;
  p.dtype = hls::DataType::kFloat32;
  hls::MhsaIpCore teacher(p, weights_b);
  auto stream = [&]() {
    train::DriftBatch b;
    b.input = stream_rng.rand(nt::Shape{2, cfg.dim, cfg.height, cfg.width});
    b.target = teacher.run(b.input);
    return b;
  };
  std::atomic<std::uint64_t> published{0};
  auto publish = [&](const hls::MhsaWeights& w, const train::TunerStats&) {
    // Published candidates must be complete, structurally valid snapshots
    // even with a crash in between — half-stepped weights never escape.
    serve::ModelRegistry probe(point, weights_a);
    (void)probe.publish(w);
    published.fetch_add(1);
  };
  // Crash on the 3rd step: un-published progress is discarded, the loop
  // restarts from the last published weights and keeps going.
  fault::Injector::instance().arm("train.tuner.crash",
                                  fault::Schedule::at_ops({2}));
  train::TunerConfig tc;
  tc.steps_per_publish = 4;
  tc.max_publishes = 3;
  train::ContinualTuner tuner(cfg, weights_a, tc, stream, publish);
  tuner.start();
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (tuner.stats().publishes < tc.max_publishes &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  tuner.stop();
  const auto stats = tuner.stats();
  EXPECT_EQ(stats.crashes, 1u);
  EXPECT_EQ(stats.publishes, 3u);
  EXPECT_EQ(published.load(), 3u);
  // The crashed step's progress was discarded: 2 steps lost, then 3 * 4 to
  // publish three candidates.
  EXPECT_EQ(stats.steps, 14u);
}

TEST_F(HotSwapFixture, ContinualTunerFeedsHotSwapEndToEnd) {
  // The full loop: tuner thread fine-tunes from the drift stream, publishes
  // into the ENGINE's registry, and begins a swap whenever none is in
  // flight; the engine canaries and promotes while serving traffic.
  serve::InferenceEngine engine(config(serve::Backend::kCpuFloat, 1), weights_a);
  hls::MhsaDesignPoint p = point;
  p.dtype = hls::DataType::kFloat32;
  hls::MhsaIpCore teacher(p, weights_b);
  nt::Rng stream_rng(41);
  auto stream = [&]() {
    train::DriftBatch b;
    b.input = stream_rng.rand(nt::Shape{2, cfg.dim, cfg.height, cfg.width});
    b.target = teacher.run(b.input);
    return b;
  };
  auto publish = [&](const hls::MhsaWeights& w, const train::TunerStats&) {
    const auto id = engine.registry().publish(w, "tuner candidate");
    try {
      engine.begin_swap(id);
    } catch (const std::invalid_argument&) {
      // A swap is already in flight — this candidate stays parked in the
      // registry; a later publish will roll traffic forward.
    }
  };
  train::TunerConfig tc;
  tc.sgd.lr = 0.05f;
  tc.steps_per_publish = 4;
  tc.max_publishes = 6;
  train::ContinualTuner tuner(cfg, weights_a, tc, stream, publish);
  tuner.start();
  const auto x = rng.rand(nt::Shape{1, cfg.dim, cfg.height, cfg.width});
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  std::uint64_t ok = 0;
  while (engine.swap_stats().swaps_committed == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    (void)engine.submit(x).get();
    ++ok;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  tuner.stop();
  // Let any final in-flight canary conclude before asserting.
  std::vector<std::pair<nt::Tensor, std::future<nt::Tensor>>> traffic;
  ASSERT_TRUE(drive_until_swap_concludes(engine, x, traffic));
  for (auto& [input, f] : traffic) (void)f.get();
  EXPECT_GE(engine.swap_stats().swaps_committed, 1u);
  EXPECT_GT(engine.active_version(), 1u) << "tuner candidate never promoted";
  EXPECT_GT(ok, 0u);
  EXPECT_EQ(engine.stats().failed, 0u);
}
