// Soak: open-loop mixed traffic (priorities, TTLs, oversized requests)
// against an engine under a probabilistic fault storm, for
// NODETR_SOAK_SECONDS (default 2; the nightly CI job runs 60). Asserts the
// two properties that only show up over time: zero hung futures and bounded
// memory growth. Seeded via NODETR_FAULT_SEED for replay.
#include <gtest/gtest.h>

#include <sys/resource.h>

#include <cstdlib>
#include <iostream>
#include <thread>

#include "nodetr/fault/fault.hpp"
#include "nodetr/nn/attention.hpp"
#include "nodetr/serve/serve.hpp"
#include "nodetr/tensor/ops.hpp"

namespace serve = nodetr::serve;
namespace fault = nodetr::fault;
namespace hls = nodetr::hls;
namespace rt = nodetr::rt;
namespace nn = nodetr::nn;
namespace nt = nodetr::tensor;
namespace fx = nodetr::fx;
using Clock = std::chrono::steady_clock;

namespace {

long max_rss_kb() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;  // KiB on Linux
}

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* v = std::getenv(name);
  return v ? std::strtoll(v, nullptr, 0) : fallback;
}

}  // namespace

TEST(Soak, FaultStormNeverHangsAFutureAndMemoryStaysBounded) {
  const std::int64_t seconds = env_int("NODETR_SOAK_SECONDS", 2);
  auto& inj = fault::Injector::instance();
  inj.reset();
  const auto seed = static_cast<std::uint64_t>(env_int("NODETR_FAULT_SEED", 0x50a7'5eed));
  inj.seed(seed);
  inj.arm("rt.dma.error", fault::Schedule::with_probability(0.05));
  inj.arm("rt.ddr.bitflip", fault::Schedule::with_probability(0.02));
  inj.arm("hls.ip.stall", fault::Schedule::with_probability(0.02));
  inj.arm("serve.alloc", fault::Schedule::with_probability(0.005));
  inj.arm("serve.worker_crash", fault::Schedule::with_probability(0.002));
  inj.arm("serve.overload.expire", fault::Schedule::with_probability(0.01));

  nt::Rng rng{7};
  nn::MhsaConfig mc;
  mc.dim = 16;
  mc.heads = 2;
  mc.height = 4;
  mc.width = 4;
  nn::MultiHeadSelfAttention mhsa(mc, rng);
  mhsa.train(false);

  serve::EngineConfig cfg;
  cfg.point.dim = mc.dim;
  cfg.point.height = mc.height;
  cfg.point.width = mc.width;
  cfg.point.heads = mc.heads;
  cfg.point.scheme = fx::scheme_32_24();
  cfg.backend = serve::Backend::kFpgaFloat;
  cfg.workers = 2;
  cfg.queue_capacity = 128;
  cfg.policy = serve::BackpressurePolicy::kShedOldest;
  cfg.batcher.max_batch = 8;
  cfg.batcher.adaptive = true;
  cfg.batcher.min_wait_us = 0;
  cfg.batcher.max_wait_us = 200;
  cfg.fault.max_retries = 4;
  cfg.fault.backoff_us = 10;
  cfg.fault.max_backoff_us = 100;
  cfg.fault.deadline.sim_cycles = 1'000'000;
  cfg.admission.enabled = true;
  cfg.admission.target_wait_us = 5'000;
  cfg.admission.interval_us = 50'000;
  cfg.breaker.open_after = 8;
  cfg.breaker.cooldown_us = 10'000;
  serve::InferenceEngine engine(cfg, hls::MhsaWeights::from_module(mhsa));

  // Warm up the allocator/thread pools before the baseline RSS reading so
  // steady-state growth, not first-touch, is what the bound measures.
  for (int i = 0; i < 8; ++i) {
    try {
      (void)engine.submit(rng.rand(nt::Shape{2, mc.dim, mc.height, mc.width})).get();
    } catch (const std::runtime_error&) {
      // The storm is already armed; warmup requests may resolve with a
      // typed error, which is fine — they only exist to touch memory.
    }
  }
  const long rss_before_kb = max_rss_kb();

  struct Pending {
    std::future<nt::Tensor> future;
    bool had_deadline;
  };
  std::vector<Pending> pending;
  std::uint64_t accepted = 0, refused = 0, values = 0, typed_errors = 0;
  const auto t_end = Clock::now() + std::chrono::seconds(seconds);
  std::uint64_t i = 0;
  while (Clock::now() < t_end) {
    const nt::index_t rows = 1 + static_cast<nt::index_t>(i % 12);
    serve::SubmitOptions opts;
    opts.priority = static_cast<serve::Priority>(i % 3);
    const bool with_ttl = (i % 4) == 0;
    if (with_ttl) opts.ttl_us = 1'000 + static_cast<std::int64_t>(i % 7) * 10'000;
    try {
      pending.push_back(
          {engine.submit(rng.rand(nt::Shape{rows, mc.dim, mc.height, mc.width}), opts),
           with_ttl});
      ++accepted;
    } catch (const serve::RequestShedError&) {
      ++refused;
    } catch (const serve::RequestExpired&) {
      ++refused;
    }
    ++i;
    // Reap settled futures as we go so `pending` (and the inputs the engine
    // holds for them) cannot grow without bound over a long soak.
    if (pending.size() >= 64) {
      for (auto& p : pending) {
        try {
          (void)p.future.get();
          ++values;
        } catch (const fault::FaultError&) {
          ++typed_errors;  // exhausted retries under the storm
        } catch (const serve::RequestExpired&) {
          ++typed_errors;
        } catch (const serve::RequestShedError&) {
          ++typed_errors;
        }
        // Anything else (an untyped exception) propagates and fails the test.
      }
      pending.clear();
    }
  }
  engine.shutdown();
  const auto resolve_deadline = Clock::now() + std::chrono::seconds(30);
  for (auto& p : pending) {
    ASSERT_EQ(p.future.wait_until(resolve_deadline), std::future_status::ready)
        << "hung future after shutdown (seed 0x" << std::hex << seed << ")";
    try {
      (void)p.future.get();
      ++values;
    } catch (const fault::FaultError&) {
      ++typed_errors;
    } catch (const serve::RequestExpired&) {
      ++typed_errors;
    } catch (const serve::RequestShedError&) {
      ++typed_errors;
    }
  }
  const auto stats = engine.stats();
  // Every accepted request resolved exactly once, value or typed error.
  EXPECT_EQ(values + typed_errors, accepted);
  EXPECT_EQ(stats.completed + stats.failed, stats.submitted);
  EXPECT_GT(values, 0u) << "storm drowned all traffic; nothing completed";

  // Bounded memory: steady-state RSS growth over the whole soak stays under
  // a generous fixed bound (a leak of one input tensor per request would
  // blow far past this).
  const long growth_kb = max_rss_kb() - rss_before_kb;
  EXPECT_LT(growth_kb, 256 * 1024)
      << "RSS grew " << growth_kb << " KiB over " << seconds << "s soak";

  inj.reset();
  std::cerr << "[soak] " << seconds << "s: accepted=" << accepted << " refused=" << refused
            << " values=" << values << " typed_errors=" << typed_errors
            << " sheds=" << stats.shed << " expired=" << stats.expired
            << " breaker_opens=" << stats.breaker_opens << " closes=" << stats.breaker_closes
            << " respawns=" << stats.respawns << " rss_growth_kb=" << growth_kb << std::endl;
}

// Multi-device soak: a routed 4-board fleet runs three phases —
//   A: clean traffic (baseline goodput);
//   B: one board is "killed" mid-soak (its scoped DMA site fault-storms on
//      every transfer), so its breaker opens and the router reroutes;
//   C: the board is restored (storm disarmed); the next half-open probe
//      heals it and goodput recovers.
// Asserts zero hung futures across all phases, the kill/heal breaker cycle
// on exactly the stormed board, recovery of goodput after the restore, and
// per-board DeviceCounters consistency: each board's counters are drained
// exactly once (the per-backend aggregate equals the per-board sum) with no
// negative fields.
TEST(Soak, ClusterKillAndRestoreDeviceRecoversGoodputAndCounters) {
  const std::int64_t seconds = env_int("NODETR_SOAK_SECONDS", 2);
  const std::int64_t phase_ms = std::max<std::int64_t>(seconds * 1000 / 3, 300);
  auto& inj = fault::Injector::instance();
  inj.reset();
  inj.seed(static_cast<std::uint64_t>(env_int("NODETR_FAULT_SEED", 0x50a7'5eed)));

  nt::Rng rng{11};
  nn::MhsaConfig mc;
  mc.dim = 16;
  mc.heads = 2;
  mc.height = 4;
  mc.width = 4;
  nn::MultiHeadSelfAttention mhsa(mc, rng);
  mhsa.train(false);

  serve::EngineConfig cfg;
  cfg.point.dim = mc.dim;
  cfg.point.height = mc.height;
  cfg.point.width = mc.width;
  cfg.point.heads = mc.heads;
  cfg.point.scheme = fx::scheme_32_24();
  cfg.queue_capacity = 128;
  cfg.batcher.max_batch = 8;
  cfg.batcher.max_wait_us = 200;
  cfg.fault.max_retries = 4;
  cfg.fault.backoff_us = 10;
  cfg.fault.max_backoff_us = 100;
  // Trip fast and probe often, so the kill is detected within a batch or two
  // and the restore heals within phase C even after repeated reopens.
  cfg.breaker.open_after = 2;
  cfg.breaker.cooldown_us = 5'000;
  cfg.breaker.max_cooldown_us = 50'000;
  cfg.devices.resize(4);
  for (std::size_t i = 0; i < cfg.devices.size(); ++i) {
    cfg.devices[i].name = "soak" + std::to_string(i);
    cfg.devices[i].backend = serve::Backend::kFpgaFloat;
  }
  serve::InferenceEngine engine(cfg, hls::MhsaWeights::from_module(mhsa));

  std::uint64_t accepted = 0, values = 0, typed_errors = 0;
  std::uint64_t i = 0;
  std::vector<std::future<nt::Tensor>> pending;
  const auto reap = [&] {
    for (auto& f : pending) {
      try {
        (void)f.get();
        ++values;
      } catch (const fault::FaultError&) {
        ++typed_errors;
      } catch (const serve::RequestExpired&) {
        ++typed_errors;
      } catch (const serve::RequestShedError&) {
        ++typed_errors;
      }
    }
    pending.clear();
  };
  const auto drive_for = [&](std::int64_t ms) {
    const std::uint64_t before = engine.stats().completed;
    const auto until = Clock::now() + std::chrono::milliseconds(ms);
    while (Clock::now() < until) {
      const nt::index_t rows = 1 + static_cast<nt::index_t>(i % 10);
      pending.push_back(engine.submit(rng.rand(nt::Shape{rows, mc.dim, mc.height, mc.width})));
      ++accepted;
      ++i;
      if (pending.size() >= 48) reap();
    }
    reap();
    return engine.stats().completed - before;
  };

  // Phase A: healthy fleet baseline.
  const std::uint64_t phase_a = drive_for(phase_ms);
  // Phase B: kill soak2 — every DMA transfer on that board faults.
  inj.arm("rt.dma.error.soak2", fault::Schedule::always());
  const std::uint64_t phase_b = drive_for(phase_ms);
  const serve::EngineStats mid = engine.stats();
  EXPECT_GE(mid.device_stats.at("soak2").breaker_opens, 1u)
      << "killed board's breaker never opened";
  EXPECT_EQ(mid.device_stats.at("soak0").breaker_opens, 0u);
  // Phase C: restore the board; drive until its breaker closes (a half-open
  // probe on the clean device), bounded by a generous deadline.
  inj.disarm("rt.dma.error.soak2");
  const std::uint64_t phase_c = drive_for(phase_ms);
  const auto heal_deadline = Clock::now() + std::chrono::seconds(20);
  while (engine.stats().device_stats.at("soak2").breaker_closes < 1 &&
         Clock::now() < heal_deadline) {
    (void)drive_for(50);
  }
  engine.shutdown();
  reap();

  const serve::EngineStats fin = engine.stats();
  // Every accepted request resolved exactly once, value or typed error.
  EXPECT_EQ(values + typed_errors, accepted);
  EXPECT_EQ(fin.completed + fin.failed, fin.submitted);
  // The kill was survived and the restore healed the board.
  EXPECT_GE(fin.device_stats.at("soak2").breaker_closes, 1u)
      << "restored board never healed (no successful half-open probe)";
  EXPECT_FALSE(fin.device_stats.at("soak2").breaker_open);
  // Goodput survived the storm and recovered after the restore. The host is
  // shared, so the bars are deliberately loose — they catch collapse (a
  // stalled router, a dead fleet), not percentage regressions.
  EXPECT_GT(phase_b, phase_a / 4) << "goodput collapsed during the device kill";
  EXPECT_GT(phase_c, phase_a / 2) << "goodput did not recover after the restore";
  // Per-board counters: drained exactly once into both views — the
  // per-backend aggregate must equal the per-board sum, all fields >= 0.
  rt::DeviceCounters sum;
  for (const auto& [name, ds] : fin.device_stats) {
    EXPECT_GE(ds.counters.starts, 0) << name;
    EXPECT_GE(ds.counters.stalls, 0) << name;
    EXPECT_GE(ds.counters.dma_bytes_in, 0) << name;
    EXPECT_GE(ds.counters.dma_bytes_out, 0) << name;
    EXPECT_GE(ds.counters.weight_bytes, 0) << name;
    EXPECT_GE(ds.counters.weight_bytes_saved, 0) << name;
    EXPECT_GE(ds.counters.dma_cycles, 0) << name;
    EXPECT_GE(ds.counters.compute_cycles, 0) << name;
    EXPECT_GE(ds.counters.stall_cycles, 0) << name;
    sum += ds.counters;
  }
  ASSERT_EQ(fin.devices.count("fpga_float"), 1u);
  const rt::DeviceCounters& agg = fin.devices.at("fpga_float");
  EXPECT_EQ(agg.starts, sum.starts);
  EXPECT_EQ(agg.stalls, sum.stalls);
  EXPECT_EQ(agg.dma_bytes_in, sum.dma_bytes_in);
  EXPECT_EQ(agg.dma_bytes_out, sum.dma_bytes_out);
  EXPECT_EQ(agg.weight_bytes, sum.weight_bytes);
  EXPECT_EQ(agg.weight_bytes_saved, sum.weight_bytes_saved);
  EXPECT_EQ(agg.dma_cycles, sum.dma_cycles);
  EXPECT_EQ(agg.compute_cycles, sum.compute_cycles);
  EXPECT_EQ(agg.stall_cycles, sum.stall_cycles);

  inj.reset();
  std::cerr << "[soak.cluster] phases A/B/C completed=" << phase_a << "/" << phase_b << "/"
            << phase_c << " breaker_opens(soak2)=" << fin.device_stats.at("soak2").breaker_opens
            << " closes=" << fin.device_stats.at("soak2").breaker_closes
            << " respawns=" << fin.respawns << std::endl;
}
