// Soak: open-loop mixed traffic (priorities, TTLs, oversized requests)
// against an engine under a probabilistic fault storm, for
// NODETR_SOAK_SECONDS (default 2; the nightly CI job runs 60). Asserts the
// two properties that only show up over time: zero hung futures and bounded
// memory growth. Seeded via NODETR_FAULT_SEED for replay.
#include <gtest/gtest.h>

#include <sys/resource.h>

#include <cstdlib>
#include <iostream>
#include <thread>

#include "nodetr/fault/fault.hpp"
#include "nodetr/nn/attention.hpp"
#include "nodetr/serve/serve.hpp"
#include "nodetr/tensor/ops.hpp"

namespace serve = nodetr::serve;
namespace fault = nodetr::fault;
namespace hls = nodetr::hls;
namespace nn = nodetr::nn;
namespace nt = nodetr::tensor;
namespace fx = nodetr::fx;
using Clock = std::chrono::steady_clock;

namespace {

long max_rss_kb() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;  // KiB on Linux
}

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* v = std::getenv(name);
  return v ? std::strtoll(v, nullptr, 0) : fallback;
}

}  // namespace

TEST(Soak, FaultStormNeverHangsAFutureAndMemoryStaysBounded) {
  const std::int64_t seconds = env_int("NODETR_SOAK_SECONDS", 2);
  auto& inj = fault::Injector::instance();
  inj.reset();
  const auto seed = static_cast<std::uint64_t>(env_int("NODETR_FAULT_SEED", 0x50a7'5eed));
  inj.seed(seed);
  inj.arm("rt.dma.error", fault::Schedule::with_probability(0.05));
  inj.arm("rt.ddr.bitflip", fault::Schedule::with_probability(0.02));
  inj.arm("hls.ip.stall", fault::Schedule::with_probability(0.02));
  inj.arm("serve.alloc", fault::Schedule::with_probability(0.005));
  inj.arm("serve.worker_crash", fault::Schedule::with_probability(0.002));
  inj.arm("serve.overload.expire", fault::Schedule::with_probability(0.01));

  nt::Rng rng{7};
  nn::MhsaConfig mc;
  mc.dim = 16;
  mc.heads = 2;
  mc.height = 4;
  mc.width = 4;
  nn::MultiHeadSelfAttention mhsa(mc, rng);
  mhsa.train(false);

  serve::EngineConfig cfg;
  cfg.point.dim = mc.dim;
  cfg.point.height = mc.height;
  cfg.point.width = mc.width;
  cfg.point.heads = mc.heads;
  cfg.point.scheme = fx::scheme_32_24();
  cfg.backend = serve::Backend::kFpgaFloat;
  cfg.workers = 2;
  cfg.queue_capacity = 128;
  cfg.policy = serve::BackpressurePolicy::kShedOldest;
  cfg.batcher.max_batch = 8;
  cfg.batcher.adaptive = true;
  cfg.batcher.min_wait_us = 0;
  cfg.batcher.max_wait_us = 200;
  cfg.fault.max_retries = 4;
  cfg.fault.backoff_us = 10;
  cfg.fault.max_backoff_us = 100;
  cfg.fault.deadline.sim_cycles = 1'000'000;
  cfg.admission.enabled = true;
  cfg.admission.target_wait_us = 5'000;
  cfg.admission.interval_us = 50'000;
  cfg.breaker.open_after = 8;
  cfg.breaker.cooldown_us = 10'000;
  serve::InferenceEngine engine(cfg, hls::MhsaWeights::from_module(mhsa));

  // Warm up the allocator/thread pools before the baseline RSS reading so
  // steady-state growth, not first-touch, is what the bound measures.
  for (int i = 0; i < 8; ++i) {
    try {
      (void)engine.submit(rng.rand(nt::Shape{2, mc.dim, mc.height, mc.width})).get();
    } catch (const std::runtime_error&) {
      // The storm is already armed; warmup requests may resolve with a
      // typed error, which is fine — they only exist to touch memory.
    }
  }
  const long rss_before_kb = max_rss_kb();

  struct Pending {
    std::future<nt::Tensor> future;
    bool had_deadline;
  };
  std::vector<Pending> pending;
  std::uint64_t accepted = 0, refused = 0, values = 0, typed_errors = 0;
  const auto t_end = Clock::now() + std::chrono::seconds(seconds);
  std::uint64_t i = 0;
  while (Clock::now() < t_end) {
    const nt::index_t rows = 1 + static_cast<nt::index_t>(i % 12);
    serve::SubmitOptions opts;
    opts.priority = static_cast<serve::Priority>(i % 3);
    const bool with_ttl = (i % 4) == 0;
    if (with_ttl) opts.ttl_us = 1'000 + static_cast<std::int64_t>(i % 7) * 10'000;
    try {
      pending.push_back(
          {engine.submit(rng.rand(nt::Shape{rows, mc.dim, mc.height, mc.width}), opts),
           with_ttl});
      ++accepted;
    } catch (const serve::RequestShedError&) {
      ++refused;
    } catch (const serve::RequestExpired&) {
      ++refused;
    }
    ++i;
    // Reap settled futures as we go so `pending` (and the inputs the engine
    // holds for them) cannot grow without bound over a long soak.
    if (pending.size() >= 64) {
      for (auto& p : pending) {
        try {
          (void)p.future.get();
          ++values;
        } catch (const fault::FaultError&) {
          ++typed_errors;  // exhausted retries under the storm
        } catch (const serve::RequestExpired&) {
          ++typed_errors;
        } catch (const serve::RequestShedError&) {
          ++typed_errors;
        }
        // Anything else (an untyped exception) propagates and fails the test.
      }
      pending.clear();
    }
  }
  engine.shutdown();
  const auto resolve_deadline = Clock::now() + std::chrono::seconds(30);
  for (auto& p : pending) {
    ASSERT_EQ(p.future.wait_until(resolve_deadline), std::future_status::ready)
        << "hung future after shutdown (seed 0x" << std::hex << seed << ")";
    try {
      (void)p.future.get();
      ++values;
    } catch (const fault::FaultError&) {
      ++typed_errors;
    } catch (const serve::RequestExpired&) {
      ++typed_errors;
    } catch (const serve::RequestShedError&) {
      ++typed_errors;
    }
  }
  const auto stats = engine.stats();
  // Every accepted request resolved exactly once, value or typed error.
  EXPECT_EQ(values + typed_errors, accepted);
  EXPECT_EQ(stats.completed + stats.failed, stats.submitted);
  EXPECT_GT(values, 0u) << "storm drowned all traffic; nothing completed";

  // Bounded memory: steady-state RSS growth over the whole soak stays under
  // a generous fixed bound (a leak of one input tensor per request would
  // blow far past this).
  const long growth_kb = max_rss_kb() - rss_before_kb;
  EXPECT_LT(growth_kb, 256 * 1024)
      << "RSS grew " << growth_kb << " KiB over " << seconds << "s soak";

  inj.reset();
  std::cerr << "[soak] " << seconds << "s: accepted=" << accepted << " refused=" << refused
            << " values=" << values << " typed_errors=" << typed_errors
            << " sheds=" << stats.shed << " expired=" << stats.expired
            << " breaker_opens=" << stats.breaker_opens << " closes=" << stats.breaker_closes
            << " respawns=" << stats.respawns << " rss_growth_kb=" << growth_kb << std::endl;
}
