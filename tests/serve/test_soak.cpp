// Soak: open-loop mixed traffic (priorities, TTLs, oversized requests)
// against an engine under a probabilistic fault storm, for
// NODETR_SOAK_SECONDS (default 2; the nightly CI job runs 60). Asserts the
// two properties that only show up over time: zero hung futures and bounded
// memory growth. Seeded via NODETR_FAULT_SEED for replay.
#include <gtest/gtest.h>

#include <sys/resource.h>

#include <cstdlib>
#include <iostream>
#include <thread>

#include "nodetr/fault/fault.hpp"
#include "nodetr/nn/attention.hpp"
#include "nodetr/serve/serve.hpp"
#include "nodetr/tensor/ops.hpp"

namespace serve = nodetr::serve;
namespace fault = nodetr::fault;
namespace hls = nodetr::hls;
namespace rt = nodetr::rt;
namespace nn = nodetr::nn;
namespace nt = nodetr::tensor;
namespace fx = nodetr::fx;
using Clock = std::chrono::steady_clock;

namespace {

long max_rss_kb() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;  // KiB on Linux
}

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* v = std::getenv(name);
  return v ? std::strtoll(v, nullptr, 0) : fallback;
}

}  // namespace

TEST(Soak, FaultStormNeverHangsAFutureAndMemoryStaysBounded) {
  const std::int64_t seconds = env_int("NODETR_SOAK_SECONDS", 2);
  auto& inj = fault::Injector::instance();
  inj.reset();
  const auto seed = static_cast<std::uint64_t>(env_int("NODETR_FAULT_SEED", 0x50a7'5eed));
  inj.seed(seed);
  inj.arm("rt.dma.error", fault::Schedule::with_probability(0.05));
  inj.arm("rt.ddr.bitflip", fault::Schedule::with_probability(0.02));
  inj.arm("hls.ip.stall", fault::Schedule::with_probability(0.02));
  inj.arm("serve.alloc", fault::Schedule::with_probability(0.005));
  inj.arm("serve.worker_crash", fault::Schedule::with_probability(0.002));
  inj.arm("serve.overload.expire", fault::Schedule::with_probability(0.01));

  nt::Rng rng{7};
  nn::MhsaConfig mc;
  mc.dim = 16;
  mc.heads = 2;
  mc.height = 4;
  mc.width = 4;
  nn::MultiHeadSelfAttention mhsa(mc, rng);
  mhsa.train(false);

  serve::EngineConfig cfg;
  cfg.point.dim = mc.dim;
  cfg.point.height = mc.height;
  cfg.point.width = mc.width;
  cfg.point.heads = mc.heads;
  cfg.point.scheme = fx::scheme_32_24();
  cfg.backend = serve::Backend::kFpgaFloat;
  cfg.workers = 2;
  cfg.queue_capacity = 128;
  cfg.policy = serve::BackpressurePolicy::kShedOldest;
  cfg.batcher.max_batch = 8;
  cfg.batcher.adaptive = true;
  cfg.batcher.min_wait_us = 0;
  cfg.batcher.max_wait_us = 200;
  cfg.fault.max_retries = 4;
  cfg.fault.backoff_us = 10;
  cfg.fault.max_backoff_us = 100;
  cfg.fault.deadline.sim_cycles = 1'000'000;
  cfg.admission.enabled = true;
  cfg.admission.target_wait_us = 5'000;
  cfg.admission.interval_us = 50'000;
  cfg.breaker.open_after = 8;
  cfg.breaker.cooldown_us = 10'000;
  serve::InferenceEngine engine(cfg, hls::MhsaWeights::from_module(mhsa));

  // Warm up the allocator/thread pools before the baseline RSS reading so
  // steady-state growth, not first-touch, is what the bound measures.
  for (int i = 0; i < 8; ++i) {
    try {
      (void)engine.submit(rng.rand(nt::Shape{2, mc.dim, mc.height, mc.width})).get();
    } catch (const std::runtime_error&) {
      // The storm is already armed; warmup requests may resolve with a
      // typed error, which is fine — they only exist to touch memory.
    }
  }
  const long rss_before_kb = max_rss_kb();

  struct Pending {
    std::future<nt::Tensor> future;
    bool had_deadline;
  };
  std::vector<Pending> pending;
  std::uint64_t accepted = 0, refused = 0, values = 0, typed_errors = 0;
  const auto t_end = Clock::now() + std::chrono::seconds(seconds);
  std::uint64_t i = 0;
  while (Clock::now() < t_end) {
    const nt::index_t rows = 1 + static_cast<nt::index_t>(i % 12);
    serve::SubmitOptions opts;
    opts.priority = static_cast<serve::Priority>(i % 3);
    const bool with_ttl = (i % 4) == 0;
    if (with_ttl) opts.ttl_us = 1'000 + static_cast<std::int64_t>(i % 7) * 10'000;
    try {
      pending.push_back(
          {engine.submit(rng.rand(nt::Shape{rows, mc.dim, mc.height, mc.width}), opts),
           with_ttl});
      ++accepted;
    } catch (const serve::RequestShedError&) {
      ++refused;
    } catch (const serve::RequestExpired&) {
      ++refused;
    }
    ++i;
    // Reap settled futures as we go so `pending` (and the inputs the engine
    // holds for them) cannot grow without bound over a long soak.
    if (pending.size() >= 64) {
      for (auto& p : pending) {
        try {
          (void)p.future.get();
          ++values;
        } catch (const fault::FaultError&) {
          ++typed_errors;  // exhausted retries under the storm
        } catch (const serve::RequestExpired&) {
          ++typed_errors;
        } catch (const serve::RequestShedError&) {
          ++typed_errors;
        }
        // Anything else (an untyped exception) propagates and fails the test.
      }
      pending.clear();
    }
  }
  engine.shutdown();
  const auto resolve_deadline = Clock::now() + std::chrono::seconds(30);
  for (auto& p : pending) {
    ASSERT_EQ(p.future.wait_until(resolve_deadline), std::future_status::ready)
        << "hung future after shutdown (seed 0x" << std::hex << seed << ")";
    try {
      (void)p.future.get();
      ++values;
    } catch (const fault::FaultError&) {
      ++typed_errors;
    } catch (const serve::RequestExpired&) {
      ++typed_errors;
    } catch (const serve::RequestShedError&) {
      ++typed_errors;
    }
  }
  const auto stats = engine.stats();
  // Every accepted request resolved exactly once, value or typed error.
  EXPECT_EQ(values + typed_errors, accepted);
  EXPECT_EQ(stats.completed + stats.failed, stats.submitted);
  EXPECT_GT(values, 0u) << "storm drowned all traffic; nothing completed";

  // Bounded memory: steady-state RSS growth over the whole soak stays under
  // a generous fixed bound (a leak of one input tensor per request would
  // blow far past this).
  const long growth_kb = max_rss_kb() - rss_before_kb;
  EXPECT_LT(growth_kb, 256 * 1024)
      << "RSS grew " << growth_kb << " KiB over " << seconds << "s soak";

  inj.reset();
  std::cerr << "[soak] " << seconds << "s: accepted=" << accepted << " refused=" << refused
            << " values=" << values << " typed_errors=" << typed_errors
            << " sheds=" << stats.shed << " expired=" << stats.expired
            << " breaker_opens=" << stats.breaker_opens << " closes=" << stats.breaker_closes
            << " respawns=" << stats.respawns << " rss_growth_kb=" << growth_kb << std::endl;
}

// Multi-device soak: a routed 4-board fleet runs three phases —
//   A: clean traffic (baseline goodput);
//   B: one board is "killed" mid-soak (its scoped DMA site fault-storms on
//      every transfer), so its breaker opens and the router reroutes;
//   C: the board is restored (storm disarmed); the next half-open probe
//      heals it and goodput recovers.
// Asserts zero hung futures across all phases, the kill/heal breaker cycle
// on exactly the stormed board, recovery of goodput after the restore, and
// per-board DeviceCounters consistency: each board's counters are drained
// exactly once (the per-backend aggregate equals the per-board sum) with no
// negative fields.
TEST(Soak, ClusterKillAndRestoreDeviceRecoversGoodputAndCounters) {
  const std::int64_t seconds = env_int("NODETR_SOAK_SECONDS", 2);
  const std::int64_t phase_ms = std::max<std::int64_t>(seconds * 1000 / 3, 300);
  auto& inj = fault::Injector::instance();
  inj.reset();
  inj.seed(static_cast<std::uint64_t>(env_int("NODETR_FAULT_SEED", 0x50a7'5eed)));

  nt::Rng rng{11};
  nn::MhsaConfig mc;
  mc.dim = 16;
  mc.heads = 2;
  mc.height = 4;
  mc.width = 4;
  nn::MultiHeadSelfAttention mhsa(mc, rng);
  mhsa.train(false);

  serve::EngineConfig cfg;
  cfg.point.dim = mc.dim;
  cfg.point.height = mc.height;
  cfg.point.width = mc.width;
  cfg.point.heads = mc.heads;
  cfg.point.scheme = fx::scheme_32_24();
  cfg.queue_capacity = 128;
  cfg.batcher.max_batch = 8;
  cfg.batcher.max_wait_us = 200;
  cfg.fault.max_retries = 4;
  cfg.fault.backoff_us = 10;
  cfg.fault.max_backoff_us = 100;
  // Trip fast and probe often, so the kill is detected within a batch or two
  // and the restore heals within phase C even after repeated reopens.
  cfg.breaker.open_after = 2;
  cfg.breaker.cooldown_us = 5'000;
  cfg.breaker.max_cooldown_us = 50'000;
  cfg.devices.resize(4);
  for (std::size_t i = 0; i < cfg.devices.size(); ++i) {
    cfg.devices[i].name = "soak" + std::to_string(i);
    cfg.devices[i].backend = serve::Backend::kFpgaFloat;
  }
  serve::InferenceEngine engine(cfg, hls::MhsaWeights::from_module(mhsa));

  std::uint64_t accepted = 0, values = 0, typed_errors = 0;
  std::uint64_t i = 0;
  std::vector<std::future<nt::Tensor>> pending;
  const auto reap = [&] {
    for (auto& f : pending) {
      try {
        (void)f.get();
        ++values;
      } catch (const fault::FaultError&) {
        ++typed_errors;
      } catch (const serve::RequestExpired&) {
        ++typed_errors;
      } catch (const serve::RequestShedError&) {
        ++typed_errors;
      }
    }
    pending.clear();
  };
  const auto drive_for = [&](std::int64_t ms) {
    const std::uint64_t before = engine.stats().completed;
    const auto until = Clock::now() + std::chrono::milliseconds(ms);
    while (Clock::now() < until) {
      const nt::index_t rows = 1 + static_cast<nt::index_t>(i % 10);
      pending.push_back(engine.submit(rng.rand(nt::Shape{rows, mc.dim, mc.height, mc.width})));
      ++accepted;
      ++i;
      if (pending.size() >= 48) reap();
    }
    reap();
    return engine.stats().completed - before;
  };

  // Phase A: healthy fleet baseline.
  const std::uint64_t phase_a = drive_for(phase_ms);
  // Phase B: kill soak2 — every DMA transfer on that board faults.
  inj.arm("rt.dma.error.soak2", fault::Schedule::always());
  const std::uint64_t phase_b = drive_for(phase_ms);
  const serve::EngineStats mid = engine.stats();
  EXPECT_GE(mid.device_stats.at("soak2").breaker_opens, 1u)
      << "killed board's breaker never opened";
  EXPECT_EQ(mid.device_stats.at("soak0").breaker_opens, 0u);
  // Phase C: restore the board; drive until its breaker closes (a half-open
  // probe on the clean device), bounded by a generous deadline.
  inj.disarm("rt.dma.error.soak2");
  const std::uint64_t phase_c = drive_for(phase_ms);
  const auto heal_deadline = Clock::now() + std::chrono::seconds(20);
  while (engine.stats().device_stats.at("soak2").breaker_closes < 1 &&
         Clock::now() < heal_deadline) {
    (void)drive_for(50);
  }
  engine.shutdown();
  reap();

  const serve::EngineStats fin = engine.stats();
  // Every accepted request resolved exactly once, value or typed error.
  EXPECT_EQ(values + typed_errors, accepted);
  EXPECT_EQ(fin.completed + fin.failed, fin.submitted);
  // The kill was survived and the restore healed the board.
  EXPECT_GE(fin.device_stats.at("soak2").breaker_closes, 1u)
      << "restored board never healed (no successful half-open probe)";
  EXPECT_FALSE(fin.device_stats.at("soak2").breaker_open);
  // Goodput survived the storm and recovered after the restore. The host is
  // shared, so the bars are deliberately loose — they catch collapse (a
  // stalled router, a dead fleet), not percentage regressions.
  EXPECT_GT(phase_b, phase_a / 4) << "goodput collapsed during the device kill";
  EXPECT_GT(phase_c, phase_a / 2) << "goodput did not recover after the restore";
  // Per-board counters: drained exactly once into both views — the
  // per-backend aggregate must equal the per-board sum, all fields >= 0.
  rt::DeviceCounters sum;
  for (const auto& [name, ds] : fin.device_stats) {
    EXPECT_GE(ds.counters.starts, 0) << name;
    EXPECT_GE(ds.counters.stalls, 0) << name;
    EXPECT_GE(ds.counters.dma_bytes_in, 0) << name;
    EXPECT_GE(ds.counters.dma_bytes_out, 0) << name;
    EXPECT_GE(ds.counters.weight_bytes, 0) << name;
    EXPECT_GE(ds.counters.weight_bytes_saved, 0) << name;
    EXPECT_GE(ds.counters.dma_cycles, 0) << name;
    EXPECT_GE(ds.counters.compute_cycles, 0) << name;
    EXPECT_GE(ds.counters.stall_cycles, 0) << name;
    sum += ds.counters;
  }
  ASSERT_EQ(fin.devices.count("fpga_float"), 1u);
  const rt::DeviceCounters& agg = fin.devices.at("fpga_float");
  EXPECT_EQ(agg.starts, sum.starts);
  EXPECT_EQ(agg.stalls, sum.stalls);
  EXPECT_EQ(agg.dma_bytes_in, sum.dma_bytes_in);
  EXPECT_EQ(agg.dma_bytes_out, sum.dma_bytes_out);
  EXPECT_EQ(agg.weight_bytes, sum.weight_bytes);
  EXPECT_EQ(agg.weight_bytes_saved, sum.weight_bytes_saved);
  EXPECT_EQ(agg.dma_cycles, sum.dma_cycles);
  EXPECT_EQ(agg.compute_cycles, sum.compute_cycles);
  EXPECT_EQ(agg.stall_cycles, sum.stall_cycles);

  inj.reset();
  std::cerr << "[soak.cluster] phases A/B/C completed=" << phase_a << "/" << phase_b << "/"
            << phase_c << " breaker_opens(soak2)=" << fin.device_stats.at("soak2").breaker_opens
            << " closes=" << fin.device_stats.at("soak2").breaker_closes
            << " respawns=" << fin.respawns << std::endl;
}

// Swap-under-storm soak: a 3-board fleet serves traffic while one board's
// DMA path fault-storms the whole time AND the model is hot-swapped over and
// over (alternating between two weight versions). Asserts the hot-swap
// guarantees that only show up under sustained churn: every swap reaches a
// terminal state (all commit — no rollback trigger is armed), zero failed
// futures, every response bitwise attributable to exactly one version, and
// after the last commit the whole fleet converges on the final version.
TEST(Soak, SwapStormOnDegradedFleetNeverFailsAFutureAndConverges) {
  const std::int64_t seconds = env_int("NODETR_SOAK_SECONDS", 2);
  const std::int64_t swaps = std::max<std::int64_t>(50, seconds * 8);
  auto& inj = fault::Injector::instance();
  inj.reset();
  const auto seed = static_cast<std::uint64_t>(env_int("NODETR_FAULT_SEED", 0x50a7'5eed));
  inj.seed(seed);

  nt::Rng rng{23};
  nn::MhsaConfig mc;
  mc.dim = 16;
  mc.heads = 2;
  mc.height = 4;
  mc.width = 4;
  nn::MultiHeadSelfAttention mhsa(mc, rng);
  mhsa.train(false);
  const hls::MhsaWeights weights_a = hls::MhsaWeights::from_module(mhsa);
  hls::MhsaWeights weights_b = weights_a;
  for (nt::Tensor* t : {&weights_b.wq, &weights_b.wk, &weights_b.wv}) {
    float* p = t->data();
    for (nt::index_t k = 0; k < t->numel(); ++k) p[k] += 0.05f;
  }

  serve::EngineConfig cfg;
  cfg.point.dim = mc.dim;
  cfg.point.height = mc.height;
  cfg.point.width = mc.width;
  cfg.point.heads = mc.heads;
  cfg.point.scheme = fx::scheme_32_24();
  cfg.queue_capacity = 128;
  cfg.batcher.max_batch = 8;
  cfg.batcher.max_wait_us = 100;
  cfg.fault.max_retries = 6;
  cfg.fault.backoff_us = 10;
  cfg.fault.max_backoff_us = 100;
  cfg.breaker.open_after = 2;       // demote the stormed board fast; its CPU
  cfg.breaker.cooldown_us = 2'000;  // fallback is bitwise for float backends
  cfg.devices.resize(3);
  for (std::size_t d = 0; d < cfg.devices.size(); ++d) {
    cfg.devices[d].name = "swap" + std::to_string(d);
    cfg.devices[d].backend = serve::Backend::kFpgaFloat;
  }
  // Every whole-request batch canaries; one shadow-scored batch promotes.
  cfg.hot_swap.canary_fraction = 1.0;
  cfg.hot_swap.min_canary_batches = 1;
  cfg.hot_swap.shadow_every = 1;
  cfg.hot_swap.max_divergence = 0.0;  // quality gates off: churn is the test
  cfg.hot_swap.rollback_fault_burst = 0;
  cfg.hot_swap.rollback_slo_breaches = 0;
  cfg.hot_swap.swap_timeout_us = 60'000'000;
  serve::InferenceEngine engine(cfg, weights_a);

  // Board swap1 is degraded for the entire soak: most DMA transfers on it
  // fault, so the storm overlaps canary staging, commits, and the breaker's
  // demote/probe cycle on that board (open_after=2 means its retries land on
  // the bitwise-identical CPU fallback rather than exhausting).
  inj.arm("rt.dma.error.swap1", fault::Schedule::with_probability(0.85));

  // Bitwise references for both versions (the float IP datapath the boards
  // and the CPU fallback share).
  hls::MhsaDesignPoint ref_point = cfg.point;
  ref_point.dtype = hls::DataType::kFloat32;
  const nt::Tensor x = rng.rand(nt::Shape{1, mc.dim, mc.height, mc.width});
  const nt::Tensor ref_a = hls::MhsaIpCore(ref_point, weights_a).run(x);
  const nt::Tensor ref_b = hls::MhsaIpCore(ref_point, weights_b).run(x);

  // Bursts of concurrent requests, so the cost-model router spreads load
  // across all three boards (sequential submit→get traffic would park on the
  // least-loaded board and never touch the degraded one).
  std::uint64_t responses = 0, hybrid = 0;
  const auto drive_burst = [&] {
    std::vector<std::future<nt::Tensor>> burst;
    for (int b = 0; b < 9; ++b) burst.push_back(engine.submit(x));
    for (auto& f : burst) {
      const nt::Tensor y = f.get();  // throw = failed future
      ++responses;
      const bool is_a = nt::allclose(y, ref_a, 0.0f, 0.0f);
      const bool is_b = nt::allclose(y, ref_b, 0.0f, 0.0f);
      if (!is_a && !is_b) ++hybrid;
    }
  };
  for (std::int64_t s = 0; s < swaps; ++s) {
    const auto id = engine.registry().publish(s % 2 == 0 ? weights_b : weights_a,
                                              "soak swap " + std::to_string(s));
    engine.begin_swap(id);
    const auto conclude = Clock::now() + std::chrono::seconds(30);
    while (engine.swap_stats().canary_in_flight) {
      ASSERT_LT(Clock::now(), conclude)
          << "swap " << s << " never concluded (seed 0x" << std::hex << seed << ")";
      drive_burst();
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  inj.disarm("rt.dma.error.swap1");

  // Convergence: after the last commit every board serves the final version
  // bitwise (bursts again, so all three boards get probed).
  const nt::Tensor& final_ref = (swaps - 1) % 2 == 0 ? ref_b : ref_a;
  for (int round = 0; round < 4; ++round) {
    std::vector<std::future<nt::Tensor>> burst;
    for (int b = 0; b < 9; ++b) burst.push_back(engine.submit(x));
    for (auto& f : burst) {
      EXPECT_TRUE(nt::allclose(f.get(), final_ref, 0.0f, 0.0f))
          << "fleet did not converge on the final version (round " << round << ")";
    }
  }
  engine.shutdown();

  const serve::EngineStats fin = engine.stats();
  const serve::SwapStats swap = fin.swap;
  EXPECT_EQ(swap.swaps_begun, static_cast<std::uint64_t>(swaps));
  EXPECT_EQ(swap.swaps_committed + swap.swaps_rolled_back,
            static_cast<std::uint64_t>(swaps))
      << "a swap leaked without reaching a terminal state";
  EXPECT_EQ(swap.swaps_committed, static_cast<std::uint64_t>(swaps));
  EXPECT_EQ(hybrid, 0u) << "responses not bitwise attributable to one version";
  EXPECT_EQ(fin.failed, 0u) << "futures failed under swap storm (seed 0x" << std::hex
                            << seed << ")";
  EXPECT_EQ(fin.completed, fin.submitted);
  EXPECT_EQ(engine.active_version(), engine.registry().active());

  inj.reset();
  std::cerr << "[soak.swap] swaps=" << swaps << " responses=" << responses
            << " restages=" << swap.restages << " stage_failures=" << swap.stage_failures
            << " breaker_opens(swap1)=" << fin.device_stats.at("swap1").breaker_opens
            << " stage_p99_us=" << swap.stage_p99_us << std::endl;
}
