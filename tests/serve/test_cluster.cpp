// Differential cluster harness: an N-device routed fleet must be numerically
// indistinguishable from a single device served sequentially —
//   - all-float fleets (CPU datapath and simulated-FPGA boards): bitwise
//     equal to sequential single-request execution, across request splits,
//     merges, and carries;
//   - fixed-point fleets: bitwise equal to sequential fixed execution, and
//     within the scheme_32_24 quantization tolerance of the float reference;
//   - with one board fault-stormed: every future still resolves with the
//     bitwise-correct value (retry -> breaker -> CPU fallback is bitwise for
//     float), the stormed board's breaker opens, and traffic reroutes.
// Plus the property sweeps: a 1000-seed pure routing/packing sweep (no rows
// dropped or double-assigned, FIFO preserved per device) and a live-engine
// sweep over (devices, backends, batch, priorities, fault schedules)
// asserting every future resolves exactly once and per-device execution
// respects submission order.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <random>

#include "nodetr/fault/fault.hpp"
#include "nodetr/nn/attention.hpp"
#include "nodetr/serve/serve.hpp"
#include "nodetr/tensor/ops.hpp"

namespace serve = nodetr::serve;
namespace hls = nodetr::hls;
namespace rt = nodetr::rt;
namespace nn = nodetr::nn;
namespace nt = nodetr::tensor;
namespace fx = nodetr::fx;
namespace obs = nodetr::obs;
namespace fault = nodetr::fault;
using nt::index_t;

namespace {

struct ClusterFixture {
  nt::Rng rng{42};
  nn::MhsaConfig cfg;
  std::unique_ptr<nn::MultiHeadSelfAttention> mhsa;
  hls::MhsaDesignPoint point;

  ClusterFixture() {
    fault::Injector::instance().reset();
    cfg.dim = 16;
    cfg.heads = 2;
    cfg.height = 4;
    cfg.width = 4;
    mhsa = std::make_unique<nn::MultiHeadSelfAttention>(cfg, rng);
    mhsa->train(false);
    point.dim = cfg.dim;
    point.height = cfg.height;
    point.width = cfg.width;
    point.heads = cfg.heads;
    point.scheme = fx::scheme_32_24();
  }

  ~ClusterFixture() { fault::Injector::instance().reset(); }

  [[nodiscard]] hls::MhsaWeights weights() { return hls::MhsaWeights::from_module(*mhsa); }

  [[nodiscard]] std::vector<nt::Tensor> make_requests(const std::vector<index_t>& rows) {
    std::vector<nt::Tensor> xs;
    xs.reserve(rows.size());
    for (index_t r : rows) {
      xs.push_back(rng.rand(nt::Shape{r, cfg.dim, cfg.height, cfg.width}));
    }
    return xs;
  }

  /// Sequential single-request reference through one private accelerator —
  /// the "single device, no router" baseline every fleet is diffed against.
  [[nodiscard]] std::vector<nt::Tensor> sequential_execute(hls::DataType dtype,
                                                           const std::vector<nt::Tensor>& xs) {
    hls::MhsaDesignPoint p = point;
    p.dtype = dtype;
    rt::DdrMemory ddr;
    rt::MhsaAccelerator accel(std::make_unique<hls::MhsaIpCore>(p, weights()), ddr);
    std::vector<nt::Tensor> ys;
    ys.reserve(xs.size());
    for (const auto& x : xs) ys.push_back(accel.execute(x));
    return ys;
  }

  [[nodiscard]] serve::EngineConfig cluster_config(std::vector<serve::DeviceConfig> devices) {
    serve::EngineConfig config;
    config.point = point;
    config.devices = std::move(devices);
    config.batcher.max_batch = 4;
    config.batcher.max_wait_us = 5000;  // linger so requests coalesce and split
    return config;
  }

  /// Submit all requests FIFO through a routed fleet and wait for results.
  [[nodiscard]] std::vector<nt::Tensor> routed(const serve::EngineConfig& config,
                                               const std::vector<nt::Tensor>& xs,
                                               serve::EngineStats* stats_out = nullptr) {
    serve::InferenceEngine engine(config, weights());
    std::vector<std::future<nt::Tensor>> futures;
    futures.reserve(xs.size());
    for (const auto& x : xs) futures.push_back(engine.submit(x));
    std::vector<nt::Tensor> ys;
    ys.reserve(xs.size());
    for (auto& f : futures) ys.push_back(f.get());
    engine.shutdown();
    if (stats_out) *stats_out = engine.stats();
    return ys;
  }
};

std::vector<serve::DeviceConfig> fleet(std::size_t n, serve::Backend backend) {
  std::vector<serve::DeviceConfig> devices(n);
  for (std::size_t i = 0; i < n; ++i) {
    devices[i].name = "dev" + std::to_string(i);
    devices[i].backend = backend;
  }
  return devices;
}

}  // namespace

TEST(Cluster, FloatFleetBitwiseEqualsSequentialSingleDevice) {
  ClusterFixture fx_;
  // Mixed sizes: rows > max_batch force splits and carries across batches.
  const auto xs = fx_.make_requests({1, 6, 2, 3, 1, 4, 7, 2, 1, 3, 5, 2});
  const auto ref = fx_.sequential_execute(hls::DataType::kFloat32, xs);
  serve::EngineStats stats;
  const auto got =
      fx_.routed(fx_.cluster_config(fleet(4, serve::Backend::kFpgaFloat)), xs, &stats);
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(got[i].shape(), ref[i].shape()) << "request " << i;
    EXPECT_TRUE(nt::allclose(got[i], ref[i], 0.0f, 0.0f)) << "request " << i;
  }
  EXPECT_EQ(stats.completed, xs.size());
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.device_stats.size(), 4u);
}

TEST(Cluster, HeterogeneousFleetStaysBitwiseOnFloatPaths) {
  ClusterFixture fx_;
  const auto xs = fx_.make_requests({2, 1, 5, 3, 1, 2, 4, 1, 6, 2});
  const auto ref = fx_.sequential_execute(hls::DataType::kFloat32, xs);
  // CPU-float board + two FPGA-float boards: placement must not matter.
  std::vector<serve::DeviceConfig> devices = fleet(3, serve::Backend::kFpgaFloat);
  devices[0].backend = serve::Backend::kCpuFloat;
  devices[2].clock_mhz = 100.0;  // slower board; router just costs it higher
  serve::EngineStats stats;
  const auto got = fx_.routed(fx_.cluster_config(std::move(devices)), xs, &stats);
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_TRUE(nt::allclose(got[i], ref[i], 0.0f, 0.0f)) << "request " << i;
  }
  EXPECT_EQ(stats.completed, xs.size());
  ASSERT_EQ(stats.device_stats.size(), 3u);
  EXPECT_EQ(stats.device_stats.at("dev0").backend, "cpu_float");
  EXPECT_EQ(stats.device_stats.at("dev1").backend, "fpga_float");
}

TEST(Cluster, FixedFleetBitwiseEqualsSequentialFixedAndWithinQuantTolerance) {
  ClusterFixture fx_;
  const auto xs = fx_.make_requests({1, 3, 2, 4, 1, 2, 5, 3});
  const auto fixed_ref = fx_.sequential_execute(hls::DataType::kFixed, xs);
  const auto float_ref = fx_.sequential_execute(hls::DataType::kFloat32, xs);
  const auto got = fx_.routed(fx_.cluster_config(fleet(4, serve::Backend::kFpgaFixed)), xs);
  ASSERT_EQ(got.size(), xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    // Identical fixed-point IPs on every board: placement cannot change bits.
    EXPECT_TRUE(nt::allclose(got[i], fixed_ref[i], 0.0f, 0.0f)) << "request " << i;
    // scheme_32_24: the paper's "no degradation" point (cf. QExec tests).
    EXPECT_LE(nt::max_abs_diff(got[i], float_ref[i]), 0.05f) << "request " << i;
  }
}

TEST(Cluster, FailoverUnderPerDeviceFaultStormStaysBitwise) {
  ClusterFixture fx_;
  const auto xs = fx_.make_requests({2, 3, 1, 4, 2, 1, 3, 2, 5, 1, 2, 3, 1, 4, 2, 1});
  const auto ref = fx_.sequential_execute(hls::DataType::kFloat32, xs);
  // dev1's DMA fails every transfer: retries exhaust, its breaker opens, the
  // session demotes to the (bitwise-identical) CPU float datapath, and the
  // router steers new work to the healthy boards.
  fault::Injector::instance().seed(7);
  fault::Injector::instance().arm("rt.dma.error.dev1", fault::Schedule::always());
  serve::EngineConfig config = fx_.cluster_config(fleet(4, serve::Backend::kFpgaFloat));
  // Trip before the retry budget runs out so no request can fail under an
  // always-on storm: the second consecutive fault opens the breaker and the
  // same recovery loop finishes the batch on the CPU datapath.
  config.breaker.open_after = 2;
  serve::EngineStats stats;
  const auto got = fx_.routed(config, xs, &stats);
  fault::Injector::instance().reset();
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_TRUE(nt::allclose(got[i], ref[i], 0.0f, 0.0f)) << "request " << i;
  }
  EXPECT_EQ(stats.completed, xs.size());
  EXPECT_EQ(stats.failed, 0u);
  // Only the stormed board's breaker may have tripped.
  EXPECT_EQ(stats.device_stats.at("dev0").breaker_opens, 0u);
  EXPECT_EQ(stats.device_stats.at("dev2").breaker_opens, 0u);
  EXPECT_EQ(stats.device_stats.at("dev3").breaker_opens, 0u);
}

TEST(Cluster, BreakerOpenSteersRouterToHealthyDevices) {
  ClusterFixture fx_;
  fault::Injector::instance().seed(11);
  fault::Injector::instance().arm("rt.dma.error.dev0", fault::Schedule::always());
  serve::EngineConfig config = fx_.cluster_config(fleet(2, serve::Backend::kFpgaFloat));
  config.breaker.open_after = 2;           // trip fast
  config.breaker.cooldown_us = 60'000'000; // never re-admitted within the test
  serve::InferenceEngine engine(config, fx_.weights());
  // First wave: dev0 will absorb some traffic, fault, and open its breaker.
  std::vector<std::future<nt::Tensor>> futures;
  const auto xs = fx_.make_requests(std::vector<index_t>(24, 1));
  for (std::size_t i = 0; i < 8; ++i) futures.push_back(engine.submit(xs[i]));
  for (std::size_t i = 0; i < 8; ++i) futures[i].get();
  // The breaker must be open by now (every dev0 batch faults through all
  // retries); everything new must land on dev1.
  const serve::EngineStats mid = engine.stats();
  ASSERT_GE(mid.device_stats.at("dev0").breaker_opens, 1u);
  EXPECT_TRUE(mid.device_stats.at("dev0").breaker_open);
  const std::uint64_t dev0_rows_before = mid.device_stats.at("dev0").rows;
  for (std::size_t i = 8; i < xs.size(); ++i) futures.push_back(engine.submit(xs[i]));
  for (std::size_t i = 8; i < xs.size(); ++i) futures[i].get();
  engine.shutdown();
  const serve::EngineStats fin = engine.stats();
  EXPECT_EQ(fin.completed, xs.size());
  // No second-wave batch ran on dev0: its rows stayed where the first wave
  // left them while dev1 absorbed the remainder.
  EXPECT_EQ(fin.device_stats.at("dev0").rows, dev0_rows_before);
  EXPECT_GE(fin.device_stats.at("dev1").rows, static_cast<std::uint64_t>(xs.size() - 8));
  fault::Injector::instance().reset();
}

TEST(Cluster, PerDeviceMetricNamesArePinned) {
  ClusterFixture fx_;
  std::vector<serve::DeviceConfig> devices = fleet(2, serve::Backend::kFpgaFloat);
  devices[0].name = "alpha";
  devices[1].name = "beta";
  const auto xs = fx_.make_requests({1, 2, 1, 2, 1, 2, 1, 2});
  (void)fx_.routed(fx_.cluster_config(std::move(devices)), xs);
  auto& reg = obs::Registry::instance();
  // The namespaced per-device counter names are API: dashboards and the soak
  // harness key on them, so a rename must fail this test.
  EXPECT_GT(reg.counter("serve.device.alpha.routed").value() +
                reg.counter("serve.device.beta.routed").value(),
            0);
  EXPECT_GT(reg.counter("serve.device.alpha.batches").value() +
                reg.counter("serve.device.beta.batches").value(),
            0);
  EXPECT_GT(reg.counter("serve.device.alpha.rows").value() +
                reg.counter("serve.device.beta.rows").value(),
            0);
  const std::string om = reg.to_openmetrics();
  EXPECT_NE(om.find("nodetr_serve_device_alpha_routed_total"), std::string::npos);
  EXPECT_NE(om.find("nodetr_serve_device_alpha_breaker_opens_total"), std::string::npos);
  EXPECT_NE(om.find("nodetr_serve_device_beta_breaker_closes_total"), std::string::npos);
  EXPECT_NE(om.find("nodetr_serve_device_beta_breaker_open"), std::string::npos);
}

// 1000-seed pure routing + packing sweep (no engine, no threads): FIFO-route
// random request sets across random fleets, pack each device's share with the
// batcher's planning core, and assert no row is dropped or double-assigned
// and per-device FIFO order survives splits.
TEST(ClusterProperty, RoutePlusPlanNeverDropsOrReordersRows) {
  for (std::uint64_t seed = 0; seed < 1000; ++seed) {
    std::mt19937_64 rng(seed);
    const std::size_t n_devices = 1 + rng() % 8;
    const index_t max_batch = 1 + static_cast<index_t>(rng() % 8);
    std::vector<serve::ClusterRouter::DeviceSeed> seeds;
    for (std::size_t i = 0; i < n_devices; ++i) {
      seeds.push_back({"dev" + std::to_string(i),
                       1.0 + static_cast<double>(rng() % 500) / 100.0});
    }
    serve::ClusterRouter router(std::move(seeds), serve::RouterConfig{});
    const std::size_t n_requests = 1 + rng() % 40;
    const auto now = serve::ClusterRouter::Clock::now();
    std::vector<std::vector<index_t>> per_device_rows(n_devices);
    std::vector<std::vector<std::size_t>> per_device_requests(n_devices);
    std::vector<index_t> request_rows(n_requests);
    for (std::size_t r = 0; r < n_requests; ++r) {
      request_rows[r] = 1 + static_cast<index_t>(rng() % 12);
      const std::size_t d = router.pick(request_rows[r], now);
      ASSERT_LT(d, n_devices) << "seed " << seed;
      router.on_dispatch(d, request_rows[r]);
      per_device_rows[d].push_back(request_rows[r]);
      per_device_requests[d].push_back(r);
      // Some requests resolve before the sweep ends (random completion).
      if (rng() % 3 == 0) router.on_resolved(d, request_rows[r]);
    }
    std::vector<index_t> rows_seen(n_requests, 0);
    for (std::size_t d = 0; d < n_devices; ++d) {
      const auto plans = serve::MicroBatcher::plan(per_device_rows[d], max_batch);
      std::size_t last_request = 0;
      index_t last_row_end = 0;
      for (const auto& batch : plans) {
        index_t batch_rows = 0;
        for (const auto& slice : batch) {
          ASSERT_LT(slice.request, per_device_requests[d].size()) << "seed " << seed;
          const std::size_t global = per_device_requests[d][slice.request];
          // FIFO per device: slices advance monotonically through the
          // device's request sequence, rows in order within each request.
          ASSERT_GE(slice.request, last_request) << "seed " << seed;
          if (slice.request != last_request) last_row_end = 0;
          ASSERT_EQ(slice.row_begin, last_row_end) << "seed " << seed;
          last_request = slice.request;
          last_row_end = slice.row_end;
          rows_seen[global] += slice.row_end - slice.row_begin;
          batch_rows += slice.row_end - slice.row_begin;
        }
        ASSERT_LE(batch_rows, max_batch) << "seed " << seed;
      }
    }
    for (std::size_t r = 0; r < n_requests; ++r) {
      ASSERT_EQ(rows_seen[r], request_rows[r]) << "seed " << seed << " request " << r;
    }
  }
}

// Live-engine property sweep over (fleet size, backends, batch geometry,
// priorities, per-device fault schedules): every accepted future must resolve
// exactly once, results must match the single-device reference, and requests
// routed to the same device must begin execution in submission order (FIFO
// per client — there is one submitting client, so submission order is the
// client order). Seed count scales with NODETR_CLUSTER_SWEEP_SEEDS.
TEST(ClusterProperty, LiveFleetSweepResolvesEveryFutureExactlyOnceInFifoOrder) {
  int sweep_seeds = 24;
  if (const char* env = std::getenv("NODETR_CLUSTER_SWEEP_SEEDS")) {
    sweep_seeds = std::max(1, std::atoi(env));
  }
  ClusterFixture fx_;
  obs::FlightRecorder::instance().set_enabled(true);
  for (int seed = 0; seed < sweep_seeds; ++seed) {
    std::mt19937_64 rng(static_cast<std::uint64_t>(seed) * 7919 + 1);
    fault::Injector::instance().reset();
    obs::FlightRecorder::instance().clear();

    const std::size_t n_devices = 1 + rng() % 4;
    const bool fixed_fleet = rng() % 4 == 0;  // homogeneous fixed, else float mix
    std::vector<serve::DeviceConfig> devices(n_devices);
    for (std::size_t i = 0; i < n_devices; ++i) {
      devices[i].name = "dev" + std::to_string(i);
      devices[i].backend = fixed_fleet             ? serve::Backend::kFpgaFixed
                           : (rng() % 3 == 0)      ? serve::Backend::kCpuFloat
                                                   : serve::Backend::kFpgaFloat;
      devices[i].clock_mhz = 100.0 + static_cast<double>(rng() % 300);
    }
    serve::EngineConfig config = fx_.cluster_config(std::move(devices));
    config.batcher.max_batch = 1 + static_cast<index_t>(rng() % 6);
    config.batcher.max_wait_us = static_cast<std::int64_t>(rng() % 3000);
    // Trip the breaker before the retry budget can run out, so a fault storm
    // demotes to the CPU datapath instead of failing innocent requests.
    config.breaker.open_after = 2;
    if (!fixed_fleet && rng() % 2 == 0) {
      // Deterministic per-board fault stream on one random device; float
      // fleets recover bitwise (retry, breaker, CPU fallback).
      fault::Injector::instance().seed(static_cast<std::uint64_t>(seed));
      fault::Injector::instance().arm(
          "rt.dma.error.dev" + std::to_string(rng() % n_devices),
          fault::Schedule::with_probability(0.3));
    }

    const std::size_t n_requests = 8 + rng() % 17;
    std::vector<index_t> rows(n_requests);
    for (auto& r : rows) r = 1 + static_cast<index_t>(rng() % 7);
    const auto xs = fx_.make_requests(rows);
    const auto ref = fx_.sequential_execute(hls::DataType::kFloat32, xs);

    serve::InferenceEngine engine(config, fx_.weights());
    std::vector<std::future<nt::Tensor>> futures;
    std::vector<std::uint64_t> trace_ids;
    static const serve::Priority kPriorities[] = {
        serve::Priority::kBatch, serve::Priority::kNormal, serve::Priority::kInteractive};
    for (std::size_t i = 0; i < n_requests; ++i) {
      serve::SubmitOptions opts;
      opts.priority = kPriorities[rng() % 3];
      opts.trace_id = obs::new_trace_id();
      trace_ids.push_back(opts.trace_id);
      futures.push_back(engine.submit(xs[i], opts));
    }
    std::size_t resolved_ok = 0, resolved_err = 0;
    for (std::size_t i = 0; i < n_requests; ++i) {
      try {
        const nt::Tensor y = futures[i].get();
        ++resolved_ok;
        if (fixed_fleet) {
          EXPECT_LE(nt::max_abs_diff(y, ref[i]), 0.05f) << "seed " << seed << " req " << i;
        } else {
          EXPECT_TRUE(nt::allclose(y, ref[i], 0.0f, 0.0f)) << "seed " << seed << " req " << i;
        }
      } catch (...) {
        ++resolved_err;  // still resolved exactly once — never hangs
      }
    }
    engine.shutdown();
    const serve::EngineStats stats = engine.stats();
    EXPECT_EQ(resolved_ok + resolved_err, n_requests) << "seed " << seed;
    EXPECT_EQ(stats.completed, resolved_ok) << "seed " << seed;
    EXPECT_EQ(stats.failed + stats.expired, resolved_err) << "seed " << seed;
    EXPECT_EQ(resolved_err, 0u) << "seed " << seed;  // no TTLs, transient faults only

    // FIFO per device: requests routed to the same board must begin their
    // first execution in submission order (the engine is quiesced, so the
    // flight rings are stable).
    std::map<std::int64_t, std::uint64_t> last_exec_per_device;
    for (std::size_t i = 0; i < n_requests; ++i) {
      const auto events = obs::FlightRecorder::instance().events_for(trace_ids[i]);
      std::int64_t device = -1;
      std::uint64_t first_exec_ns = 0;
      for (const auto& ev : events) {
        if (ev.kind == obs::FlightKind::kRouted && device == -1) device = ev.a;
        if (ev.kind == obs::FlightKind::kExecBegin && first_exec_ns == 0) {
          first_exec_ns = ev.ts_ns;
        }
      }
      ASSERT_GE(device, 0) << "seed " << seed << " req " << i << " never routed";
      ASSERT_GT(first_exec_ns, 0u) << "seed " << seed << " req " << i << " never executed";
      const auto it = last_exec_per_device.find(device);
      if (it != last_exec_per_device.end()) {
        EXPECT_GE(first_exec_ns, it->second)
            << "seed " << seed << " req " << i << " executed before its "
            << "predecessor on device " << device;
      }
      last_exec_per_device[device] = first_exec_ns;
    }
  }
  fault::Injector::instance().reset();
}
