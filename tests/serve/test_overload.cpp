// Overload protection: admission control, request deadlines/TTLs, shed-oldest
// backpressure, the circuit breaker's state machine, and the adaptive
// batcher. The invariant throughout: shed or expired work always resolves
// with a typed error — never silently, never hanging.
#include <gtest/gtest.h>

#include <thread>

#include "nodetr/fault/fault.hpp"
#include "nodetr/nn/attention.hpp"
#include "nodetr/serve/serve.hpp"
#include "nodetr/tensor/ops.hpp"

namespace serve = nodetr::serve;
namespace fault = nodetr::fault;
namespace hls = nodetr::hls;
namespace nn = nodetr::nn;
namespace nt = nodetr::tensor;
namespace fx = nodetr::fx;
using nt::index_t;
using Clock = std::chrono::steady_clock;

namespace {

serve::RequestPtr dummy_request(std::uint64_t id) {
  auto r = std::make_shared<serve::Request>();
  r->id = id;
  r->input = nt::Tensor(nt::Shape{1, 2, 1, 2});
  r->enqueued_at = Clock::now();
  return r;
}

struct OverloadFixture {
  nt::Rng rng{7};
  nn::MhsaConfig cfg;
  std::unique_ptr<nn::MultiHeadSelfAttention> mhsa;
  hls::MhsaDesignPoint point;

  OverloadFixture() {
    cfg.dim = 16;
    cfg.heads = 2;
    cfg.height = 4;
    cfg.width = 4;
    mhsa = std::make_unique<nn::MultiHeadSelfAttention>(cfg, rng);
    mhsa->train(false);
    point.dim = cfg.dim;
    point.height = cfg.height;
    point.width = cfg.width;
    point.heads = cfg.heads;
    point.scheme = fx::scheme_32_24();
  }

  [[nodiscard]] hls::MhsaWeights weights() { return hls::MhsaWeights::from_module(*mhsa); }

  [[nodiscard]] serve::EngineConfig config(std::size_t workers, std::size_t capacity) {
    serve::EngineConfig c;
    c.point = point;
    c.backend = serve::Backend::kCpuFloat;
    c.workers = workers;
    c.queue_capacity = capacity;
    return c;
  }

  [[nodiscard]] nt::Tensor input(index_t rows) {
    return rng.rand(nt::Shape{rows, cfg.dim, cfg.height, cfg.width});
  }
};

}  // namespace

// ----------------------------------------------------------- admission ----

TEST(Admission, DisabledAdmitsEverything) {
  serve::AdmissionController adm(serve::AdmissionConfig{});
  EXPECT_TRUE(adm.admit(serve::Priority::kBatch, 1'000));
  adm.record_wait(1'000'000);
  EXPECT_EQ(adm.overload_level(), 0);
}

TEST(Admission, StandingDelayShedsLowestPriorityFirst) {
  serve::AdmissionConfig cfg;
  cfg.enabled = true;
  cfg.target_wait_us = 100;
  cfg.interval_us = 1'000;
  cfg.escalate_ratio = 4.0;
  serve::AdmissionController adm(cfg);
  const auto t0 = Clock::now();

  // Waits above target, but the interval has not elapsed: a burst that might
  // still clear — no shedding yet.
  adm.record_wait(300, t0);
  adm.record_wait(300, t0 + std::chrono::microseconds(500));
  EXPECT_EQ(adm.overload_level(), 0);

  // A whole interval where even the minimum wait exceeded the target: level 1
  // (the closing 900 seeds the rolled interval, but this interval's min was
  // 300, under the 400 escalate threshold).
  adm.record_wait(900, t0 + std::chrono::microseconds(1'100));
  EXPECT_EQ(adm.overload_level(), 1);
  EXPECT_FALSE(adm.admit(serve::Priority::kBatch, 5));
  EXPECT_TRUE(adm.admit(serve::Priority::kNormal, 5));
  EXPECT_TRUE(adm.admit(serve::Priority::kInteractive, 5));
  // An empty queue has no standing delay to protect: always admit.
  EXPECT_TRUE(adm.admit(serve::Priority::kBatch, 0));

  // Minimum wait beyond escalate_ratio * target for a whole interval: level 2.
  adm.record_wait(900, t0 + std::chrono::microseconds(2'200));
  EXPECT_EQ(adm.overload_level(), 2);
  EXPECT_FALSE(adm.admit(serve::Priority::kNormal, 5));
  EXPECT_TRUE(adm.admit(serve::Priority::kInteractive, 5));
}

TEST(Admission, OneGoodSampleExitsOverloadImmediately) {
  serve::AdmissionConfig cfg;
  cfg.enabled = true;
  cfg.target_wait_us = 100;
  cfg.interval_us = 1'000;
  serve::AdmissionController adm(cfg);
  const auto t0 = Clock::now();
  adm.record_wait(200, t0);  // above target, below the 400 escalate threshold
  adm.record_wait(200, t0 + std::chrono::microseconds(1'100));
  ASSERT_EQ(adm.overload_level(), 1);
  // CoDel exit: a single request served under target means the queue drained.
  adm.record_wait(10, t0 + std::chrono::microseconds(1'200));
  EXPECT_EQ(adm.overload_level(), 0);
  EXPECT_TRUE(adm.admit(serve::Priority::kBatch, 5));
}

TEST(Admission, ValidatesConfig) {
  serve::AdmissionConfig cfg;
  cfg.enabled = true;
  cfg.target_wait_us = 0;
  EXPECT_THROW(serve::AdmissionController{cfg}, std::invalid_argument);
  cfg.target_wait_us = 100;
  cfg.interval_us = 0;
  EXPECT_THROW(serve::AdmissionController{cfg}, std::invalid_argument);
  cfg.interval_us = 1'000;
  cfg.escalate_ratio = 0.5;
  EXPECT_THROW(serve::AdmissionController{cfg}, std::invalid_argument);
}

// ------------------------------------------------------------- breaker ----

TEST(Breaker, OpensAfterConsecutiveFaultsAndSuccessResetsTheCount) {
  serve::BreakerConfig cfg;
  cfg.open_after = 3;
  serve::CircuitBreaker breaker(cfg);
  using Event = serve::CircuitBreaker::Event;
  EXPECT_EQ(breaker.on_fault(), Event::kNone);
  EXPECT_EQ(breaker.on_fault(), Event::kNone);
  EXPECT_EQ(breaker.on_success(), Event::kNone);  // resets the streak
  EXPECT_EQ(breaker.consecutive_faults(), 0);
  EXPECT_EQ(breaker.on_fault(), Event::kNone);
  EXPECT_EQ(breaker.on_fault(), Event::kNone);
  EXPECT_EQ(breaker.on_fault(), Event::kOpened);
  EXPECT_EQ(breaker.state(), serve::BreakerState::kOpen);
}

TEST(Breaker, ProbeAfterCooldownClosesOnSuccess) {
  serve::BreakerConfig cfg;
  cfg.open_after = 1;
  cfg.cooldown_us = 1'000;
  serve::CircuitBreaker breaker(cfg);
  const auto t0 = Clock::now();
  ASSERT_EQ(breaker.on_fault(t0), serve::CircuitBreaker::Event::kOpened);
  EXPECT_FALSE(breaker.probe_due(t0 + std::chrono::microseconds(500)));
  EXPECT_EQ(breaker.state(), serve::BreakerState::kOpen);
  EXPECT_TRUE(breaker.probe_due(t0 + std::chrono::microseconds(1'500)));
  EXPECT_EQ(breaker.state(), serve::BreakerState::kHalfOpen);
  EXPECT_FALSE(breaker.probe_due(t0 + std::chrono::microseconds(1'500)));  // one probe owed
  EXPECT_EQ(breaker.on_success(), serve::CircuitBreaker::Event::kClosed);
  EXPECT_EQ(breaker.state(), serve::BreakerState::kClosed);
}

TEST(Breaker, FailedProbeBacksOffExponentiallyCapped) {
  serve::BreakerConfig cfg;
  cfg.open_after = 1;
  cfg.cooldown_us = 1'000;
  cfg.cooldown_multiplier = 10.0;
  cfg.max_cooldown_us = 50'000;
  serve::CircuitBreaker breaker(cfg);
  auto now = Clock::now();
  ASSERT_EQ(breaker.on_fault(now), serve::CircuitBreaker::Event::kOpened);
  EXPECT_EQ(breaker.current_cooldown_us(), 1'000);
  now += std::chrono::microseconds(1'500);
  ASSERT_TRUE(breaker.probe_due(now));
  EXPECT_EQ(breaker.on_fault(now), serve::CircuitBreaker::Event::kReopened);
  EXPECT_EQ(breaker.current_cooldown_us(), 10'000);
  now += std::chrono::microseconds(10'500);
  ASSERT_TRUE(breaker.probe_due(now));
  EXPECT_EQ(breaker.on_fault(now), serve::CircuitBreaker::Event::kReopened);
  EXPECT_EQ(breaker.current_cooldown_us(), 50'000);  // capped
}

TEST(Breaker, OpenAfterZeroDisablesTheBreaker) {
  serve::BreakerConfig cfg;
  cfg.open_after = 0;
  serve::CircuitBreaker breaker(cfg);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(breaker.on_fault(), serve::CircuitBreaker::Event::kNone);
  }
  EXPECT_EQ(breaker.state(), serve::BreakerState::kClosed);
}

TEST(Breaker, ValidatesConfig) {
  serve::BreakerConfig cfg;
  cfg.open_after = -1;
  EXPECT_THROW(serve::CircuitBreaker{cfg}, std::invalid_argument);
  cfg.open_after = 1;
  cfg.cooldown_us = -1;
  EXPECT_THROW(serve::CircuitBreaker{cfg}, std::invalid_argument);
  cfg.cooldown_us = 1;
  cfg.cooldown_multiplier = 0.5;
  EXPECT_THROW(serve::CircuitBreaker{cfg}, std::invalid_argument);
}

// ---------------------------------------------------- adaptive batching ----

TEST(AdaptiveBatcher, LingerScalesWithQueueDepth) {
  serve::RequestQueue q(64, serve::BackpressurePolicy::kBlock);
  serve::BatcherConfig cfg;
  cfg.max_batch = 8;
  cfg.max_wait_us = 1'000;
  cfg.adaptive = true;
  cfg.min_wait_us = 0;
  serve::MicroBatcher batcher(q, cfg);
  EXPECT_EQ(batcher.effective_wait_us(), 0);  // idle: don't hold rows hostage
  for (std::uint64_t i = 0; i < 4; ++i) ASSERT_EQ(q.push(dummy_request(i)), serve::PushResult::kOk);
  const auto half = batcher.effective_wait_us();
  EXPECT_GT(half, 0);
  EXPECT_LT(half, 1'000);
  for (std::uint64_t i = 4; i < 12; ++i) {
    ASSERT_EQ(q.push(dummy_request(i)), serve::PushResult::kOk);
  }
  EXPECT_EQ(batcher.effective_wait_us(), 1'000);  // backlog: full linger
}

TEST(AdaptiveBatcher, ValidatesMinWait) {
  serve::RequestQueue q(4, serve::BackpressurePolicy::kBlock);
  serve::BatcherConfig cfg;
  cfg.adaptive = true;
  cfg.max_wait_us = 100;
  cfg.min_wait_us = 200;
  EXPECT_THROW(serve::MicroBatcher(q, cfg), std::invalid_argument);
  cfg.min_wait_us = -1;
  EXPECT_THROW(serve::MicroBatcher(q, cfg), std::invalid_argument);
}

// ------------------------------------------------- deadlines and TTLs ----

TEST(Overload, PastDeadlineRefusedAtAdmission) {
  OverloadFixture f;
  serve::InferenceEngine engine(f.config(1, 8), f.weights());
  serve::SubmitOptions opts;
  opts.deadline = Clock::now() - std::chrono::seconds(1);
  EXPECT_THROW((void)engine.submit(f.input(1), opts), serve::RequestExpired);
  EXPECT_EQ(engine.stats().expired, 1u);
  EXPECT_EQ(engine.stats().submitted, 0u);
}

TEST(Overload, NegativeTtlRejected) {
  OverloadFixture f;
  serve::InferenceEngine engine(f.config(1, 8), f.weights());
  serve::SubmitOptions opts;
  opts.ttl_us = -5;
  EXPECT_THROW((void)engine.submit(f.input(1), opts), std::invalid_argument);
}

TEST(Overload, TtlExpiredInQueueResolvesWithRequestExpired) {
  OverloadFixture f;
  serve::EngineConfig cfg = f.config(1, 64);
  cfg.batcher.max_batch = 8;
  cfg.batcher.max_wait_us = 0;
  serve::InferenceEngine engine(cfg, f.weights());
  // Pin the single worker on a long request; the TTL'd request behind it
  // expires in the queue and must be shed at batch formation, not computed.
  auto pin = engine.submit(f.input(256));
  while (engine.stats().batches == 0) std::this_thread::yield();
  serve::SubmitOptions opts;
  opts.ttl_us = 1;  // expires long before the pin finishes
  auto doomed = engine.submit(f.input(1), opts);
  ASSERT_EQ(doomed.wait_for(std::chrono::seconds(30)), std::future_status::ready);
  EXPECT_THROW((void)doomed.get(), serve::RequestExpired);
  EXPECT_EQ(pin.get().dim(0), 256);  // the pin itself is unaffected
  const auto stats = engine.stats();
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.completed, 1u);
}

TEST(Overload, GenerousTtlCompletesNormally) {
  OverloadFixture f;
  serve::InferenceEngine engine(f.config(1, 8), f.weights());
  serve::SubmitOptions opts;
  opts.ttl_us = 30'000'000;
  const nt::Tensor x = f.input(2);
  auto y = engine.submit(x, opts).get();
  EXPECT_EQ(y.dim(0), 2);
  EXPECT_EQ(engine.stats().expired, 0u);
}

TEST(Overload, ForcedExpireSiteShedsAtBatchFormation) {
  auto& inj = fault::Injector::instance();
  inj.reset();
  inj.seed(1);
  inj.arm("serve.overload.expire", fault::Schedule::once(0));
  OverloadFixture f;
  serve::InferenceEngine engine(f.config(1, 8), f.weights());
  auto doomed = engine.submit(f.input(1));  // no deadline: the site forces one
  ASSERT_EQ(doomed.wait_for(std::chrono::seconds(30)), std::future_status::ready);
  EXPECT_THROW((void)doomed.get(), serve::RequestExpired);
  // The next request takes the normal path.
  EXPECT_EQ(engine.submit(f.input(1)).get().dim(0), 1);
  inj.reset();
}

TEST(Overload, ForcedShedSiteThrowsRequestShedError) {
  auto& inj = fault::Injector::instance();
  inj.reset();
  inj.seed(1);
  inj.arm("serve.overload.shed", fault::Schedule::once(0));
  OverloadFixture f;
  serve::InferenceEngine engine(f.config(1, 8), f.weights());
  EXPECT_THROW((void)engine.submit(f.input(1)), serve::RequestShedError);
  EXPECT_EQ(engine.stats().shed, 1u);
  EXPECT_EQ(engine.submit(f.input(1)).get().dim(0), 1);
  inj.reset();
}

// ------------------------------------------------------- kShedOldest ----

TEST(Overload, ShedOldestEvictsStalestQueuedRequest) {
  OverloadFixture f;
  serve::EngineConfig cfg = f.config(1, 1);
  cfg.policy = serve::BackpressurePolicy::kShedOldest;
  cfg.batcher.max_batch = 2;
  cfg.batcher.max_wait_us = 0;
  serve::InferenceEngine engine(cfg, f.weights());
  // Pin the worker so the 1-slot queue stays full.
  auto pin = engine.submit(f.input(256));
  while (engine.stats().batches == 0) std::this_thread::yield();
  auto stale = engine.submit(f.input(1));  // fills the queue
  auto fresh = engine.submit(f.input(1));  // evicts `stale`
  ASSERT_EQ(stale.wait_for(std::chrono::seconds(30)), std::future_status::ready);
  EXPECT_THROW((void)stale.get(), serve::RequestShedError);
  EXPECT_EQ(fresh.get().dim(0), 1);  // the fresh request completes
  EXPECT_EQ(pin.get().dim(0), 256);
  const auto stats = engine.stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.rejected, 0u);  // eviction, not rejection
}

TEST(RequestQueueShed, NullShedSlotDegradesToReject) {
  serve::RequestQueue q(1, serve::BackpressurePolicy::kShedOldest);
  ASSERT_EQ(q.push(dummy_request(0)), serve::PushResult::kOk);
  EXPECT_EQ(q.push(dummy_request(1), nullptr), serve::PushResult::kFull);
  serve::RequestPtr victim;
  EXPECT_EQ(q.push(dummy_request(2), &victim), serve::PushResult::kOk);
  ASSERT_NE(victim, nullptr);
  EXPECT_EQ(victim->id, 0u);
  EXPECT_EQ(q.size(), 1u);
}

// -------------------------------------------------- engine integration ----

TEST(Overload, AdmissionShedsBatchTrafficUnderStandingBacklog) {
  OverloadFixture f;
  serve::EngineConfig cfg = f.config(1, 256);
  cfg.batcher.max_batch = 4;
  cfg.batcher.max_wait_us = 0;
  cfg.admission.enabled = true;
  cfg.admission.target_wait_us = 50;    // queue waits behind the pin are ms-scale
  cfg.admission.interval_us = 500;
  serve::InferenceEngine engine(cfg, f.weights());

  std::vector<std::future<nt::Tensor>> accepted;
  accepted.push_back(engine.submit(f.input(2048)));  // the standing backlog
  serve::SubmitOptions batch_opts;
  batch_opts.priority = serve::Priority::kBatch;
  for (int i = 0; i < 40; ++i) {
    accepted.push_back(engine.submit(f.input(2), batch_opts));
  }

  // The backlog drains slowly; every pop behind the pin records a wait far
  // past target, so within the interval the controller starts shedding
  // kBatch. Keep probing until a shed happens (bounded by the deadline).
  const auto give_up = Clock::now() + std::chrono::seconds(30);
  std::uint64_t shed_count = 0;
  while (shed_count == 0 && Clock::now() < give_up) {
    try {
      accepted.push_back(engine.submit(f.input(1), batch_opts));
    } catch (const serve::RequestShedError&) {
      ++shed_count;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(shed_count, 1u) << "admission control never engaged under a standing backlog";

  // Interactive traffic is still admitted at any overload level (a full
  // queue is the only thing that refuses it).
  serve::SubmitOptions interactive;
  interactive.priority = serve::Priority::kInteractive;
  accepted.push_back(engine.submit(f.input(1), interactive));

  engine.shutdown();
  for (auto& fut : accepted) {
    ASSERT_EQ(fut.wait_for(std::chrono::seconds(0)), std::future_status::ready);
    EXPECT_NO_THROW((void)fut.get());  // accepted work is never dropped
  }
  const auto stats = engine.stats();
  EXPECT_EQ(stats.shed, shed_count);
  EXPECT_EQ(stats.completed, stats.submitted);
  EXPECT_GT(stats.queue_wait_p99_us, 0.0);  // the backlog shows in the histogram
  EXPECT_GE(stats.queue_wait_p99_us, stats.queue_wait_p50_us);
}

TEST(Overload, SubmitAfterShutdownThrowsTypedEngineStoppedError) {
  OverloadFixture f;
  serve::InferenceEngine engine(f.config(1, 8), f.weights());
  engine.shutdown();
  EXPECT_THROW((void)engine.submit(f.input(1)), serve::EngineStoppedError);
}

TEST(Overload, ConfigValidationMessagesAreTyped) {
  OverloadFixture f;
  serve::EngineConfig cfg = f.config(1, 0);  // queue_capacity = 0
  EXPECT_THROW(serve::InferenceEngine(cfg, f.weights()), std::invalid_argument);
  cfg = f.config(1, 8);
  cfg.breaker.cooldown_multiplier = 0.0;
  EXPECT_THROW(serve::InferenceEngine(cfg, f.weights()), std::invalid_argument);
  cfg = f.config(1, 8);
  cfg.admission.enabled = true;
  cfg.admission.interval_us = 0;
  EXPECT_THROW(serve::InferenceEngine(cfg, f.weights()), std::invalid_argument);
}
