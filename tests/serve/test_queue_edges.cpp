// RequestQueue edge cases: concurrent producers at capacity, requeue/close
// interleavings, pop_until racing close(), shed-oldest under contention, and
// deadline expiry during the shutdown drain. The invariant: no request is
// ever lost or duplicated, and every future still resolves.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "nodetr/nn/attention.hpp"
#include "nodetr/serve/serve.hpp"
#include "nodetr/tensor/ops.hpp"

namespace serve = nodetr::serve;
namespace hls = nodetr::hls;
namespace nn = nodetr::nn;
namespace nt = nodetr::tensor;
namespace fx = nodetr::fx;
using Clock = std::chrono::steady_clock;

namespace {

serve::RequestPtr dummy_request(std::uint64_t id) {
  auto r = std::make_shared<serve::Request>();
  r->id = id;
  r->input = nt::Tensor(nt::Shape{1, 2, 1, 2});
  r->enqueued_at = Clock::now();
  return r;
}

}  // namespace

TEST(QueueEdges, ConcurrentRejectProducersNeverLoseOrDuplicate) {
  constexpr std::size_t kCapacity = 4;
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 200;
  serve::RequestQueue q(kCapacity, serve::BackpressurePolicy::kReject);

  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> rejected{0};
  std::atomic<bool> stop_consumer{false};
  std::atomic<std::uint64_t> popped{0};
  std::thread consumer([&] {
    while (!stop_consumer.load()) {
      if (q.try_pop()) popped.fetch_add(1);
    }
    while (q.try_pop()) popped.fetch_add(1);  // final drain
  });

  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      for (int i = 0; i < kPerProducer; ++i) {
        const auto id = static_cast<std::uint64_t>(t * kPerProducer + i);
        switch (q.push(dummy_request(id))) {
          case serve::PushResult::kOk: accepted.fetch_add(1); break;
          case serve::PushResult::kFull: rejected.fetch_add(1); break;
          case serve::PushResult::kClosed: FAIL() << "queue closed unexpectedly";
        }
        EXPECT_LE(q.size(), kCapacity);
      }
    });
  }
  for (auto& t : producers) t.join();
  stop_consumer.store(true);
  consumer.join();

  EXPECT_EQ(accepted.load() + rejected.load(),
            static_cast<std::uint64_t>(kProducers * kPerProducer));
  // Every accepted request was popped exactly once; none invented or lost.
  EXPECT_EQ(popped.load(), accepted.load());
  EXPECT_EQ(q.size(), 0u);
}

TEST(QueueEdges, RequeueAfterCloseStillDrains) {
  serve::RequestQueue q(2, serve::BackpressurePolicy::kReject);
  ASSERT_EQ(q.push(dummy_request(0)), serve::PushResult::kOk);
  auto r = q.pop();
  ASSERT_NE(r, nullptr);
  q.close();
  // A crash-salvaged request was admitted once and must still drain, closed
  // or not, capacity or not.
  ASSERT_EQ(q.push(dummy_request(1)), serve::PushResult::kClosed);
  q.requeue(r);
  auto back = q.pop();
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->id, 0u);
  EXPECT_EQ(q.pop(), nullptr);  // closed and drained
}

TEST(QueueEdges, RequeueGoesToTheFrontAheadOfQueuedWork) {
  serve::RequestQueue q(4, serve::BackpressurePolicy::kReject);
  ASSERT_EQ(q.push(dummy_request(0)), serve::PushResult::kOk);
  ASSERT_EQ(q.push(dummy_request(1)), serve::PushResult::kOk);
  auto first = q.pop();
  ASSERT_EQ(first->id, 0u);
  q.requeue(first);  // salvage: must be served next, not behind id 1
  EXPECT_EQ(q.pop()->id, 0u);
  EXPECT_EQ(q.pop()->id, 1u);
}

TEST(QueueEdges, PopUntilTimesOutOnEmptyQueue) {
  serve::RequestQueue q(2, serve::BackpressurePolicy::kBlock);
  const auto t0 = Clock::now();
  EXPECT_EQ(q.pop_until(t0 + std::chrono::milliseconds(20)), nullptr);
  EXPECT_GE(Clock::now() - t0, std::chrono::milliseconds(20));
}

TEST(QueueEdges, CloseWakesBlockedPopUntilPromptly) {
  serve::RequestQueue q(2, serve::BackpressurePolicy::kBlock);
  std::promise<void> returned;
  std::thread waiter([&] {
    // A long timeout: only close() can end this wait early.
    EXPECT_EQ(q.pop_until(Clock::now() + std::chrono::seconds(30)), nullptr);
    returned.set_value();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  auto done = returned.get_future();
  EXPECT_EQ(done.wait_for(std::chrono::seconds(5)), std::future_status::ready)
      << "close() did not wake a blocked pop_until";
  waiter.join();
}

TEST(QueueEdges, PopUntilRacingCloseNeverHangsOrDropsItems) {
  // Hammer the race: consumers inside pop_until while close() lands. Every
  // pushed item must come out exactly once; every consumer must return.
  for (int round = 0; round < 20; ++round) {
    serve::RequestQueue q(16, serve::BackpressurePolicy::kReject);
    std::atomic<std::uint64_t> popped{0};
    std::vector<std::thread> consumers;
    for (int c = 0; c < 3; ++c) {
      consumers.emplace_back([&] {
        for (;;) {
          auto r = q.pop_until(Clock::now() + std::chrono::milliseconds(5));
          if (r) {
            popped.fetch_add(1);
            continue;
          }
          if (q.closed()) return;  // closed and drained
        }
      });
    }
    std::uint64_t pushed = 0;
    for (std::uint64_t i = 0; i < 8; ++i) {
      if (q.push(dummy_request(i)) == serve::PushResult::kOk) ++pushed;
    }
    q.close();
    for (auto& t : consumers) t.join();
    EXPECT_EQ(popped.load(), pushed) << "round " << round;
  }
}

TEST(QueueEdges, ShedOldestUnderConcurrentProducersAccountsForEveryVictim) {
  constexpr std::size_t kCapacity = 2;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 100;
  serve::RequestQueue q(kCapacity, serve::BackpressurePolicy::kShedOldest);
  std::mutex victims_mu;
  std::vector<serve::RequestPtr> victims;
  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      for (int i = 0; i < kPerProducer; ++i) {
        serve::RequestPtr victim;
        ASSERT_EQ(q.push(dummy_request(static_cast<std::uint64_t>(t * kPerProducer + i)),
                         &victim),
                  serve::PushResult::kOk);  // shed-oldest always admits
        if (victim) {
          std::lock_guard lk(victims_mu);
          victims.push_back(std::move(victim));
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  // Conservation: everything pushed is either still queued or was evicted.
  EXPECT_EQ(victims.size() + q.size(),
            static_cast<std::size_t>(kProducers * kPerProducer));
  // No victim was handed out twice.
  std::set<const serve::Request*> unique;
  for (const auto& v : victims) {
    ASSERT_NE(v, nullptr);
    EXPECT_TRUE(unique.insert(v.get()).second);
  }
}

TEST(QueueEdges, WaitObserverSeesEveryPopVariant) {
  serve::RequestQueue q(8, serve::BackpressurePolicy::kBlock);
  std::atomic<int> samples{0};
  q.set_wait_observer([&](std::int64_t wait_us) {
    EXPECT_GE(wait_us, 0);
    samples.fetch_add(1);
  });
  ASSERT_EQ(q.push(dummy_request(0)), serve::PushResult::kOk);
  ASSERT_EQ(q.push(dummy_request(1)), serve::PushResult::kOk);
  ASSERT_EQ(q.push(dummy_request(2)), serve::PushResult::kOk);
  (void)q.pop();
  (void)q.try_pop();
  (void)q.pop_until(Clock::now() + std::chrono::milliseconds(5));
  EXPECT_EQ(samples.load(), 3);
  EXPECT_EQ(q.try_pop(), nullptr);  // empty pop: no sample
  EXPECT_EQ(samples.load(), 3);
}

// ------------------------------------------- shutdown drain with TTLs ----

TEST(QueueEdges, DeadlineExpiryDuringShutdownDrainResolvesTyped) {
  nt::Rng rng{7};
  nn::MhsaConfig cfg;
  cfg.dim = 16;
  cfg.heads = 2;
  cfg.height = 4;
  cfg.width = 4;
  nn::MultiHeadSelfAttention mhsa(cfg, rng);
  mhsa.train(false);
  serve::EngineConfig ec;
  ec.point.dim = cfg.dim;
  ec.point.height = cfg.height;
  ec.point.width = cfg.width;
  ec.point.heads = cfg.heads;
  ec.point.scheme = fx::scheme_32_24();
  ec.backend = serve::Backend::kCpuFloat;
  ec.workers = 1;
  ec.queue_capacity = 64;
  ec.batcher.max_batch = 8;
  ec.batcher.max_wait_us = 0;
  serve::InferenceEngine engine(ec, hls::MhsaWeights::from_module(mhsa));

  // Pin the worker, stack TTL'd requests behind it, then shut down: the
  // drain finds them expired and must resolve each with RequestExpired —
  // futures never hang through shutdown.
  auto pin = engine.submit(rng.rand(nt::Shape{128, cfg.dim, cfg.height, cfg.width}));
  while (engine.stats().batches == 0) std::this_thread::yield();
  std::vector<std::future<nt::Tensor>> doomed;
  serve::SubmitOptions opts;
  opts.ttl_us = 1;
  for (int i = 0; i < 5; ++i) {
    doomed.push_back(engine.submit(rng.rand(nt::Shape{1, cfg.dim, cfg.height, cfg.width}), opts));
  }
  engine.shutdown();
  EXPECT_EQ(pin.get().dim(0), 128);
  for (auto& f : doomed) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready)
        << "shutdown returned with an unresolved future";
    EXPECT_THROW((void)f.get(), serve::RequestExpired);
  }
  EXPECT_EQ(engine.stats().expired, 5u);
}
