// MicroBatcher tests: a seeded property sweep over ~1k random schedules
// against the pure planning core, plus live coalescing over a RequestQueue.
#include "nodetr/serve/micro_batcher.hpp"

#include <gtest/gtest.h>

#include <random>

namespace serve = nodetr::serve;
namespace nt = nodetr::tensor;
using nt::index_t;

namespace {

serve::RequestPtr make_request(std::uint64_t id, index_t rows, index_t d, index_t h,
                               index_t w) {
  auto r = std::make_shared<serve::Request>();
  r->id = id;
  r->input = nt::Tensor(nt::Shape{rows, d, h, w});
  const index_t row_floats = d * h * w;
  for (index_t row = 0; row < rows; ++row) {
    for (index_t i = 0; i < row_floats; ++i) {
      r->input.data()[row * row_floats + i] =
          static_cast<float>(id) * 100.0f + static_cast<float>(row);
    }
  }
  r->enqueued_at = std::chrono::steady_clock::now();
  return r;
}

}  // namespace

TEST(MicroBatcherPlan, RandomSchedulesPreserveOrderAndNeverExceedMaxBatch) {
  for (unsigned seed = 0; seed < 1000; ++seed) {
    std::mt19937 gen(seed);
    std::uniform_int_distribution<int> n_req(0, 12);
    std::uniform_int_distribution<int> rows_dist(1, 20);
    std::uniform_int_distribution<int> mb_dist(1, 9);
    const index_t max_batch = mb_dist(gen);
    std::vector<index_t> rows(static_cast<std::size_t>(n_req(gen)));
    for (auto& r : rows) r = rows_dist(gen);
    index_t total = 0;
    for (auto r : rows) total += r;

    const auto batches = serve::MicroBatcher::plan(rows, max_batch);

    // Walk every slice in emission order: strict FIFO over requests, strict
    // row order inside each request, every row covered exactly once.
    std::size_t cur_req = 0;
    index_t cur_row = 0;
    index_t seen = 0;
    for (std::size_t b = 0; b < batches.size(); ++b) {
      ASSERT_FALSE(batches[b].empty()) << "seed " << seed;
      index_t batch_rows = 0;
      for (const auto& sl : batches[b]) {
        ASSERT_EQ(sl.request, cur_req) << "seed " << seed;
        ASSERT_EQ(sl.row_begin, cur_row) << "seed " << seed;
        ASSERT_LT(sl.row_begin, sl.row_end) << "seed " << seed;
        ASSERT_LE(sl.row_end, rows[sl.request]) << "seed " << seed;
        batch_rows += sl.row_end - sl.row_begin;
        seen += sl.row_end - sl.row_begin;
        cur_row = sl.row_end;
        if (cur_row == rows[cur_req]) {
          ++cur_req;
          cur_row = 0;
        }
      }
      ASSERT_LE(batch_rows, max_batch) << "seed " << seed;
      // Greedy packing: every batch except possibly the last is full.
      if (b + 1 < batches.size()) {
        ASSERT_EQ(batch_rows, max_batch) << "seed " << seed;
      }
    }
    ASSERT_EQ(seen, total) << "seed " << seed;
    ASSERT_EQ(cur_req, rows.size()) << "seed " << seed;
  }
}

TEST(MicroBatcherPlan, RejectsNonPositiveMaxBatch) {
  EXPECT_THROW((void)serve::MicroBatcher::plan({1, 2}, 0), std::invalid_argument);
}

TEST(MicroBatcher, DrainsClosedQueueCoveringAllRowsInOrder) {
  const index_t d = 2, h = 1, w = 2;
  const index_t row_floats = d * h * w;
  const std::vector<index_t> rows = {5, 1, 3, 8, 2, 1};
  serve::RequestQueue queue(64, serve::BackpressurePolicy::kBlock);
  for (std::size_t q = 0; q < rows.size(); ++q) {
    ASSERT_EQ(queue.push(make_request(q, rows[q], d, h, w)), serve::PushResult::kOk);
  }
  queue.close();

  serve::MicroBatcher batcher(queue, {/*max_batch=*/4, /*max_wait_us=*/0});
  serve::MicroBatch batch;
  std::size_t cur_req = 0;
  index_t cur_row = 0;
  index_t seen = 0;
  while (batcher.next(batch)) {
    ASSERT_GE(batch.rows(), 1);
    ASSERT_LE(batch.rows(), 4);
    index_t batch_row = 0;
    for (const auto& sl : batch.slices) {
      ASSERT_EQ(sl.request->id, cur_req);
      ASSERT_EQ(sl.row_begin, cur_row);
      ASSERT_EQ(sl.batch_row, batch_row);
      // The dense batch tensor holds exactly the source rows, in order.
      for (index_t row = sl.row_begin; row < sl.row_end; ++row) {
        const float want = static_cast<float>(cur_req) * 100.0f + static_cast<float>(row);
        for (index_t i = 0; i < row_floats; ++i) {
          ASSERT_EQ(batch.input.data()[(sl.batch_row + row - sl.row_begin) * row_floats + i],
                    want);
        }
      }
      batch_row += sl.row_end - sl.row_begin;
      seen += sl.row_end - sl.row_begin;
      cur_row = sl.row_end;
      if (cur_row == sl.request->input.dim(0)) {
        ++cur_req;
        cur_row = 0;
      }
    }
  }
  index_t total = 0;
  for (auto r : rows) total += r;
  EXPECT_EQ(seen, total);
  EXPECT_EQ(cur_req, rows.size());
}

TEST(MicroBatcher, ZeroWaitDoesNotLingerButTakesAlreadyQueuedRows) {
  const index_t d = 2, h = 1, w = 2;
  serve::RequestQueue queue(16, serve::BackpressurePolicy::kBlock);
  ASSERT_EQ(queue.push(make_request(0, 1, d, h, w)), serve::PushResult::kOk);
  ASSERT_EQ(queue.push(make_request(1, 1, d, h, w)), serve::PushResult::kOk);
  ASSERT_EQ(queue.push(make_request(2, 1, d, h, w)), serve::PushResult::kOk);

  serve::MicroBatcher batcher(queue, {/*max_batch=*/4, /*max_wait_us=*/0});
  serve::MicroBatch batch;
  ASSERT_TRUE(batcher.next(batch));
  // All three queued rows coalesce; with max_wait_us=0 the batcher must not
  // block waiting for a fourth.
  EXPECT_EQ(batch.rows(), 3);
  EXPECT_EQ(batch.slices.size(), 3u);
}

TEST(MicroBatcher, RejectsBadConfig) {
  serve::RequestQueue queue(4, serve::BackpressurePolicy::kBlock);
  EXPECT_THROW(serve::MicroBatcher(queue, {0, 0}), std::invalid_argument);
  EXPECT_THROW(serve::MicroBatcher(queue, {4, -1}), std::invalid_argument);
}
