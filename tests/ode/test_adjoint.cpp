#include "nodetr/ode/adjoint.hpp"

#include <gtest/gtest.h>

#include "../common/gradcheck.hpp"
#include "nodetr/nn/conv_layers.hpp"
#include "nodetr/nn/linear.hpp"
#include "nodetr/nn/sequential.hpp"
#include "nodetr/ode/ode_block.hpp"
#include "nodetr/tensor/ops.hpp"

namespace ode = nodetr::ode;
namespace nn = nodetr::nn;
namespace nt = nodetr::tensor;

namespace {
std::unique_ptr<nn::Linear> linear_dynamics(nt::index_t d, nt::Rng& rng) {
  return std::make_unique<nn::Linear>(d, d, false, rng);
}
}  // namespace

TEST(AdjointOdeBlock, ForwardMatchesCheckpointedOdeBlock) {
  nt::Rng rng(1);
  auto dyn_a = linear_dynamics(3, rng);
  nt::Rng rng2(1);
  auto dyn_b = linear_dynamics(3, rng2);
  ode::AdjointOdeBlock adjoint(std::move(dyn_a), 5);
  ode::OdeBlock checkpointed(std::move(dyn_b), 5);
  auto x = rng.randn(nt::Shape{2, 3});
  EXPECT_TRUE(nt::allclose(adjoint.forward(x), checkpointed.forward(x), 1e-6f, 1e-7f));
}

TEST(AdjointOdeBlock, GradientsMatchDiscretizeThenOptimize) {
  // For Euler, the discrete adjoint recursion IS the exact transpose of the
  // forward recursion, so both training modes agree to fp rounding.
  nt::Rng rng(2);
  auto dyn_a = linear_dynamics(4, rng);
  nt::Rng rng2(2);
  auto dyn_b = linear_dynamics(4, rng2);
  ode::AdjointOdeBlock adjoint(std::move(dyn_a), 4);
  ode::OdeBlock checkpointed(std::move(dyn_b), 4);
  auto x = rng.randn(nt::Shape{2, 4});
  nt::Rng crng(3);
  auto cot = crng.randn(nt::Shape{2, 4});

  adjoint.zero_grad();
  adjoint.forward(x);
  auto gx_a = adjoint.backward(cot);
  checkpointed.zero_grad();
  checkpointed.forward(x);
  auto gx_c = checkpointed.backward(cot);

  EXPECT_TRUE(nt::allclose(gx_a, gx_c, 1e-4f, 1e-5f));
  auto pa = adjoint.parameters();
  auto pc = checkpointed.parameters();
  ASSERT_EQ(pa.size(), pc.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(nt::allclose(pa[i]->grad, pc[i]->grad, 1e-4f, 1e-5f)) << pa[i]->name;
  }
}

TEST(AdjointOdeBlock, GradCheckAgainstNumerical) {
  nt::Rng rng(4);
  ode::AdjointOdeBlock block(linear_dynamics(3, rng), 3);
  auto x = rng.randn(nt::Shape{2, 3});
  nodetr::testing::expect_gradients_match(block, x);
}

TEST(AdjointOdeBlock, GradCheckConvDynamics) {
  nt::Rng rng(5);
  auto dyn = std::make_unique<nn::Sequential>();
  dyn->emplace<nn::Conv2d>(2, 2, 3, 1, 1, false, rng);
  ode::AdjointOdeBlock block(std::move(dyn), 3);
  auto x = rng.randn(nt::Shape{1, 2, 3, 3});
  nodetr::testing::expect_gradients_match(block, x);
}

TEST(AdjointOdeBlock, ParameterSharingHolds) {
  nt::Rng rng(6);
  ode::AdjointOdeBlock c3(linear_dynamics(4, rng), 3);
  ode::AdjointOdeBlock c30(linear_dynamics(4, rng), 30);
  EXPECT_EQ(c3.num_parameters(), 16);
  EXPECT_EQ(c30.num_parameters(), 16);
}

TEST(AdjointOdeBlock, BackwardBeforeForwardThrows) {
  nt::Rng rng(7);
  ode::AdjointOdeBlock block(linear_dynamics(2, rng), 2);
  EXPECT_THROW((void)block.backward(nt::Tensor(nt::Shape{1, 2})), std::logic_error);
}

TEST(AdjointOdeBlock, InvalidConstruction) {
  nt::Rng rng(8);
  EXPECT_THROW(ode::AdjointOdeBlock(nullptr, 2), std::invalid_argument);
  EXPECT_THROW(ode::AdjointOdeBlock(linear_dynamics(2, rng), 0), std::invalid_argument);
}
