#include "nodetr/ode/ode_block.hpp"

#include <gtest/gtest.h>

#include "../common/gradcheck.hpp"
#include "nodetr/nn/conv_layers.hpp"
#include "nodetr/nn/linear.hpp"
#include "nodetr/nn/norm.hpp"
#include "nodetr/nn/sequential.hpp"
#include "nodetr/tensor/gemm.hpp"
#include "nodetr/tensor/ops.hpp"

namespace ode = nodetr::ode;
namespace nn = nodetr::nn;
namespace nt = nodetr::tensor;

namespace {

/// Linear dynamics f(z) = A z with A learnable: the ODE block then computes
/// the Euler-discretized matrix exponential.
std::unique_ptr<nn::Linear> linear_dynamics(nt::index_t d, nt::Rng& rng) {
  return std::make_unique<nn::Linear>(d, d, /*bias=*/false, rng);
}

/// Dynamics that records the times it was evaluated at.
class TimeProbe final : public nn::Module, public ode::TimeAware {
 public:
  nn::Tensor forward(const nn::Tensor& x) override {
    times.push_back(t_);
    return nn::Tensor(x.shape());  // f = 0: identity flow
  }
  nn::Tensor backward(const nn::Tensor& g) override { return nn::Tensor(g.shape()); }
  [[nodiscard]] std::string name() const override { return "TimeProbe"; }
  void set_time(float t) override { t_ = t; }

  std::vector<float> times;

 private:
  float t_ = -1.0f;
};

}  // namespace

TEST(OdeBlock, IdentityDynamicsIsIdentityFlow) {
  auto probe = std::make_unique<TimeProbe>();
  ode::OdeBlock block(std::move(probe), 4);
  nt::Rng rng(1);
  auto x = rng.randn(nt::Shape{2, 3});
  auto y = block.forward(x);
  EXPECT_TRUE(nt::allclose(y, x, 0.0f, 0.0f));
}

TEST(OdeBlock, TimeAwareDynamicsSeesEulerGrid) {
  auto probe = std::make_unique<TimeProbe>();
  auto* p = probe.get();
  ode::OdeBlock block(std::move(probe), 4);
  block.forward(nt::Tensor(nt::Shape{1, 2}));
  ASSERT_EQ(p->times.size(), 4u);
  EXPECT_FLOAT_EQ(p->times[0], 0.0f);
  EXPECT_FLOAT_EQ(p->times[1], 0.25f);
  EXPECT_FLOAT_EQ(p->times[3], 0.75f);
}

TEST(OdeBlock, EulerMatchesManualRecursion) {
  nt::Rng rng(2);
  auto dyn = linear_dynamics(3, rng);
  const nt::Tensor a = dyn->weight().value;  // (3,3)
  ode::OdeBlock block(std::move(dyn), 5);
  auto x = rng.randn(nt::Shape{2, 3});
  auto y = block.forward(x);
  // Manual: z <- z + h (z A^T)
  nt::Tensor z = x;
  const float h = 1.0f / 5.0f;
  for (int j = 0; j < 5; ++j) z.add_scaled(nt::matmul_nt(z, a), h);
  EXPECT_TRUE(nt::allclose(y, z, 1e-5f, 1e-6f));
}

TEST(OdeBlock, ParameterSharingAcrossSteps) {
  // An OdeBlock with C steps has the parameters of ONE dynamics block —
  // the paper's 1/C parameter reduction.
  nt::Rng rng(3);
  ode::OdeBlock c2(linear_dynamics(4, rng), 2);
  ode::OdeBlock c20(linear_dynamics(4, rng), 20);
  EXPECT_EQ(c2.num_parameters(), 16);
  EXPECT_EQ(c20.num_parameters(), 16);
}

TEST(OdeBlock, MoreStepsApproachContinuousSolution) {
  // With f(z) = z (identity weight), z(1) = e z(0); Euler converges to it.
  nt::Rng rng(4);
  auto mk = [&](nt::index_t steps) {
    auto dyn = std::make_unique<nn::Linear>(2, 2, false, rng);
    dyn->weight().value.zero();
    dyn->weight().value.at(0, 0) = 1.0f;
    dyn->weight().value.at(1, 1) = 1.0f;
    return ode::OdeBlock(std::move(dyn), steps);
  };
  nt::Tensor x(nt::Shape{1, 2}, 1.0f);
  auto b4 = mk(4), b64 = mk(64);
  const float e = std::exp(1.0f);
  const float err4 = std::fabs(b4.forward(x)[0] - e);
  const float err64 = std::fabs(b64.forward(x)[0] - e);
  EXPECT_LT(err64, err4);
  EXPECT_NEAR(b64.forward(x)[0], e, 3e-2f);
}

TEST(OdeBlock, Rk4ForwardMoreAccurateThanEuler) {
  nt::Rng rng(5);
  auto mk = [&](ode::SolverKind kind) {
    auto dyn = std::make_unique<nn::Linear>(2, 2, false, rng);
    dyn->weight().value.zero();
    dyn->weight().value.at(0, 0) = 1.0f;
    dyn->weight().value.at(1, 1) = 1.0f;
    return ode::OdeBlock(std::move(dyn), 8, kind);
  };
  nt::Tensor x(nt::Shape{1, 2}, 1.0f);
  auto euler = mk(ode::SolverKind::kEuler);
  auto rk4 = mk(ode::SolverKind::kRk4);
  const float e = std::exp(1.0f);
  EXPECT_LT(std::fabs(rk4.forward(x)[0] - e), std::fabs(euler.forward(x)[0] - e));
}

TEST(OdeBlock, BackwardThrowsAfterNonEulerForward) {
  nt::Rng rng(6);
  ode::OdeBlock block(linear_dynamics(2, rng), 4, ode::SolverKind::kRk4);
  auto x = rng.randn(nt::Shape{1, 2});
  block.forward(x);
  EXPECT_THROW(block.backward(nt::Tensor(nt::Shape{1, 2})), std::logic_error);
}

TEST(OdeBlock, GradCheckLinearDynamics) {
  nt::Rng rng(7);
  ode::OdeBlock block(linear_dynamics(3, rng), 4);
  auto x = rng.randn(nt::Shape{2, 3});
  nodetr::testing::expect_gradients_match(block, x);
}

TEST(OdeBlock, GradCheckConvDynamics) {
  nt::Rng rng(8);
  auto dyn = std::make_unique<nn::Sequential>();
  dyn->emplace<nn::Conv2d>(2, 2, 3, 1, 1, false, rng);
  ode::OdeBlock block(std::move(dyn), 3);
  auto x = rng.randn(nt::Shape{1, 2, 3, 3});
  nodetr::testing::expect_gradients_match(block, x);
}

TEST(OdeBlock, SetStepsChangesIterationCount) {
  nt::Rng rng(9);
  ode::OdeBlock block(linear_dynamics(2, rng), 2);
  block.set_steps(7);
  EXPECT_EQ(block.steps(), 7);
  EXPECT_THROW(block.set_steps(0), std::invalid_argument);
}

TEST(OdeBlock, InvalidConstruction) {
  nt::Rng rng(10);
  EXPECT_THROW(ode::OdeBlock(nullptr, 3), std::invalid_argument);
  EXPECT_THROW(ode::OdeBlock(linear_dynamics(2, rng), 0), std::invalid_argument);
}
