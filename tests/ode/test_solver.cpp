#include "nodetr/ode/solver.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ode = nodetr::ode;
namespace nt = nodetr::tensor;

namespace {

// dz/dt = z  =>  z(1) = e * z(0).
ode::OdeRhs exp_rhs() {
  return [](const nt::Tensor& z, float) { return z; };
}

// dz/dt = cos(t), z(0)=0  =>  z(t)=sin(t). Time-dependent RHS.
ode::OdeRhs cos_rhs() {
  return [](const nt::Tensor& z, float t) {
    nt::Tensor d(z.shape());
    d.fill(std::cos(t));
    return d;
  };
}

float solve_exp(const ode::OdeSolver& s, nt::index_t steps) {
  nt::Tensor z0(nt::Shape{1}, 1.0f);
  return s.integrate(z0, 0.0f, 1.0f, steps, exp_rhs())[0];
}

}  // namespace

TEST(Solvers, EulerConvergesToExp) {
  ode::EulerSolver euler;
  EXPECT_NEAR(solve_exp(euler, 1000), std::exp(1.0f), 2e-3f);
}

TEST(Solvers, EulerIsFirstOrder) {
  ode::EulerSolver euler;
  const float e = std::exp(1.0f);
  const float err10 = std::fabs(solve_exp(euler, 10) - e);
  const float err20 = std::fabs(solve_exp(euler, 20) - e);
  // Halving h halves the error (within 20%).
  EXPECT_NEAR(err10 / err20, 2.0f, 0.4f);
}

TEST(Solvers, MidpointIsSecondOrder) {
  ode::MidpointSolver mid;
  const float e = std::exp(1.0f);
  const float err10 = std::fabs(solve_exp(mid, 10) - e);
  const float err20 = std::fabs(solve_exp(mid, 20) - e);
  EXPECT_NEAR(err10 / err20, 4.0f, 1.0f);
}

TEST(Solvers, Rk4IsFourthOrder) {
  ode::Rk4Solver rk4;
  const float e = std::exp(1.0f);
  const double err5 = std::fabs(solve_exp(rk4, 5) - e);
  const double err10 = std::fabs(solve_exp(rk4, 10) - e);
  EXPECT_GT(err5 / std::max(err10, 1e-9), 8.0);  // ~16x in exact arithmetic
}

TEST(Solvers, AccuracyOrderingAtFixedSteps) {
  const float e = std::exp(1.0f);
  ode::EulerSolver euler;
  ode::MidpointSolver mid;
  ode::Rk4Solver rk4;
  const float ee = std::fabs(solve_exp(euler, 8) - e);
  const float em = std::fabs(solve_exp(mid, 8) - e);
  const float er = std::fabs(solve_exp(rk4, 8) - e);
  EXPECT_GT(ee, em);
  EXPECT_GT(em, er);
}

TEST(Solvers, TimeDependentRhs) {
  ode::Rk4Solver rk4;
  nt::Tensor z0(nt::Shape{1}, 0.0f);
  auto z = rk4.integrate(z0, 0.0f, 2.0f, 50, cos_rhs());
  EXPECT_NEAR(z[0], std::sin(2.0f), 1e-4f);
}

TEST(Solvers, VectorStateIntegratesElementwise) {
  ode::Rk4Solver rk4;
  nt::Tensor z0(nt::Shape{3}, std::vector<float>{1.0f, 2.0f, -1.0f});
  auto z = rk4.integrate(z0, 0.0f, 1.0f, 50, exp_rhs());
  const float e = std::exp(1.0f);
  EXPECT_NEAR(z[0], e, 1e-3f);
  EXPECT_NEAR(z[1], 2 * e, 2e-3f);
  EXPECT_NEAR(z[2], -e, 1e-3f);
}

TEST(Solvers, ZeroStepsRejected) {
  ode::EulerSolver euler;
  nt::Tensor z0(nt::Shape{1}, 1.0f);
  EXPECT_THROW(euler.integrate(z0, 0.0f, 1.0f, 0, exp_rhs()), std::invalid_argument);
}

TEST(Solvers, DormandPrinceMeetsTolerance) {
  ode::DormandPrince45 dp(1e-6f, 1e-8f);
  nt::Tensor z0(nt::Shape{1}, 1.0f);
  auto z = dp.integrate(z0, 0.0f, 1.0f, 0, exp_rhs());
  EXPECT_NEAR(z[0], std::exp(1.0f), 1e-4f);
  EXPECT_GT(dp.last_stats().accepted, 0);
  EXPECT_GT(dp.last_stats().rhs_evals, 6);
}

TEST(Solvers, DormandPrinceAdaptsStepCount) {
  // A looser tolerance must not need more steps than a tight one.
  nt::Tensor z0(nt::Shape{1}, 1.0f);
  ode::DormandPrince45 loose(1e-3f, 1e-5f), tight(1e-8f, 1e-10f);
  loose.integrate(z0, 0.0f, 1.0f, 0, exp_rhs());
  const auto loose_evals = loose.last_stats().rhs_evals;
  tight.integrate(z0, 0.0f, 1.0f, 0, exp_rhs());
  EXPECT_LE(loose_evals, tight.last_stats().rhs_evals);
}

TEST(Solvers, FactoryProducesAllKinds) {
  for (auto kind : {ode::SolverKind::kEuler, ode::SolverKind::kMidpoint, ode::SolverKind::kRk4,
                    ode::SolverKind::kDopri45}) {
    auto s = ode::make_solver(kind);
    ASSERT_NE(s, nullptr);
    EXPECT_FALSE(s->name().empty());
    EXPECT_GT(s->rhs_evals_per_step(), 0);
  }
}
