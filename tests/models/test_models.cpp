#include <gtest/gtest.h>

#include "nodetr/models/zoo.hpp"
#include "nodetr/tensor/ops.hpp"

namespace m = nodetr::models;
namespace nt = nodetr::tensor;

TEST(ParamCounts, ResNet50CloseToPaper) {
  nt::Rng rng(1);
  auto net = m::resnet50(96, 10, rng);
  const auto n = net->num_parameters();
  // Paper: 23,522,362. Our torchvision-style reconstruction must be within 1%.
  EXPECT_NEAR(static_cast<double>(n), 23522362.0, 0.01 * 23522362.0) << n;
}

TEST(ParamCounts, BoTNet50CloseToPaperAndSmallerThanResNet) {
  nt::Rng rng(2);
  auto res = m::resnet50(96, 10, rng);
  auto bot = m::botnet50(96, 10, rng);
  EXPECT_NEAR(static_cast<double>(bot->num_parameters()), 18885962.0, 0.01 * 18885962.0)
      << bot->num_parameters();
  // Table IV: BoTNet cuts ~19.7% off ResNet50.
  const double reduction =
      1.0 - static_cast<double>(bot->num_parameters()) / static_cast<double>(res->num_parameters());
  EXPECT_NEAR(reduction, 0.197, 0.02);
}

TEST(ParamCounts, OdeNetCloseToPaper) {
  nt::Rng rng(3);
  auto net = m::odenet(96, 10, rng);
  EXPECT_NEAR(static_cast<double>(net->num_parameters()), 599309.0, 0.01 * 599309.0)
      << net->num_parameters();
}

TEST(ParamCounts, ProposedCloseToPaperAndReduction973) {
  nt::Rng rng(4);
  auto bot = m::botnet50(96, 10, rng);
  auto prop = m::proposed_model(96, 10, rng);
  EXPECT_NEAR(static_cast<double>(prop->num_parameters()), 513275.0, 0.015 * 513275.0)
      << prop->num_parameters();
  // Headline claim: 97.3% parameter reduction vs BoTNet.
  const double reduction =
      1.0 - static_cast<double>(prop->num_parameters()) / static_cast<double>(bot->num_parameters());
  EXPECT_NEAR(reduction, 0.973, 0.005);
}

TEST(ParamCounts, ViTBaseCloseToPaperAndLargest) {
  nt::Rng rng(5);
  auto vit = m::vit_base(96, 10, rng);
  EXPECT_NEAR(static_cast<double>(vit->num_parameters()), 78218506.0, 0.01 * 78218506.0)
      << vit->num_parameters();
}

TEST(ParamCounts, OrderingMatchesTable4) {
  nt::Rng rng(6);
  // ViT > ResNet50 > BoTNet50 > ODENet > Proposed.
  const auto vit = m::vit_base(96, 10, rng)->num_parameters();
  const auto res = m::resnet50(96, 10, rng)->num_parameters();
  const auto bot = m::botnet50(96, 10, rng)->num_parameters();
  const auto ode = m::odenet(96, 10, rng)->num_parameters();
  const auto prop = m::proposed_model(96, 10, rng)->num_parameters();
  EXPECT_GT(vit, res);
  EXPECT_GT(res, bot);
  EXPECT_GT(bot, ode);
  EXPECT_GT(ode, prop);
}

TEST(ParamCounts, OdeBlockStepsDontChangeParams) {
  nt::Rng rng(7);
  auto c2 = m::odenet(96, 10, rng, /*steps=*/2);
  auto c12 = m::odenet(96, 10, rng, /*steps=*/12);
  EXPECT_EQ(c2->num_parameters(), c12->num_parameters());
}

TEST(TinyModels, ForwardShapes) {
  nt::Rng rng(8);
  for (auto kind : m::tiny_models()) {
    auto net = m::make_model(kind, 32, 10, rng);
    net->train(false);
    auto x = rng.rand(nt::Shape{2, 3, 32, 32});
    auto y = net->forward(x);
    EXPECT_EQ(y.shape(), (nt::Shape{2, 10})) << m::to_string(kind);
    for (nt::index_t i = 0; i < y.numel(); ++i) {
      EXPECT_FALSE(std::isnan(y[i])) << m::to_string(kind);
    }
  }
}

TEST(TinyModels, BackwardRunsAndProducesGradients) {
  nt::Rng rng(9);
  for (auto kind : m::tiny_models()) {
    auto net = m::make_model(kind, 32, 10, rng);
    net->train(true);
    auto x = rng.rand(nt::Shape{2, 3, 32, 32});
    auto y = net->forward(x);
    net->zero_grad();
    net->backward(nt::Tensor(y.shape(), 1.0f));
    double total = 0.0;
    for (auto* p : net->parameters()) {
      for (nt::index_t i = 0; i < p->grad.numel(); ++i) total += std::fabs(p->grad[i]);
    }
    EXPECT_GT(total, 0.0) << m::to_string(kind);
  }
}

TEST(Proposed, MhsaBlockIsWiredWithPaperDesignPoint) {
  nt::Rng rng(10);
  auto prop = m::proposed_model(96, 10, rng);
  ASSERT_NE(prop->mhsa_block(), nullptr);
  // The paper's (64, 6, 6) design point: 64-dim MHSA on a 6x6 map.
  EXPECT_EQ(prop->mhsa_block()->mhsa().config().dim, 64);
  EXPECT_EQ(prop->mhsa_block()->mhsa().config().height, 6);
  EXPECT_EQ(prop->final_spatial(), 6);
  // Eq. 16/17: ReLU attention + output LayerNorm + relative encoding.
  EXPECT_EQ(prop->mhsa_block()->mhsa().config().attention, m::AttentionKind::kRelu);
  EXPECT_TRUE(prop->mhsa_block()->mhsa().config().layer_norm_out);
  EXPECT_EQ(prop->mhsa_block()->mhsa().config().pos, m::PosEncodingKind::kRelative2d);
}

TEST(OdeNetModel, PlainBackboneHasNoMhsa) {
  nt::Rng rng(11);
  auto ode = m::odenet(96, 10, rng);
  EXPECT_EQ(ode->mhsa_block(), nullptr);
  EXPECT_EQ(ode->ode_blocks().size(), 3u);
}

TEST(Zoo, NamesAndFactories) {
  EXPECT_EQ(m::to_string(m::ModelKind::kProposed), "proposed");
  EXPECT_EQ(m::paper_name(m::ModelKind::kProposed), "Proposed model");
  EXPECT_EQ(m::table4_models().size(), 5u);
  EXPECT_EQ(m::tiny_models().size(), 5u);
  EXPECT_EQ(m::paper_param_count(m::ModelKind::kOdeNet), 599309);
}

TEST(Zoo, InvalidImageSizesRejected) {
  nt::Rng rng(12);
  EXPECT_THROW(m::odenet(50, 10, rng), std::invalid_argument);  // not /16
  m::ViTConfig bad;
  bad.image_size = 50;
  bad.patch_size = 16;
  EXPECT_THROW(m::ViT(bad, rng), std::invalid_argument);
}
