#include "nodetr/models/vit.hpp"

#include <gtest/gtest.h>

#include "../common/gradcheck.hpp"
#include "nodetr/tensor/ops.hpp"

namespace m = nodetr::models;
namespace nt = nodetr::tensor;

namespace {
m::ViTConfig micro_cfg() {
  m::ViTConfig cfg;
  cfg.image_size = 16;
  cfg.patch_size = 8;
  cfg.classes = 4;
  cfg.dim = 8;
  cfg.depth = 2;
  cfg.heads = 2;
  cfg.mlp_dim = 16;
  return cfg;
}
}  // namespace

TEST(ViTBlock, ShapePreserved) {
  nt::Rng rng(1);
  m::ViTBlock block(8, 2, 16, rng);
  auto x = rng.randn(nt::Shape{2, 5, 8});
  EXPECT_EQ(block.forward(x).shape(), x.shape());
}

TEST(ViTBlock, GradCheck) {
  nt::Rng rng(2);
  m::ViTBlock block(4, 2, 8, rng);
  auto x = rng.randn(nt::Shape{1, 3, 4});
  nodetr::testing::expect_gradients_match(block, x, /*seed=*/21, /*checks=*/5, /*eps=*/1e-2f,
                                          /*tol=*/6e-2f);
}

TEST(ViT, TokenCountIncludesClassToken) {
  nt::Rng rng(3);
  m::ViT vit(micro_cfg(), rng);
  EXPECT_EQ(vit.tokens(), 2 * 2 + 1);
}

TEST(ViT, ForwardShape) {
  nt::Rng rng(4);
  m::ViT vit(micro_cfg(), rng);
  auto x = rng.rand(nt::Shape{3, 3, 16, 16});
  EXPECT_EQ(vit.forward(x).shape(), (nt::Shape{3, 4}));
}

TEST(ViT, GradCheckMicro) {
  nt::Rng rng(5);
  m::ViT vit(micro_cfg(), rng);
  auto x = rng.rand(nt::Shape{1, 3, 16, 16});
  // Small eps: the class token feeds several LayerNorms whose curvature makes
  // coarse central differences unreliable.
  nodetr::testing::expect_gradients_match(vit, x, /*seed=*/22, /*checks=*/4, /*eps=*/1e-3f,
                                          /*tol=*/8e-2f);
}

TEST(ViT, ParamCountFormula) {
  nt::Rng rng(6);
  auto cfg = micro_cfg();
  m::ViT vit(cfg, rng);
  const nt::index_t d = cfg.dim, t = 5, mlp = cfg.mlp_dim;
  const nt::index_t patch = 3 * cfg.patch_size * cfg.patch_size * d + d;
  const nt::index_t block = 2 * (2 * d) +            // two LayerNorms
                            3 * d * d +              // qkv, no bias/out-proj
                            (d * mlp + mlp) + (mlp * d + d);  // MLP
  const nt::index_t expected = patch + d /*cls*/ + t * d /*pos*/ + cfg.depth * block +
                               2 * d /*final LN*/ + (d * cfg.classes + cfg.classes);
  EXPECT_EQ(vit.num_parameters(), expected);
}
