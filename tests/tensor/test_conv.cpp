#include "nodetr/tensor/conv.hpp"

#include <gtest/gtest.h>

#include "nodetr/tensor/ops.hpp"
#include "nodetr/tensor/rng.hpp"

namespace nt = nodetr::tensor;

namespace {

// Direct reference convolution for validation.
nt::Tensor naive_conv2d(const nt::Tensor& x, const nt::Tensor& w, const nt::Tensor& b,
                        const nt::Conv2dGeom& g) {
  const auto n = x.dim(0), h = x.dim(2), ww = x.dim(3);
  const auto ho = g.out_extent(h), wo = g.out_extent(ww);
  nt::Tensor out(nt::Shape{n, g.out_channels, ho, wo});
  for (nt::index_t s = 0; s < n; ++s)
    for (nt::index_t oc = 0; oc < g.out_channels; ++oc)
      for (nt::index_t oy = 0; oy < ho; ++oy)
        for (nt::index_t ox = 0; ox < wo; ++ox) {
          double acc = b.empty() ? 0.0 : b[oc];
          for (nt::index_t ic = 0; ic < g.in_channels; ++ic)
            for (nt::index_t ky = 0; ky < g.kernel; ++ky)
              for (nt::index_t kx = 0; kx < g.kernel; ++kx) {
                const auto iy = oy * g.stride + ky - g.pad;
                const auto ix = ox * g.stride + kx - g.pad;
                if (iy < 0 || iy >= h || ix < 0 || ix >= ww) continue;
                acc += static_cast<double>(x.at(s, ic, iy, ix)) *
                       w[((oc * g.in_channels + ic) * g.kernel + ky) * g.kernel + kx];
              }
          out.at(s, oc, oy, ox) = static_cast<float>(acc);
        }
  return out;
}

// Numerical gradient of sum(conv(x)) w.r.t. x[i], central differences.
float numgrad_input(const nt::Tensor& x, const nt::Tensor& w, const nt::Conv2dGeom& g,
                    nt::index_t i) {
  const float eps = 1e-3f;
  nt::Tensor xp = x, xm = x;
  xp[i] += eps;
  xm[i] -= eps;
  const float fp = nt::sum(nt::conv2d(xp, w, {}, g));
  const float fm = nt::sum(nt::conv2d(xm, w, {}, g));
  return (fp - fm) / (2 * eps);
}

}  // namespace

TEST(Conv2d, Im2ColRoundTripIdentityKernel) {
  // A 1x1 kernel stride 1 im2col is exactly the flattened image.
  nt::Conv2dGeom g{.in_channels = 2, .out_channels = 2, .kernel = 1, .stride = 1, .pad = 0};
  nt::Rng rng(1);
  auto img = rng.randn(nt::Shape{2, 4, 4});
  std::vector<float> col(2 * 16);
  nt::im2col(img.data(), 2, 4, 4, g, col.data());
  for (nt::index_t i = 0; i < img.numel(); ++i) EXPECT_FLOAT_EQ(col[static_cast<size_t>(i)], img[i]);
}

TEST(Conv2d, MatchesNaiveStride1Pad1) {
  nt::Conv2dGeom g{.in_channels = 3, .out_channels = 4, .kernel = 3, .stride = 1, .pad = 1};
  nt::Rng rng(2);
  auto x = rng.randn(nt::Shape{2, 3, 6, 6});
  auto w = rng.randn(nt::Shape{4, 3, 3, 3});
  auto b = rng.randn(nt::Shape{4});
  EXPECT_TRUE(nt::allclose(nt::conv2d(x, w, b, g), naive_conv2d(x, w, b, g), 1e-4f, 1e-4f));
}

TEST(Conv2d, MatchesNaiveStride2) {
  nt::Conv2dGeom g{.in_channels = 2, .out_channels = 3, .kernel = 3, .stride = 2, .pad = 1};
  nt::Rng rng(3);
  auto x = rng.randn(nt::Shape{1, 2, 7, 7});
  auto w = rng.randn(nt::Shape{3, 2, 3, 3});
  auto out = nt::conv2d(x, w, {}, g);
  EXPECT_EQ(out.shape(), (nt::Shape{1, 3, 4, 4}));
  EXPECT_TRUE(nt::allclose(out, naive_conv2d(x, w, {}, g), 1e-4f, 1e-4f));
}

TEST(Conv2d, OutExtentFormula) {
  nt::Conv2dGeom g{.in_channels = 1, .out_channels = 1, .kernel = 3, .stride = 2, .pad = 1};
  EXPECT_EQ(g.out_extent(96), 48);
  EXPECT_EQ(g.out_extent(7), 4);
}

TEST(Conv2d, BackwardInputMatchesNumerical) {
  nt::Conv2dGeom g{.in_channels = 2, .out_channels = 2, .kernel = 3, .stride = 1, .pad = 1};
  nt::Rng rng(4);
  auto x = rng.randn(nt::Shape{1, 2, 4, 4});
  auto w = rng.randn(nt::Shape{2, 2, 3, 3});
  // d sum(y) / dx == conv2d_backward_input(ones).
  auto y = nt::conv2d(x, w, {}, g);
  nt::Tensor gout(y.shape(), 1.0f);
  auto gx = nt::conv2d_backward_input(gout, w, g, 4, 4);
  for (nt::index_t i : {0, 5, 17, 31}) {
    EXPECT_NEAR(gx[i], numgrad_input(x, w, g, i), 1e-2f) << "at flat index " << i;
  }
}

TEST(Conv2d, BackwardParamsMatchesNumerical) {
  nt::Conv2dGeom g{.in_channels = 1, .out_channels = 2, .kernel = 3, .stride = 1, .pad = 1};
  nt::Rng rng(5);
  auto x = rng.randn(nt::Shape{1, 1, 4, 4});
  auto w = rng.randn(nt::Shape{2, 1, 3, 3});
  auto y = nt::conv2d(x, w, {}, g);
  nt::Tensor gout(y.shape(), 1.0f);
  nt::Tensor gw(w.shape()), gb(nt::Shape{2});
  nt::conv2d_backward_params(x, gout, g, gw, gb);
  const float eps = 1e-3f;
  for (nt::index_t i : {0, 4, 9, 17}) {
    nt::Tensor wp = w, wm = w;
    wp[i] += eps;
    wm[i] -= eps;
    const float num =
        (nt::sum(nt::conv2d(x, wp, {}, g)) - nt::sum(nt::conv2d(x, wm, {}, g))) / (2 * eps);
    EXPECT_NEAR(gw[i], num, 1e-2f) << "weight index " << i;
  }
  // Bias gradient of sum() is just the output plane size.
  EXPECT_NEAR(gb[0], 16.0f, 1e-3f);
}

TEST(Depthwise, MatchesPerChannelDenseConv) {
  // A depthwise conv equals a dense conv whose cross-channel taps are zero.
  nt::Conv2dGeom g{.in_channels = 3, .out_channels = 3, .kernel = 3, .stride = 1, .pad = 1};
  nt::Rng rng(6);
  auto x = rng.randn(nt::Shape{2, 3, 5, 5});
  auto wd = rng.randn(nt::Shape{3, 3, 3});  // (C, K, K)
  nt::Tensor wdense(nt::Shape{3, 3, 3, 3});
  for (nt::index_t c = 0; c < 3; ++c)
    for (nt::index_t ky = 0; ky < 3; ++ky)
      for (nt::index_t kx = 0; kx < 3; ++kx)
        wdense.at(c, c, ky, kx) = wd.at(c, ky, kx);
  auto yd = nt::depthwise_conv2d(x, wd, {}, g);
  auto ydense = nt::conv2d(x, wdense, {}, g);
  EXPECT_TRUE(nt::allclose(yd, ydense, 1e-4f, 1e-4f));
}

TEST(Depthwise, BackwardInputMatchesNumerical) {
  nt::Conv2dGeom g{.in_channels = 2, .out_channels = 2, .kernel = 3, .stride = 1, .pad = 1};
  nt::Rng rng(7);
  auto x = rng.randn(nt::Shape{1, 2, 4, 4});
  auto w = rng.randn(nt::Shape{2, 3, 3});
  auto y = nt::depthwise_conv2d(x, w, {}, g);
  nt::Tensor gout(y.shape(), 1.0f);
  auto gx = nt::depthwise_conv2d_backward_input(gout, w, g, 4, 4);
  const float eps = 1e-3f;
  for (nt::index_t i : {0, 7, 21}) {
    nt::Tensor xp = x, xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    const float num = (nt::sum(nt::depthwise_conv2d(xp, w, {}, g)) -
                       nt::sum(nt::depthwise_conv2d(xm, w, {}, g))) /
                      (2 * eps);
    EXPECT_NEAR(gx[i], num, 1e-2f);
  }
}

TEST(Depthwise, BackwardParamsMatchesNumerical) {
  nt::Conv2dGeom g{.in_channels = 2, .out_channels = 2, .kernel = 3, .stride = 1, .pad = 1};
  nt::Rng rng(8);
  auto x = rng.randn(nt::Shape{1, 2, 4, 4});
  auto w = rng.randn(nt::Shape{2, 3, 3});
  auto y = nt::depthwise_conv2d(x, w, {}, g);
  nt::Tensor gout(y.shape(), 1.0f);
  nt::Tensor gw(w.shape()), gb(nt::Shape{2});
  nt::depthwise_conv2d_backward_params(x, gout, g, gw, gb);
  const float eps = 1e-3f;
  for (nt::index_t i : {0, 8, 12}) {
    nt::Tensor wp = w, wm = w;
    wp[i] += eps;
    wm[i] -= eps;
    const float num = (nt::sum(nt::depthwise_conv2d(x, wp, {}, g)) -
                       nt::sum(nt::depthwise_conv2d(x, wm, {}, g))) /
                      (2 * eps);
    EXPECT_NEAR(gw[i], num, 1e-2f);
  }
}

// Parameterized sweep: forward conv matches naive across geometries.
struct ConvCase {
  int cin, cout, k, stride, pad, h, w;
};

class ConvGeometries : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvGeometries, ForwardMatchesNaive) {
  const auto p = GetParam();
  nt::Conv2dGeom g{.in_channels = p.cin, .out_channels = p.cout, .kernel = p.k,
                   .stride = p.stride, .pad = p.pad};
  nt::Rng rng(99);
  auto x = rng.randn(nt::Shape{1, p.cin, p.h, p.w});
  auto w = rng.randn(nt::Shape{p.cout, p.cin, p.k, p.k});
  EXPECT_TRUE(nt::allclose(nt::conv2d(x, w, {}, g), naive_conv2d(x, w, {}, g), 1e-4f, 1e-4f));
}

INSTANTIATE_TEST_SUITE_P(Sweep, ConvGeometries,
                         ::testing::Values(ConvCase{1, 1, 1, 1, 0, 5, 5},
                                           ConvCase{2, 4, 3, 1, 1, 6, 6},
                                           ConvCase{3, 2, 3, 2, 1, 9, 9},
                                           ConvCase{4, 4, 5, 1, 2, 8, 8},
                                           ConvCase{2, 3, 3, 2, 0, 8, 10},
                                           ConvCase{1, 8, 7, 2, 3, 12, 12}));
