#include "nodetr/tensor/shape.hpp"

#include <gtest/gtest.h>

namespace nt = nodetr::tensor;

TEST(Shape, RankAndDims) {
  nt::Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.dim(0), 2);
  EXPECT_EQ(s.dim(1), 3);
  EXPECT_EQ(s.dim(2), 4);
  EXPECT_EQ(s[2], 4);
}

TEST(Shape, NegativeAxisCountsFromBack) {
  nt::Shape s{2, 3, 4};
  EXPECT_EQ(s.dim(-1), 4);
  EXPECT_EQ(s.dim(-3), 2);
}

TEST(Shape, OutOfRangeAxisThrows) {
  nt::Shape s{2, 3};
  EXPECT_THROW(s.dim(2), std::out_of_range);
  EXPECT_THROW(s.dim(-3), std::out_of_range);
}

TEST(Shape, Numel) {
  EXPECT_EQ((nt::Shape{2, 3, 4}).numel(), 24);
  EXPECT_EQ((nt::Shape{}).numel(), 1);  // rank-0 scalar
  EXPECT_EQ((nt::Shape{0, 5}).numel(), 0);
}

TEST(Shape, RowMajorStrides) {
  nt::Shape s{2, 3, 4};
  auto st = s.strides();
  ASSERT_EQ(st.size(), 3u);
  EXPECT_EQ(st[0], 12);
  EXPECT_EQ(st[1], 4);
  EXPECT_EQ(st[2], 1);
}

TEST(Shape, Equality) {
  EXPECT_EQ((nt::Shape{2, 3}), (nt::Shape{2, 3}));
  EXPECT_NE((nt::Shape{2, 3}), (nt::Shape{3, 2}));
}

TEST(Shape, NegativeExtentRejected) {
  EXPECT_THROW(nt::Shape({2, -1}), std::invalid_argument);
}

TEST(Shape, ToString) { EXPECT_EQ((nt::Shape{2, 3}).to_string(), "[2, 3]"); }
