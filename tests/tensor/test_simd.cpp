// Differential suite for every runtime-dispatched GEMM microkernel variant.
//
// Every kernel the dispatcher could hand out on this host is driven through
// gemm_blocked_cfg with deliberately tiny blocking (so block edges, partial
// tiles, and the k-split all trigger on small inputs) and checked against a
// double-accumulating naive reference, against the scalar kernel, and for
// the two reproducibility contracts the serving stack relies on:
//   - bitwise-identical rows across batch splits (same kernel), and
//   - bitwise-identical output whether the tile loops run on the pool or
//     serially (what a different thread count changes).
// This file is part of test_tensor, so it also rides the TSan CI job, which
// exercises the shared packed-panel buffers across pool workers.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "nodetr/tensor/arena.hpp"
#include "nodetr/tensor/gemm.hpp"
#include "nodetr/tensor/ops.hpp"
#include "nodetr/tensor/parallel.hpp"
#include "nodetr/tensor/rng.hpp"
#include "nodetr/tensor/simd.hpp"
#include "nodetr/tensor/tune.hpp"

namespace nt = nodetr::tensor;
namespace simd = nodetr::tensor::simd;
namespace tune = nodetr::tensor::tune;

namespace {

nt::Tensor naive_matmul(const nt::Tensor& a, const nt::Tensor& b) {
  const auto m = a.dim(0), k = a.dim(1), n = b.dim(1);
  nt::Tensor c(nt::Shape{m, n});
  for (nt::index_t i = 0; i < m; ++i)
    for (nt::index_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (nt::index_t p = 0; p < k; ++p) acc += static_cast<double>(a.at(i, p)) * b.at(p, j);
      c.at(i, j) = static_cast<float>(acc);
    }
  return c;
}

/// Tiny blocking: MC/NC of two tiles and a KC that splits k on odd shapes,
/// so every loop in the macro kernel rolls over even for ~30-row problems.
tune::GemmConfig tiny_config(const simd::MicroKernel& kernel) {
  tune::GemmConfig cfg;
  cfg.kernel = &kernel;
  cfg.mc = kernel.mr * 2;
  cfg.kc = 24;
  cfg.nc = kernel.nr * 2;
  cfg.source = "default";
  return cfg;
}

nt::Tensor run_cfg(const nt::Tensor& a, const nt::Tensor& b, const tune::GemmConfig& cfg,
                   const nt::GemmEpilogue& ep = {}) {
  nt::Tensor c(nt::Shape{a.dim(0), b.dim(1)});
  nt::gemm_blocked_cfg(a.dim(0), a.dim(1), b.dim(1), nt::GemmView::plain(a.data(), a.dim(1)),
                       nt::GemmView::plain(b.data(), b.dim(1)), c.data(), b.dim(1), cfg, ep);
  return c;
}

class SimdKernels : public ::testing::TestWithParam<std::size_t> {
 protected:
  const simd::MicroKernel& kernel() const { return simd::available_kernels()[GetParam()]; }
};

}  // namespace

TEST(SimdRegistry, ScalarFallbackAlwaysAvailable) {
  ASSERT_FALSE(simd::available_kernels().empty());
  EXPECT_STREQ(simd::scalar_kernel().name, "scalar_4x8");
  EXPECT_EQ(simd::find_kernel("scalar_4x8"), &simd::scalar_kernel());
  EXPECT_EQ(simd::find_kernel("no_such_kernel"), nullptr);
  for (const auto& k : simd::available_kernels()) {
    EXPECT_GT(k.mr, 0);
    EXPECT_GT(k.nr, 0);
    EXPECT_NE(k.fn, nullptr);
  }
}

TEST_P(SimdKernels, MatchesNaiveOnOddShapes) {
  const struct { int m, k, n; } shapes[] = {
      {1, 1, 1}, {1, 8, 1},  {3, 5, 7},    {17, 23, 9},
      {33, 7, 19}, {40, 40, 40}, {6, 16, 16}, {65, 29, 33},
  };
  for (const auto& s : shapes) {
    nt::Rng rng(static_cast<std::uint64_t>(s.m * 10000 + s.k * 100 + s.n));
    auto a = rng.randn(nt::Shape{s.m, s.k});
    auto b = rng.randn(nt::Shape{s.k, s.n});
    const auto ref = naive_matmul(a, b);
    EXPECT_TRUE(nt::allclose(run_cfg(a, b, tiny_config(kernel())), ref, 1e-4f, 1e-4f))
        << kernel().name << " " << s.m << "x" << s.k << "x" << s.n;
  }
}

TEST_P(SimdKernels, MatchesScalarWithinTolerance) {
  nt::Rng rng(11);
  auto a = rng.randn(nt::Shape{37, 53});
  auto b = rng.randn(nt::Shape{53, 29});
  const auto scalar = run_cfg(a, b, tiny_config(simd::scalar_kernel()));
  // FMA contracts intermediate roundings, so variants differ in ulps from
  // the scalar reference — but must stay within float tolerance.
  EXPECT_TRUE(nt::allclose(run_cfg(a, b, tiny_config(kernel())), scalar, 1e-4f, 1e-4f));
}

TEST_P(SimdKernels, TransposedViewsMatchPlain) {
  nt::Rng rng(12);
  auto a = rng.randn(nt::Shape{19, 21});
  auto b = rng.randn(nt::Shape{21, 13});
  const auto cfg = tiny_config(kernel());
  const auto plain = run_cfg(a, b, cfg);
  const auto at = a.transposed();  // (21, 19) storing A^T
  const auto bt = b.transposed();  // (13, 21) storing B^T
  nt::Tensor c_ta(nt::Shape{19, 13}), c_tb(nt::Shape{19, 13});
  nt::gemm_blocked_cfg(19, 21, 13, nt::GemmView::transposed(at.data(), 19),
                       nt::GemmView::plain(b.data(), 13), c_ta.data(), 13, cfg);
  nt::gemm_blocked_cfg(19, 21, 13, nt::GemmView::plain(a.data(), 21),
                       nt::GemmView::transposed(bt.data(), 21), c_tb.data(), 13, cfg);
  // Packing normalizes both views to the same panel layout, so the products
  // are bitwise equal, not merely close.
  EXPECT_EQ(std::memcmp(plain.data(), c_ta.data(), sizeof(float) * 19 * 13), 0);
  EXPECT_EQ(std::memcmp(plain.data(), c_tb.data(), sizeof(float) * 19 * 13), 0);
}

TEST_P(SimdKernels, EpiloguesMatchManualApplication) {
  nt::Rng rng(13);
  auto a = rng.randn(nt::Shape{18, 31});
  auto b = rng.randn(nt::Shape{31, 22});
  auto bias_col = rng.randn(nt::Shape{22});
  auto bias_row = rng.randn(nt::Shape{18});
  auto residual = rng.randn(nt::Shape{18, 22});
  const auto cfg = tiny_config(kernel());

  nt::GemmEpilogue ep;
  ep.alpha = 0.5f;
  ep.bias_col = bias_col.data();
  ep.bias_row = bias_row.data();
  ep.residual = residual.data();
  ep.relu = true;
  const auto fused = run_cfg(a, b, cfg, ep);

  auto manual = run_cfg(a, b, cfg);
  for (nt::index_t i = 0; i < 18; ++i)
    for (nt::index_t j = 0; j < 22; ++j) {
      float v = 0.5f * manual.at(i, j) + bias_row[i] + bias_col[j] + residual.at(i, j);
      manual.at(i, j) = v < 0.0f ? 0.0f : v;
    }
  EXPECT_TRUE(nt::allclose(fused, manual, 1e-5f, 1e-6f));

  // accumulate: c += A B on a pre-filled C. The old value seeds the FMA
  // chain (first=false on the first k block) rather than being added after
  // the product, so this is tolerance-equal, not bitwise-equal.
  nt::Tensor acc(nt::Shape{18, 22}, 1.5f);
  nt::gemm_blocked_cfg(18, 31, 22, nt::GemmView::plain(a.data(), 31),
                       nt::GemmView::plain(b.data(), 22), acc.data(), 22, cfg,
                       {.accumulate = true});
  const auto base = run_cfg(a, b, cfg);
  for (nt::index_t i = 0; i < 18; ++i)
    for (nt::index_t j = 0; j < 22; ++j) {
      EXPECT_NEAR(acc.at(i, j), base.at(i, j) + 1.5f, 1e-4f);
    }
}

TEST_P(SimdKernels, BitwiseStableAcrossBatchSplit) {
  // The serving engine's contract: a request's rows are bitwise identical
  // whether computed alone or inside a larger batch. Rows are independent in
  // GEMM, so for a fixed kernel the split must not change a single bit.
  constexpr nt::index_t kM = 37, kK = 45, kN = 31;
  nt::Rng rng(14);
  auto a = rng.randn(nt::Shape{kM, kK});
  auto b = rng.randn(nt::Shape{kK, kN});
  const auto cfg = tiny_config(kernel());
  const auto full = run_cfg(a, b, cfg);
  for (const nt::index_t split : {1, 6, 17, 36}) {
    nt::Tensor parts(nt::Shape{kM, kN});
    nt::gemm_blocked_cfg(split, kK, kN, nt::GemmView::plain(a.data(), kK),
                         nt::GemmView::plain(b.data(), kN), parts.data(), kN, cfg);
    nt::gemm_blocked_cfg(kM - split, kK, kN, nt::GemmView::plain(a.data() + split * kK, kK),
                         nt::GemmView::plain(b.data(), kN), parts.data() + split * kN, kN, cfg);
    EXPECT_EQ(std::memcmp(full.data(), parts.data(), sizeof(float) * kM * kN), 0)
        << kernel().name << " split at " << split;
  }
}

TEST_P(SimdKernels, BitwiseStableSerialVsPooled) {
  // Running inside a pool chunk forces every nested parallel_for serial —
  // the single-thread schedule. The top-level call uses the full pool. Same
  // kernel, different thread split: the outputs must be bitwise identical.
  constexpr nt::index_t kM = 64, kK = 52, kN = 48;
  nt::Rng rng(15);
  auto a = rng.randn(nt::Shape{kM, kK});
  auto b = rng.randn(nt::Shape{kK, kN});
  const auto cfg = tiny_config(kernel());
  const auto pooled = run_cfg(a, b, cfg);
  nt::Tensor serial(nt::Shape{kM, kN});
  nt::ThreadPool::global().run_chunks(2, [&](std::size_t chunk) {
    if (chunk != 0) return;
    nt::gemm_blocked_cfg(kM, kK, kN, nt::GemmView::plain(a.data(), kK),
                         nt::GemmView::plain(b.data(), kN), serial.data(), kN, cfg);
  });
  EXPECT_EQ(std::memcmp(pooled.data(), serial.data(), sizeof(float) * kM * kN), 0);
}

TEST_P(SimdKernels, DefaultBlockingMatchesNaive) {
  // The real (cache-derived) blocking, not the tiny one: catches bugs that
  // only appear when a whole matrix fits one block.
  const auto cfg = tune::default_config(kernel(), tune::host_caches());
  nt::Rng rng(16);
  auto a = rng.randn(nt::Shape{70, 65});
  auto b = rng.randn(nt::Shape{65, 50});
  EXPECT_TRUE(nt::allclose(run_cfg(a, b, cfg), naive_matmul(a, b), 1e-4f, 1e-4f));
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, SimdKernels,
    ::testing::Range(std::size_t{0}, simd::available_kernels().size()),
    [](const ::testing::TestParamInfo<std::size_t>& info) {
      return std::string(simd::available_kernels()[info.param].name);
    });

TEST(ScratchArenaAlignment, EveryAllocationIsCacheLineAligned) {
  // The SIMD packing contract (arena.hpp): any alloc, any odd size history.
  auto& arena = nt::ScratchArena::local();
  nt::ScratchArena::Scope scope(arena);
  for (const std::size_t count : {1u, 3u, 7u, 63u, 64u, 65u, 1000u, 4097u}) {
    const float* p = arena.alloc<float>(count);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u) << "count " << count;
    const std::uint8_t* q = arena.alloc<std::uint8_t>(count);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(q) % 64, 0u) << "count " << count;
  }
}
