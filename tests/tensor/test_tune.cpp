// Units for the GEMM autotuner: cache probing, heuristic blocking budgets,
// spec parsing, the per-host tuning-cache file (round-trip plus every
// rejection path), and the full selection policy (env override -> cache file
// -> autotune) via the test-injectable SelectOptions front door.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "nodetr/tensor/simd.hpp"
#include "nodetr/tensor/tune.hpp"

namespace simd = nodetr::tensor::simd;
namespace tune = nodetr::tensor::tune;
using nodetr::tensor::index_t;

namespace {

/// Per-test temp file, removed on teardown; unique per process so parallel
/// ctest shards never collide.
class TuneFile : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    path_ = (std::filesystem::temp_directory_path() /
             ("nodetr_tune_" + std::to_string(::getpid()) + "_" + info->name()))
                .string();
    std::filesystem::remove(path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }

  void write_file(const std::string& contents) {
    std::ofstream out(path_, std::ios::trunc);
    out << contents;
  }

  std::string path_;
};

std::string valid_cache_contents() {
  // Build through the real writer so the format stays in one place.
  const auto& host = tune::host_caches();
  tune::GemmConfig cfg = tune::default_config(simd::scalar_kernel(), host);
  cfg.mc = 48;
  cfg.kc = 96;
  cfg.nc = 160;
  return std::string("nodetr-tune v1\n") + "host l1d=" + std::to_string(host.l1d) +
         " l2=" + std::to_string(host.l2) + " l3=" + std::to_string(host.l3) +
         " isa=" + simd::cpu_features() + "\nconfig " + tune::to_spec(cfg) + "\n";
}

}  // namespace

TEST(TuneCaches, HostCachesAlwaysPositive) {
  const auto& c = tune::host_caches();
  EXPECT_GT(c.l1d, 0u);
  EXPECT_GT(c.l2, 0u);
  EXPECT_GT(c.l3, 0u);
  EXPECT_GE(c.l2, c.l1d);
  // probe_caches() makes no default-filling promise, but whatever it found
  // must be what host_caches() kept.
  const auto probed = tune::probe_caches();
  if (probed.l1d != 0) {
    EXPECT_EQ(probed.l1d, c.l1d);
  }
  if (probed.l2 != 0) {
    EXPECT_EQ(probed.l2, c.l2);
  }
  if (probed.l3 != 0) {
    EXPECT_EQ(probed.l3, c.l3);
  }
}

TEST(TuneHeuristics, DefaultConfigRespectsCacheBudgets) {
  const auto& caches = tune::host_caches();
  for (const auto& kernel : simd::available_kernels()) {
    const auto cfg = tune::default_config(kernel, caches);
    ASSERT_EQ(cfg.kernel, &kernel);
    EXPECT_GE(cfg.kc, 64);
    EXPECT_LE(cfg.kc, 512);
    EXPECT_EQ(cfg.kc % 8, 0) << kernel.name;
    EXPECT_EQ(cfg.mc % kernel.mr, 0) << kernel.name;
    EXPECT_EQ(cfg.nc % kernel.nr, 0) << kernel.name;
    // The clamps may override the cache budget on tiny caches, but on any
    // real host the packed A block must not blow past L2.
    if (caches.l2 >= (1u << 20)) {
      EXPECT_LE(static_cast<std::size_t>(cfg.mc * cfg.kc) * sizeof(float), caches.l2)
          << kernel.name;
    }
  }
}

TEST(TuneHeuristics, CandidateConfigsCoverEveryKernel) {
  const auto cands = tune::candidate_configs(tune::host_caches());
  for (const auto& kernel : simd::available_kernels()) {
    const auto hits = std::count_if(cands.begin(), cands.end(),
                                    [&](const auto& c) { return c.kernel == &kernel; });
    EXPECT_GE(hits, 1) << kernel.name;
  }
}

TEST(TuneSpec, RoundTripsThroughString) {
  tune::GemmConfig cfg;
  cfg.kernel = &simd::scalar_kernel();
  cfg.mc = 40;
  cfg.kc = 64;
  cfg.nc = 128;
  const auto parsed = tune::parse_spec(tune::to_spec(cfg));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->kernel, cfg.kernel);
  EXPECT_EQ(parsed->mc, cfg.mc);
  EXPECT_EQ(parsed->kc, cfg.kc);
  EXPECT_EQ(parsed->nc, cfg.nc);
}

TEST(TuneSpec, KernelOnlySpecGetsHeuristicBlocking) {
  const auto parsed = tune::parse_spec("scalar_4x8");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->kernel, &simd::scalar_kernel());
  EXPECT_GT(parsed->mc, 0);
  EXPECT_GT(parsed->kc, 0);
  EXPECT_GT(parsed->nc, 0);
}

TEST(TuneSpec, RejectsMalformedSpecs) {
  EXPECT_FALSE(tune::parse_spec("").has_value());
  EXPECT_FALSE(tune::parse_spec("no_such_kernel").has_value());
  EXPECT_FALSE(tune::parse_spec("scalar_4x8:64").has_value());          // wrong arity
  EXPECT_FALSE(tune::parse_spec("scalar_4x8:64:64").has_value());      // wrong arity
  EXPECT_FALSE(tune::parse_spec("scalar_4x8:a:64:64").has_value());    // not a number
  EXPECT_FALSE(tune::parse_spec("scalar_4x8:64:64:64x").has_value());  // trailing junk
  EXPECT_FALSE(tune::parse_spec("scalar_4x8:4:64:64").has_value());    // below range
  EXPECT_FALSE(tune::parse_spec("scalar_4x8:64:64:2097152").has_value());  // above range
}

TEST_F(TuneFile, CacheFileRoundTrips) {
  const auto& host = tune::host_caches();
  tune::GemmConfig cfg = tune::default_config(simd::available_kernels().front(), host);
  cfg.mc = 24;
  cfg.kc = 72;
  cfg.nc = 96;
  ASSERT_TRUE(tune::save_cache_file(path_, cfg, host));
  const auto loaded = tune::load_cache_file(path_, host);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->kernel, cfg.kernel);
  EXPECT_EQ(loaded->mc, cfg.mc);
  EXPECT_EQ(loaded->kc, cfg.kc);
  EXPECT_EQ(loaded->nc, cfg.nc);
  EXPECT_STREQ(loaded->source, "cache");
}

TEST_F(TuneFile, MissingFileIsRejected) {
  EXPECT_FALSE(tune::load_cache_file(path_, tune::host_caches()).has_value());
}

TEST_F(TuneFile, GarbageFileIsRejected) {
  write_file("not a tuning cache at all\nrandom bytes\n");
  EXPECT_FALSE(tune::load_cache_file(path_, tune::host_caches()).has_value());
}

TEST_F(TuneFile, WrongMagicIsRejected) {
  auto contents = valid_cache_contents();
  contents.replace(0, contents.find('\n'), "nodetr-tune v0");
  write_file(contents);
  EXPECT_FALSE(tune::load_cache_file(path_, tune::host_caches()).has_value());
}

TEST_F(TuneFile, HostMismatchIsRejected) {
  // A cache written on this host must not load against a host whose L2
  // differs (new box, CPU swap) — the blocking would be stale.
  write_file(valid_cache_contents());
  tune::CacheInfo other = tune::host_caches();
  other.l2 *= 2;
  EXPECT_FALSE(tune::load_cache_file(path_, other).has_value());
  EXPECT_TRUE(tune::load_cache_file(path_, tune::host_caches()).has_value());
}

TEST_F(TuneFile, UnknownKernelIsRejected) {
  auto contents = valid_cache_contents();
  const auto pos = contents.find("config ");
  contents.replace(pos, contents.size() - pos, "config martian_9x9:64:64:64\n");
  write_file(contents);
  EXPECT_FALSE(tune::load_cache_file(path_, tune::host_caches()).has_value());
}

TEST_F(TuneFile, TruncatedFileIsRejected) {
  const auto contents = valid_cache_contents();
  write_file(contents.substr(0, contents.find("config ")));  // header only
  EXPECT_FALSE(tune::load_cache_file(path_, tune::host_caches()).has_value());
}

TEST_F(TuneFile, MalformedBlockingIsRejected) {
  auto contents = valid_cache_contents();
  const auto pos = contents.find("config ");
  contents.replace(pos, contents.size() - pos, "config scalar_4x8:64:banana:64\n");
  write_file(contents);
  EXPECT_FALSE(tune::load_cache_file(path_, tune::host_caches()).has_value());
}

TEST_F(TuneFile, SelectHonorsEnvOverrideFirst) {
  // Even with a valid cache file present, the env spec wins.
  const auto& host = tune::host_caches();
  tune::GemmConfig cached = tune::default_config(simd::available_kernels().front(), host);
  ASSERT_TRUE(tune::save_cache_file(path_, cached, host));
  const auto cfg =
      tune::select_config({.env_spec = "scalar_4x8:40:64:80", .cache_path = path_});
  EXPECT_EQ(cfg.kernel, &simd::scalar_kernel());
  EXPECT_EQ(cfg.mc, 40);
  EXPECT_EQ(cfg.kc, 64);
  EXPECT_EQ(cfg.nc, 80);
  EXPECT_STREQ(cfg.source, "env");
}

TEST_F(TuneFile, SelectFallsThroughInvalidEnvToCache) {
  const auto& host = tune::host_caches();
  tune::GemmConfig cached = tune::default_config(simd::scalar_kernel(), host);
  cached.kc = 88;
  ASSERT_TRUE(tune::save_cache_file(path_, cached, host));
  const auto cfg = tune::select_config({.env_spec = "bogus!spec", .cache_path = path_});
  EXPECT_STREQ(cfg.source, "cache");
  EXPECT_EQ(cfg.kc, 88);
}

TEST_F(TuneFile, SelectTunesOnceThenHitsCache) {
  // First select: no file -> autotune runs and persists its winner.
  const auto tuned = tune::select_config({.env_spec = "", .cache_path = path_});
  EXPECT_STREQ(tuned.source, "tuned");
  ASSERT_TRUE(std::filesystem::exists(path_));
  // Second select: the file round-trips, no re-tune.
  const auto again = tune::select_config({.env_spec = "", .cache_path = path_});
  EXPECT_STREQ(again.source, "cache");
  EXPECT_EQ(again.kernel, tuned.kernel);
  EXPECT_EQ(again.mc, tuned.mc);
  EXPECT_EQ(again.kc, tuned.kc);
  EXPECT_EQ(again.nc, tuned.nc);
}

TEST_F(TuneFile, SelectRetunesAfterCorruption) {
  const auto tuned = tune::select_config({.env_spec = "", .cache_path = path_});
  write_file("corrupted\n");
  const auto cfg = tune::select_config({.env_spec = "", .cache_path = path_});
  EXPECT_STREQ(cfg.source, "tuned");
  // The corrupt file was rewritten with the fresh winner.
  const auto reloaded = tune::load_cache_file(path_, tune::host_caches());
  ASSERT_TRUE(reloaded.has_value());
  EXPECT_EQ(reloaded->kernel, cfg.kernel);
  (void)tuned;
}

TEST(TuneAutotune, ReturnsRunnableConfig) {
  const auto cfg = tune::autotune(tune::host_caches());
  ASSERT_NE(cfg.kernel, nullptr);
  EXPECT_STREQ(cfg.source, "tuned");
  EXPECT_GT(cfg.mc, 0);
  EXPECT_GT(cfg.kc, 0);
  EXPECT_GT(cfg.nc, 0);
  EXPECT_NE(simd::find_kernel(cfg.kernel->name), nullptr);
}

TEST(TuneDescribe, MentionsKernelBlockingAndSource) {
  const auto cfg = tune::default_config(simd::scalar_kernel(), tune::host_caches());
  const auto line = tune::describe(cfg);
  EXPECT_NE(line.find("scalar_4x8"), std::string::npos);
  EXPECT_NE(line.find("MC="), std::string::npos);
  EXPECT_NE(line.find("KC="), std::string::npos);
  EXPECT_NE(line.find("NC="), std::string::npos);
  EXPECT_NE(line.find("source=default"), std::string::npos);
}
