// Differential tests for the blocked kernel layer: the packed/tiled GEMM and
// the conv kernels are checked against straight naive references over odd
// shapes and geometries, and the fixed-point matmuls are checked bitwise
// against a reference that reimplements the rounding/saturation narrowing.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <vector>

#include "nodetr/fx/qops.hpp"
#include "nodetr/tensor/arena.hpp"
#include "nodetr/tensor/conv.hpp"
#include "nodetr/tensor/gemm.hpp"
#include "nodetr/tensor/parallel.hpp"
#include "nodetr/tensor/rng.hpp"

namespace nt = nodetr::tensor;
namespace fx = nodetr::fx;
using nt::index_t;
using nt::Shape;
using nt::Tensor;

namespace {

// Shapes chosen to straddle every blocking boundary: microkernel edges
// (1..5), one full tile (64), and a non-multiple of both tile and panel
// sizes (127).
const index_t kOddSizes[] = {1, 2, 3, 5, 17, 64, 127};

void expect_allclose(const Tensor& got, const Tensor& want, float rtol = 1e-4f) {
  ASSERT_EQ(got.numel(), want.numel());
  for (index_t i = 0; i < got.numel(); ++i) {
    const float tol = rtol * std::max(1.0f, std::abs(want[i]));
    ASSERT_NEAR(got[i], want[i], tol) << "at flat index " << i;
  }
}

Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  const index_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c(Shape{m, n});
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (index_t p = 0; p < k; ++p) acc += a[i * k + p] * b[p * n + j];
      c[i * n + j] = acc;
    }
  }
  return c;
}

Tensor transpose(const Tensor& a) {
  const index_t r = a.dim(0), c = a.dim(1);
  Tensor t(Shape{c, r});
  for (index_t i = 0; i < r; ++i) {
    for (index_t j = 0; j < c; ++j) t[j * r + i] = a[i * c + j];
  }
  return t;
}

Tensor naive_conv2d(const Tensor& x, const Tensor& w, const Tensor& bias,
                    const nt::Conv2dGeom& g) {
  const index_t n = x.dim(0), h = x.dim(2), ww = x.dim(3);
  const index_t ho = g.out_extent(h), wo = g.out_extent(ww);
  Tensor out(Shape{n, g.out_channels, ho, wo});
  for (index_t s = 0; s < n; ++s) {
    for (index_t co = 0; co < g.out_channels; ++co) {
      for (index_t oy = 0; oy < ho; ++oy) {
        for (index_t ox = 0; ox < wo; ++ox) {
          float acc = 0.0f;
          for (index_t ci = 0; ci < g.in_channels; ++ci) {
            for (index_t ky = 0; ky < g.kernel; ++ky) {
              for (index_t kx = 0; kx < g.kernel; ++kx) {
                const index_t iy = oy * g.stride - g.pad + ky;
                const index_t ix = ox * g.stride - g.pad + kx;
                if (iy < 0 || iy >= h || ix < 0 || ix >= ww) continue;
                acc += x[((s * g.in_channels + ci) * h + iy) * ww + ix] *
                       w[((co * g.in_channels + ci) * g.kernel + ky) * g.kernel + kx];
              }
            }
          }
          if (!bias.empty()) acc += bias[co];
          out[((s * g.out_channels + co) * ho + oy) * wo + ox] = acc;
        }
      }
    }
  }
  return out;
}

Tensor naive_depthwise(const Tensor& x, const Tensor& w, const Tensor& bias,
                       const nt::Conv2dGeom& g) {
  const index_t n = x.dim(0), c = x.dim(1), h = x.dim(2), ww = x.dim(3);
  const index_t ho = g.out_extent(h), wo = g.out_extent(ww);
  Tensor out(Shape{n, c, ho, wo});
  for (index_t s = 0; s < n; ++s) {
    for (index_t ch = 0; ch < c; ++ch) {
      for (index_t oy = 0; oy < ho; ++oy) {
        for (index_t ox = 0; ox < wo; ++ox) {
          float acc = bias.empty() ? 0.0f : bias[ch];
          for (index_t ky = 0; ky < g.kernel; ++ky) {
            for (index_t kx = 0; kx < g.kernel; ++kx) {
              const index_t iy = oy * g.stride - g.pad + ky;
              const index_t ix = ox * g.stride - g.pad + kx;
              if (iy < 0 || iy >= h || ix < 0 || ix >= ww) continue;
              acc += x[((s * c + ch) * h + iy) * ww + ix] *
                     w[(ch * g.kernel + ky) * g.kernel + kx];
            }
          }
          out[((s * c + ch) * ho + oy) * wo + ox] = acc;
        }
      }
    }
  }
  return out;
}

/// Straight-loop fixed-point matmul that independently reimplements the
/// round-half-away/saturate narrowing, for bitwise comparison.
std::int64_t ref_narrow(__int128 acc, int from_frac, const fx::FixedFormat& to) {
  const int shift = from_frac - to.frac_bits();
  __int128 r = acc;
  if (shift > 0) {
    const __int128 half = static_cast<__int128>(1) << (shift - 1);
    r = (r + (r >= 0 ? half : half - 1)) >> shift;
  } else if (shift < 0) {
    r <<= -shift;
  }
  if (r > to.raw_max()) return to.raw_max();
  if (r < to.raw_min()) return to.raw_min();
  return static_cast<std::int64_t>(r);
}

fx::FixedTensor ref_qmatmul(const fx::FixedTensor& a, const fx::FixedTensor& b,
                            fx::FixedFormat out_format) {
  const index_t m = a.shape().dim(0), k = a.shape().dim(1), n = b.shape().dim(1);
  const int prod_frac = a.format().frac_bits() + b.format().frac_bits();
  fx::FixedTensor c(Shape{m, n}, out_format);
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < n; ++j) {
      __int128 acc = 0;
      for (index_t p = 0; p < k; ++p) {
        acc += static_cast<__int128>(a.raw()[i * k + p]) * b.raw()[p * n + j];
      }
      c.raw()[i * n + j] = ref_narrow(acc, prod_frac, out_format);
    }
  }
  return c;
}

}  // namespace

TEST(Kernels, MatmulMatchesNaiveOverOddShapes) {
  nt::Rng rng(11);
  for (index_t m : kOddSizes) {
    for (index_t k : kOddSizes) {
      for (index_t n : kOddSizes) {
        // Keep the cube of cases cheap: skip only the largest all-big combos.
        if (m * k * n > 64 * 64 * 127) continue;
        const Tensor a = rng.randn(Shape{m, k});
        const Tensor b = rng.randn(Shape{k, n});
        expect_allclose(nt::matmul(a, b), naive_matmul(a, b));
      }
    }
  }
}

TEST(Kernels, MatmulLargeNonMultipleShape) {
  nt::Rng rng(12);
  const Tensor a = rng.randn(Shape{127, 127});
  const Tensor b = rng.randn(Shape{127, 127});
  expect_allclose(nt::matmul(a, b), naive_matmul(a, b));
}

TEST(Kernels, MatmulNtAndTnMatchNaive) {
  nt::Rng rng(13);
  const index_t shapes[][3] = {{1, 1, 1}, {3, 5, 2}, {17, 64, 5}, {64, 17, 127}, {127, 3, 64}};
  for (const auto& s : shapes) {
    const index_t m = s[0], k = s[1], n = s[2];
    const Tensor a = rng.randn(Shape{m, k});
    const Tensor b = rng.randn(Shape{k, n});
    expect_allclose(nt::matmul_nt(a, transpose(b)), naive_matmul(a, b));
    expect_allclose(nt::matmul_tn(transpose(a), b), naive_matmul(a, b));
  }
}

TEST(Kernels, GemmZeroKWritesZeros) {
  Tensor c(Shape{3, 4}, 7.5f);
  nt::gemm_blocked(3, 0, 4, nt::GemmView::plain(nullptr, 1), nt::GemmView::plain(nullptr, 1),
                   c.data(), 4);
  for (index_t i = 0; i < c.numel(); ++i) EXPECT_EQ(c[i], 0.0f);
}

TEST(Kernels, GemmZeroKAccumulateLeavesCUntouched) {
  Tensor c(Shape{3, 4}, 7.5f);
  nt::gemm_blocked(3, 0, 4, nt::GemmView::plain(nullptr, 1), nt::GemmView::plain(nullptr, 1),
                   c.data(), 4, {.accumulate = true});
  for (index_t i = 0; i < c.numel(); ++i) EXPECT_EQ(c[i], 7.5f);
}

TEST(Kernels, GemmEpilogueFusesAlphaBiasResidualRelu) {
  nt::Rng rng(14);
  const index_t m = 33, k = 29, n = 41;
  const Tensor a = rng.randn(Shape{m, k});
  const Tensor b = rng.randn(Shape{k, n});
  const Tensor bias_col = rng.randn(Shape{n});
  const Tensor bias_row = rng.randn(Shape{m});
  const Tensor residual = rng.randn(Shape{m, n});
  const float alpha = 0.5f;

  Tensor got(Shape{m, n});
  nt::gemm_blocked(m, k, n, nt::GemmView::plain(a.data(), k), nt::GemmView::plain(b.data(), n),
                   got.data(), n,
                   {.alpha = alpha,
                    .bias_col = bias_col.data(),
                    .bias_row = bias_row.data(),
                    .residual = residual.data(),
                    .relu = true});

  Tensor want = naive_matmul(a, b);
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < n; ++j) {
      float v = alpha * want[i * n + j] + bias_row[i] + bias_col[j] + residual[i * n + j];
      want[i * n + j] = v < 0.0f ? 0.0f : v;
    }
  }
  expect_allclose(got, want);
}

TEST(Kernels, GemmAccumulateAddsIntoC) {
  nt::Rng rng(15);
  const index_t m = 19, k = 257, n = 23;  // k > one kKc block
  const Tensor a = rng.randn(Shape{m, k});
  const Tensor b = rng.randn(Shape{k, n});
  Tensor c(Shape{m, n}, 2.0f);
  nt::gemm_blocked(m, k, n, nt::GemmView::plain(a.data(), k), nt::GemmView::plain(b.data(), n),
                   c.data(), n, {.accumulate = true});
  Tensor want = naive_matmul(a, b);
  for (index_t i = 0; i < want.numel(); ++i) want[i] += 2.0f;
  expect_allclose(c, want);
}

TEST(Kernels, GemmStridedViewsAddressSubMatricesInPlace) {
  // Operands and output live as sub-blocks of larger row-major parents, the
  // way per-head attention slices address (B*N, D) matrices.
  nt::Rng rng(16);
  const index_t m = 21, k = 18, n = 27;
  const index_t lda = k + 3, ldb = n + 2, ldc = n + 5;
  const Tensor pa = rng.randn(Shape{m, lda});
  const Tensor pb = rng.randn(Shape{k, ldb});
  Tensor pc(Shape{m, ldc}, 7.5f);

  nt::gemm_blocked(m, k, n, nt::GemmView::plain(pa.data() + 1, lda),
                   nt::GemmView::plain(pb.data() + 2, ldb), pc.data() + 3, ldc);

  Tensor a(Shape{m, k}), b(Shape{k, n});
  for (index_t i = 0; i < m; ++i) {
    for (index_t p = 0; p < k; ++p) a[i * k + p] = pa[i * lda + 1 + p];
  }
  for (index_t p = 0; p < k; ++p) {
    for (index_t j = 0; j < n; ++j) b[p * n + j] = pb[p * ldb + 2 + j];
  }
  const Tensor want = naive_matmul(a, b);
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < ldc; ++j) {
      if (j >= 3 && j < 3 + n) {
        const float tol = 1e-4f * std::max(1.0f, std::abs(want[i * n + (j - 3)]));
        ASSERT_NEAR(pc[i * ldc + j], want[i * n + (j - 3)], tol);
      } else {
        ASSERT_EQ(pc[i * ldc + j], 7.5f) << "wrote outside the strided sub-block";
      }
    }
  }
}

TEST(Kernels, Conv2dMatchesNaiveOverGeometries) {
  nt::Rng rng(17);
  struct Case {
    index_t cin, cout, kernel, stride, pad, h, w;
  };
  const Case cases[] = {
      {3, 5, 3, 1, 1, 7, 9},    // odd channels, non-square
      {2, 4, 3, 2, 0, 9, 9},    // strided, unpadded
      {1, 1, 1, 1, 0, 5, 5},    // pointwise
      {4, 3, 5, 2, 2, 11, 11},  // large kernel, strided + padded
      {5, 2, 3, 3, 1, 10, 8},   // stride == kernel
  };
  for (const auto& t : cases) {
    const nt::Conv2dGeom g{.in_channels = t.cin, .out_channels = t.cout, .kernel = t.kernel,
                           .stride = t.stride, .pad = t.pad};
    const Tensor x = rng.randn(Shape{2, t.cin, t.h, t.w});
    const Tensor w = rng.randn(Shape{t.cout, t.cin, t.kernel, t.kernel});
    const Tensor bias = rng.randn(Shape{t.cout});
    expect_allclose(nt::conv2d(x, w, bias, g), naive_conv2d(x, w, bias, g));
    expect_allclose(nt::conv2d(x, w, {}, g), naive_conv2d(x, w, {}, g));
  }
}

TEST(Kernels, DepthwiseConv2dMatchesNaive) {
  nt::Rng rng(18);
  struct Case {
    index_t c, kernel, stride, pad, h, w;
  };
  const Case cases[] = {
      {4, 3, 1, 1, 9, 11},  // interior fast path + edge ring
      {3, 3, 2, 1, 8, 8},   // strided
      {2, 5, 1, 2, 9, 9},   // 5x5 taps
      {5, 3, 1, 1, 3, 3},   // everything is an edge cell
      {1, 3, 1, 0, 6, 7},   // unpadded: all interior
  };
  for (const auto& t : cases) {
    const nt::Conv2dGeom g{.in_channels = t.c, .out_channels = t.c, .kernel = t.kernel,
                           .stride = t.stride, .pad = t.pad};
    const Tensor x = rng.randn(Shape{2, t.c, t.h, t.w});
    const Tensor w = rng.randn(Shape{t.c, t.kernel, t.kernel});
    const Tensor bias = rng.randn(Shape{t.c});
    expect_allclose(nt::depthwise_conv2d(x, w, bias, g), naive_depthwise(x, w, bias, g));
  }
}

TEST(Kernels, DepthwiseBackwardsMatchNaiveScatter) {
  nt::Rng rng(19);
  const index_t c = 3, h = 9, w = 10;
  const nt::Conv2dGeom g{.in_channels = c, .out_channels = c, .kernel = 3, .stride = 1, .pad = 1};
  const Tensor x = rng.randn(Shape{2, c, h, w});
  const Tensor wt = rng.randn(Shape{c, 3, 3});
  const Tensor go = rng.randn(Shape{2, c, g.out_extent(h), g.out_extent(w)});

  // Naive grad-input: scatter each output grad through the kernel taps.
  const index_t ho = g.out_extent(h), wo = g.out_extent(w);
  Tensor want_gx(Shape{2, c, h, w});
  for (index_t s = 0; s < 2; ++s) {
    for (index_t ch = 0; ch < c; ++ch) {
      for (index_t oy = 0; oy < ho; ++oy) {
        for (index_t ox = 0; ox < wo; ++ox) {
          const float gv = go[((s * c + ch) * ho + oy) * wo + ox];
          for (index_t ky = 0; ky < 3; ++ky) {
            for (index_t kx = 0; kx < 3; ++kx) {
              const index_t iy = oy * g.stride - g.pad + ky;
              const index_t ix = ox * g.stride - g.pad + kx;
              if (iy < 0 || iy >= h || ix < 0 || ix >= w) continue;
              want_gx[((s * c + ch) * h + iy) * w + ix] += gv * wt[(ch * 3 + ky) * 3 + kx];
            }
          }
        }
      }
    }
  }
  expect_allclose(nt::depthwise_conv2d_backward_input(go, wt, g, h, w), want_gx);

  Tensor want_gw(Shape{c, 3, 3}), want_gb(Shape{c});
  for (index_t s = 0; s < 2; ++s) {
    for (index_t ch = 0; ch < c; ++ch) {
      for (index_t oy = 0; oy < ho; ++oy) {
        for (index_t ox = 0; ox < wo; ++ox) {
          const float gv = go[((s * c + ch) * ho + oy) * wo + ox];
          want_gb[ch] += gv;
          for (index_t ky = 0; ky < 3; ++ky) {
            for (index_t kx = 0; kx < 3; ++kx) {
              const index_t iy = oy * g.stride - g.pad + ky;
              const index_t ix = ox * g.stride - g.pad + kx;
              if (iy < 0 || iy >= h || ix < 0 || ix >= w) continue;
              want_gw[(ch * 3 + ky) * 3 + kx] += gv * x[((s * c + ch) * h + iy) * w + ix];
            }
          }
        }
      }
    }
  }
  Tensor gw(Shape{c, 3, 3}), gb(Shape{c});
  nt::depthwise_conv2d_backward_params(x, go, g, gw, gb);
  expect_allclose(gw, want_gw, 1e-3f);
  expect_allclose(gb, want_gb, 1e-3f);
}

TEST(Kernels, QMatmulBitwiseMatchesStraightLoop) {
  nt::Rng rng(20);
  const index_t shapes[][3] = {{1, 1, 1}, {3, 5, 2}, {17, 31, 5}, {64, 64, 64}, {2, 127, 9}};
  const fx::FixedFormat afmt{32, 16}, bfmt{24, 8};
  for (const auto& s : shapes) {
    const index_t m = s[0], k = s[1], n = s[2];
    const auto a = fx::FixedTensor::from_float(rng.randn(Shape{m, k}), afmt);
    const auto b = fx::FixedTensor::from_float(rng.randn(Shape{k, n}), bfmt);
    const auto want = ref_qmatmul(a, b, {32, 16});
    const auto got = fx::qmatmul(a, b, {32, 16});
    for (index_t i = 0; i < want.numel(); ++i) {
      ASSERT_EQ(got.raw()[i], want.raw()[i]) << "raw mismatch at " << i;
    }
  }
}

TEST(Kernels, QMatmulBitwiseUnderSaturationAndUpshift) {
  nt::Rng rng(21);
  const index_t m = 13, k = 37, n = 11;
  // Large magnitudes into a narrow output format force the saturation path;
  // an output with more fractional bits than the product forces the upshift.
  const auto a = fx::FixedTensor::from_float(rng.randn(Shape{m, k}) * 40.0f, {16, 8});
  const auto b = fx::FixedTensor::from_float(rng.randn(Shape{k, n}) * 40.0f, {16, 8});
  for (const fx::FixedFormat out : {fx::FixedFormat{8, 4}, fx::FixedFormat{32, 8}}) {
    const auto want = ref_qmatmul(a, b, out);
    const auto got = fx::qmatmul(a, b, out);
    for (index_t i = 0; i < want.numel(); ++i) {
      ASSERT_EQ(got.raw()[i], want.raw()[i]) << "raw mismatch at " << i;
    }
  }
}

TEST(Kernels, QMatmulNtBitwiseMatchesTransposedReference) {
  nt::Rng rng(22);
  const index_t m = 9, k = 33, n = 7;
  const auto a = fx::FixedTensor::from_float(rng.randn(Shape{m, k}), {32, 16});
  const Tensor bf = rng.randn(Shape{k, n});
  const auto b = fx::FixedTensor::from_float(bf, {24, 8});
  const auto bt = fx::FixedTensor::from_float(transpose(bf), {24, 8});
  const auto want = ref_qmatmul(a, b, {32, 16});
  const auto got = fx::qmatmul_nt(a, bt, {32, 16});
  for (index_t i = 0; i < want.numel(); ++i) {
    ASSERT_EQ(got.raw()[i], want.raw()[i]) << "raw mismatch at " << i;
  }
}

TEST(Kernels, ArenaScopesReuseStorageWithoutRegrowth) {
  nt::ScratchArena arena;
  const std::size_t before = arena.capacity();
  {
    nt::ScratchArena::Scope scope(arena);
    float* p = arena.alloc<float>(1 << 16);
    p[0] = 1.0f;  // touch the storage
    {
      nt::ScratchArena::Scope inner(arena);
      float* q = arena.alloc<float>(1 << 14);
      q[0] = 2.0f;
      EXPECT_NE(p, q);
      EXPECT_EQ(p[0], 1.0f) << "outer allocation must survive nested scopes";
    }
  }
  const std::size_t grown = arena.capacity();
  EXPECT_GT(grown, before);
  EXPECT_GE(arena.high_water(), (std::size_t{1} << 16) * sizeof(float));
  // A second identical round must be served entirely from retained chunks.
  for (int round = 0; round < 3; ++round) {
    nt::ScratchArena::Scope scope(arena);
    (void)arena.alloc<float>(1 << 16);
    nt::ScratchArena::Scope inner(arena);
    (void)arena.alloc<float>(1 << 14);
  }
  EXPECT_EQ(arena.capacity(), grown) << "steady-state kernel calls must not regrow the arena";
}

TEST(Kernels, ArenaAllocationsAre64ByteAligned) {
  auto& arena = nt::ScratchArena::local();
  nt::ScratchArena::Scope scope(arena);
  for (std::size_t count : {1, 3, 17, 1000}) {
    auto* p = arena.alloc<float>(count);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u);
  }
}

TEST(Kernels, ParallelForSplitsLoopsLargerThanOneGrain) {
  // Regression for the old floor-division chunking: a loop spanning more than
  // one grain but less than two used to run serially in a single chunk.
  std::atomic<int> calls{0};
  std::atomic<nt::index_t> covered{0};
  nt::parallel_for(0, 100, [&](index_t lo, index_t hi) {
    calls.fetch_add(1);
    covered.fetch_add(hi - lo);
  }, /*grain=*/64);
  EXPECT_EQ(covered.load(), 100);
  EXPECT_EQ(calls.load(), 2) << "100 elements at grain 64 must split into ceil(100/64) chunks";
}
