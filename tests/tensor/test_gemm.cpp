#include "nodetr/tensor/gemm.hpp"

#include <gtest/gtest.h>

#include "nodetr/tensor/ops.hpp"
#include "nodetr/tensor/rng.hpp"

namespace nt = nodetr::tensor;

namespace {

// Reference triple-loop product for validation.
nt::Tensor naive_matmul(const nt::Tensor& a, const nt::Tensor& b) {
  const auto m = a.dim(0), k = a.dim(1), n = b.dim(1);
  nt::Tensor c(nt::Shape{m, n});
  for (nt::index_t i = 0; i < m; ++i)
    for (nt::index_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (nt::index_t p = 0; p < k; ++p) acc += static_cast<double>(a.at(i, p)) * b.at(p, j);
      c.at(i, j) = static_cast<float>(acc);
    }
  return c;
}

}  // namespace

TEST(Gemm, SmallKnownValues) {
  nt::Tensor a(nt::Shape{2, 2}, std::vector<float>{1, 2, 3, 4});
  nt::Tensor b(nt::Shape{2, 2}, std::vector<float>{5, 6, 7, 8});
  auto c = nt::matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 43.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 50.0f);
}

TEST(Gemm, IdentityIsNeutral) {
  nt::Rng rng(1);
  auto a = rng.randn(nt::Shape{5, 5});
  nt::Tensor eye(nt::Shape{5, 5});
  for (nt::index_t i = 0; i < 5; ++i) eye.at(i, i) = 1.0f;
  EXPECT_TRUE(nt::allclose(nt::matmul(a, eye), a, 1e-5f, 1e-6f));
  EXPECT_TRUE(nt::allclose(nt::matmul(eye, a), a, 1e-5f, 1e-6f));
}

TEST(Gemm, MatchesNaiveOnRandomRectangular) {
  nt::Rng rng(2);
  auto a = rng.randn(nt::Shape{17, 23});
  auto b = rng.randn(nt::Shape{23, 9});
  EXPECT_TRUE(nt::allclose(nt::matmul(a, b), naive_matmul(a, b), 1e-4f, 1e-4f));
}

TEST(Gemm, InnerDimMismatchThrows) {
  nt::Tensor a(nt::Shape{2, 3}), b(nt::Shape{2, 2});
  EXPECT_THROW(nt::matmul(a, b), std::invalid_argument);
}

TEST(Gemm, MatmulNTEquivalence) {
  nt::Rng rng(3);
  auto a = rng.randn(nt::Shape{6, 11});
  auto b = rng.randn(nt::Shape{7, 11});
  EXPECT_TRUE(nt::allclose(nt::matmul_nt(a, b), nt::matmul(a, b.transposed()), 1e-4f, 1e-4f));
}

TEST(Gemm, MatmulTNEquivalence) {
  nt::Rng rng(4);
  auto a = rng.randn(nt::Shape{11, 6});
  auto b = rng.randn(nt::Shape{11, 7});
  EXPECT_TRUE(nt::allclose(nt::matmul_tn(a, b), nt::matmul(a.transposed(), b), 1e-4f, 1e-4f));
}

TEST(Gemm, AccumulateAddsIntoExistingOutput) {
  nt::Tensor a(nt::Shape{1, 2}, std::vector<float>{1, 1});
  nt::Tensor b(nt::Shape{2, 1}, std::vector<float>{2, 3});
  nt::Tensor c(nt::Shape{1, 1}, 10.0f);
  nt::gemm_accumulate(a.data(), b.data(), c.data(), 1, 2, 1);
  EXPECT_FLOAT_EQ(c[0], 15.0f);
}

// Property sweep: matmul matches naive reference across sizes.
class GemmSizes : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmSizes, MatchesNaive) {
  const auto [m, k, n] = GetParam();
  nt::Rng rng(static_cast<std::uint64_t>(m * 100 + k * 10 + n));
  auto a = rng.randn(nt::Shape{m, k});
  auto b = rng.randn(nt::Shape{k, n});
  EXPECT_TRUE(nt::allclose(nt::matmul(a, b), naive_matmul(a, b), 1e-4f, 1e-4f));
}

INSTANTIATE_TEST_SUITE_P(Sweep, GemmSizes,
                         ::testing::Values(std::tuple{1, 1, 1}, std::tuple{1, 8, 1},
                                           std::tuple{3, 1, 5}, std::tuple{16, 16, 16},
                                           std::tuple{33, 7, 19}, std::tuple{64, 32, 8}));
