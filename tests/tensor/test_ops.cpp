#include "nodetr/tensor/ops.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace nt = nodetr::tensor;

TEST(Ops, MapAndZip) {
  auto a = nt::Tensor::arange(4);
  auto sq = nt::map(a, [](float v) { return v * v; });
  EXPECT_EQ(sq[3], 9.0f);
  auto s = nt::zip(a, sq, [](float x, float y) { return x + y; });
  EXPECT_EQ(s[2], 6.0f);
}

TEST(Ops, Relu) {
  nt::Tensor a(nt::Shape{4}, 0.0f);
  a[0] = -2.0f; a[1] = -0.5f; a[2] = 0.0f; a[3] = 3.0f;
  auto r = nt::relu(a);
  EXPECT_EQ(r[0], 0.0f);
  EXPECT_EQ(r[1], 0.0f);
  EXPECT_EQ(r[2], 0.0f);
  EXPECT_EQ(r[3], 3.0f);
}

TEST(Ops, Reductions) {
  auto a = nt::Tensor::arange(5);  // 0..4
  EXPECT_FLOAT_EQ(nt::sum(a), 10.0f);
  EXPECT_FLOAT_EQ(nt::mean(a), 2.0f);
  EXPECT_FLOAT_EQ(nt::max(a), 4.0f);
  EXPECT_FLOAT_EQ(nt::min(a), 0.0f);
  EXPECT_EQ(nt::argmax(a), 4);
  EXPECT_FLOAT_EQ(nt::variance(a), 2.0f);
  EXPECT_FLOAT_EQ(nt::l2_norm(a), std::sqrt(30.0f));
}

TEST(Ops, EmptyReductions) {
  nt::Tensor e(nt::Shape{0});
  EXPECT_EQ(nt::sum(e), 0.0f);
  EXPECT_EQ(nt::mean(e), 0.0f);
  EXPECT_THROW(nt::max(e), std::invalid_argument);
  EXPECT_THROW(nt::argmax(e), std::invalid_argument);
}

TEST(Ops, DiffStats) {
  auto a = nt::Tensor::arange(4);
  auto b = a;
  b[2] += 0.5f;
  b[3] -= 1.5f;
  EXPECT_FLOAT_EQ(nt::max_abs_diff(a, b), 1.5f);
  EXPECT_FLOAT_EQ(nt::mean_abs_diff(a, b), 0.5f);
}

TEST(Ops, SoftmaxRowsSumToOne) {
  auto logits = nt::Tensor::arange(6).reshape(nt::Shape{2, 3});
  auto p = nt::softmax_rows(logits);
  for (nt::index_t r = 0; r < 2; ++r) {
    float s = 0.0f;
    for (nt::index_t c = 0; c < 3; ++c) s += p.at(r, c);
    EXPECT_NEAR(s, 1.0f, 1e-5f);
  }
  // Monotone in the logits.
  EXPECT_LT(p.at(0, 0), p.at(0, 2));
}

TEST(Ops, SoftmaxNumericallyStableForLargeLogits) {
  nt::Tensor logits(nt::Shape{1, 3});
  logits[0] = 1000.0f; logits[1] = 1001.0f; logits[2] = 999.0f;
  auto p = nt::softmax_rows(logits);
  EXPECT_FALSE(std::isnan(p[0]));
  EXPECT_NEAR(p[0] + p[1] + p[2], 1.0f, 1e-5f);
  EXPECT_GT(p[1], p[0]);
}

TEST(Ops, LogSoftmaxMatchesLogOfSoftmax) {
  auto logits = nt::Tensor::arange(8).reshape(nt::Shape{2, 4});
  auto p = nt::softmax_rows(logits);
  auto lp = nt::log_softmax_rows(logits);
  for (nt::index_t i = 0; i < p.numel(); ++i) EXPECT_NEAR(lp[i], std::log(p[i]), 1e-5f);
}

TEST(Ops, Concat0) {
  auto a = nt::Tensor::arange(6).reshape(nt::Shape{2, 3});
  auto b = nt::Tensor::full(nt::Shape{1, 3}, 7.0f);
  auto c = nt::concat0({a, b});
  EXPECT_EQ(c.shape(), (nt::Shape{3, 3}));
  EXPECT_EQ(c.at(2, 1), 7.0f);
  EXPECT_THROW(nt::concat0({a, nt::Tensor(nt::Shape{1, 4})}), std::invalid_argument);
}

TEST(Ops, Allclose) {
  auto a = nt::Tensor::ones(nt::Shape{3});
  auto b = a;
  EXPECT_TRUE(nt::allclose(a, b));
  b[1] += 1e-7f;
  EXPECT_TRUE(nt::allclose(a, b));
  b[1] += 1.0f;
  EXPECT_FALSE(nt::allclose(a, b));
  EXPECT_FALSE(nt::allclose(a, nt::Tensor(nt::Shape{4})));
}
