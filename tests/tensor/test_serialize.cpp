#include "nodetr/tensor/serialize.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "nodetr/tensor/ops.hpp"
#include "nodetr/tensor/rng.hpp"

namespace nt = nodetr::tensor;

TEST(Serialize, RoundTripPreservesShapeAndData) {
  nt::Rng rng(11);
  auto t = rng.randn(nt::Shape{3, 4, 5});
  std::stringstream ss;
  nt::write_tensor(ss, t);
  auto u = nt::read_tensor(ss);
  EXPECT_EQ(u.shape(), t.shape());
  EXPECT_TRUE(nt::allclose(u, t, 0.0f, 0.0f));
}

TEST(Serialize, MultipleTensorsInOneStream) {
  nt::Rng rng(12);
  auto a = rng.randn(nt::Shape{2, 2});
  auto b = rng.randn(nt::Shape{7});
  std::stringstream ss;
  nt::write_tensor(ss, a);
  nt::write_tensor(ss, b);
  auto a2 = nt::read_tensor(ss);
  auto b2 = nt::read_tensor(ss);
  EXPECT_TRUE(nt::allclose(a2, a, 0.0f, 0.0f));
  EXPECT_TRUE(nt::allclose(b2, b, 0.0f, 0.0f));
}

TEST(Serialize, BadMagicThrows) {
  std::stringstream ss;
  ss << "not a tensor";
  EXPECT_THROW(nt::read_tensor(ss), std::runtime_error);
}

TEST(Serialize, TruncatedPayloadThrows) {
  nt::Rng rng(13);
  auto t = rng.randn(nt::Shape{10});
  std::stringstream ss;
  nt::write_tensor(ss, t);
  std::string s = ss.str();
  std::stringstream truncated(s.substr(0, s.size() - 8));
  EXPECT_THROW(nt::read_tensor(truncated), std::runtime_error);
}

TEST(Serialize, FileRoundTrip) {
  nt::Rng rng(14);
  auto t = rng.randn(nt::Shape{4, 4});
  const std::string path = ::testing::TempDir() + "/nodetr_tensor_test.bin";
  nt::save_tensor(path, t);
  auto u = nt::load_tensor(path);
  EXPECT_TRUE(nt::allclose(u, t, 0.0f, 0.0f));
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW(nt::load_tensor("/nonexistent/path/tensor.bin"), std::runtime_error);
}
