#include "nodetr/tensor/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace nt = nodetr::tensor;

TEST(ThreadPool, SerialPoolRunsAllChunks) {
  nt::ThreadPool pool(1);
  std::vector<int> hits(10, 0);
  pool.run_chunks(10, [&](std::size_t c) { hits[c]++; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, MultiThreadedPoolCoversAllChunksExactlyOnce) {
  nt::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.run_chunks(100, [&](std::size_t c) { hits[c]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  nt::ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 5; ++round) {
    pool.run_chunks(7, [&](std::size_t) { total++; });
  }
  EXPECT_EQ(total.load(), 35);
}

TEST(ThreadPool, ZeroChunksIsNoop) {
  nt::ThreadPool pool(2);
  bool ran = false;
  pool.run_chunks(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ConcurrentSubmittersEachCoverTheirChunksOnce) {
  // Serving workers submit fork-join batches to the shared pool from several
  // threads at once; batches must serialize, not interleave or race.
  nt::ThreadPool pool(4);
  constexpr int kSubmitters = 6, kRounds = 25, kChunks = 16;
  std::vector<std::atomic<int>> hits(kSubmitters);
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      for (int r = 0; r < kRounds; ++r) {
        pool.run_chunks(kChunks, [&](std::size_t) { hits[static_cast<std::size_t>(s)]++; });
      }
    });
  }
  for (auto& t : submitters) t.join();
  for (auto& h : hits) EXPECT_EQ(h.load(), kRounds * kChunks);
}

TEST(ThreadPool, NestedSubmissionFallsBackToSerial) {
  // A chunk that re-enters the same pool must not deadlock on the
  // submission lock; the nested batch runs serially on the calling thread.
  nt::ThreadPool pool(3);
  std::atomic<int> inner{0};
  pool.run_chunks(3, [&](std::size_t) {
    pool.run_chunks(4, [&](std::size_t) { inner++; });
  });
  EXPECT_EQ(inner.load(), 12);
}

TEST(ParallelFor, ConcurrentCallersComputeCorrectSums) {
  // parallel_for rides on the global pool; hammer it from several threads.
  constexpr int kCallers = 5;
  std::vector<long long> sums(kCallers, 0);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&, t] {
      for (int round = 0; round < 20; ++round) {
        std::atomic<long long> sum{0};
        nt::parallel_for(0, 4096, [&](nt::index_t lo, nt::index_t hi) {
          long long local = 0;
          for (nt::index_t i = lo; i < hi; ++i) local += i;
          sum += local;
        }, /*grain=*/64);
        sums[static_cast<std::size_t>(t)] = sum.load();
      }
    });
  }
  for (auto& c : callers) c.join();
  for (long long s : sums) EXPECT_EQ(s, 4096LL * 4095 / 2);
}

TEST(ParallelFor, CoversFullRange) {
  std::vector<std::atomic<int>> hits(1000);
  nt::parallel_for(0, 1000, [&](nt::index_t lo, nt::index_t hi) {
    for (nt::index_t i = lo; i < hi; ++i) hits[static_cast<std::size_t>(i)]++;
  }, /*grain=*/10);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  bool ran = false;
  nt::parallel_for(5, 5, [&](nt::index_t, nt::index_t) { ran = true; });
  EXPECT_FALSE(ran);
  nt::parallel_for(5, 3, [&](nt::index_t, nt::index_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelFor, RespectsOffsetBegin) {
  std::atomic<long> sum{0};
  nt::parallel_for(10, 20, [&](nt::index_t lo, nt::index_t hi) {
    long local = 0;
    for (nt::index_t i = lo; i < hi; ++i) local += i;
    sum += local;
  }, /*grain=*/2);
  EXPECT_EQ(sum.load(), 145);  // 10+...+19
}

TEST(ParallelFor, ParallelSumMatchesSerial) {
  std::vector<double> v(4096);
  std::iota(v.begin(), v.end(), 0.0);
  std::atomic<long long> psum{0};
  nt::parallel_for(0, static_cast<nt::index_t>(v.size()), [&](nt::index_t lo, nt::index_t hi) {
    long long local = 0;
    for (nt::index_t i = lo; i < hi; ++i) local += static_cast<long long>(v[static_cast<std::size_t>(i)]);
    psum += local;
  }, /*grain=*/64);
  EXPECT_EQ(psum.load(), 4096LL * 4095 / 2);
}
