#include "nodetr/tensor/tensor.hpp"

#include <gtest/gtest.h>

#include "nodetr/tensor/rng.hpp"

namespace nt = nodetr::tensor;

TEST(Tensor, ZeroInitialized) {
  nt::Tensor t(nt::Shape{2, 3});
  EXPECT_EQ(t.numel(), 6);
  for (nt::index_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FillConstructor) {
  nt::Tensor t(nt::Shape{4}, 2.5f);
  for (nt::index_t i = 0; i < 4; ++i) EXPECT_EQ(t[i], 2.5f);
}

TEST(Tensor, AdoptDataSizeMismatchThrows) {
  EXPECT_THROW(nt::Tensor(nt::Shape{2, 2}, std::vector<float>{1, 2, 3}), std::invalid_argument);
}

TEST(Tensor, Arange) {
  auto t = nt::Tensor::arange(5);
  for (nt::index_t i = 0; i < 5; ++i) EXPECT_EQ(t[i], static_cast<float>(i));
}

TEST(Tensor, MultiIndexAccessRowMajor) {
  auto t = nt::Tensor::arange(24).reshape(nt::Shape{2, 3, 4});
  EXPECT_EQ(t.at(0, 0, 0), 0.0f);
  EXPECT_EQ(t.at(0, 1, 2), 6.0f);
  EXPECT_EQ(t.at(1, 2, 3), 23.0f);
}

TEST(Tensor, ReshapePreservesData) {
  auto t = nt::Tensor::arange(6).reshape(nt::Shape{2, 3});
  EXPECT_EQ(t.at(1, 1), 4.0f);
  EXPECT_THROW(t.reshape(nt::Shape{4}), std::invalid_argument);
}

TEST(Tensor, Transposed) {
  auto t = nt::Tensor::arange(6).reshape(nt::Shape{2, 3});
  auto tt = t.transposed();
  EXPECT_EQ(tt.shape(), (nt::Shape{3, 2}));
  EXPECT_EQ(tt.at(0, 1), 3.0f);
  EXPECT_EQ(tt.at(2, 0), 2.0f);
}

TEST(Tensor, PermuteNCHWtoNHWC) {
  auto t = nt::Tensor::arange(2 * 3 * 4 * 5).reshape(nt::Shape{2, 3, 4, 5});
  auto p = t.permute({0, 2, 3, 1});
  EXPECT_EQ(p.shape(), (nt::Shape{2, 4, 5, 3}));
  for (nt::index_t n = 0; n < 2; ++n)
    for (nt::index_t c = 0; c < 3; ++c)
      for (nt::index_t h = 0; h < 4; ++h)
        for (nt::index_t w = 0; w < 5; ++w) EXPECT_EQ(p.at(n, h, w, c), t.at(n, c, h, w));
}

TEST(Tensor, PermuteInvalidAxesThrows) {
  auto t = nt::Tensor::arange(4).reshape(nt::Shape{2, 2});
  EXPECT_THROW(t.permute({0, 0}), std::invalid_argument);
  EXPECT_THROW(t.permute({0}), std::invalid_argument);
}

TEST(Tensor, Slice0) {
  auto t = nt::Tensor::arange(12).reshape(nt::Shape{4, 3});
  auto s = t.slice0(1, 3);
  EXPECT_EQ(s.shape(), (nt::Shape{2, 3}));
  EXPECT_EQ(s.at(0, 0), 3.0f);
  EXPECT_EQ(s.at(1, 2), 8.0f);
  EXPECT_THROW(t.slice0(3, 5), std::out_of_range);
}

TEST(Tensor, InPlaceArithmetic) {
  auto a = nt::Tensor::full(nt::Shape{3}, 2.0f);
  auto b = nt::Tensor::full(nt::Shape{3}, 3.0f);
  a += b;
  EXPECT_EQ(a[0], 5.0f);
  a *= b;
  EXPECT_EQ(a[1], 15.0f);
  a -= b;
  EXPECT_EQ(a[2], 12.0f);
  a *= 0.5f;
  EXPECT_EQ(a[0], 6.0f);
  a += 1.0f;
  EXPECT_EQ(a[0], 7.0f);
}

TEST(Tensor, ShapeMismatchArithmeticThrows) {
  nt::Tensor a(nt::Shape{2}), b(nt::Shape{3});
  EXPECT_THROW(a += b, std::invalid_argument);
}

TEST(Tensor, AddScaled) {
  auto a = nt::Tensor::ones(nt::Shape{2});
  auto b = nt::Tensor::full(nt::Shape{2}, 4.0f);
  a.add_scaled(b, 0.25f);
  EXPECT_EQ(a[0], 2.0f);
}

TEST(Tensor, OutOfPlaceOperators) {
  auto a = nt::Tensor::full(nt::Shape{2}, 3.0f);
  auto b = nt::Tensor::full(nt::Shape{2}, 2.0f);
  EXPECT_EQ((a + b)[0], 5.0f);
  EXPECT_EQ((a - b)[0], 1.0f);
  EXPECT_EQ((a * b)[0], 6.0f);
  EXPECT_EQ((a * 2.0f)[0], 6.0f);
  EXPECT_EQ((0.5f * a)[1], 1.5f);
}

TEST(Rng, Deterministic) {
  nt::Rng r1(42), r2(42);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r1.normal(), r2.normal());
}

TEST(Rng, RandnShapeAndMoments) {
  nt::Rng rng(7);
  auto t = rng.randn(nt::Shape{10000}, 1.0f, 2.0f);
  double mean = 0.0;
  for (nt::index_t i = 0; i < t.numel(); ++i) mean += t[i];
  mean /= static_cast<double>(t.numel());
  EXPECT_NEAR(mean, 1.0, 0.1);
}

TEST(Rng, UniformRange) {
  nt::Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const float v = rng.uniform(-1.0f, 1.0f);
    EXPECT_GE(v, -1.0f);
    EXPECT_LT(v, 1.0f);
  }
}

TEST(Rng, RandintInclusive) {
  nt::Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.randint(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= (v == 0);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}
