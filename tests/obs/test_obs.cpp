// nodetr::obs — spans, metrics, exporters.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "nodetr/obs/obs.hpp"
#include "nodetr/tensor/parallel.hpp"

namespace obs = nodetr::obs;

namespace {

// ---------------------------------------------------------------------------
// A minimal recursive-descent JSON parser, used to check that the exported
// trace and metrics dumps are well-formed by actually parsing them back.
// ---------------------------------------------------------------------------

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string, std::shared_ptr<JsonObject>,
               std::shared_ptr<JsonArray>>
      v = nullptr;

  [[nodiscard]] bool is_object() const { return std::holds_alternative<std::shared_ptr<JsonObject>>(v); }
  [[nodiscard]] bool is_array() const { return std::holds_alternative<std::shared_ptr<JsonArray>>(v); }
  [[nodiscard]] const JsonObject& obj() const { return *std::get<std::shared_ptr<JsonObject>>(v); }
  [[nodiscard]] const JsonArray& arr() const { return *std::get<std::shared_ptr<JsonArray>>(v); }
  [[nodiscard]] double num() const { return std::get<double>(v); }
  [[nodiscard]] const std::string& str() const { return std::get<std::string>(v); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != s_.size()) throw std::runtime_error("trailing garbage at " + std::to_string(pos_));
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }
  char peek() {
    skip_ws();
    if (pos_ >= s_.size()) throw std::runtime_error("unexpected end of input");
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c) {
      throw std::runtime_error(std::string("expected '") + c + "' at " + std::to_string(pos_));
    }
    ++pos_;
  }

  JsonValue value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return JsonValue{string()};
      case 't': literal("true"); return JsonValue{true};
      case 'f': literal("false"); return JsonValue{false};
      case 'n': literal("null"); return JsonValue{nullptr};
      default: return JsonValue{number()};
    }
  }

  void literal(const char* lit) {
    skip_ws();
    for (const char* p = lit; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *p) throw std::runtime_error("bad literal");
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) throw std::runtime_error("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= s_.size()) throw std::runtime_error("bad escape");
        const char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u':
            if (pos_ + 4 > s_.size()) throw std::runtime_error("bad \\u escape");
            pos_ += 4;  // decoded value not needed for validation
            out += '?';
            break;
          default: throw std::runtime_error("unknown escape");
        }
      } else {
        out += c;
      }
    }
  }

  double number() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '-' ||
            s_[pos_] == '+' || s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) throw std::runtime_error("bad number at " + std::to_string(pos_));
    return std::stod(s_.substr(start, pos_ - start));
  }

  JsonValue object() {
    expect('{');
    auto obj = std::make_shared<JsonObject>();
    if (peek() == '}') {
      ++pos_;
      return JsonValue{obj};
    }
    while (true) {
      std::string key = string();
      expect(':');
      (*obj)[std::move(key)] = value();
      const char c = peek();
      ++pos_;
      if (c == '}') return JsonValue{obj};
      if (c != ',') throw std::runtime_error("expected ',' or '}'");
    }
  }

  JsonValue array() {
    expect('[');
    auto arr = std::make_shared<JsonArray>();
    if (peek() == ']') {
      ++pos_;
      return JsonValue{arr};
    }
    while (true) {
      arr->push_back(value());
      const char c = peek();
      ++pos_;
      if (c == ']') return JsonValue{arr};
      if (c != ',') throw std::runtime_error("expected ',' or ']'");
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

/// Enables tracing for one test and restores the previous state after.
class TracingOn {
 public:
  TracingOn() : was_(obs::Tracer::instance().enabled()) {
    obs::Tracer::instance().set_enabled(true);
    obs::Tracer::instance().clear();
  }
  ~TracingOn() {
    obs::Tracer::instance().clear();
    obs::Tracer::instance().set_enabled(was_);
  }

 private:
  bool was_;
};

const obs::SpanRecord* find_span(const std::vector<obs::SpanRecord>& spans,
                                 const std::string& name) {
  for (const auto& s : spans) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Tracing
// ---------------------------------------------------------------------------

TEST(Trace, DisabledSpansAreInert) {
  obs::Tracer::instance().set_enabled(false);
  obs::Tracer::instance().clear();
  {
    NODETR_TRACE_SCOPE("should.not.appear");
    obs::ScopedSpan span("also.not");
    span.attr("k", 1);
    EXPECT_FALSE(span.active());
  }
  EXPECT_EQ(obs::Tracer::instance().span_count(), 0u);
}

TEST(Trace, NestingProducesPathsAndDepths) {
  TracingOn on;
  {
    obs::ScopedSpan outer("outer");
    {
      obs::ScopedSpan mid("mid");
      { NODETR_TRACE_SCOPE("inner"); }
    }
    { NODETR_TRACE_SCOPE("sibling"); }
  }
  const auto spans = obs::Tracer::instance().snapshot();
  ASSERT_EQ(spans.size(), 4u);

  const auto* inner = find_span(spans, "inner");
  const auto* mid = find_span(spans, "mid");
  const auto* outer = find_span(spans, "outer");
  const auto* sibling = find_span(spans, "sibling");
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(mid, nullptr);
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(sibling, nullptr);

  EXPECT_EQ(inner->path, "outer/mid/inner");
  EXPECT_EQ(mid->path, "outer/mid");
  EXPECT_EQ(sibling->path, "outer/sibling");
  EXPECT_EQ(outer->path, "outer");
  EXPECT_EQ(inner->depth, 2u);
  EXPECT_EQ(mid->depth, 1u);
  EXPECT_EQ(outer->depth, 0u);

  // Children complete before parents; parent intervals contain child intervals.
  EXPECT_LE(outer->start_ns, mid->start_ns);
  EXPECT_LE(mid->start_ns, inner->start_ns);
  EXPECT_LE(inner->end_ns, mid->end_ns);
  EXPECT_LE(mid->end_ns, outer->end_ns);
  // Completion order in the buffer is innermost-first.
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[3].name, "outer");
}

TEST(Trace, EarlyEndStopsTheClock) {
  TracingOn on;
  {
    obs::ScopedSpan span("early");
    span.end();
    EXPECT_FALSE(span.active());
    span.end();  // idempotent
  }
  EXPECT_EQ(obs::Tracer::instance().span_count(), 1u);
}

TEST(Trace, AttributesRoundTrip) {
  TracingOn on;
  {
    obs::ScopedSpan span("attrs");
    span.attr("cycles", std::int64_t{2337954});
    span.attr("loss", 0.25);
    span.attr("solver", "Euler");
  }
  const auto spans = obs::Tracer::instance().snapshot();
  ASSERT_EQ(spans.size(), 1u);
  ASSERT_EQ(spans[0].attrs.size(), 3u);
  EXPECT_EQ(std::get<std::int64_t>(spans[0].attrs[0].second), 2337954);
  EXPECT_DOUBLE_EQ(std::get<double>(spans[0].attrs[1].second), 0.25);
  EXPECT_EQ(std::get<std::string>(spans[0].attrs[2].second), "Euler");
}

TEST(Trace, ChromeTraceJsonParsesBack) {
  TracingOn on;
  {
    obs::ScopedSpan a("alpha \"quoted\"");
    a.attr("cycles", std::int64_t{42});
    a.attr("note", "line\nbreak");
    { NODETR_TRACE_SCOPE("beta"); }
  }
  const std::string json = obs::Tracer::instance().chrome_trace_json();
  JsonValue root = JsonParser(json).parse();
  ASSERT_TRUE(root.is_object());
  const auto& events = root.obj().at("traceEvents");
  ASSERT_TRUE(events.is_array());
  ASSERT_EQ(events.arr().size(), 2u);
  for (const auto& ev : events.arr()) {
    ASSERT_TRUE(ev.is_object());
    const auto& o = ev.obj();
    EXPECT_EQ(o.at("ph").str(), "X");
    EXPECT_EQ(o.at("cat").str(), "nodetr");
    EXPECT_GE(o.at("dur").num(), 0.0);
    EXPECT_TRUE(o.at("args").is_object());
  }
  // The nested event's path attribute reflects the hierarchy.
  const auto& beta = events.arr()[0].obj();
  EXPECT_EQ(beta.at("name").str(), "beta");
  EXPECT_EQ(beta.at("args").obj().at("path").str(), "alpha \"quoted\"/beta");
}

TEST(Trace, SummaryAggregatesByPath) {
  TracingOn on;
  for (int i = 0; i < 3; ++i) {
    obs::ScopedSpan outer("fit");
    { NODETR_TRACE_SCOPE("step"); }
    { NODETR_TRACE_SCOPE("step"); }
  }
  const std::string summary = obs::Tracer::instance().summary();
  EXPECT_NE(summary.find("fit"), std::string::npos);
  EXPECT_NE(summary.find("step"), std::string::npos);
  EXPECT_NE(summary.find("6"), std::string::npos);  // 6 step calls
}

TEST(Trace, SpansFromWorkerThreadsAreCaptured) {
  TracingOn on;
  nodetr::tensor::ThreadPool pool(4);
  pool.run_chunks(16, [](std::size_t) {
    NODETR_TRACE_SCOPE("chunk");
  });
  const auto spans = obs::Tracer::instance().snapshot();
  std::size_t chunk_spans = 0;
  for (const auto& s : spans) chunk_spans += (s.name == "chunk") ? 1 : 0;
  EXPECT_EQ(chunk_spans, 16u);
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST(Metrics, CounterConcurrentIncrementsFromRunChunks) {
  auto& counter = obs::Registry::instance().counter("test.concurrent");
  counter.reset();
  nodetr::tensor::ThreadPool pool(8);
  constexpr std::size_t kChunks = 64;
  constexpr int kPerChunk = 1000;
  pool.run_chunks(kChunks, [&](std::size_t) {
    for (int i = 0; i < kPerChunk; ++i) counter.add();
  });
  EXPECT_EQ(counter.value(), static_cast<std::int64_t>(kChunks) * kPerChunk);
}

TEST(Metrics, GaugeHoldsLastValue) {
  auto& gauge = obs::Registry::instance().gauge("test.gauge");
  gauge.set(0.75);
  gauge.set(0.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 0.5);
}

TEST(Metrics, RegistryReturnsStableInstances) {
  auto& a = obs::Registry::instance().counter("test.stable");
  auto& b = obs::Registry::instance().counter("test.stable");
  EXPECT_EQ(&a, &b);
}

TEST(Metrics, HistogramPercentilesOnKnownDistribution) {
  // Uniform 1..100 with unit buckets: percentiles are exact up to
  // within-bucket interpolation.
  std::vector<double> bounds;
  for (int i = 1; i <= 100; ++i) bounds.push_back(static_cast<double>(i));
  obs::Histogram h(bounds);
  for (int v = 1; v <= 100; ++v) h.observe(static_cast<double>(v));

  EXPECT_EQ(h.count(), 100);
  EXPECT_DOUBLE_EQ(h.sum(), 5050.0);
  EXPECT_NEAR(h.percentile(50.0), 50.0, 1.0);
  EXPECT_NEAR(h.percentile(95.0), 95.0, 1.0);
  EXPECT_NEAR(h.percentile(99.0), 99.0, 1.0);
  EXPECT_NEAR(h.percentile(100.0), 100.0, 1.0);
  EXPECT_LE(h.percentile(0.0), 1.0);
}

TEST(Metrics, HistogramSkewedDistribution) {
  // 90 fast observations at ~1, 10 slow at ~1000: p50 stays low, p95+ jumps.
  std::vector<double> bounds{1.0, 10.0, 100.0, 1000.0, 10000.0};
  obs::Histogram h(bounds);
  for (int i = 0; i < 90; ++i) h.observe(0.5);
  for (int i = 0; i < 10; ++i) h.observe(500.0);
  EXPECT_LE(h.percentile(50.0), 1.0);
  EXPECT_GE(h.percentile(95.0), 100.0);
  EXPECT_LE(h.percentile(95.0), 1000.0);
}

TEST(Metrics, HistogramOverflowBucket) {
  obs::Histogram h(std::vector<double>{1.0, 2.0});
  h.observe(100.0);
  h.observe(200.0);
  // Overflow bucket reports its lower edge (the last finite bound).
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 2.0);
  EXPECT_EQ(h.count(), 2);
}

TEST(Metrics, HistogramRejectsUnsortedBounds) {
  EXPECT_THROW(obs::Histogram(std::vector<double>{2.0, 1.0}), std::invalid_argument);
}

TEST(Metrics, ConcurrentHistogramObservations) {
  auto& h = obs::Registry::instance().histogram("test.hist.concurrent");
  h.reset();
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < 10000; ++i) h.observe(1.0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), 40000);
  EXPECT_DOUBLE_EQ(h.sum(), 40000.0);
}

TEST(Metrics, JsonDumpParsesBack) {
  auto& registry = obs::Registry::instance();
  registry.counter("test.json.counter").reset();
  registry.counter("test.json.counter").add(7);
  registry.gauge("test.json.gauge").set(0.125);
  auto& h = registry.histogram("test.json.hist");
  h.reset();
  h.observe(5.0);

  JsonValue root = JsonParser(registry.to_json()).parse();
  ASSERT_TRUE(root.is_object());
  EXPECT_DOUBLE_EQ(root.obj().at("counters").obj().at("test.json.counter").num(), 7.0);
  EXPECT_DOUBLE_EQ(root.obj().at("gauges").obj().at("test.json.gauge").num(), 0.125);
  const auto& hist = root.obj().at("histograms").obj().at("test.json.hist").obj();
  EXPECT_DOUBLE_EQ(hist.at("count").num(), 1.0);
  EXPECT_DOUBLE_EQ(hist.at("sum").num(), 5.0);
  EXPECT_GT(hist.at("p99").num(), 0.0);
}

TEST(Metrics, HistogramDropsNonFiniteAndNegative) {
  obs::Histogram h(std::vector<double>{1.0, 2.0});
  h.observe(1.0);
  h.observe(std::numeric_limits<double>::quiet_NaN());
  h.observe(std::numeric_limits<double>::infinity());
  h.observe(-std::numeric_limits<double>::infinity());
  h.observe(-1.0);
  EXPECT_EQ(h.count(), 1);
  EXPECT_DOUBLE_EQ(h.sum(), 1.0);
  EXPECT_EQ(h.dropped(), 4);
  h.reset();
  EXPECT_EQ(h.dropped(), 0);
}

TEST(Metrics, NonFiniteGaugeExportsAsNull) {
  auto& registry = obs::Registry::instance();
  registry.gauge("test.json.inf_gauge").set(std::numeric_limits<double>::infinity());
  // Must stay strict JSON: the parser below has no inf/nan literals.
  JsonValue root = JsonParser(registry.to_json()).parse();
  const auto& g = root.obj().at("gauges").obj().at("test.json.inf_gauge");
  EXPECT_TRUE(std::holds_alternative<std::nullptr_t>(g.v));
  registry.gauge("test.json.inf_gauge").set(0.0);
}

TEST(Metrics, OpenMetricsExposition) {
  auto& registry = obs::Registry::instance();
  registry.counter("test.om.counter").reset();
  registry.counter("test.om.counter").add(3);
  registry.gauge("test.om.gauge").set(1.5);
  auto& h = registry.histogram("test.om.hist");
  h.reset();
  h.observe(5.0);
  const std::string om = registry.to_openmetrics();
  EXPECT_NE(om.find("# TYPE nodetr_test_om_counter counter"), std::string::npos);
  EXPECT_NE(om.find("nodetr_test_om_counter_total 3"), std::string::npos);
  EXPECT_NE(om.find("# TYPE nodetr_test_om_gauge gauge"), std::string::npos);
  EXPECT_NE(om.find("nodetr_test_om_gauge 1.5"), std::string::npos);
  EXPECT_NE(om.find("# TYPE nodetr_test_om_hist summary"), std::string::npos);
  EXPECT_NE(om.find("quantile=\"0.99\""), std::string::npos);
  EXPECT_NE(om.find("nodetr_test_om_hist_count 1"), std::string::npos);
  // The exposition must end with the OpenMetrics EOF marker.
  const std::size_t eof = om.rfind("# EOF");
  ASSERT_NE(eof, std::string::npos);
  EXPECT_EQ(om.substr(eof), "# EOF\n");
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

TEST(Flight, EventsForReturnsOrderedTimeline) {
  auto& fr = obs::FlightRecorder::instance();
  fr.clear();
  fr.set_enabled(true);
  const std::uint64_t id = obs::new_trace_id();
  ASSERT_NE(id, 0u);
  obs::flight_event(id, obs::FlightKind::kSubmit, 1);
  obs::flight_event(id, obs::FlightKind::kEnqueued, 2);
  obs::flight_event(id + 1, obs::FlightKind::kSubmit);  // another request
  obs::flight_event(id, obs::FlightKind::kCompleted, 3);
  const auto tl = fr.events_for(id);
  ASSERT_EQ(tl.size(), 3u);
  EXPECT_EQ(tl[0].kind, obs::FlightKind::kSubmit);
  EXPECT_EQ(tl[1].kind, obs::FlightKind::kEnqueued);
  EXPECT_EQ(tl[2].kind, obs::FlightKind::kCompleted);
  EXPECT_EQ(tl[2].a, 3);
  EXPECT_LE(tl[0].ts_ns, tl[1].ts_ns);
  EXPECT_LE(tl[1].ts_ns, tl[2].ts_ns);
  fr.clear();
}

TEST(Flight, RingKeepsLastEventsAfterWrap) {
  auto& fr = obs::FlightRecorder::instance();
  fr.clear();
  fr.set_enabled(true);
  const std::size_t n = obs::FlightRecorder::kRingSize + 100;
  for (std::size_t i = 0; i < n; ++i) {
    obs::flight_event(1, obs::FlightKind::kMark, static_cast<std::int64_t>(i));
  }
  const auto tl = fr.events_for(1);
  EXPECT_EQ(tl.size(), obs::FlightRecorder::kRingSize);
  // The oldest surviving event is exactly n - kRingSize; the newest is n - 1.
  EXPECT_EQ(tl.front().a, static_cast<std::int64_t>(n - obs::FlightRecorder::kRingSize));
  EXPECT_EQ(tl.back().a, static_cast<std::int64_t>(n - 1));
  fr.clear();
  EXPECT_TRUE(fr.snapshot().empty());
}

TEST(Flight, DisabledRecorderRecordsNothing) {
  auto& fr = obs::FlightRecorder::instance();
  fr.clear();
  fr.set_enabled(false);
  obs::flight_event(42, obs::FlightKind::kMark);
  EXPECT_TRUE(fr.events_for(42).empty());
  fr.set_enabled(true);
}

TEST(Flight, ThreadedRecordsMergeIntoOneTimeline) {
  auto& fr = obs::FlightRecorder::instance();
  fr.clear();
  fr.set_enabled(true);
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 100; ++i) {
        obs::flight_event(static_cast<std::uint64_t>(500 + t), obs::FlightKind::kMark, i);
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 0; t < 4; ++t) {
    const auto tl = fr.events_for(static_cast<std::uint64_t>(500 + t));
    EXPECT_EQ(tl.size(), 100u);
  }
  // The merged dump table mentions every thread's trace.
  const std::string dump = fr.dump_string();
  EXPECT_NE(dump.find("500"), std::string::npos);
  EXPECT_NE(dump.find("503"), std::string::npos);
  fr.clear();
}

TEST(Flight, DumpWritesReasonAndTable) {
  auto& fr = obs::FlightRecorder::instance();
  fr.clear();
  fr.set_enabled(true);
  const std::string path = ::testing::TempDir() + "nodetr_flight_test.txt";
  std::remove(path.c_str());
  fr.set_dump_path(path);
  obs::flight_event(909, obs::FlightKind::kSubmit);
  obs::flight_event(909, obs::FlightKind::kCompleted);
  const std::uint64_t before = fr.dump_count();
  fr.dump("unit_test");
  EXPECT_EQ(fr.dump_count(), before + 1);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("unit_test"), std::string::npos);
  EXPECT_NE(text.find("909"), std::string::npos);
  std::remove(path.c_str());
  fr.set_dump_path("");
  fr.clear();
}

TEST(Flight, NewTraceIdsAreUniqueAndNonZero) {
  const std::uint64_t a = obs::new_trace_id();
  const std::uint64_t b = obs::new_trace_id();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
}

// ---------------------------------------------------------------------------
// Instrumented library paths
// ---------------------------------------------------------------------------

TEST(Instrumentation, ParallelForCountsChunks) {
  auto& registry = obs::Registry::instance();
  const std::int64_t before = registry.counter("tensor.pool.chunks").value();
  std::vector<float> data(1 << 16, 0.0f);
  nodetr::tensor::parallel_for(0, static_cast<nodetr::tensor::index_t>(data.size()),
                               [&](nodetr::tensor::index_t lo, nodetr::tensor::index_t hi) {
                                 for (auto i = lo; i < hi; ++i) data[static_cast<std::size_t>(i)] += 1.0f;
                               });
  EXPECT_GT(registry.counter("tensor.pool.chunks").value(), before);
  for (float v : data) ASSERT_EQ(v, 1.0f);
}

}  // namespace
