#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <vector>

#include "nodetr/data/synth_stl.hpp"
#include "nodetr/nn/activations.hpp"
#include "nodetr/nn/conv_layers.hpp"
#include "nodetr/nn/linear.hpp"
#include "nodetr/nn/pool.hpp"
#include "nodetr/nn/sequential.hpp"
#include "nodetr/tensor/ops.hpp"
#include "nodetr/train/checkpoint.hpp"
#include "nodetr/train/loss.hpp"
#include "nodetr/train/optimizer.hpp"
#include "nodetr/train/scheduler.hpp"
#include "nodetr/train/trainer.hpp"

namespace nn = nodetr::nn;
namespace nt = nodetr::tensor;
namespace tr = nodetr::train;
namespace d = nodetr::data;

TEST(CrossEntropy, UniformLogitsGiveLogK) {
  nt::Tensor logits(nt::Shape{2, 4});
  auto res = tr::cross_entropy(logits, {0, 3});
  EXPECT_NEAR(res.loss, std::log(4.0f), 1e-5f);
}

TEST(CrossEntropy, PerfectPredictionLowLoss) {
  nt::Tensor logits(nt::Shape{1, 3});
  logits[1] = 100.0f;
  auto res = tr::cross_entropy(logits, {1});
  EXPECT_LT(res.loss, 1e-3f);
}

TEST(CrossEntropy, GradientIsSoftmaxMinusOnehotOverB) {
  nt::Tensor logits(nt::Shape{2, 3});
  auto res = tr::cross_entropy(logits, {0, 2});
  // softmax uniform = 1/3; grad = (1/3 - onehot)/2.
  EXPECT_NEAR(res.grad_logits.at(0, 0), (1.0f / 3 - 1) / 2, 1e-5f);
  EXPECT_NEAR(res.grad_logits.at(0, 1), (1.0f / 3) / 2, 1e-5f);
  EXPECT_NEAR(res.grad_logits.at(1, 2), (1.0f / 3 - 1) / 2, 1e-5f);
  // Gradient sums to zero per row.
  float s = 0.0f;
  for (nt::index_t c = 0; c < 3; ++c) s += res.grad_logits.at(0, c);
  EXPECT_NEAR(s, 0.0f, 1e-6f);
}

TEST(CrossEntropy, RejectsBadLabels) {
  nt::Tensor logits(nt::Shape{1, 3});
  EXPECT_THROW(tr::cross_entropy(logits, {3}), std::invalid_argument);
  EXPECT_THROW(tr::cross_entropy(logits, {0, 1}), std::invalid_argument);
}

TEST(Sgd, PlainStepMovesAgainstGradient) {
  nn::Param p("w", nt::Tensor(nt::Shape{2}, 1.0f));
  p.grad.fill(0.5f);
  tr::Sgd opt({.lr = 0.1f, .momentum = 0.0f, .weight_decay = 0.0f});
  opt.step({&p});
  EXPECT_NEAR(p.value[0], 1.0f - 0.05f, 1e-6f);
}

TEST(Sgd, MomentumAccumulates) {
  nn::Param p("w", nt::Tensor(nt::Shape{1}, 0.0f));
  tr::Sgd opt({.lr = 1.0f, .momentum = 0.5f, .weight_decay = 0.0f});
  p.grad.fill(1.0f);
  opt.step({&p});  // v=1, w=-1
  p.grad.fill(1.0f);
  opt.step({&p});  // v=1.5, w=-2.5
  EXPECT_NEAR(p.value[0], -2.5f, 1e-6f);
}

TEST(Sgd, WeightDecayShrinksWeights) {
  nn::Param p("w", nt::Tensor(nt::Shape{1}, 10.0f));
  p.grad.zero();
  tr::Sgd opt({.lr = 0.1f, .momentum = 0.0f, .weight_decay = 0.1f});
  opt.step({&p});
  EXPECT_LT(p.value[0], 10.0f);
}

TEST(Sgd, MinimizesQuadratic) {
  // f(w) = 0.5 (w-3)^2; gradient descent converges to 3.
  nn::Param p("w", nt::Tensor(nt::Shape{1}, 0.0f));
  tr::Sgd opt({.lr = 0.1f, .momentum = 0.9f, .weight_decay = 0.0f});
  for (int i = 0; i < 200; ++i) {
    p.grad[0] = p.value[0] - 3.0f;
    opt.step({&p});
  }
  EXPECT_NEAR(p.value[0], 3.0f, 1e-2f);
}

TEST(Scheduler, StartsAtEtaMaxAndDecays) {
  tr::CosineWarmRestarts s({.eta_max = 0.1f, .eta_min = 1e-4f, .t0 = 10, .t_mult = 2});
  EXPECT_FLOAT_EQ(s.lr_at(0), 0.1f);
  EXPECT_GT(s.lr_at(3), s.lr_at(7));
  EXPECT_NEAR(s.lr_at(9), 1e-4f, 5e-3f);
}

TEST(Scheduler, RestartsAtT0ThenDoubledPeriods) {
  tr::CosineWarmRestarts s({.eta_max = 0.1f, .eta_min = 1e-4f, .t0 = 10, .t_mult = 2});
  // Cycles: [0,10), [10,30), [30,70), ...
  EXPECT_TRUE(s.is_restart(0));
  EXPECT_TRUE(s.is_restart(10));
  EXPECT_TRUE(s.is_restart(30));
  EXPECT_TRUE(s.is_restart(70));
  EXPECT_FALSE(s.is_restart(11));
  EXPECT_FLOAT_EQ(s.lr_at(10), 0.1f);
  EXPECT_FLOAT_EQ(s.lr_at(30), 0.1f);
}

TEST(Scheduler, NonMonotoneAcrossRestart) {
  tr::CosineWarmRestarts s(tr::CosineWarmRestartsConfig{});
  EXPECT_LT(s.lr_at(9), s.lr_at(10));  // the Figs. 6-8 sawtooth
}

TEST(Scheduler, InvalidConfigRejected) {
  EXPECT_THROW(tr::CosineWarmRestarts({.t0 = 0}), std::invalid_argument);
  EXPECT_THROW(tr::CosineWarmRestarts({.t_mult = 0}), std::invalid_argument);
}

namespace {

/// Tiny convnet classifier for smoke training.
std::unique_ptr<nn::Sequential> tiny_net(nt::Rng& rng) {
  auto net = std::make_unique<nn::Sequential>();
  net->emplace<nn::Conv2d>(3, 8, 3, 2, 1, true, rng);
  net->emplace<nn::ReLU>();
  net->emplace<nn::Conv2d>(8, 16, 3, 2, 1, true, rng);
  net->emplace<nn::ReLU>();
  net->emplace<nn::GlobalAvgPool>();
  net->emplace<nn::Linear>(16, 10, true, rng);
  return net;
}

}  // namespace

TEST(Trainer, LossDecreasesOnTinyProblem) {
  d::SynthStl ds({.image_size = 16, .train_per_class = 6, .test_per_class = 3, .seed = 20,
                  .noise_stddev = 0.05f});
  nt::Rng rng(21);
  auto net = tiny_net(rng);
  tr::TrainConfig cfg;
  cfg.epochs = 6;
  cfg.batch_size = 10;
  cfg.augment = false;
  cfg.sgd = {.lr = 0.05f, .momentum = 0.9f, .weight_decay = 1e-4f};
  cfg.schedule = {.eta_max = 0.05f, .eta_min = 1e-3f, .t0 = 10, .t_mult = 2};
  auto hist = tr::fit(*net, ds.train(), ds.test(), cfg);
  ASSERT_EQ(hist.epochs.size(), 6u);
  EXPECT_LT(hist.epochs.back().train_loss, hist.epochs.front().train_loss);
  // Better than chance (10%).
  EXPECT_GT(hist.best_accuracy(), 0.15f);
}

TEST(Trainer, HistoryCsvHasHeaderAndRows) {
  tr::History h;
  h.epochs.push_back({.epoch = 0, .train_loss = 2.0f, .test_accuracy = 0.1f, .lr = 0.1f});
  auto csv = h.to_csv();
  EXPECT_NE(csv.find("epoch,lr,train_loss,test_accuracy"), std::string::npos);
  EXPECT_NE(csv.find("\n0,"), std::string::npos);
}

TEST(Trainer, EvaluateRestoresTrainingMode) {
  d::SynthStl ds({.image_size = 16, .train_per_class = 1, .test_per_class = 1, .seed = 22});
  nt::Rng rng(23);
  auto net = tiny_net(rng);
  net->train(true);
  tr::evaluate(*net, ds.test(), 8);
  EXPECT_TRUE(net->training());
}

TEST(Checkpoint, RoundTripRestoresParameters) {
  nt::Rng rng(24);
  auto net = tiny_net(rng);
  const std::string path = ::testing::TempDir() + "/nodetr_ckpt_test.bin";
  tr::save_checkpoint(path, *net);
  // Perturb, then reload.
  for (auto* p : net->parameters()) p->value += 1.0f;
  auto x = rng.randn(nt::Shape{1, 3, 16, 16});
  net->train(false);
  auto before = net->forward(x);
  tr::load_checkpoint(path, *net);
  auto after = net->forward(x);
  EXPECT_GT(nt::max_abs_diff(before, after), 1e-4f);
  // Reload is idempotent.
  tr::load_checkpoint(path, *net);
  EXPECT_TRUE(nt::allclose(net->forward(x), after, 0.0f, 0.0f));
}

TEST(Checkpoint, MismatchedModelRejected) {
  nt::Rng rng(25);
  auto net = tiny_net(rng);
  const std::string path = ::testing::TempDir() + "/nodetr_ckpt_mismatch.bin";
  tr::save_checkpoint(path, *net);
  nn::Sequential other;
  other.emplace<nn::Linear>(4, 2, true, rng);
  EXPECT_THROW(tr::load_checkpoint(path, other), std::runtime_error);
}

TEST(QuantCheckpoint, RoundTripMatchesBlockRoundtrip) {
  // A v2 checkpoint stores the degraded weights: loading it must reproduce
  // exactly block_roundtrip(original) per parameter, not the original.
  nt::Rng rng(26);
  auto net = tiny_net(rng);
  std::vector<nt::Tensor> want;
  for (auto* p : net->parameters()) {
    want.push_back(nodetr::fx::block_roundtrip(p->value, nodetr::fx::BlockType::kInt8, 32));
  }
  const std::string path = ::testing::TempDir() + "/nodetr_ckpt_quant.bin";
  tr::save_checkpoint_quantized(
      path, *net, nodetr::fx::MixedPrecisionPolicy::uniform(nodetr::fx::LayerPrecision::kInt8));
  for (auto* p : net->parameters()) p->value += 1.0f;  // perturb
  tr::load_checkpoint(path, *net);
  const auto params = net->parameters();
  ASSERT_EQ(params.size(), want.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    EXPECT_TRUE(nt::allclose(params[i]->value, want[i], 0.0f, 0.0f)) << params[i]->name;
  }
}

TEST(QuantCheckpoint, MixedPolicyKeepsSensitiveLayersExact) {
  nt::Rng rng(27);
  auto net = tiny_net(rng);
  std::vector<nt::Tensor> originals;
  for (auto* p : net->parameters()) originals.push_back(p->value);
  // Biases stay float; everything else drops to int4 — the Table-8-style
  // "sensitive layers keep precision" split.
  nodetr::fx::MixedPrecisionPolicy policy;
  policy.fallback = nodetr::fx::LayerPrecision::kInt4;
  policy.rules = {{"bias", nodetr::fx::LayerPrecision::kFloat32}};
  const std::string path = ::testing::TempDir() + "/nodetr_ckpt_mixed.bin";
  tr::save_checkpoint_quantized(path, *net, policy);
  for (auto* p : net->parameters()) p->value += 1.0f;
  tr::load_checkpoint(path, *net);
  const auto params = net->parameters();
  bool saw_float = false, saw_quant = false;
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (params[i]->name.find("bias") != std::string::npos) {
      EXPECT_TRUE(nt::allclose(params[i]->value, originals[i], 0.0f, 0.0f)) << params[i]->name;
      saw_float = true;
    } else if (params[i]->value.numel() > 64) {
      // Large weight tensors essentially never survive int4 bit-exactly.
      EXPECT_GT(nt::max_abs_diff(params[i]->value, originals[i]), 0.0f) << params[i]->name;
      saw_quant = true;
    }
  }
  EXPECT_TRUE(saw_float);
  EXPECT_TRUE(saw_quant);
}

TEST(QuantCheckpoint, QuantizedFileIsSmaller) {
  nt::Rng rng(28);
  auto net = tiny_net(rng);
  const std::string fpath = ::testing::TempDir() + "/nodetr_ckpt_f.bin";
  const std::string qpath = ::testing::TempDir() + "/nodetr_ckpt_q.bin";
  tr::save_checkpoint(fpath, *net);
  tr::save_checkpoint_quantized(
      qpath, *net, nodetr::fx::MixedPrecisionPolicy::uniform(nodetr::fx::LayerPrecision::kInt8));
  EXPECT_LT(std::filesystem::file_size(qpath), std::filesystem::file_size(fpath));
}

TEST(QuantCheckpoint, CorruptedBlockRecordRejectedAtomically) {
  nt::Rng rng(29);
  auto net = tiny_net(rng);
  const std::string path = ::testing::TempDir() + "/nodetr_ckpt_corrupt.bin";
  tr::save_checkpoint_quantized(
      path, *net, nodetr::fx::MixedPrecisionPolicy::uniform(nodetr::fx::LayerPrecision::kInt8));
  // Flip one byte inside the first quantized record's code payload (offset
  // 120 lands mid-codes for the first conv weight): the block checksum must
  // reject the file, and the model must stay untouched.
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    char b = 0;
    f.seekg(120, std::ios::beg);
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x20);
    f.seekp(120, std::ios::beg);
    f.write(&b, 1);
  }
  std::vector<nt::Tensor> before;
  for (auto* p : net->parameters()) before.push_back(p->value);
  EXPECT_THROW(tr::load_checkpoint(path, *net), tr::CheckpointError);
  const auto params = net->parameters();
  for (std::size_t i = 0; i < params.size(); ++i) {
    EXPECT_TRUE(nt::allclose(params[i]->value, before[i], 0.0f, 0.0f));
  }
}

TEST(QuantCheckpoint, TruncatedFileRejected) {
  nt::Rng rng(30);
  auto net = tiny_net(rng);
  const std::string path = ::testing::TempDir() + "/nodetr_ckpt_trunc.bin";
  tr::save_checkpoint_quantized(
      path, *net, nodetr::fx::MixedPrecisionPolicy::uniform(nodetr::fx::LayerPrecision::kInt4));
  std::filesystem::resize_file(path, std::filesystem::file_size(path) / 2);
  EXPECT_THROW(tr::load_checkpoint(path, *net), tr::CheckpointError);
}
