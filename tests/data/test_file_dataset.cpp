#include "nodetr/data/file_dataset.hpp"

#include <gtest/gtest.h>

#include <fstream>

#include "nodetr/tensor/ops.hpp"

namespace d = nodetr::data;
namespace nt = nodetr::tensor;

namespace {
std::pair<std::string, std::string> temp_paths(const char* tag) {
  const std::string base = ::testing::TempDir() + "/nodetr_ds_" + tag;
  return {base + "_x.bin", base + "_y.bin"};
}
}  // namespace

TEST(FileDataset, SaveLoadRoundTrip) {
  d::SynthStl ds({.image_size = 16, .train_per_class = 2, .test_per_class = 1, .seed = 1});
  auto [xp, yp] = temp_paths("roundtrip");
  d::save_dataset(xp, yp, ds.train());
  auto loaded = d::load_dataset(xp, yp, 16, d::PixelOrder::kRowMajor);
  ASSERT_EQ(loaded.size(), ds.train().size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded[i].label, ds.train()[i].label);
    // 8-bit quantization: error bounded by 1/255 (half LSB + rounding).
    EXPECT_LE(nt::max_abs_diff(loaded[i].image, ds.train()[i].image), 1.0f / 255.0f);
  }
}

TEST(FileDataset, Stl10ColumnMajorOrder) {
  // Construct a 2-pixel-meaningful image, save it column-major by hand,
  // and verify the loader transposes it back.
  const nt::index_t s = 4;
  auto [xp, yp] = temp_paths("stl10");
  std::ofstream xs(xp, std::ios::binary), ys(yp, std::ios::binary);
  std::vector<std::uint8_t> img(3 * s * s, 0);
  // Channel 0, row 1, col 2 = 255 stored at column-major index x*S + y.
  img[0 * s * s + 2 * s + 1] = 255;
  xs.write(reinterpret_cast<const char*>(img.data()), static_cast<std::streamsize>(img.size()));
  const std::uint8_t one_based_label = 3;  // class 2
  ys.write(reinterpret_cast<const char*>(&one_based_label), 1);
  xs.close();
  ys.close();
  auto loaded = d::load_dataset(xp, yp, s, d::PixelOrder::kStl10Binary,
                                /*labels_are_one_based=*/true);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].label, 2);
  EXPECT_FLOAT_EQ(loaded[0].image.at(0, 1, 2), 1.0f);
  EXPECT_FLOAT_EQ(loaded[0].image.at(0, 2, 1), 0.0f);
}

TEST(FileDataset, MaxSamplesLimits) {
  d::SynthStl ds({.image_size = 16, .train_per_class = 2, .test_per_class = 1, .seed = 2});
  auto [xp, yp] = temp_paths("limit");
  d::save_dataset(xp, yp, ds.train());
  auto loaded = d::load_dataset(xp, yp, 16, d::PixelOrder::kRowMajor, false, 5);
  EXPECT_EQ(loaded.size(), 5u);
}

TEST(FileDataset, ErrorsOnMissingOrTruncatedFiles) {
  EXPECT_THROW(d::load_dataset("/nonexistent_x", "/nonexistent_y", 16,
                               d::PixelOrder::kRowMajor),
               std::runtime_error);
  // Labels shorter than images.
  d::SynthStl ds({.image_size = 16, .train_per_class = 1, .test_per_class = 1, .seed = 3});
  auto [xp, yp] = temp_paths("trunc");
  d::save_dataset(xp, yp, ds.train());
  std::ofstream(yp, std::ios::binary) << "";  // truncate labels
  EXPECT_THROW(d::load_dataset(xp, yp, 16, d::PixelOrder::kRowMajor), std::runtime_error);
}

TEST(FileDataset, RejectsBadLabels) {
  auto [xp, yp] = temp_paths("badlabel");
  std::ofstream xs(xp, std::ios::binary), ys(yp, std::ios::binary);
  std::vector<std::uint8_t> img(3 * 16 * 16, 10);
  xs.write(reinterpret_cast<const char*>(img.data()), static_cast<std::streamsize>(img.size()));
  const std::uint8_t bad = 200;
  ys.write(reinterpret_cast<const char*>(&bad), 1);
  xs.close();
  ys.close();
  EXPECT_THROW(d::load_dataset(xp, yp, 16, d::PixelOrder::kRowMajor), std::runtime_error);
}
