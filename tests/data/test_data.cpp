#include <gtest/gtest.h>

#include <set>

#include "nodetr/data/augment.hpp"
#include "nodetr/data/loader.hpp"
#include "nodetr/data/synth_stl.hpp"
#include "nodetr/tensor/ops.hpp"

namespace d = nodetr::data;
namespace nt = nodetr::tensor;

TEST(SynthStl, SplitSizesAndShapes) {
  d::SynthStl ds({.image_size = 16, .train_per_class = 4, .test_per_class = 2, .seed = 1});
  EXPECT_EQ(ds.train().size(), 40u);
  EXPECT_EQ(ds.test().size(), 20u);
  EXPECT_EQ(ds.train()[0].image.shape(), (nt::Shape{3, 16, 16}));
}

TEST(SynthStl, AllClassesPresent) {
  d::SynthStl ds({.image_size = 16, .train_per_class = 2, .test_per_class = 1, .seed = 2});
  std::set<nt::index_t> labels;
  for (const auto& s : ds.train()) labels.insert(s.label);
  EXPECT_EQ(labels.size(), 10u);
}

TEST(SynthStl, DeterministicFromSeed) {
  d::SynthStlConfig cfg{.image_size = 16, .train_per_class = 2, .test_per_class = 1, .seed = 3};
  d::SynthStl a(cfg), b(cfg);
  EXPECT_TRUE(nt::allclose(a.train()[5].image, b.train()[5].image, 0.0f, 0.0f));
}

TEST(SynthStl, DifferentSeedsDiffer) {
  d::SynthStlConfig cfg{.image_size = 16, .train_per_class = 2, .test_per_class = 1, .seed = 4};
  d::SynthStl a(cfg);
  cfg.seed = 5;
  d::SynthStl b(cfg);
  EXPECT_GT(nt::max_abs_diff(a.train()[0].image, b.train()[0].image), 1e-3f);
}

TEST(SynthStl, PixelsInUnitRange) {
  d::SynthStl ds({.image_size = 24, .train_per_class = 2, .test_per_class = 1, .seed = 6});
  for (const auto& s : ds.train()) {
    EXPECT_GE(nt::min(s.image), 0.0f);
    EXPECT_LE(nt::max(s.image), 1.0f);
  }
}

TEST(SynthStl, ClassNames) {
  EXPECT_STREQ(d::SynthStl::class_name(0), "h-stripes");
  EXPECT_STREQ(d::SynthStl::class_name(9), "corner-pair");
  EXPECT_STREQ(d::SynthStl::class_name(10), "unknown");
}

TEST(SynthStl, TooSmallImageRejected) {
  EXPECT_THROW(d::SynthStl({.image_size = 4}), std::invalid_argument);
}

TEST(Augment, FlipIsExactMirror) {
  nt::Rng rng(1);
  d::SynthStl ds({.image_size = 12, .train_per_class = 1, .test_per_class = 1, .seed = 7});
  const auto& img = ds.train()[0].image;
  auto flipped = d::random_horizontal_flip(img, rng, 1.0f);
  for (nt::index_t c = 0; c < 3; ++c)
    for (nt::index_t y = 0; y < 12; ++y)
      for (nt::index_t x = 0; x < 12; ++x) {
        EXPECT_EQ(flipped.at(c, y, x), img.at(c, y, 11 - x));
      }
  // Double flip restores the original.
  auto twice = d::random_horizontal_flip(flipped, rng, 1.0f);
  EXPECT_TRUE(nt::allclose(twice, img, 0.0f, 0.0f));
}

TEST(Augment, FlipProbabilityZeroIsIdentity) {
  nt::Rng rng(2);
  nt::Tensor img = rng.rand(nt::Shape{3, 8, 8});
  EXPECT_TRUE(nt::allclose(d::random_horizontal_flip(img, rng, 0.0f), img, 0.0f, 0.0f));
}

TEST(Augment, ColorJitterStaysInRangeAndPerturbs) {
  nt::Rng rng(3);
  nt::Tensor img = rng.rand(nt::Shape{3, 8, 8}, 0.2f, 0.8f);
  auto out = d::color_jitter(img, rng);
  EXPECT_GE(nt::min(out), 0.0f);
  EXPECT_LE(nt::max(out), 1.0f);
  EXPECT_GT(nt::max_abs_diff(out, img), 1e-4f);
}

TEST(Augment, RandomErasingChangesBoundedRegion) {
  nt::Rng rng(4);
  nt::Tensor img(nt::Shape{3, 16, 16}, 0.5f);
  auto out = d::random_erasing(img, rng, {.p = 1.0f});
  nt::index_t changed = 0;
  for (nt::index_t i = 0; i < img.numel(); ++i) changed += (out[i] != img[i]);
  EXPECT_GT(changed, 0);
  // Erased area is at most area_max (plus rounding).
  EXPECT_LT(changed, img.numel() / 3);
}

TEST(Augment, RandomErasingZeroProbabilityIsIdentity) {
  nt::Rng rng(5);
  nt::Tensor img = rng.rand(nt::Shape{3, 8, 8});
  EXPECT_TRUE(nt::allclose(d::random_erasing(img, rng, {.p = 0.0f}), img, 0.0f, 0.0f));
}

TEST(Augment, PipelineRejectsNonImages) {
  nt::Rng rng(6);
  EXPECT_THROW(d::augment_train(nt::Tensor(nt::Shape{1, 8, 8}), rng), std::invalid_argument);
}

TEST(Loader, CoversEverySampleOncePerEpoch) {
  d::SynthStl ds({.image_size = 12, .train_per_class = 3, .test_per_class = 1, .seed = 8});
  d::BatchLoader loader(ds.train(), 7, /*seed=*/9);
  EXPECT_EQ(loader.batches_per_epoch(), (30 + 6) / 7);
  d::Batch batch;
  nt::index_t total = 0;
  std::vector<nt::index_t> class_counts(10, 0);
  while (loader.next(batch)) {
    total += batch.images.dim(0);
    EXPECT_EQ(batch.images.dim(0), static_cast<nt::index_t>(batch.labels.size()));
    for (auto l : batch.labels) class_counts[static_cast<std::size_t>(l)]++;
  }
  EXPECT_EQ(total, 30);
  for (auto c : class_counts) EXPECT_EQ(c, 3);
}

TEST(Loader, ResetReshuffles) {
  d::SynthStl ds({.image_size = 12, .train_per_class = 4, .test_per_class = 1, .seed = 10});
  d::BatchLoader loader(ds.train(), 40, /*seed=*/11);
  d::Batch b1, b2;
  loader.next(b1);
  loader.reset();
  loader.next(b2);
  bool same_order = true;
  for (std::size_t i = 0; i < b1.labels.size(); ++i) same_order &= (b1.labels[i] == b2.labels[i]);
  EXPECT_FALSE(same_order);
}

TEST(Loader, AugmentHookApplied) {
  d::SynthStl ds({.image_size = 12, .train_per_class = 1, .test_per_class = 1, .seed = 12});
  auto blackout = [](const nt::Tensor& img, nt::Rng&) { return nt::Tensor(img.shape()); };
  d::BatchLoader loader(ds.train(), 5, 13, blackout);
  d::Batch batch;
  loader.next(batch);
  EXPECT_EQ(nt::max(nt::abs(batch.images)), 0.0f);
}

TEST(Loader, StackRangeChecks) {
  d::SynthStl ds({.image_size = 12, .train_per_class = 1, .test_per_class = 1, .seed = 14});
  EXPECT_THROW(d::stack(ds.train(), 5, 4), std::out_of_range);
  auto b = d::stack(ds.train(), 0, 3);
  EXPECT_EQ(b.images.dim(0), 3);
}
