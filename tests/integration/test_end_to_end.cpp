// Cross-module integration tests: the full pipeline a downstream user runs —
// data -> train -> checkpoint -> offloaded/quantized inference.
#include <gtest/gtest.h>

#include "nodetr/core/lightweight_transformer.hpp"
#include "nodetr/hls/quantize.hpp"
#include "nodetr/tensor/ops.hpp"
#include "nodetr/train/trainer.hpp"

namespace core = nodetr::core;
namespace d = nodetr::data;
namespace fx = nodetr::fx;
namespace hls = nodetr::hls;
namespace nt = nodetr::tensor;
namespace tr = nodetr::train;

namespace {

core::Options tiny_options() {
  core::Options o;
  o.image_size = 32;
  o.solver_steps = 2;
  o.stem_channels = 16;
  o.mhsa_bottleneck = 16;
  o.mhsa_heads = 2;
  return o;
}

const d::SynthStl& dataset() {
  static d::SynthStl ds({.image_size = 32, .train_per_class = 6, .test_per_class = 3,
                         .seed = 0x17e9, .noise_stddev = 0.05f});
  return ds;
}

}  // namespace

TEST(EndToEnd, TrainCheckpointReloadPredictConsistently) {
  core::LightweightTransformer model(tiny_options());
  tr::TrainConfig cfg;
  cfg.epochs = 2;
  cfg.batch_size = 12;
  cfg.augment = true;  // exercise the augmentation path
  cfg.sgd = {.lr = 0.01f, .momentum = 0.9f, .weight_decay = 1e-4f};
  cfg.schedule = {.eta_max = 0.01f, .eta_min = 1e-3f, .t0 = 10, .t_mult = 2};
  auto hist = model.fit(dataset().train(), dataset().test(), cfg);
  ASSERT_EQ(hist.epochs.size(), 2u);

  const std::string path = ::testing::TempDir() + "/e2e_ckpt.bin";
  model.save(path);
  core::LightweightTransformer reloaded(tiny_options());
  reloaded.load(path);
  auto batch = d::stack(dataset().test(), 0, 6);
  EXPECT_TRUE(nt::allclose(reloaded.predict_logits(batch.images),
                           model.predict_logits(batch.images), 1e-5f, 1e-6f));
}

TEST(EndToEnd, TrainedModelSurvivesOffloadAndQuantization) {
  core::LightweightTransformer model(tiny_options());
  tr::TrainConfig cfg;
  cfg.epochs = 1;
  cfg.batch_size = 12;
  cfg.augment = false;
  cfg.sgd = {.lr = 0.01f, .momentum = 0.9f, .weight_decay = 1e-4f};
  cfg.schedule = {.eta_max = 0.01f, .eta_min = 1e-3f, .t0 = 10, .t_mult = 2};
  (void)model.fit(dataset().train(), dataset().test(), cfg);
  model.model().train(false);

  auto batch = d::stack(dataset().test(), 0, 8);
  const auto sw = model.predict_logits(batch.images);

  // Float IP offload: numerically identical up to fp reassociation.
  {
    auto session = model.offload(hls::DataType::kFloat32);
    EXPECT_TRUE(nt::allclose(session->forward(batch.images), sw, 1e-3f, 1e-4f));
  }
  // Full fixed-point emulation at the default scheme: small, bounded error.
  {
    hls::ScopedParamQuantization qp(model.model(), fx::scheme_32_24().param);
    hls::set_activation_quantization(model.model(), fx::scheme_32_24().feature);
    auto session = model.offload(hls::DataType::kFixed, fx::scheme_32_24());
    auto q = session->forward(batch.images);
    hls::clear_activation_quantization(model.model());
    EXPECT_LT(nt::max_abs_diff(q, sw), 0.05f);
  }
  // Everything restored: software path reproduces the original logits.
  EXPECT_TRUE(nt::allclose(model.predict_logits(batch.images), sw, 0.0f, 0.0f));
}

TEST(EndToEnd, QuantizationErrorMonotoneInLogits) {
  core::LightweightTransformer model(tiny_options());
  model.model().train(false);
  auto batch = d::stack(dataset().test(), 0, 8);
  const auto ref = model.predict_logits(batch.images);
  float prev = -1.0f;
  for (const auto& scheme : fx::table8_schemes()) {
    hls::ScopedParamQuantization qp(model.model(), scheme.param);
    hls::set_activation_quantization(model.model(), scheme.feature);
    auto session = model.offload(hls::DataType::kFixed, scheme);
    const float err = nt::mean_abs_diff(session->forward(batch.images), ref);
    hls::clear_activation_quantization(model.model());
    EXPECT_GE(err, prev * 0.5f) << scheme.to_string();
    prev = std::max(prev, err);
  }
  EXPECT_GT(prev, 1e-3f);
}

TEST(EndToEnd, SolverRetuningAfterTrainingKeepsPredictionsSane) {
  core::LightweightTransformer model(tiny_options());
  tr::TrainConfig cfg;
  cfg.epochs = 1;
  cfg.batch_size = 12;
  cfg.augment = false;
  cfg.sgd = {.lr = 0.01f, .momentum = 0.9f, .weight_decay = 1e-4f};
  cfg.schedule = {.eta_max = 0.01f, .eta_min = 1e-3f, .t0 = 10, .t_mult = 2};
  (void)model.fit(dataset().train(), dataset().test(), cfg);
  model.model().train(false);
  auto batch = d::stack(dataset().test(), 0, 8);
  const auto euler = model.predict_logits(batch.images);
  for (auto* b : model.model().ode_blocks()) {
    b->set_solver(nodetr::ode::SolverKind::kRk4);
    b->set_steps(8);
  }
  const auto rk4 = model.predict_logits(batch.images);
  // Same learned flow, finer integration: outputs close but not identical.
  EXPECT_LT(nt::mean_abs_diff(rk4, euler), 1.0f);
  EXPECT_GT(nt::max_abs_diff(rk4, euler), 0.0f);
}
