#include "nodetr/core/lightweight_transformer.hpp"

#include <gtest/gtest.h>

#include "nodetr/tensor/ops.hpp"

namespace core = nodetr::core;
namespace nt = nodetr::tensor;
namespace d = nodetr::data;
namespace hls = nodetr::hls;

namespace {

core::Options tiny_options() {
  core::Options o;
  o.image_size = 32;
  o.classes = 10;
  o.solver_steps = 2;
  o.stem_channels = 16;
  o.mhsa_bottleneck = 16;
  o.mhsa_heads = 2;
  return o;
}

}  // namespace

TEST(Core, PaperScaleConstructionMatchesDesignPoint) {
  core::LightweightTransformer model;  // default: 96px, 64..256 channels
  // (64, 6, 6) — the proposed model's synthesized geometry.
  auto point = model.design_point(hls::DataType::kFixed);
  EXPECT_EQ(point.dim, 64);
  EXPECT_EQ(point.height, 6);
  EXPECT_EQ(point.heads, 4);
  // Table IV vicinity.
  EXPECT_NEAR(static_cast<double>(model.num_parameters()), 513275.0, 0.015 * 513275.0);
}

TEST(Core, PredictShapesAndDeterminism) {
  auto opts = tiny_options();
  core::LightweightTransformer model(opts);
  nt::Rng rng(1);
  auto batch = rng.rand(nt::Shape{2, 3, 32, 32});
  auto logits = model.predict_logits(batch);
  EXPECT_EQ(logits.shape(), (nt::Shape{2, 10}));
  EXPECT_TRUE(nt::allclose(model.predict_logits(batch), logits, 0.0f, 0.0f));
  auto img = rng.rand(nt::Shape{3, 32, 32});
  const auto cls = model.predict(img);
  EXPECT_GE(cls, 0);
  EXPECT_LT(cls, 10);
}

TEST(Core, TrainingImprovesOverChance) {
  d::SynthStl ds({.image_size = 32, .train_per_class = 6, .test_per_class = 3, .seed = 2,
                  .noise_stddev = 0.05f});
  core::LightweightTransformer model(tiny_options());
  nodetr::train::TrainConfig cfg;
  cfg.epochs = 4;
  cfg.batch_size = 10;
  cfg.augment = false;
  cfg.sgd = {.lr = 0.02f, .momentum = 0.9f, .weight_decay = 1e-4f};
  cfg.schedule = {.eta_max = 0.02f, .eta_min = 1e-3f, .t0 = 10, .t_mult = 2};
  auto hist = model.fit(ds.train(), ds.test(), cfg);
  EXPECT_EQ(hist.epochs.size(), 4u);
  EXPECT_LT(hist.epochs.back().train_loss, hist.epochs.front().train_loss);
}

TEST(Core, SaveLoadRoundTrip) {
  core::LightweightTransformer a(tiny_options());
  const std::string path = ::testing::TempDir() + "/nodetr_core_ckpt.bin";
  a.save(path);
  core::LightweightTransformer b(tiny_options());
  b.load(path);
  nt::Rng rng(3);
  auto batch = rng.rand(nt::Shape{1, 3, 32, 32});
  EXPECT_TRUE(nt::allclose(a.predict_logits(batch), b.predict_logits(batch), 1e-5f, 1e-6f));
}

TEST(Core, OffloadAgreesWithSoftware) {
  core::LightweightTransformer model(tiny_options());
  nt::Rng rng(4);
  auto batch = rng.rand(nt::Shape{1, 3, 32, 32});
  auto sw = model.predict_logits(batch);
  auto session = model.offload(hls::DataType::kFloat32);
  model.model().train(false);
  auto hw = session->forward(batch);
  EXPECT_TRUE(nt::allclose(hw, sw, 1e-3f, 1e-4f));
}

TEST(Core, ResourceAndPowerEstimates) {
  core::LightweightTransformer model;  // paper scale => calibrated (64,6,6) point
  auto fixed = model.estimate_resources(hls::DataType::kFixed);
  EXPECT_EQ(fixed.bram18, 433);  // Table VII proposed fixed
  auto flt = model.estimate_resources(hls::DataType::kFloat32);
  EXPECT_EQ(flt.dsp, 868);       // Table VII proposed float
  EXPECT_LT(model.estimate_ip_watts(hls::DataType::kFixed),
            model.estimate_ip_watts(hls::DataType::kFloat32));
}

TEST(Core, PredictRejectsBadRank) {
  core::LightweightTransformer model(tiny_options());
  EXPECT_THROW((void)model.predict(nt::Tensor(nt::Shape{1, 3, 32, 32})), std::invalid_argument);
}
