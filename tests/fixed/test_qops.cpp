#include "nodetr/fx/qops.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "nodetr/tensor/gemm.hpp"
#include "nodetr/tensor/ops.hpp"
#include "nodetr/tensor/rng.hpp"

namespace fx = nodetr::fx;
namespace nt = nodetr::tensor;

namespace {
const fx::FixedFormat kF32{32, 16};
const fx::FixedFormat kP24{24, 8};
}  // namespace

TEST(FixedTensor, FromFloatToFloatRoundTrip) {
  nt::Rng rng(1);
  auto t = rng.randn(nt::Shape{4, 4});
  auto q = fx::FixedTensor::from_float(t, kF32);
  EXPECT_EQ(q.shape(), t.shape());
  // Error bounded by half an LSB of 2^-16.
  EXPECT_LE(nt::max_abs_diff(q.to_float(), t), 0.5f / 65536.0f + 1e-9f);
}

TEST(FixedTensor, StorageBits) {
  fx::FixedTensor q(nt::Shape{10, 10}, kP24);
  EXPECT_EQ(q.storage_bits(), 100 * 24);
}

TEST(FixedTensor, ConvertedChangesFormat) {
  nt::Rng rng(2);
  auto t = rng.randn(nt::Shape{8});
  auto q = fx::FixedTensor::from_float(t, kF32);
  auto n = q.converted(fx::FixedFormat{16, 8});
  EXPECT_EQ(n.format().total_bits, 16);
  // 16(8): resolution 1/256; error bound one LSB (two roundings).
  EXPECT_LE(nt::max_abs_diff(n.to_float(), t), 1.0f / 256.0f);
}

TEST(QMatmul, MatchesFloatReferenceWithinQuantError) {
  nt::Rng rng(3);
  auto a = rng.randn(nt::Shape{6, 10});
  auto b = rng.randn(nt::Shape{10, 5});
  auto qa = fx::FixedTensor::from_float(a, kF32);
  auto qb = fx::FixedTensor::from_float(b, kP24);
  auto qc = fx::qmatmul(qa, qb, kF32);
  auto c = nt::matmul(a, b);
  // With 16 fractional bits on both sides the product error is tiny.
  EXPECT_LE(nt::max_abs_diff(qc.to_float(), c), 1e-2f);
}

TEST(QMatmul, ExactForIntegerValues) {
  // Integer-valued inputs are exactly representable: fixed == float.
  nt::Tensor a(nt::Shape{2, 2}, std::vector<float>{1, 2, 3, 4});
  nt::Tensor b(nt::Shape{2, 2}, std::vector<float>{5, 6, 7, 8});
  auto qc = fx::qmatmul(fx::FixedTensor::from_float(a, kF32),
                        fx::FixedTensor::from_float(b, kP24), kF32);
  auto c = qc.to_float();
  EXPECT_FLOAT_EQ(c.at(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 50.0f);
}

TEST(QMatmul, SaturatesOnOverflow) {
  // 8(4) output: max ~7.94. 3*3=9 saturates.
  fx::FixedFormat small{8, 4};
  nt::Tensor a(nt::Shape{1, 1}, 3.0f);
  nt::Tensor b(nt::Shape{1, 1}, 3.0f);
  auto qc = fx::qmatmul(fx::FixedTensor::from_float(a, small),
                        fx::FixedTensor::from_float(b, small), small);
  EXPECT_EQ(qc[0], small.raw_max());
}

TEST(QMatmulNT, MatchesQMatmulOnTransposedOperand) {
  nt::Rng rng(4);
  auto a = rng.randn(nt::Shape{5, 7});
  auto b = rng.randn(nt::Shape{6, 7});
  auto qa = fx::FixedTensor::from_float(a, kF32);
  auto qb = fx::FixedTensor::from_float(b, kF32);
  auto qbt = fx::FixedTensor::from_float(b.transposed(), kF32);
  auto c1 = fx::qmatmul_nt(qa, qb, kF32);
  auto c2 = fx::qmatmul(qa, qbt, kF32);
  for (nt::index_t i = 0; i < c1.numel(); ++i) EXPECT_EQ(c1[i], c2[i]);
}

TEST(QAdd, ExactAndSaturating) {
  fx::FixedFormat small{8, 4};
  nt::Tensor a(nt::Shape{2}, std::vector<float>{1.0f, 6.0f});
  nt::Tensor b(nt::Shape{2}, std::vector<float>{2.5f, 6.0f});
  auto c = fx::qadd(fx::FixedTensor::from_float(a, small), fx::FixedTensor::from_float(b, small));
  EXPECT_FLOAT_EQ(c.to_float()[0], 3.5f);
  EXPECT_EQ(c[1], small.raw_max());  // 12 > 7.94 saturates
}

TEST(QAdd, FormatMismatchThrows) {
  fx::FixedTensor a(nt::Shape{2}, kF32), b(nt::Shape{2}, kP24);
  EXPECT_THROW(fx::qadd(a, b), std::invalid_argument);
}

TEST(QRelu, ClampsNegatives) {
  nt::Tensor a(nt::Shape{3}, std::vector<float>{-1.5f, 0.0f, 2.25f});
  auto r = fx::qrelu(fx::FixedTensor::from_float(a, kF32));
  auto f = r.to_float();
  EXPECT_FLOAT_EQ(f[0], 0.0f);
  EXPECT_FLOAT_EQ(f[1], 0.0f);
  EXPECT_FLOAT_EQ(f[2], 2.25f);
}

TEST(QScale, ApproximatesFloatScaling) {
  nt::Rng rng(5);
  auto a = rng.randn(nt::Shape{16});
  const float s = 1.0f / std::sqrt(8.0f);
  auto qs = fx::qscale(fx::FixedTensor::from_float(a, kF32), s);
  EXPECT_LE(nt::max_abs_diff(qs.to_float(), a * s), 1e-3f);
}

TEST(QLayerNorm, NormalizesRows) {
  nt::Rng rng(6);
  auto x = rng.randn(nt::Shape{4, 32}, 3.0f, 2.0f);
  auto gamma = nt::Tensor::ones(nt::Shape{32});
  auto beta = nt::Tensor::zeros(nt::Shape{32});
  auto qy = fx::qlayernorm_rows(fx::FixedTensor::from_float(x, kF32),
                                fx::FixedTensor::from_float(gamma, kP24),
                                fx::FixedTensor::from_float(beta, kP24));
  auto y = qy.to_float();
  for (nt::index_t r = 0; r < 4; ++r) {
    auto row = y.slice0(r, r + 1);
    EXPECT_NEAR(nt::mean(row), 0.0f, 1e-2f);
    EXPECT_NEAR(nt::variance(row), 1.0f, 5e-2f);
  }
}

TEST(QLinear, MatchesFloatLinear) {
  nt::Rng rng(7);
  auto x = rng.randn(nt::Shape{3, 8});
  auto w = rng.randn(nt::Shape{4, 8});  // out x in
  auto b = rng.randn(nt::Shape{4});
  auto qy = fx::qlinear(fx::FixedTensor::from_float(x, kF32), fx::FixedTensor::from_float(w, kP24),
                        fx::FixedTensor::from_float(b, kP24), kF32);
  auto y = nt::matmul_nt(x, w);
  for (nt::index_t r = 0; r < 3; ++r)
    for (nt::index_t c = 0; c < 4; ++c) y.at(r, c) += b[c];
  EXPECT_LE(nt::max_abs_diff(qy.to_float(), y), 1e-2f);
}

namespace {

/// Scalar reference for the single-rounding linear contract: the bias is
/// folded into the wide accumulator at product scale and exactly one
/// round-half-away-from-zero narrowing happens at the output boundary.
fx::FixedTensor qlinear_scalar_ref(const fx::FixedTensor& x, const fx::FixedTensor& w_t,
                                   const fx::FixedTensor& bias, fx::FixedFormat out) {
  const nt::index_t m = x.shape().dim(0), k = x.shape().dim(1), n = w_t.shape().dim(0);
  const int prod_frac = x.format().frac_bits() + w_t.format().frac_bits();
  const int bshift = prod_frac - bias.format().frac_bits();
  fx::FixedTensor y(nt::Shape{m, n}, out);
  for (nt::index_t r = 0; r < m; ++r) {
    for (nt::index_t c = 0; c < n; ++c) {
      __int128 acc = static_cast<__int128>(bias[c]) << bshift;
      for (nt::index_t i = 0; i < k; ++i) {
        acc += static_cast<__int128>(x[r * k + i]) * w_t[c * k + i];
      }
      const int shift = prod_frac - out.frac_bits();
      __int128 v = acc;
      if (shift > 0) {
        const __int128 half = static_cast<__int128>(1) << (shift - 1);
        v = (v + (v >= 0 ? half : half - 1)) >> shift;
      } else if (shift < 0) {
        v <<= -shift;
      }
      if (v > out.raw_max()) v = out.raw_max();
      if (v < out.raw_min()) v = out.raw_min();
      y[r * n + c] = static_cast<std::int64_t>(v);
    }
  }
  return y;
}

}  // namespace

// Regression for the double-rounding bug: qlinear used to round the matmul
// into the output format, convert the bias separately (second rounding), and
// add saturating — off by one LSB whenever both roundings landed on ties.
// The accumulator must match the scalar reference bitwise, including at
// extreme scale gaps between the operand, bias, and output formats.
TEST(QLinear, BitwiseMatchesScalarReferenceAtExtremeScales) {
  nt::Rng rng(9);
  const fx::FixedFormat xf{32, 28};   // tiny steps, huge prod_frac
  const fx::FixedFormat wf{24, 20};
  const fx::FixedFormat bf{8, 4};     // coarse bias far from prod scale
  const fx::FixedFormat outs[] = {{8, 4}, {16, 8}, {32, 16}, {32, 24}};
  auto x = rng.randn(nt::Shape{5, 12}, 0.0f, 0.5f);
  auto w = rng.randn(nt::Shape{7, 12}, 0.0f, 0.5f);
  auto b = rng.randn(nt::Shape{7}, 0.0f, 2.0f);
  auto qx = fx::FixedTensor::from_float(x, xf);
  auto qw = fx::FixedTensor::from_float(w, wf);
  auto qb = fx::FixedTensor::from_float(b, bf);
  for (const auto& out : outs) {
    auto got = fx::qlinear(qx, qw, qb, out);
    auto want = qlinear_scalar_ref(qx, qw, qb, out);
    ASSERT_EQ(got.numel(), want.numel());
    for (nt::index_t i = 0; i < got.numel(); ++i) {
      EXPECT_EQ(got[i], want[i]) << "out=" << out.to_string() << " i=" << i;
    }
  }
}

// Deterministic half-LSB tie: the merged accumulator lands exactly between
// two output codes, where the old two-step rounding drifted.
TEST(QLinear, SingleRoundingAtTieBoundary) {
  const fx::FixedFormat f8{8, 4};
  // x*w = 1.0 * 0.5 = 0.5; bias = 0.03125 -> sum 0.53125 = 8.5 LSB at 8(4).
  // Half-away rounds to 9 LSB = 0.5625.
  auto qx = fx::FixedTensor::from_float(nt::Tensor(nt::Shape{1, 1}, 1.0f), fx::FixedFormat{16, 8});
  auto qw = fx::FixedTensor::from_float(nt::Tensor(nt::Shape{1, 1}, 0.5f), fx::FixedFormat{16, 8});
  auto qb = fx::FixedTensor::from_float(nt::Tensor(nt::Shape{1}, 0.03125f),
                                        fx::FixedFormat{16, 8});
  auto y = fx::qlinear(qx, qw, qb, f8);
  EXPECT_EQ(y[0], 9);
  // And the negative mirror rounds away from zero symmetrically.
  auto qxn = fx::FixedTensor::from_float(nt::Tensor(nt::Shape{1, 1}, -1.0f),
                                         fx::FixedFormat{16, 8});
  auto yn = fx::qlinear(qxn, qw, qb, f8);
  // -0.5 + 0.03125 = -0.46875 = -7.5 LSB -> -8 LSB half-away.
  EXPECT_EQ(yn[0], -8);
}

TEST(QuantErrorStats, ZeroForExactValues) {
  nt::Tensor t(nt::Shape{4}, std::vector<float>{1.0f, -2.0f, 0.5f, 0.25f});
  auto q = fx::FixedTensor::from_float(t, kF32);
  auto e = fx::quant_error(t, q);
  EXPECT_EQ(e.mean_abs, 0.0f);
  EXPECT_EQ(e.max_abs, 0.0f);
}

// Property: narrower feature formats give monotonically non-decreasing error
// (the Table VIII / Fig 9-10 premise).
TEST(QuantErrorStats, ErrorGrowsAsFormatNarrows) {
  nt::Rng rng(8);
  auto a = rng.randn(nt::Shape{8, 8});
  auto b = rng.randn(nt::Shape{8, 8});
  auto ref = nt::matmul(a, b);
  float prev = -1.0f;
  for (const auto& scheme : fx::table8_schemes()) {
    auto qc = fx::qmatmul(fx::FixedTensor::from_float(a, scheme.feature),
                          fx::FixedTensor::from_float(b, scheme.param), scheme.feature);
    const auto e = fx::quant_error(ref, qc);
    EXPECT_GE(e.max_abs + 1e-7f, prev) << "scheme " << scheme.to_string();
    prev = e.max_abs;
  }
}
