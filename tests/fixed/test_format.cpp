#include "nodetr/fx/format.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace fx = nodetr::fx;

TEST(FixedFormat, Q16_16Basics) {
  fx::FixedFormat f{32, 16};
  EXPECT_EQ(f.frac_bits(), 16);
  EXPECT_DOUBLE_EQ(f.resolution(), 1.0 / 65536.0);
  EXPECT_EQ(f.raw_max(), (std::int64_t{1} << 31) - 1);
  EXPECT_EQ(f.raw_min(), -(std::int64_t{1} << 31));
  EXPECT_EQ(f.to_string(), "32(16)");
}

TEST(FixedFormat, Table8SchemesInPaperOrder) {
  const auto& s = fx::table8_schemes();
  ASSERT_EQ(s.size(), 5u);
  EXPECT_EQ(s[0].to_string(), "32(16)-24(8)");
  EXPECT_EQ(s[1].to_string(), "24(12)-20(6)");
  EXPECT_EQ(s[2].to_string(), "20(10)-16(4)");
  EXPECT_EQ(s[3].to_string(), "18(9)-14(4)");
  EXPECT_EQ(s[4].to_string(), "16(8)-12(4)");
}

TEST(Quantize, ExactValuesRoundTrip) {
  fx::FixedFormat f{16, 8};
  // 0.5 = 128 LSBs at 8 fractional bits.
  EXPECT_EQ(fx::quantize(0.5f, f), 128);
  EXPECT_FLOAT_EQ(fx::dequantize(128, f), 0.5f);
  EXPECT_EQ(fx::quantize(-1.0f, f), -256);
  EXPECT_FLOAT_EQ(fx::quantize_dequantize(-1.0f, f), -1.0f);
}

TEST(Quantize, RoundsHalfAwayFromZero) {
  fx::FixedFormat f{16, 8};
  // One LSB = 1/256; an exact half-LSB tie rounds away from zero on both
  // sides (deterministic, not banker's rounding).
  EXPECT_EQ(fx::quantize(1.0f / 512.0f, f), 1);
  EXPECT_EQ(fx::quantize(-1.0f / 512.0f, f), -1);
  EXPECT_EQ(fx::quantize(3.0f / 512.0f, f), 2);
  EXPECT_EQ(fx::quantize(-3.0f / 512.0f, f), -2);
  EXPECT_EQ(fx::quantize(3.0f / 256.0f + 0.4f / 256.0f, f), 3);
  EXPECT_EQ(fx::quantize(-3.0f / 256.0f - 0.4f / 256.0f, f), -3);
}

TEST(Quantize, TieRoundingIsSignSymmetric) {
  // The pre-fix nearbyint path rounded +0.5 LSB and -0.5 LSB to the same
  // even neighbour, biasing negatives one LSB relative to positives.
  fx::FixedFormat f{16, 8};
  for (int k = 1; k < 32; ++k) {
    const float tie = static_cast<float>(2 * k - 1) / 512.0f;  // (k - 0.5) LSBs
    EXPECT_EQ(fx::quantize(tie, f), -fx::quantize(-tie, f)) << "tie " << tie;
  }
}

TEST(Quantize, SaturatesAtRangeEdges) {
  fx::FixedFormat f{8, 4};  // storage range [-8, 7.9375]
  EXPECT_EQ(fx::quantize(100.0f, f), f.raw_max());
  // Symmetric saturation: the most negative code point (raw_min) is never
  // produced, so |quantized| always fits the format when negated.
  EXPECT_EQ(fx::quantize(-100.0f, f), -f.raw_max());
  EXPECT_EQ(fx::quantize(-8.0f, f), -f.raw_max());
  EXPECT_FLOAT_EQ(fx::dequantize(f.raw_max(), f), 7.9375f);
  EXPECT_FLOAT_EQ(fx::dequantize(f.raw_min(), f), -8.0f);
}

TEST(Quantize, NegationNeverOverflows) {
  // Guard for the INT*_MIN edge: for every format, -quantize(v) must stay
  // inside [raw_min, raw_max] even at the saturation rails.
  for (const auto& f : {fx::FixedFormat{8, 4}, fx::FixedFormat{16, 8}, fx::FixedFormat{32, 16}}) {
    for (float v : {-1e30f, -100.0f, static_cast<float>(f.min_value()), 0.0f,
                    static_cast<float>(f.max_value()), 1e30f}) {
      const auto q = fx::quantize(v, f);
      EXPECT_GE(-q, f.raw_min()) << f.to_string() << " v=" << v;
      EXPECT_LE(-q, f.raw_max()) << f.to_string() << " v=" << v;
    }
  }
}

TEST(Quantize, NanMapsToZero) {
  fx::FixedFormat f{16, 8};
  EXPECT_EQ(fx::quantize(std::nanf(""), f), 0);
}

TEST(ConvertRaw, WideningPreservesValue) {
  fx::FixedFormat narrow{16, 8}, wide{32, 16};
  const auto raw = fx::quantize(1.25f, narrow);
  const auto wraw = fx::convert_raw(raw, narrow, wide);
  EXPECT_FLOAT_EQ(fx::dequantize(wraw, wide), 1.25f);
}

TEST(ConvertRaw, NarrowingRoundsAndSaturates) {
  fx::FixedFormat wide{32, 16}, narrow{8, 4};
  EXPECT_FLOAT_EQ(fx::dequantize(fx::convert_raw(fx::quantize(1.5f, wide), wide, narrow), narrow),
                  1.5f);
  // 100.0 saturates in 8(4).
  EXPECT_EQ(fx::convert_raw(fx::quantize(100.0f, wide), wide, narrow), narrow.raw_max());
  EXPECT_EQ(fx::convert_raw(fx::quantize(-100.0f, wide), wide, narrow), narrow.raw_min());
}

TEST(ConvertRaw, IdentityWhenFormatsMatch) {
  fx::FixedFormat f{24, 8};
  const auto raw = fx::quantize(-3.375f, f);
  EXPECT_EQ(fx::convert_raw(raw, f, f), raw);
}

// Property sweep: quantization error is bounded by half an LSB inside range.
class QuantErrorBound : public ::testing::TestWithParam<fx::FixedFormat> {};

TEST_P(QuantErrorBound, HalfLsbBound) {
  const auto f = GetParam();
  const double lsb = f.resolution();
  for (float v : {0.0f, 0.1f, -0.7f, 1.9f, -1.99f, 3.14159f, -2.71828f}) {
    if (v >= f.min_value() && v <= f.max_value()) {
      EXPECT_LE(std::fabs(fx::quantize_dequantize(v, f) - v), lsb * 0.5 + 1e-9)
          << "format " << f.to_string() << " value " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Formats, QuantErrorBound,
                         ::testing::Values(fx::FixedFormat{32, 16}, fx::FixedFormat{24, 8},
                                           fx::FixedFormat{20, 10}, fx::FixedFormat{16, 8},
                                           fx::FixedFormat{12, 4}, fx::FixedFormat{8, 4}));
