#include "nodetr/fx/block_quant.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "nodetr/tensor/ops.hpp"
#include "nodetr/tensor/rng.hpp"

namespace fx = nodetr::fx;
namespace nt = nodetr::tensor;

namespace {

/// Largest |x - dequant(x)| permitted by one block: half the block's step
/// size (absmax / qmax), plus float slack.
float block_error_bound(const nt::Tensor& t, fx::BlockType type, nt::index_t block_size) {
  const float qmax = type == fx::BlockType::kInt8 ? 127.0f : 7.0f;
  float worst = 0.0f;
  for (nt::index_t b0 = 0; b0 < t.numel(); b0 += block_size) {
    float absmax = 0.0f;
    for (nt::index_t i = b0; i < std::min(t.numel(), b0 + block_size); ++i) {
      absmax = std::max(absmax, std::abs(t[i]));
    }
    worst = std::max(worst, 0.5f * absmax / qmax);
  }
  return worst * 1.001f + 1e-7f;
}

}  // namespace

TEST(BlockQuant, RoundTripErrorBoundedPerBlockSize) {
  nt::Rng rng(41);
  for (const nt::index_t bs : {32, 64}) {
    for (const auto type : {fx::BlockType::kInt8, fx::BlockType::kInt4}) {
      auto t = rng.randn(nt::Shape{4, 96}, 0.0f, 2.0f);
      auto q = fx::block_quantize(t, type, bs);
      EXPECT_EQ(q.shape(), t.shape());
      EXPECT_EQ(q.block_size(), bs);
      auto back = q.dequantize();
      EXPECT_EQ(back.shape(), t.shape());
      EXPECT_LE(nt::max_abs_diff(back, t), block_error_bound(t, type, bs))
          << to_string(type) << "/" << bs;
    }
  }
}

TEST(BlockQuant, Int8IsTighterThanInt4) {
  nt::Rng rng(42);
  auto t = rng.randn(nt::Shape{256});
  const float e8 = nt::max_abs_diff(fx::block_roundtrip(t, fx::BlockType::kInt8), t);
  const float e4 = nt::max_abs_diff(fx::block_roundtrip(t, fx::BlockType::kInt4), t);
  EXPECT_LT(e8, e4);
}

TEST(BlockQuant, BlockAbsmaxIsReconstructedExactly) {
  // The block's absmax element maps to exactly +/- qmax and decodes back
  // bit-equal (scale * qmax == absmax up to float rounding).
  nt::Tensor t(nt::Shape{32});
  for (nt::index_t i = 0; i < 32; ++i) t[i] = 0.01f * static_cast<float>(i);
  t[7] = -3.5f;  // the absmax, negative on purpose
  auto q = fx::block_quantize(t, fx::BlockType::kInt8, 32);
  EXPECT_FLOAT_EQ(q.at(7), -3.5f);
}

TEST(BlockQuant, AllZeroBlockDecodesToZeros) {
  nt::Tensor t = nt::Tensor::zeros(nt::Shape{64});
  for (const auto type : {fx::BlockType::kInt8, fx::BlockType::kInt4}) {
    auto back = fx::block_roundtrip(t, type, 32);
    for (nt::index_t i = 0; i < t.numel(); ++i) EXPECT_EQ(back[i], 0.0f);
  }
}

TEST(BlockQuant, Int4PackingHandlesOddLengthsAndSign) {
  // Odd numel: the last nibble pair is half-used; signs must survive the
  // biased-nibble packing in both the low and high nibble positions.
  for (const nt::index_t n : {1, 3, 31, 33, 65}) {
    nt::Tensor t(nt::Shape{n});
    for (nt::index_t i = 0; i < n; ++i) {
      t[i] = (i % 2 == 0 ? 1.0f : -1.0f) * (1.0f + static_cast<float>(i % 7));
    }
    auto q = fx::block_quantize(t, fx::BlockType::kInt4, 32);
    auto back = q.dequantize();
    ASSERT_EQ(back.numel(), n);
    for (nt::index_t i = 0; i < n; ++i) {
      EXPECT_EQ(std::signbit(back[i]), std::signbit(t[i])) << "n=" << n << " i=" << i;
    }
    EXPECT_LE(nt::max_abs_diff(back, t), block_error_bound(t, fx::BlockType::kInt4, 32));
  }
}

TEST(BlockQuant, PayloadBytesMatchStaticFormula) {
  nt::Rng rng(43);
  for (const nt::index_t n : {1, 31, 32, 33, 64, 100}) {
    for (const auto type : {fx::BlockType::kInt8, fx::BlockType::kInt4}) {
      auto q = fx::block_quantize(rng.randn(nt::Shape{n}), type, 32);
      EXPECT_EQ(q.payload_bytes(), fx::BlockQuantTensor::payload_bytes_for(n, type, 32));
      EXPECT_EQ(q.float_bytes(), n * 4);
    }
  }
}

TEST(BlockQuant, CompressionRatioClearsStreamingGate) {
  // The DMA-shrink acceptance bar: int8 at block 32 must compress >= 3.5x
  // on block-aligned tensors (exactly 32/(32+4) * 4 = 3.56x).
  nt::Rng rng(44);
  auto q8 = fx::block_quantize(rng.randn(nt::Shape{64, 64}), fx::BlockType::kInt8, 32);
  EXPECT_GE(q8.compression_ratio(), 3.5);
  auto q4 = fx::block_quantize(rng.randn(nt::Shape{64, 64}), fx::BlockType::kInt4, 32);
  EXPECT_GE(q4.compression_ratio(), 6.0);
}

TEST(BlockQuant, InvalidArgumentsRejected) {
  nt::Rng rng(45);
  auto t = rng.randn(nt::Shape{8});
  EXPECT_THROW(fx::block_quantize(t, fx::BlockType::kInt8, 0), std::invalid_argument);
  EXPECT_THROW(fx::block_quantize(t, fx::BlockType::kInt8, -4), std::invalid_argument);
}

TEST(BlockQuant, SerializationRoundTrips) {
  nt::Rng rng(46);
  for (const auto type : {fx::BlockType::kInt8, fx::BlockType::kInt4}) {
    auto t = rng.randn(nt::Shape{3, 40});
    auto q = fx::block_quantize(t, type, 32);
    std::stringstream ss;
    q.write(ss);
    auto r = fx::BlockQuantTensor::read(ss);
    EXPECT_EQ(r.shape(), q.shape());
    EXPECT_EQ(r.type(), q.type());
    EXPECT_EQ(r.block_size(), q.block_size());
    EXPECT_EQ(r.scales(), q.scales());
    EXPECT_EQ(r.data(), q.data());
    EXPECT_TRUE(nt::allclose(r.dequantize(), q.dequantize(), 0.0f, 0.0f));
    // The record is self-delimiting: nothing left in the stream.
    EXPECT_EQ(ss.peek(), std::char_traits<char>::eof());
  }
}

TEST(BlockQuant, CorruptedRecordsRejected) {
  nt::Rng rng(47);
  auto q = fx::block_quantize(rng.randn(nt::Shape{70}), fx::BlockType::kInt8, 32);
  std::stringstream ss;
  q.write(ss);
  const std::string good = ss.str();

  // Truncation at every interesting boundary: header, dims, scales, data,
  // checksum. All must throw, never return garbage.
  for (const std::size_t len : {std::size_t{0}, std::size_t{3}, std::size_t{9},
                                std::size_t{17}, good.size() / 2, good.size() - 1}) {
    std::stringstream t(good.substr(0, len));
    EXPECT_THROW((void)fx::BlockQuantTensor::read(t), std::runtime_error) << "len=" << len;
  }
  // Bad magic.
  {
    std::string bad = good;
    bad[0] ^= 0xff;
    std::stringstream t(bad);
    EXPECT_THROW((void)fx::BlockQuantTensor::read(t), std::runtime_error);
  }
  // A flipped payload byte (scale or code region) fails the checksum.
  for (const std::size_t off : {good.size() - 8, good.size() - 20}) {
    std::string bad = good;
    bad[off] = static_cast<char>(bad[off] ^ 0x40);
    std::stringstream t(bad);
    EXPECT_THROW((void)fx::BlockQuantTensor::read(t), std::runtime_error) << "off=" << off;
  }
}

TEST(MixedPrecision, FirstMatchingRuleWins) {
  fx::MixedPrecisionPolicy policy;
  policy.fallback = fx::LayerPrecision::kInt4;
  policy.rules = {{"attention", fx::LayerPrecision::kFloat32},
                  {"atte", fx::LayerPrecision::kInt8},  // shadowed for "attention"
                  {"stem", fx::LayerPrecision::kInt8}};
  EXPECT_EQ(policy.precision_for("block1.attention.wq"), fx::LayerPrecision::kFloat32);
  EXPECT_EQ(policy.precision_for("attempt"), fx::LayerPrecision::kInt8);
  EXPECT_EQ(policy.precision_for("stem.conv.weight"), fx::LayerPrecision::kInt8);
  EXPECT_EQ(policy.precision_for("classifier.bias"), fx::LayerPrecision::kInt4);
}

TEST(MixedPrecision, UniformPolicyHasNoRules) {
  auto policy = fx::MixedPrecisionPolicy::uniform(fx::LayerPrecision::kInt8, 64);
  EXPECT_TRUE(policy.rules.empty());
  EXPECT_EQ(policy.block_size, 64);
  EXPECT_EQ(policy.precision_for("anything"), fx::LayerPrecision::kInt8);
}
