#include "nodetr/fx/qconv.hpp"

#include <gtest/gtest.h>

#include "nodetr/tensor/conv.hpp"
#include "nodetr/tensor/ops.hpp"
#include "nodetr/tensor/rng.hpp"

namespace fx = nodetr::fx;
namespace nt = nodetr::tensor;

namespace {
const fx::FixedFormat kF{32, 16};
const fx::FixedFormat kP{24, 8};
}  // namespace

TEST(QConv2d, MatchesFloatReference) {
  nt::Conv2dGeom g{.in_channels = 3, .out_channels = 4, .kernel = 3, .stride = 1, .pad = 1};
  nt::Rng rng(1);
  auto x = rng.randn(nt::Shape{2, 3, 5, 5});
  auto w = rng.randn(nt::Shape{4, 3, 3, 3});
  auto b = rng.randn(nt::Shape{4});
  auto qy = fx::qconv2d(fx::FixedTensor::from_float(x, kF), fx::FixedTensor::from_float(w, kP),
                        fx::FixedTensor::from_float(b, kP), g, kF);
  auto y = nt::conv2d(x, w, b, g);
  EXPECT_LE(nt::max_abs_diff(qy.to_float(), y), 2e-2f);
}

TEST(QConv2d, ExactForIntegerData) {
  nt::Conv2dGeom g{.in_channels = 1, .out_channels = 1, .kernel = 3, .stride = 1, .pad = 0};
  nt::Tensor x(nt::Shape{1, 1, 3, 3}, 1.0f);
  nt::Tensor w(nt::Shape{1, 1, 3, 3}, 2.0f);
  auto qy = fx::qconv2d(fx::FixedTensor::from_float(x, kF), fx::FixedTensor::from_float(w, kP),
                        {}, g, kF);
  EXPECT_FLOAT_EQ(qy.to_float()[0], 18.0f);
}

TEST(QConv2d, Stride2Geometry) {
  nt::Conv2dGeom g{.in_channels = 2, .out_channels = 3, .kernel = 3, .stride = 2, .pad = 1};
  nt::Rng rng(2);
  auto x = rng.randn(nt::Shape{1, 2, 8, 8});
  auto w = rng.randn(nt::Shape{3, 2, 3, 3});
  auto qy = fx::qconv2d(fx::FixedTensor::from_float(x, kF), fx::FixedTensor::from_float(w, kP),
                        {}, g, kF);
  EXPECT_EQ(qy.shape(), (nt::Shape{1, 3, 4, 4}));
  EXPECT_LE(nt::max_abs_diff(qy.to_float(), nt::conv2d(x, w, {}, g)), 2e-2f);
}

TEST(QDepthwise, MatchesFloatReference) {
  nt::Conv2dGeom g{.in_channels = 3, .out_channels = 3, .kernel = 3, .stride = 1, .pad = 1};
  nt::Rng rng(3);
  auto x = rng.randn(nt::Shape{1, 3, 5, 5});
  auto w = rng.randn(nt::Shape{3, 3, 3});
  auto qy = fx::qdepthwise_conv2d(fx::FixedTensor::from_float(x, kF),
                                  fx::FixedTensor::from_float(w, kP), g, kF);
  EXPECT_LE(nt::max_abs_diff(qy.to_float(), nt::depthwise_conv2d(x, w, {}, g)), 1e-2f);
}

TEST(QScaleShift, FoldedBatchNorm) {
  nt::Rng rng(4);
  auto x = rng.randn(nt::Shape{1, 2, 3, 3});
  nt::Tensor scale(nt::Shape{2}, std::vector<float>{2.0f, 0.5f});
  nt::Tensor shift(nt::Shape{2}, std::vector<float>{1.0f, -1.0f});
  auto qy = fx::qscale_shift_channels(fx::FixedTensor::from_float(x, kF),
                                      fx::FixedTensor::from_float(scale, kP),
                                      fx::FixedTensor::from_float(shift, kP));
  for (nt::index_t c = 0; c < 2; ++c) {
    for (nt::index_t i = 0; i < 9; ++i) {
      const float want = x[c * 9 + i] * scale[c] + shift[c];
      EXPECT_NEAR(qy.to_float()[c * 9 + i], want, 1e-2f);
    }
  }
}

TEST(QGlobalAvgPool, ExactMeanOfRepresentables) {
  nt::Tensor x(nt::Shape{1, 1, 2, 2}, std::vector<float>{1.0f, 2.0f, 3.0f, 4.0f});
  auto q = fx::qglobal_avg_pool(fx::FixedTensor::from_float(x, kF));
  EXPECT_EQ(q.shape(), (nt::Shape{1, 1}));
  EXPECT_FLOAT_EQ(q.to_float()[0], 2.5f);
}

TEST(QMaxPool, ExactComparatorSemantics) {
  auto x = nt::Tensor::arange(16).reshape(nt::Shape{1, 1, 4, 4});
  auto q = fx::qmax_pool(fx::FixedTensor::from_float(x, kF), 2, 2, 0);
  auto f = q.to_float();
  EXPECT_FLOAT_EQ(f[0], 5.0f);
  EXPECT_FLOAT_EQ(f[3], 15.0f);
}

TEST(QConvKernels, NarrowFormatsIncreaseError) {
  nt::Conv2dGeom g{.in_channels = 2, .out_channels = 2, .kernel = 3, .stride = 1, .pad = 1};
  nt::Rng rng(5);
  auto x = rng.randn(nt::Shape{1, 2, 6, 6});
  auto w = rng.randn(nt::Shape{2, 2, 3, 3});
  auto ref = nt::conv2d(x, w, {}, g);
  float prev = -1.0f;
  for (const auto& scheme : fx::table8_schemes()) {
    auto qy = fx::qconv2d(fx::FixedTensor::from_float(x, scheme.feature),
                          fx::FixedTensor::from_float(w, scheme.param), {}, g, scheme.feature);
    const float err = nt::mean_abs_diff(qy.to_float(), ref);
    EXPECT_GE(err, prev * 0.5f);
    prev = std::max(prev, err);
  }
}
