#include "nodetr/nn/pool.hpp"

#include <gtest/gtest.h>

#include "../common/gradcheck.hpp"

namespace nn = nodetr::nn;
namespace nt = nodetr::tensor;

TEST(MaxPool, KnownValues) {
  nn::MaxPool2d pool(2, 2, 0);
  auto x = nt::Tensor::arange(16).reshape(nt::Shape{1, 1, 4, 4});
  auto y = pool.forward(x);
  EXPECT_EQ(y.shape(), (nt::Shape{1, 1, 2, 2}));
  EXPECT_EQ(y.at(0, 0, 0, 0), 5.0f);
  EXPECT_EQ(y.at(0, 0, 1, 1), 15.0f);
}

TEST(MaxPool, BackwardRoutesToArgmaxOnly) {
  nn::MaxPool2d pool(2, 2, 0);
  auto x = nt::Tensor::arange(16).reshape(nt::Shape{1, 1, 4, 4});
  pool.forward(x);
  nt::Tensor g(nt::Shape{1, 1, 2, 2}, 1.0f);
  auto gx = pool.backward(g);
  float total = 0.0f;
  for (nt::index_t i = 0; i < 16; ++i) total += gx[i];
  EXPECT_EQ(total, 4.0f);
  EXPECT_EQ(gx.at(0, 0, 1, 1), 1.0f);   // index 5 is a window max
  EXPECT_EQ(gx.at(0, 0, 0, 0), 0.0f);
}

TEST(MaxPool, PaddingProducesOverlapWindow) {
  nn::MaxPool2d pool(3, 2, 1);
  nt::Rng rng(1);
  auto x = rng.randn(nt::Shape{1, 2, 8, 8});
  auto y = pool.forward(x);
  EXPECT_EQ(y.shape(), (nt::Shape{1, 2, 4, 4}));
}

TEST(AvgPool, UniformInputIsPreserved) {
  nn::AvgPool2d pool(2, 2, 0);
  auto x = nt::Tensor::full(nt::Shape{1, 1, 4, 4}, 3.0f);
  auto y = pool.forward(x);
  for (nt::index_t i = 0; i < y.numel(); ++i) EXPECT_FLOAT_EQ(y[i], 3.0f);
}

TEST(AvgPool, GradCheck) {
  nt::Rng rng(2);
  nn::AvgPool2d pool(2, 2, 0);
  auto x = rng.randn(nt::Shape{1, 2, 4, 4});
  nodetr::testing::expect_gradients_match(pool, x);
}

TEST(GlobalAvgPool, ReducesToChannelMeans) {
  auto x = nt::Tensor::arange(2 * 3 * 2 * 2).reshape(nt::Shape{2, 3, 2, 2});
  nn::GlobalAvgPool gap;
  auto y = gap.forward(x);
  EXPECT_EQ(y.shape(), (nt::Shape{2, 3}));
  EXPECT_FLOAT_EQ(y.at(0, 0), 1.5f);   // mean of 0,1,2,3
  EXPECT_FLOAT_EQ(y.at(1, 2), 21.5f);  // mean of 20..23
}

TEST(GlobalAvgPool, GradCheck) {
  nt::Rng rng(3);
  nn::GlobalAvgPool gap;
  auto x = rng.randn(nt::Shape{2, 3, 3, 3});
  nodetr::testing::expect_gradients_match(gap, x);
}
