#include "nodetr/nn/norm.hpp"

#include <gtest/gtest.h>

#include "../common/gradcheck.hpp"
#include "nodetr/tensor/ops.hpp"

namespace nn = nodetr::nn;
namespace nt = nodetr::tensor;

TEST(BatchNorm, TrainModeNormalizesPerChannel) {
  nt::Rng rng(1);
  nn::BatchNorm2d bn(3);
  bn.train(true);
  auto x = rng.randn(nt::Shape{4, 3, 5, 5}, 2.0f, 3.0f);
  auto y = bn.forward(x);
  // Each channel of the output has ~zero mean and ~unit variance.
  for (nt::index_t c = 0; c < 3; ++c) {
    double s = 0.0, s2 = 0.0;
    nt::index_t n = 0;
    for (nt::index_t b = 0; b < 4; ++b)
      for (nt::index_t i = 0; i < 25; ++i) {
        const float v = y.data()[(b * 3 + c) * 25 + i];
        s += v;
        s2 += static_cast<double>(v) * v;
        ++n;
      }
    EXPECT_NEAR(s / n, 0.0, 1e-4);
    EXPECT_NEAR(s2 / n, 1.0, 1e-3);
  }
}

TEST(BatchNorm, RunningStatsConvergeToDataMoments) {
  nt::Rng rng(2);
  nn::BatchNorm2d bn(2);
  bn.train(true);
  for (int i = 0; i < 200; ++i) {
    auto x = rng.randn(nt::Shape{8, 2, 4, 4}, 1.5f, 2.0f);
    bn.forward(x);
  }
  EXPECT_NEAR(bn.running_mean()[0], 1.5f, 0.15f);
  EXPECT_NEAR(bn.running_var()[0], 4.0f, 0.5f);
}

TEST(BatchNorm, EvalModeUsesRunningStats) {
  nt::Rng rng(3);
  nn::BatchNorm2d bn(2);
  bn.train(true);
  for (int i = 0; i < 100; ++i) bn.forward(rng.randn(nt::Shape{8, 2, 4, 4}, 1.0f, 1.0f));
  bn.train(false);
  // In eval mode a single constant input maps deterministically through the
  // frozen statistics; two different batches must not influence each other.
  auto x1 = nt::Tensor::full(nt::Shape{1, 2, 4, 4}, 1.0f);
  auto y1 = bn.forward(x1);
  bn.forward(rng.randn(nt::Shape{4, 2, 4, 4}, 50.0f, 1.0f));
  auto y1_again = bn.forward(x1);
  EXPECT_TRUE(nt::allclose(y1, y1_again, 1e-6f, 1e-6f));
}

TEST(BatchNorm, GradCheckTrainMode) {
  nt::Rng rng(4);
  nn::BatchNorm2d bn(2);
  bn.train(true);
  auto x = rng.randn(nt::Shape{3, 2, 3, 3});
  // BatchNorm gradients are small & coupled; use a slightly looser tolerance.
  nodetr::testing::expect_gradients_match(bn, x, /*seed=*/44, /*checks=*/6, /*eps=*/1e-2f,
                                          /*tol=*/5e-2f);
}

TEST(BatchNorm, GradCheckEvalMode) {
  nt::Rng rng(5);
  nn::BatchNorm2d bn(2);
  bn.train(true);
  for (int i = 0; i < 20; ++i) bn.forward(rng.randn(nt::Shape{4, 2, 3, 3}));
  bn.train(false);
  auto x = rng.randn(nt::Shape{2, 2, 3, 3});
  nodetr::testing::expect_gradients_match(bn, x);
}

TEST(BatchNorm, RejectsWrongChannelCount) {
  nt::Rng rng(6);
  nn::BatchNorm2d bn(3);
  EXPECT_THROW(bn.forward(nt::Tensor(nt::Shape{1, 2, 4, 4})), std::invalid_argument);
}

TEST(LayerNormModule, NormalizesRows) {
  nt::Rng rng(7);
  nn::LayerNorm ln(16);
  auto x = rng.randn(nt::Shape{5, 16}, 4.0f, 3.0f);
  auto y = ln.forward(x);
  for (nt::index_t r = 0; r < 5; ++r) {
    auto row = y.slice0(r, r + 1);
    EXPECT_NEAR(nt::mean(row), 0.0f, 1e-4f);
    EXPECT_NEAR(nt::variance(row), 1.0f, 1e-2f);
  }
}

TEST(LayerNormModule, AppliesGainAndBias) {
  nt::Rng rng(8);
  nn::LayerNorm ln(4);
  auto params = ln.parameters();
  params[0]->value.fill(2.0f);  // gamma
  params[1]->value.fill(1.0f);  // beta
  auto x = rng.randn(nt::Shape{3, 4});
  auto y = ln.forward(x);
  // mean = beta, variance = gamma^2 per row.
  for (nt::index_t r = 0; r < 3; ++r) {
    auto row = y.slice0(r, r + 1);
    EXPECT_NEAR(nt::mean(row), 1.0f, 1e-4f);
    EXPECT_NEAR(nt::variance(row), 4.0f, 5e-2f);
  }
}

TEST(LayerNormModule, HandlesHigherRankInputs) {
  nt::Rng rng(9);
  nn::LayerNorm ln(8);
  auto x = rng.randn(nt::Shape{2, 3, 8});
  auto y = ln.forward(x);
  EXPECT_EQ(y.shape(), x.shape());
}

TEST(LayerNormModule, GradCheck) {
  nt::Rng rng(10);
  nn::LayerNorm ln(6);
  auto x = rng.randn(nt::Shape{4, 6});
  nodetr::testing::expect_gradients_match(ln, x, /*seed=*/55, /*checks=*/8, /*eps=*/1e-2f,
                                          /*tol=*/5e-2f);
}
