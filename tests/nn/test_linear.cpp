#include "nodetr/nn/linear.hpp"

#include <gtest/gtest.h>

#include "../common/gradcheck.hpp"

namespace nn = nodetr::nn;
namespace nt = nodetr::tensor;

TEST(Linear, OutputShapeAndBias) {
  nt::Rng rng(1);
  nn::Linear lin(4, 3, /*bias=*/true, rng);
  auto x = rng.randn(nt::Shape{5, 4});
  auto y = lin.forward(x);
  EXPECT_EQ(y.shape(), (nt::Shape{5, 3}));
  // Shifting the bias shifts the output by the same amount.
  lin.bias().value[1] += 10.0f;
  auto y2 = lin.forward(x);
  EXPECT_NEAR(y2.at(2, 1) - y.at(2, 1), 10.0f, 1e-5f);
  EXPECT_NEAR(y2.at(2, 0) - y.at(2, 0), 0.0f, 1e-5f);
}

TEST(Linear, NoBiasHasFewerParameters) {
  nt::Rng rng(2);
  nn::Linear with(4, 3, true, rng), without(4, 3, false, rng);
  EXPECT_EQ(with.num_parameters(), 4 * 3 + 3);
  EXPECT_EQ(without.num_parameters(), 4 * 3);
}

TEST(Linear, RejectsWrongInputWidth) {
  nt::Rng rng(3);
  nn::Linear lin(4, 3, true, rng);
  EXPECT_THROW(lin.forward(nt::Tensor(nt::Shape{2, 5})), std::invalid_argument);
}

TEST(Linear, GradCheckWithBias) {
  nt::Rng rng(4);
  nn::Linear lin(6, 4, true, rng);
  auto x = rng.randn(nt::Shape{3, 6});
  nodetr::testing::expect_gradients_match(lin, x);
}

TEST(Linear, GradCheckNoBias) {
  nt::Rng rng(5);
  nn::Linear lin(5, 2, false, rng);
  auto x = rng.randn(nt::Shape{2, 5});
  nodetr::testing::expect_gradients_match(lin, x);
}

TEST(Linear, GradientsAccumulateAcrossBackwardCalls) {
  nt::Rng rng(6);
  nn::Linear lin(3, 2, false, rng);
  auto x = rng.randn(nt::Shape{2, 3});
  auto y = lin.forward(x);
  nt::Tensor cot(y.shape(), 1.0f);
  lin.zero_grad();
  lin.backward(cot);
  const float g1 = lin.weight().grad[0];
  lin.forward(x);
  lin.backward(cot);
  EXPECT_NEAR(lin.weight().grad[0], 2 * g1, 1e-5f);
  lin.zero_grad();
  EXPECT_EQ(lin.weight().grad[0], 0.0f);
}
