#include <gtest/gtest.h>

#include "../common/gradcheck.hpp"
#include "nodetr/nn/activations.hpp"
#include "nodetr/nn/dropout.hpp"
#include "nodetr/nn/linear.hpp"
#include "nodetr/nn/posenc.hpp"
#include "nodetr/nn/sequential.hpp"
#include "nodetr/tensor/ops.hpp"

namespace nn = nodetr::nn;
namespace nt = nodetr::tensor;

TEST(DropoutModule, EvalModeIsIdentity) {
  nn::Dropout drop(0.5f);
  drop.train(false);
  nt::Rng rng(1);
  auto x = rng.randn(nt::Shape{100});
  EXPECT_TRUE(nt::allclose(drop.forward(x), x, 0.0f, 0.0f));
}

TEST(DropoutModule, TrainModeDropsRoughlyP) {
  nn::Dropout drop(0.3f, /*seed=*/9);
  drop.train(true);
  auto x = nt::Tensor::ones(nt::Shape{10000});
  auto y = drop.forward(x);
  nt::index_t zeros = 0;
  for (nt::index_t i = 0; i < y.numel(); ++i) zeros += (y[i] == 0.0f);
  EXPECT_NEAR(static_cast<double>(zeros) / 10000.0, 0.3, 0.03);
  // Surviving activations scale by 1/(1-p), keeping the expectation fixed.
  EXPECT_NEAR(nt::mean(y), 1.0f, 0.05f);
}

TEST(DropoutModule, BackwardUsesSameMask) {
  nn::Dropout drop(0.5f, 7);
  drop.train(true);
  auto x = nt::Tensor::ones(nt::Shape{64});
  auto y = drop.forward(x);
  auto gx = drop.backward(nt::Tensor::ones(nt::Shape{64}));
  for (nt::index_t i = 0; i < 64; ++i) EXPECT_EQ(gx[i], y[i]);
}

TEST(DropoutModule, InvalidProbabilityThrows) {
  EXPECT_THROW(nn::Dropout(-0.1f), std::invalid_argument);
  EXPECT_THROW(nn::Dropout(1.0f), std::invalid_argument);
}

TEST(SequentialModule, ChainsForwardAndBackward) {
  nt::Rng rng(2);
  nn::Sequential seq;
  seq.emplace<nn::Linear>(4, 8, true, rng);
  seq.emplace<nn::ReLU>();
  seq.emplace<nn::Linear>(8, 2, true, rng);
  auto x = rng.randn(nt::Shape{3, 4});
  auto y = seq.forward(x);
  EXPECT_EQ(y.shape(), (nt::Shape{3, 2}));
  EXPECT_EQ(seq.num_parameters(), 4 * 8 + 8 + 8 * 2 + 2);
  nodetr::testing::expect_gradients_match(seq, x);
}

TEST(SequentialModule, TrainModePropagatesToChildren) {
  nt::Rng rng(3);
  nn::Sequential seq;
  auto& drop = seq.emplace<nn::Dropout>(0.5f);
  seq.train(false);
  EXPECT_FALSE(drop.training());
  seq.train(true);
  EXPECT_TRUE(drop.training());
}

TEST(SinusoidalEncoding, FirstPositionIsSinZeroCosZero) {
  auto p = nn::sinusoidal_encoding(4, 6);
  EXPECT_FLOAT_EQ(p.at(0, 0), 0.0f);  // sin(0)
  EXPECT_FLOAT_EQ(p.at(0, 1), 1.0f);  // cos(0)
  EXPECT_FLOAT_EQ(p.at(0, 4), 0.0f);
}

TEST(SinusoidalEncoding, ValuesBoundedByOne) {
  auto p = nn::sinusoidal_encoding(50, 32);
  for (nt::index_t i = 0; i < p.numel(); ++i) {
    EXPECT_LE(p[i], 1.0f);
    EXPECT_GE(p[i], -1.0f);
  }
}

TEST(SinusoidalEncoding, DistinctPositionsGetDistinctCodes) {
  auto p = nn::sinusoidal_encoding(10, 16);
  for (nt::index_t i = 1; i < 10; ++i) {
    EXPECT_GT(nt::max_abs_diff(p.slice0(0, 1), p.slice0(i, i + 1)), 1e-3f) << "position " << i;
  }
}
