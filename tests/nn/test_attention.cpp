#include "nodetr/nn/attention.hpp"

#include <gtest/gtest.h>

#include "../common/gradcheck.hpp"
#include "nodetr/nn/mhsa_block.hpp"
#include "nodetr/tensor/ops.hpp"

namespace nn = nodetr::nn;
namespace nt = nodetr::tensor;

namespace {
nn::MhsaConfig small_cfg(nn::AttentionKind kind, nn::PosEncodingKind pos) {
  return {.dim = 8, .heads = 2, .height = 3, .width = 3, .attention = kind, .pos = pos,
          .layer_norm_out = true};
}
}  // namespace

TEST(Mhsa, OutputShapeMatchesInput) {
  nt::Rng rng(1);
  nn::MultiHeadSelfAttention mhsa(small_cfg(nn::AttentionKind::kRelu,
                                            nn::PosEncodingKind::kRelative2d), rng);
  auto x = rng.randn(nt::Shape{2, 8, 3, 3});
  EXPECT_EQ(mhsa.forward(x).shape(), x.shape());
}

TEST(Mhsa, RejectsMismatchedSpatialExtent) {
  nt::Rng rng(2);
  nn::MultiHeadSelfAttention mhsa(small_cfg(nn::AttentionKind::kRelu,
                                            nn::PosEncodingKind::kRelative2d), rng);
  EXPECT_THROW(mhsa.forward(nt::Tensor(nt::Shape{1, 8, 4, 4})), std::invalid_argument);
  EXPECT_THROW(mhsa.forward(nt::Tensor(nt::Shape{1, 4, 3, 3})), std::invalid_argument);
}

TEST(Mhsa, DimMustDivideHeads) {
  nt::Rng rng(3);
  nn::MhsaConfig bad{.dim = 7, .heads = 2, .height = 2, .width = 2};
  EXPECT_THROW(nn::MultiHeadSelfAttention(bad, rng), std::invalid_argument);
}

TEST(Mhsa, ParameterCountReluRelative) {
  nt::Rng rng(4);
  auto cfg = small_cfg(nn::AttentionKind::kRelu, nn::PosEncodingKind::kRelative2d);
  nn::MultiHeadSelfAttention mhsa(cfg, rng);
  // 3 D*D projections + heads*(H+W)*Dh relative vectors + 2*D LayerNorm.
  const nt::index_t expected = 3 * 8 * 8 + 2 * (3 + 3) * 4 + 2 * 8;
  EXPECT_EQ(mhsa.num_parameters(), expected);
}

TEST(Mhsa, NoPosEncodingIsPermutationEquivariant) {
  // Without positional encoding, self-attention is equivariant: permuting the
  // spatial tokens permutes the outputs identically (Sec. III-A3).
  nt::Rng rng(5);
  nn::MhsaConfig cfg{.dim = 8, .heads = 2, .height = 2, .width = 2,
                     .attention = nn::AttentionKind::kSoftmax,
                     .pos = nn::PosEncodingKind::kNone, .layer_norm_out = false};
  nn::MultiHeadSelfAttention mhsa(cfg, rng);
  auto x = rng.randn(nt::Shape{1, 8, 2, 2});
  auto y = mhsa.forward(x);
  // Swap tokens (0,0) <-> (1,1) in the input.
  auto xs = x;
  for (nt::index_t c = 0; c < 8; ++c) std::swap(xs.at(0, c, 0, 0), xs.at(0, c, 1, 1));
  auto ys = mhsa.forward(xs);
  for (nt::index_t c = 0; c < 8; ++c) {
    EXPECT_NEAR(ys.at(0, c, 1, 1), y.at(0, c, 0, 0), 1e-4f);
    EXPECT_NEAR(ys.at(0, c, 0, 0), y.at(0, c, 1, 1), 1e-4f);
  }
}

TEST(Mhsa, RelativePosEncodingBreaksEquivariance) {
  nt::Rng rng(6);
  nn::MhsaConfig cfg{.dim = 8, .heads = 2, .height = 2, .width = 2,
                     .attention = nn::AttentionKind::kSoftmax,
                     .pos = nn::PosEncodingKind::kRelative2d, .layer_norm_out = false};
  nn::MultiHeadSelfAttention mhsa(cfg, rng);
  auto x = rng.randn(nt::Shape{1, 8, 2, 2});
  auto y = mhsa.forward(x);
  auto xs = x;
  for (nt::index_t c = 0; c < 8; ++c) std::swap(xs.at(0, c, 0, 0), xs.at(0, c, 1, 1));
  auto ys = mhsa.forward(xs);
  float diff = 0.0f;
  for (nt::index_t c = 0; c < 8; ++c) {
    diff += std::fabs(ys.at(0, c, 1, 1) - y.at(0, c, 0, 0));
  }
  EXPECT_GT(diff, 1e-3f);
}

TEST(Mhsa, RelativeMatrixIsRowPlusColumn) {
  nt::Rng rng(7);
  auto cfg = small_cfg(nn::AttentionKind::kRelu, nn::PosEncodingKind::kRelative2d);
  nn::MultiHeadSelfAttention mhsa(cfg, rng);
  auto r = mhsa.relative_matrix(0);
  EXPECT_EQ(r.shape(), (nt::Shape{9, 4}));
  // R[(y,x)] - R[(y,x')] must be independent of y (it equals Rw[x]-Rw[x']).
  auto d1 = r.slice0(0, 1) - r.slice0(1, 2);   // y=0: x=0 vs x=1
  auto d2 = r.slice0(3, 4) - r.slice0(4, 5);   // y=1: x=0 vs x=1
  EXPECT_TRUE(nt::allclose(d1, d2, 1e-5f, 1e-6f));
}

TEST(Mhsa, SoftmaxAttentionRowsSumToOneImpliesBoundedOutput) {
  // With softmax attention and V bounded, outputs are convex combinations.
  nt::Rng rng(8);
  nn::MhsaConfig cfg{.dim = 4, .heads = 1, .height = 2, .width = 2,
                     .attention = nn::AttentionKind::kSoftmax,
                     .pos = nn::PosEncodingKind::kNone, .layer_norm_out = false};
  nn::MultiHeadSelfAttention mhsa(cfg, rng);
  auto x = rng.randn(nt::Shape{1, 4, 2, 2});
  auto y = mhsa.forward(x);
  EXPECT_EQ(y.shape(), x.shape());
  EXPECT_LT(nt::max(nt::abs(y)), 100.0f);
}

TEST(Mhsa, ReluAttentionSparsifiesAttentionMap) {
  // [25]: ReLU attention zeroes out a substantial share of attention weights;
  // softmax never does.
  nt::Rng rng(9);
  auto cfg_relu = small_cfg(nn::AttentionKind::kRelu, nn::PosEncodingKind::kRelative2d);
  auto cfg_soft = small_cfg(nn::AttentionKind::kSoftmax, nn::PosEncodingKind::kRelative2d);
  nn::MultiHeadSelfAttention relu_attn(cfg_relu, rng);
  nn::MultiHeadSelfAttention soft_attn(cfg_soft, rng);
  auto x = rng.randn(nt::Shape{2, 8, 3, 3});
  relu_attn.forward(x);
  soft_attn.forward(x);
  EXPECT_GT(relu_attn.last_attention_sparsity(), 0.1f);
  EXPECT_EQ(soft_attn.last_attention_sparsity(), 0.0f);
}

TEST(Mhsa, GradCheckReluRelativeLayerNorm) {
  nt::Rng rng(10);
  nn::MhsaConfig cfg{.dim = 4, .heads = 2, .height = 2, .width = 2,
                     .attention = nn::AttentionKind::kRelu,
                     .pos = nn::PosEncodingKind::kRelative2d, .layer_norm_out = true};
  nn::MultiHeadSelfAttention mhsa(cfg, rng);
  auto x = rng.randn(nt::Shape{2, 4, 2, 2});
  // Smaller eps than the default: ReLU-attention logits sit near the kink and
  // a 1e-2 step can cross it, corrupting the numerical reference.
  nodetr::testing::expect_gradients_match(mhsa, x, /*seed=*/77, /*checks=*/6, /*eps=*/2e-3f,
                                          /*tol=*/6e-2f);
}

TEST(Mhsa, GradCheckSoftmaxAbsolute) {
  nt::Rng rng(11);
  nn::MhsaConfig cfg{.dim = 4, .heads = 1, .height = 2, .width = 2,
                     .attention = nn::AttentionKind::kSoftmax,
                     .pos = nn::PosEncodingKind::kAbsoluteSinusoidal, .layer_norm_out = false};
  nn::MultiHeadSelfAttention mhsa(cfg, rng);
  auto x = rng.randn(nt::Shape{1, 4, 2, 2});
  nodetr::testing::expect_gradients_match(mhsa, x, /*seed=*/78, /*checks=*/6, /*eps=*/1e-2f,
                                          /*tol=*/6e-2f);
}

TEST(MhsaBlock, PreservesShapeAndBottlenecks) {
  nt::Rng rng(12);
  nn::MhsaBlockConfig cfg{.channels = 16, .bottleneck_dim = 8, .heads = 2, .height = 3,
                          .width = 3};
  nn::MhsaBlock block(cfg, rng);
  auto x = rng.randn(nt::Shape{2, 16, 3, 3});
  EXPECT_EQ(block.forward(x).shape(), x.shape());
  EXPECT_EQ(block.mhsa().config().dim, 8);
}

TEST(MhsaBlock, ParameterCount) {
  nt::Rng rng(13);
  nn::MhsaBlockConfig cfg{.channels = 16, .bottleneck_dim = 8, .heads = 2, .height = 3,
                          .width = 3};
  nn::MhsaBlock block(cfg, rng);
  // bn_in 2*16 + reduce 16*8 + bn_mid 2*8 + mhsa(3*64 + 2*(3+3)*4 + 2*8)
  // + expand 8*16.
  const nt::index_t expected = 32 + 128 + 16 + (192 + 48 + 16) + 128;
  EXPECT_EQ(block.num_parameters(), expected);
}

TEST(MhsaBlock, GradCheck) {
  nt::Rng rng(14);
  nn::MhsaBlockConfig cfg{.channels = 8, .bottleneck_dim = 4, .heads = 2, .height = 2,
                          .width = 2};
  nn::MhsaBlock block(cfg, rng);
  block.train(true);
  auto x = rng.randn(nt::Shape{2, 8, 2, 2});
  nodetr::testing::expect_gradients_match(block, x, /*seed=*/79, /*checks=*/5, /*eps=*/1e-2f,
                                          /*tol=*/8e-2f);
}

TEST(Mhsa, AttentionWeightsAccessor) {
  nt::Rng rng(20);
  nn::MhsaConfig cfg{.dim = 8, .heads = 2, .height = 2, .width = 2,
                     .attention = nn::AttentionKind::kSoftmax,
                     .pos = nn::PosEncodingKind::kRelative2d, .layer_norm_out = false};
  nn::MultiHeadSelfAttention mhsa(cfg, rng);
  mhsa.forward(rng.randn(nt::Shape{2, 8, 2, 2}));
  const auto& a = mhsa.attention_weights(1, 0);
  EXPECT_EQ(a.shape(), (nt::Shape{4, 4}));
  for (nt::index_t r = 0; r < 4; ++r) {
    float s = 0.0f;
    for (nt::index_t c = 0; c < 4; ++c) s += a.at(r, c);
    EXPECT_NEAR(s, 1.0f, 1e-5f);  // softmax rows are distributions
  }
  EXPECT_THROW((void)mhsa.attention_weights(2, 0), std::out_of_range);
  EXPECT_THROW((void)mhsa.attention_weights(0, 2), std::out_of_range);
}

TEST(Mhsa, ReluAttentionWeightsNonNegative) {
  nt::Rng rng(21);
  nn::MhsaConfig cfg{.dim = 8, .heads = 2, .height = 2, .width = 2,
                     .attention = nn::AttentionKind::kRelu,
                     .pos = nn::PosEncodingKind::kRelative2d, .layer_norm_out = true};
  nn::MultiHeadSelfAttention mhsa(cfg, rng);
  mhsa.forward(rng.randn(nt::Shape{1, 8, 2, 2}));
  const auto& a = mhsa.attention_weights(0, 1);
  for (nt::index_t i = 0; i < a.numel(); ++i) EXPECT_GE(a[i], 0.0f);
}
