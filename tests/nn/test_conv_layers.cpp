#include "nodetr/nn/conv_layers.hpp"

#include <gtest/gtest.h>

#include "../common/gradcheck.hpp"

namespace nn = nodetr::nn;
namespace nt = nodetr::tensor;

TEST(Conv2dModule, OutputShape) {
  nt::Rng rng(1);
  nn::Conv2d conv(3, 8, 3, 2, 1, true, rng);
  auto x = rng.randn(nt::Shape{2, 3, 8, 8});
  auto y = conv.forward(x);
  EXPECT_EQ(y.shape(), (nt::Shape{2, 8, 4, 4}));
}

TEST(Conv2dModule, ParameterCount) {
  nt::Rng rng(2);
  nn::Conv2d with(3, 8, 3, 1, 1, true, rng);
  EXPECT_EQ(with.num_parameters(), 8 * 3 * 3 * 3 + 8);
  nn::Conv2d without(3, 8, 3, 1, 1, false, rng);
  EXPECT_EQ(without.num_parameters(), 8 * 3 * 3 * 3);
}

TEST(Conv2dModule, GradCheck) {
  nt::Rng rng(3);
  nn::Conv2d conv(2, 3, 3, 1, 1, true, rng);
  auto x = rng.randn(nt::Shape{1, 2, 4, 4});
  nodetr::testing::expect_gradients_match(conv, x);
}

TEST(Conv2dModule, GradCheckStride2) {
  nt::Rng rng(4);
  nn::Conv2d conv(2, 2, 3, 2, 1, false, rng);
  auto x = rng.randn(nt::Shape{2, 2, 5, 5});
  nodetr::testing::expect_gradients_match(conv, x);
}

TEST(DscModule, ParameterSizeFormula) {
  // Paper Sec. IV: DSC parameter size is N*K^2 + N*M (vs dense N*M*K^2).
  nt::Rng rng(5);
  const nt::index_t n = 16, m = 32, k = 3;
  nn::DepthwiseSeparableConv dsc(n, m, k, 1, 1, rng);
  EXPECT_EQ(dsc.num_parameters(), n * k * k + n * m);
  nn::Conv2d dense(n, m, k, 1, 1, false, rng);
  EXPECT_EQ(dense.num_parameters(), n * m * k * k);
  // Roughly K^2 reduction when N, M >> K.
  EXPECT_GT(static_cast<double>(dense.num_parameters()) / dsc.num_parameters(), 5.0);
}

TEST(DscModule, OutputShapePreservedWithSamePadding) {
  nt::Rng rng(6);
  nn::DepthwiseSeparableConv dsc(4, 8, 3, 1, 1, rng);
  auto x = rng.randn(nt::Shape{2, 4, 6, 6});
  EXPECT_EQ(dsc.forward(x).shape(), (nt::Shape{2, 8, 6, 6}));
}

TEST(DscModule, GradCheck) {
  nt::Rng rng(7);
  nn::DepthwiseSeparableConv dsc(3, 4, 3, 1, 1, rng);
  auto x = rng.randn(nt::Shape{1, 3, 4, 4});
  nodetr::testing::expect_gradients_match(dsc, x);
}
