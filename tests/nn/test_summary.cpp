#include "nodetr/nn/summary.hpp"

#include <gtest/gtest.h>

#include "nodetr/nn/activations.hpp"
#include "nodetr/nn/linear.hpp"
#include "nodetr/nn/sequential.hpp"

namespace nn = nodetr::nn;
namespace nt = nodetr::tensor;

TEST(WithCommas, Formats) {
  EXPECT_EQ(nn::with_commas(0), "0");
  EXPECT_EQ(nn::with_commas(999), "999");
  EXPECT_EQ(nn::with_commas(1000), "1,000");
  EXPECT_EQ(nn::with_commas(23522362), "23,522,362");
  EXPECT_EQ(nn::with_commas(-1234), "-1,234");
}

TEST(Summary, ShowsTreeWithCounts) {
  nt::Rng rng(1);
  nn::Sequential net;
  net.emplace<nn::Linear>(4, 8, true, rng);
  net.emplace<nn::ReLU>();
  net.emplace<nn::Linear>(8, 2, true, rng);
  const auto s = nn::summary(net);
  EXPECT_NE(s.find("Sequential[3]"), std::string::npos);
  EXPECT_NE(s.find("Linear(4->8)  (40 params)"), std::string::npos);
  EXPECT_NE(s.find("ReLU"), std::string::npos);
  // Root line carries the subtree total: 40 + 18.
  EXPECT_NE(s.find("[58 params total]"), std::string::npos);
}

TEST(Summary, NestedIndentation) {
  nt::Rng rng(2);
  auto inner = std::make_unique<nn::Sequential>();
  inner->emplace<nn::ReLU>();
  nn::Sequential outer;
  outer.push_back(std::move(inner));
  const auto s = nn::summary(outer);
  // Child at depth 1 gets two spaces, grandchild four.
  EXPECT_NE(s.find("\n  Sequential[1]"), std::string::npos);
  EXPECT_NE(s.find("\n    ReLU"), std::string::npos);
}
