#include <gtest/gtest.h>

#include "../common/gradcheck.hpp"
#include "nodetr/nn/conv_layers.hpp"
#include "nodetr/nn/linear.hpp"
#include "nodetr/nn/norm.hpp"
#include "nodetr/nn/residual.hpp"
#include "nodetr/nn/seq_attention.hpp"
#include "nodetr/nn/sequential.hpp"
#include "nodetr/tensor/ops.hpp"

namespace nn = nodetr::nn;
namespace nt = nodetr::tensor;

TEST(Residual, IdentitySkipAddsInput) {
  nt::Rng rng(1);
  auto body = std::make_unique<nn::Sequential>();
  body->emplace<nn::Conv2d>(2, 2, 3, 1, 1, false, rng);
  nn::Residual res(std::move(body), nullptr, /*final_relu=*/false);
  auto x = rng.randn(nt::Shape{1, 2, 4, 4});
  auto y = res.forward(x);
  // Zeroing the conv weight makes the block the identity.
  for (auto* p : res.parameters()) p->value.zero();
  EXPECT_TRUE(nt::allclose(res.forward(x), x, 0.0f, 0.0f));
  (void)y;
}

TEST(Residual, ProjectionSkipChangesShape) {
  nt::Rng rng(2);
  auto body = std::make_unique<nn::Sequential>();
  body->emplace<nn::Conv2d>(2, 4, 3, 2, 1, false, rng);
  auto skip = std::make_unique<nn::Sequential>();
  skip->emplace<nn::Conv2d>(2, 4, 1, 2, 0, false, rng);
  nn::Residual res(std::move(body), std::move(skip), true);
  auto x = rng.randn(nt::Shape{1, 2, 6, 6});
  EXPECT_EQ(res.forward(x).shape(), (nt::Shape{1, 4, 3, 3}));
}

TEST(Residual, FinalReluClamps) {
  nt::Rng rng(3);
  auto body = std::make_unique<nn::Sequential>();
  body->emplace<nn::Conv2d>(1, 1, 1, 1, 0, false, rng);
  nn::Residual res(std::move(body), nullptr, true);
  auto x = rng.randn(nt::Shape{2, 1, 3, 3});
  auto y = res.forward(x);
  EXPECT_GE(nt::min(y), 0.0f);
}

TEST(Residual, GradCheckIdentitySkip) {
  nt::Rng rng(4);
  auto body = std::make_unique<nn::Sequential>();
  body->emplace<nn::Conv2d>(2, 2, 3, 1, 1, false, rng);
  nn::Residual res(std::move(body), nullptr, true);
  auto x = rng.randn(nt::Shape{1, 2, 3, 3});
  nodetr::testing::expect_gradients_match(res, x, /*seed=*/11, /*checks=*/6, /*eps=*/2e-3f,
                                          /*tol=*/4e-2f);
}

TEST(Residual, GradCheckProjectionSkip) {
  nt::Rng rng(5);
  auto body = std::make_unique<nn::Sequential>();
  body->emplace<nn::Conv2d>(2, 4, 3, 2, 1, false, rng);
  auto skip = std::make_unique<nn::Sequential>();
  skip->emplace<nn::Conv2d>(2, 4, 1, 2, 0, false, rng);
  nn::Residual res(std::move(body), std::move(skip), false);
  auto x = rng.randn(nt::Shape{1, 2, 4, 4});
  nodetr::testing::expect_gradients_match(res, x);
}

TEST(Residual, NullBodyRejected) {
  EXPECT_THROW(nn::Residual(nullptr), std::invalid_argument);
}

TEST(SeqMhsa, ShapePreservedAndHeadsValidated) {
  nt::Rng rng(6);
  nn::SeqMhsa attn(8, 2, rng);
  auto x = rng.randn(nt::Shape{2, 5, 8});
  EXPECT_EQ(attn.forward(x).shape(), x.shape());
  EXPECT_THROW(nn::SeqMhsa(7, 2, rng), std::invalid_argument);
  EXPECT_THROW(attn.forward(nt::Tensor(nt::Shape{2, 5, 4})), std::invalid_argument);
}

TEST(SeqMhsa, NoBiasNoOutputProjectionParamCount) {
  // Faithful to the paper's Eq. 9: exactly 3 D*D projection matrices.
  nt::Rng rng(7);
  nn::SeqMhsa attn(16, 4, rng);
  EXPECT_EQ(attn.num_parameters(), 3 * 16 * 16);
}

TEST(SeqMhsa, PermutationEquivariantOverTokens) {
  nt::Rng rng(8);
  nn::SeqMhsa attn(8, 2, rng);
  auto x = rng.randn(nt::Shape{1, 4, 8});
  auto y = attn.forward(x);
  // Swap tokens 0 and 3.
  auto xs = x;
  for (nt::index_t c = 0; c < 8; ++c) std::swap(xs.at(0, 0, c), xs.at(0, 3, c));
  auto ys = attn.forward(xs);
  for (nt::index_t c = 0; c < 8; ++c) {
    EXPECT_NEAR(ys.at(0, 3, c), y.at(0, 0, c), 1e-4f);
    EXPECT_NEAR(ys.at(0, 0, c), y.at(0, 3, c), 1e-4f);
  }
}

TEST(SeqMhsa, GradCheck) {
  nt::Rng rng(9);
  nn::SeqMhsa attn(4, 2, rng);
  auto x = rng.randn(nt::Shape{2, 3, 4});
  nodetr::testing::expect_gradients_match(attn, x, /*seed=*/13, /*checks=*/6, /*eps=*/1e-2f,
                                          /*tol=*/5e-2f);
}
