#include "nodetr/nn/activations.hpp"

#include <gtest/gtest.h>

#include "../common/gradcheck.hpp"

namespace nn = nodetr::nn;
namespace nt = nodetr::tensor;

TEST(ReluModule, ForwardClampsAndBackwardMasks) {
  nn::ReLU relu;
  nt::Tensor x(nt::Shape{4}, std::vector<float>{-1.0f, 0.0f, 0.5f, 2.0f});
  auto y = relu.forward(x);
  EXPECT_EQ(y[0], 0.0f);
  EXPECT_EQ(y[1], 0.0f);
  EXPECT_EQ(y[2], 0.5f);
  nt::Tensor g(nt::Shape{4}, 1.0f);
  auto gx = relu.backward(g);
  EXPECT_EQ(gx[0], 0.0f);
  EXPECT_EQ(gx[1], 0.0f);  // subgradient 0 at exactly zero
  EXPECT_EQ(gx[2], 1.0f);
  EXPECT_EQ(gx[3], 1.0f);
}

TEST(ReluModule, GradCheck) {
  nn::ReLU relu;
  nt::Rng rng(1);
  auto x = rng.randn(nt::Shape{3, 7});
  nodetr::testing::expect_gradients_match(relu, x);
}

TEST(GeluModule, KnownValues) {
  nn::GELU gelu;
  nt::Tensor x(nt::Shape{3}, std::vector<float>{-10.0f, 0.0f, 10.0f});
  auto y = gelu.forward(x);
  EXPECT_NEAR(y[0], 0.0f, 1e-3f);
  EXPECT_NEAR(y[1], 0.0f, 1e-6f);
  EXPECT_NEAR(y[2], 10.0f, 1e-3f);
}

TEST(GeluModule, GradCheck) {
  nn::GELU gelu;
  nt::Rng rng(2);
  auto x = rng.randn(nt::Shape{4, 5});
  nodetr::testing::expect_gradients_match(gelu, x);
}

TEST(GeluModule, MonotoneAbovePositiveRegion) {
  nn::GELU gelu;
  nt::Tensor x(nt::Shape{2}, std::vector<float>{1.0f, 2.0f});
  auto y = gelu.forward(x);
  EXPECT_LT(y[0], y[1]);
}
