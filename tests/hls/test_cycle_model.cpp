#include "nodetr/hls/cycle_model.hpp"

#include <gtest/gtest.h>

namespace hls = nodetr::hls;

namespace {
// Table III reference values at (512ch, 3x3).
constexpr std::int64_t kProjOrig = 40158722;
constexpr std::int64_t kProjPar = 316009;
constexpr std::int64_t kQr = 74132;
constexpr std::int64_t kQk = 78740;
constexpr std::int64_t kRelu = 1701;
constexpr std::int64_t kAv = 370696;
// Table III Total rows (3x projections + attention stages + data movement).
constexpr std::int64_t kTotalOrig = 121866093;
constexpr std::int64_t kTotalPar = 2337954;

void expect_within(std::int64_t got, std::int64_t want, double tol, const char* what) {
  EXPECT_NEAR(static_cast<double>(got), static_cast<double>(want),
              tol * static_cast<double>(want))
      << what;
}
}  // namespace

TEST(CycleModel, Table3OriginalDesign) {
  hls::CycleModel model;
  auto point = hls::MhsaDesignPoint::botnet_512(hls::DataType::kFixed);
  point.parallel = hls::ParallelPlan::sequential();
  auto b = model.estimate(point);
  expect_within(b.projection_each, kProjOrig, 0.001, "projections");
  expect_within(b.qr, kQr, 0.001, "QR^T");
  expect_within(b.qk, kQk, 0.001, "QK^T");
  expect_within(b.relu, kRelu, 0.001, "ReLU");
  expect_within(b.av, kAv, 0.001, "AV");
  expect_within(b.total(), kTotalOrig, 0.01, "total");
}

TEST(CycleModel, Table3ParallelizedDesign) {
  hls::CycleModel model;
  auto point = hls::MhsaDesignPoint::botnet_512(hls::DataType::kFixed);
  auto b = model.estimate(point);
  expect_within(b.projection_each, kProjPar, 0.015, "projections");
  // Attention-side stages are unchanged by the projection unroll.
  expect_within(b.qr, kQr, 0.001, "QR^T");
  expect_within(b.av, kAv, 0.001, "AV");
  expect_within(b.total(), kTotalPar, 0.01, "total");
}

TEST(CycleModel, PaperSpeedups) {
  hls::CycleModel model;
  auto par = hls::MhsaDesignPoint::botnet_512(hls::DataType::kFixed);
  auto seq = par;
  seq.parallel = hls::ParallelPlan::sequential();
  const auto bp = model.estimate(par);
  const auto bs = model.estimate(seq);
  // "127x performance improvement of the matrix products and 52x overall".
  const double proj_speedup = static_cast<double>(bs.projection_each) / bp.projection_each;
  const double total_speedup = static_cast<double>(bs.total()) / bp.total();
  EXPECT_NEAR(proj_speedup, 127.0, 3.0);
  EXPECT_NEAR(total_speedup, 52.0, 2.0);
}

TEST(CycleModel, LatencyAt200MHz) {
  hls::CycleModel model;
  auto point = hls::MhsaDesignPoint::botnet_512(hls::DataType::kFixed);
  point.parallel = hls::ParallelPlan::sequential();
  auto b = model.estimate(point);
  // Table III: 40,158,722 cycles = 2.01e8 ns (5 ns/cycle), and the original
  // total 121,866,093 cycles = 6.09e8 ns.
  EXPECT_NEAR(b.projection_each * hls::CycleModel::kClockNs * 1e-8, 2.01, 0.01);
  EXPECT_NEAR(hls::CycleModel::latency_ns(b) * 1e-8, 6.09, 0.02);
}

TEST(CycleModel, ProposedPointIsMuchCheaper) {
  hls::CycleModel model;
  auto bot = model.estimate(hls::MhsaDesignPoint::botnet_512(hls::DataType::kFixed));
  auto prop = model.estimate(hls::MhsaDesignPoint::proposed_64(hls::DataType::kFixed), true);
  EXPECT_LT(prop.total(), bot.total());
}

TEST(CycleModel, UnrollScalesProjectionsOnly) {
  hls::CycleModel model;
  auto p64 = hls::MhsaDesignPoint::botnet_512(hls::DataType::kFixed);
  p64.parallel = {.partition = 32, .unroll = 64};
  auto p128 = hls::MhsaDesignPoint::botnet_512(hls::DataType::kFixed);
  const auto b64 = model.estimate(p64);
  const auto b128 = model.estimate(p128);
  EXPECT_NEAR(static_cast<double>(b64.projection_each) / b128.projection_each, 2.0, 0.1);
  EXPECT_EQ(b64.qk, b128.qk);
}

TEST(CycleModel, LayerNormTermOnlyWhenRequested) {
  hls::CycleModel model;
  auto point = hls::MhsaDesignPoint::proposed_64(hls::DataType::kFixed);
  EXPECT_EQ(model.estimate(point, false).layer_norm, 0);
  EXPECT_GT(model.estimate(point, true).layer_norm, 0);
}

TEST(CycleModel, FloatDatapathSlowerThanFixed) {
  // Calibrated to Table IX: the float IP's MACs run at ~2x the initiation
  // interval, so its compute stages take about twice as long; streaming is
  // data-width bound and unchanged.
  hls::CycleModel model;
  auto fixed = model.estimate(hls::MhsaDesignPoint::proposed_64(hls::DataType::kFixed));
  auto flt = model.estimate(hls::MhsaDesignPoint::proposed_64(hls::DataType::kFloat32));
  EXPECT_NEAR(static_cast<double>(flt.av) / fixed.av, 2.0, 0.05);
  EXPECT_EQ(flt.streaming, fixed.streaming);
  EXPECT_GT(flt.total(), fixed.total());
}

TEST(DesignPoint, FactoryAndToString) {
  auto p = hls::MhsaDesignPoint::proposed_64(hls::DataType::kFixed);
  EXPECT_EQ(p.dim, 64);
  EXPECT_EQ(p.tokens(), 36);
  EXPECT_EQ(p.head_dim(), 16);
  EXPECT_NE(p.to_string().find("64ch, 6x6"), std::string::npos);
  auto f = hls::MhsaDesignPoint::botnet_512(hls::DataType::kFloat32);
  EXPECT_NE(f.to_string().find("floating point"), std::string::npos);
}

TEST(DesignPoint, WireToString) {
  auto p = hls::MhsaDesignPoint::proposed_64(hls::DataType::kFixed);
  EXPECT_EQ(p.to_string().find("weight wire"), std::string::npos);  // word32 is silent
  p.wire = hls::WeightWire::kBlockInt8;
  EXPECT_NE(p.to_string().find("block_int8/32 weight wire"), std::string::npos);
  p.wire = hls::WeightWire::kBlockInt4;
  p.wire_block = 64;
  EXPECT_NE(p.to_string().find("block_int4/64 weight wire"), std::string::npos);
}

TEST(CycleModel, QuantizedWireShrinksWeightStreamingOnly) {
  // The weight share of the streaming stage rides the wire; feature maps
  // always move at full width. int8 at block 32 moves (32+4)/128 of the
  // word32 weight words, int4 half the codes again.
  hls::CycleModel model;
  auto point = hls::MhsaDesignPoint::proposed_64(hls::DataType::kFixed);
  const auto w32 = model.weight_stream_cycles(point);
  const auto full = model.estimate(point);
  point.wire = hls::WeightWire::kBlockInt8;
  const auto w8 = model.weight_stream_cycles(point);
  const auto int8 = model.estimate(point);
  point.wire = hls::WeightWire::kBlockInt4;
  const auto w4 = model.weight_stream_cycles(point);
  EXPECT_NEAR(static_cast<double>(w32) / static_cast<double>(w8), 128.0 / 36.0, 0.01);
  EXPECT_LT(w4, w8);
  // Streaming shrinks; compute stages are untouched by the wire.
  EXPECT_LT(int8.streaming, full.streaming);
  EXPECT_EQ(int8.projection_each, full.projection_each);
  EXPECT_EQ(int8.av, full.av);
}
