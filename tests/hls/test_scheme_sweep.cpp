// Parameterized sweep over the paper's five quantization schemes: invariants
// that must hold for EVERY format (Table VIII's rows), exercised end to end
// through the full fixed-point executor.
#include <gtest/gtest.h>

#include "nodetr/hls/qexec.hpp"
#include "nodetr/models/zoo.hpp"
#include "nodetr/tensor/ops.hpp"

namespace hls = nodetr::hls;
namespace m = nodetr::models;
namespace nt = nodetr::tensor;
namespace fx = nodetr::fx;

namespace {

struct SchemeCase {
  fx::QuantizationScheme scheme;
  float logit_error_bound;  ///< loose per-format cap on mean |Δlogit|
};

class SchemeSweep : public ::testing::TestWithParam<SchemeCase> {
 protected:
  static nodetr::nn::Module& model() {
    static nt::Rng rng(0x5c4);
    static auto net = m::make_model(m::ModelKind::kTinyProposed, 32, 10, rng);
    net->train(false);
    return *net;
  }
  static const nt::Tensor& input() {
    static nt::Rng rng(0x5c5);
    static nt::Tensor x = rng.rand(nt::Shape{2, 3, 32, 32});
    return x;
  }
  static const nt::Tensor& reference() {
    static nt::Tensor ref = model().forward(input());
    return ref;
  }
};

}  // namespace

TEST_P(SchemeSweep, FullModelOutputFiniteAndShapeCorrect) {
  hls::QuantizedExecutor exec(GetParam().scheme);
  auto q = exec.run(model(), input());
  ASSERT_EQ(q.shape(), reference().shape());
  for (nt::index_t i = 0; i < q.numel(); ++i) EXPECT_FALSE(std::isnan(q[i]));
}

TEST_P(SchemeSweep, LogitErrorBounded) {
  hls::QuantizedExecutor exec(GetParam().scheme);
  auto q = exec.run(model(), input());
  EXPECT_LE(nt::mean_abs_diff(q, reference()), GetParam().logit_error_bound)
      << GetParam().scheme.to_string();
}

TEST_P(SchemeSweep, BitExactDeterminism) {
  hls::QuantizedExecutor a(GetParam().scheme), b(GetParam().scheme);
  auto ya = a.run(model(), input());
  auto yb = b.run(model(), input());
  EXPECT_TRUE(nt::allclose(ya, yb, 0.0f, 0.0f)) << GetParam().scheme.to_string();
}

TEST_P(SchemeSweep, FeatureFormatRangeCoversUnitActivations) {
  // Every Table VIII feature format must represent at least [-1, 1] with
  // resolution finer than 1/128 — otherwise even the input image degrades.
  const auto f = GetParam().scheme.feature;
  EXPECT_GE(f.max_value(), 1.0);
  EXPECT_LE(f.min_value(), -1.0);
  EXPECT_LE(f.resolution(), 1.0 / 128.0);
}

INSTANTIATE_TEST_SUITE_P(
    Table8, SchemeSweep,
    // Bounds: ~4x headroom over errors measured on the untrained reference
    // model (an untrained net has far larger activation spread than a
    // trained one, so these are loose).
    ::testing::Values(SchemeCase{fx::scheme_32_24(), 5e-3f},
                      SchemeCase{fx::scheme_24_20(), 1.0f},
                      SchemeCase{fx::scheme_20_16(), 2.0f},
                      SchemeCase{fx::scheme_18_14(), 2.5f},
                      SchemeCase{fx::scheme_16_12(), 3.0f}),
    [](const ::testing::TestParamInfo<SchemeCase>& info) {
      std::string n = info.param.scheme.to_string();
      for (char& c : n) {
        if (c == '(' || c == ')' || c == '-') c = '_';
      }
      return n;
    });
