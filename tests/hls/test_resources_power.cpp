#include <gtest/gtest.h>

#include "nodetr/hls/power.hpp"
#include "nodetr/hls/resources.hpp"

namespace hls = nodetr::hls;

TEST(Resources, Table1CalibratedPoints) {
  hls::ResourceModel model;
  auto flt = model.estimate(
      hls::MhsaDesignPoint::botnet_512(hls::DataType::kFloat32, hls::BufferPlan::kNaive7));
  EXPECT_EQ(flt.bram18, 1716);
  EXPECT_EQ(flt.dsp, 680);
  EXPECT_EQ(flt.ff, 89912);
  EXPECT_EQ(flt.lut, 112698);
  auto fix = model.estimate(
      hls::MhsaDesignPoint::botnet_512(hls::DataType::kFixed, hls::BufferPlan::kNaive7));
  EXPECT_EQ(fix.bram18, 1396);
  EXPECT_EQ(fix.dsp, 137);
}

TEST(Resources, Table2BufferManagementMakesItFit) {
  hls::ResourceModel model;
  auto naive = model.estimate(
      hls::MhsaDesignPoint::botnet_512(hls::DataType::kFixed, hls::BufferPlan::kNaive7));
  auto shared = model.estimate(
      hls::MhsaDesignPoint::botnet_512(hls::DataType::kFixed, hls::BufferPlan::kShared5));
  EXPECT_EQ(shared.bram18, 559);
  // Before: 233% BRAM (infeasible); after: 89% (fits).
  EXPECT_FALSE(hls::Zcu104::fits(naive));
  EXPECT_TRUE(hls::Zcu104::fits(shared));
  EXPECT_NEAR(hls::Zcu104::bram_pct(naive), 233.0, 21.0);
  EXPECT_NEAR(hls::Zcu104::bram_pct(shared), 89.0, 1.0);
}

TEST(Resources, Table7AllFourSynthesizedPoints) {
  hls::ResourceModel model;
  auto bot_f = model.estimate(hls::MhsaDesignPoint::botnet_512(hls::DataType::kFloat32));
  EXPECT_EQ(bot_f.bram18, 693);
  EXPECT_EQ(bot_f.ff, 101851);
  auto bot_q = model.estimate(hls::MhsaDesignPoint::botnet_512(hls::DataType::kFixed));
  EXPECT_EQ(bot_q.lut, 55842);
  auto prop_f = model.estimate(hls::MhsaDesignPoint::proposed_64(hls::DataType::kFloat32));
  EXPECT_EQ(prop_f.bram18, 441);
  EXPECT_EQ(prop_f.dsp, 868);
  auto prop_q = model.estimate(hls::MhsaDesignPoint::proposed_64(hls::DataType::kFixed));
  EXPECT_EQ(prop_q.bram18, 433);
  EXPECT_EQ(prop_q.dsp, 212);
  // Fixed point cuts DSP/FF/LUT sharply at both geometries (Sec. VI-B4).
  EXPECT_LT(prop_q.dsp, prop_f.dsp);
  EXPECT_LT(prop_q.ff, prop_f.ff);
  EXPECT_LT(bot_q.lut, bot_f.lut);
}

TEST(Resources, AnalyticModelTrends) {
  hls::ResourceModel model;
  // Shared buffers use less BRAM than naive at any point.
  auto p_naive = hls::MhsaDesignPoint::botnet_512(hls::DataType::kFixed, hls::BufferPlan::kNaive7);
  auto p_shared = hls::MhsaDesignPoint::botnet_512(hls::DataType::kFixed,
                                                   hls::BufferPlan::kShared5);
  EXPECT_LT(model.analytic(p_shared).bram18, model.analytic(p_naive).bram18);
  // Fixed point needs fewer DSPs than float at equal unroll.
  auto p_float = p_shared;
  p_float.dtype = hls::DataType::kFloat32;
  EXPECT_LT(model.analytic(p_shared).dsp, model.analytic(p_float).dsp);
  // Wider unroll costs more DSPs.
  auto wide = p_shared;
  wide.parallel.unroll = 256;
  EXPECT_GT(model.analytic(wide).dsp, model.analytic(p_shared).dsp);
  // Bigger D needs more weight BRAM.
  auto small = p_shared;
  small.dim = 128;
  EXPECT_LT(model.analytic(small).bram18, model.analytic(p_shared).bram18);
}

TEST(Resources, AnalyticRoughlyTracksCalibration) {
  // The analytic model should land within ~40% of the synthesized BRAM for
  // the big weight-dominated point (it exists to extrapolate, not replace).
  hls::ResourceModel model;
  auto p = hls::MhsaDesignPoint::botnet_512(hls::DataType::kFixed, hls::BufferPlan::kNaive7);
  const auto a = model.analytic(p);
  EXPECT_NEAR(static_cast<double>(a.bram18), 1396.0, 0.4 * 1396.0);
}

TEST(Resources, OffTablePointUsesAnalytic) {
  hls::ResourceModel model;
  auto p = hls::MhsaDesignPoint::botnet_512(hls::DataType::kFixed);
  p.dim = 256;  // not a paper point
  EXPECT_FALSE(model.calibrated(p).has_value());
  EXPECT_GT(model.estimate(p).bram18, 0);
}

TEST(Power, PaperMeasurementsReproduced) {
  hls::PowerModel power;
  hls::ResourceModel res;
  auto fixed = res.estimate(hls::MhsaDesignPoint::botnet_512(hls::DataType::kFixed));
  auto flt = res.estimate(hls::MhsaDesignPoint::botnet_512(hls::DataType::kFloat32));
  EXPECT_NEAR(power.ip_watts(fixed), 0.866, 1e-3);
  EXPECT_NEAR(power.ip_watts(flt), 3.977, 1e-3);
}

TEST(Power, Sec6B7EnergyEfficiencyGain) {
  // Paper: fixed-point accel is 2.63x faster, total power 1.33x higher,
  // energy efficiency 1.98x better.
  hls::PowerModel power;
  hls::ResourceModel res;
  auto fixed = res.estimate(hls::MhsaDesignPoint::botnet_512(hls::DataType::kFixed));
  const double cpu_ms = 35.18, accel_ms = 13.37;  // Table IX
  const double power_ratio = power.accelerated_watts(fixed) / hls::PowerModel::kPsWatts;
  EXPECT_NEAR(power_ratio, 1.33, 0.01);
  EXPECT_NEAR(power.efficiency_gain(cpu_ms, accel_ms, fixed), 1.98, 0.02);
}

TEST(Power, MoreDspMorePower) {
  hls::PowerModel power;
  hls::ResourceUsage lo{.bram18 = 100, .dsp = 100, .ff = 0, .lut = 0};
  hls::ResourceUsage hi{.bram18 = 100, .dsp = 800, .ff = 0, .lut = 0};
  EXPECT_LT(power.ip_watts(lo), power.ip_watts(hi));
}
