#include "nodetr/hls/qexec.hpp"

#include <gtest/gtest.h>

#include "nodetr/models/zoo.hpp"
#include "nodetr/tensor/ops.hpp"

namespace hls = nodetr::hls;
namespace nn = nodetr::nn;
namespace m = nodetr::models;
namespace nt = nodetr::tensor;
namespace fx = nodetr::fx;

namespace {
hls::QuantizedExecutor default_exec() { return hls::QuantizedExecutor(fx::scheme_32_24()); }
}  // namespace

TEST(QExec, ConvLayerMatchesFloat) {
  nt::Rng rng(1);
  nn::Conv2d conv(3, 4, 3, 1, 1, true, rng);
  conv.train(false);
  auto x = rng.randn(nt::Shape{2, 3, 5, 5});
  auto exec = default_exec();
  EXPECT_LE(nt::max_abs_diff(exec.run(conv, x), conv.forward(x)), 2e-2f);
}

TEST(QExec, SequentialChainMatchesFloat) {
  nt::Rng rng(2);
  nn::Sequential net;
  net.emplace<nn::Conv2d>(3, 8, 3, 2, 1, false, rng);
  net.emplace<nn::BatchNorm2d>(8);
  net.emplace<nn::ReLU>();
  net.emplace<nn::MaxPool2d>(3, 2, 1);
  net.emplace<nn::GlobalAvgPool>();
  net.emplace<nn::Linear>(8, 4, true, rng);
  // Prime BN running stats, then evaluate.
  net.train(true);
  for (int i = 0; i < 10; ++i) (void)net.forward(rng.rand(nt::Shape{4, 3, 16, 16}));
  net.train(false);
  auto x = rng.rand(nt::Shape{2, 3, 16, 16});
  auto exec = default_exec();
  EXPECT_LE(nt::max_abs_diff(exec.run(net, x), net.forward(x)), 5e-2f);
}

TEST(QExec, FullProposedModelMatchesFloatAtWideFormat) {
  nt::Rng rng(3);
  auto model = m::make_model(m::ModelKind::kTinyProposed, 32, 10, rng);
  model->train(false);
  auto x = rng.rand(nt::Shape{2, 3, 32, 32});
  auto ref = model->forward(x);
  auto exec = default_exec();
  auto q = exec.run(*model, x);
  EXPECT_EQ(q.shape(), ref.shape());
  // 32(16)-24(8): the paper's "no degradation" point.
  EXPECT_LE(nt::max_abs_diff(q, ref), 0.05f);
}

TEST(QExec, FullOdeNetMatchesFloat) {
  nt::Rng rng(4);
  auto model = m::make_model(m::ModelKind::kTinyOdeNet, 32, 10, rng);
  model->train(false);
  auto x = rng.rand(nt::Shape{1, 3, 32, 32});
  auto exec = default_exec();
  EXPECT_LE(nt::max_abs_diff(exec.run(*model, x), model->forward(x)), 0.05f);
}

TEST(QExec, ErrorGrowsWithNarrowerSchemes) {
  nt::Rng rng(5);
  auto model = m::make_model(m::ModelKind::kTinyProposed, 32, 10, rng);
  model->train(false);
  auto x = rng.rand(nt::Shape{1, 3, 32, 32});
  auto ref = model->forward(x);
  float prev = -1.0f;
  for (const auto& scheme : fx::table8_schemes()) {
    hls::QuantizedExecutor exec(scheme);
    const float err = nt::mean_abs_diff(exec.run(*model, x), ref);
    EXPECT_GE(err, prev * 0.3f) << scheme.to_string();
    prev = std::max(prev, err);
  }
  EXPECT_GT(prev, 1e-3f);
}

TEST(QExec, DeterministicBitExactAcrossRuns) {
  nt::Rng rng(6);
  auto model = m::make_model(m::ModelKind::kTinyProposed, 32, 10, rng);
  model->train(false);
  auto x = rng.rand(nt::Shape{1, 3, 32, 32});
  hls::QuantizedExecutor exec(fx::scheme_20_16());
  auto a = exec.run(*model, x);
  auto b = exec.run(*model, x);
  EXPECT_TRUE(nt::allclose(a, b, 0.0f, 0.0f));
}

TEST(QExec, RejectsUnsupportedModules) {
  nt::Rng rng(7);
  nn::SeqMhsa unsupported(8, 2, rng);
  auto exec = default_exec();
  EXPECT_THROW((void)exec.run(unsupported, nt::Tensor(nt::Shape{1, 3, 8})),
               std::invalid_argument);
}

TEST(QExec, RejectsNonEulerOdeBlocks) {
  nt::Rng rng(8);
  auto model = m::make_model(m::ModelKind::kTinyOdeNet, 32, 10, rng);
  model->train(false);
  auto* onet = static_cast<m::OdeNet*>(model.get());
  for (auto* b : onet->ode_blocks()) b->set_solver(nodetr::ode::SolverKind::kRk4);
  auto exec = default_exec();
  EXPECT_THROW((void)exec.run(*model, nt::Tensor(nt::Shape{1, 3, 32, 32})),
               std::invalid_argument);
}
