#include "nodetr/hls/quantize.hpp"

#include <gtest/gtest.h>

#include "nodetr/nn/activations.hpp"
#include "nodetr/nn/linear.hpp"
#include "nodetr/tensor/ops.hpp"

namespace hls = nodetr::hls;
namespace nn = nodetr::nn;
namespace nt = nodetr::tensor;
namespace fx = nodetr::fx;

TEST(ScopedParamQuantization, QuantizesAndRestores) {
  nt::Rng rng(1);
  nn::Linear lin(8, 4, true, rng);
  const nt::Tensor original = lin.weight().value;
  {
    hls::ScopedParamQuantization q(lin, fx::FixedFormat{8, 4});
    // Values are on the 1/16 grid.
    for (nt::index_t i = 0; i < lin.weight().value.numel(); ++i) {
      const float v = lin.weight().value[i] * 16.0f;
      EXPECT_NEAR(v, std::round(v), 1e-4f);
    }
    // Coarse grid actually changed something.
    EXPECT_GT(nt::max_abs_diff(lin.weight().value, original), 0.0f);
  }
  EXPECT_TRUE(nt::allclose(lin.weight().value, original, 0.0f, 0.0f));
}

TEST(ActivationQuantizer, RoundsAndSaturates) {
  auto hook = hls::activation_quantizer(fx::FixedFormat{8, 4});
  nt::Tensor t(nt::Shape{3}, std::vector<float>{0.3f, 100.0f, -100.0f});
  auto q = hook(t);
  EXPECT_NEAR(q[0], 0.3125f, 1e-5f);   // nearest 1/16 step
  EXPECT_NEAR(q[1], 7.9375f, 1e-5f);   // saturated max (+qmax)
  EXPECT_NEAR(q[2], -7.9375f, 1e-5f);  // saturated min: symmetric at -qmax,
                                       // never the unnegatable raw INT_MIN
}

TEST(ActivationQuantization, InstalledOnNestedSequentials) {
  nt::Rng rng(2);
  auto inner = std::make_unique<nn::Sequential>();
  inner->emplace<nn::ReLU>();
  nn::Sequential outer;
  outer.push_back(std::move(inner));
  outer.emplace<nn::ReLU>();
  hls::set_activation_quantization(outer, fx::FixedFormat{8, 4});
  EXPECT_TRUE(outer.has_activation_hook());
  EXPECT_TRUE(static_cast<nn::Sequential&>(outer[0]).has_activation_hook());
  // Backward is blocked while quantized.
  auto x = rng.rand(nt::Shape{2, 2});
  auto y = outer.forward(x);
  EXPECT_THROW((void)outer.backward(y), std::logic_error);
  hls::clear_activation_quantization(outer);
  EXPECT_FALSE(outer.has_activation_hook());
  (void)outer.forward(x);
  (void)outer.backward(y);  // works again
}

TEST(ActivationQuantization, WideFormatIsNearLossless) {
  nt::Rng rng(3);
  nn::Sequential net;
  net.emplace<nn::Linear>(6, 6, true, rng);
  net.emplace<nn::ReLU>();
  auto x = rng.randn(nt::Shape{4, 6});
  auto ref = net.forward(x);
  net.set_activation_hook(hls::activation_quantizer(fx::kFeature32));
  auto q = net.forward(x);
  EXPECT_LT(nt::max_abs_diff(q, ref), 1e-4f);
}

TEST(ActivationQuantization, NarrowFormatDistortsMore) {
  nt::Rng rng(4);
  nn::Sequential net;
  net.emplace<nn::Linear>(6, 6, true, rng);
  net.emplace<nn::ReLU>();
  net.emplace<nn::Linear>(6, 6, true, rng);
  auto x = rng.randn(nt::Shape{4, 6});
  auto ref = net.forward(x);
  net.set_activation_hook(hls::activation_quantizer(fx::FixedFormat{16, 8}));
  const float err_wide = nt::max_abs_diff(net.forward(x), ref);
  net.set_activation_hook(hls::activation_quantizer(fx::FixedFormat{8, 4}));
  const float err_narrow = nt::max_abs_diff(net.forward(x), ref);
  EXPECT_GT(err_narrow, err_wide);
}
