#include "nodetr/hls/mhsa_ip.hpp"

#include <gtest/gtest.h>

#include "nodetr/tensor/ops.hpp"
#include "nodetr/tensor/rng.hpp"

namespace hls = nodetr::hls;
namespace nn = nodetr::nn;
namespace nt = nodetr::tensor;
namespace fx = nodetr::fx;

namespace {

nn::MhsaConfig module_cfg() {
  return {.dim = 16, .heads = 4, .height = 3, .width = 3,
          .attention = nn::AttentionKind::kRelu, .pos = nn::PosEncodingKind::kRelative2d,
          .layer_norm_out = true};
}

hls::MhsaDesignPoint matching_point(hls::DataType dtype) {
  hls::MhsaDesignPoint p;
  p.dim = 16;
  p.height = p.width = 3;
  p.heads = 4;
  p.dtype = dtype;
  return p;
}

}  // namespace

TEST(MhsaIp, FloatPathMatchesSoftwareModule) {
  nt::Rng rng(1);
  nn::MultiHeadSelfAttention mhsa(module_cfg(), rng);
  mhsa.train(false);
  auto x = rng.randn(nt::Shape{2, 16, 3, 3});
  auto sw = mhsa.forward(x);
  hls::MhsaIpCore ip(matching_point(hls::DataType::kFloat32),
                     hls::MhsaWeights::from_module(mhsa));
  auto hw = ip.run(x);
  EXPECT_TRUE(nt::allclose(hw, sw, 1e-4f, 1e-5f));
}

TEST(MhsaIp, FixedPathTracksFloatWithinQuantError) {
  nt::Rng rng(2);
  nn::MultiHeadSelfAttention mhsa(module_cfg(), rng);
  mhsa.train(false);
  auto x = rng.randn(nt::Shape{1, 16, 3, 3});
  auto sw = mhsa.forward(x);
  auto point = matching_point(hls::DataType::kFixed);  // 32(16)-24(8)
  hls::MhsaIpCore ip(point, hls::MhsaWeights::from_module(mhsa));
  auto hw = ip.run(x);
  // Paper (Table VIII): 32(16)-24(8) shows no degradation.
  EXPECT_LT(nt::max_abs_diff(hw, sw), 5e-3f);
}

TEST(MhsaIp, FixedErrorGrowsAsFormatsNarrow) {
  // Fig. 9/10 premise: value differences grow monotonically as the format
  // narrows, exploding for 16(8)-12(4).
  nt::Rng rng(3);
  nn::MultiHeadSelfAttention mhsa(module_cfg(), rng);
  mhsa.train(false);
  auto x = rng.randn(nt::Shape{1, 16, 3, 3});
  auto sw = mhsa.forward(x);
  float prev = -1.0f;
  for (const auto& scheme : fx::table8_schemes()) {
    auto point = matching_point(hls::DataType::kFixed);
    point.scheme = scheme;
    hls::MhsaIpCore ip(point, hls::MhsaWeights::from_module(mhsa));
    const float err = nt::mean_abs_diff(ip.run(x), sw);
    EXPECT_GE(err, prev * 0.5f) << scheme.to_string();  // allow small non-monotone noise
    prev = std::max(prev, err);
  }
  EXPECT_GT(prev, 1e-3f);  // the narrowest format has visible error
}

TEST(MhsaIp, DeterministicAcrossRuns) {
  nt::Rng rng(4);
  nn::MultiHeadSelfAttention mhsa(module_cfg(), rng);
  auto x = rng.randn(nt::Shape{1, 16, 3, 3});
  hls::MhsaIpCore ip(matching_point(hls::DataType::kFixed), hls::MhsaWeights::from_module(mhsa));
  auto a = ip.run(x);
  auto b = ip.run(x);
  EXPECT_TRUE(nt::allclose(a, b, 0.0f, 0.0f));
}

TEST(MhsaIp, CyclesScaleWithBatch) {
  nt::Rng rng(5);
  nn::MultiHeadSelfAttention mhsa(module_cfg(), rng);
  hls::MhsaIpCore ip(matching_point(hls::DataType::kFixed), hls::MhsaWeights::from_module(mhsa));
  ip.run(rng.randn(nt::Shape{1, 16, 3, 3}));
  const auto one = ip.last_cycles().total();
  ip.run(rng.randn(nt::Shape{3, 16, 3, 3}));
  EXPECT_EQ(ip.last_cycles().total(), 3 * one);
}

TEST(MhsaIp, Rank3InputSqueezed) {
  nt::Rng rng(6);
  nn::MultiHeadSelfAttention mhsa(module_cfg(), rng);
  hls::MhsaIpCore ip(matching_point(hls::DataType::kFloat32), hls::MhsaWeights::from_module(mhsa));
  auto y = ip.run(rng.randn(nt::Shape{16, 3, 3}));
  EXPECT_EQ(y.shape(), (nt::Shape{16, 3, 3}));
}

TEST(MhsaIp, RejectsGeometryMismatch) {
  nt::Rng rng(7);
  nn::MultiHeadSelfAttention mhsa(module_cfg(), rng);
  hls::MhsaIpCore ip(matching_point(hls::DataType::kFloat32), hls::MhsaWeights::from_module(mhsa));
  EXPECT_THROW(ip.run(nt::Tensor(nt::Shape{1, 16, 4, 4})), std::invalid_argument);
  auto bad_point = matching_point(hls::DataType::kFloat32);
  bad_point.dim = 32;
  EXPECT_THROW(hls::MhsaIpCore(bad_point, hls::MhsaWeights::from_module(mhsa)),
               std::invalid_argument);
}

TEST(MhsaIp, DmaBytesAccountsAllStreams) {
  nt::Rng rng(8);
  nn::MultiHeadSelfAttention mhsa(module_cfg(), rng);
  hls::MhsaIpCore ip(matching_point(hls::DataType::kFixed), hls::MhsaWeights::from_module(mhsa));
  // in/out: 2*9*16; weights 3*16*16; rel 4*(3+3)*4; ln 2*16 — all x4 bytes.
  const std::int64_t words = 2 * 9 * 16 + 3 * 16 * 16 + 4 * 6 * 4 + 32;
  EXPECT_EQ(ip.dma_bytes_per_image(), words * 4);
}

TEST(MhsaIp, OverrideHookRoutesModuleThroughIp) {
  nt::Rng rng(9);
  nn::MultiHeadSelfAttention mhsa(module_cfg(), rng);
  mhsa.train(false);
  auto x = rng.randn(nt::Shape{1, 16, 3, 3});
  auto sw = mhsa.forward(x);
  auto ip = std::make_shared<hls::MhsaIpCore>(matching_point(hls::DataType::kFloat32),
                                              hls::MhsaWeights::from_module(mhsa));
  mhsa.set_forward_override(
      [ip](const nt::Tensor& in, nn::MultiHeadSelfAttention&) { return ip->run(in); });
  auto hw = mhsa.forward(x);
  EXPECT_TRUE(nt::allclose(hw, sw, 1e-4f, 1e-5f));
  EXPECT_THROW(mhsa.backward(nt::Tensor(sw.shape())), std::logic_error);
  mhsa.clear_forward_override();
  EXPECT_FALSE(mhsa.has_forward_override());
}
