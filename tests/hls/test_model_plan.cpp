#include "nodetr/hls/model_plan.hpp"

#include <gtest/gtest.h>

namespace hls = nodetr::hls;
namespace nt = nodetr::tensor;

TEST(ConvCycleModel, MacCountsExact) {
  hls::ConvCycleModel m(128);
  // Dense conv: Cin*Cout*K^2*Ho*Wo.
  EXPECT_EQ(m.conv2d("c", 3, 64, 3, 48, 48).macs, 3LL * 64 * 9 * 48 * 48);
  // DSC: (Cin*K^2 + Cin*Cout) * Ho*Wo.
  EXPECT_EQ(m.depthwise_separable("d", 64, 64, 3, 24, 24).macs,
            (64LL * 9 + 64 * 64) * 24 * 24);
  EXPECT_EQ(m.linear("l", 256, 10).macs, 2560);
  EXPECT_EQ(m.elementwise("e", 100).macs, 0);
}

TEST(ConvCycleModel, UnrollSpeedsUpMacLayers) {
  hls::ConvCycleModel seq(1), par(128);
  const auto s = seq.conv2d("c", 64, 128, 3, 12, 12);
  const auto p = par.conv2d("c", 64, 128, 3, 12, 12);
  EXPECT_GT(s.cycles, 50 * p.cycles);
  // Elementwise layers are already pipelined — unroll independent.
  EXPECT_EQ(seq.elementwise("e", 1000).cycles, par.elementwise("e", 1000).cycles);
}

TEST(ProposedModelPlan, StructureAndTotals) {
  const auto plan = hls::plan_proposed_model(96, 6, 128);
  EXPECT_EQ(plan.solver_steps, 6);
  EXPECT_FALSE(plan.layers.empty());
  EXPECT_GT(plan.mhsa_cycles(), 0);
  // Total covers all layers plus the per-step MHSA.
  std::int64_t layer_sum = 0;
  for (const auto& l : plan.layers) layer_sum += l.cycles;
  EXPECT_EQ(plan.total_cycles(), layer_sum + plan.mhsa_cycles());
  EXPECT_GT(plan.total_ms(), 0.0);
}

TEST(ProposedModelPlan, MoreSolverStepsCostMore) {
  const auto c3 = hls::plan_proposed_model(96, 3, 128);
  const auto c12 = hls::plan_proposed_model(96, 12, 128);
  EXPECT_GT(c12.total_cycles(), c3.total_cycles());
  // MHSA share scales exactly with the step count.
  EXPECT_EQ(c12.mhsa_cycles(), 4 * c3.mhsa_cycles());
}

TEST(ProposedModelPlan, SmallerImagesAreCheaper) {
  const auto big = hls::plan_proposed_model(96, 6, 128);
  const auto small = hls::plan_proposed_model(32, 6, 128);
  // Conv stages shrink with the image; (the fixed 6x6 MHSA point dominates
  // less at 96px than the convs, so compare layer sums).
  std::int64_t big_sum = 0, small_sum = 0;
  for (const auto& l : big.layers) big_sum += l.cycles;
  for (const auto& l : small.layers) small_sum += l.cycles;
  EXPECT_GT(big_sum, small_sum);
}
