// nodetr::fault::Injector semantics: schedules, determinism, and the
// zero-cost dormant path.
#include "fault_fixture.hpp"

#include <algorithm>
#include <vector>

namespace fault = nodetr::fault;
using nodetr::testing::FaultTest;

TEST_F(FaultTest, DormantSiteNeverFires) {
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(fault::fire("test.dormant"));
  }
  EXPECT_FALSE(fault::Injector::instance().armed());
}

TEST_F(FaultTest, OnceFiresAtExactlyTheRequestedOp) {
  auto& inj = fault::Injector::instance();
  inj.arm("test.once", fault::Schedule::once(3));
  std::vector<bool> fired;
  for (int i = 0; i < 8; ++i) fired.push_back(fault::fire("test.once"));
  EXPECT_EQ(fired, (std::vector<bool>{false, false, false, true, false, false, false, false}));
  EXPECT_EQ(inj.ops("test.once"), 8u);
  EXPECT_EQ(inj.fires("test.once"), 1u);
}

TEST_F(FaultTest, AtOpsAndWindowCombine) {
  auto& inj = fault::Injector::instance();
  fault::Schedule s = fault::Schedule::at_ops({0, 5});
  s.first = 2;
  s.last = 4;  // ops 2 and 3
  inj.arm("test.combo", s);
  std::vector<int> hits;
  for (int i = 0; i < 8; ++i) {
    if (fault::fire("test.combo")) hits.push_back(i);
  }
  EXPECT_EQ(hits, (std::vector<int>{0, 2, 3, 5}));
}

TEST_F(FaultTest, MaxFiresCapsAnAlwaysSchedule) {
  auto& inj = fault::Injector::instance();
  inj.arm("test.capped", fault::Schedule::always(/*max_fires=*/2));
  int fires = 0;
  for (int i = 0; i < 10; ++i) fires += fault::fire("test.capped") ? 1 : 0;
  EXPECT_EQ(fires, 2);
  EXPECT_EQ(inj.fires("test.capped"), 2u);
}

TEST_F(FaultTest, ProbabilityScheduleIsDeterministicPerSeed) {
  auto& inj = fault::Injector::instance();
  auto pattern = [&](std::uint64_t seed) {
    inj.reset();
    inj.seed(seed);
    inj.arm("test.prob", fault::Schedule::with_probability(0.3));
    std::vector<bool> p;
    for (int i = 0; i < 256; ++i) p.push_back(fault::fire("test.prob"));
    return p;
  };
  const auto a = pattern(42);
  const auto b = pattern(42);
  const auto c = pattern(43);
  EXPECT_EQ(a, b) << "same seed must replay the same fault pattern";
  EXPECT_NE(a, c) << "different seeds must decorrelate";
  // Sanity: a 0.3 Bernoulli over 256 draws fires somewhere in (0, 256).
  const auto fires = static_cast<std::size_t>(std::count(a.begin(), a.end(), true));
  EXPECT_GT(fires, 0u);
  EXPECT_LT(fires, 256u);
}

TEST_F(FaultTest, SitesDeriveIndependentStreams) {
  auto& inj = fault::Injector::instance();
  inj.arm("test.stream_a", fault::Schedule::with_probability(0.5));
  inj.arm("test.stream_b", fault::Schedule::with_probability(0.5));
  std::vector<bool> a, b;
  for (int i = 0; i < 128; ++i) {
    a.push_back(fault::fire("test.stream_a"));
    b.push_back(fault::fire("test.stream_b"));
  }
  EXPECT_NE(a, b) << "two sites with the same schedule must not be correlated";
}

TEST_F(FaultTest, DisarmAndResetSilenceSites) {
  auto& inj = fault::Injector::instance();
  inj.arm("test.quiet", fault::Schedule::always());
  EXPECT_TRUE(fault::fire("test.quiet"));
  inj.disarm("test.quiet");
  EXPECT_FALSE(fault::fire("test.quiet"));
  inj.arm("test.quiet", fault::Schedule::always());
  inj.reset();
  EXPECT_FALSE(fault::fire("test.quiet"));
  EXPECT_FALSE(inj.armed());
}

TEST_F(FaultTest, RearmResetsCounters) {
  auto& inj = fault::Injector::instance();
  inj.arm("test.rearm", fault::Schedule::once(0));
  EXPECT_TRUE(fault::fire("test.rearm"));
  EXPECT_FALSE(fault::fire("test.rearm"));
  inj.arm("test.rearm", fault::Schedule::once(0));  // op counter back to 0
  EXPECT_TRUE(fault::fire("test.rearm"));
}

TEST_F(FaultTest, IsTransientClassifiesTheTaxonomy) {
  auto as_ptr = [](auto&& e) { return std::make_exception_ptr(std::forward<decltype(e)>(e)); };
  EXPECT_TRUE(fault::is_transient(as_ptr(fault::DmaTransferError("s"))));
  EXPECT_TRUE(fault::is_transient(as_ptr(fault::DdrEccError("s"))));
  EXPECT_TRUE(fault::is_transient(as_ptr(fault::AxiNackError("s"))));
  EXPECT_TRUE(fault::is_transient(as_ptr(fault::IpStallFault("s"))));
  EXPECT_TRUE(fault::is_transient(as_ptr(fault::FixedOverflowFault("s"))));
  EXPECT_TRUE(fault::is_transient(as_ptr(fault::AllocationFault("s"))));
  EXPECT_TRUE(fault::is_transient(as_ptr(fault::DeadlineExceeded("s", "late"))));
  EXPECT_FALSE(fault::is_transient(as_ptr(fault::WorkerCrashFault("s"))));
  EXPECT_FALSE(fault::is_transient(as_ptr(std::runtime_error("not a fault"))));
}
