// Shared scaffolding for the fault-injection suite: every test runs with a
// clean Injector, a deterministic seed (overridable via NODETR_FAULT_SEED for
// replaying CI failures), and the seed is printed whenever a test fails so
// the exact fault schedule can be reproduced.
#pragma once

#include <gtest/gtest.h>

#include <cstdlib>
#include <iostream>

#include "nodetr/fault/fault.hpp"
#include "nodetr/nn/attention.hpp"
#include "nodetr/serve/serve.hpp"
#include "nodetr/tensor/ops.hpp"

namespace nodetr::testing {

class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto& inj = fault::Injector::instance();
    inj.reset();
    seed_ = 0x5eedf417u;
    if (const char* env = std::getenv("NODETR_FAULT_SEED")) {
      seed_ = std::strtoull(env, nullptr, 0);
    }
    inj.seed(seed_);
  }

  void TearDown() override {
    fault::Injector::instance().reset();
    if (HasFailure()) {
      std::cerr << "[fault] replay with NODETR_FAULT_SEED=" << seed_ << std::endl;
    }
  }

  std::uint64_t seed_ = 0;
};

/// Small MHSA design point + engine factory shared by the serving scenarios.
class ServeFaultTest : public FaultTest {
 protected:
  void SetUp() override {
    FaultTest::SetUp();
    cfg_.dim = 16;
    cfg_.heads = 2;
    cfg_.height = 4;
    cfg_.width = 4;
    mhsa_ = std::make_unique<nn::MultiHeadSelfAttention>(cfg_, rng_);
    mhsa_->train(false);
    point_.dim = cfg_.dim;
    point_.height = cfg_.height;
    point_.width = cfg_.width;
    point_.heads = cfg_.heads;
    point_.scheme = fx::scheme_32_24();
  }

  [[nodiscard]] hls::MhsaWeights weights() { return hls::MhsaWeights::from_module(*mhsa_); }

  [[nodiscard]] serve::EngineConfig config(serve::Backend backend, std::size_t workers = 1) {
    serve::EngineConfig c;
    c.point = point_;
    c.backend = backend;
    c.workers = workers;
    c.queue_capacity = 64;
    // Tight backoff keeps the suite fast while still exercising the policy.
    c.fault.backoff_us = 10;
    c.fault.max_backoff_us = 100;
    return c;
  }

  /// Fault-free reference: the float IP datapath run in-process. Both float
  /// backends (and the CPU fallback) must match this bitwise.
  [[nodiscard]] tensor::Tensor reference(const tensor::Tensor& x) {
    hls::MhsaDesignPoint p = point_;
    p.dtype = hls::DataType::kFloat32;
    hls::MhsaIpCore ip(p, weights());
    return ip.run(x);
  }

  tensor::Rng rng_{7};
  nn::MhsaConfig cfg_;
  std::unique_ptr<nn::MultiHeadSelfAttention> mhsa_;
  hls::MhsaDesignPoint point_;
};

}  // namespace nodetr::testing
