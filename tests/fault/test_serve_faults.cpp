// Deterministic fault schedules against the accelerator driver and the
// serving engine. The invariant under test everywhere: every accepted
// request resolves — with a value or a typed exception — in bounded time,
// no matter what the schedule injects.
#include "fault_fixture.hpp"

#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "nodetr/rt/accelerator.hpp"

namespace fault = nodetr::fault;
namespace serve = nodetr::serve;
namespace hls = nodetr::hls;
namespace rt = nodetr::rt;
namespace nt = nodetr::tensor;
using nodetr::testing::ServeFaultTest;

namespace {

/// All futures must become ready within `budget`; a hung future fails the
/// test instead of hanging the suite.
template <typename T>
bool all_ready_within(std::vector<std::future<T>>& futures, std::chrono::seconds budget) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  for (auto& f : futures) {
    if (f.wait_until(deadline) != std::future_status::ready) return false;
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------- accelerator ----

TEST_F(ServeFaultTest, StalledIpHitsDeadlineThenRecovers) {
  hls::MhsaDesignPoint p = point_;
  p.dtype = hls::DataType::kFloat32;
  rt::DdrMemory ddr;
  rt::MhsaAccelerator accel(std::make_unique<hls::MhsaIpCore>(p, weights()), ddr);
  rt::ExecDeadline deadline;
  deadline.sim_cycles = 123'456;
  accel.set_deadline(deadline);

  fault::Injector::instance().arm("hls.ip.stall", fault::Schedule::once(0));
  const nt::Tensor x = rng_.rand(nt::Shape{1, point_.dim, point_.height, point_.width});
  EXPECT_THROW((void)accel.execute(x), fault::DeadlineExceeded);
  // The PS burnt the whole polling budget waiting on a DONE that never rose.
  EXPECT_EQ(accel.last_cycles(), deadline.sim_cycles);

  // The stall was a one-shot: re-issuing the START succeeds bitwise.
  const nt::Tensor y = accel.execute(x);
  EXPECT_EQ(nt::max_abs_diff(y, reference(x)), 0.0f);
}

TEST_F(ServeFaultTest, DdrBitFlipIsDetectedAndRetryConverges) {
  hls::MhsaDesignPoint p = point_;
  p.dtype = hls::DataType::kFloat32;
  rt::DdrMemory ddr;
  rt::MhsaAccelerator accel(std::make_unique<hls::MhsaIpCore>(p, weights()), ddr);

  fault::Injector::instance().arm("rt.ddr.bitflip", fault::Schedule::once(0));
  const nt::Tensor x = rng_.rand(nt::Shape{1, point_.dim, point_.height, point_.width});
  EXPECT_THROW((void)accel.execute(x), fault::DdrEccError);
  // The retry restages everything, so the flipped bit cannot leak into the
  // output: the result is bitwise the fault-free one.
  const nt::Tensor y = accel.execute(x);
  EXPECT_EQ(nt::max_abs_diff(y, reference(x)), 0.0f);
}

// --------------------------------------------------------------- engine ----

TEST_F(ServeFaultTest, DmaErrorIsRetriedTransparently) {
  fault::Injector::instance().arm("rt.dma.error", fault::Schedule::once(0));
  serve::InferenceEngine engine(config(serve::Backend::kFpgaFloat), weights());
  const nt::Tensor x = rng_.rand(nt::Shape{2, point_.dim, point_.height, point_.width});
  auto future = engine.submit(x);
  ASSERT_EQ(future.wait_for(std::chrono::seconds(30)), std::future_status::ready);
  const nt::Tensor y = future.get();
  EXPECT_EQ(nt::max_abs_diff(y, reference(x)), 0.0f);
  const auto stats = engine.stats();
  EXPECT_GE(stats.retries, 1u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.fallbacks, 0u);
}

TEST_F(ServeFaultTest, ExhaustedRetriesFailTheFutureWithTypedError) {
  fault::Injector::instance().arm("rt.dma.error", fault::Schedule::always());
  serve::EngineConfig cfg = config(serve::Backend::kFpgaFloat);
  cfg.fault.max_retries = 2;
  cfg.breaker.open_after = 0;  // breaker off: the error must surface
  serve::InferenceEngine engine(cfg, weights());
  auto future = engine.submit(rng_.rand(nt::Shape{1, point_.dim, point_.height, point_.width}));
  ASSERT_EQ(future.wait_for(std::chrono::seconds(30)), std::future_status::ready);
  EXPECT_THROW((void)future.get(), fault::DmaTransferError);
  EXPECT_EQ(engine.stats().retries, 2u);
  EXPECT_EQ(engine.stats().failed, 1u);
}

TEST_F(ServeFaultTest, PersistentDeviceFaultFallsBackToCpu) {
  fault::Injector::instance().arm("rt.dma.error", fault::Schedule::always());
  serve::EngineConfig cfg = config(serve::Backend::kFpgaFloat);
  cfg.fault.max_retries = 8;
  cfg.breaker.open_after = 3;
  cfg.breaker.cooldown_us = 10'000'000;  // no half-open probe within this test
  serve::InferenceEngine engine(cfg, weights());
  const nt::Tensor x = rng_.rand(nt::Shape{2, point_.dim, point_.height, point_.width});
  auto f0 = engine.submit(x);
  ASSERT_EQ(f0.wait_for(std::chrono::seconds(30)), std::future_status::ready);
  // The demoted session runs the float datapath in-process: bitwise results.
  EXPECT_EQ(nt::max_abs_diff(f0.get(), reference(x)), 0.0f);
  EXPECT_EQ(engine.stats().fallbacks, 1u);
  EXPECT_EQ(engine.stats().failed, 0u);
  EXPECT_EQ(engine.stats().breaker_opens, 1u);
  EXPECT_EQ(engine.stats().open_breakers, 1u);
  // The breaker stays open (cooldown not elapsed): later requests never
  // touch the dead device.
  auto f1 = engine.submit(x);
  ASSERT_EQ(f1.wait_for(std::chrono::seconds(30)), std::future_status::ready);
  EXPECT_EQ(nt::max_abs_diff(f1.get(), reference(x)), 0.0f);
  EXPECT_EQ(engine.stats().fallbacks, 1u);
  EXPECT_EQ(engine.stats().breaker_probes, 0u);
}

TEST_F(ServeFaultTest, BreakerHalfOpenProbeRestoresHealedDevice) {
  // The acceptance scenario for self-healing: a device that faults long
  // enough to open the breaker, then heals. The half-open probe must restore
  // the session's FPGA backend — the demotion is not one-way.
  fault::Injector::instance().arm("rt.dma.error", fault::Schedule::always());
  serve::EngineConfig cfg = config(serve::Backend::kFpgaFloat);
  cfg.fault.max_retries = 8;
  cfg.breaker.open_after = 2;
  cfg.breaker.cooldown_us = 1'000;  // 1 ms: the probe fires within the test
  serve::InferenceEngine engine(cfg, weights());
  const nt::Tensor x = rng_.rand(nt::Shape{1, point_.dim, point_.height, point_.width});

  auto f0 = engine.submit(x);
  ASSERT_EQ(f0.wait_for(std::chrono::seconds(30)), std::future_status::ready);
  EXPECT_EQ(nt::max_abs_diff(f0.get(), reference(x)), 0.0f);  // served by CPU fallback
  auto s = engine.stats();
  EXPECT_EQ(s.breaker_opens, 1u);
  EXPECT_EQ(s.open_breakers, 1u);
  EXPECT_EQ(s.sim_cycles, 0);  // no device execute ever completed

  // The device heals; after the cooldown the next batch is the probe.
  fault::Injector::instance().disarm("rt.dma.error");
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  auto f1 = engine.submit(x);
  ASSERT_EQ(f1.wait_for(std::chrono::seconds(30)), std::future_status::ready);
  EXPECT_EQ(nt::max_abs_diff(f1.get(), reference(x)), 0.0f);
  s = engine.stats();
  EXPECT_EQ(s.breaker_probes, 1u);
  EXPECT_EQ(s.breaker_closes, 1u);
  EXPECT_EQ(s.breaker_reopens, 0u);
  EXPECT_EQ(s.open_breakers, 0u);
  EXPECT_GT(s.sim_cycles, 0);  // the probe ran on the real device

  // And the session is genuinely back home: further traffic keeps accruing
  // simulated device cycles.
  const std::int64_t cycles_after_probe = s.sim_cycles;
  auto f2 = engine.submit(x);
  ASSERT_EQ(f2.wait_for(std::chrono::seconds(30)), std::future_status::ready);
  EXPECT_EQ(nt::max_abs_diff(f2.get(), reference(x)), 0.0f);
  EXPECT_GT(engine.stats().sim_cycles, cycles_after_probe);
  EXPECT_EQ(engine.stats().failed, 0u);
}

TEST_F(ServeFaultTest, FlappingDeviceBacksOffExponentially) {
  // A device that faults every probe: each failed probe re-opens the breaker
  // with a longer cooldown, so traffic converges to mostly-CPU instead of
  // thrashing between backends.
  fault::Injector::instance().arm("rt.dma.error", fault::Schedule::always());
  serve::EngineConfig cfg = config(serve::Backend::kFpgaFloat);
  cfg.fault.max_retries = 8;
  cfg.breaker.open_after = 1;
  cfg.breaker.cooldown_us = 500;
  cfg.breaker.cooldown_multiplier = 4.0;
  serve::InferenceEngine engine(cfg, weights());
  const nt::Tensor x = rng_.rand(nt::Shape{1, point_.dim, point_.height, point_.width});

  auto f0 = engine.submit(x);
  ASSERT_EQ(f0.wait_for(std::chrono::seconds(30)), std::future_status::ready);
  EXPECT_EQ(engine.stats().breaker_opens, 1u);

  // Wait out the first cooldown so the next batch probes (and faults again).
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  auto f1 = engine.submit(x);
  ASSERT_EQ(f1.wait_for(std::chrono::seconds(30)), std::future_status::ready);
  EXPECT_EQ(nt::max_abs_diff(f1.get(), reference(x)), 0.0f);  // still served (by CPU)
  const auto s = engine.stats();
  EXPECT_EQ(s.breaker_probes, 1u);
  EXPECT_EQ(s.breaker_reopens, 1u);
  EXPECT_EQ(s.breaker_closes, 0u);
  EXPECT_EQ(s.open_breakers, 1u);
  EXPECT_EQ(s.failed, 0u);
}

TEST_F(ServeFaultTest, WorkerCrashStrandsNoFuture) {
  fault::Injector::instance().arm("serve.worker_crash", fault::Schedule::once(0));
  serve::InferenceEngine engine(config(serve::Backend::kCpuFloat), weights());
  std::vector<std::future<nt::Tensor>> futures;
  std::vector<nt::Tensor> inputs;
  for (int i = 0; i < 6; ++i) {
    inputs.push_back(rng_.rand(nt::Shape{1, point_.dim, point_.height, point_.width}));
    futures.push_back(engine.submit(inputs.back()));
  }
  ASSERT_TRUE(all_ready_within(futures, std::chrono::seconds(30)));
  // The crash hit between batches, so every request was untouched and got
  // requeued: all futures carry values, and the worker was respawned.
  for (std::size_t i = 0; i < futures.size(); ++i) {
    EXPECT_EQ(nt::max_abs_diff(futures[i].get(), reference(inputs[i])), 0.0f) << "request " << i;
  }
  EXPECT_GE(engine.stats().respawns, 1u);
  EXPECT_EQ(engine.stats().failed, 0u);
}

TEST_F(ServeFaultTest, BatchAllocationFailureRequeuesEveryRequest) {
  fault::Injector::instance().arm("serve.alloc", fault::Schedule::once(0));
  serve::InferenceEngine engine(config(serve::Backend::kCpuFloat), weights());
  std::vector<std::future<nt::Tensor>> futures;
  std::vector<nt::Tensor> inputs;
  for (int i = 0; i < 4; ++i) {
    inputs.push_back(rng_.rand(nt::Shape{2, point_.dim, point_.height, point_.width}));
    futures.push_back(engine.submit(inputs[i]));
  }
  ASSERT_TRUE(all_ready_within(futures, std::chrono::seconds(30)));
  for (std::size_t i = 0; i < futures.size(); ++i) {
    EXPECT_EQ(nt::max_abs_diff(futures[i].get(), reference(inputs[i])), 0.0f) << "request " << i;
  }
  EXPECT_GE(engine.stats().respawns, 1u);
  EXPECT_EQ(engine.stats().failed, 0u);
}

TEST_F(ServeFaultTest, FixedOverflowEventRetriesOnTheFixedBackend) {
  fault::Injector::instance().arm("hls.ip.overflow", fault::Schedule::once(0));
  serve::InferenceEngine engine(config(serve::Backend::kFpgaFixed), weights());
  const nt::Tensor x = rng_.rand(nt::Shape{1, point_.dim, point_.height, point_.width});
  auto future = engine.submit(x);
  ASSERT_EQ(future.wait_for(std::chrono::seconds(30)), std::future_status::ready);
  EXPECT_NO_THROW((void)future.get());
  EXPECT_GE(engine.stats().retries, 1u);
  EXPECT_EQ(engine.stats().failed, 0u);
}

TEST_F(ServeFaultTest, MixedProbabilisticScheduleResolvesEverythingBounded) {
  // The storm: every device-path site misbehaving at once, probabilistically,
  // on a deterministic seed. With retries + fallback armed, every future must
  // resolve with a value, bitwise equal to the fault-free reference.
  // References are computed BEFORE arming — the reference path runs the same
  // instrumented IP model and must stay fault-free.
  std::vector<nt::Tensor> inputs, expected;
  for (int i = 0; i < 16; ++i) {
    inputs.push_back(rng_.rand(nt::Shape{1 + (i % 3), point_.dim, point_.height, point_.width}));
    expected.push_back(reference(inputs[i]));
  }
  auto& inj = fault::Injector::instance();
  inj.arm("rt.dma.error", fault::Schedule::with_probability(0.10));
  inj.arm("rt.ddr.bitflip", fault::Schedule::with_probability(0.05));
  inj.arm("rt.axi.nack", fault::Schedule::with_probability(0.02));
  inj.arm("hls.ip.stall", fault::Schedule::with_probability(0.05));
  serve::EngineConfig cfg = config(serve::Backend::kFpgaFloat, /*workers=*/2);
  cfg.fault.max_retries = 6;
  cfg.breaker.open_after = 16;
  cfg.fault.deadline.sim_cycles = 1'000'000;
  serve::InferenceEngine engine(cfg, weights());
  std::vector<std::future<nt::Tensor>> futures;
  for (int i = 0; i < 16; ++i) futures.push_back(engine.submit(inputs[i]));
  ASSERT_TRUE(all_ready_within(futures, std::chrono::seconds(60)))
      << "a future failed to resolve under the fault storm (bounded completion violated)";
  for (std::size_t i = 0; i < futures.size(); ++i) {
    nt::Tensor y;
    try {
      y = futures[i].get();
    } catch (const fault::FaultError&) {
      // Acceptable only as a typed fault after exhausted retries.
      continue;
    }
    EXPECT_EQ(nt::max_abs_diff(y, expected[i]), 0.0f) << "request " << i;
  }
  engine.shutdown();
  const auto stats = engine.stats();
  EXPECT_EQ(stats.completed + stats.failed, stats.submitted);
}

TEST_F(ServeFaultTest, ShutdownDrainsUnderFaults) {
  fault::Injector::instance().arm("rt.dma.error", fault::Schedule::with_probability(0.2));
  std::vector<std::future<nt::Tensor>> futures;
  {
    serve::InferenceEngine engine(config(serve::Backend::kFpgaFloat, /*workers=*/2), weights());
    for (int i = 0; i < 8; ++i) {
      futures.push_back(
          engine.submit(rng_.rand(nt::Shape{1, point_.dim, point_.height, point_.width})));
    }
    engine.shutdown();  // must drain every accepted request, faults included
  }
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready)
        << "shutdown returned with an unresolved future";
    // Each future holds a value or, after exhausted retries, a typed fault —
    // never anything untyped, and never nothing.
    try {
      (void)f.get();
    } catch (const fault::FaultError&) {
    }
  }
}
