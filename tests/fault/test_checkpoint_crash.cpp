// Crash-safety and corruption corpus for the transactional checkpoint path:
// a checkpoint file is either the complete previous save or the complete new
// one, and a corrupt file never half-loads into (or mutates) a model.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <vector>

#include "nodetr/nn/activations.hpp"
#include "nodetr/nn/conv_layers.hpp"
#include "nodetr/nn/linear.hpp"
#include "nodetr/nn/pool.hpp"
#include "nodetr/nn/sequential.hpp"
#include "nodetr/tensor/ops.hpp"
#include "nodetr/tensor/serialize.hpp"
#include "nodetr/train/checkpoint.hpp"

namespace fs = std::filesystem;
namespace nn = nodetr::nn;
namespace nt = nodetr::tensor;
namespace tr = nodetr::train;

namespace {

std::unique_ptr<nn::Sequential> tiny_net(nt::Rng& rng) {
  auto net = std::make_unique<nn::Sequential>();
  net->emplace<nn::Conv2d>(3, 8, 3, 2, 1, true, rng);
  net->emplace<nn::ReLU>();
  net->emplace<nn::GlobalAvgPool>();
  net->emplace<nn::Linear>(8, 4, true, rng);
  net->train(false);
  return net;
}

std::vector<char> slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(is), std::istreambuf_iterator<char>()};
}

void spit(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Snapshot of every parameter tensor, for "model unmutated" assertions.
std::vector<nt::Tensor> snapshot(nn::Module& m) {
  std::vector<nt::Tensor> out;
  for (auto* p : m.parameters()) out.push_back(p->value);
  return out;
}

bool matches(nn::Module& m, const std::vector<nt::Tensor>& snap) {
  const auto params = m.parameters();
  if (params.size() != snap.size()) return false;
  for (std::size_t i = 0; i < snap.size(); ++i) {
    if (nt::max_abs_diff(params[i]->value, snap[i]) != 0.0f) return false;
  }
  return true;
}

struct CheckpointCorpus : ::testing::Test {
  nt::Rng rng{31};
  std::unique_ptr<nn::Sequential> net = tiny_net(rng);
  // Per-process filename: ctest runs each test as its own process, possibly
  // in parallel, and they must not race on a shared checkpoint file.
  std::string path = ::testing::TempDir() + "/nodetr_fault_ckpt_" +
                     std::to_string(static_cast<long long>(::getpid())) + ".bin";

  void SetUp() override { tr::save_checkpoint(path, *net); }
  void TearDown() override {
    std::error_code ec;
    fs::remove(path, ec);
    fs::remove(path + ".tmp", ec);
  }
};

}  // namespace

TEST_F(CheckpointCorpus, SaveLeavesNoTempFileBehind) {
  EXPECT_TRUE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST_F(CheckpointCorpus, WrongMagicRejected) {
  auto bytes = slurp(path);
  bytes[0] = 'X';
  spit(path, bytes);
  const auto snap = snapshot(*net);
  EXPECT_THROW(tr::load_checkpoint(path, *net), tr::CheckpointError);
  EXPECT_TRUE(matches(*net, snap));
}

TEST_F(CheckpointCorpus, UnsupportedVersionRejected) {
  auto bytes = slurp(path);
  bytes[4] = 99;  // version word follows the 4-byte magic
  spit(path, bytes);
  EXPECT_THROW(tr::load_checkpoint(path, *net), tr::CheckpointError);
}

TEST_F(CheckpointCorpus, TruncationAtEveryStructuralOffsetRejected) {
  const auto bytes = slurp(path);
  // Chop the file at the header, mid-counts, mid-tensor-header, and
  // mid-payload; every prefix must be rejected and leave the model alone.
  const std::vector<std::size_t> cuts = {2,  6,  12, 20,  // container header
                                         30, 45, bytes.size() / 2, bytes.size() - 1};
  const auto snap = snapshot(*net);
  for (std::size_t cut : cuts) {
    ASSERT_LT(cut, bytes.size());
    spit(path, std::vector<char>(bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(cut)));
    EXPECT_THROW(tr::load_checkpoint(path, *net), tr::CheckpointError) << "cut at " << cut;
    EXPECT_TRUE(matches(*net, snap)) << "model mutated by truncated load (cut " << cut << ")";
  }
}

TEST_F(CheckpointCorpus, OversizedExtentRejectedWithoutWildAllocation) {
  // Corrupt the first tensor record's first extent to a huge value. The
  // loader must reject it from the remaining-stream bound instead of trying
  // to allocate exabytes (the pre-hardening behaviour).
  auto bytes = slurp(path);
  // Layout: 4 magic + 4 version + 8 pcount + 8 bcount, then the first tensor
  // record: 4 magic + 4 rank + extents.
  const std::size_t extent_off = 24 + 8;
  ASSERT_LE(extent_off + 8, bytes.size());
  const std::int64_t huge = std::numeric_limits<std::int64_t>::max() / 2;
  std::memcpy(bytes.data() + extent_off, &huge, sizeof huge);
  spit(path, bytes);
  const auto snap = snapshot(*net);
  EXPECT_THROW(tr::load_checkpoint(path, *net), tr::CheckpointError);
  EXPECT_TRUE(matches(*net, snap));
}

TEST_F(CheckpointCorpus, TrailingBytesRejected) {
  auto bytes = slurp(path);
  bytes.push_back('!');
  spit(path, bytes);
  const auto snap = snapshot(*net);
  EXPECT_THROW(tr::load_checkpoint(path, *net), tr::CheckpointError);
  EXPECT_TRUE(matches(*net, snap));
}

TEST_F(CheckpointCorpus, CrashMidSaveLeavesPreviousCheckpointLoadable) {
  // Simulate a kill -9 mid-save: a truncated .tmp file next to the real
  // checkpoint. The committed checkpoint must still load, and the stale temp
  // must not be picked up.
  const auto bytes = slurp(path);
  spit(path + ".tmp", std::vector<char>(bytes.begin(), bytes.begin() + 10));
  for (auto* p : net->parameters()) p->value += 1.0f;
  const auto x = rng.randn(nt::Shape{1, 3, 8, 8});
  tr::load_checkpoint(path, *net);
  const auto restored = net->forward(x);
  // Reload is still idempotent with the stale temp present.
  tr::load_checkpoint(path, *net);
  EXPECT_EQ(nt::max_abs_diff(net->forward(x), restored), 0.0f);
}

TEST_F(CheckpointCorpus, CountMismatchRejectedBeforeAnyStaging) {
  nn::Sequential other;
  other.emplace<nn::Linear>(4, 2, true, rng);
  EXPECT_THROW(tr::load_checkpoint(path, other), tr::CheckpointError);
}

TEST_F(CheckpointCorpus, ReadTensorRejectsExtentProductOverflow) {
  // Direct serialize-layer probe: two extents whose product overflows
  // int64 must be caught by the checked multiply, not wrap to a small
  // "plausible" allocation.
  const std::string tpath = ::testing::TempDir() + "/nodetr_fault_tensor.bin";
  std::ofstream os(tpath, std::ios::binary | std::ios::trunc);
  const std::uint32_t magic = 0x4e445431;  // "NDT1"
  const std::uint32_t rank = 2;
  const std::int64_t e0 = std::numeric_limits<std::int64_t>::max() / 2;
  const std::int64_t e1 = 8;
  os.write(reinterpret_cast<const char*>(&magic), sizeof magic);
  os.write(reinterpret_cast<const char*>(&rank), sizeof rank);
  os.write(reinterpret_cast<const char*>(&e0), sizeof e0);
  os.write(reinterpret_cast<const char*>(&e1), sizeof e1);
  os.close();
  std::ifstream is(tpath, std::ios::binary);
  EXPECT_THROW((void)nt::read_tensor(is), std::runtime_error);
  std::error_code ec;
  fs::remove(tpath, ec);
}

TEST_F(CheckpointCorpus, SaveIsDurableNotJustAtomic) {
  // Documents and exercises the fsync contract: save_checkpoint returns only
  // after (1) the temp file's CONTENTS are fsynced, (2) the rename landed,
  // (3) the parent DIRECTORY entry is fsynced. We cannot pull the power in a
  // unit test, but we can pin the observable half of the contract: the save
  // must succeed on a freshly created directory (whose entry is not yet
  // durable), overwrite in place, leave no temp, and load back bitwise.
  const std::string dir = ::testing::TempDir() + "/nodetr_fsync_dir";
  fs::create_directories(dir);
  const std::string deep = dir + "/ckpt.bin";
  tr::save_checkpoint(deep, *net);
  for (auto* p : net->parameters()) p->value += 0.25f;
  tr::save_checkpoint(deep, *net);  // overwrite: fsync of an existing entry
  const auto snap = snapshot(*net);
  for (auto* p : net->parameters()) p->value += -1.0f;
  tr::load_checkpoint(deep, *net);
  EXPECT_TRUE(matches(*net, snap));
  EXPECT_FALSE(fs::exists(deep + ".tmp"));
  fs::remove_all(dir);
}

TEST_F(CheckpointCorpus, SaveWithoutDirectoryComponentSyncsCwd) {
  // A bare filename has no '/' — the parent-directory fsync must fall back
  // to "." instead of fsyncing an empty path (or skipping durability).
  const std::string bare = "nodetr_fault_bare_ckpt.bin";
  tr::save_checkpoint(bare, *net);
  EXPECT_TRUE(fs::exists(bare));
  EXPECT_FALSE(fs::exists(bare + ".tmp"));
  const auto snap = snapshot(*net);
  for (auto* p : net->parameters()) p->value += 3.0f;
  tr::load_checkpoint(bare, *net);
  EXPECT_TRUE(matches(*net, snap));
  std::error_code ec;
  fs::remove(bare, ec);
}

TEST_F(CheckpointCorpus, CountMismatchNamesFirstUnaccountedParam) {
  // Model has MORE params than the checkpoint: the error must name the first
  // model param the file cannot account for, not just dump two counts —
  // serve::ModelRegistry::publish_checkpoint surfaces this message verbatim
  // when a candidate's structure does not match the serving design point.
  nn::Sequential bigger;
  bigger.emplace<nn::Conv2d>(3, 8, 3, 2, 1, true, rng);
  bigger.emplace<nn::ReLU>();
  bigger.emplace<nn::GlobalAvgPool>();
  bigger.emplace<nn::Linear>(8, 4, true, rng);
  bigger.emplace<nn::Linear>(4, 2, true, rng);
  bigger.train(false);
  try {
    tr::load_checkpoint(path, bigger);
    FAIL() << "expected CheckpointError";
  } catch (const tr::CheckpointError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("count mismatch"), std::string::npos) << msg;
    EXPECT_NE(msg.find("ends before model param '"), std::string::npos) << msg;
    // The first unaccounted param is the extra Linear's weight.
    EXPECT_NE(msg.find("'weight'"), std::string::npos) << msg;
  }
}

TEST_F(CheckpointCorpus, CountMismatchNamesExtraRecordsPastLastParam) {
  // Checkpoint has MORE params than the model: the message reports how many
  // records run past the model's last param, and names that param.
  nn::Sequential smaller;
  smaller.emplace<nn::Linear>(8, 4, true, rng);
  smaller.train(false);
  try {
    tr::load_checkpoint(path, smaller);
    FAIL() << "expected CheckpointError";
  } catch (const tr::CheckpointError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("count mismatch"), std::string::npos) << msg;
    EXPECT_NE(msg.find("beyond the model's last param"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'bias'"), std::string::npos) << msg;
  }
}

TEST_F(CheckpointCorpus, ShapeMismatchNamesParamAndBothShapes) {
  // Same param COUNT, different geometry: the error names the offending
  // param and prints the model's shape versus the checkpoint's.
  nn::Sequential other;
  other.emplace<nn::Conv2d>(3, 8, 3, 2, 1, true, rng);
  other.emplace<nn::ReLU>();
  other.emplace<nn::GlobalAvgPool>();
  other.emplace<nn::Linear>(8, 2, true, rng);  // 4 -> 2 outputs
  other.train(false);
  const auto snap = snapshot(other);
  try {
    tr::load_checkpoint(path, other);
    FAIL() << "expected CheckpointError";
  } catch (const tr::CheckpointError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("shape mismatch for weight"), std::string::npos) << msg;
    EXPECT_NE(msg.find("model [2, 8]"), std::string::npos) << msg;
    EXPECT_NE(msg.find("checkpoint [4, 8]"), std::string::npos) << msg;
  }
  EXPECT_TRUE(matches(other, snap)) << "mismatched load mutated the model";
}

TEST_F(CheckpointCorpus, SaveOverwritesAtomically) {
  // A second save over an existing checkpoint must leave a loadable file
  // with the *new* parameters.
  for (auto* p : net->parameters()) p->value += 0.5f;
  tr::save_checkpoint(path, *net);
  const auto snap = snapshot(*net);
  for (auto* p : net->parameters()) p->value += -2.0f;
  tr::load_checkpoint(path, *net);
  EXPECT_TRUE(matches(*net, snap));
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}
