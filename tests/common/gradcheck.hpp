// Shared numerical gradient checking for Module backward implementations.
//
// Checks d/dx [ sum(cot * f(x)) ] via central differences against the
// analytic backward, for both the input and every parameter. Modules with
// stochastic forward passes (Dropout) or batch statistics must be handled by
// the caller (eval mode or fixed seeds).
#pragma once

#include <gtest/gtest.h>

#include "nodetr/nn/module.hpp"
#include "nodetr/tensor/ops.hpp"
#include "nodetr/tensor/rng.hpp"

namespace nodetr::testing {

using nodetr::nn::Module;
using nodetr::tensor::index_t;
using nodetr::tensor::Rng;
using nodetr::tensor::Tensor;

inline float loss_of(Module& m, const Tensor& x, const Tensor& cot) {
  Tensor y = m.forward(x);
  float acc = 0.0f;
  for (index_t i = 0; i < y.numel(); ++i) acc += y[i] * cot[i];
  return acc;
}

/// Verify input and parameter gradients of `m` at `x`. `checks` limits how
/// many coordinates are probed per tensor (spread evenly); tolerances are
/// loose because fp32 central differences are noisy.
inline void expect_gradients_match(Module& m, const Tensor& x, std::uint64_t seed = 1234,
                                   index_t checks = 8, float eps = 1e-2f, float tol = 2e-2f) {
  Rng rng(seed);
  Tensor y0 = m.forward(x);
  Tensor cot = rng.randn(y0.shape());

  m.zero_grad();
  m.forward(x);  // repopulate caches (zero_grad does not clear them, but be explicit)
  Tensor gx = m.backward(cot);

  // Input gradient.
  const index_t nx = x.numel();
  const index_t step_x = std::max<index_t>(nx / checks, 1);
  for (index_t i = 0; i < nx; i += step_x) {
    Tensor xp = x, xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    const float num = (loss_of(m, xp, cot) - loss_of(m, xm, cot)) / (2 * eps);
    EXPECT_NEAR(gx[i], num, tol * std::max(1.0f, std::fabs(num))) << "input grad at " << i;
  }

  // Parameter gradients.
  for (nodetr::nn::Param* p : m.parameters()) {
    const index_t np = p->value.numel();
    if (np == 0) continue;
    const index_t step_p = std::max<index_t>(np / checks, 1);
    for (index_t i = 0; i < np; i += step_p) {
      const float orig = p->value[i];
      p->value[i] = orig + eps;
      const float fp = loss_of(m, x, cot);
      p->value[i] = orig - eps;
      const float fm = loss_of(m, x, cot);
      p->value[i] = orig;
      const float num = (fp - fm) / (2 * eps);
      EXPECT_NEAR(p->grad[i], num, tol * std::max(1.0f, std::fabs(num)))
          << "param " << p->name << " grad at " << i;
    }
  }
  // Leave caches consistent for any further use.
  m.forward(x);
}

}  // namespace nodetr::testing
