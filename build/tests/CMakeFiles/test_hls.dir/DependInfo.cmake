
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/hls/test_cycle_model.cpp" "tests/CMakeFiles/test_hls.dir/hls/test_cycle_model.cpp.o" "gcc" "tests/CMakeFiles/test_hls.dir/hls/test_cycle_model.cpp.o.d"
  "/root/repo/tests/hls/test_mhsa_ip.cpp" "tests/CMakeFiles/test_hls.dir/hls/test_mhsa_ip.cpp.o" "gcc" "tests/CMakeFiles/test_hls.dir/hls/test_mhsa_ip.cpp.o.d"
  "/root/repo/tests/hls/test_model_plan.cpp" "tests/CMakeFiles/test_hls.dir/hls/test_model_plan.cpp.o" "gcc" "tests/CMakeFiles/test_hls.dir/hls/test_model_plan.cpp.o.d"
  "/root/repo/tests/hls/test_qexec.cpp" "tests/CMakeFiles/test_hls.dir/hls/test_qexec.cpp.o" "gcc" "tests/CMakeFiles/test_hls.dir/hls/test_qexec.cpp.o.d"
  "/root/repo/tests/hls/test_quantize.cpp" "tests/CMakeFiles/test_hls.dir/hls/test_quantize.cpp.o" "gcc" "tests/CMakeFiles/test_hls.dir/hls/test_quantize.cpp.o.d"
  "/root/repo/tests/hls/test_resources_power.cpp" "tests/CMakeFiles/test_hls.dir/hls/test_resources_power.cpp.o" "gcc" "tests/CMakeFiles/test_hls.dir/hls/test_resources_power.cpp.o.d"
  "/root/repo/tests/hls/test_scheme_sweep.cpp" "tests/CMakeFiles/test_hls.dir/hls/test_scheme_sweep.cpp.o" "gcc" "tests/CMakeFiles/test_hls.dir/hls/test_scheme_sweep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hls/CMakeFiles/nodetr_hls.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/nodetr_models.dir/DependInfo.cmake"
  "/root/repo/build/src/fixed/CMakeFiles/nodetr_fixed.dir/DependInfo.cmake"
  "/root/repo/build/src/ode/CMakeFiles/nodetr_ode.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/nodetr_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/nodetr_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
