file(REMOVE_RECURSE
  "CMakeFiles/test_hls.dir/hls/test_cycle_model.cpp.o"
  "CMakeFiles/test_hls.dir/hls/test_cycle_model.cpp.o.d"
  "CMakeFiles/test_hls.dir/hls/test_mhsa_ip.cpp.o"
  "CMakeFiles/test_hls.dir/hls/test_mhsa_ip.cpp.o.d"
  "CMakeFiles/test_hls.dir/hls/test_model_plan.cpp.o"
  "CMakeFiles/test_hls.dir/hls/test_model_plan.cpp.o.d"
  "CMakeFiles/test_hls.dir/hls/test_qexec.cpp.o"
  "CMakeFiles/test_hls.dir/hls/test_qexec.cpp.o.d"
  "CMakeFiles/test_hls.dir/hls/test_quantize.cpp.o"
  "CMakeFiles/test_hls.dir/hls/test_quantize.cpp.o.d"
  "CMakeFiles/test_hls.dir/hls/test_resources_power.cpp.o"
  "CMakeFiles/test_hls.dir/hls/test_resources_power.cpp.o.d"
  "CMakeFiles/test_hls.dir/hls/test_scheme_sweep.cpp.o"
  "CMakeFiles/test_hls.dir/hls/test_scheme_sweep.cpp.o.d"
  "test_hls"
  "test_hls.pdb"
  "test_hls[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
