file(REMOVE_RECURSE
  "CMakeFiles/test_nn.dir/nn/test_activations.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_activations.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_attention.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_attention.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_conv_layers.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_conv_layers.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_linear.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_linear.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_misc_modules.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_misc_modules.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_norm.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_norm.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_pool.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_pool.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_residual_seq.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_residual_seq.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_summary.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_summary.cpp.o.d"
  "test_nn"
  "test_nn.pdb"
  "test_nn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
