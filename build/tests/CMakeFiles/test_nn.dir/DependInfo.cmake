
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/nn/test_activations.cpp" "tests/CMakeFiles/test_nn.dir/nn/test_activations.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_activations.cpp.o.d"
  "/root/repo/tests/nn/test_attention.cpp" "tests/CMakeFiles/test_nn.dir/nn/test_attention.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_attention.cpp.o.d"
  "/root/repo/tests/nn/test_conv_layers.cpp" "tests/CMakeFiles/test_nn.dir/nn/test_conv_layers.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_conv_layers.cpp.o.d"
  "/root/repo/tests/nn/test_linear.cpp" "tests/CMakeFiles/test_nn.dir/nn/test_linear.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_linear.cpp.o.d"
  "/root/repo/tests/nn/test_misc_modules.cpp" "tests/CMakeFiles/test_nn.dir/nn/test_misc_modules.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_misc_modules.cpp.o.d"
  "/root/repo/tests/nn/test_norm.cpp" "tests/CMakeFiles/test_nn.dir/nn/test_norm.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_norm.cpp.o.d"
  "/root/repo/tests/nn/test_pool.cpp" "tests/CMakeFiles/test_nn.dir/nn/test_pool.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_pool.cpp.o.d"
  "/root/repo/tests/nn/test_residual_seq.cpp" "tests/CMakeFiles/test_nn.dir/nn/test_residual_seq.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_residual_seq.cpp.o.d"
  "/root/repo/tests/nn/test_summary.cpp" "tests/CMakeFiles/test_nn.dir/nn/test_summary.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_summary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/nodetr_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/nodetr_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
