
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ode/test_adjoint.cpp" "tests/CMakeFiles/test_ode.dir/ode/test_adjoint.cpp.o" "gcc" "tests/CMakeFiles/test_ode.dir/ode/test_adjoint.cpp.o.d"
  "/root/repo/tests/ode/test_ode_block.cpp" "tests/CMakeFiles/test_ode.dir/ode/test_ode_block.cpp.o" "gcc" "tests/CMakeFiles/test_ode.dir/ode/test_ode_block.cpp.o.d"
  "/root/repo/tests/ode/test_solver.cpp" "tests/CMakeFiles/test_ode.dir/ode/test_solver.cpp.o" "gcc" "tests/CMakeFiles/test_ode.dir/ode/test_solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ode/CMakeFiles/nodetr_ode.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/nodetr_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/nodetr_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
