file(REMOVE_RECURSE
  "CMakeFiles/test_ode.dir/ode/test_adjoint.cpp.o"
  "CMakeFiles/test_ode.dir/ode/test_adjoint.cpp.o.d"
  "CMakeFiles/test_ode.dir/ode/test_ode_block.cpp.o"
  "CMakeFiles/test_ode.dir/ode/test_ode_block.cpp.o.d"
  "CMakeFiles/test_ode.dir/ode/test_solver.cpp.o"
  "CMakeFiles/test_ode.dir/ode/test_solver.cpp.o.d"
  "test_ode"
  "test_ode.pdb"
  "test_ode[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
