
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fixed/test_format.cpp" "tests/CMakeFiles/test_fixed.dir/fixed/test_format.cpp.o" "gcc" "tests/CMakeFiles/test_fixed.dir/fixed/test_format.cpp.o.d"
  "/root/repo/tests/fixed/test_qconv.cpp" "tests/CMakeFiles/test_fixed.dir/fixed/test_qconv.cpp.o" "gcc" "tests/CMakeFiles/test_fixed.dir/fixed/test_qconv.cpp.o.d"
  "/root/repo/tests/fixed/test_qops.cpp" "tests/CMakeFiles/test_fixed.dir/fixed/test_qops.cpp.o" "gcc" "tests/CMakeFiles/test_fixed.dir/fixed/test_qops.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fixed/CMakeFiles/nodetr_fixed.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/nodetr_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
