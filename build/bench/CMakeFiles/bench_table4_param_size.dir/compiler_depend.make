# Empty compiler generated dependencies file for bench_table4_param_size.
# This may be replaced when dependencies are built.
