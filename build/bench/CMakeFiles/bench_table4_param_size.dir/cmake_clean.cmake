file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_param_size.dir/bench_table4_param_size.cpp.o"
  "CMakeFiles/bench_table4_param_size.dir/bench_table4_param_size.cpp.o.d"
  "bench_table4_param_size"
  "bench_table4_param_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_param_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
