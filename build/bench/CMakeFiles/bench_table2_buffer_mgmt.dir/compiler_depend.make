# Empty compiler generated dependencies file for bench_table2_buffer_mgmt.
# This may be replaced when dependencies are built.
