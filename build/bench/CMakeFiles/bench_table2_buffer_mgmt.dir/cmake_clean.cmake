file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_buffer_mgmt.dir/bench_table2_buffer_mgmt.cpp.o"
  "CMakeFiles/bench_table2_buffer_mgmt.dir/bench_table2_buffer_mgmt.cpp.o.d"
  "bench_table2_buffer_mgmt"
  "bench_table2_buffer_mgmt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_buffer_mgmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
