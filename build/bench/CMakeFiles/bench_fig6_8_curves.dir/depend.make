# Empty dependencies file for bench_fig6_8_curves.
# This may be replaced when dependencies are built.
