# Empty compiler generated dependencies file for bench_future_fullmodel.
# This may be replaced when dependencies are built.
