file(REMOVE_RECURSE
  "CMakeFiles/bench_future_fullmodel.dir/bench_future_fullmodel.cpp.o"
  "CMakeFiles/bench_future_fullmodel.dir/bench_future_fullmodel.cpp.o.d"
  "bench_future_fullmodel"
  "bench_future_fullmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_future_fullmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
