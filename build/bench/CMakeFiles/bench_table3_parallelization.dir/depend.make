# Empty dependencies file for bench_table3_parallelization.
# This may be replaced when dependencies are built.
