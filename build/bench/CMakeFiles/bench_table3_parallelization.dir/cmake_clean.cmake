file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_parallelization.dir/bench_table3_parallelization.cpp.o"
  "CMakeFiles/bench_table3_parallelization.dir/bench_table3_parallelization.cpp.o.d"
  "bench_table3_parallelization"
  "bench_table3_parallelization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_parallelization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
