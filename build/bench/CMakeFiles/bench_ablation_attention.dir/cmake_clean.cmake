file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_attention.dir/bench_ablation_attention.cpp.o"
  "CMakeFiles/bench_ablation_attention.dir/bench_ablation_attention.cpp.o.d"
  "bench_ablation_attention"
  "bench_ablation_attention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_attention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
