
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_attention.cpp" "bench/CMakeFiles/bench_ablation_attention.dir/bench_ablation_attention.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_attention.dir/bench_ablation_attention.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/nodetr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/train/CMakeFiles/nodetr_train.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/nodetr_data.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/nodetr_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/nodetr_models.dir/DependInfo.cmake"
  "/root/repo/build/src/hls/CMakeFiles/nodetr_hls.dir/DependInfo.cmake"
  "/root/repo/build/src/ode/CMakeFiles/nodetr_ode.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/nodetr_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/fixed/CMakeFiles/nodetr_fixed.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/nodetr_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
