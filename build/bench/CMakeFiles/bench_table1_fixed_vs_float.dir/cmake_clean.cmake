file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_fixed_vs_float.dir/bench_table1_fixed_vs_float.cpp.o"
  "CMakeFiles/bench_table1_fixed_vs_float.dir/bench_table1_fixed_vs_float.cpp.o.d"
  "bench_table1_fixed_vs_float"
  "bench_table1_fixed_vs_float.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_fixed_vs_float.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
