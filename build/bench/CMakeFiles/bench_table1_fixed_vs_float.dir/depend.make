# Empty dependencies file for bench_table1_fixed_vs_float.
# This may be replaced when dependencies are built.
