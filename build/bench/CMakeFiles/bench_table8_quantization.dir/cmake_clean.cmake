file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_quantization.dir/bench_table8_quantization.cpp.o"
  "CMakeFiles/bench_table8_quantization.dir/bench_table8_quantization.cpp.o.d"
  "bench_table8_quantization"
  "bench_table8_quantization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_quantization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
