file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_mhsa_ratio.dir/bench_table6_mhsa_ratio.cpp.o"
  "CMakeFiles/bench_table6_mhsa_ratio.dir/bench_table6_mhsa_ratio.cpp.o.d"
  "bench_table6_mhsa_ratio"
  "bench_table6_mhsa_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_mhsa_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
