# Empty compiler generated dependencies file for bench_table6_mhsa_ratio.
# This may be replaced when dependencies are built.
