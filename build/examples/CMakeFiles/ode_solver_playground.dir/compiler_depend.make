# Empty compiler generated dependencies file for ode_solver_playground.
# This may be replaced when dependencies are built.
