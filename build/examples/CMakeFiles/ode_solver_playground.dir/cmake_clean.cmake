file(REMOVE_RECURSE
  "CMakeFiles/ode_solver_playground.dir/ode_solver_playground.cpp.o"
  "CMakeFiles/ode_solver_playground.dir/ode_solver_playground.cpp.o.d"
  "ode_solver_playground"
  "ode_solver_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ode_solver_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
