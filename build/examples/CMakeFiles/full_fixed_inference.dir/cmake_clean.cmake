file(REMOVE_RECURSE
  "CMakeFiles/full_fixed_inference.dir/full_fixed_inference.cpp.o"
  "CMakeFiles/full_fixed_inference.dir/full_fixed_inference.cpp.o.d"
  "full_fixed_inference"
  "full_fixed_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_fixed_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
