# Empty dependencies file for full_fixed_inference.
# This may be replaced when dependencies are built.
