# Empty compiler generated dependencies file for fpga_offload.
# This may be replaced when dependencies are built.
