file(REMOVE_RECURSE
  "CMakeFiles/fpga_offload.dir/fpga_offload.cpp.o"
  "CMakeFiles/fpga_offload.dir/fpga_offload.cpp.o.d"
  "fpga_offload"
  "fpga_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpga_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
