file(REMOVE_RECURSE
  "CMakeFiles/train_synthstl.dir/train_synthstl.cpp.o"
  "CMakeFiles/train_synthstl.dir/train_synthstl.cpp.o.d"
  "train_synthstl"
  "train_synthstl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_synthstl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
