# Empty dependencies file for train_synthstl.
# This may be replaced when dependencies are built.
