file(REMOVE_RECURSE
  "libnodetr_train.a"
)
