# Empty compiler generated dependencies file for nodetr_train.
# This may be replaced when dependencies are built.
