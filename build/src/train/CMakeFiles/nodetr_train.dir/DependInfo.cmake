
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/train/src/checkpoint.cpp" "src/train/CMakeFiles/nodetr_train.dir/src/checkpoint.cpp.o" "gcc" "src/train/CMakeFiles/nodetr_train.dir/src/checkpoint.cpp.o.d"
  "/root/repo/src/train/src/loss.cpp" "src/train/CMakeFiles/nodetr_train.dir/src/loss.cpp.o" "gcc" "src/train/CMakeFiles/nodetr_train.dir/src/loss.cpp.o.d"
  "/root/repo/src/train/src/optimizer.cpp" "src/train/CMakeFiles/nodetr_train.dir/src/optimizer.cpp.o" "gcc" "src/train/CMakeFiles/nodetr_train.dir/src/optimizer.cpp.o.d"
  "/root/repo/src/train/src/scheduler.cpp" "src/train/CMakeFiles/nodetr_train.dir/src/scheduler.cpp.o" "gcc" "src/train/CMakeFiles/nodetr_train.dir/src/scheduler.cpp.o.d"
  "/root/repo/src/train/src/trainer.cpp" "src/train/CMakeFiles/nodetr_train.dir/src/trainer.cpp.o" "gcc" "src/train/CMakeFiles/nodetr_train.dir/src/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/nodetr_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/nodetr_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/nodetr_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
