file(REMOVE_RECURSE
  "CMakeFiles/nodetr_train.dir/src/checkpoint.cpp.o"
  "CMakeFiles/nodetr_train.dir/src/checkpoint.cpp.o.d"
  "CMakeFiles/nodetr_train.dir/src/loss.cpp.o"
  "CMakeFiles/nodetr_train.dir/src/loss.cpp.o.d"
  "CMakeFiles/nodetr_train.dir/src/optimizer.cpp.o"
  "CMakeFiles/nodetr_train.dir/src/optimizer.cpp.o.d"
  "CMakeFiles/nodetr_train.dir/src/scheduler.cpp.o"
  "CMakeFiles/nodetr_train.dir/src/scheduler.cpp.o.d"
  "CMakeFiles/nodetr_train.dir/src/trainer.cpp.o"
  "CMakeFiles/nodetr_train.dir/src/trainer.cpp.o.d"
  "libnodetr_train.a"
  "libnodetr_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nodetr_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
