file(REMOVE_RECURSE
  "libnodetr_hls.a"
)
