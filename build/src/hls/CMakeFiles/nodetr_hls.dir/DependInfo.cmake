
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hls/src/cycle_model.cpp" "src/hls/CMakeFiles/nodetr_hls.dir/src/cycle_model.cpp.o" "gcc" "src/hls/CMakeFiles/nodetr_hls.dir/src/cycle_model.cpp.o.d"
  "/root/repo/src/hls/src/mhsa_ip.cpp" "src/hls/CMakeFiles/nodetr_hls.dir/src/mhsa_ip.cpp.o" "gcc" "src/hls/CMakeFiles/nodetr_hls.dir/src/mhsa_ip.cpp.o.d"
  "/root/repo/src/hls/src/model_plan.cpp" "src/hls/CMakeFiles/nodetr_hls.dir/src/model_plan.cpp.o" "gcc" "src/hls/CMakeFiles/nodetr_hls.dir/src/model_plan.cpp.o.d"
  "/root/repo/src/hls/src/power.cpp" "src/hls/CMakeFiles/nodetr_hls.dir/src/power.cpp.o" "gcc" "src/hls/CMakeFiles/nodetr_hls.dir/src/power.cpp.o.d"
  "/root/repo/src/hls/src/qexec.cpp" "src/hls/CMakeFiles/nodetr_hls.dir/src/qexec.cpp.o" "gcc" "src/hls/CMakeFiles/nodetr_hls.dir/src/qexec.cpp.o.d"
  "/root/repo/src/hls/src/quantize.cpp" "src/hls/CMakeFiles/nodetr_hls.dir/src/quantize.cpp.o" "gcc" "src/hls/CMakeFiles/nodetr_hls.dir/src/quantize.cpp.o.d"
  "/root/repo/src/hls/src/resources.cpp" "src/hls/CMakeFiles/nodetr_hls.dir/src/resources.cpp.o" "gcc" "src/hls/CMakeFiles/nodetr_hls.dir/src/resources.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/nodetr_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/fixed/CMakeFiles/nodetr_fixed.dir/DependInfo.cmake"
  "/root/repo/build/src/ode/CMakeFiles/nodetr_ode.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/nodetr_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
