file(REMOVE_RECURSE
  "CMakeFiles/nodetr_hls.dir/src/cycle_model.cpp.o"
  "CMakeFiles/nodetr_hls.dir/src/cycle_model.cpp.o.d"
  "CMakeFiles/nodetr_hls.dir/src/mhsa_ip.cpp.o"
  "CMakeFiles/nodetr_hls.dir/src/mhsa_ip.cpp.o.d"
  "CMakeFiles/nodetr_hls.dir/src/model_plan.cpp.o"
  "CMakeFiles/nodetr_hls.dir/src/model_plan.cpp.o.d"
  "CMakeFiles/nodetr_hls.dir/src/power.cpp.o"
  "CMakeFiles/nodetr_hls.dir/src/power.cpp.o.d"
  "CMakeFiles/nodetr_hls.dir/src/qexec.cpp.o"
  "CMakeFiles/nodetr_hls.dir/src/qexec.cpp.o.d"
  "CMakeFiles/nodetr_hls.dir/src/quantize.cpp.o"
  "CMakeFiles/nodetr_hls.dir/src/quantize.cpp.o.d"
  "CMakeFiles/nodetr_hls.dir/src/resources.cpp.o"
  "CMakeFiles/nodetr_hls.dir/src/resources.cpp.o.d"
  "libnodetr_hls.a"
  "libnodetr_hls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nodetr_hls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
