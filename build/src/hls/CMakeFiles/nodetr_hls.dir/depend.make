# Empty dependencies file for nodetr_hls.
# This may be replaced when dependencies are built.
