file(REMOVE_RECURSE
  "libnodetr_nn.a"
)
