
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/src/activations.cpp" "src/nn/CMakeFiles/nodetr_nn.dir/src/activations.cpp.o" "gcc" "src/nn/CMakeFiles/nodetr_nn.dir/src/activations.cpp.o.d"
  "/root/repo/src/nn/src/attention.cpp" "src/nn/CMakeFiles/nodetr_nn.dir/src/attention.cpp.o" "gcc" "src/nn/CMakeFiles/nodetr_nn.dir/src/attention.cpp.o.d"
  "/root/repo/src/nn/src/conv_layers.cpp" "src/nn/CMakeFiles/nodetr_nn.dir/src/conv_layers.cpp.o" "gcc" "src/nn/CMakeFiles/nodetr_nn.dir/src/conv_layers.cpp.o.d"
  "/root/repo/src/nn/src/dropout.cpp" "src/nn/CMakeFiles/nodetr_nn.dir/src/dropout.cpp.o" "gcc" "src/nn/CMakeFiles/nodetr_nn.dir/src/dropout.cpp.o.d"
  "/root/repo/src/nn/src/linear.cpp" "src/nn/CMakeFiles/nodetr_nn.dir/src/linear.cpp.o" "gcc" "src/nn/CMakeFiles/nodetr_nn.dir/src/linear.cpp.o.d"
  "/root/repo/src/nn/src/mhsa_block.cpp" "src/nn/CMakeFiles/nodetr_nn.dir/src/mhsa_block.cpp.o" "gcc" "src/nn/CMakeFiles/nodetr_nn.dir/src/mhsa_block.cpp.o.d"
  "/root/repo/src/nn/src/module.cpp" "src/nn/CMakeFiles/nodetr_nn.dir/src/module.cpp.o" "gcc" "src/nn/CMakeFiles/nodetr_nn.dir/src/module.cpp.o.d"
  "/root/repo/src/nn/src/norm.cpp" "src/nn/CMakeFiles/nodetr_nn.dir/src/norm.cpp.o" "gcc" "src/nn/CMakeFiles/nodetr_nn.dir/src/norm.cpp.o.d"
  "/root/repo/src/nn/src/pool.cpp" "src/nn/CMakeFiles/nodetr_nn.dir/src/pool.cpp.o" "gcc" "src/nn/CMakeFiles/nodetr_nn.dir/src/pool.cpp.o.d"
  "/root/repo/src/nn/src/posenc.cpp" "src/nn/CMakeFiles/nodetr_nn.dir/src/posenc.cpp.o" "gcc" "src/nn/CMakeFiles/nodetr_nn.dir/src/posenc.cpp.o.d"
  "/root/repo/src/nn/src/residual.cpp" "src/nn/CMakeFiles/nodetr_nn.dir/src/residual.cpp.o" "gcc" "src/nn/CMakeFiles/nodetr_nn.dir/src/residual.cpp.o.d"
  "/root/repo/src/nn/src/seq_attention.cpp" "src/nn/CMakeFiles/nodetr_nn.dir/src/seq_attention.cpp.o" "gcc" "src/nn/CMakeFiles/nodetr_nn.dir/src/seq_attention.cpp.o.d"
  "/root/repo/src/nn/src/sequential.cpp" "src/nn/CMakeFiles/nodetr_nn.dir/src/sequential.cpp.o" "gcc" "src/nn/CMakeFiles/nodetr_nn.dir/src/sequential.cpp.o.d"
  "/root/repo/src/nn/src/summary.cpp" "src/nn/CMakeFiles/nodetr_nn.dir/src/summary.cpp.o" "gcc" "src/nn/CMakeFiles/nodetr_nn.dir/src/summary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/nodetr_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
