# Empty compiler generated dependencies file for nodetr_nn.
# This may be replaced when dependencies are built.
