file(REMOVE_RECURSE
  "CMakeFiles/nodetr_nn.dir/src/activations.cpp.o"
  "CMakeFiles/nodetr_nn.dir/src/activations.cpp.o.d"
  "CMakeFiles/nodetr_nn.dir/src/attention.cpp.o"
  "CMakeFiles/nodetr_nn.dir/src/attention.cpp.o.d"
  "CMakeFiles/nodetr_nn.dir/src/conv_layers.cpp.o"
  "CMakeFiles/nodetr_nn.dir/src/conv_layers.cpp.o.d"
  "CMakeFiles/nodetr_nn.dir/src/dropout.cpp.o"
  "CMakeFiles/nodetr_nn.dir/src/dropout.cpp.o.d"
  "CMakeFiles/nodetr_nn.dir/src/linear.cpp.o"
  "CMakeFiles/nodetr_nn.dir/src/linear.cpp.o.d"
  "CMakeFiles/nodetr_nn.dir/src/mhsa_block.cpp.o"
  "CMakeFiles/nodetr_nn.dir/src/mhsa_block.cpp.o.d"
  "CMakeFiles/nodetr_nn.dir/src/module.cpp.o"
  "CMakeFiles/nodetr_nn.dir/src/module.cpp.o.d"
  "CMakeFiles/nodetr_nn.dir/src/norm.cpp.o"
  "CMakeFiles/nodetr_nn.dir/src/norm.cpp.o.d"
  "CMakeFiles/nodetr_nn.dir/src/pool.cpp.o"
  "CMakeFiles/nodetr_nn.dir/src/pool.cpp.o.d"
  "CMakeFiles/nodetr_nn.dir/src/posenc.cpp.o"
  "CMakeFiles/nodetr_nn.dir/src/posenc.cpp.o.d"
  "CMakeFiles/nodetr_nn.dir/src/residual.cpp.o"
  "CMakeFiles/nodetr_nn.dir/src/residual.cpp.o.d"
  "CMakeFiles/nodetr_nn.dir/src/seq_attention.cpp.o"
  "CMakeFiles/nodetr_nn.dir/src/seq_attention.cpp.o.d"
  "CMakeFiles/nodetr_nn.dir/src/sequential.cpp.o"
  "CMakeFiles/nodetr_nn.dir/src/sequential.cpp.o.d"
  "CMakeFiles/nodetr_nn.dir/src/summary.cpp.o"
  "CMakeFiles/nodetr_nn.dir/src/summary.cpp.o.d"
  "libnodetr_nn.a"
  "libnodetr_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nodetr_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
