file(REMOVE_RECURSE
  "libnodetr_tensor.a"
)
