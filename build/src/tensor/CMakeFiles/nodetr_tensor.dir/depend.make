# Empty dependencies file for nodetr_tensor.
# This may be replaced when dependencies are built.
