file(REMOVE_RECURSE
  "CMakeFiles/nodetr_tensor.dir/src/conv.cpp.o"
  "CMakeFiles/nodetr_tensor.dir/src/conv.cpp.o.d"
  "CMakeFiles/nodetr_tensor.dir/src/gemm.cpp.o"
  "CMakeFiles/nodetr_tensor.dir/src/gemm.cpp.o.d"
  "CMakeFiles/nodetr_tensor.dir/src/ops.cpp.o"
  "CMakeFiles/nodetr_tensor.dir/src/ops.cpp.o.d"
  "CMakeFiles/nodetr_tensor.dir/src/parallel.cpp.o"
  "CMakeFiles/nodetr_tensor.dir/src/parallel.cpp.o.d"
  "CMakeFiles/nodetr_tensor.dir/src/rng.cpp.o"
  "CMakeFiles/nodetr_tensor.dir/src/rng.cpp.o.d"
  "CMakeFiles/nodetr_tensor.dir/src/serialize.cpp.o"
  "CMakeFiles/nodetr_tensor.dir/src/serialize.cpp.o.d"
  "CMakeFiles/nodetr_tensor.dir/src/tensor.cpp.o"
  "CMakeFiles/nodetr_tensor.dir/src/tensor.cpp.o.d"
  "libnodetr_tensor.a"
  "libnodetr_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nodetr_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
