
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tensor/src/conv.cpp" "src/tensor/CMakeFiles/nodetr_tensor.dir/src/conv.cpp.o" "gcc" "src/tensor/CMakeFiles/nodetr_tensor.dir/src/conv.cpp.o.d"
  "/root/repo/src/tensor/src/gemm.cpp" "src/tensor/CMakeFiles/nodetr_tensor.dir/src/gemm.cpp.o" "gcc" "src/tensor/CMakeFiles/nodetr_tensor.dir/src/gemm.cpp.o.d"
  "/root/repo/src/tensor/src/ops.cpp" "src/tensor/CMakeFiles/nodetr_tensor.dir/src/ops.cpp.o" "gcc" "src/tensor/CMakeFiles/nodetr_tensor.dir/src/ops.cpp.o.d"
  "/root/repo/src/tensor/src/parallel.cpp" "src/tensor/CMakeFiles/nodetr_tensor.dir/src/parallel.cpp.o" "gcc" "src/tensor/CMakeFiles/nodetr_tensor.dir/src/parallel.cpp.o.d"
  "/root/repo/src/tensor/src/rng.cpp" "src/tensor/CMakeFiles/nodetr_tensor.dir/src/rng.cpp.o" "gcc" "src/tensor/CMakeFiles/nodetr_tensor.dir/src/rng.cpp.o.d"
  "/root/repo/src/tensor/src/serialize.cpp" "src/tensor/CMakeFiles/nodetr_tensor.dir/src/serialize.cpp.o" "gcc" "src/tensor/CMakeFiles/nodetr_tensor.dir/src/serialize.cpp.o.d"
  "/root/repo/src/tensor/src/tensor.cpp" "src/tensor/CMakeFiles/nodetr_tensor.dir/src/tensor.cpp.o" "gcc" "src/tensor/CMakeFiles/nodetr_tensor.dir/src/tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
