# Empty compiler generated dependencies file for nodetr_rt.
# This may be replaced when dependencies are built.
