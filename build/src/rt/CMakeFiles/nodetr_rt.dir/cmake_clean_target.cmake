file(REMOVE_RECURSE
  "libnodetr_rt.a"
)
