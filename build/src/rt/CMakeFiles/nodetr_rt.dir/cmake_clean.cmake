file(REMOVE_RECURSE
  "CMakeFiles/nodetr_rt.dir/src/accelerator.cpp.o"
  "CMakeFiles/nodetr_rt.dir/src/accelerator.cpp.o.d"
  "CMakeFiles/nodetr_rt.dir/src/axi.cpp.o"
  "CMakeFiles/nodetr_rt.dir/src/axi.cpp.o.d"
  "CMakeFiles/nodetr_rt.dir/src/board.cpp.o"
  "CMakeFiles/nodetr_rt.dir/src/board.cpp.o.d"
  "libnodetr_rt.a"
  "libnodetr_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nodetr_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
