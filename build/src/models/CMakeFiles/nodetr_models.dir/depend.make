# Empty dependencies file for nodetr_models.
# This may be replaced when dependencies are built.
