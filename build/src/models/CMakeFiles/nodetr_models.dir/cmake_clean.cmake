file(REMOVE_RECURSE
  "CMakeFiles/nodetr_models.dir/src/botnet.cpp.o"
  "CMakeFiles/nodetr_models.dir/src/botnet.cpp.o.d"
  "CMakeFiles/nodetr_models.dir/src/odenet.cpp.o"
  "CMakeFiles/nodetr_models.dir/src/odenet.cpp.o.d"
  "CMakeFiles/nodetr_models.dir/src/resnet.cpp.o"
  "CMakeFiles/nodetr_models.dir/src/resnet.cpp.o.d"
  "CMakeFiles/nodetr_models.dir/src/vit.cpp.o"
  "CMakeFiles/nodetr_models.dir/src/vit.cpp.o.d"
  "CMakeFiles/nodetr_models.dir/src/zoo.cpp.o"
  "CMakeFiles/nodetr_models.dir/src/zoo.cpp.o.d"
  "libnodetr_models.a"
  "libnodetr_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nodetr_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
