file(REMOVE_RECURSE
  "libnodetr_models.a"
)
