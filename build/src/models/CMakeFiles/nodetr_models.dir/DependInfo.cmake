
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/src/botnet.cpp" "src/models/CMakeFiles/nodetr_models.dir/src/botnet.cpp.o" "gcc" "src/models/CMakeFiles/nodetr_models.dir/src/botnet.cpp.o.d"
  "/root/repo/src/models/src/odenet.cpp" "src/models/CMakeFiles/nodetr_models.dir/src/odenet.cpp.o" "gcc" "src/models/CMakeFiles/nodetr_models.dir/src/odenet.cpp.o.d"
  "/root/repo/src/models/src/resnet.cpp" "src/models/CMakeFiles/nodetr_models.dir/src/resnet.cpp.o" "gcc" "src/models/CMakeFiles/nodetr_models.dir/src/resnet.cpp.o.d"
  "/root/repo/src/models/src/vit.cpp" "src/models/CMakeFiles/nodetr_models.dir/src/vit.cpp.o" "gcc" "src/models/CMakeFiles/nodetr_models.dir/src/vit.cpp.o.d"
  "/root/repo/src/models/src/zoo.cpp" "src/models/CMakeFiles/nodetr_models.dir/src/zoo.cpp.o" "gcc" "src/models/CMakeFiles/nodetr_models.dir/src/zoo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/nodetr_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/ode/CMakeFiles/nodetr_ode.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/nodetr_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
