# Empty compiler generated dependencies file for nodetr_core.
# This may be replaced when dependencies are built.
