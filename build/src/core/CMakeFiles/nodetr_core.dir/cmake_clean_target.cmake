file(REMOVE_RECURSE
  "libnodetr_core.a"
)
