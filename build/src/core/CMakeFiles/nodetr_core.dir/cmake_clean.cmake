file(REMOVE_RECURSE
  "CMakeFiles/nodetr_core.dir/src/lightweight_transformer.cpp.o"
  "CMakeFiles/nodetr_core.dir/src/lightweight_transformer.cpp.o.d"
  "libnodetr_core.a"
  "libnodetr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nodetr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
