# Empty dependencies file for nodetr_data.
# This may be replaced when dependencies are built.
