file(REMOVE_RECURSE
  "CMakeFiles/nodetr_data.dir/src/augment.cpp.o"
  "CMakeFiles/nodetr_data.dir/src/augment.cpp.o.d"
  "CMakeFiles/nodetr_data.dir/src/file_dataset.cpp.o"
  "CMakeFiles/nodetr_data.dir/src/file_dataset.cpp.o.d"
  "CMakeFiles/nodetr_data.dir/src/loader.cpp.o"
  "CMakeFiles/nodetr_data.dir/src/loader.cpp.o.d"
  "CMakeFiles/nodetr_data.dir/src/synth_stl.cpp.o"
  "CMakeFiles/nodetr_data.dir/src/synth_stl.cpp.o.d"
  "libnodetr_data.a"
  "libnodetr_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nodetr_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
