file(REMOVE_RECURSE
  "libnodetr_data.a"
)
