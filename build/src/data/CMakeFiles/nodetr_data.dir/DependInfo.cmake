
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/src/augment.cpp" "src/data/CMakeFiles/nodetr_data.dir/src/augment.cpp.o" "gcc" "src/data/CMakeFiles/nodetr_data.dir/src/augment.cpp.o.d"
  "/root/repo/src/data/src/file_dataset.cpp" "src/data/CMakeFiles/nodetr_data.dir/src/file_dataset.cpp.o" "gcc" "src/data/CMakeFiles/nodetr_data.dir/src/file_dataset.cpp.o.d"
  "/root/repo/src/data/src/loader.cpp" "src/data/CMakeFiles/nodetr_data.dir/src/loader.cpp.o" "gcc" "src/data/CMakeFiles/nodetr_data.dir/src/loader.cpp.o.d"
  "/root/repo/src/data/src/synth_stl.cpp" "src/data/CMakeFiles/nodetr_data.dir/src/synth_stl.cpp.o" "gcc" "src/data/CMakeFiles/nodetr_data.dir/src/synth_stl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/nodetr_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
