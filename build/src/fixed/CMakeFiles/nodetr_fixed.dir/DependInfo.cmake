
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fixed/src/fixed_tensor.cpp" "src/fixed/CMakeFiles/nodetr_fixed.dir/src/fixed_tensor.cpp.o" "gcc" "src/fixed/CMakeFiles/nodetr_fixed.dir/src/fixed_tensor.cpp.o.d"
  "/root/repo/src/fixed/src/format.cpp" "src/fixed/CMakeFiles/nodetr_fixed.dir/src/format.cpp.o" "gcc" "src/fixed/CMakeFiles/nodetr_fixed.dir/src/format.cpp.o.d"
  "/root/repo/src/fixed/src/qconv.cpp" "src/fixed/CMakeFiles/nodetr_fixed.dir/src/qconv.cpp.o" "gcc" "src/fixed/CMakeFiles/nodetr_fixed.dir/src/qconv.cpp.o.d"
  "/root/repo/src/fixed/src/qops.cpp" "src/fixed/CMakeFiles/nodetr_fixed.dir/src/qops.cpp.o" "gcc" "src/fixed/CMakeFiles/nodetr_fixed.dir/src/qops.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/nodetr_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
