# Empty compiler generated dependencies file for nodetr_fixed.
# This may be replaced when dependencies are built.
