file(REMOVE_RECURSE
  "CMakeFiles/nodetr_fixed.dir/src/fixed_tensor.cpp.o"
  "CMakeFiles/nodetr_fixed.dir/src/fixed_tensor.cpp.o.d"
  "CMakeFiles/nodetr_fixed.dir/src/format.cpp.o"
  "CMakeFiles/nodetr_fixed.dir/src/format.cpp.o.d"
  "CMakeFiles/nodetr_fixed.dir/src/qconv.cpp.o"
  "CMakeFiles/nodetr_fixed.dir/src/qconv.cpp.o.d"
  "CMakeFiles/nodetr_fixed.dir/src/qops.cpp.o"
  "CMakeFiles/nodetr_fixed.dir/src/qops.cpp.o.d"
  "libnodetr_fixed.a"
  "libnodetr_fixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nodetr_fixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
