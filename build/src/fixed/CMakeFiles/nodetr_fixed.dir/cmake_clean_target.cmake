file(REMOVE_RECURSE
  "libnodetr_fixed.a"
)
