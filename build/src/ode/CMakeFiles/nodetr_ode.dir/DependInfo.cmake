
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ode/src/adjoint.cpp" "src/ode/CMakeFiles/nodetr_ode.dir/src/adjoint.cpp.o" "gcc" "src/ode/CMakeFiles/nodetr_ode.dir/src/adjoint.cpp.o.d"
  "/root/repo/src/ode/src/ode_block.cpp" "src/ode/CMakeFiles/nodetr_ode.dir/src/ode_block.cpp.o" "gcc" "src/ode/CMakeFiles/nodetr_ode.dir/src/ode_block.cpp.o.d"
  "/root/repo/src/ode/src/solver.cpp" "src/ode/CMakeFiles/nodetr_ode.dir/src/solver.cpp.o" "gcc" "src/ode/CMakeFiles/nodetr_ode.dir/src/solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/nodetr_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/nodetr_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
