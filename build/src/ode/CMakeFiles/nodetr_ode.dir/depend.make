# Empty dependencies file for nodetr_ode.
# This may be replaced when dependencies are built.
