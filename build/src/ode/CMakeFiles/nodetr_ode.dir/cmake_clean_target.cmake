file(REMOVE_RECURSE
  "libnodetr_ode.a"
)
