file(REMOVE_RECURSE
  "CMakeFiles/nodetr_ode.dir/src/adjoint.cpp.o"
  "CMakeFiles/nodetr_ode.dir/src/adjoint.cpp.o.d"
  "CMakeFiles/nodetr_ode.dir/src/ode_block.cpp.o"
  "CMakeFiles/nodetr_ode.dir/src/ode_block.cpp.o.d"
  "CMakeFiles/nodetr_ode.dir/src/solver.cpp.o"
  "CMakeFiles/nodetr_ode.dir/src/solver.cpp.o.d"
  "libnodetr_ode.a"
  "libnodetr_ode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nodetr_ode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
