// Train the proposed model on the SynthSTL dataset with the paper's recipe
// (SGD momentum 0.9, weight decay 1e-4, CosineAnnealingWarmRestarts, flip /
// jitter / erase augmentation), then save a checkpoint and the accuracy
// curve CSV.
//
//   ./train_synthstl [epochs] [train_per_class] [out_prefix]
//   defaults: 5 epochs, 8 images/class, ./synthstl
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "nodetr/core/lightweight_transformer.hpp"

namespace core = nodetr::core;
namespace d = nodetr::data;
namespace tr = nodetr::train;

int main(int argc, char** argv) {
  const auto epochs = argc > 1 ? std::atoll(argv[1]) : 5;
  const auto per_class = argc > 2 ? std::atoll(argv[2]) : 8;
  const std::string prefix = argc > 3 ? argv[3] : "synthstl";

  d::SynthStl dataset({.image_size = 32,
                       .train_per_class = per_class,
                       .test_per_class = std::max<nodetr::tensor::index_t>(per_class / 2, 2),
                       .seed = 0x57e1});
  std::printf("SynthSTL: %zu train / %zu test images (32x32, 10 classes)\n",
              dataset.train().size(), dataset.test().size());

  core::Options opts;
  opts.image_size = 32;
  opts.stem_channels = 16;
  opts.mhsa_bottleneck = 32;
  opts.mhsa_heads = 2;
  opts.solver_steps = 3;
  core::LightweightTransformer model(opts);
  std::printf("proposed model: %lld parameters\n\n",
              static_cast<long long>(model.num_parameters()));

  tr::TrainConfig cfg;
  cfg.epochs = epochs;
  cfg.batch_size = 10;
  cfg.augment = true;
  cfg.sgd = {.lr = 0.05f, .momentum = 0.9f, .weight_decay = 1e-4f};
  cfg.schedule = {.eta_max = 0.05f, .eta_min = 1e-4f, .t0 = 10, .t_mult = 2};
  cfg.on_epoch = [](nodetr::tensor::index_t epoch, float loss, float acc) {
    std::printf("epoch %3lld  train_loss %.4f  test_acc %.1f%%\n",
                static_cast<long long>(epoch), loss, 100.0f * acc);
  };
  auto history = model.fit(dataset.train(), dataset.test(), cfg);

  std::printf("\nbest accuracy: %.1f%%\n", 100.0f * history.best_accuracy());
  const std::string ckpt = prefix + "_model.bin";
  const std::string csv = prefix + "_curve.csv";
  model.save(ckpt);
  std::ofstream(csv) << history.to_csv();
  std::printf("saved checkpoint to %s and curve to %s\n", ckpt.c_str(), csv.c_str());
  return 0;
}
