// HW/SW co-design demo (Fig. 5): run the proposed model with its MHSA on
// the simulated ZCU104 accelerator, in both floating-point and fixed-point
// datapaths, and report agreement, timing split, resources and power.
//
//   ./fpga_offload [runs]   (default 5)
#include <cstdio>
#include <cstdlib>

#include "nodetr/core/lightweight_transformer.hpp"
#include "nodetr/tensor/ops.hpp"

namespace core = nodetr::core;
namespace hls = nodetr::hls;
namespace rt = nodetr::rt;
namespace nt = nodetr::tensor;

int main(int argc, char** argv) {
  const int runs = argc > 1 ? std::atoi(argv[1]) : 5;

  core::Options opts;
  opts.image_size = 32;
  opts.stem_channels = 16;
  opts.mhsa_bottleneck = 16;
  opts.mhsa_heads = 2;
  opts.solver_steps = 3;
  core::LightweightTransformer model(opts);
  model.model().train(false);

  nt::Rng rng(42);
  auto batch = rng.rand(nt::Shape{1, 3, 32, 32});
  auto sw_logits = model.predict_logits(batch);

  for (auto dtype : {hls::DataType::kFloat32, hls::DataType::kFixed}) {
    auto session = model.offload(dtype);
    std::vector<double> totals;
    nt::Tensor hw_logits;
    for (int r = 0; r < runs; ++r) {
      hw_logits = session->forward(batch);
      totals.push_back(session->last_timing().total_ms());
    }
    const auto stats = rt::summarize(totals);
    const auto& t = session->last_timing();
    const char* name = dtype == hls::DataType::kFloat32 ? "float32" : "fixed  ";
    std::printf("[%s] max|logit diff| vs software: %.6f\n", name,
                nt::max_abs_diff(hw_logits, sw_logits));
    std::printf("[%s] PS (measured) %.3f ms + PL (simulated) %.3f ms; "
                "mean total %.3f ms over %d runs\n",
                name, t.ps_ms, t.pl_ms, stats.mean_ms, runs);
    const auto res = model.estimate_resources(dtype);
    std::printf("[%s] IP resources: BRAM18 %lld  DSP %lld  FF %lld  LUT %lld;  %.3f W\n\n",
                name, static_cast<long long>(res.bram18), static_cast<long long>(res.dsp),
                static_cast<long long>(res.ff), static_cast<long long>(res.lut),
                model.estimate_ip_watts(dtype));
  }
  return 0;
}
