// Serving demo: stand up the batched inference engine over the simulated
// MHSA accelerator, fire concurrent clients at it, and print the stats the
// engine exposes (plus the obs metrics the serving path records).
//
//   ./serve_demo [requests_per_client] [--devices N] [--hot-swap]
//                                                    (default 16, 0, off)
//
// --devices N stands up a cluster-mode fleet instead of the single shared
// accelerator: N simulated boards at alternating 200/100 MHz clocks behind
// the cost-model router, with the per-board routing/breaker stats printed at
// the end (faster boards absorb proportionally more rows).
//
// --hot-swap runs a live model update after the client wave: a fine-tuned
// candidate is published into the engine's version registry, canaried into
// traffic (whole batches only), shadow-scored against the active version,
// and promoted — all while requests keep flowing, with the swap stats and
// version lifecycle printed at the end.
#include <cstdio>
#include <cstdlib>
#include <string_view>
#include <thread>

#include "nodetr/nn/attention.hpp"
#include "nodetr/obs/obs.hpp"
#include "nodetr/serve/serve.hpp"
#include "nodetr/tensor/ops.hpp"
#include "nodetr/tensor/tune.hpp"

namespace serve = nodetr::serve;
namespace hls = nodetr::hls;
namespace nn = nodetr::nn;
namespace nt = nodetr::tensor;
namespace obs = nodetr::obs;
using nt::index_t;

int main(int argc, char** argv) {
  int per_client = 16;
  std::size_t n_devices = 0;
  bool hot_swap = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--devices" && i + 1 < argc) {
      n_devices = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::string_view(argv[i]) == "--hot-swap") {
      hot_swap = true;
    } else {
      per_client = std::atoi(argv[i]);
    }
  }
  constexpr int kClients = 4;

  // The paper's proposed MHSA geometry (64ch, 6x6, 4 heads), fixed-point.
  nt::Rng rng(42);
  nn::MhsaConfig cfg;
  cfg.dim = 64;
  cfg.heads = 4;
  cfg.height = 6;
  cfg.width = 6;
  nn::MultiHeadSelfAttention mhsa(cfg, rng);
  mhsa.train(false);

  serve::EngineConfig config;
  config.point = hls::MhsaDesignPoint::proposed_64(hls::DataType::kFixed);
  config.backend = serve::Backend::kFpgaFixed;
  config.workers = 2;
  config.queue_capacity = 32;
  config.batcher.max_batch = 8;
  config.batcher.max_wait_us = 2000;
  if (hot_swap) {
    // The demo candidate intentionally differs from the active version (the
    // whole point of an update), so give the canary a quality gate that
    // tolerates the nudge while still shadow-scoring every canary batch.
    config.hot_swap.canary_fraction = 0.5;
    config.hot_swap.min_canary_batches = 4;
    config.hot_swap.max_divergence = 0.05;
  }
  if (n_devices > 0) {
    // Fleet mode: one worker per simulated board, alternating clocks so the
    // router's cost model visibly skews rows toward the faster boards.
    config.devices.resize(n_devices);
    for (std::size_t d = 0; d < n_devices; ++d) {
      config.devices[d].name = "board" + std::to_string(d);
      config.devices[d].backend = serve::Backend::kFpgaFixed;
      config.devices[d].clock_mhz = d % 2 == 0 ? 200.0 : 100.0;
    }
  }
  serve::InferenceEngine engine(config, hls::MhsaWeights::from_module(mhsa));
  // Which GEMM kernel/blocking this process serves with — perf regressions
  // in the CPU backend are attributable only if this is in the log.
  std::printf("%s\n", nt::tune::describe(nt::tune::gemm_config()).c_str());
  if (n_devices > 0) {
    std::printf("engine: %zu-board fleet, backend %s, queue %zu per board, max_batch %lld\n",
                n_devices, serve::to_string(config.devices[0].backend), config.queue_capacity,
                static_cast<long long>(config.batcher.max_batch));
  } else {
    std::printf("engine: %d workers, backend %s, queue %zu (%s), max_batch %lld\n",
                static_cast<int>(config.workers), serve::to_string(config.backend),
                config.queue_capacity,
                config.policy == serve::BackpressurePolicy::kBlock ? "block" : "reject",
                static_cast<long long>(config.batcher.max_batch));
  }

  std::vector<std::thread> clients;
  std::mutex mu;  // guards rng and stdout
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < per_client; ++i) {
        nt::Tensor x;
        {
          std::lock_guard lk(mu);
          x = rng.rand(nt::Shape{1 + (c + i) % 2, cfg.dim, cfg.height, cfg.width});
        }
        auto y = engine.submit(x).get();
        if (i == 0) {
          std::lock_guard lk(mu);
          std::printf("client %d: first response shape (%lld, %lld, %lld, %lld)\n", c,
                      static_cast<long long>(y.dim(0)), static_cast<long long>(y.dim(1)),
                      static_cast<long long>(y.dim(2)), static_cast<long long>(y.dim(3)));
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  if (hot_swap) {
    // Live model update walkthrough: a "fine-tuned" candidate (here: the
    // same weights nudged by a constant, standing in for a ContinualTuner
    // publish) rolls out via canary while traffic keeps flowing.
    hls::MhsaWeights candidate = hls::MhsaWeights::from_module(mhsa);
    for (nt::Tensor* t : {&candidate.wq, &candidate.wk, &candidate.wv}) {
      float* p = t->data();
      for (index_t k = 0; k < t->numel(); ++k) p[k] += 1e-4f;
    }
    const auto id = engine.registry().publish(candidate, "demo fine-tune");
    std::printf("\n[hot-swap] published candidate v%llu; beginning canary\n",
                static_cast<unsigned long long>(id));
    engine.begin_swap(id);
    while (engine.swap_stats().canary_in_flight) {
      const nt::Tensor x = rng.rand(nt::Shape{1, cfg.dim, cfg.height, cfg.width});
      (void)engine.submit(x).get();
    }
    const auto swap = engine.swap_stats();
    std::printf("[hot-swap] active v%llu  canary batches %llu  shadow samples %llu  "
                "divergence mean %.3g max %.3g\n",
                static_cast<unsigned long long>(swap.active_version),
                static_cast<unsigned long long>(swap.canary_batches),
                static_cast<unsigned long long>(swap.shadow_samples), swap.divergence_mean,
                swap.divergence_max);
    std::printf("[hot-swap] commits %llu  rollbacks %llu  restages %llu  "
                "stage pause p50 %.1f us p99 %.1f us\n",
                static_cast<unsigned long long>(swap.swaps_committed),
                static_cast<unsigned long long>(swap.swaps_rolled_back),
                static_cast<unsigned long long>(swap.restages), swap.stage_p50_us,
                swap.stage_p99_us);
    for (const auto& v : engine.registry().list()) {
      std::printf("[hot-swap] registry v%llu [%s] %s\n",
                  static_cast<unsigned long long>(v.id), serve::to_string(v.state),
                  v.note.c_str());
    }
  }

  engine.shutdown();

  const auto stats = engine.stats();
  std::printf("\nsubmitted %llu  completed %llu  failed %llu  batches %llu  rows %llu\n",
              static_cast<unsigned long long>(stats.submitted),
              static_cast<unsigned long long>(stats.completed),
              static_cast<unsigned long long>(stats.failed),
              static_cast<unsigned long long>(stats.batches),
              static_cast<unsigned long long>(stats.rows));
  std::printf("batch occupancy %.2f  simulated accelerator cycles %lld\n",
              stats.occupancy(config.batcher.max_batch),
              static_cast<long long>(stats.sim_cycles));
  auto& latency = obs::Registry::instance().histogram("serve.request_latency_us");
  std::printf("request latency: p50 %.0f us  p95 %.0f us  p99 %.0f us\n",
              latency.percentile(50), latency.percentile(95), latency.percentile(99));

  for (const auto& [backend, d] : stats.devices) {
    std::printf("device[%s]: starts %llu  dma in %llu B  dma out %llu B  "
                "weight bytes saved %llu B  stall cycles %llu  utilization %.1f%%\n",
                backend.c_str(), static_cast<unsigned long long>(d.starts),
                static_cast<unsigned long long>(d.dma_bytes_in),
                static_cast<unsigned long long>(d.dma_bytes_out),
                static_cast<unsigned long long>(d.weight_bytes_saved),
                static_cast<unsigned long long>(d.stall_cycles), d.utilization_pct());
  }
  for (const auto& [name, ds] : stats.device_stats) {
    std::printf("board[%s]: %s @ est %.2f us/row  rows %llu  batches %llu  retries %llu  "
                "breaker opens %llu closes %llu%s  busy cycles %lld\n",
                name.c_str(), ds.backend.c_str(), ds.est_us_per_row,
                static_cast<unsigned long long>(ds.rows),
                static_cast<unsigned long long>(ds.batches),
                static_cast<unsigned long long>(ds.retries),
                static_cast<unsigned long long>(ds.breaker_opens),
                static_cast<unsigned long long>(ds.breaker_closes),
                ds.breaker_open ? "  [OPEN]" : "",
                static_cast<long long>(ds.counters.total_cycles()));
  }
  std::printf("slo window: resolved %llu  goodput %.3f  queue-wait p99 %.0f us  "
              "latency p99 %.0f us  breaches %llu%s\n",
              static_cast<unsigned long long>(stats.slo.window_resolved()), stats.slo.goodput,
              stats.slo.queue_wait_p99_us, stats.slo.latency_p99_us,
              static_cast<unsigned long long>(stats.slo.breaches),
              stats.slo.breached() ? "  [BREACHED]" : "");
  return stats.failed == 0 && stats.completed == stats.submitted ? 0 : 1;
}
