// Serving demo: stand up the batched inference engine over the simulated
// MHSA accelerator, fire concurrent clients at it, and print the stats the
// engine exposes (plus the obs metrics the serving path records).
//
//   ./serve_demo [requests_per_client]   (default 16)
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "nodetr/nn/attention.hpp"
#include "nodetr/obs/obs.hpp"
#include "nodetr/serve/serve.hpp"
#include "nodetr/tensor/ops.hpp"

namespace serve = nodetr::serve;
namespace hls = nodetr::hls;
namespace nn = nodetr::nn;
namespace nt = nodetr::tensor;
namespace obs = nodetr::obs;
using nt::index_t;

int main(int argc, char** argv) {
  const int per_client = argc > 1 ? std::atoi(argv[1]) : 16;
  constexpr int kClients = 4;

  // The paper's proposed MHSA geometry (64ch, 6x6, 4 heads), fixed-point.
  nt::Rng rng(42);
  nn::MhsaConfig cfg;
  cfg.dim = 64;
  cfg.heads = 4;
  cfg.height = 6;
  cfg.width = 6;
  nn::MultiHeadSelfAttention mhsa(cfg, rng);
  mhsa.train(false);

  serve::EngineConfig config;
  config.point = hls::MhsaDesignPoint::proposed_64(hls::DataType::kFixed);
  config.backend = serve::Backend::kFpgaFixed;
  config.workers = 2;
  config.queue_capacity = 32;
  config.batcher.max_batch = 8;
  config.batcher.max_wait_us = 2000;
  serve::InferenceEngine engine(config, hls::MhsaWeights::from_module(mhsa));
  std::printf("engine: %d workers, backend %s, queue %zu (%s), max_batch %lld\n",
              static_cast<int>(config.workers), serve::to_string(config.backend),
              config.queue_capacity,
              config.policy == serve::BackpressurePolicy::kBlock ? "block" : "reject",
              static_cast<long long>(config.batcher.max_batch));

  std::vector<std::thread> clients;
  std::mutex mu;  // guards rng and stdout
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < per_client; ++i) {
        nt::Tensor x;
        {
          std::lock_guard lk(mu);
          x = rng.rand(nt::Shape{1 + (c + i) % 2, cfg.dim, cfg.height, cfg.width});
        }
        auto y = engine.submit(x).get();
        if (i == 0) {
          std::lock_guard lk(mu);
          std::printf("client %d: first response shape (%lld, %lld, %lld, %lld)\n", c,
                      static_cast<long long>(y.dim(0)), static_cast<long long>(y.dim(1)),
                      static_cast<long long>(y.dim(2)), static_cast<long long>(y.dim(3)));
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  engine.shutdown();

  const auto stats = engine.stats();
  std::printf("\nsubmitted %llu  completed %llu  failed %llu  batches %llu  rows %llu\n",
              static_cast<unsigned long long>(stats.submitted),
              static_cast<unsigned long long>(stats.completed),
              static_cast<unsigned long long>(stats.failed),
              static_cast<unsigned long long>(stats.batches),
              static_cast<unsigned long long>(stats.rows));
  std::printf("batch occupancy %.2f  simulated accelerator cycles %lld\n",
              stats.occupancy(config.batcher.max_batch),
              static_cast<long long>(stats.sim_cycles));
  auto& latency = obs::Registry::instance().histogram("serve.request_latency_us");
  std::printf("request latency: p50 %.0f us  p95 %.0f us  p99 %.0f us\n",
              latency.percentile(50), latency.percentile(95), latency.percentile(99));

  for (const auto& [backend, d] : stats.devices) {
    std::printf("device[%s]: starts %llu  dma in %llu B  dma out %llu B  "
                "weight bytes saved %llu B  stall cycles %llu  utilization %.1f%%\n",
                backend.c_str(), static_cast<unsigned long long>(d.starts),
                static_cast<unsigned long long>(d.dma_bytes_in),
                static_cast<unsigned long long>(d.dma_bytes_out),
                static_cast<unsigned long long>(d.weight_bytes_saved),
                static_cast<unsigned long long>(d.stall_cycles), d.utilization_pct());
  }
  std::printf("slo window: resolved %llu  goodput %.3f  queue-wait p99 %.0f us  "
              "latency p99 %.0f us  breaches %llu%s\n",
              static_cast<unsigned long long>(stats.slo.window_resolved()), stats.slo.goodput,
              stats.slo.queue_wait_p99_us, stats.slo.latency_p99_us,
              static_cast<unsigned long long>(stats.slo.breaches),
              stats.slo.breached() ? "  [BREACHED]" : "");
  return stats.failed == 0 && stats.completed == stats.submitted ? 0 : 1;
}
