// Full-model fixed-point inference (the paper's future work): execute the
// ENTIRE proposed model on the bit-accurate fixed datapath and compare with
// float software execution across the Table VIII formats. Also prints the
// model structure via nn::summary.
//
//   ./full_fixed_inference [checkpoint.bin]
#include <cstdio>

#include "nodetr/core/lightweight_transformer.hpp"
#include "nodetr/hls/model_plan.hpp"
#include "nodetr/hls/qexec.hpp"
#include "nodetr/nn/summary.hpp"
#include "nodetr/tensor/ops.hpp"

namespace core = nodetr::core;
namespace d = nodetr::data;
namespace fx = nodetr::fx;
namespace hls = nodetr::hls;
namespace nt = nodetr::tensor;

int main(int argc, char** argv) {
  core::Options opts;
  opts.image_size = 32;
  opts.stem_channels = 16;
  opts.mhsa_bottleneck = 32;
  opts.mhsa_heads = 2;
  opts.solver_steps = 3;
  core::LightweightTransformer model(opts);
  if (argc > 1) model.load(argv[1]);
  model.model().train(false);

  std::printf("%s\n", nodetr::nn::summary(model.model()).c_str());

  d::SynthStl ds({.image_size = 32, .train_per_class = 1, .test_per_class = 3, .seed = 0xff1});
  auto batch = d::stack(ds.test(), 0, static_cast<nt::index_t>(ds.test().size()));
  auto ref = model.predict_logits(batch.images);

  std::printf("full-model fixed-point inference vs float software:\n");
  std::printf("  %-14s %14s %14s\n", "scheme", "mean|dlogit|", "max|dlogit|");
  for (const auto& scheme : fx::table8_schemes()) {
    hls::QuantizedExecutor exec(scheme);
    auto q = exec.run(model.model(), batch.images);
    std::printf("  %-14s %14.6f %14.6f\n", scheme.to_string().c_str(),
                nt::mean_abs_diff(q, ref), nt::max_abs_diff(q, ref));
  }

  const auto plan = hls::plan_proposed_model(96, 6, 128);
  std::printf("\nprojected full-model PL latency at paper scale: %.1f ms/inference\n",
              plan.total_ms());
  return 0;
}
