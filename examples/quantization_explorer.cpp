// Explore the fixed-point accuracy trade-off of Sec. VI-B5: run the model
// with the MHSA quantized at each of Table VIII's formats and report logit
// error and (if a checkpoint is given) test accuracy per format.
//
//   ./quantization_explorer [checkpoint.bin]
#include <cstdio>

#include "nodetr/core/lightweight_transformer.hpp"
#include "nodetr/tensor/ops.hpp"
#include "nodetr/train/trainer.hpp"

namespace core = nodetr::core;
namespace d = nodetr::data;
namespace fx = nodetr::fx;
namespace hls = nodetr::hls;
namespace nt = nodetr::tensor;

int main(int argc, char** argv) {
  core::Options opts;
  opts.image_size = 32;
  opts.stem_channels = 16;
  opts.mhsa_bottleneck = 16;
  opts.mhsa_heads = 2;
  opts.solver_steps = 3;
  core::LightweightTransformer model(opts);
  if (argc > 1) {
    model.load(argv[1]);
    std::printf("loaded checkpoint %s\n", argv[1]);
  }
  model.model().train(false);

  d::SynthStl dataset({.image_size = 32, .train_per_class = 1, .test_per_class = 5, .seed = 9});
  auto batch = d::stack(dataset.test(), 0, 16);
  auto reference = model.predict_logits(batch.images);
  const float acc_ref = nodetr::train::evaluate(model.model(), dataset.test());

  std::printf("\n%-14s %-12s %-12s %s\n", "format", "mean|diff|", "max|diff|", "accuracy");
  std::printf("%-14s %-12s %-12s %.1f%% (software float)\n", "float32", "0", "0",
              100.0f * acc_ref);
  for (const auto& scheme : fx::table8_schemes()) {
    auto session = model.offload(hls::DataType::kFixed, scheme);
    auto logits = session->forward(batch.images);
    const float acc = nodetr::train::evaluate(model.model(), dataset.test());
    std::printf("%-14s %-12.6f %-12.6f %.1f%%\n", scheme.to_string().c_str(),
                nt::mean_abs_diff(logits, reference), nt::max_abs_diff(logits, reference),
                100.0f * acc);
  }
  std::printf("\nExpect errors to grow as formats narrow (Figs. 9-10) and accuracy to\n"
              "collapse for the narrowest formats (Table VIII).\n");
  return 0;
}
