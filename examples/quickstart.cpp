// Quickstart: build the paper's proposed model, compare its size with the
// counterpart models of Table IV, and classify a synthetic image.
//
//   ./quickstart [image_size]   (default 32 for speed; 96 = paper scale)
//
// With tracing enabled this exercises every instrumented layer, so the
// exported trace nests trainer -> ODE solver -> MHSA -> accelerator:
//
//   NODETR_TRACE=trace.json ./quickstart   # then open trace.json in Perfetto
#include <cstdio>
#include <cstdlib>

#include "nodetr/core/lightweight_transformer.hpp"
#include "nodetr/models/zoo.hpp"
#include "nodetr/obs/obs.hpp"

namespace core = nodetr::core;
namespace m = nodetr::models;
namespace d = nodetr::data;
namespace nt = nodetr::tensor;

int main(int argc, char** argv) {
  const nt::index_t image_size = argc > 1 ? std::atoll(argv[1]) : 32;

  // 1. Build the proposed model (Neural ODE backbone + bottleneck MHSA).
  core::Options opts;
  opts.image_size = image_size;
  if (image_size < 96) {  // shrink widths for small inputs
    opts.stem_channels = 16;
    opts.mhsa_bottleneck = 16;
    opts.mhsa_heads = 2;
    opts.solver_steps = 3;
  }
  core::LightweightTransformer model(opts);
  std::printf("Proposed model @ %lldpx: %lld parameters\n",
              static_cast<long long>(image_size),
              static_cast<long long>(model.num_parameters()));
  const auto point = model.design_point(nodetr::hls::DataType::kFixed);
  std::printf("MHSA design point: %s\n\n", point.to_string().c_str());

  // 2. Parameter-size context (full-size counterparts; paper Table IV).
  if (image_size == 96) {
    nt::Rng rng(1);
    for (auto kind : m::table4_models()) {
      auto net = m::make_model(kind, 96, 10, rng);
      std::printf("%-16s %12lld parameters\n", m::paper_name(kind).c_str(),
                  static_cast<long long>(net->num_parameters()));
    }
    std::printf("\n");
  }

  // 3. Classify a procedurally generated image (untrained weights => this is
  //    a plumbing demo; see train_synthstl for accuracy).
  d::SynthStl dataset({.image_size = image_size, .train_per_class = 1, .test_per_class = 1,
                       .seed = 7});
  const auto& sample = dataset.test()[3];
  const auto predicted = model.predict(sample.image);
  std::printf("sample class: %s, predicted class: %s (untrained model)\n",
              d::SynthStl::class_name(sample.label), d::SynthStl::class_name(predicted));

  // 4. Estimated FPGA deployment cost of the attention IP.
  auto res = model.estimate_resources(nodetr::hls::DataType::kFixed);
  std::printf("fixed-point MHSA IP estimate: BRAM18 %lld, DSP %lld, %.2f W\n",
              static_cast<long long>(res.bram18), static_cast<long long>(res.dsp),
              model.estimate_ip_watts(nodetr::hls::DataType::kFixed));

  // 5. One mini training epoch, then inference with the MHSA offloaded to the
  //    simulated FPGA IP. Purely to exercise the full stack — with
  //    NODETR_TRACE set, the trace now contains train.fit -> train.batch ->
  //    ode.block.forward -> mhsa.forward -> rt.mhsa_accel.execute spans with
  //    the IP's simulated-cycle attributes.
  nodetr::train::TrainConfig tc;
  tc.epochs = 1;
  tc.batch_size = 8;
  tc.augment = false;
  const auto history = model.fit(dataset.train(), dataset.test(), tc);
  std::printf("mini-train (1 epoch, %zu samples): loss %.3f, test accuracy %.2f\n",
              dataset.train().size(), history.epochs.front().train_loss,
              history.epochs.front().test_accuracy);

  auto offloaded = model.offload(nodetr::hls::DataType::kFixed);
  const auto batch = sample.image.reshape(
      nt::Shape{1, sample.image.dim(0), sample.image.dim(1), sample.image.dim(2)});
  (void)offloaded->forward(batch);
  const auto& timing = offloaded->last_timing();
  std::printf("offloaded inference: PS %.2f ms + PL(sim) %.2f ms\n", timing.ps_ms,
              timing.pl_ms);

  if (nodetr::obs::tracing_enabled()) {
    std::printf("\n--- span summary ---\n%s",
                nodetr::obs::Tracer::instance().summary().c_str());
  }
  return 0;
}
