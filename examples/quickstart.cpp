// Quickstart: build the paper's proposed model, compare its size with the
// counterpart models of Table IV, and classify a synthetic image.
//
//   ./quickstart [image_size]   (default 32 for speed; 96 = paper scale)
#include <cstdio>
#include <cstdlib>

#include "nodetr/core/lightweight_transformer.hpp"
#include "nodetr/models/zoo.hpp"

namespace core = nodetr::core;
namespace m = nodetr::models;
namespace d = nodetr::data;
namespace nt = nodetr::tensor;

int main(int argc, char** argv) {
  const nt::index_t image_size = argc > 1 ? std::atoll(argv[1]) : 32;

  // 1. Build the proposed model (Neural ODE backbone + bottleneck MHSA).
  core::Options opts;
  opts.image_size = image_size;
  if (image_size < 96) {  // shrink widths for small inputs
    opts.stem_channels = 16;
    opts.mhsa_bottleneck = 16;
    opts.mhsa_heads = 2;
    opts.solver_steps = 3;
  }
  core::LightweightTransformer model(opts);
  std::printf("Proposed model @ %lldpx: %lld parameters\n",
              static_cast<long long>(image_size),
              static_cast<long long>(model.num_parameters()));
  const auto point = model.design_point(nodetr::hls::DataType::kFixed);
  std::printf("MHSA design point: %s\n\n", point.to_string().c_str());

  // 2. Parameter-size context (full-size counterparts; paper Table IV).
  if (image_size == 96) {
    nt::Rng rng(1);
    for (auto kind : m::table4_models()) {
      auto net = m::make_model(kind, 96, 10, rng);
      std::printf("%-16s %12lld parameters\n", m::paper_name(kind).c_str(),
                  static_cast<long long>(net->num_parameters()));
    }
    std::printf("\n");
  }

  // 3. Classify a procedurally generated image (untrained weights => this is
  //    a plumbing demo; see train_synthstl for accuracy).
  d::SynthStl dataset({.image_size = image_size, .train_per_class = 1, .test_per_class = 1,
                       .seed = 7});
  const auto& sample = dataset.test()[3];
  const auto predicted = model.predict(sample.image);
  std::printf("sample class: %s, predicted class: %s (untrained model)\n",
              d::SynthStl::class_name(sample.label), d::SynthStl::class_name(predicted));

  // 4. Estimated FPGA deployment cost of the attention IP.
  auto res = model.estimate_resources(nodetr::hls::DataType::kFixed);
  std::printf("fixed-point MHSA IP estimate: BRAM18 %lld, DSP %lld, %.2f W\n",
              static_cast<long long>(res.bram18), static_cast<long long>(res.dsp),
              model.estimate_ip_watts(nodetr::hls::DataType::kFixed));
  return 0;
}
