// Neural-ODE solver playground: how the ODE solver and iteration count C
// trade accuracy for compute (Sec. III-B). Integrates the trained backbone's
// final stage with Euler / Midpoint / RK4 at several step counts and shows
// how the logits converge toward the high-accuracy solution.
//
//   ./ode_solver_playground
#include <cstdio>

#include "nodetr/core/lightweight_transformer.hpp"
#include "nodetr/ode/ode_block.hpp"
#include "nodetr/tensor/ops.hpp"

namespace core = nodetr::core;
namespace ode = nodetr::ode;
namespace nt = nodetr::tensor;

int main() {
  core::Options opts;
  opts.image_size = 32;
  opts.stem_channels = 16;
  opts.mhsa_bottleneck = 16;
  opts.mhsa_heads = 2;
  opts.solver_steps = 4;
  core::LightweightTransformer model(opts);
  model.model().train(false);

  nt::Rng rng(5);
  auto batch = rng.rand(nt::Shape{1, 3, 32, 32});

  // High-accuracy reference: RK4 with many steps.
  auto& blocks = model.model().ode_blocks();
  for (auto* b : blocks) {
    b->set_solver(ode::SolverKind::kRk4);
    b->set_steps(32);
  }
  auto reference = model.model().forward(batch);

  std::printf("%-10s %6s %14s %s\n", "solver", "C", "RHS evals", "||logits - ref||");
  for (auto kind : {ode::SolverKind::kEuler, ode::SolverKind::kMidpoint, ode::SolverKind::kRk4}) {
    for (nt::index_t steps : {1, 2, 4, 8}) {
      for (auto* b : blocks) {
        b->set_solver(kind);
        b->set_steps(steps);
      }
      auto out = model.model().forward(batch);
      const auto evals = steps * ode::make_solver(kind)->rhs_evals_per_step() *
                         static_cast<nt::index_t>(blocks.size());
      nt::Tensor diff = out - reference;
      std::printf("%-10s %6lld %14lld %.6f\n", ode::to_string(kind).c_str(),
                  static_cast<long long>(steps), static_cast<long long>(evals),
                  nt::l2_norm(diff));
    }
  }
  std::printf("\nMore steps / higher-order solvers converge to the same flow while the\n"
              "parameter count stays constant — the Neural-ODE property the paper uses\n"
              "to shrink BoTNet by 97%%.\n");
  return 0;
}
