// Minimal work-sharing primitives: a persistent thread pool and parallel_for.
//
// Kernels in this library are written against parallel_for so they scale on
// multi-core hosts; on a single-core host the pool degrades to serial
// execution with no thread overhead.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "nodetr/tensor/shape.hpp"

namespace nodetr::tensor {

/// Persistent pool of worker threads executing blocking fork-join tasks.
class ThreadPool {
 public:
  /// `num_threads == 0` selects hardware_concurrency(); 1 means serial.
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of workers including the calling thread's share.
  [[nodiscard]] std::size_t size() const { return workers_.size() + 1; }

  /// Run fn(chunk_index) for chunk_index in [0, num_chunks) across the pool,
  /// blocking until all chunks finish. Exceptions propagate from chunk 0 only;
  /// other chunks' exceptions terminate (kernels must not throw).
  ///
  /// Safe to call from multiple threads at once: concurrent batches are
  /// serialized on a submission mutex. A call made from inside a chunk that is
  /// already running on this pool executes serially on the calling thread
  /// (nested fork-join would deadlock against the submission lock).
  void run_chunks(std::size_t num_chunks, const std::function<void(std::size_t)>& fn);

  /// Process-wide default pool (lazily constructed).
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex submit_mu_;  ///< serializes whole batches from concurrent callers
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::uint64_t posted_ns_ = 0;  ///< when the current batch was posted (0 = not sampling)
  std::size_t next_chunk_ = 0;
  std::size_t total_chunks_ = 0;
  std::size_t active_ = 0;
  std::size_t epoch_ = 0;
  bool stop_ = false;
};

/// Split [begin, end) into roughly equal ranges and run body(lo, hi) on the
/// global pool. Grain is the target per-task range: the loop is split into
/// ceil(n / grain) chunks (capped at a small multiple of the pool size), so a
/// loop spanning more than one grain always splits. Loops of at most one
/// grain run serially to avoid overhead.
void parallel_for(index_t begin, index_t end,
                  const std::function<void(index_t, index_t)>& body,
                  index_t grain = 1024);

}  // namespace nodetr::tensor
