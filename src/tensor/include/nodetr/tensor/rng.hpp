// Deterministic random number generation for reproducible experiments.
#pragma once

#include <cstdint>
#include <random>

#include "nodetr/tensor/tensor.hpp"

namespace nodetr::tensor {

/// Seeded RNG wrapper. All randomness in the library flows through an Rng so
/// every experiment is reproducible from a single seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed) : engine_(seed) {}

  /// Uniform float in [lo, hi).
  float uniform(float lo = 0.0f, float hi = 1.0f);
  /// Standard normal scaled to N(mean, stddev^2).
  float normal(float mean = 0.0f, float stddev = 1.0f);
  /// Uniform integer in [lo, hi] inclusive.
  index_t randint(index_t lo, index_t hi);
  /// Bernoulli trial with probability p of true.
  bool bernoulli(float p);

  /// Fresh tensor with i.i.d. N(mean, stddev^2) entries.
  Tensor randn(Shape shape, float mean = 0.0f, float stddev = 1.0f);
  /// Fresh tensor with i.i.d. U[lo, hi) entries.
  Tensor rand(Shape shape, float lo = 0.0f, float hi = 1.0f);

  /// Kaiming-He normal init for a weight with `fan_in` inputs.
  Tensor kaiming_normal(Shape shape, index_t fan_in);
  /// Xavier/Glorot uniform init.
  Tensor xavier_uniform(Shape shape, index_t fan_in, index_t fan_out);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace nodetr::tensor
