// Shape: dimension bookkeeping for row-major dense tensors.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace nodetr::tensor {

/// Index/extent type used throughout the library.
using index_t = std::int64_t;

/// Dense, row-major tensor shape. Immutable after construction except via
/// assignment. Provides extent queries, flat size, and stride computation.
class Shape {
 public:
  Shape() = default;

  /// Construct from explicit extents, e.g. Shape{2, 3, 4}.
  Shape(std::initializer_list<index_t> dims) : dims_(dims) { validate(); }

  explicit Shape(std::vector<index_t> dims) : dims_(std::move(dims)) { validate(); }

  /// Number of dimensions (rank).
  [[nodiscard]] index_t rank() const { return static_cast<index_t>(dims_.size()); }

  /// Extent of dimension `d`. Negative `d` counts from the back (Python-style).
  [[nodiscard]] index_t dim(index_t d) const {
    if (d < 0) d += rank();
    if (d < 0 || d >= rank()) throw std::out_of_range("Shape::dim: axis out of range");
    return dims_[static_cast<std::size_t>(d)];
  }

  [[nodiscard]] index_t operator[](index_t d) const { return dim(d); }

  /// Total number of elements (product of extents; 1 for rank-0).
  [[nodiscard]] index_t numel() const {
    return std::accumulate(dims_.begin(), dims_.end(), index_t{1},
                           [](index_t a, index_t b) { return a * b; });
  }

  /// Row-major strides, in elements.
  [[nodiscard]] std::vector<index_t> strides() const {
    std::vector<index_t> s(dims_.size(), 1);
    for (index_t d = rank() - 2; d >= 0; --d) {
      s[static_cast<std::size_t>(d)] =
          s[static_cast<std::size_t>(d + 1)] * dims_[static_cast<std::size_t>(d + 1)];
    }
    return s;
  }

  [[nodiscard]] const std::vector<index_t>& dims() const { return dims_; }

  [[nodiscard]] bool operator==(const Shape& o) const { return dims_ == o.dims_; }
  [[nodiscard]] bool operator!=(const Shape& o) const { return !(*this == o); }

  /// Human-readable form, e.g. "[2, 3, 4]".
  [[nodiscard]] std::string to_string() const {
    std::string s = "[";
    for (std::size_t i = 0; i < dims_.size(); ++i) {
      if (i) s += ", ";
      s += std::to_string(dims_[i]);
    }
    return s + "]";
  }

 private:
  void validate() const {
    for (index_t d : dims_) {
      if (d < 0) throw std::invalid_argument("Shape: negative extent " + std::to_string(d));
    }
  }

  std::vector<index_t> dims_;
};

}  // namespace nodetr::tensor
