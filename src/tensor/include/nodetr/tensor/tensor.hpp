// Tensor: dense, row-major, float32 N-D array with value semantics.
//
// This is the numeric substrate of the library. It is deliberately concrete
// (float only) — quantized data lives in nodetr::fx::FixedTensor — and
// deliberately owning (std::vector storage): training code mutates tensors
// in place and relies on cheap moves rather than views.
#pragma once

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

#include "nodetr/tensor/shape.hpp"

namespace nodetr::tensor {

class Tensor {
 public:
  /// Empty rank-1 tensor with zero elements.
  Tensor() : shape_({0}) {}

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape)
      : shape_(std::move(shape)), data_(static_cast<std::size_t>(shape_.numel()), 0.0f) {}

  /// Tensor of the given shape filled with `fill`.
  Tensor(Shape shape, float fill)
      : shape_(std::move(shape)), data_(static_cast<std::size_t>(shape_.numel()), fill) {}

  /// Tensor adopting existing data. `data.size()` must equal `shape.numel()`.
  Tensor(Shape shape, std::vector<float> data);

  // ---- factories -----------------------------------------------------------

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor ones(Shape shape) { return Tensor(std::move(shape), 1.0f); }
  static Tensor full(Shape shape, float v) { return Tensor(std::move(shape), v); }
  /// [0, 1, 2, ...) as a rank-1 tensor of length n.
  static Tensor arange(index_t n);

  // ---- metadata ------------------------------------------------------------

  [[nodiscard]] const Shape& shape() const { return shape_; }
  [[nodiscard]] index_t rank() const { return shape_.rank(); }
  [[nodiscard]] index_t dim(index_t d) const { return shape_.dim(d); }
  [[nodiscard]] index_t numel() const { return static_cast<index_t>(data_.size()); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  // ---- raw access ----------------------------------------------------------

  [[nodiscard]] float* data() { return data_.data(); }
  [[nodiscard]] const float* data() const { return data_.data(); }
  [[nodiscard]] std::span<float> span() { return {data_.data(), data_.size()}; }
  [[nodiscard]] std::span<const float> span() const { return {data_.data(), data_.size()}; }

  [[nodiscard]] float& operator[](index_t i) {
    assert(i >= 0 && i < numel());
    return data_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] float operator[](index_t i) const {
    assert(i >= 0 && i < numel());
    return data_[static_cast<std::size_t>(i)];
  }

  // ---- multi-dimensional access (debug-checked) ------------------------------

  [[nodiscard]] float& at(index_t i0) { return (*this)[offset({i0})]; }
  [[nodiscard]] float& at(index_t i0, index_t i1) { return (*this)[offset({i0, i1})]; }
  [[nodiscard]] float& at(index_t i0, index_t i1, index_t i2) {
    return (*this)[offset({i0, i1, i2})];
  }
  [[nodiscard]] float& at(index_t i0, index_t i1, index_t i2, index_t i3) {
    return (*this)[offset({i0, i1, i2, i3})];
  }
  [[nodiscard]] float at(index_t i0) const { return (*this)[offset({i0})]; }
  [[nodiscard]] float at(index_t i0, index_t i1) const { return (*this)[offset({i0, i1})]; }
  [[nodiscard]] float at(index_t i0, index_t i1, index_t i2) const {
    return (*this)[offset({i0, i1, i2})];
  }
  [[nodiscard]] float at(index_t i0, index_t i1, index_t i2, index_t i3) const {
    return (*this)[offset({i0, i1, i2, i3})];
  }

  /// Flat offset of a full multi-index (size must equal rank).
  [[nodiscard]] index_t offset(std::initializer_list<index_t> idx) const;

  // ---- shape manipulation ----------------------------------------------------

  /// Same data, new shape (numel must match). Returns a copy.
  [[nodiscard]] Tensor reshape(Shape new_shape) const;
  /// In-place reshape (numel must match).
  void reshape_inplace(Shape new_shape);
  /// 2-D transpose. Requires rank 2.
  [[nodiscard]] Tensor transposed() const;
  /// General permutation of axes, e.g. permute({0,2,3,1}) for NCHW->NHWC.
  [[nodiscard]] Tensor permute(const std::vector<index_t>& axes) const;
  /// Rank-preserving slice of the leading axis: rows [begin, end).
  [[nodiscard]] Tensor slice0(index_t begin, index_t end) const;

  // ---- in-place arithmetic -----------------------------------------------------

  Tensor& operator+=(const Tensor& o);
  Tensor& operator-=(const Tensor& o);
  Tensor& operator*=(const Tensor& o);  ///< elementwise (Hadamard)
  Tensor& operator+=(float s);
  Tensor& operator*=(float s);
  void fill(float v);
  void zero() { fill(0.0f); }

  /// this += alpha * o  (axpy)
  void add_scaled(const Tensor& o, float alpha);

  [[nodiscard]] bool same_shape(const Tensor& o) const { return shape_ == o.shape_; }

 private:
  Shape shape_;
  std::vector<float> data_;
};

// ---- out-of-place arithmetic ----------------------------------------------------

[[nodiscard]] Tensor operator+(Tensor a, const Tensor& b);
[[nodiscard]] Tensor operator-(Tensor a, const Tensor& b);
[[nodiscard]] Tensor operator*(Tensor a, const Tensor& b);
[[nodiscard]] Tensor operator*(Tensor a, float s);
[[nodiscard]] Tensor operator*(float s, Tensor a);

}  // namespace nodetr::tensor
