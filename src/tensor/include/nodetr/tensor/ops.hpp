// Elementwise maps, reductions and shape-aware helpers on Tensor.
#pragma once

#include <functional>

#include "nodetr/tensor/tensor.hpp"

namespace nodetr::tensor {

// ---- elementwise maps -------------------------------------------------------

/// out[i] = fn(a[i]).
[[nodiscard]] Tensor map(const Tensor& a, const std::function<float(float)>& fn);
/// out[i] = fn(a[i], b[i]); shapes must match.
[[nodiscard]] Tensor zip(const Tensor& a, const Tensor& b,
                         const std::function<float(float, float)>& fn);

[[nodiscard]] Tensor relu(const Tensor& a);
[[nodiscard]] Tensor exp(const Tensor& a);
[[nodiscard]] Tensor sqrt(const Tensor& a);
[[nodiscard]] Tensor abs(const Tensor& a);

// ---- reductions --------------------------------------------------------------

[[nodiscard]] float sum(const Tensor& a);
[[nodiscard]] float mean(const Tensor& a);
[[nodiscard]] float max(const Tensor& a);
[[nodiscard]] float min(const Tensor& a);
/// Index of the maximum element (first occurrence).
[[nodiscard]] index_t argmax(const Tensor& a);
/// Population variance.
[[nodiscard]] float variance(const Tensor& a);
/// sqrt(sum(a^2)).
[[nodiscard]] float l2_norm(const Tensor& a);
/// max_i |a[i] - b[i]|.
[[nodiscard]] float max_abs_diff(const Tensor& a, const Tensor& b);
/// mean_i |a[i] - b[i]|.
[[nodiscard]] float mean_abs_diff(const Tensor& a, const Tensor& b);

// ---- structured ops ------------------------------------------------------------

/// Row-wise softmax over the last axis of a rank-2 tensor.
[[nodiscard]] Tensor softmax_rows(const Tensor& logits);
/// Row-wise log-softmax over the last axis of a rank-2 tensor.
[[nodiscard]] Tensor log_softmax_rows(const Tensor& logits);
/// Concatenate along axis 0; all other extents must match.
[[nodiscard]] Tensor concat0(const std::vector<Tensor>& parts);

/// True if |a[i]-b[i]| <= atol + rtol*|b[i]| for every i (and shapes match).
[[nodiscard]] bool allclose(const Tensor& a, const Tensor& b, float rtol = 1e-5f,
                            float atol = 1e-6f);

}  // namespace nodetr::tensor
