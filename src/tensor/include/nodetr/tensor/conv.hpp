// Convolution kernels on NCHW tensors: im2col-based dense conv2d and a direct
// depthwise conv, each with the backward kernels needed for training.
#pragma once

#include "nodetr/tensor/tensor.hpp"

namespace nodetr::tensor {

/// Static geometry of a 2-D convolution.
struct Conv2dGeom {
  index_t in_channels = 0;
  index_t out_channels = 0;
  index_t kernel = 3;   ///< square kernel K x K
  index_t stride = 1;
  index_t pad = 1;

  [[nodiscard]] index_t out_extent(index_t in) const {
    return (in + 2 * pad - kernel) / stride + 1;
  }
};

/// Unfold one image (C,H,W) into columns (C*K*K, Ho*Wo). Zero padding.
void im2col(const float* img, index_t channels, index_t h, index_t w, const Conv2dGeom& g,
            float* col);

/// Fold columns (C*K*K, Ho*Wo) back into an image (C,H,W), accumulating overlaps.
void col2im(const float* col, index_t channels, index_t h, index_t w, const Conv2dGeom& g,
            float* img);

/// Forward: x (N,Cin,H,W), weight (Cout,Cin,K,K), bias (Cout) or empty.
[[nodiscard]] Tensor conv2d(const Tensor& x, const Tensor& weight, const Tensor& bias,
                            const Conv2dGeom& g);

/// Backward w.r.t. input. grad_out (N,Cout,Ho,Wo) -> grad_x (N,Cin,H,W).
[[nodiscard]] Tensor conv2d_backward_input(const Tensor& grad_out, const Tensor& weight,
                                           const Conv2dGeom& g, index_t in_h, index_t in_w);

/// Backward w.r.t. weight/bias; accumulates into grad_weight/grad_bias.
void conv2d_backward_params(const Tensor& x, const Tensor& grad_out, const Conv2dGeom& g,
                            Tensor& grad_weight, Tensor& grad_bias);

/// Depthwise forward: x (N,C,H,W), weight (C,1,K,K) flattened to (C,K,K), bias (C) or empty.
[[nodiscard]] Tensor depthwise_conv2d(const Tensor& x, const Tensor& weight, const Tensor& bias,
                                      const Conv2dGeom& g);

[[nodiscard]] Tensor depthwise_conv2d_backward_input(const Tensor& grad_out, const Tensor& weight,
                                                     const Conv2dGeom& g, index_t in_h,
                                                     index_t in_w);

void depthwise_conv2d_backward_params(const Tensor& x, const Tensor& grad_out,
                                      const Conv2dGeom& g, Tensor& grad_weight,
                                      Tensor& grad_bias);

}  // namespace nodetr::tensor
