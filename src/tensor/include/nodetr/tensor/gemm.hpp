// Dense matrix multiplication kernels.
#pragma once

#include "nodetr/tensor/tensor.hpp"

namespace nodetr::tensor {

/// C = A(MxK) * B(KxN). Blocked ikj kernel, parallelized over M.
[[nodiscard]] Tensor matmul(const Tensor& a, const Tensor& b);

/// C = A(MxK) * B(NxK)^T. Avoids materializing the transpose.
[[nodiscard]] Tensor matmul_nt(const Tensor& a, const Tensor& b);

/// C = A(KxM)^T * B(KxN). Avoids materializing the transpose.
[[nodiscard]] Tensor matmul_tn(const Tensor& a, const Tensor& b);

/// Raw kernel: c(MxN) += a(MxK) * b(KxN), all row-major, no allocation.
void gemm_accumulate(const float* a, const float* b, float* c, index_t m, index_t k, index_t n);

}  // namespace nodetr::tensor
