// Dense matrix multiplication kernels.
//
// Everything routes through one cache-blocked, register-tiled kernel
// (`gemm_blocked`): A and B panels are packed into contiguous buffers sized
// to the cache hierarchy, and an MR x NR microkernel — selected at runtime
// from the SIMD dispatch table (simd.hpp) by the cache-aware autotuner
// (tune.hpp) — does the arithmetic. Operands are described by views
// (pointer + leading dimension + transpose flag), so the transposed product
// variants and the per-head strided sub-matrices in attention run through
// the same kernel without materializing copies. The jr/ir tile loops of each
// macro-kernel block are partitioned across the thread pool BLIS-style, so
// skinny shapes (few rows, many columns) parallelize as well as square ones.
//
// Every output element accumulates its k-products in ascending-k order
// regardless of blocking, operand views, or how tiles are split across
// threads — for a fixed selected microkernel, results are
// bitwise-reproducible across batch sizes and thread counts, which the
// serving engine's differential tests rely on. Results DO differ between
// microkernels (FMA contraction), so reproducible pipelines pin the kernel
// via NODETR_GEMM_CONFIG.
#pragma once

#include "nodetr/tensor/tensor.hpp"
#include "nodetr/tensor/tune.hpp"

namespace nodetr::tensor {

/// Read-only view of a row-major matrix operand.
struct GemmView {
  const float* data = nullptr;
  index_t ld = 0;      ///< stride between stored rows
  bool trans = false;  ///< stored matrix is the transpose of the operand

  /// Operand stored as-is: element (i, j) at data[i * ld + j].
  static GemmView plain(const float* data, index_t ld) { return {data, ld, false}; }
  /// Operand is the transpose of storage: element (i, j) at data[j * ld + i].
  static GemmView transposed(const float* data, index_t ld) { return {data, ld, true}; }
};

/// Work fused into the kernel's output pass while the C panel is cache-hot:
///   c = relu?( alpha * (A B) + bias_col[j] + bias_row[i] + residual[i, j] )
/// Fields left at their defaults are skipped. `accumulate` instead produces
/// c += A B and ignores every other field.
struct GemmEpilogue {
  float alpha = 1.0f;               ///< scales the product
  const float* bias_col = nullptr;  ///< length n, added to every row
  const float* bias_row = nullptr;  ///< length m, added to every column
  const float* residual = nullptr;  ///< m x n, added elementwise
  index_t residual_ld = 0;          ///< row stride of `residual` (0 means n)
  bool relu = false;
  bool accumulate = false;  ///< c += A B; all epilogue fields above ignored
};

/// C(m x n) = op(A)(m x k) * op(B)(k x n) with an optional fused epilogue.
/// C is row-major with row stride `ldc`; views may alias neither C nor the
/// residual. Zero-extent problems are handled (k == 0 stores zeros, then the
/// epilogue). Runs the process-wide tuned config (tune::gemm_config()).
void gemm_blocked(index_t m, index_t k, index_t n, GemmView a, GemmView b, float* c, index_t ldc,
                  const GemmEpilogue& epilogue = {});

/// Same kernel with an explicit (microkernel, MC, KC, NC) plan — the
/// autotuner's probe path and the per-variant differential tests. `cfg` must
/// carry a non-null kernel and positive blocking.
void gemm_blocked_cfg(index_t m, index_t k, index_t n, GemmView a, GemmView b, float* c,
                      index_t ldc, const tune::GemmConfig& cfg,
                      const GemmEpilogue& epilogue = {});

/// C = A(MxK) * B(KxN).
[[nodiscard]] Tensor matmul(const Tensor& a, const Tensor& b);

/// C = A(MxK) * B(NxK)^T. Avoids materializing the transpose.
[[nodiscard]] Tensor matmul_nt(const Tensor& a, const Tensor& b);

/// C = A(KxM)^T * B(KxN). Avoids materializing the transpose.
[[nodiscard]] Tensor matmul_tn(const Tensor& a, const Tensor& b);

/// Raw kernel: c(MxN) += a(MxK) * b(KxN), all row-major, no allocation
/// beyond thread-local scratch.
void gemm_accumulate(const float* a, const float* b, float* c, index_t m, index_t k, index_t n);

}  // namespace nodetr::tensor
