// Cache-aware GEMM autotuner.
//
// `gemm_blocked` needs two decisions made per host: which microkernel to run
// (see simd.hpp) and the MC/KC/NC cache-blocking around it. This unit makes
// them once per process, in priority order:
//
//   1. NODETR_GEMM_CONFIG="<kernel>[:MC:KC:NC]" — forced config, no probing.
//      This is what CI pins for reproducible numbers (float results are
//      bitwise per selected kernel, so pinning the kernel pins the bits).
//   2. NODETR_TUNE_CACHE=<path> — a per-host tuning cache written by a
//      previous run. The file carries a versioned header plus the host's
//      cache sizes and ISA; any mismatch (new box, new build, corrupt file)
//      rejects the file and falls through to a fresh tune, which rewrites it.
//   3. Autotune: probe L1d/L2/L3 (sysfs, then sysconf, then safe defaults),
//      derive candidate (kernel, MC, KC, NC) configs from the cache budget
//      (A+B micro-panel pair in L1, packed A block in L2, packed B block in
//      L3), micro-benchmark each on a fixed probe GEMM, and keep the fastest.
//
// The winning config is exported through obs gauges (tensor.gemm.*,
// tensor.cpu.*_bytes — visible in the JSON dump and OpenMetrics) and via
// `describe()` for startup banners.
#pragma once

#include <optional>
#include <string>

#include "nodetr/tensor/shape.hpp"
#include "nodetr/tensor/simd.hpp"

namespace nodetr::tensor::tune {

/// Data-cache capacities in bytes. Zero fields were not discoverable;
/// `host_caches()` replaces them with conservative defaults.
struct CacheInfo {
  std::size_t l1d = 0;
  std::size_t l2 = 0;
  std::size_t l3 = 0;
  bool probed = false;  ///< at least one level came from sysfs/sysconf
};

/// Fresh probe: sysfs cpu0 cache indexes, then sysconf, no defaults applied.
[[nodiscard]] CacheInfo probe_caches();

/// Probe result for this host, cached, with defaults (32K/1M/8M) filled in
/// for levels the OS would not reveal.
[[nodiscard]] const CacheInfo& host_caches();

/// A fully-resolved GEMM execution plan.
struct GemmConfig {
  const simd::MicroKernel* kernel = nullptr;
  index_t mc = 0, kc = 0, nc = 0;
  const char* source = "default";  ///< "env" | "cache" | "tuned" | "default"
};

/// Heuristic blocking for one kernel shape on one cache hierarchy (the
/// no-benchmark fallback, and the seed every tune starts from).
[[nodiscard]] GemmConfig default_config(const simd::MicroKernel& kernel, const CacheInfo& caches);

/// Candidate set the autotuner benchmarks: per available kernel, the derived
/// blocking plus a half-depth (KC/2) variant.
[[nodiscard]] std::vector<GemmConfig> candidate_configs(const CacheInfo& caches);

/// Micro-benchmark `candidate_configs` on a probe GEMM and return the
/// fastest (source = "tuned"). Costs a few tens of milliseconds, once.
[[nodiscard]] GemmConfig autotune(const CacheInfo& caches);

/// "avx2_6x16:384:320:1024" — the NODETR_GEMM_CONFIG / cache-file syntax.
[[nodiscard]] std::string to_spec(const GemmConfig& cfg);

/// Parse a spec ("kernel" alone gets heuristic blocking). nullopt when the
/// kernel is unknown on this host or the blocking values are out of range.
[[nodiscard]] std::optional<GemmConfig> parse_spec(const std::string& spec);

/// Read a tuning-cache file. Rejects (returning nullopt) on a missing file,
/// bad magic/version, host mismatch (cache sizes or ISA changed), unknown
/// kernel, or malformed blocking — the caller re-tunes in every case.
[[nodiscard]] std::optional<GemmConfig> load_cache_file(const std::string& path,
                                                        const CacheInfo& host);

/// Write the versioned cache file. Returns false (and warns) on I/O failure.
bool save_cache_file(const std::string& path, const GemmConfig& cfg, const CacheInfo& host);

/// The full selection policy (env override -> cache file -> autotune),
/// parameterized for tests. Publishes the obs gauges for the winner.
struct SelectOptions {
  std::string env_spec;    ///< NODETR_GEMM_CONFIG value, "" = unset
  std::string cache_path;  ///< NODETR_TUNE_CACHE value, "" = unset
};
[[nodiscard]] GemmConfig select_config(const SelectOptions& opts);

/// Process-wide selected config: select_config() driven by the environment,
/// computed on first use (thread-safe) and fixed thereafter.
[[nodiscard]] const GemmConfig& gemm_config();

/// One-line banner: kernel, blocking, detected caches, selection source.
[[nodiscard]] std::string describe(const GemmConfig& cfg);

}  // namespace nodetr::tensor::tune
