// Binary tensor (de)serialization for checkpoints. Little-endian, versioned.
#pragma once

#include <iosfwd>
#include <string>

#include "nodetr/tensor/tensor.hpp"

namespace nodetr::tensor {

/// Write `t` (shape + float32 payload) to a binary stream.
void write_tensor(std::ostream& os, const Tensor& t);

/// Read a tensor previously written by write_tensor. Throws on malformed data.
[[nodiscard]] Tensor read_tensor(std::istream& is);

/// Convenience wrappers for single-tensor files.
void save_tensor(const std::string& path, const Tensor& t);
[[nodiscard]] Tensor load_tensor(const std::string& path);

}  // namespace nodetr::tensor
