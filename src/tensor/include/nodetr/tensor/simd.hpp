// SIMD microkernel registry for the blocked GEMM.
//
// Each entry is one MR x NR register-tiled inner kernel over packed A/B
// micro-panels. Besides the portable scalar 4x8 kernel (the one the compiler
// auto-vectorizes at -O3), explicit AVX2/FMA kernels in several shapes are
// compiled with per-function target attributes, so they exist — and are
// runtime-dispatched via CPUID — even in the default build without
// `-DNODETR_NATIVE=ON`. On aarch64 a NEON kernel takes their place.
//
// Contract every kernel obeys (the autotuner may pick any of them):
//   - ap is a packed A micro-panel: element (i, p) at ap[p * mr_max + i],
//     zero-padded rows when the tile is short; bp likewise with nr_max
//     columns. Panels come from ScratchArena, so their base addresses are
//     64-byte aligned.
//   - Each output element's k-products are accumulated in ascending-k order
//     in a single dependency chain (one FMA chain per element for the vector
//     kernels). A partial tile (mr < mr_max or nr < nr_max) runs the same
//     arithmetic over the zero-padded panel and writes back only the live
//     mr x nr region. Together these make float results bitwise identical
//     across batch sizes and thread counts *for a fixed kernel* — results do
//     differ between kernels (FMA contracts the rounding the scalar kernel
//     performs), which is why CI pins the kernel via NODETR_GEMM_CONFIG.
//   - `first` stores (overwrites) the tile; otherwise it accumulates into C.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "nodetr/tensor/shape.hpp"

namespace nodetr::tensor::simd {

/// One MR x NR inner kernel over packed panels. `kc` is the panel depth,
/// `c` the top-left of the output tile with row stride `ldc`, `mr`/`nr` the
/// live tile extents (<= the kernel's shape).
using MicroKernelFn = void (*)(int kc, const float* ap, const float* bp, float* c,
                               index_t ldc, index_t mr, index_t nr, bool first);

struct MicroKernel {
  const char* name;  ///< stable id, e.g. "scalar_4x8", "avx2_6x16"
  int id;            ///< stable numeric id for gauges / JSON (strings don't fit)
  index_t mr, nr;    ///< register-tile shape; nr is a multiple of 8 on x86
  MicroKernelFn fn;
};

/// Kernels runnable on this host, best-first; the portable scalar kernel is
/// always present and always last. The list is probed once (CPUID on x86)
/// and cached for the process lifetime.
[[nodiscard]] const std::vector<MicroKernel>& available_kernels();

/// Lookup by name among *available* kernels; nullptr when unknown or not
/// runnable on this host (an AVX2 cache file read on a pre-AVX2 box).
[[nodiscard]] const MicroKernel* find_kernel(std::string_view name);

/// The portable fallback (also the float reference the differential tests
/// compare every other variant against).
[[nodiscard]] const MicroKernel& scalar_kernel();

/// Human-readable ISA summary for startup banners, e.g. "avx2+fma" or
/// "portable-scalar".
[[nodiscard]] std::string cpu_features();

}  // namespace nodetr::tensor::simd
