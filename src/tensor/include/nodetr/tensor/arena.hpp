// ScratchArena: thread-local, grow-only workspace for kernel scratch buffers.
//
// The compute kernels (GEMM packing panels, im2col/col2im columns) need large
// temporary buffers on every call. Allocating them from the heap per call puts
// malloc/free on the hot path of every training step and serve request; the
// arena instead bump-allocates from chunks that are kept for the lifetime of
// the thread, so steady-state kernel execution performs zero heap allocations.
//
// Usage is strictly scoped (LIFO):
//
//   auto& arena = ScratchArena::local();
//   ScratchArena::Scope scope(arena);
//   float* panel = arena.alloc<float>(kc * nc);
//   ...                       // panel valid until `scope` is destroyed
//
// Scopes nest: a kernel that calls another kernel (conv2d -> gemm) simply
// opens an inner scope. Allocations never move — growth appends a new chunk —
// so pointers handed out stay valid until their scope closes. When the
// outermost scope closes, fragmented chunks are coalesced into one chunk
// sized to the high-water mark, so the arena converges to a single reusable
// block after the first few calls.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace nodetr::tensor {

class ScratchArena {
 public:
  ScratchArena() = default;
  ~ScratchArena();

  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// RAII marker: rewinds the arena to its construction point on destruction.
  class Scope {
   public:
    explicit Scope(ScratchArena& arena)
        : arena_(arena), chunk_(arena.current_chunk_), offset_(arena.offset_) {
      ++arena_.depth_;
    }
    ~Scope() { arena_.rewind(chunk_, offset_); }

    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    ScratchArena& arena_;
    std::size_t chunk_;
    std::size_t offset_;
  };

  /// 64-byte-aligned uninitialized storage for `count` elements of T.
  /// Valid until the innermost open Scope closes. T must be trivial.
  ///
  /// The 64-byte alignment is a contract, not an accident: every allocation
  /// size is rounded up to a cache line and every chunk base is allocated
  /// with std::align_val_t{64}, so consecutive allocations all start on a
  /// cache line. The SIMD GEMM microkernels and the im2col packing rely on
  /// this for legal aligned/split-free vector loads from any call site.
  template <typename T>
  [[nodiscard]] T* alloc(std::size_t count) {
    return static_cast<T*>(allocate(count * sizeof(T)));
  }

  /// Total bytes owned across chunks (capacity, not live bytes).
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Largest number of live bytes ever observed.
  [[nodiscard]] std::size_t high_water() const { return high_water_; }

  /// Arena of the calling thread (pool workers each get their own).
  static ScratchArena& local();

 private:
  struct Chunk {
    std::byte* data = nullptr;
    std::size_t size = 0;
  };

  [[nodiscard]] void* allocate(std::size_t bytes);
  void rewind(std::size_t chunk, std::size_t offset);
  void add_chunk(std::size_t min_size);
  [[nodiscard]] std::size_t live_bytes() const;

  std::vector<Chunk> chunks_;
  std::size_t current_chunk_ = 0;  ///< index of the chunk being bumped
  std::size_t offset_ = 0;         ///< bump offset within the current chunk
  std::size_t capacity_ = 0;
  std::size_t high_water_ = 0;
  int depth_ = 0;  ///< open scopes; coalescing only happens at depth 0
};

}  // namespace nodetr::tensor
