#include "nodetr/tensor/simd.hpp"

#include <algorithm>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#elif defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace nodetr::tensor::simd {

namespace {

/// Scalar writeback of a partial tile computed into a full-shape stack
/// buffer. Shared by every vector kernel's tail path; the arithmetic already
/// happened in the vector registers, so only the live region is copied.
void writeback_tail(const float* tile, index_t tile_ld, float* c, index_t ldc, index_t mr,
                    index_t nr, bool first) {
  for (index_t i = 0; i < mr; ++i) {
    const float* src = tile + i * tile_ld;
    float* dst = c + i * ldc;
    if (first) {
      for (index_t j = 0; j < nr; ++j) dst[j] = src[j];
    } else {
      for (index_t j = 0; j < nr; ++j) dst[j] += src[j];
    }
  }
}

/// Portable 4x8 kernel: 32 scalar accumulators the compiler auto-vectorizes
/// at -O3. The k loop is unrolled by 4; each product lands in its accumulator
/// in ascending-k order.
void kern_scalar_4x8(int kc, const float* __restrict__ ap, const float* __restrict__ bp,
                     float* __restrict__ c, index_t ldc, index_t mr, index_t nr, bool first) {
  constexpr int kMr = 4, kNr = 8;
  float acc[kMr][kNr] = {};
  int p = 0;
  for (; p + 4 <= kc; p += 4) {
    for (int u = 0; u < 4; ++u) {
      const float* av = ap + (p + u) * kMr;
      const float* bv = bp + (p + u) * kNr;
      for (int i = 0; i < kMr; ++i) {
        for (int j = 0; j < kNr; ++j) acc[i][j] += av[i] * bv[j];
      }
    }
  }
  for (; p < kc; ++p) {
    const float* av = ap + p * kMr;
    const float* bv = bp + p * kNr;
    for (int i = 0; i < kMr; ++i) {
      for (int j = 0; j < kNr; ++j) acc[i][j] += av[i] * bv[j];
    }
  }
  if (mr == kMr && nr == kNr) {
    if (first) {
      for (int i = 0; i < kMr; ++i) {
        for (int j = 0; j < kNr; ++j) c[i * ldc + j] = acc[i][j];
      }
    } else {
      for (int i = 0; i < kMr; ++i) {
        for (int j = 0; j < kNr; ++j) c[i * ldc + j] += acc[i][j];
      }
    }
    return;
  }
  writeback_tail(&acc[0][0], kNr, c, ldc, mr, nr, first);
}

#if defined(__x86_64__) || defined(__i386__)

// Explicit AVX2/FMA kernels, compiled with per-function target attributes so
// they exist in the default (non -march=native) build; the dispatcher only
// hands them out after __builtin_cpu_supports says the host can run them.
// One __m256 FMA chain per (row, 8-column group) keeps each output element's
// accumulation a single ascending-k dependency chain. B rows are loaded with
// unaligned loads: the packed panel base is 64-byte aligned, but an odd kc
// can place later micro-panels off alignment, and loadu on aligned data costs
// nothing on AVX2 hardware.
#define NODETR_AVX2_KERNEL(NAME, MR, NV)                                                          \
  __attribute__((target("avx2,fma"))) void NAME(int kc, const float* __restrict__ ap,             \
                                                const float* __restrict__ bp,                     \
                                                float* __restrict__ c, index_t ldc, index_t mr,   \
                                                index_t nr, bool first) {                         \
    constexpr int kNr = (NV) * 8;                                                                 \
    __m256 acc[MR][NV];                                                                           \
    for (int i = 0; i < (MR); ++i)                                                                \
      for (int v = 0; v < (NV); ++v) acc[i][v] = _mm256_setzero_ps();                             \
    for (int p = 0; p < kc; ++p) {                                                                \
      __m256 b[NV];                                                                               \
      for (int v = 0; v < (NV); ++v) b[v] = _mm256_loadu_ps(bp + p * kNr + v * 8);                \
      for (int i = 0; i < (MR); ++i) {                                                            \
        const __m256 a = _mm256_broadcast_ss(ap + p * (MR) + i);                                  \
        for (int v = 0; v < (NV); ++v) acc[i][v] = _mm256_fmadd_ps(a, b[v], acc[i][v]);           \
      }                                                                                           \
    }                                                                                             \
    if (mr == (MR) && nr == kNr) {                                                                \
      if (first) {                                                                                \
        for (int i = 0; i < (MR); ++i)                                                            \
          for (int v = 0; v < (NV); ++v) _mm256_storeu_ps(c + i * ldc + v * 8, acc[i][v]);        \
      } else {                                                                                    \
        for (int i = 0; i < (MR); ++i)                                                            \
          for (int v = 0; v < (NV); ++v) {                                                        \
            float* out = c + i * ldc + v * 8;                                                     \
            _mm256_storeu_ps(out, _mm256_add_ps(_mm256_loadu_ps(out), acc[i][v]));                \
          }                                                                                       \
      }                                                                                           \
      return;                                                                                     \
    }                                                                                             \
    alignas(32) float tile[MR][kNr];                                                              \
    for (int i = 0; i < (MR); ++i)                                                                \
      for (int v = 0; v < (NV); ++v) _mm256_store_ps(&tile[i][v * 8], acc[i][v]);                 \
    writeback_tail(&tile[0][0], kNr, c, ldc, mr, nr, first);                                      \
  }

NODETR_AVX2_KERNEL(kern_avx2_6x16, 6, 2)  // 12 acc + 2 B + 1 A = 15 of 16 ymm
NODETR_AVX2_KERNEL(kern_avx2_4x16, 4, 2)  // shallower tile for short-M (attention) shapes
NODETR_AVX2_KERNEL(kern_avx2_8x8, 8, 1)   // tall tile for skinny-N products

#undef NODETR_AVX2_KERNEL

bool host_has_avx2_fma() {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}

#elif defined(__aarch64__)

/// 8x8 NEON kernel: 16 q-register accumulators, one vfmaq chain per
/// (row, 4-column group).
void kern_neon_8x8(int kc, const float* __restrict__ ap, const float* __restrict__ bp,
                   float* __restrict__ c, index_t ldc, index_t mr, index_t nr, bool first) {
  constexpr int kMr = 8, kNr = 8;
  float32x4_t acc[kMr][2];
  for (int i = 0; i < kMr; ++i) acc[i][0] = acc[i][1] = vdupq_n_f32(0.0f);
  for (int p = 0; p < kc; ++p) {
    const float32x4_t b0 = vld1q_f32(bp + p * kNr);
    const float32x4_t b1 = vld1q_f32(bp + p * kNr + 4);
    for (int i = 0; i < kMr; ++i) {
      const float32x4_t a = vdupq_n_f32(ap[p * kMr + i]);
      acc[i][0] = vfmaq_f32(acc[i][0], a, b0);
      acc[i][1] = vfmaq_f32(acc[i][1], a, b1);
    }
  }
  if (mr == kMr && nr == kNr) {
    for (int i = 0; i < kMr; ++i) {
      float* out = c + i * ldc;
      if (first) {
        vst1q_f32(out, acc[i][0]);
        vst1q_f32(out + 4, acc[i][1]);
      } else {
        vst1q_f32(out, vaddq_f32(vld1q_f32(out), acc[i][0]));
        vst1q_f32(out + 4, vaddq_f32(vld1q_f32(out + 4), acc[i][1]));
      }
    }
    return;
  }
  alignas(16) float tile[kMr][kNr];
  for (int i = 0; i < kMr; ++i) {
    vst1q_f32(&tile[i][0], acc[i][0]);
    vst1q_f32(&tile[i][4], acc[i][1]);
  }
  writeback_tail(&tile[0][0], kNr, c, ldc, mr, nr, first);
}

#endif

std::vector<MicroKernel> build_kernel_list() {
  std::vector<MicroKernel> kernels;
#if defined(__x86_64__) || defined(__i386__)
  if (host_has_avx2_fma()) {
    kernels.push_back({"avx2_6x16", 1, 6, 16, kern_avx2_6x16});
    kernels.push_back({"avx2_4x16", 2, 4, 16, kern_avx2_4x16});
    kernels.push_back({"avx2_8x8", 3, 8, 8, kern_avx2_8x8});
  }
#elif defined(__aarch64__)
  kernels.push_back({"neon_8x8", 4, 8, 8, kern_neon_8x8});
#endif
  kernels.push_back({"scalar_4x8", 0, 4, 8, kern_scalar_4x8});
  return kernels;
}

}  // namespace

const std::vector<MicroKernel>& available_kernels() {
  static const std::vector<MicroKernel> kernels = build_kernel_list();
  return kernels;
}

const MicroKernel* find_kernel(std::string_view name) {
  const auto& kernels = available_kernels();
  const auto it = std::find_if(kernels.begin(), kernels.end(),
                               [&](const MicroKernel& k) { return name == k.name; });
  return it == kernels.end() ? nullptr : &*it;
}

const MicroKernel& scalar_kernel() { return available_kernels().back(); }

std::string cpu_features() {
#if defined(__x86_64__) || defined(__i386__)
  if (host_has_avx2_fma()) return "avx2+fma";
  return "x86-portable";
#elif defined(__aarch64__)
  return "neon";
#else
  return "portable-scalar";
#endif
}

}  // namespace nodetr::tensor::simd
