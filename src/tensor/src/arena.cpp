#include "nodetr/tensor/arena.hpp"

#include <algorithm>
#include <cstdlib>
#include <new>

#include "nodetr/obs/obs.hpp"

namespace nodetr::tensor {

namespace obs = nodetr::obs;

namespace {
constexpr std::size_t kAlign = 64;  // cache-line alignment for packed panels
constexpr std::size_t kMinChunk = std::size_t{1} << 16;

std::size_t round_up(std::size_t v, std::size_t a) { return (v + a - 1) / a * a; }
}  // namespace

#ifdef NDEBUG
#define NODETR_ARENA_ASSERT_ALIGNED(p) (void)(p)
#else
#define NODETR_ARENA_ASSERT_ALIGNED(p) \
  (void)(reinterpret_cast<std::uintptr_t>(p) % kAlign == 0 ? 0 : (std::abort(), 0))
#endif

ScratchArena::~ScratchArena() {
  for (auto& c : chunks_) ::operator delete[](c.data, std::align_val_t{kAlign});
}

std::size_t ScratchArena::live_bytes() const {
  std::size_t live = offset_;
  for (std::size_t i = 0; i < current_chunk_; ++i) live += chunks_[i].size;
  return live;
}

void ScratchArena::add_chunk(std::size_t min_size) {
  // Doubling growth keeps the chunk count logarithmic in the workload size;
  // the outermost rewind coalesces back to one chunk anyway.
  const std::size_t size = std::max({min_size, capacity_, kMinChunk});
  chunks_.push_back({static_cast<std::byte*>(::operator new[](size, std::align_val_t{kAlign})),
                     size});
  capacity_ += size;
  static auto& grows = obs::Registry::instance().counter("tensor.arena.grows");
  grows.add();
  obs::Registry::instance().gauge("tensor.arena.bytes").set(static_cast<double>(capacity_));
}

void* ScratchArena::allocate(std::size_t bytes) {
  bytes = round_up(std::max<std::size_t>(bytes, 1), kAlign);
  // Advance to (or create) a chunk with room. Tail space skipped on the way
  // is wasted only until the next rewind.
  for (;;) {
    if (current_chunk_ < chunks_.size() &&
        offset_ + bytes <= chunks_[current_chunk_].size) {
      break;
    }
    if (current_chunk_ + 1 < chunks_.size()) {
      ++current_chunk_;
      offset_ = 0;
      continue;
    }
    add_chunk(bytes);
    current_chunk_ = chunks_.size() - 1;
    offset_ = 0;
  }
  void* p = chunks_[current_chunk_].data + offset_;
  offset_ += bytes;
  high_water_ = std::max(high_water_, live_bytes());
  // Documented contract (arena.hpp): every pointer handed out is cache-line
  // aligned — the SIMD GEMM packing and im2col buffers depend on it.
  NODETR_ARENA_ASSERT_ALIGNED(p);
  return p;
}

void ScratchArena::rewind(std::size_t chunk, std::size_t offset) {
  current_chunk_ = chunk;
  offset_ = offset;
  --depth_;
  if (depth_ == 0 && chunks_.size() > 1) {
    // Top-level: replace the fragmented chunk list with one block sized to
    // the high-water mark so future scopes never grow again.
    for (auto& c : chunks_) ::operator delete[](c.data, std::align_val_t{kAlign});
    chunks_.clear();
    capacity_ = 0;
    current_chunk_ = 0;
    offset_ = 0;
    add_chunk(round_up(high_water_, kAlign));
  }
}

ScratchArena& ScratchArena::local() {
  thread_local ScratchArena arena;
  return arena;
}

}  // namespace nodetr::tensor
