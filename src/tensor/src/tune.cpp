#include "nodetr/tensor/tune.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "nodetr/obs/obs.hpp"
#include "nodetr/tensor/gemm.hpp"

namespace nodetr::tensor::tune {

namespace obs = nodetr::obs;

// Timing-based tuning is meaningless under a sanitizer (instrumentation
// skews every candidate the same random way and the probe itself runs
// ~10-20x slow); fall back to the heuristic blocking there.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define NODETR_TUNE_NO_BENCH 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define NODETR_TUNE_NO_BENCH 1
#endif
#endif

namespace {

constexpr const char* kCacheMagic = "nodetr-tune v1";

/// Parse a sysfs cache size string ("48K", "2M", "32768").
std::size_t parse_size(const std::string& s) {
  if (s.empty()) return 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end == s.c_str()) return 0;
  switch (*end) {
    case 'K': case 'k': return v << 10;
    case 'M': case 'm': return v << 20;
    case 'G': case 'g': return v << 30;
    default: return v;
  }
}

std::string read_line(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  if (in) std::getline(in, line);
  return line;
}

#ifdef _SC_LEVEL1_DCACHE_SIZE
long sysconf_or_zero(int name) {
  const long v = ::sysconf(name);
  return v > 0 ? v : 0;
}
#endif

index_t round_down(index_t v, index_t step) { return std::max(step, v / step * step); }

/// Deterministic fill for the probe operands (no RNG dependency; values only
/// need to be nonzero and varied so the probe is not a denormal stress test).
void fill_probe(std::vector<float>& v) {
  std::uint32_t x = 0x9e3779b9u;
  for (auto& f : v) {
    x = x * 1664525u + 1013904223u;
    f = static_cast<float>(static_cast<std::int32_t>(x >> 8)) * (1.0f / (1 << 23));
  }
}

int source_id(const char* source) {
  const std::string_view s(source);
  if (s == "tuned") return 1;
  if (s == "cache") return 2;
  if (s == "env") return 3;
  return 0;
}

void publish_gauges(const GemmConfig& cfg, const CacheInfo& caches) {
  auto& reg = obs::Registry::instance();
  reg.gauge("tensor.gemm.kernel_id").set(cfg.kernel->id);
  reg.gauge("tensor.gemm.mr").set(static_cast<double>(cfg.kernel->mr));
  reg.gauge("tensor.gemm.nr").set(static_cast<double>(cfg.kernel->nr));
  reg.gauge("tensor.gemm.mc").set(static_cast<double>(cfg.mc));
  reg.gauge("tensor.gemm.kc").set(static_cast<double>(cfg.kc));
  reg.gauge("tensor.gemm.nc").set(static_cast<double>(cfg.nc));
  reg.gauge("tensor.tune.source").set(source_id(cfg.source));
  reg.gauge("tensor.cpu.l1d_bytes").set(static_cast<double>(caches.l1d));
  reg.gauge("tensor.cpu.l2_bytes").set(static_cast<double>(caches.l2));
  reg.gauge("tensor.cpu.l3_bytes").set(static_cast<double>(caches.l3));
}

std::string human_bytes(std::size_t b) {
  char buf[32];
  if (b >= (std::size_t{1} << 20)) {
    std::snprintf(buf, sizeof buf, "%.0fM", static_cast<double>(b) / (1 << 20));
  } else {
    std::snprintf(buf, sizeof buf, "%.0fK", static_cast<double>(b) / (1 << 10));
  }
  return buf;
}

}  // namespace

CacheInfo probe_caches() {
  CacheInfo info;
  // Preferred source: sysfs cpu0 cache indexes (exact, per-level, per-type).
  for (int idx = 0; idx < 10; ++idx) {
    const std::string base = "/sys/devices/system/cpu/cpu0/cache/index" + std::to_string(idx);
    const std::string type = read_line(base + "/type");
    if (type.empty()) break;
    if (type == "Instruction") continue;
    const int level = std::atoi(read_line(base + "/level").c_str());
    const std::size_t size = parse_size(read_line(base + "/size"));
    if (size == 0) continue;
    if (level == 1) info.l1d = size;
    if (level == 2) info.l2 = size;
    if (level == 3) info.l3 = size;
    info.probed = true;
  }
#ifdef _SC_LEVEL1_DCACHE_SIZE
  if (info.l1d == 0) info.l1d = static_cast<std::size_t>(sysconf_or_zero(_SC_LEVEL1_DCACHE_SIZE));
  if (info.l2 == 0) info.l2 = static_cast<std::size_t>(sysconf_or_zero(_SC_LEVEL2_CACHE_SIZE));
  if (info.l3 == 0) info.l3 = static_cast<std::size_t>(sysconf_or_zero(_SC_LEVEL3_CACHE_SIZE));
  info.probed = info.probed || info.l1d != 0 || info.l2 != 0 || info.l3 != 0;
#endif
  return info;
}

const CacheInfo& host_caches() {
  static const CacheInfo cached = [] {
    CacheInfo info = probe_caches();
    // Conservative defaults for levels the OS hides (containers, exotic
    // kernels): small enough to be safe on any post-2010 core.
    if (info.l1d == 0) info.l1d = 32 << 10;
    if (info.l2 == 0) info.l2 = 1 << 20;
    if (info.l3 == 0) info.l3 = 8 << 20;
    return info;
  }();
  return cached;
}

GemmConfig default_config(const simd::MicroKernel& kernel, const CacheInfo& caches) {
  GemmConfig cfg;
  cfg.kernel = &kernel;
  // KC: one A (mr x KC) + one B (KC x nr) micro-panel pair resident in L1d,
  // leaving a quarter for the C tile and stack noise.
  const index_t kc_budget =
      static_cast<index_t>(caches.l1d * 3 / 4) / (4 * (kernel.mr + kernel.nr));
  cfg.kc = std::clamp<index_t>(round_down(kc_budget, 8), 64, 512);
  // MC: the packed A block (MC x KC) fills at most half of L2.
  const index_t mc_budget = static_cast<index_t>(caches.l2 / 2) / (4 * cfg.kc);
  cfg.mc = std::clamp<index_t>(round_down(mc_budget, kernel.mr), kernel.mr * 4, 768);
  // NC: the packed B block (KC x NC) fills at most a quarter of L3 (shared
  // with other cores and the streamed C), capped to bound arena growth.
  const index_t nc_budget = static_cast<index_t>(caches.l3 / 4) / (4 * cfg.kc);
  cfg.nc = std::clamp<index_t>(round_down(nc_budget, kernel.nr), kernel.nr * 4, 2048);
  cfg.source = "default";
  return cfg;
}

std::vector<GemmConfig> candidate_configs(const CacheInfo& caches) {
  std::vector<GemmConfig> out;
  for (const auto& kernel : simd::available_kernels()) {
    const GemmConfig base = default_config(kernel, caches);
    out.push_back(base);
    // Half-depth variant: trades packing overhead for a hotter C tile; wins
    // on hosts where the derived KC overshoots the effective L1 share.
    CacheInfo half = caches;
    half.l1d /= 2;
    GemmConfig shallow = default_config(kernel, half);
    if (shallow.kc != base.kc) out.push_back(shallow);
  }
  return out;
}

GemmConfig autotune(const CacheInfo& caches) {
  static auto& runs = obs::Registry::instance().counter("tensor.tune.runs");
  runs.add();
#ifdef NODETR_TUNE_NO_BENCH
  GemmConfig heuristic = default_config(simd::available_kernels().front(), caches);
  heuristic.source = "tuned";
  return heuristic;
#endif
  // Probe on the headline square shape; big enough to exercise all three
  // blocking levels, small enough that the whole tune costs ~tens of ms.
  constexpr index_t kProbe = 256;
  std::vector<float> a(kProbe * kProbe), b(kProbe * kProbe), c(kProbe * kProbe);
  fill_probe(a);
  fill_probe(b);

  GemmConfig best;
  double best_ns = 0.0;
  for (GemmConfig cand : candidate_configs(caches)) {
    double cand_ns = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      gemm_blocked_cfg(kProbe, kProbe, kProbe, GemmView::plain(a.data(), kProbe),
                       GemmView::plain(b.data(), kProbe), c.data(), kProbe, cand);
      const auto t1 = std::chrono::steady_clock::now();
      const double ns = static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
      // rep 0 is warm-up (packs touch cold pages, the arena grows); keep the
      // min of the rest.
      if (rep > 0) cand_ns = cand_ns == 0.0 ? ns : std::min(cand_ns, ns);
    }
    if (best.kernel == nullptr || cand_ns < best_ns) {
      best = cand;
      best_ns = cand_ns;
    }
  }
  best.source = "tuned";
  obs::Registry::instance()
      .gauge("tensor.tune.best_gflops")
      .set(best_ns > 0.0 ? 2.0 * kProbe * kProbe * kProbe / best_ns : 0.0);
  return best;
}

std::string to_spec(const GemmConfig& cfg) {
  std::ostringstream os;
  os << cfg.kernel->name << ":" << cfg.mc << ":" << cfg.kc << ":" << cfg.nc;
  return os.str();
}

std::optional<GemmConfig> parse_spec(const std::string& spec) {
  std::vector<std::string> parts;
  std::string cur;
  std::istringstream is(spec);
  while (std::getline(is, cur, ':')) parts.push_back(cur);
  if (parts.size() != 1 && parts.size() != 4) return std::nullopt;
  const simd::MicroKernel* kernel = simd::find_kernel(parts[0]);
  if (kernel == nullptr) return std::nullopt;
  if (parts.size() == 1) {
    GemmConfig cfg = default_config(*kernel, host_caches());
    return cfg;
  }
  GemmConfig cfg;
  cfg.kernel = kernel;
  index_t* fields[3] = {&cfg.mc, &cfg.kc, &cfg.nc};
  for (int i = 0; i < 3; ++i) {
    char* end = nullptr;
    const long long v = std::strtoll(parts[i + 1].c_str(), &end, 10);
    if (end == parts[i + 1].c_str() || *end != '\0') return std::nullopt;
    if (v < 8 || v > (1 << 20)) return std::nullopt;
    *fields[i] = static_cast<index_t>(v);
  }
  return cfg;
}

std::optional<GemmConfig> load_cache_file(const std::string& path, const CacheInfo& host) {
  static auto& rejects = obs::Registry::instance().counter("tensor.tune.cache_rejects");
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::string magic, host_line, config_line;
  std::getline(in, magic);
  std::getline(in, host_line);
  std::getline(in, config_line);
  const auto reject = [&]() -> std::optional<GemmConfig> {
    rejects.add();
    return std::nullopt;
  };
  if (magic != kCacheMagic) return reject();
  // The cache is per-host: a file written on a different box (or before a
  // CPU/ISA change) must not leak its blocking here.
  unsigned long long l1 = 0, l2 = 0, l3 = 0;
  char isa[64] = {};
  if (std::sscanf(host_line.c_str(), "host l1d=%llu l2=%llu l3=%llu isa=%63s", &l1, &l2, &l3,
                  isa) != 4) {
    return reject();
  }
  if (l1 != host.l1d || l2 != host.l2 || l3 != host.l3 || simd::cpu_features() != isa) {
    return reject();
  }
  char spec[128] = {};
  if (std::sscanf(config_line.c_str(), "config %127s", spec) != 1) return reject();
  auto cfg = parse_spec(spec);
  if (!cfg.has_value()) return reject();
  cfg->source = "cache";
  return cfg;
}

bool save_cache_file(const std::string& path, const GemmConfig& cfg, const CacheInfo& host) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "nodetr: cannot write tuning cache %s\n", path.c_str());
    return false;
  }
  out << kCacheMagic << "\n";
  out << "host l1d=" << host.l1d << " l2=" << host.l2 << " l3=" << host.l3
      << " isa=" << simd::cpu_features() << "\n";
  out << "config " << to_spec(cfg) << "\n";
  return static_cast<bool>(out.flush());
}

GemmConfig select_config(const SelectOptions& opts) {
  const CacheInfo& caches = host_caches();
  auto& reg = obs::Registry::instance();
  GemmConfig cfg;
  if (!opts.env_spec.empty()) {
    if (auto forced = parse_spec(opts.env_spec); forced.has_value()) {
      forced->source = "env";
      reg.counter("tensor.tune.env_overrides").add();
      publish_gauges(*forced, caches);
      return *forced;
    }
    std::fprintf(stderr, "nodetr: ignoring invalid NODETR_GEMM_CONFIG=\"%s\"\n",
                 opts.env_spec.c_str());
  }
  if (!opts.cache_path.empty()) {
    if (auto cached = load_cache_file(opts.cache_path, caches); cached.has_value()) {
      reg.counter("tensor.tune.cache_hits").add();
      publish_gauges(*cached, caches);
      return *cached;
    }
  }
  cfg = autotune(caches);
  if (!opts.cache_path.empty()) save_cache_file(opts.cache_path, cfg, caches);
  publish_gauges(cfg, caches);
  return cfg;
}

const GemmConfig& gemm_config() {
  static const GemmConfig cfg = [] {
    const char* env_spec = std::getenv("NODETR_GEMM_CONFIG");
    const char* cache_path = std::getenv("NODETR_TUNE_CACHE");
    return select_config({env_spec != nullptr ? env_spec : "",
                          cache_path != nullptr ? cache_path : ""});
  }();
  return cfg;
}

std::string describe(const GemmConfig& cfg) {
  const CacheInfo& caches = host_caches();
  std::ostringstream os;
  os << "gemm: microkernel " << cfg.kernel->name << " (" << cfg.kernel->mr << "x"
     << cfg.kernel->nr << ", " << simd::cpu_features() << "), blocking MC=" << cfg.mc
     << " KC=" << cfg.kc << " NC=" << cfg.nc << ", caches L1d=" << human_bytes(caches.l1d)
     << " L2=" << human_bytes(caches.l2) << " L3=" << human_bytes(caches.l3)
     << ", source=" << cfg.source;
  return os.str();
}

}  // namespace nodetr::tensor::tune
