#include "nodetr/tensor/gemm.hpp"

#include <algorithm>
#include <stdexcept>

#include "nodetr/obs/obs.hpp"
#include "nodetr/tensor/arena.hpp"
#include "nodetr/tensor/parallel.hpp"
#include "nodetr/tensor/simd.hpp"
#include "nodetr/tensor/tune.hpp"

namespace nodetr::tensor {

namespace obs = nodetr::obs;

namespace {

constexpr index_t ceil_div(index_t a, index_t b) { return (a + b - 1) / b; }
constexpr index_t round_up(index_t a, index_t b) { return ceil_div(a, b) * b; }

/// Pack one A micro-panel: rows [row0, row0 + mr) of op(A), depth [pc,
/// pc + kc), k-major (element (i, p) at dst[p * mr_max + i]), zero-padded to
/// the kernel's full mr_max rows. Panel content depends only on (row0, pc,
/// mr, kc), never on which thread packs it.
void pack_a_panel(const GemmView& a, index_t row0, index_t pc, index_t mr, index_t kc,
                  index_t mr_max, float* dst) {
  if (!a.trans) {
    for (index_t i = 0; i < mr; ++i) {
      const float* src = a.data + (row0 + i) * a.ld + pc;
      for (index_t p = 0; p < kc; ++p) dst[p * mr_max + i] = src[p];
    }
    for (index_t i = mr; i < mr_max; ++i) {
      for (index_t p = 0; p < kc; ++p) dst[p * mr_max + i] = 0.0f;
    }
  } else {
    for (index_t p = 0; p < kc; ++p) {
      const float* src = a.data + (pc + p) * a.ld + row0;
      float* d = dst + p * mr_max;
      for (index_t i = 0; i < mr; ++i) d[i] = src[i];
      for (index_t i = mr; i < mr_max; ++i) d[i] = 0.0f;
    }
  }
}

/// Pack one B micro-panel: columns [col0, col0 + nr) of op(B), depth [pc,
/// pc + kc), k-major (element (p, j) at dst[p * nr_max + j]), zero-padded to
/// nr_max columns.
void pack_b_panel(const GemmView& b, index_t pc, index_t col0, index_t kc, index_t nr,
                  index_t nr_max, float* dst) {
  if (!b.trans) {
    for (index_t p = 0; p < kc; ++p) {
      const float* src = b.data + (pc + p) * b.ld + col0;
      float* d = dst + p * nr_max;
      for (index_t j = 0; j < nr; ++j) d[j] = src[j];
      for (index_t j = nr; j < nr_max; ++j) d[j] = 0.0f;
    }
  } else {
    for (index_t j = 0; j < nr; ++j) {
      const float* src = b.data + (col0 + j) * b.ld + pc;
      for (index_t p = 0; p < kc; ++p) dst[p * nr_max + j] = src[p];
    }
    for (index_t j = nr; j < nr_max; ++j) {
      for (index_t p = 0; p < kc; ++p) dst[p * nr_max + j] = 0.0f;
    }
  }
}

[[nodiscard]] bool needs_epilogue(const GemmEpilogue& ep) {
  return !ep.accumulate && (ep.alpha != 1.0f || ep.bias_col != nullptr ||
                            ep.bias_row != nullptr || ep.residual != nullptr || ep.relu);
}

/// Column-panel epilogue: runs right after the panel's last k block while the
/// C rows are still cache-hot.
void apply_epilogue(float* c, index_t ldc, index_t m, index_t n, index_t jc, index_t nc,
                    const GemmEpilogue& ep) {
  const index_t res_ld = ep.residual_ld > 0 ? ep.residual_ld : n;
  parallel_for(0, m, [&](index_t lo, index_t hi) {
    for (index_t i = lo; i < hi; ++i) {
      float* row = c + i * ldc + jc;
      const float br = ep.bias_row != nullptr ? ep.bias_row[i] : 0.0f;
      const float* bc = ep.bias_col != nullptr ? ep.bias_col + jc : nullptr;
      const float* res = ep.residual != nullptr ? ep.residual + i * res_ld + jc : nullptr;
      for (index_t j = 0; j < nc; ++j) {
        float v = ep.alpha * row[j] + br;
        if (bc != nullptr) v += bc[j];
        if (res != nullptr) v += res[j];
        if (ep.relu && v < 0.0f) v = 0.0f;
        row[j] = v;
      }
    }
  }, /*grain=*/64);
}

void check_rank2(const Tensor& t, const char* name) {
  if (t.rank() != 2) throw std::invalid_argument(std::string(name) + ": rank must be 2");
}

}  // namespace

void gemm_blocked_cfg(index_t m, index_t k, index_t n, GemmView a, GemmView b, float* c,
                      index_t ldc, const tune::GemmConfig& cfg, const GemmEpilogue& ep) {
  if (m <= 0 || n <= 0) return;
  static auto& calls = obs::Registry::instance().counter("tensor.gemm.calls");
  static auto& flops = obs::Registry::instance().counter("tensor.gemm.flops");
  calls.add();
  flops.add(2 * m * k * n);
  if (k <= 0) {
    if (!ep.accumulate) {
      for (index_t i = 0; i < m; ++i) std::fill_n(c + i * ldc, n, 0.0f);
      if (needs_epilogue(ep)) apply_epilogue(c, ldc, m, n, 0, n, ep);
    }
    return;
  }

  const simd::MicroKernel& ker = *cfg.kernel;
  const index_t kMr = ker.mr, kNr = ker.nr;
  const index_t kKc = cfg.kc, kMc = cfg.mc, kNc = cfg.nc;

  // Both packs live in the caller's arena and are shared by all workers:
  // panels are written by exactly one pack task and read only after the
  // packing parallel_for joins, so the pool's fork/join provides the
  // happens-before edge. ScratchArena returns 64-byte-aligned storage, which
  // makes the first row of every pack cacheline-aligned for the SIMD loads.
  auto& arena = ScratchArena::local();
  ScratchArena::Scope scope(arena);
  float* bpack = arena.alloc<float>(
      static_cast<std::size_t>(std::min(k, kKc) * round_up(std::min(n, kNc), kNr)));
  float* apack = arena.alloc<float>(
      static_cast<std::size_t>(std::min(k, kKc) * round_up(std::min(m, kMc), kMr)));

  for (index_t jc = 0; jc < n; jc += kNc) {
    const index_t nc = std::min(kNc, n - jc);
    const index_t jpanels = ceil_div(nc, kNr);
    for (index_t pc = 0; pc < k; pc += kKc) {
      const index_t kc = std::min(kKc, k - pc);
      const bool first = pc == 0 && !ep.accumulate;
      parallel_for(0, jpanels, [&](index_t lo, index_t hi) {
        for (index_t jp = lo; jp < hi; ++jp) {
          pack_b_panel(b, pc, jc + jp * kNr, kc, std::min(kNr, nc - jp * kNr), kNr,
                       bpack + jp * kNr * kc);
        }
      }, /*grain=*/8);
      for (index_t ic = 0; ic < m; ic += kMc) {
        const index_t mc = std::min(kMc, m - ic);
        const index_t ipanels = ceil_div(mc, kMr);
        parallel_for(0, ipanels, [&](index_t lo, index_t hi) {
          for (index_t ip = lo; ip < hi; ++ip) {
            pack_a_panel(a, ic + ip * kMr, pc, std::min(kMr, mc - ip * kMr), kc, kMr,
                         apack + ip * kMr * kc);
          }
        }, /*grain=*/8);
        // BLIS-style macro kernel: the jr and ir loops around the microkernel
        // are flattened into one tile index and partitioned across the pool,
        // jr-major so consecutive tiles in a chunk reuse the same L1-resident
        // B micro-panel. Tile (jp, ip) is written by exactly one task, and
        // the split never changes any output element's k accumulation order.
        parallel_for(0, jpanels * ipanels, [&](index_t lo, index_t hi) {
          for (index_t t = lo; t < hi; ++t) {
            const index_t jp = t / ipanels, ip = t % ipanels;
            const index_t nr = std::min(kNr, nc - jp * kNr);
            const index_t mr = std::min(kMr, mc - ip * kMr);
            ker.fn(static_cast<int>(kc), apack + ip * kMr * kc, bpack + jp * kNr * kc,
                   c + (ic + ip * kMr) * ldc + jc + jp * kNr, ldc, mr, nr, first);
          }
        }, /*grain=*/8);
      }
    }
    if (needs_epilogue(ep)) apply_epilogue(c, ldc, m, n, jc, nc, ep);
  }
}

void gemm_blocked(index_t m, index_t k, index_t n, GemmView a, GemmView b, float* c, index_t ldc,
                  const GemmEpilogue& ep) {
  gemm_blocked_cfg(m, k, n, a, b, c, ldc, tune::gemm_config(), ep);
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  check_rank2(a, "matmul: a");
  check_rank2(b, "matmul: b");
  const index_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k) {
    throw std::invalid_argument("matmul: inner dimensions mismatch " + a.shape().to_string() +
                                " x " + b.shape().to_string());
  }
  Tensor c(Shape{m, n});
  gemm_blocked(m, k, n, GemmView::plain(a.data(), k), GemmView::plain(b.data(), n), c.data(), n);
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  check_rank2(a, "matmul_nt: a");
  check_rank2(b, "matmul_nt: b");
  const index_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  if (b.dim(1) != k) {
    throw std::invalid_argument("matmul_nt: inner dimensions mismatch " + a.shape().to_string() +
                                " x " + b.shape().to_string() + "^T");
  }
  Tensor c(Shape{m, n});
  gemm_blocked(m, k, n, GemmView::plain(a.data(), k), GemmView::transposed(b.data(), k),
               c.data(), n);
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  check_rank2(a, "matmul_tn: a");
  check_rank2(b, "matmul_tn: b");
  const index_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k) {
    throw std::invalid_argument("matmul_tn: inner dimensions mismatch " + a.shape().to_string() +
                                "^T x " + b.shape().to_string());
  }
  Tensor c(Shape{m, n});
  gemm_blocked(m, k, n, GemmView::transposed(a.data(), m), GemmView::plain(b.data(), n),
               c.data(), n);
  return c;
}

void gemm_accumulate(const float* a, const float* b, float* c, index_t m, index_t k, index_t n) {
  gemm_blocked(m, k, n, GemmView::plain(a, k), GemmView::plain(b, n), c, n,
               {.accumulate = true});
}

}  // namespace nodetr::tensor
