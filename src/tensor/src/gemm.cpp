#include "nodetr/tensor/gemm.hpp"

#include <stdexcept>

#include "nodetr/tensor/parallel.hpp"

namespace nodetr::tensor {

namespace {
void check_rank2(const Tensor& t, const char* name) {
  if (t.rank() != 2) throw std::invalid_argument(std::string(name) + ": rank must be 2");
}
}  // namespace

void gemm_accumulate(const float* a, const float* b, float* c, index_t m, index_t k, index_t n) {
  // ikj order: streams through b and c rows; the inner j loop vectorizes.
  for (index_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (index_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b + p * n;
      for (index_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  check_rank2(a, "matmul: a");
  check_rank2(b, "matmul: b");
  const index_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k) {
    throw std::invalid_argument("matmul: inner dimensions mismatch " + a.shape().to_string() +
                                " x " + b.shape().to_string());
  }
  Tensor c(Shape{m, n});
  parallel_for(0, m, [&](index_t lo, index_t hi) {
    gemm_accumulate(a.data() + lo * k, b.data(), c.data() + lo * n, hi - lo, k, n);
  }, /*grain=*/16);
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  check_rank2(a, "matmul_nt: a");
  check_rank2(b, "matmul_nt: b");
  const index_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  if (b.dim(1) != k) {
    throw std::invalid_argument("matmul_nt: inner dimensions mismatch " + a.shape().to_string() +
                                " x " + b.shape().to_string() + "^T");
  }
  Tensor c(Shape{m, n});
  parallel_for(0, m, [&](index_t lo, index_t hi) {
    for (index_t i = lo; i < hi; ++i) {
      const float* arow = a.data() + i * k;
      float* crow = c.data() + i * n;
      for (index_t j = 0; j < n; ++j) {
        const float* brow = b.data() + j * k;
        double acc = 0.0;
        for (index_t p = 0; p < k; ++p) acc += static_cast<double>(arow[p]) * brow[p];
        crow[j] = static_cast<float>(acc);
      }
    }
  }, /*grain=*/16);
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  check_rank2(a, "matmul_tn: a");
  check_rank2(b, "matmul_tn: b");
  const index_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k) {
    throw std::invalid_argument("matmul_tn: inner dimensions mismatch " + a.shape().to_string() +
                                "^T x " + b.shape().to_string());
  }
  Tensor c(Shape{m, n});
  // c[i][j] = sum_p a[p][i] * b[p][j]; accumulate row-by-row of a/b.
  for (index_t p = 0; p < k; ++p) {
    const float* arow = a.data() + p * m;
    const float* brow = b.data() + p * n;
    parallel_for(0, m, [&](index_t lo, index_t hi) {
      for (index_t i = lo; i < hi; ++i) {
        const float av = arow[i];
        if (av == 0.0f) continue;
        float* crow = c.data() + i * n;
        for (index_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }, /*grain=*/64);
  }
  return c;
}

}  // namespace nodetr::tensor
