#include "nodetr/tensor/gemm.hpp"

#include <algorithm>
#include <stdexcept>

#include "nodetr/obs/obs.hpp"
#include "nodetr/tensor/arena.hpp"
#include "nodetr/tensor/parallel.hpp"

namespace nodetr::tensor {

namespace obs = nodetr::obs;

namespace {

// Blocking geometry (float32, tuned for the baseline -O3 build without
// -march=native; see DESIGN.md "Kernel layer"):
//  - kMr x kNr microkernel: 32 accumulators fit the baseline SSE2 register
//    budget, and the 8-wide inner loop auto-vectorizes.
//  - kKc-deep panels: an A micro-panel (kMr * kKc = 4 KB) plus a B micro-panel
//    (kNr * kKc = 8 KB) stay resident in a 32 KB L1.
//  - A pack (kMc * kKc = 256 KB) and B pack (kKc * kNc = 128 KB) target L2.
constexpr index_t kMr = 4;
constexpr index_t kNr = 8;
constexpr index_t kKc = 256;
constexpr index_t kMc = 256;
constexpr index_t kNc = 128;

constexpr index_t ceil_div(index_t a, index_t b) { return (a + b - 1) / b; }
constexpr index_t round_up(index_t a, index_t b) { return ceil_div(a, b) * b; }

/// Pack A(ic:ic+mc, pc:pc+kc) into kMr-row micro-panels, k-major within each
/// panel (element (i, p) at panel[p * kMr + i]), zero-padded to full kMr.
void pack_a(const GemmView& a, index_t ic, index_t pc, index_t mc, index_t kc, float* out) {
  for (index_t i0 = 0; i0 < mc; i0 += kMr) {
    const index_t mr = std::min(kMr, mc - i0);
    float* dst = out + i0 * kc;
    if (!a.trans) {
      for (index_t i = 0; i < mr; ++i) {
        const float* src = a.data + (ic + i0 + i) * a.ld + pc;
        for (index_t p = 0; p < kc; ++p) dst[p * kMr + i] = src[p];
      }
      for (index_t i = mr; i < kMr; ++i) {
        for (index_t p = 0; p < kc; ++p) dst[p * kMr + i] = 0.0f;
      }
    } else {
      for (index_t p = 0; p < kc; ++p) {
        const float* src = a.data + (pc + p) * a.ld + ic + i0;
        float* d = dst + p * kMr;
        for (index_t i = 0; i < mr; ++i) d[i] = src[i];
        for (index_t i = mr; i < kMr; ++i) d[i] = 0.0f;
      }
    }
  }
}

/// Pack B(pc:pc+kc, jc:jc+nc) into kNr-column micro-panels, k-major within
/// each panel (element (p, j) at panel[p * kNr + j]), zero-padded to full kNr.
void pack_b(const GemmView& b, index_t pc, index_t jc, index_t kc, index_t nc, float* out) {
  for (index_t j0 = 0; j0 < nc; j0 += kNr) {
    const index_t nr = std::min(kNr, nc - j0);
    float* dst = out + j0 * kc;
    if (!b.trans) {
      for (index_t p = 0; p < kc; ++p) {
        const float* src = b.data + (pc + p) * b.ld + jc + j0;
        float* d = dst + p * kNr;
        for (index_t j = 0; j < nr; ++j) d[j] = src[j];
        for (index_t j = nr; j < kNr; ++j) d[j] = 0.0f;
      }
    } else {
      for (index_t j = 0; j < nr; ++j) {
        const float* src = b.data + (jc + j0 + j) * b.ld + pc;
        for (index_t p = 0; p < kc; ++p) dst[p * kNr + j] = src[p];
      }
      for (index_t j = nr; j < kNr; ++j) {
        for (index_t p = 0; p < kc; ++p) dst[p * kNr + j] = 0.0f;
      }
    }
  }
}

/// kMr x kNr register tile over one A and one B micro-panel. The k loop is
/// unrolled by 4 and each product lands in its accumulator in ascending-k
/// order, so results never depend on the surrounding blocking.
void micro_kernel(int kc, const float* __restrict__ ap, const float* __restrict__ bp,
                  float* __restrict__ c, index_t ldc, index_t mr, index_t nr, bool first) {
  float acc[kMr][kNr] = {};
  int p = 0;
  for (; p + 4 <= kc; p += 4) {
    for (int u = 0; u < 4; ++u) {
      const float* av = ap + (p + u) * kMr;
      const float* bv = bp + (p + u) * kNr;
      for (int i = 0; i < kMr; ++i) {
        for (int j = 0; j < kNr; ++j) acc[i][j] += av[i] * bv[j];
      }
    }
  }
  for (; p < kc; ++p) {
    const float* av = ap + p * kMr;
    const float* bv = bp + p * kNr;
    for (int i = 0; i < kMr; ++i) {
      for (int j = 0; j < kNr; ++j) acc[i][j] += av[i] * bv[j];
    }
  }
  if (mr == kMr && nr == kNr) {
    if (first) {
      for (int i = 0; i < kMr; ++i) {
        for (int j = 0; j < kNr; ++j) c[i * ldc + j] = acc[i][j];
      }
    } else {
      for (int i = 0; i < kMr; ++i) {
        for (int j = 0; j < kNr; ++j) c[i * ldc + j] += acc[i][j];
      }
    }
    return;
  }
  for (index_t i = 0; i < mr; ++i) {
    for (index_t j = 0; j < nr; ++j) {
      if (first) {
        c[i * ldc + j] = acc[i][j];
      } else {
        c[i * ldc + j] += acc[i][j];
      }
    }
  }
}

[[nodiscard]] bool needs_epilogue(const GemmEpilogue& ep) {
  return !ep.accumulate && (ep.alpha != 1.0f || ep.bias_col != nullptr ||
                            ep.bias_row != nullptr || ep.residual != nullptr || ep.relu);
}

/// Column-panel epilogue: runs right after the panel's last k block while the
/// C rows are still cache-hot.
void apply_epilogue(float* c, index_t ldc, index_t m, index_t n, index_t jc, index_t nc,
                    const GemmEpilogue& ep) {
  const index_t res_ld = ep.residual_ld > 0 ? ep.residual_ld : n;
  parallel_for(0, m, [&](index_t lo, index_t hi) {
    for (index_t i = lo; i < hi; ++i) {
      float* row = c + i * ldc + jc;
      const float br = ep.bias_row != nullptr ? ep.bias_row[i] : 0.0f;
      const float* bc = ep.bias_col != nullptr ? ep.bias_col + jc : nullptr;
      const float* res = ep.residual != nullptr ? ep.residual + i * res_ld + jc : nullptr;
      for (index_t j = 0; j < nc; ++j) {
        float v = ep.alpha * row[j] + br;
        if (bc != nullptr) v += bc[j];
        if (res != nullptr) v += res[j];
        if (ep.relu && v < 0.0f) v = 0.0f;
        row[j] = v;
      }
    }
  }, /*grain=*/64);
}

void check_rank2(const Tensor& t, const char* name) {
  if (t.rank() != 2) throw std::invalid_argument(std::string(name) + ": rank must be 2");
}

}  // namespace

void gemm_blocked(index_t m, index_t k, index_t n, GemmView a, GemmView b, float* c, index_t ldc,
                  const GemmEpilogue& ep) {
  if (m <= 0 || n <= 0) return;
  static auto& calls = obs::Registry::instance().counter("tensor.gemm.calls");
  static auto& flops = obs::Registry::instance().counter("tensor.gemm.flops");
  calls.add();
  flops.add(2 * m * k * n);
  if (k <= 0) {
    if (!ep.accumulate) {
      for (index_t i = 0; i < m; ++i) std::fill_n(c + i * ldc, n, 0.0f);
      if (needs_epilogue(ep)) apply_epilogue(c, ldc, m, n, 0, n, ep);
    }
    return;
  }

  auto& arena = ScratchArena::local();
  ScratchArena::Scope scope(arena);
  float* bpack = arena.alloc<float>(
      static_cast<std::size_t>(std::min(k, kKc) * round_up(std::min(n, kNc), kNr)));
  const index_t apack_elems = std::min(k, kKc) * round_up(std::min(m, kMc), kMr);
  // M is split across threads in units of microkernel row-panels; each worker
  // packs its own A sub-blocks, while the B panel is packed once and shared.
  // The split never changes any output element's k accumulation order.
  const index_t mpanels = ceil_div(m, kMr);

  for (index_t jc = 0; jc < n; jc += kNc) {
    const index_t nc = std::min(kNc, n - jc);
    for (index_t pc = 0; pc < k; pc += kKc) {
      const index_t kc = std::min(kKc, k - pc);
      const bool first = pc == 0 && !ep.accumulate;
      pack_b(b, pc, jc, kc, nc, bpack);
      parallel_for(0, mpanels, [&](index_t p_lo, index_t p_hi) {
        auto& worker_arena = ScratchArena::local();
        ScratchArena::Scope worker_scope(worker_arena);
        float* apack = worker_arena.alloc<float>(static_cast<std::size_t>(apack_elems));
        const index_t row_hi = std::min(m, p_hi * kMr);
        for (index_t ic = p_lo * kMr; ic < row_hi; ic += kMc) {
          const index_t mc = std::min(kMc, row_hi - ic);
          pack_a(a, ic, pc, mc, kc, apack);
          for (index_t jr = 0; jr < nc; jr += kNr) {
            const index_t nr = std::min(kNr, nc - jr);
            for (index_t ir = 0; ir < mc; ir += kMr) {
              const index_t mr = std::min(kMr, mc - ir);
              micro_kernel(static_cast<int>(kc), apack + ir * kc, bpack + jr * kc,
                           c + (ic + ir) * ldc + jc + jr, ldc, mr, nr, first);
            }
          }
        }
      }, /*grain=*/4);  // 4 row-panels = 16 rows per chunk, matching the old matmul grain
    }
    if (needs_epilogue(ep)) apply_epilogue(c, ldc, m, n, jc, nc, ep);
  }
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  check_rank2(a, "matmul: a");
  check_rank2(b, "matmul: b");
  const index_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k) {
    throw std::invalid_argument("matmul: inner dimensions mismatch " + a.shape().to_string() +
                                " x " + b.shape().to_string());
  }
  Tensor c(Shape{m, n});
  gemm_blocked(m, k, n, GemmView::plain(a.data(), k), GemmView::plain(b.data(), n), c.data(), n);
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  check_rank2(a, "matmul_nt: a");
  check_rank2(b, "matmul_nt: b");
  const index_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  if (b.dim(1) != k) {
    throw std::invalid_argument("matmul_nt: inner dimensions mismatch " + a.shape().to_string() +
                                " x " + b.shape().to_string() + "^T");
  }
  Tensor c(Shape{m, n});
  gemm_blocked(m, k, n, GemmView::plain(a.data(), k), GemmView::transposed(b.data(), k),
               c.data(), n);
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  check_rank2(a, "matmul_tn: a");
  check_rank2(b, "matmul_tn: b");
  const index_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k) {
    throw std::invalid_argument("matmul_tn: inner dimensions mismatch " + a.shape().to_string() +
                                "^T x " + b.shape().to_string());
  }
  Tensor c(Shape{m, n});
  gemm_blocked(m, k, n, GemmView::transposed(a.data(), m), GemmView::plain(b.data(), n),
               c.data(), n);
  return c;
}

void gemm_accumulate(const float* a, const float* b, float* c, index_t m, index_t k, index_t n) {
  gemm_blocked(m, k, n, GemmView::plain(a, k), GemmView::plain(b, n), c, n,
               {.accumulate = true});
}

}  // namespace nodetr::tensor
