#include "nodetr/tensor/parallel.hpp"

#include <algorithm>

#include "nodetr/obs/obs.hpp"

namespace nodetr::tensor {

namespace obs = nodetr::obs;

namespace {
/// Innermost pool whose chunk the current thread is executing (or nullptr).
/// Lets a nested run_chunks on the same pool fall back to serial execution
/// instead of deadlocking on the submission lock.
thread_local const ThreadPool* t_active_pool = nullptr;

constexpr index_t ceil_div(index_t a, index_t b) { return (a + b - 1) / b; }
}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  }
  // The calling thread participates, so spawn n-1 workers.
  for (std::size_t i = 1; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  obs::Registry::instance().gauge("tensor.pool.threads").set(static_cast<double>(size()));
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::worker_loop() {
  t_active_pool = this;  // worker threads belong to this pool for life
  std::size_t seen_epoch = 0;
  for (;;) {
    std::unique_lock lk(mu_);
    cv_work_.wait(lk, [&] { return stop_ || (fn_ != nullptr && epoch_ != seen_epoch); });
    if (stop_) return;
    seen_epoch = epoch_;
    if (posted_ns_ != 0) {
      // Queue wait: time from work being posted to this worker picking it up.
      // Only sampled while tracing is enabled (posted_ns_ stays 0 otherwise).
      static auto& wait_us = obs::Registry::instance().histogram("tensor.pool.queue_wait_us");
      wait_us.observe(static_cast<double>(obs::Tracer::instance().now_ns() - posted_ns_) / 1e3);
    }
    const auto* fn = fn_;
    ++active_;
    while (next_chunk_ < total_chunks_) {
      const std::size_t c = next_chunk_++;
      lk.unlock();
      (*fn)(c);
      lk.lock();
    }
    if (--active_ == 0) cv_done_.notify_all();
  }
}

void ThreadPool::run_chunks(std::size_t num_chunks, const std::function<void(std::size_t)>& fn) {
  if (num_chunks == 0) return;
  static auto& runs = obs::Registry::instance().counter("tensor.pool.runs");
  static auto& chunks = obs::Registry::instance().counter("tensor.pool.chunks");
  static auto& serial_runs = obs::Registry::instance().counter("tensor.pool.serial_runs");
  chunks.add(static_cast<std::int64_t>(num_chunks));
  if (workers_.empty() || num_chunks == 1 || t_active_pool == this) {
    serial_runs.add();
    for (std::size_t c = 0; c < num_chunks; ++c) fn(c);
    return;
  }
  runs.add();
  // One batch in flight at a time; concurrent submitters queue up here.
  std::lock_guard submit_lk(submit_mu_);
  std::unique_lock lk(mu_);
  fn_ = &fn;
  posted_ns_ = obs::tracing_enabled() ? obs::Tracer::instance().now_ns() : 0;
  next_chunk_ = 0;
  total_chunks_ = num_chunks;
  ++epoch_;
  cv_work_.notify_all();
  // Caller participates too.
  const ThreadPool* enclosing = t_active_pool;
  t_active_pool = this;
  while (next_chunk_ < total_chunks_) {
    const std::size_t c = next_chunk_++;
    lk.unlock();
    fn(c);
    lk.lock();
  }
  t_active_pool = enclosing;
  cv_done_.wait(lk, [&] { return active_ == 0; });
  fn_ = nullptr;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(index_t begin, index_t end, const std::function<void(index_t, index_t)>& body,
                  index_t grain) {
  const index_t n = end - begin;
  if (n <= 0) return;
  auto& pool = ThreadPool::global();
  // One chunk per grain-sized unit of work (rounding up), with the pool-derived
  // cap purely as an upper bound on scheduling overhead. The previous floor
  // division (n / grain) meant any loop shorter than two grains ran serially,
  // which silently serialized call sites that picked a large grain.
  const index_t units = ceil_div(n, std::max<index_t>(grain, 1));
  const index_t max_chunks = static_cast<index_t>(pool.size()) * 4;
  const index_t chunks = std::min(std::max<index_t>(units, 1), max_chunks);
  if (chunks == 1) {
    body(begin, end);
    return;
  }
  const index_t per = (n + chunks - 1) / chunks;
  pool.run_chunks(static_cast<std::size_t>(chunks), [&](std::size_t c) {
    const index_t lo = begin + static_cast<index_t>(c) * per;
    const index_t hi = std::min(lo + per, end);
    if (lo < hi) body(lo, hi);
  });
}

}  // namespace nodetr::tensor
