#include "nodetr/tensor/conv.hpp"

#include <algorithm>
#include <stdexcept>

#include "nodetr/tensor/arena.hpp"
#include "nodetr/tensor/gemm.hpp"
#include "nodetr/tensor/parallel.hpp"

namespace nodetr::tensor {

namespace {

void check_input(const Tensor& x, const Conv2dGeom& g, const char* who) {
  if (x.rank() != 4) throw std::invalid_argument(std::string(who) + ": input rank must be 4");
  if (x.dim(1) != g.in_channels) {
    throw std::invalid_argument(std::string(who) + ": channel mismatch");
  }
}

constexpr index_t ceil_div(index_t a, index_t b) { return (a + b - 1) / b; }

/// First output index whose receptive field at kernel offset `kk` starts
/// inside [0, extent), and one past the last.
struct ValidRange {
  index_t lo, hi;
};
ValidRange valid_out_range(index_t extent, index_t out, index_t stride, index_t pad,
                           index_t kk) {
  // in = out * stride + kk - pad must land in [0, extent)
  const index_t lo = std::min(out, std::max<index_t>(0, ceil_div(pad - kk, stride)));
  const index_t hi = std::clamp<index_t>(ceil_div(extent - kk + pad, stride), lo, out);
  return {lo, hi};
}

/// Interior output rows/cols where the whole K x K window is in bounds: the
/// intersection of the valid ranges of the first and last kernel offsets.
ValidRange interior_range(index_t extent, index_t out, index_t stride, index_t pad,
                          index_t kernel) {
  const ValidRange first = valid_out_range(extent, out, stride, pad, 0);
  const ValidRange last = valid_out_range(extent, out, stride, pad, kernel - 1);
  const index_t lo = std::max(first.lo, last.lo);
  return {lo, std::max(lo, std::min(first.hi, last.hi))};
}

/// One fully-in-bounds K x K correlation at (iy, ix) = window origin.
template <int K>
float dw_dot(const float* src, index_t w, const float* ker) {
  float acc = 0.0f;
  for (int ky = 0; ky < K; ++ky) {
    const float* row = src + ky * w;
    for (int kx = 0; kx < K; ++kx) acc += ker[ky * K + kx] * row[kx];
  }
  return acc;
}

float dw_dot_n(const float* src, index_t w, const float* ker, index_t kernel) {
  float acc = 0.0f;
  for (index_t ky = 0; ky < kernel; ++ky) {
    const float* row = src + ky * w;
    for (index_t kx = 0; kx < kernel; ++kx) acc += ker[ky * kernel + kx] * row[kx];
  }
  return acc;
}

}  // namespace

void im2col(const float* img, index_t channels, index_t h, index_t w, const Conv2dGeom& g,
            float* col) {
  const index_t ho = g.out_extent(h), wo = g.out_extent(w);
  const index_t plane = ho * wo;
  index_t row = 0;
  for (index_t c = 0; c < channels; ++c) {
    const float* src = img + c * h * w;
    for (index_t ky = 0; ky < g.kernel; ++ky) {
      const ValidRange ry = valid_out_range(h, ho, g.stride, g.pad, ky);
      for (index_t kx = 0; kx < g.kernel; ++kx, ++row) {
        const ValidRange rx = valid_out_range(w, wo, g.stride, g.pad, kx);
        float* dst = col + row * plane;
        for (index_t oy = 0; oy < ho; ++oy) {
          float* drow = dst + oy * wo;
          const index_t iy = oy * g.stride + ky - g.pad;
          if (oy < ry.lo || oy >= ry.hi) {
            std::fill_n(drow, wo, 0.0f);
            continue;
          }
          std::fill(drow, drow + rx.lo, 0.0f);
          std::fill(drow + rx.hi, drow + wo, 0.0f);
          const float* srow = src + iy * w + rx.lo * g.stride + kx - g.pad;
          if (g.stride == 1) {
            std::copy(srow, srow + (rx.hi - rx.lo), drow + rx.lo);
          } else {
            for (index_t ox = rx.lo; ox < rx.hi; ++ox) {
              drow[ox] = srow[(ox - rx.lo) * g.stride];
            }
          }
        }
      }
    }
  }
}

void col2im(const float* col, index_t channels, index_t h, index_t w, const Conv2dGeom& g,
            float* img) {
  const index_t ho = g.out_extent(h), wo = g.out_extent(w);
  const index_t plane = ho * wo;
  index_t row = 0;
  for (index_t c = 0; c < channels; ++c) {
    float* dst = img + c * h * w;
    for (index_t ky = 0; ky < g.kernel; ++ky) {
      const ValidRange ry = valid_out_range(h, ho, g.stride, g.pad, ky);
      for (index_t kx = 0; kx < g.kernel; ++kx, ++row) {
        const ValidRange rx = valid_out_range(w, wo, g.stride, g.pad, kx);
        const float* src = col + row * plane;
        for (index_t oy = ry.lo; oy < ry.hi; ++oy) {
          const index_t iy = oy * g.stride + ky - g.pad;
          const float* srow = src + oy * wo;
          float* drow = dst + iy * w + rx.lo * g.stride + kx - g.pad;
          if (g.stride == 1) {
            for (index_t ox = rx.lo; ox < rx.hi; ++ox) drow[ox - rx.lo] += srow[ox];
          } else {
            for (index_t ox = rx.lo; ox < rx.hi; ++ox) {
              drow[(ox - rx.lo) * g.stride] += srow[ox];
            }
          }
        }
      }
    }
  }
}

Tensor conv2d(const Tensor& x, const Tensor& weight, const Tensor& bias, const Conv2dGeom& g) {
  check_input(x, g, "conv2d");
  const index_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const index_t ho = g.out_extent(h), wo = g.out_extent(w);
  const index_t krows = g.in_channels * g.kernel * g.kernel;
  Tensor out(Shape{n, g.out_channels, ho, wo});
  GemmEpilogue ep;
  ep.bias_row = bias.empty() ? nullptr : bias.data();  // one output channel per C row
  parallel_for(0, n, [&](index_t lo, index_t hi) {
    auto& arena = ScratchArena::local();
    ScratchArena::Scope scope(arena);
    float* col = arena.alloc<float>(static_cast<std::size_t>(krows * ho * wo));
    for (index_t s = lo; s < hi; ++s) {
      im2col(x.data() + s * g.in_channels * h * w, g.in_channels, h, w, g, col);
      gemm_blocked(g.out_channels, krows, ho * wo, GemmView::plain(weight.data(), krows),
                   GemmView::plain(col, ho * wo), out.data() + s * g.out_channels * ho * wo,
                   ho * wo, ep);
    }
  }, /*grain=*/1);
  return out;
}

Tensor conv2d_backward_input(const Tensor& grad_out, const Tensor& weight, const Conv2dGeom& g,
                             index_t in_h, index_t in_w) {
  const index_t n = grad_out.dim(0), ho = grad_out.dim(2), wo = grad_out.dim(3);
  const index_t krows = g.in_channels * g.kernel * g.kernel;
  Tensor gx(Shape{n, g.in_channels, in_h, in_w});
  parallel_for(0, n, [&](index_t lo, index_t hi) {
    auto& arena = ScratchArena::local();
    ScratchArena::Scope scope(arena);
    float* col = arena.alloc<float>(static_cast<std::size_t>(krows * ho * wo));
    for (index_t s = lo; s < hi; ++s) {
      // col (krows x P) = W^T (krows x Cout) * grad_out (Cout x P)
      gemm_blocked(krows, g.out_channels, ho * wo, GemmView::transposed(weight.data(), krows),
                   GemmView::plain(grad_out.data() + s * g.out_channels * ho * wo, ho * wo),
                   col, ho * wo);
      col2im(col, g.in_channels, in_h, in_w, g, gx.data() + s * g.in_channels * in_h * in_w);
    }
  }, /*grain=*/1);
  return gx;
}

void conv2d_backward_params(const Tensor& x, const Tensor& grad_out, const Conv2dGeom& g,
                            Tensor& grad_weight, Tensor& grad_bias) {
  const index_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const index_t ho = g.out_extent(h), wo = g.out_extent(w);
  const index_t krows = g.in_channels * g.kernel * g.kernel;
  auto& arena = ScratchArena::local();
  ScratchArena::Scope scope(arena);
  float* col = arena.alloc<float>(static_cast<std::size_t>(krows * ho * wo));
  for (index_t s = 0; s < n; ++s) {
    im2col(x.data() + s * g.in_channels * h * w, g.in_channels, h, w, g, col);
    const float* go = grad_out.data() + s * g.out_channels * ho * wo;
    // grad_weight (Cout x krows) += grad_out (Cout x P) * col (krows x P)^T
    gemm_blocked(g.out_channels, ho * wo, krows, GemmView::plain(go, ho * wo),
                 GemmView::transposed(col, ho * wo), grad_weight.data(), krows,
                 {.accumulate = true});
    if (!grad_bias.empty()) {
      for (index_t c = 0; c < g.out_channels; ++c) {
        const float* grow = go + c * ho * wo;
        double acc = 0.0;
        for (index_t i = 0; i < ho * wo; ++i) acc += grow[i];
        grad_bias[c] += static_cast<float>(acc);
      }
    }
  }
}

Tensor depthwise_conv2d(const Tensor& x, const Tensor& weight, const Tensor& bias,
                        const Conv2dGeom& g) {
  check_input(x, g, "depthwise_conv2d");
  const index_t n = x.dim(0), c_ = x.dim(1), h = x.dim(2), w = x.dim(3);
  const index_t ho = g.out_extent(h), wo = g.out_extent(w);
  const ValidRange iy_r = interior_range(h, ho, g.stride, g.pad, g.kernel);
  const ValidRange ix_r = interior_range(w, wo, g.stride, g.pad, g.kernel);
  Tensor out(Shape{n, c_, ho, wo});
  parallel_for(0, n * c_, [&](index_t lo, index_t hi) {
    for (index_t sc = lo; sc < hi; ++sc) {
      const index_t c = sc % c_;
      const float* src = x.data() + sc * h * w;
      const float* ker = weight.data() + c * g.kernel * g.kernel;
      const float b = bias.empty() ? 0.0f : bias[c];
      float* dst = out.data() + sc * ho * wo;
      auto edge_cell = [&](index_t oy, index_t ox) {
        float acc = b;
        for (index_t ky = 0; ky < g.kernel; ++ky) {
          const index_t iy = oy * g.stride + ky - g.pad;
          if (iy < 0 || iy >= h) continue;
          for (index_t kx = 0; kx < g.kernel; ++kx) {
            const index_t ix = ox * g.stride + kx - g.pad;
            if (ix >= 0 && ix < w) acc += ker[ky * g.kernel + kx] * src[iy * w + ix];
          }
        }
        dst[oy * wo + ox] = acc;
      };
      for (index_t oy = 0; oy < ho; ++oy) {
        const bool row_interior = oy >= iy_r.lo && oy < iy_r.hi;
        if (!row_interior) {
          for (index_t ox = 0; ox < wo; ++ox) edge_cell(oy, ox);
          continue;
        }
        for (index_t ox = 0; ox < ix_r.lo; ++ox) edge_cell(oy, ox);
        // Interior fast path: the whole window is in bounds, no checks.
        const float* origin = src + (oy * g.stride - g.pad) * w - g.pad;
        float* drow = dst + oy * wo;
        if (g.kernel == 3) {
          for (index_t ox = ix_r.lo; ox < ix_r.hi; ++ox) {
            drow[ox] = b + dw_dot<3>(origin + ox * g.stride, w, ker);
          }
        } else {
          for (index_t ox = ix_r.lo; ox < ix_r.hi; ++ox) {
            drow[ox] = b + dw_dot_n(origin + ox * g.stride, w, ker, g.kernel);
          }
        }
        for (index_t ox = ix_r.hi; ox < wo; ++ox) edge_cell(oy, ox);
      }
    }
  }, /*grain=*/1);
  return out;
}

Tensor depthwise_conv2d_backward_input(const Tensor& grad_out, const Tensor& weight,
                                       const Conv2dGeom& g, index_t in_h, index_t in_w) {
  const index_t n = grad_out.dim(0), c_ = grad_out.dim(1), ho = grad_out.dim(2),
                wo = grad_out.dim(3);
  const ValidRange iy_r = interior_range(in_h, ho, g.stride, g.pad, g.kernel);
  const ValidRange ix_r = interior_range(in_w, wo, g.stride, g.pad, g.kernel);
  Tensor gx(Shape{n, c_, in_h, in_w});
  parallel_for(0, n * c_, [&](index_t lo, index_t hi) {
    for (index_t sc = lo; sc < hi; ++sc) {
      const index_t c = sc % c_;
      const float* ker = weight.data() + c * g.kernel * g.kernel;
      const float* go = grad_out.data() + sc * ho * wo;
      float* dst = gx.data() + sc * in_h * in_w;
      auto edge_cell = [&](index_t oy, index_t ox) {
        const float gv = go[oy * wo + ox];
        if (gv == 0.0f) return;
        for (index_t ky = 0; ky < g.kernel; ++ky) {
          const index_t iy = oy * g.stride + ky - g.pad;
          if (iy < 0 || iy >= in_h) continue;
          for (index_t kx = 0; kx < g.kernel; ++kx) {
            const index_t ix = ox * g.stride + kx - g.pad;
            if (ix >= 0 && ix < in_w) dst[iy * in_w + ix] += gv * ker[ky * g.kernel + kx];
          }
        }
      };
      for (index_t oy = 0; oy < ho; ++oy) {
        const bool row_interior = oy >= iy_r.lo && oy < iy_r.hi;
        if (!row_interior) {
          for (index_t ox = 0; ox < wo; ++ox) edge_cell(oy, ox);
          continue;
        }
        for (index_t ox = 0; ox < ix_r.lo; ++ox) edge_cell(oy, ox);
        float* origin = dst + (oy * g.stride - g.pad) * in_w - g.pad;
        const float* grow = go + oy * wo;
        for (index_t ox = ix_r.lo; ox < ix_r.hi; ++ox) {
          const float gv = grow[ox];
          if (gv == 0.0f) continue;
          float* win = origin + ox * g.stride;
          for (index_t ky = 0; ky < g.kernel; ++ky) {
            float* row = win + ky * in_w;
            const float* krow = ker + ky * g.kernel;
            for (index_t kx = 0; kx < g.kernel; ++kx) row[kx] += gv * krow[kx];
          }
        }
        for (index_t ox = ix_r.hi; ox < wo; ++ox) edge_cell(oy, ox);
      }
    }
  }, /*grain=*/1);
  return gx;
}

void depthwise_conv2d_backward_params(const Tensor& x, const Tensor& grad_out,
                                      const Conv2dGeom& g, Tensor& grad_weight,
                                      Tensor& grad_bias) {
  const index_t n = x.dim(0), c_ = x.dim(1), h = x.dim(2), w = x.dim(3);
  const index_t ho = grad_out.dim(2), wo = grad_out.dim(3);
  const ValidRange iy_r = interior_range(h, ho, g.stride, g.pad, g.kernel);
  const ValidRange ix_r = interior_range(w, wo, g.stride, g.pad, g.kernel);
  for (index_t s = 0; s < n; ++s) {
    for (index_t c = 0; c < c_; ++c) {
      const float* src = x.data() + (s * c_ + c) * h * w;
      const float* go = grad_out.data() + (s * c_ + c) * ho * wo;
      float* gw = grad_weight.data() + c * g.kernel * g.kernel;
      auto edge_cell = [&](index_t oy, index_t ox) {
        const float gv = go[oy * wo + ox];
        if (gv == 0.0f) return;
        for (index_t ky = 0; ky < g.kernel; ++ky) {
          const index_t iy = oy * g.stride + ky - g.pad;
          if (iy < 0 || iy >= h) continue;
          for (index_t kx = 0; kx < g.kernel; ++kx) {
            const index_t ix = ox * g.stride + kx - g.pad;
            if (ix >= 0 && ix < w) gw[ky * g.kernel + kx] += gv * src[iy * w + ix];
          }
        }
      };
      for (index_t oy = 0; oy < iy_r.lo; ++oy) {
        for (index_t ox = 0; ox < wo; ++ox) edge_cell(oy, ox);
      }
      // Interior: per kernel tap, a unit-stride dot product over the valid
      // output rows — bounds checks hoisted out of the inner loops entirely.
      if (iy_r.hi > iy_r.lo && ix_r.hi > ix_r.lo) {
        for (index_t ky = 0; ky < g.kernel; ++ky) {
          for (index_t kx = 0; kx < g.kernel; ++kx) {
            double acc = 0.0;
            for (index_t oy = iy_r.lo; oy < iy_r.hi; ++oy) {
              const float* grow = go + oy * wo;
              const float* srow = src + (oy * g.stride + ky - g.pad) * w + kx - g.pad;
              if (g.stride == 1) {
                for (index_t ox = ix_r.lo; ox < ix_r.hi; ++ox) {
                  acc += static_cast<double>(grow[ox]) * srow[ox];
                }
              } else {
                for (index_t ox = ix_r.lo; ox < ix_r.hi; ++ox) {
                  acc += static_cast<double>(grow[ox]) * srow[ox * g.stride];
                }
              }
            }
            gw[ky * g.kernel + kx] += static_cast<float>(acc);
          }
        }
        for (index_t oy = iy_r.lo; oy < iy_r.hi; ++oy) {
          for (index_t ox = 0; ox < ix_r.lo; ++ox) edge_cell(oy, ox);
          for (index_t ox = ix_r.hi; ox < wo; ++ox) edge_cell(oy, ox);
        }
      } else {
        for (index_t oy = iy_r.lo; oy < iy_r.hi; ++oy) {
          for (index_t ox = 0; ox < wo; ++ox) edge_cell(oy, ox);
        }
      }
      for (index_t oy = iy_r.hi; oy < ho; ++oy) {
        for (index_t ox = 0; ox < wo; ++ox) edge_cell(oy, ox);
      }
      if (!grad_bias.empty()) {
        double acc = 0.0;
        for (index_t i = 0; i < ho * wo; ++i) acc += go[i];
        grad_bias[c] += static_cast<float>(acc);
      }
    }
  }
}

}  // namespace nodetr::tensor
