#include "nodetr/tensor/conv.hpp"

#include <stdexcept>

#include "nodetr/tensor/gemm.hpp"
#include "nodetr/tensor/parallel.hpp"

namespace nodetr::tensor {

namespace {

void check_input(const Tensor& x, const Conv2dGeom& g, const char* who) {
  if (x.rank() != 4) throw std::invalid_argument(std::string(who) + ": input rank must be 4");
  if (x.dim(1) != g.in_channels) {
    throw std::invalid_argument(std::string(who) + ": channel mismatch");
  }
}

}  // namespace

void im2col(const float* img, index_t channels, index_t h, index_t w, const Conv2dGeom& g,
            float* col) {
  const index_t ho = g.out_extent(h), wo = g.out_extent(w);
  const index_t plane = ho * wo;
  index_t row = 0;
  for (index_t c = 0; c < channels; ++c) {
    const float* src = img + c * h * w;
    for (index_t ky = 0; ky < g.kernel; ++ky) {
      for (index_t kx = 0; kx < g.kernel; ++kx, ++row) {
        float* dst = col + row * plane;
        for (index_t oy = 0; oy < ho; ++oy) {
          const index_t iy = oy * g.stride + ky - g.pad;
          if (iy < 0 || iy >= h) {
            for (index_t ox = 0; ox < wo; ++ox) dst[oy * wo + ox] = 0.0f;
            continue;
          }
          for (index_t ox = 0; ox < wo; ++ox) {
            const index_t ix = ox * g.stride + kx - g.pad;
            dst[oy * wo + ox] = (ix >= 0 && ix < w) ? src[iy * w + ix] : 0.0f;
          }
        }
      }
    }
  }
}

void col2im(const float* col, index_t channels, index_t h, index_t w, const Conv2dGeom& g,
            float* img) {
  const index_t ho = g.out_extent(h), wo = g.out_extent(w);
  const index_t plane = ho * wo;
  index_t row = 0;
  for (index_t c = 0; c < channels; ++c) {
    float* dst = img + c * h * w;
    for (index_t ky = 0; ky < g.kernel; ++ky) {
      for (index_t kx = 0; kx < g.kernel; ++kx, ++row) {
        const float* src = col + row * plane;
        for (index_t oy = 0; oy < ho; ++oy) {
          const index_t iy = oy * g.stride + ky - g.pad;
          if (iy < 0 || iy >= h) continue;
          for (index_t ox = 0; ox < wo; ++ox) {
            const index_t ix = ox * g.stride + kx - g.pad;
            if (ix >= 0 && ix < w) dst[iy * w + ix] += src[oy * wo + ox];
          }
        }
      }
    }
  }
}

Tensor conv2d(const Tensor& x, const Tensor& weight, const Tensor& bias, const Conv2dGeom& g) {
  check_input(x, g, "conv2d");
  const index_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const index_t ho = g.out_extent(h), wo = g.out_extent(w);
  const index_t krows = g.in_channels * g.kernel * g.kernel;
  Tensor out(Shape{n, g.out_channels, ho, wo});
  parallel_for(0, n, [&](index_t lo, index_t hi) {
    std::vector<float> col(static_cast<std::size_t>(krows * ho * wo));
    for (index_t s = lo; s < hi; ++s) {
      im2col(x.data() + s * g.in_channels * h * w, g.in_channels, h, w, g, col.data());
      float* o = out.data() + s * g.out_channels * ho * wo;
      gemm_accumulate(weight.data(), col.data(), o, g.out_channels, krows, ho * wo);
      if (!bias.empty()) {
        for (index_t c = 0; c < g.out_channels; ++c) {
          const float b = bias[c];
          float* plane = o + c * ho * wo;
          for (index_t i = 0; i < ho * wo; ++i) plane[i] += b;
        }
      }
    }
  }, /*grain=*/1);
  return out;
}

Tensor conv2d_backward_input(const Tensor& grad_out, const Tensor& weight, const Conv2dGeom& g,
                             index_t in_h, index_t in_w) {
  const index_t n = grad_out.dim(0), ho = grad_out.dim(2), wo = grad_out.dim(3);
  const index_t krows = g.in_channels * g.kernel * g.kernel;
  Tensor gx(Shape{n, g.in_channels, in_h, in_w});
  parallel_for(0, n, [&](index_t lo, index_t hi) {
    std::vector<float> col(static_cast<std::size_t>(krows * ho * wo));
    for (index_t s = lo; s < hi; ++s) {
      std::fill(col.begin(), col.end(), 0.0f);
      // col = W^T (Cout x krows)^T * grad_out (Cout x Ho*Wo)
      const float* go = grad_out.data() + s * g.out_channels * ho * wo;
      for (index_t c = 0; c < g.out_channels; ++c) {
        const float* wrow = weight.data() + c * krows;
        const float* grow = go + c * ho * wo;
        for (index_t r = 0; r < krows; ++r) {
          const float wv = wrow[r];
          if (wv == 0.0f) continue;
          float* crow = col.data() + r * ho * wo;
          for (index_t i = 0; i < ho * wo; ++i) crow[i] += wv * grow[i];
        }
      }
      col2im(col.data(), g.in_channels, in_h, in_w, g, gx.data() + s * g.in_channels * in_h * in_w);
    }
  }, /*grain=*/1);
  return gx;
}

void conv2d_backward_params(const Tensor& x, const Tensor& grad_out, const Conv2dGeom& g,
                            Tensor& grad_weight, Tensor& grad_bias) {
  const index_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const index_t ho = g.out_extent(h), wo = g.out_extent(w);
  const index_t krows = g.in_channels * g.kernel * g.kernel;
  std::vector<float> col(static_cast<std::size_t>(krows * ho * wo));
  for (index_t s = 0; s < n; ++s) {
    im2col(x.data() + s * g.in_channels * h * w, g.in_channels, h, w, g, col.data());
    const float* go = grad_out.data() + s * g.out_channels * ho * wo;
    // grad_weight (Cout x krows) += grad_out (Cout x P) * col^T (P x krows)
    parallel_for(0, g.out_channels, [&](index_t lo, index_t hi) {
      for (index_t c = lo; c < hi; ++c) {
        const float* grow = go + c * ho * wo;
        float* wrow = grad_weight.data() + c * krows;
        for (index_t r = 0; r < krows; ++r) {
          const float* crow = col.data() + r * ho * wo;
          double acc = 0.0;
          for (index_t i = 0; i < ho * wo; ++i) acc += static_cast<double>(grow[i]) * crow[i];
          wrow[r] += static_cast<float>(acc);
        }
        if (!grad_bias.empty()) {
          double acc = 0.0;
          for (index_t i = 0; i < ho * wo; ++i) acc += grow[i];
          grad_bias[c] += static_cast<float>(acc);
        }
      }
    }, /*grain=*/4);
  }
}

Tensor depthwise_conv2d(const Tensor& x, const Tensor& weight, const Tensor& bias,
                        const Conv2dGeom& g) {
  check_input(x, g, "depthwise_conv2d");
  const index_t n = x.dim(0), c_ = x.dim(1), h = x.dim(2), w = x.dim(3);
  const index_t ho = g.out_extent(h), wo = g.out_extent(w);
  Tensor out(Shape{n, c_, ho, wo});
  parallel_for(0, n * c_, [&](index_t lo, index_t hi) {
    for (index_t sc = lo; sc < hi; ++sc) {
      const index_t c = sc % c_;
      const float* src = x.data() + sc * h * w;
      const float* ker = weight.data() + c * g.kernel * g.kernel;
      const float b = bias.empty() ? 0.0f : bias[c];
      float* dst = out.data() + sc * ho * wo;
      for (index_t oy = 0; oy < ho; ++oy) {
        for (index_t ox = 0; ox < wo; ++ox) {
          float acc = b;
          for (index_t ky = 0; ky < g.kernel; ++ky) {
            const index_t iy = oy * g.stride + ky - g.pad;
            if (iy < 0 || iy >= h) continue;
            for (index_t kx = 0; kx < g.kernel; ++kx) {
              const index_t ix = ox * g.stride + kx - g.pad;
              if (ix >= 0 && ix < w) acc += ker[ky * g.kernel + kx] * src[iy * w + ix];
            }
          }
          dst[oy * wo + ox] = acc;
        }
      }
    }
  }, /*grain=*/1);
  return out;
}

Tensor depthwise_conv2d_backward_input(const Tensor& grad_out, const Tensor& weight,
                                       const Conv2dGeom& g, index_t in_h, index_t in_w) {
  const index_t n = grad_out.dim(0), c_ = grad_out.dim(1), ho = grad_out.dim(2),
                wo = grad_out.dim(3);
  Tensor gx(Shape{n, c_, in_h, in_w});
  parallel_for(0, n * c_, [&](index_t lo, index_t hi) {
    for (index_t sc = lo; sc < hi; ++sc) {
      const index_t c = sc % c_;
      const float* ker = weight.data() + c * g.kernel * g.kernel;
      const float* go = grad_out.data() + sc * ho * wo;
      float* dst = gx.data() + sc * in_h * in_w;
      for (index_t oy = 0; oy < ho; ++oy) {
        for (index_t ox = 0; ox < wo; ++ox) {
          const float gv = go[oy * wo + ox];
          if (gv == 0.0f) continue;
          for (index_t ky = 0; ky < g.kernel; ++ky) {
            const index_t iy = oy * g.stride + ky - g.pad;
            if (iy < 0 || iy >= in_h) continue;
            for (index_t kx = 0; kx < g.kernel; ++kx) {
              const index_t ix = ox * g.stride + kx - g.pad;
              if (ix >= 0 && ix < in_w) dst[iy * in_w + ix] += gv * ker[ky * g.kernel + kx];
            }
          }
        }
      }
    }
  }, /*grain=*/1);
  return gx;
}

void depthwise_conv2d_backward_params(const Tensor& x, const Tensor& grad_out,
                                      const Conv2dGeom& g, Tensor& grad_weight,
                                      Tensor& grad_bias) {
  const index_t n = x.dim(0), c_ = x.dim(1), h = x.dim(2), w = x.dim(3);
  const index_t ho = grad_out.dim(2), wo = grad_out.dim(3);
  for (index_t s = 0; s < n; ++s) {
    for (index_t c = 0; c < c_; ++c) {
      const float* src = x.data() + (s * c_ + c) * h * w;
      const float* go = grad_out.data() + (s * c_ + c) * ho * wo;
      float* gw = grad_weight.data() + c * g.kernel * g.kernel;
      for (index_t oy = 0; oy < ho; ++oy) {
        for (index_t ox = 0; ox < wo; ++ox) {
          const float gv = go[oy * wo + ox];
          if (gv == 0.0f) continue;
          for (index_t ky = 0; ky < g.kernel; ++ky) {
            const index_t iy = oy * g.stride + ky - g.pad;
            if (iy < 0 || iy >= h) continue;
            for (index_t kx = 0; kx < g.kernel; ++kx) {
              const index_t ix = ox * g.stride + kx - g.pad;
              if (ix >= 0 && ix < w) gw[ky * g.kernel + kx] += gv * src[iy * w + ix];
            }
          }
        }
      }
      if (!grad_bias.empty()) {
        double acc = 0.0;
        for (index_t i = 0; i < ho * wo; ++i) acc += go[i];
        grad_bias[c] += static_cast<float>(acc);
      }
    }
  }
}

}  // namespace nodetr::tensor
