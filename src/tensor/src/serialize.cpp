#include "nodetr/tensor/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <stdexcept>

namespace nodetr::tensor {

namespace {
constexpr std::uint32_t kMagic = 0x4e445431;  // "NDT1"
}

void write_tensor(std::ostream& os, const Tensor& t) {
  const std::uint32_t magic = kMagic;
  os.write(reinterpret_cast<const char*>(&magic), sizeof magic);
  const std::uint32_t rank = static_cast<std::uint32_t>(t.rank());
  os.write(reinterpret_cast<const char*>(&rank), sizeof rank);
  for (index_t d = 0; d < t.rank(); ++d) {
    const std::int64_t e = t.dim(d);
    os.write(reinterpret_cast<const char*>(&e), sizeof e);
  }
  os.write(reinterpret_cast<const char*>(t.data()),
           static_cast<std::streamsize>(t.numel() * sizeof(float)));
  if (!os) throw std::runtime_error("write_tensor: stream failure");
}

Tensor read_tensor(std::istream& is) {
  std::uint32_t magic = 0;
  is.read(reinterpret_cast<char*>(&magic), sizeof magic);
  if (!is || magic != kMagic) throw std::runtime_error("read_tensor: bad magic");
  std::uint32_t rank = 0;
  is.read(reinterpret_cast<char*>(&rank), sizeof rank);
  if (!is || rank > 8) throw std::runtime_error("read_tensor: bad rank");
  std::vector<index_t> dims(rank);
  for (auto& d : dims) {
    std::int64_t e = 0;
    is.read(reinterpret_cast<char*>(&e), sizeof e);
    if (!is || e < 0) throw std::runtime_error("read_tensor: bad extent");
    d = e;
  }
  Tensor t{Shape(dims)};
  is.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(t.numel() * sizeof(float)));
  if (!is) throw std::runtime_error("read_tensor: truncated payload");
  return t;
}

void save_tensor(const std::string& path, const Tensor& t) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("save_tensor: cannot open " + path);
  write_tensor(os, t);
}

Tensor load_tensor(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("load_tensor: cannot open " + path);
  return read_tensor(is);
}

}  // namespace nodetr::tensor
