#include "nodetr/tensor/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <limits>
#include <stdexcept>

namespace nodetr::tensor {

namespace {
constexpr std::uint32_t kMagic = 0x4e445431;  // "NDT1"

/// Bytes left between the stream's current position and its end, or -1 when
/// the stream is unseekable (pipes). Restores the read position.
std::int64_t stream_remaining(std::istream& is) {
  const std::istream::pos_type pos = is.tellg();
  if (pos == std::istream::pos_type(-1)) return -1;
  is.seekg(0, std::ios::end);
  const std::istream::pos_type end = is.tellg();
  is.seekg(pos);
  if (end == std::istream::pos_type(-1) || !is) {
    is.clear();
    is.seekg(pos);
    return -1;
  }
  return static_cast<std::int64_t>(end - pos);
}
}  // namespace

void write_tensor(std::ostream& os, const Tensor& t) {
  const std::uint32_t magic = kMagic;
  os.write(reinterpret_cast<const char*>(&magic), sizeof magic);
  const std::uint32_t rank = static_cast<std::uint32_t>(t.rank());
  os.write(reinterpret_cast<const char*>(&rank), sizeof rank);
  for (index_t d = 0; d < t.rank(); ++d) {
    const std::int64_t e = t.dim(d);
    os.write(reinterpret_cast<const char*>(&e), sizeof e);
  }
  os.write(reinterpret_cast<const char*>(t.data()),
           static_cast<std::streamsize>(t.numel() * sizeof(float)));
  if (!os) throw std::runtime_error("write_tensor: stream failure");
}

Tensor read_tensor(std::istream& is) {
  std::uint32_t magic = 0;
  is.read(reinterpret_cast<char*>(&magic), sizeof magic);
  if (!is || magic != kMagic) throw std::runtime_error("read_tensor: bad magic");
  std::uint32_t rank = 0;
  is.read(reinterpret_cast<char*>(&rank), sizeof rank);
  if (!is || rank > 8) throw std::runtime_error("read_tensor: bad rank");
  // Validate the header before allocating anything: extents must be
  // non-negative, their product must not overflow, and the payload they
  // imply must fit in what is actually left of the stream — a corrupt
  // header must produce a typed error, never a wild multi-GB allocation.
  constexpr std::int64_t kMaxBytes = std::numeric_limits<std::int64_t>::max();
  std::vector<index_t> dims(rank);
  std::int64_t numel = 1;
  for (auto& d : dims) {
    std::int64_t e = 0;
    is.read(reinterpret_cast<char*>(&e), sizeof e);
    if (!is || e < 0) throw std::runtime_error("read_tensor: bad extent");
    if (e > 0 && numel > kMaxBytes / e) {
      throw std::runtime_error("read_tensor: extent overflow");
    }
    numel *= e;
    d = e;
  }
  if (numel > kMaxBytes / static_cast<std::int64_t>(sizeof(float))) {
    throw std::runtime_error("read_tensor: extent overflow");
  }
  const std::int64_t payload_bytes = numel * static_cast<std::int64_t>(sizeof(float));
  const std::int64_t remaining = stream_remaining(is);
  if (remaining >= 0 && payload_bytes > remaining) {
    throw std::runtime_error("read_tensor: truncated payload (header promises " +
                             std::to_string(payload_bytes) + " bytes, " +
                             std::to_string(remaining) + " remain)");
  }
  Tensor t{Shape(dims)};
  is.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(payload_bytes));
  if (!is) throw std::runtime_error("read_tensor: truncated payload");
  return t;
}

void save_tensor(const std::string& path, const Tensor& t) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("save_tensor: cannot open " + path);
  write_tensor(os, t);
}

Tensor load_tensor(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("load_tensor: cannot open " + path);
  return read_tensor(is);
}

}  // namespace nodetr::tensor
