#include "nodetr/tensor/ops.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace nodetr::tensor {

Tensor map(const Tensor& a, const std::function<float(float)>& fn) {
  Tensor out(a.shape());
  for (index_t i = 0; i < a.numel(); ++i) out[i] = fn(a[i]);
  return out;
}

Tensor zip(const Tensor& a, const Tensor& b, const std::function<float(float, float)>& fn) {
  if (!a.same_shape(b)) throw std::invalid_argument("zip: shape mismatch");
  Tensor out(a.shape());
  for (index_t i = 0; i < a.numel(); ++i) out[i] = fn(a[i], b[i]);
  return out;
}

Tensor relu(const Tensor& a) {
  Tensor out(a.shape());
  for (index_t i = 0; i < a.numel(); ++i) out[i] = a[i] > 0.0f ? a[i] : 0.0f;
  return out;
}

Tensor exp(const Tensor& a) {
  Tensor out(a.shape());
  for (index_t i = 0; i < a.numel(); ++i) out[i] = std::exp(a[i]);
  return out;
}

Tensor sqrt(const Tensor& a) {
  Tensor out(a.shape());
  for (index_t i = 0; i < a.numel(); ++i) out[i] = std::sqrt(a[i]);
  return out;
}

Tensor abs(const Tensor& a) {
  Tensor out(a.shape());
  for (index_t i = 0; i < a.numel(); ++i) out[i] = std::fabs(a[i]);
  return out;
}

float sum(const Tensor& a) {
  double acc = 0.0;  // double accumulator: keeps reductions stable for big tensors
  for (index_t i = 0; i < a.numel(); ++i) acc += a[i];
  return static_cast<float>(acc);
}

float mean(const Tensor& a) {
  if (a.numel() == 0) return 0.0f;
  return sum(a) / static_cast<float>(a.numel());
}

float max(const Tensor& a) {
  if (a.numel() == 0) throw std::invalid_argument("max: empty tensor");
  float m = a[0];
  for (index_t i = 1; i < a.numel(); ++i) m = std::max(m, a[i]);
  return m;
}

float min(const Tensor& a) {
  if (a.numel() == 0) throw std::invalid_argument("min: empty tensor");
  float m = a[0];
  for (index_t i = 1; i < a.numel(); ++i) m = std::min(m, a[i]);
  return m;
}

index_t argmax(const Tensor& a) {
  if (a.numel() == 0) throw std::invalid_argument("argmax: empty tensor");
  index_t best = 0;
  for (index_t i = 1; i < a.numel(); ++i) {
    if (a[i] > a[best]) best = i;
  }
  return best;
}

float variance(const Tensor& a) {
  if (a.numel() == 0) return 0.0f;
  const float mu = mean(a);
  double acc = 0.0;
  for (index_t i = 0; i < a.numel(); ++i) {
    const double d = a[i] - mu;
    acc += d * d;
  }
  return static_cast<float>(acc / static_cast<double>(a.numel()));
}

float l2_norm(const Tensor& a) {
  double acc = 0.0;
  for (index_t i = 0; i < a.numel(); ++i) acc += static_cast<double>(a[i]) * a[i];
  return static_cast<float>(std::sqrt(acc));
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  if (!a.same_shape(b)) throw std::invalid_argument("max_abs_diff: shape mismatch");
  float m = 0.0f;
  for (index_t i = 0; i < a.numel(); ++i) m = std::max(m, std::fabs(a[i] - b[i]));
  return m;
}

float mean_abs_diff(const Tensor& a, const Tensor& b) {
  if (!a.same_shape(b)) throw std::invalid_argument("mean_abs_diff: shape mismatch");
  if (a.numel() == 0) return 0.0f;
  double acc = 0.0;
  for (index_t i = 0; i < a.numel(); ++i) acc += std::fabs(a[i] - b[i]);
  return static_cast<float>(acc / static_cast<double>(a.numel()));
}

Tensor softmax_rows(const Tensor& logits) {
  if (logits.rank() != 2) throw std::invalid_argument("softmax_rows: rank must be 2");
  const index_t rows = logits.dim(0), cols = logits.dim(1);
  Tensor out(logits.shape());
  for (index_t r = 0; r < rows; ++r) {
    const float* in = logits.data() + r * cols;
    float* o = out.data() + r * cols;
    float m = -std::numeric_limits<float>::infinity();
    for (index_t c = 0; c < cols; ++c) m = std::max(m, in[c]);
    double denom = 0.0;
    for (index_t c = 0; c < cols; ++c) {
      o[c] = std::exp(in[c] - m);
      denom += o[c];
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (index_t c = 0; c < cols; ++c) o[c] *= inv;
  }
  return out;
}

Tensor log_softmax_rows(const Tensor& logits) {
  if (logits.rank() != 2) throw std::invalid_argument("log_softmax_rows: rank must be 2");
  const index_t rows = logits.dim(0), cols = logits.dim(1);
  Tensor out(logits.shape());
  for (index_t r = 0; r < rows; ++r) {
    const float* in = logits.data() + r * cols;
    float* o = out.data() + r * cols;
    float m = -std::numeric_limits<float>::infinity();
    for (index_t c = 0; c < cols; ++c) m = std::max(m, in[c]);
    double denom = 0.0;
    for (index_t c = 0; c < cols; ++c) denom += std::exp(in[c] - m);
    const float log_denom = m + static_cast<float>(std::log(denom));
    for (index_t c = 0; c < cols; ++c) o[c] = in[c] - log_denom;
  }
  return out;
}

Tensor concat0(const std::vector<Tensor>& parts) {
  if (parts.empty()) throw std::invalid_argument("concat0: empty input");
  std::vector<index_t> dims = parts[0].shape().dims();
  index_t total0 = 0;
  for (const auto& p : parts) {
    auto d = p.shape().dims();
    if (d.size() != dims.size()) throw std::invalid_argument("concat0: rank mismatch");
    for (std::size_t i = 1; i < d.size(); ++i) {
      if (d[i] != dims[i]) throw std::invalid_argument("concat0: trailing extent mismatch");
    }
    total0 += d[0];
  }
  dims[0] = total0;
  Tensor out{Shape(dims)};
  float* dst = out.data();
  for (const auto& p : parts) {
    std::copy(p.data(), p.data() + p.numel(), dst);
    dst += p.numel();
  }
  return out;
}

bool allclose(const Tensor& a, const Tensor& b, float rtol, float atol) {
  if (!a.same_shape(b)) return false;
  for (index_t i = 0; i < a.numel(); ++i) {
    if (std::fabs(a[i] - b[i]) > atol + rtol * std::fabs(b[i])) return false;
  }
  return true;
}

}  // namespace nodetr::tensor
