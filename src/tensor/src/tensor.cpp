#include "nodetr/tensor/tensor.hpp"

#include <stdexcept>

namespace nodetr::tensor {

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  if (static_cast<index_t>(data_.size()) != shape_.numel()) {
    throw std::invalid_argument("Tensor: data size " + std::to_string(data_.size()) +
                                " does not match shape " + shape_.to_string());
  }
}

Tensor Tensor::arange(index_t n) {
  Tensor t(Shape{n});
  for (index_t i = 0; i < n; ++i) t[i] = static_cast<float>(i);
  return t;
}

index_t Tensor::offset(std::initializer_list<index_t> idx) const {
  if (static_cast<index_t>(idx.size()) != shape_.rank()) {
    throw std::invalid_argument("Tensor::offset: index rank mismatch");
  }
  const auto strides = shape_.strides();
  index_t off = 0;
  index_t d = 0;
  for (index_t i : idx) {
    assert(i >= 0 && i < shape_.dim(d));
    off += i * strides[static_cast<std::size_t>(d)];
    ++d;
  }
  return off;
}

Tensor Tensor::reshape(Shape new_shape) const {
  if (new_shape.numel() != numel()) {
    throw std::invalid_argument("Tensor::reshape: numel mismatch " + shape_.to_string() +
                                " -> " + new_shape.to_string());
  }
  return Tensor(std::move(new_shape), data_);
}

void Tensor::reshape_inplace(Shape new_shape) {
  if (new_shape.numel() != numel()) {
    throw std::invalid_argument("Tensor::reshape_inplace: numel mismatch");
  }
  shape_ = std::move(new_shape);
}

Tensor Tensor::transposed() const {
  if (rank() != 2) throw std::invalid_argument("Tensor::transposed: rank must be 2");
  const index_t r = dim(0), c = dim(1);
  Tensor out(Shape{c, r});
  for (index_t i = 0; i < r; ++i) {
    for (index_t j = 0; j < c; ++j) out[j * r + i] = (*this)[i * c + j];
  }
  return out;
}

Tensor Tensor::permute(const std::vector<index_t>& axes) const {
  const index_t r = rank();
  if (static_cast<index_t>(axes.size()) != r) {
    throw std::invalid_argument("Tensor::permute: axes rank mismatch");
  }
  std::vector<index_t> new_dims(static_cast<std::size_t>(r));
  std::vector<bool> seen(static_cast<std::size_t>(r), false);
  for (index_t d = 0; d < r; ++d) {
    const index_t a = axes[static_cast<std::size_t>(d)];
    if (a < 0 || a >= r || seen[static_cast<std::size_t>(a)]) {
      throw std::invalid_argument("Tensor::permute: invalid axis permutation");
    }
    seen[static_cast<std::size_t>(a)] = true;
    new_dims[static_cast<std::size_t>(d)] = dim(a);
  }
  Tensor out{Shape(new_dims)};
  const auto in_strides = shape_.strides();
  const auto out_strides = out.shape().strides();
  const index_t n = numel();
  // Walk output positions; map each back to the source offset.
  std::vector<index_t> idx(static_cast<std::size_t>(r), 0);
  for (index_t flat = 0; flat < n; ++flat) {
    index_t rem = flat;
    index_t src = 0;
    for (index_t d = 0; d < r; ++d) {
      const index_t q = rem / out_strides[static_cast<std::size_t>(d)];
      rem -= q * out_strides[static_cast<std::size_t>(d)];
      src += q * in_strides[static_cast<std::size_t>(axes[static_cast<std::size_t>(d)])];
    }
    out[flat] = (*this)[src];
  }
  return out;
}

Tensor Tensor::slice0(index_t begin, index_t end) const {
  if (rank() < 1 || begin < 0 || end < begin || end > dim(0)) {
    throw std::out_of_range("Tensor::slice0: bad range");
  }
  std::vector<index_t> dims = shape_.dims();
  dims[0] = end - begin;
  const index_t row = numel() / std::max<index_t>(dim(0), 1);
  Tensor out{Shape(dims)};
  std::copy(data() + begin * row, data() + end * row, out.data());
  return out;
}

namespace {
void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  if (!a.same_shape(b)) {
    throw std::invalid_argument(std::string("Tensor ") + op + ": shape mismatch " +
                                a.shape().to_string() + " vs " + b.shape().to_string());
  }
}
}  // namespace

Tensor& Tensor::operator+=(const Tensor& o) {
  check_same_shape(*this, o, "+=");
  for (index_t i = 0; i < numel(); ++i) data_[static_cast<std::size_t>(i)] += o[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& o) {
  check_same_shape(*this, o, "-=");
  for (index_t i = 0; i < numel(); ++i) data_[static_cast<std::size_t>(i)] -= o[i];
  return *this;
}

Tensor& Tensor::operator*=(const Tensor& o) {
  check_same_shape(*this, o, "*=");
  for (index_t i = 0; i < numel(); ++i) data_[static_cast<std::size_t>(i)] *= o[i];
  return *this;
}

Tensor& Tensor::operator+=(float s) {
  for (auto& v : data_) v += s;
  return *this;
}

Tensor& Tensor::operator*=(float s) {
  for (auto& v : data_) v *= s;
  return *this;
}

void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

void Tensor::add_scaled(const Tensor& o, float alpha) {
  check_same_shape(*this, o, "add_scaled");
  for (index_t i = 0; i < numel(); ++i) data_[static_cast<std::size_t>(i)] += alpha * o[i];
}

Tensor operator+(Tensor a, const Tensor& b) { a += b; return a; }
Tensor operator-(Tensor a, const Tensor& b) { a -= b; return a; }
Tensor operator*(Tensor a, const Tensor& b) { a *= b; return a; }
Tensor operator*(Tensor a, float s) { a *= s; return a; }
Tensor operator*(float s, Tensor a) { a *= s; return a; }

}  // namespace nodetr::tensor
