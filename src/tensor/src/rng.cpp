#include "nodetr/tensor/rng.hpp"

#include <cmath>

namespace nodetr::tensor {

float Rng::uniform(float lo, float hi) {
  std::uniform_real_distribution<float> d(lo, hi);
  return d(engine_);
}

float Rng::normal(float mean, float stddev) {
  std::normal_distribution<float> d(mean, stddev);
  return d(engine_);
}

index_t Rng::randint(index_t lo, index_t hi) {
  std::uniform_int_distribution<index_t> d(lo, hi);
  return d(engine_);
}

bool Rng::bernoulli(float p) {
  std::bernoulli_distribution d(p);
  return d(engine_);
}

Tensor Rng::randn(Shape shape, float mean, float stddev) {
  Tensor t(std::move(shape));
  std::normal_distribution<float> d(mean, stddev);
  for (index_t i = 0; i < t.numel(); ++i) t[i] = d(engine_);
  return t;
}

Tensor Rng::rand(Shape shape, float lo, float hi) {
  Tensor t(std::move(shape));
  std::uniform_real_distribution<float> d(lo, hi);
  for (index_t i = 0; i < t.numel(); ++i) t[i] = d(engine_);
  return t;
}

Tensor Rng::kaiming_normal(Shape shape, index_t fan_in) {
  const float stddev = std::sqrt(2.0f / static_cast<float>(std::max<index_t>(fan_in, 1)));
  return randn(std::move(shape), 0.0f, stddev);
}

Tensor Rng::xavier_uniform(Shape shape, index_t fan_in, index_t fan_out) {
  const float limit = std::sqrt(6.0f / static_cast<float>(std::max<index_t>(fan_in + fan_out, 1)));
  return rand(std::move(shape), -limit, limit);
}

}  // namespace nodetr::tensor
