#include "nodetr/fx/qconv.hpp"

#include <limits>
#include <stdexcept>

#include "nodetr/tensor/parallel.hpp"

namespace nodetr::fx {

using nodetr::tensor::index_t;

namespace {

using wide_t = __int128;

std::int64_t narrow(wide_t acc, int from_frac, const FixedFormat& to) {
  const int shift = from_frac - to.frac_bits();
  wide_t r = acc;
  if (shift > 0) {
    const wide_t half = wide_t{1} << (shift - 1);
    r = (r + (r >= 0 ? half : half - 1)) >> shift;
  } else if (shift < 0) {
    r <<= -shift;
  }
  if (r > to.raw_max()) return to.raw_max();
  if (r < to.raw_min()) return to.raw_min();
  return static_cast<std::int64_t>(r);
}

void check_nchw(const FixedTensor& x, const char* who) {
  if (x.shape().rank() != 4) throw std::invalid_argument(std::string(who) + ": rank must be 4");
}

}  // namespace

FixedTensor qconv2d(const FixedTensor& x, const FixedTensor& weight, const FixedTensor& bias,
                    const Conv2dGeom& g, FixedFormat out_format) {
  check_nchw(x, "qconv2d");
  const index_t n = x.shape().dim(0), h = x.shape().dim(2), w = x.shape().dim(3);
  const index_t ho = g.out_extent(h), wo = g.out_extent(w);
  const int prod_frac = x.format().frac_bits() + weight.format().frac_bits();
  FixedTensor out(nodetr::tensor::Shape{n, g.out_channels, ho, wo}, out_format);
  nodetr::tensor::parallel_for(0, n * g.out_channels, [&](index_t lo, index_t hi) {
    for (index_t soc = lo; soc < hi; ++soc) {
      const index_t s = soc / g.out_channels, oc = soc % g.out_channels;
      // Bias enters the accumulator at the product scale (pre-rounding).
      wide_t bias_acc = 0;
      if (!bias.empty()) {
        bias_acc = static_cast<wide_t>(convert_raw(bias[oc], bias.format(),
                                                   FixedFormat{62, 62 - prod_frac}));
      }
      for (index_t oy = 0; oy < ho; ++oy) {
        for (index_t ox = 0; ox < wo; ++ox) {
          wide_t acc = bias_acc;
          for (index_t ic = 0; ic < g.in_channels; ++ic) {
            const std::int64_t* src = x.raw() + (s * g.in_channels + ic) * h * w;
            const std::int64_t* ker =
                weight.raw() + ((oc * g.in_channels + ic) * g.kernel) * g.kernel;
            for (index_t ky = 0; ky < g.kernel; ++ky) {
              const index_t iy = oy * g.stride + ky - g.pad;
              if (iy < 0 || iy >= h) continue;
              for (index_t kx = 0; kx < g.kernel; ++kx) {
                const index_t ix = ox * g.stride + kx - g.pad;
                if (ix >= 0 && ix < w) {
                  acc += static_cast<wide_t>(src[iy * w + ix]) * ker[ky * g.kernel + kx];
                }
              }
            }
          }
          out[((s * g.out_channels + oc) * ho + oy) * wo + ox] =
              narrow(acc, prod_frac, out_format);
        }
      }
    }
  }, /*grain=*/1);
  return out;
}

FixedTensor qdepthwise_conv2d(const FixedTensor& x, const FixedTensor& weight,
                              const Conv2dGeom& g, FixedFormat out_format) {
  check_nchw(x, "qdepthwise_conv2d");
  const index_t n = x.shape().dim(0), c_ = x.shape().dim(1), h = x.shape().dim(2),
                w = x.shape().dim(3);
  const index_t ho = g.out_extent(h), wo = g.out_extent(w);
  const int prod_frac = x.format().frac_bits() + weight.format().frac_bits();
  FixedTensor out(nodetr::tensor::Shape{n, c_, ho, wo}, out_format);
  nodetr::tensor::parallel_for(0, n * c_, [&](index_t lo, index_t hi) {
    for (index_t sc = lo; sc < hi; ++sc) {
      const index_t c = sc % c_;
      const std::int64_t* src = x.raw() + sc * h * w;
      const std::int64_t* ker = weight.raw() + c * g.kernel * g.kernel;
      for (index_t oy = 0; oy < ho; ++oy) {
        for (index_t ox = 0; ox < wo; ++ox) {
          wide_t acc = 0;
          for (index_t ky = 0; ky < g.kernel; ++ky) {
            const index_t iy = oy * g.stride + ky - g.pad;
            if (iy < 0 || iy >= h) continue;
            for (index_t kx = 0; kx < g.kernel; ++kx) {
              const index_t ix = ox * g.stride + kx - g.pad;
              if (ix >= 0 && ix < w) {
                acc += static_cast<wide_t>(src[iy * w + ix]) * ker[ky * g.kernel + kx];
              }
            }
          }
          out[(sc * ho + oy) * wo + ox] = narrow(acc, prod_frac, out_format);
        }
      }
    }
  }, /*grain=*/1);
  return out;
}

FixedTensor qscale_shift_channels(const FixedTensor& x, const FixedTensor& scale,
                                  const FixedTensor& shift) {
  check_nchw(x, "qscale_shift_channels");
  const index_t n = x.shape().dim(0), c_ = x.shape().dim(1),
                plane = x.shape().dim(2) * x.shape().dim(3);
  if (scale.numel() != c_ || shift.numel() != c_) {
    throw std::invalid_argument("qscale_shift_channels: per-channel size mismatch");
  }
  const auto& ff = x.format();
  const int prod_frac = ff.frac_bits() + scale.format().frac_bits();
  FixedTensor out(x.shape(), ff);
  for (index_t sc = 0; sc < n * c_; ++sc) {
    const index_t c = sc % c_;
    const std::int64_t sh = convert_raw(shift[c], shift.format(), ff);
    for (index_t i = 0; i < plane; ++i) {
      const wide_t p = static_cast<wide_t>(x[sc * plane + i]) * scale[c];
      out[sc * plane + i] = saturate(narrow(p, prod_frac, ff) + sh, ff);
    }
  }
  return out;
}

FixedTensor qglobal_avg_pool(const FixedTensor& x) {
  check_nchw(x, "qglobal_avg_pool");
  const index_t n = x.shape().dim(0), c_ = x.shape().dim(1),
                plane = x.shape().dim(2) * x.shape().dim(3);
  const auto& ff = x.format();
  FixedTensor out(nodetr::tensor::Shape{n, c_}, ff);
  for (index_t sc = 0; sc < n * c_; ++sc) {
    wide_t acc = 0;
    for (index_t i = 0; i < plane; ++i) acc += x[sc * plane + i];
    // Division by the plane size with round-to-nearest.
    const wide_t half = plane / 2;
    const wide_t q = (acc + (acc >= 0 ? half : -half)) / plane;
    out[sc] = saturate(static_cast<std::int64_t>(q), ff);
  }
  return out;
}

FixedTensor qmax_pool(const FixedTensor& x, index_t kernel, index_t stride, index_t pad) {
  check_nchw(x, "qmax_pool");
  const index_t n = x.shape().dim(0), c_ = x.shape().dim(1), h = x.shape().dim(2),
                w = x.shape().dim(3);
  const index_t ho = (h + 2 * pad - kernel) / stride + 1;
  const index_t wo = (w + 2 * pad - kernel) / stride + 1;
  FixedTensor out(nodetr::tensor::Shape{n, c_, ho, wo}, x.format());
  for (index_t sc = 0; sc < n * c_; ++sc) {
    const std::int64_t* src = x.raw() + sc * h * w;
    for (index_t oy = 0; oy < ho; ++oy) {
      for (index_t ox = 0; ox < wo; ++ox) {
        std::int64_t best = std::numeric_limits<std::int64_t>::min();
        for (index_t ky = 0; ky < kernel; ++ky) {
          const index_t iy = oy * stride + ky - pad;
          if (iy < 0 || iy >= h) continue;
          for (index_t kx = 0; kx < kernel; ++kx) {
            const index_t ix = ox * stride + kx - pad;
            if (ix >= 0 && ix < w) best = std::max(best, src[iy * w + ix]);
          }
        }
        out[(sc * ho + oy) * wo + ox] =
            best == std::numeric_limits<std::int64_t>::min() ? 0 : best;
      }
    }
  }
  return out;
}

}  // namespace nodetr::fx
