#include "nodetr/fx/block_quant.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace nodetr::fx {

namespace {

constexpr std::uint32_t kBlockMagic = 0x3151424e;  // "NBQ1"
constexpr int kInt8Max = 127;
constexpr int kInt4Max = 7;
constexpr int kInt4Bias = 8;  ///< packed nibble = code + 8, range [1, 15]

/// Round half away from zero and clamp to +/- qmax (symmetric, negation-safe).
int quantize_code(float v, float inv_scale, int qmax) {
  const float scaled = v * inv_scale;
  const float rounded = scaled >= 0.0f ? std::floor(scaled + 0.5f) : std::ceil(scaled - 0.5f);
  return static_cast<int>(std::fmin(std::fmax(rounded, static_cast<float>(-qmax)),
                                    static_cast<float>(qmax)));
}

std::int64_t data_bytes_for(index_t numel, BlockType type, index_t block_size) {
  if (numel == 0) return 0;
  const std::int64_t blocks = (numel + block_size - 1) / block_size;
  // Full blocks are always allocated; a partial tail is zero-padded so the
  // wire format is a function of (numel, type, block_size) alone.
  return type == BlockType::kInt8 ? blocks * block_size : blocks * ((block_size + 1) / 2);
}

/// FNV-1a over the scale and code payload — cheap, deterministic, and enough
/// to catch the single-bit/byte corruptions the checkpoint corpus injects.
std::uint32_t payload_checksum(const std::vector<float>& scales,
                               const std::vector<std::uint8_t>& data) {
  std::uint32_t h = 0x811c9dc5u;
  auto mix = [&h](const std::uint8_t* p, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 0x01000193u;
    }
  };
  mix(reinterpret_cast<const std::uint8_t*>(scales.data()), scales.size() * sizeof(float));
  mix(data.data(), data.size());
  return h;
}

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
void read_pod(std::istream& is, T& v, const char* what) {
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!is) throw std::runtime_error(std::string("BlockQuantTensor::read: truncated ") + what);
}

}  // namespace

const char* to_string(BlockType type) {
  switch (type) {
    case BlockType::kInt8: return "int8";
    case BlockType::kInt4: return "int4";
  }
  return "?";
}

const char* to_string(LayerPrecision p) {
  switch (p) {
    case LayerPrecision::kFloat32: return "float32";
    case LayerPrecision::kInt8: return "int8";
    case LayerPrecision::kInt4: return "int4";
  }
  return "?";
}

BlockQuantTensor BlockQuantTensor::quantize(const Tensor& t, BlockType type,
                                            index_t block_size) {
  if (block_size < 1) {
    throw std::invalid_argument("BlockQuantTensor::quantize: block_size must be >= 1");
  }
  BlockQuantTensor q;
  q.shape_ = t.shape();
  q.type_ = type;
  q.block_size_ = block_size;
  q.numel_ = t.numel();
  if (q.numel_ == 0) return q;
  const index_t blocks = (q.numel_ + block_size - 1) / block_size;
  const int qmax = type == BlockType::kInt8 ? kInt8Max : kInt4Max;
  q.scales_.resize(static_cast<std::size_t>(blocks));
  q.data_.assign(static_cast<std::size_t>(data_bytes_for(q.numel_, type, block_size)), 0);
  const float* src = t.data();
  const index_t packed_block = (block_size + 1) / 2;
  for (index_t b = 0; b < blocks; ++b) {
    const index_t begin = b * block_size;
    const index_t end = std::min(begin + block_size, q.numel_);
    float absmax = 0.0f;
    for (index_t i = begin; i < end; ++i) absmax = std::fmax(absmax, std::fabs(src[i]));
    const float scale = absmax / static_cast<float>(qmax);
    q.scales_[static_cast<std::size_t>(b)] = scale;
    if (scale == 0.0f) continue;  // all-zero block: codes stay 0
    const float inv = 1.0f / scale;
    if (type == BlockType::kInt8) {
      std::uint8_t* dst = q.data_.data() + b * block_size;
      for (index_t i = begin; i < end; ++i) {
        dst[i - begin] = static_cast<std::uint8_t>(
            static_cast<std::int8_t>(quantize_code(src[i], inv, qmax)));
      }
    } else {
      // Biased nibbles: even index -> low nibble, odd index -> high nibble.
      std::uint8_t* dst = q.data_.data() + b * packed_block;
      for (index_t i = begin; i < end; ++i) {
        const auto code = static_cast<std::uint8_t>(quantize_code(src[i], inv, qmax) + kInt4Bias);
        const index_t off = i - begin;
        dst[off / 2] |= static_cast<std::uint8_t>(off % 2 == 0 ? code : code << 4);
      }
    }
  }
  return q;
}

Tensor BlockQuantTensor::dequantize() const {
  Tensor t(shape_);
  float* dst = t.data();
  for (index_t i = 0; i < numel_; ++i) dst[i] = at(i);
  return t;
}

float BlockQuantTensor::at(index_t i) const {
  const index_t b = i / block_size_;
  const float scale = scales_[static_cast<std::size_t>(b)];
  if (type_ == BlockType::kInt8) {
    return scale * static_cast<float>(static_cast<std::int8_t>(data_[b * block_size_ + i % block_size_]));
  }
  const index_t off = i % block_size_;
  const std::uint8_t byte = data_[b * ((block_size_ + 1) / 2) + off / 2];
  const int code = static_cast<int>(off % 2 == 0 ? byte & 0x0f : byte >> 4) - kInt4Bias;
  return scale * static_cast<float>(code);
}

double BlockQuantTensor::compression_ratio() const {
  const std::int64_t p = payload_bytes();
  return p == 0 ? 1.0 : static_cast<double>(float_bytes()) / static_cast<double>(p);
}

std::int64_t BlockQuantTensor::payload_bytes_for(index_t numel, BlockType type,
                                                 index_t block_size) {
  if (numel == 0) return 0;
  const std::int64_t blocks = (numel + block_size - 1) / block_size;
  return blocks * 4 + data_bytes_for(numel, type, block_size);
}

void BlockQuantTensor::write(std::ostream& os) const {
  write_pod(os, kBlockMagic);
  write_pod(os, static_cast<std::uint8_t>(type_));
  write_pod(os, std::uint8_t{0});  // reserved
  write_pod(os, static_cast<std::uint16_t>(block_size_));
  const auto rank = static_cast<std::uint32_t>(shape_.rank());
  write_pod(os, rank);
  for (index_t d = 0; d < shape_.rank(); ++d) write_pod(os, std::int64_t{shape_.dim(d)});
  os.write(reinterpret_cast<const char*>(scales_.data()),
           static_cast<std::streamsize>(scales_.size() * sizeof(float)));
  os.write(reinterpret_cast<const char*>(data_.data()),
           static_cast<std::streamsize>(data_.size()));
  write_pod(os, payload_checksum(scales_, data_));
  if (!os) throw std::runtime_error("BlockQuantTensor::write: stream failure");
}

BlockQuantTensor BlockQuantTensor::read(std::istream& is) {
  std::uint32_t magic = 0;
  is.read(reinterpret_cast<char*>(&magic), sizeof magic);
  if (!is || magic != kBlockMagic) throw std::runtime_error("BlockQuantTensor::read: bad magic");
  std::uint8_t type = 0, reserved = 0;
  std::uint16_t block_size = 0;
  std::uint32_t rank = 0;
  read_pod(is, type, "header");
  read_pod(is, reserved, "header");
  read_pod(is, block_size, "header");
  read_pod(is, rank, "header");
  if (type > static_cast<std::uint8_t>(BlockType::kInt4)) {
    throw std::runtime_error("BlockQuantTensor::read: unknown block type " + std::to_string(type));
  }
  if (block_size < 1) throw std::runtime_error("BlockQuantTensor::read: bad block size");
  if (rank > 8) throw std::runtime_error("BlockQuantTensor::read: bad rank");
  // Validate geometry before allocating: a corrupt header must raise a typed
  // error, never a wild allocation (same contract as tensor::read_tensor).
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  std::vector<index_t> dims(rank);
  std::int64_t numel = 1;
  for (auto& d : dims) {
    std::int64_t e = 0;
    read_pod(is, e, "extent");
    if (e < 0) throw std::runtime_error("BlockQuantTensor::read: bad extent");
    if (e > 0 && numel > kMax / e) throw std::runtime_error("BlockQuantTensor::read: extent overflow");
    numel *= e;
    d = e;
  }
  BlockQuantTensor q;
  q.shape_ = Shape(dims);
  q.type_ = static_cast<BlockType>(type);
  q.block_size_ = block_size;
  q.numel_ = static_cast<index_t>(numel);
  const index_t blocks = numel == 0 ? 0 : (q.numel_ + q.block_size_ - 1) / q.block_size_;
  q.scales_.resize(static_cast<std::size_t>(blocks));
  q.data_.resize(static_cast<std::size_t>(data_bytes_for(q.numel_, q.type_, q.block_size_)));
  is.read(reinterpret_cast<char*>(q.scales_.data()),
          static_cast<std::streamsize>(q.scales_.size() * sizeof(float)));
  is.read(reinterpret_cast<char*>(q.data_.data()), static_cast<std::streamsize>(q.data_.size()));
  if (!is) throw std::runtime_error("BlockQuantTensor::read: truncated payload");
  std::uint32_t checksum = 0;
  read_pod(is, checksum, "checksum");
  if (checksum != payload_checksum(q.scales_, q.data_)) {
    throw std::runtime_error("BlockQuantTensor::read: payload checksum mismatch (corrupt block)");
  }
  for (float s : q.scales_) {
    if (!std::isfinite(s)) {
      throw std::runtime_error("BlockQuantTensor::read: non-finite block scale");
    }
  }
  return q;
}

BlockQuantTensor block_quantize(const Tensor& t, BlockType type, index_t block_size) {
  return BlockQuantTensor::quantize(t, type, block_size);
}

Tensor block_dequantize(const BlockQuantTensor& q) { return q.dequantize(); }

Tensor block_roundtrip(const Tensor& t, BlockType type, index_t block_size) {
  return BlockQuantTensor::quantize(t, type, block_size).dequantize();
}

LayerPrecision MixedPrecisionPolicy::precision_for(const std::string& name) const {
  for (const auto& [needle, precision] : rules) {
    if (name.find(needle) != std::string::npos) return precision;
  }
  return fallback;
}

MixedPrecisionPolicy MixedPrecisionPolicy::uniform(LayerPrecision p, index_t block_size) {
  MixedPrecisionPolicy policy;
  policy.fallback = p;
  policy.block_size = block_size;
  return policy;
}

}  // namespace nodetr::fx
