#include "nodetr/fx/format.hpp"

#include <cmath>

namespace nodetr::fx {

double FixedFormat::resolution() const { return std::ldexp(1.0, -frac_bits()); }

double FixedFormat::max_value() const {
  return static_cast<double>(raw_max()) * resolution();
}

double FixedFormat::min_value() const {
  return static_cast<double>(raw_min()) * resolution();
}

std::string FixedFormat::to_string() const {
  return std::to_string(total_bits) + "(" + std::to_string(int_bits) + ")";
}

std::string QuantizationScheme::to_string() const {
  return feature.to_string() + "-" + param.to_string();
}

QuantizationScheme scheme_32_24() { return {{32, 16}, {24, 8}}; }
QuantizationScheme scheme_24_20() { return {{24, 12}, {20, 6}}; }
QuantizationScheme scheme_20_16() { return {{20, 10}, {16, 4}}; }
QuantizationScheme scheme_18_14() { return {{18, 9}, {14, 4}}; }
QuantizationScheme scheme_16_12() { return {{16, 8}, {12, 4}}; }

const std::vector<QuantizationScheme>& table8_schemes() {
  static const std::vector<QuantizationScheme> schemes = {
      scheme_32_24(), scheme_24_20(), scheme_20_16(), scheme_18_14(), scheme_16_12()};
  return schemes;
}

std::int64_t saturate(std::int64_t raw, const FixedFormat& f) {
  if (raw > f.raw_max()) return f.raw_max();
  if (raw < f.raw_min()) return f.raw_min();
  return raw;
}

std::int64_t quantize(float v, const FixedFormat& f) {
  if (std::isnan(v)) return 0;
  const double scaled = static_cast<double>(v) * std::ldexp(1.0, f.frac_bits());
  // Round half away from zero: +ties and -ties move symmetrically, so the
  // rounding error has zero mean on the symmetric weight distributions the
  // quantization sweeps feed through here (nearbyint's half-even broke the
  // sign symmetry for exact half-LSB values).
  const double rounded = scaled >= 0.0 ? std::floor(scaled + 0.5) : std::ceil(scaled - 0.5);
  // Saturate symmetrically to +/- raw_max: the raw_min() code point stays
  // unused so |q| is always negatable without overflowing the format's width
  // (the INT*_MIN edge), and the dequantized grid is sign-symmetric. Clamp in
  // double space; llrint would overflow for huge v.
  const double hi = static_cast<double>(f.raw_max());
  const double clamped = std::fmin(std::fmax(rounded, -hi), hi);
  return static_cast<std::int64_t>(clamped);
}

float dequantize(std::int64_t raw, const FixedFormat& f) {
  return static_cast<float>(static_cast<double>(raw) * f.resolution());
}

float quantize_dequantize(float v, const FixedFormat& f) { return dequantize(quantize(v, f), f); }

std::int64_t convert_raw(std::int64_t raw, const FixedFormat& from, const FixedFormat& to) {
  const int shift = to.frac_bits() - from.frac_bits();
  std::int64_t r = raw;
  if (shift > 0) {
    // Widening: guard against overflow of the pre-saturation shift.
    if (shift >= 63) return raw >= 0 ? to.raw_max() : to.raw_min();
    const std::int64_t limit = std::int64_t{1} << (62 - shift);
    if (r > limit) return to.raw_max();
    if (r < -limit) return to.raw_min();
    r <<= shift;
  } else if (shift < 0) {
    // Narrowing: round to nearest (add half LSB before arithmetic shift).
    const int s = -shift;
    const std::int64_t half = std::int64_t{1} << (s - 1);
    r = (r + (r >= 0 ? half : half - 1)) >> s;
  }
  return saturate(r, to);
}

}  // namespace nodetr::fx
