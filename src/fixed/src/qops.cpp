#include "nodetr/fx/qops.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "nodetr/tensor/arena.hpp"
#include "nodetr/tensor/ops.hpp"
#include "nodetr/tensor/parallel.hpp"

namespace nodetr::fx {

namespace {

using wide_t = __int128;
using nodetr::tensor::ScratchArena;

/// Round a wide accumulator at `from_frac` fractional bits into `to`.
std::int64_t narrow(wide_t acc, int from_frac, const FixedFormat& to) {
  const int shift = from_frac - to.frac_bits();
  wide_t r = acc;
  if (shift > 0) {
    const wide_t half = wide_t{1} << (shift - 1);
    r = (r + (r >= 0 ? half : half - 1)) >> shift;
  } else if (shift < 0) {
    r <<= -shift;
  }
  if (r > to.raw_max()) return to.raw_max();
  if (r < to.raw_min()) return to.raw_min();
  return static_cast<std::int64_t>(r);
}

void check_rank2(const FixedTensor& t, const char* who) {
  if (t.shape().rank() != 2) throw std::invalid_argument(std::string(who) + ": rank must be 2");
}

/// C(m x n) = A(m x k) * Bt(n x k)^T where both operands are row-major, so
/// every inner product runs over two unit-stride spans. Fixed-point
/// accumulation is exact integer arithmetic — the result is bitwise identical
/// to any other accumulation order, so packing/blocking never perturbs the
/// bit-accurate datapath. When `bias` is non-null it holds n per-column
/// offsets already expressed at `prod_frac` fractional bits; they seed the
/// accumulators so the whole affine sum is rounded exactly once at the
/// output boundary (ap_fixed semantics — rounding the matmul and the bias
/// separately double-rounds).
void qgemm_nt(const std::int64_t* a, const std::int64_t* bt, std::int64_t* out, index_t m,
              index_t k, index_t n, int prod_frac, const FixedFormat& out_format,
              const wide_t* bias = nullptr) {
  nodetr::tensor::parallel_for(0, m, [&](index_t lo, index_t hi) {
    for (index_t i = lo; i < hi; ++i) {
      const std::int64_t* arow = a + i * k;
      std::int64_t* crow = out + i * n;
      index_t j = 0;
      // Two columns per pass share the A-row loads.
      for (; j + 2 <= n; j += 2) {
        const std::int64_t* b0 = bt + j * k;
        const std::int64_t* b1 = b0 + k;
        wide_t acc0 = bias ? bias[j] : 0, acc1 = bias ? bias[j + 1] : 0;
        for (index_t p = 0; p < k; ++p) {
          const wide_t av = arow[p];
          acc0 += av * b0[p];
          acc1 += av * b1[p];
        }
        crow[j] = narrow(acc0, prod_frac, out_format);
        crow[j + 1] = narrow(acc1, prod_frac, out_format);
      }
      for (; j < n; ++j) {
        const std::int64_t* brow = bt + j * k;
        wide_t acc = bias ? bias[j] : 0;
        for (index_t p = 0; p < k; ++p) acc += static_cast<wide_t>(arow[p]) * brow[p];
        crow[j] = narrow(acc, prod_frac, out_format);
      }
    }
  }, /*grain=*/8);
}

}  // namespace

FixedTensor qmatmul(const FixedTensor& a, const FixedTensor& b, FixedFormat out_format) {
  check_rank2(a, "qmatmul: a");
  check_rank2(b, "qmatmul: b");
  const index_t m = a.shape().dim(0), k = a.shape().dim(1), n = b.shape().dim(1);
  if (b.shape().dim(0) != k) throw std::invalid_argument("qmatmul: inner dimension mismatch");
  const int prod_frac = a.format().frac_bits() + b.format().frac_bits();
  FixedTensor c(Shape{m, n}, out_format);
  // Pack B^T once (tiled transpose) so the inner product is unit-stride
  // instead of striding by n through B, then reuse the _nt kernel.
  auto& arena = ScratchArena::local();
  ScratchArena::Scope scope(arena);
  std::int64_t* bt = arena.alloc<std::int64_t>(static_cast<std::size_t>(k * n));
  constexpr index_t kTile = 32;
  for (index_t p0 = 0; p0 < k; p0 += kTile) {
    const index_t p1 = std::min(p0 + kTile, k);
    for (index_t j0 = 0; j0 < n; j0 += kTile) {
      const index_t j1 = std::min(j0 + kTile, n);
      for (index_t j = j0; j < j1; ++j) {
        for (index_t p = p0; p < p1; ++p) bt[j * k + p] = b.raw()[p * n + j];
      }
    }
  }
  qgemm_nt(a.raw(), bt, c.raw(), m, k, n, prod_frac, out_format);
  return c;
}

FixedTensor qmatmul_nt(const FixedTensor& a, const FixedTensor& b, FixedFormat out_format) {
  check_rank2(a, "qmatmul_nt: a");
  check_rank2(b, "qmatmul_nt: b");
  const index_t m = a.shape().dim(0), k = a.shape().dim(1), n = b.shape().dim(0);
  if (b.shape().dim(1) != k) throw std::invalid_argument("qmatmul_nt: inner dimension mismatch");
  const int prod_frac = a.format().frac_bits() + b.format().frac_bits();
  FixedTensor c(Shape{m, n}, out_format);
  qgemm_nt(a.raw(), b.raw(), c.raw(), m, k, n, prod_frac, out_format);
  return c;
}

FixedTensor qadd(const FixedTensor& a, const FixedTensor& b) {
  if (!(a.shape() == b.shape())) throw std::invalid_argument("qadd: shape mismatch");
  if (!(a.format() == b.format())) throw std::invalid_argument("qadd: format mismatch");
  FixedTensor c(a.shape(), a.format());
  for (index_t i = 0; i < a.numel(); ++i) c[i] = saturate(a[i] + b[i], a.format());
  return c;
}

FixedTensor qrelu(const FixedTensor& a) {
  FixedTensor c(a.shape(), a.format());
  for (index_t i = 0; i < a.numel(); ++i) c[i] = a[i] > 0 ? a[i] : 0;
  return c;
}

FixedTensor qscale(const FixedTensor& a, float scale) {
  // The scale constant itself is quantized into the operand's format, as a
  // hardware constant multiplier would be.
  const std::int64_t qs = quantize(scale, a.format());
  const int prod_frac = 2 * a.format().frac_bits();
  FixedTensor c(a.shape(), a.format());
  for (index_t i = 0; i < a.numel(); ++i) {
    const wide_t p = static_cast<wide_t>(a[i]) * qs;
    c[i] = narrow(p, prod_frac, a.format());
  }
  return c;
}

FixedTensor qlayernorm_rows(const FixedTensor& x, const FixedTensor& gamma,
                            const FixedTensor& beta, float eps) {
  check_rank2(x, "qlayernorm_rows");
  const index_t rows = x.shape().dim(0), cols = x.shape().dim(1);
  if (gamma.numel() != cols || beta.numel() != cols) {
    throw std::invalid_argument("qlayernorm_rows: gamma/beta size mismatch");
  }
  const auto& ff = x.format();
  FixedTensor out(x.shape(), ff);
  const int gf = gamma.format().frac_bits();
  for (index_t r = 0; r < rows; ++r) {
    const std::int64_t* in = x.raw() + r * cols;
    std::int64_t* o = out.raw() + r * cols;
    // Exact integer mean/variance at the feature scale.
    wide_t s = 0, s2 = 0;
    for (index_t c = 0; c < cols; ++c) {
      s += in[c];
      s2 += static_cast<wide_t>(in[c]) * in[c];
    }
    const double n = static_cast<double>(cols);
    const double res = ff.resolution();
    const double mean = static_cast<double>(s) / n * res;
    const double ex2 = static_cast<double>(s2) / n * res * res;
    const double var = std::max(ex2 - mean * mean, 0.0);
    const double inv_std = 1.0 / std::sqrt(var + eps);
    // Normalize, apply gain/bias, requantize into the feature format.
    for (index_t c = 0; c < cols; ++c) {
      const double xv = static_cast<double>(in[c]) * res;
      const double g = static_cast<double>(gamma[c]) * std::ldexp(1.0, -gf);
      const double b = static_cast<double>(beta[c]) * std::ldexp(1.0, -gf);
      o[c] = quantize(static_cast<float>((xv - mean) * inv_std * g + b), ff);
    }
  }
  return out;
}

FixedTensor qlinear(const FixedTensor& x, const FixedTensor& weight_t, const FixedTensor& bias,
                    FixedFormat out_format) {
  if (bias.empty()) return qmatmul_nt(x, weight_t, out_format);
  check_rank2(x, "qlinear: x");
  check_rank2(weight_t, "qlinear: weight_t");
  const index_t m = x.shape().dim(0), k = x.shape().dim(1), n = weight_t.shape().dim(0);
  if (weight_t.shape().dim(1) != k) throw std::invalid_argument("qlinear: inner dimension mismatch");
  if (bias.numel() != n) throw std::invalid_argument("qlinear: bias size mismatch");
  const int prod_frac = x.format().frac_bits() + weight_t.format().frac_bits();
  // Raise the bias exactly to the accumulator's scale and let it seed the
  // dot products, so x*W^T + b is rounded once into out_format — rounding
  // the matmul first and the bias separately gave each output two roundings
  // and a bitwise mismatch against the single-pass HLS accumulator. The
  // widening shift is exact for every scheme (prod_frac >= bias frac_bits
  // whenever the feature format has any fractional bits); a hypothetically
  // coarser accumulator would round the bias constant once here instead.
  const int bshift = prod_frac - bias.format().frac_bits();
  std::vector<wide_t> wide_bias(static_cast<std::size_t>(n));
  for (index_t j = 0; j < n; ++j) {
    const wide_t b = bias[j];
    wide_bias[static_cast<std::size_t>(j)] =
        bshift >= 0 ? b << bshift
                    : (b + (b >= 0 ? (wide_t{1} << (-bshift - 1))
                                   : (wide_t{1} << (-bshift - 1)) - 1)) >> -bshift;
  }
  FixedTensor y(Shape{m, n}, out_format);
  qgemm_nt(x.raw(), weight_t.raw(), y.raw(), m, k, n, prod_frac, out_format, wide_bias.data());
  return y;
}

QuantError quant_error(const Tensor& reference, const FixedTensor& result) {
  const Tensor approx = result.to_float();
  QuantError e;
  e.mean_abs = nodetr::tensor::mean_abs_diff(reference, approx);
  e.max_abs = nodetr::tensor::max_abs_diff(reference, approx);
  return e;
}

}  // namespace nodetr::fx
