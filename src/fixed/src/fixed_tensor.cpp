#include "nodetr/fx/fixed_tensor.hpp"

namespace nodetr::fx {

FixedTensor::FixedTensor(Shape shape, FixedFormat format)
    : shape_(std::move(shape)), format_(format),
      raw_(static_cast<std::size_t>(shape_.numel()), 0) {}

FixedTensor FixedTensor::from_float(const Tensor& t, FixedFormat format) {
  FixedTensor out(t.shape(), format);
  for (index_t i = 0; i < t.numel(); ++i) out[i] = quantize(t[i], format);
  return out;
}

Tensor FixedTensor::to_float() const {
  Tensor out(shape_);
  for (index_t i = 0; i < numel(); ++i) out[i] = dequantize(raw_[static_cast<std::size_t>(i)], format_);
  return out;
}

FixedTensor FixedTensor::converted(FixedFormat to) const {
  FixedTensor out(shape_, to);
  for (index_t i = 0; i < numel(); ++i) {
    out[i] = convert_raw(raw_[static_cast<std::size_t>(i)], format_, to);
  }
  return out;
}

}  // namespace nodetr::fx
