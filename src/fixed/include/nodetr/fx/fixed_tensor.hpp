// FixedTensor: a dense N-D array of raw fixed-point values sharing one format.
//
// Raw values are held in int64 so intermediate products/accumulations in the
// bit-accurate kernels never overflow the host representation; saturation to
// the format's range is applied at every format boundary, mirroring HLS
// ap_fixed<W,I, AP_RND, AP_SAT> semantics.
#pragma once

#include <cstdint>
#include <vector>

#include "nodetr/fx/format.hpp"
#include "nodetr/tensor/tensor.hpp"

namespace nodetr::fx {

using nodetr::tensor::index_t;
using nodetr::tensor::Shape;
using nodetr::tensor::Tensor;

class FixedTensor {
 public:
  FixedTensor() = default;

  /// Zero-valued tensor of the given shape/format.
  FixedTensor(Shape shape, FixedFormat format);

  /// Quantize a float tensor into `format`.
  static FixedTensor from_float(const Tensor& t, FixedFormat format);

  /// Dequantize back to float.
  [[nodiscard]] Tensor to_float() const;

  [[nodiscard]] const Shape& shape() const { return shape_; }
  [[nodiscard]] const FixedFormat& format() const { return format_; }
  [[nodiscard]] index_t numel() const { return static_cast<index_t>(raw_.size()); }
  [[nodiscard]] bool empty() const { return raw_.empty(); }

  [[nodiscard]] std::int64_t* raw() { return raw_.data(); }
  [[nodiscard]] const std::int64_t* raw() const { return raw_.data(); }

  [[nodiscard]] std::int64_t& operator[](index_t i) { return raw_[static_cast<std::size_t>(i)]; }
  [[nodiscard]] std::int64_t operator[](index_t i) const {
    return raw_[static_cast<std::size_t>(i)];
  }

  /// Re-express every element in a new format (shift + round + saturate).
  [[nodiscard]] FixedTensor converted(FixedFormat to) const;

  /// Memory footprint in bits if stored at the native width (for BRAM sizing).
  [[nodiscard]] std::int64_t storage_bits() const {
    return numel() * static_cast<std::int64_t>(format_.total_bits);
  }

 private:
  Shape shape_{std::initializer_list<index_t>{0}};
  FixedFormat format_{};
  std::vector<std::int64_t> raw_;
};

}  // namespace nodetr::fx
