// Bit-accurate fixed-point convolution kernels on NCHW tensors — the
// building blocks of a whole-model FPGA datapath (the paper's future work).
// Same ap_fixed semantics as qops.hpp: exact wide-product accumulation,
// one rounding into the destination format per output element.
#pragma once

#include "nodetr/fx/qops.hpp"
#include "nodetr/tensor/conv.hpp"

namespace nodetr::fx {

using nodetr::tensor::Conv2dGeom;

/// Dense conv: x (N,Cin,H,W) in feature format, weight (Cout,Cin,K,K) and
/// optional bias (Cout) in parameter format; output in `out_format`.
[[nodiscard]] FixedTensor qconv2d(const FixedTensor& x, const FixedTensor& weight,
                                  const FixedTensor& bias, const Conv2dGeom& g,
                                  FixedFormat out_format);

/// Depthwise conv: weight (C,K,K).
[[nodiscard]] FixedTensor qdepthwise_conv2d(const FixedTensor& x, const FixedTensor& weight,
                                            const Conv2dGeom& g, FixedFormat out_format);

/// Inference-mode BatchNorm folded to per-channel scale/shift, both in the
/// parameter format: y = x * scale[c] + shift[c].
[[nodiscard]] FixedTensor qscale_shift_channels(const FixedTensor& x, const FixedTensor& scale,
                                                const FixedTensor& shift);

/// Global average pool (B,C,H,W) -> (B,C): exact sum, one rounding.
[[nodiscard]] FixedTensor qglobal_avg_pool(const FixedTensor& x);

/// 3x3/2-style max pool (comparators only — exact in fixed point).
[[nodiscard]] FixedTensor qmax_pool(const FixedTensor& x, nodetr::tensor::index_t kernel,
                                    nodetr::tensor::index_t stride,
                                    nodetr::tensor::index_t pad);

}  // namespace nodetr::fx
