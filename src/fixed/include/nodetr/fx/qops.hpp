// Bit-accurate fixed-point kernels.
//
// Semantics mirror an HLS datapath built from ap_fixed<W,I,AP_RND,AP_SAT>:
// products are formed exactly at (fa+fb) fractional bits in a wide
// accumulator, and results are rounded/saturated into the destination format
// at the layer boundary. All kernels are deterministic and platform
// independent, so the software simulation reproduces the accelerator's
// numerics exactly.
#pragma once

#include "nodetr/fx/fixed_tensor.hpp"

namespace nodetr::fx {

/// C(MxN) = A(MxK) * B(KxN); A and B may use different formats. The exact
/// wide-product accumulation is rounded once into `out_format`.
[[nodiscard]] FixedTensor qmatmul(const FixedTensor& a, const FixedTensor& b,
                                  FixedFormat out_format);

/// C(MxN) = A(MxK) * B(NxK)^T.
[[nodiscard]] FixedTensor qmatmul_nt(const FixedTensor& a, const FixedTensor& b,
                                     FixedFormat out_format);

/// Elementwise sum. Operands must share a format; result saturates into it.
[[nodiscard]] FixedTensor qadd(const FixedTensor& a, const FixedTensor& b);

/// Elementwise ReLU (a comparator and a multiplexer in hardware).
[[nodiscard]] FixedTensor qrelu(const FixedTensor& a);

/// Multiply every element by a float scale factor, quantized to the operand's
/// own format before use (e.g. the 1/sqrt(D_h) attention scaling).
[[nodiscard]] FixedTensor qscale(const FixedTensor& a, float scale);

/// Row-wise LayerNorm over the last axis of a rank-2 tensor, with learned
/// gain/bias in the parameter format. Mean/variance accumulate exactly; the
/// reciprocal square root uses a float approximation of the hardware's
/// iterative rsqrt, then requantizes (documented substitution).
[[nodiscard]] FixedTensor qlayernorm_rows(const FixedTensor& x, const FixedTensor& gamma,
                                          const FixedTensor& beta, float eps = 1e-5f);

/// Linear layer y = x * W^T + b with x in feature format, W/b in parameter
/// format, result in feature format. The bias joins the wide accumulator at
/// the product scale, so each output is rounded exactly once (matching a
/// single-pass ap_fixed MAC chain — no double rounding at the boundary).
[[nodiscard]] FixedTensor qlinear(const FixedTensor& x, const FixedTensor& weight_t,
                                  const FixedTensor& bias, FixedFormat out_format);

/// Error statistics between a float reference and a fixed-point result.
struct QuantError {
  float mean_abs = 0.0f;
  float max_abs = 0.0f;
};
[[nodiscard]] QuantError quant_error(const Tensor& reference, const FixedTensor& result);

}  // namespace nodetr::fx
