// Fixed-point number formats, following the paper's F_total(F_int)-P_total(P_int)
// notation: a signed two's-complement value with `total_bits` bits of which
// `int_bits` are integer (including sign weight) and the rest fractional.
//
// The paper's baseline is 32(16) for feature maps / layer I/O and 24(8) for
// trained parameters (Sec. V-B1), with the accuracy sweep of Table VIII
// covering 32(16)-24(8) down to 16(8)-12(4).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nodetr::fx {

/// One fixed-point format: Q(int_bits).(total_bits-int_bits), signed.
struct FixedFormat {
  int total_bits = 32;
  int int_bits = 16;

  [[nodiscard]] constexpr int frac_bits() const { return total_bits - int_bits; }
  /// Value of one LSB.
  [[nodiscard]] double resolution() const;
  /// Largest representable value.
  [[nodiscard]] double max_value() const;
  /// Most negative representable value.
  [[nodiscard]] double min_value() const;
  /// Raw integer saturation bounds.
  [[nodiscard]] constexpr std::int64_t raw_max() const {
    return (std::int64_t{1} << (total_bits - 1)) - 1;
  }
  [[nodiscard]] constexpr std::int64_t raw_min() const {
    return -(std::int64_t{1} << (total_bits - 1));
  }

  [[nodiscard]] bool operator==(const FixedFormat&) const = default;
  /// e.g. "32(16)".
  [[nodiscard]] std::string to_string() const;
};

/// A feature-format + parameter-format pair as used throughout the paper,
/// e.g. "32(16)-24(8)".
struct QuantizationScheme {
  FixedFormat feature;  ///< feature maps, layer inputs/outputs, input images
  FixedFormat param;    ///< trained weights and biases

  [[nodiscard]] std::string to_string() const;
};

/// The five design points evaluated in Table VIII, most to least precise.
inline constexpr FixedFormat kFeature32{32, 16};
inline constexpr FixedFormat kParam24{24, 8};

QuantizationScheme scheme_32_24();  ///< 32(16)-24(8): the paper's default
QuantizationScheme scheme_24_20();  ///< 24(12)-20(6)
QuantizationScheme scheme_20_16();  ///< 20(10)-16(4)
QuantizationScheme scheme_18_14();  ///< 18(9)-14(4)
QuantizationScheme scheme_16_12();  ///< 16(8)-12(4)
/// All of Table VIII's schemes in paper order.
const std::vector<QuantizationScheme>& table8_schemes();

// ---- scalar conversions -------------------------------------------------------

/// Quantize a float to raw fixed-point: round half away from zero, then
/// saturate symmetrically to [-raw_max(), raw_max()] (the raw_min() code
/// point is never produced, so a quantized magnitude is always negatable).
[[nodiscard]] std::int64_t quantize(float v, const FixedFormat& f);
/// Dequantize raw fixed-point back to float.
[[nodiscard]] float dequantize(std::int64_t raw, const FixedFormat& f);
/// Round-trip through the format (quantization error injection).
[[nodiscard]] float quantize_dequantize(float v, const FixedFormat& f);

/// Convert a raw value between formats (arithmetic shift + saturation).
[[nodiscard]] std::int64_t convert_raw(std::int64_t raw, const FixedFormat& from,
                                       const FixedFormat& to);

/// Saturate a raw value already expressed at `f`'s scale into f's range.
[[nodiscard]] std::int64_t saturate(std::int64_t raw, const FixedFormat& f);

}  // namespace nodetr::fx
