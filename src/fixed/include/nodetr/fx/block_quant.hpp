// Block-quantized tensors: the whole-model int8/int4 weight format used for
// checkpoint storage, simulated DDR->PL weight streaming, and the quantized
// CPU serving backend (ROADMAP item: block-quantized weights end-to-end).
//
// The layout follows the ggml Q8_0/Q4_0 idiom: values are grouped into
// fixed-size blocks (32 or 64), each block carries one float scale chosen as
// absmax/qmax, and the payload stores the per-value integer codes — one
// int8 per value, or two int4 codes packed per byte (biased nibbles, code =
// q + 8, so the packed bytes need no sign extension on unpack). Quantization
// rounds half away from zero and saturates symmetrically to +/- qmax,
// matching fx::quantize's semantics.
//
// Wire/storage cost per block of S values (+4 bytes for the scale):
//   int8:  S bytes      -> ~3.56x smaller than float32 at S=32
//   int4:  (S+1)/2 bytes -> ~6.4x smaller than float32 at S=32
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "nodetr/tensor/tensor.hpp"

namespace nodetr::fx {

using nodetr::tensor::index_t;
using nodetr::tensor::Shape;
using nodetr::tensor::Tensor;

/// Payload element type of one block-quantized tensor.
enum class BlockType : std::uint8_t {
  kInt8 = 0,  ///< one signed byte per value, codes in [-127, 127]
  kInt4 = 1,  ///< two biased nibbles per byte, codes in [-7, 7]
};

[[nodiscard]] const char* to_string(BlockType type);

class BlockQuantTensor {
 public:
  BlockQuantTensor() = default;

  /// Quantize a float tensor: per-block absmax scales, round half away from
  /// zero, symmetric saturation. `block_size` must be >= 1 (32 and 64 are
  /// the supported wire sizes); a trailing partial block is zero-padded in
  /// the payload and ignored on dequantize.
  [[nodiscard]] static BlockQuantTensor quantize(const Tensor& t, BlockType type,
                                                 index_t block_size = 32);

  /// Dequantize back to float (value = code * scale).
  [[nodiscard]] Tensor dequantize() const;

  [[nodiscard]] const Shape& shape() const { return shape_; }
  [[nodiscard]] BlockType type() const { return type_; }
  [[nodiscard]] index_t block_size() const { return block_size_; }
  [[nodiscard]] index_t numel() const { return numel_; }
  [[nodiscard]] bool empty() const { return numel_ == 0; }
  [[nodiscard]] index_t blocks() const { return static_cast<index_t>(scales_.size()); }

  [[nodiscard]] const std::vector<float>& scales() const { return scales_; }
  [[nodiscard]] const std::vector<std::uint8_t>& data() const { return data_; }

  /// Decode one element (block scale x integer code).
  [[nodiscard]] float at(index_t i) const;

  /// Bytes actually streamed/stored for this tensor: scales + packed codes.
  [[nodiscard]] std::int64_t payload_bytes() const {
    return static_cast<std::int64_t>(scales_.size()) * 4 +
           static_cast<std::int64_t>(data_.size());
  }
  /// What the same tensor costs as float32 words (the pre-quantization wire).
  [[nodiscard]] std::int64_t float_bytes() const { return std::int64_t{numel_} * 4; }
  /// float_bytes / payload_bytes; 1.0 for an empty tensor.
  [[nodiscard]] double compression_ratio() const;

  /// Payload bytes (scales + codes) for a tensor of `numel` values without
  /// materializing it — the DMA accounting the rt layer needs.
  [[nodiscard]] static std::int64_t payload_bytes_for(index_t numel, BlockType type,
                                                      index_t block_size);

  /// Serialize as one "NBQ1" record: header, dims, scales, codes, and a
  /// trailing FNV-1a checksum over the payload so a corrupted block is
  /// rejected at read time instead of silently decoding garbage weights.
  void write(std::ostream& os) const;
  /// Read a record written by write(). Throws std::runtime_error on a bad
  /// magic/type/geometry, non-finite scale, truncation, or checksum mismatch.
  [[nodiscard]] static BlockQuantTensor read(std::istream& is);

 private:
  Shape shape_{std::initializer_list<index_t>{0}};
  BlockType type_ = BlockType::kInt8;
  index_t block_size_ = 32;
  index_t numel_ = 0;
  std::vector<float> scales_;      ///< one per block
  std::vector<std::uint8_t> data_; ///< int8 codes, or packed int4 nibble pairs
};

/// Free-function spelling of the round trip.
[[nodiscard]] BlockQuantTensor block_quantize(const Tensor& t, BlockType type,
                                              index_t block_size = 32);
[[nodiscard]] Tensor block_dequantize(const BlockQuantTensor& q);
/// Fake-quantization: degrade a float tensor through the block format (the
/// accuracy-sweep primitive; weights stay float downstream).
[[nodiscard]] Tensor block_roundtrip(const Tensor& t, BlockType type, index_t block_size = 32);

// ---- per-layer mixed precision -------------------------------------------------

/// Precision assigned to one parameter tensor by the mixed-precision policy.
enum class LayerPrecision : std::uint8_t {
  kFloat32 = 0,  ///< keep full precision (sensitive layers)
  kInt8 = 1,
  kInt4 = 2,
};

[[nodiscard]] const char* to_string(LayerPrecision p);

/// Table-8-style per-layer precision selection: the first rule whose
/// substring appears in the parameter's name wins; otherwise `fallback`.
/// The empty-rules default reproduces uniform quantization.
struct MixedPrecisionPolicy {
  LayerPrecision fallback = LayerPrecision::kInt8;
  index_t block_size = 32;
  std::vector<std::pair<std::string, LayerPrecision>> rules;

  [[nodiscard]] LayerPrecision precision_for(const std::string& name) const;
  [[nodiscard]] static MixedPrecisionPolicy uniform(LayerPrecision p, index_t block_size = 32);
};

}  // namespace nodetr::fx
