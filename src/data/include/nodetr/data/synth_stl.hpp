// SynthSTL: a procedural 10-class RGB image dataset standing in for STL10.
//
// STL10 itself (96x96 photographs, 5000 train / 8000 test) is not available
// offline, so experiments run on a synthetic set with the same interface:
// 10 classes, 3-channel images, configurable resolution (96 for paper-scale,
// 32 for CI-speed), fixed train/test split, deterministic from a seed.
//
// Class designs deliberately mix *local texture* cues (stripes, checker,
// noise) that convolutions capture with *global structure* cues (opposite
// corner correlation, symmetric layouts, large-scale gradients) that the
// attention mechanism is positioned to exploit — mirroring the paper's
// argument that MHSA helps on larger images (Sec. VI-A1).
#pragma once

#include <vector>

#include "nodetr/tensor/rng.hpp"
#include "nodetr/tensor/tensor.hpp"

namespace nodetr::data {

using nodetr::tensor::index_t;
using nodetr::tensor::Rng;
using nodetr::tensor::Shape;
using nodetr::tensor::Tensor;

struct Sample {
  Tensor image;  ///< (3, S, S), values roughly in [0, 1]
  index_t label = 0;
};

struct SynthStlConfig {
  index_t image_size = 32;
  index_t train_per_class = 50;
  index_t test_per_class = 20;
  std::uint64_t seed = 0x57e1;
  float noise_stddev = 0.1f;  ///< additive pixel noise
};

class SynthStl {
 public:
  static constexpr index_t kNumClasses = 10;

  explicit SynthStl(SynthStlConfig config);

  [[nodiscard]] const std::vector<Sample>& train() const { return train_; }
  [[nodiscard]] const std::vector<Sample>& test() const { return test_; }
  [[nodiscard]] const SynthStlConfig& config() const { return config_; }

  /// Render one image of class `label` with randomness from `rng`.
  [[nodiscard]] Tensor render(index_t label, Rng& rng) const;

  /// Human-readable class names (for example programs).
  [[nodiscard]] static const char* class_name(index_t label);

 private:
  SynthStlConfig config_;
  std::vector<Sample> train_;
  std::vector<Sample> test_;
};

}  // namespace nodetr::data
