// Binary dataset file I/O, STL10-compatible layout.
//
// STL10's distribution format stores images as uint8 in column-major
// (channel, column, row) order with labels in a separate file. This loader
// accepts that layout so real STL10 can be dropped in when available, and a
// simpler row-major variant used by save_dataset for round-tripping the
// synthetic set.
#pragma once

#include <string>
#include <vector>

#include "nodetr/data/synth_stl.hpp"

namespace nodetr::data {

enum class PixelOrder {
  kRowMajor,     ///< (channel, row, column) — this library's native layout
  kStl10Binary,  ///< (channel, column, row) — stl10_binary distribution files
};

/// Load uint8 images (+1-based or 0-based labels) from the binary pair.
/// Images are scaled to [0, 1] floats. `labels_are_one_based` matches the
/// STL10 convention (class ids 1..10).
[[nodiscard]] std::vector<Sample> load_dataset(const std::string& images_path,
                                               const std::string& labels_path,
                                               index_t image_size, PixelOrder order,
                                               bool labels_are_one_based = false,
                                               index_t max_samples = -1);

/// Write samples in the row-major uint8 layout (lossy: 8-bit quantization).
void save_dataset(const std::string& images_path, const std::string& labels_path,
                  const std::vector<Sample>& samples);

}  // namespace nodetr::data
