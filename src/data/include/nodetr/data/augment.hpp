// The paper's training augmentations (Sec. VI-A2): RandomHorizontalFlip,
// ColorJitter and RandomErasing, mirroring the torchvision transforms.
// All functions operate on (3, H, W) images in-place or return a copy.
#pragma once

#include "nodetr/tensor/rng.hpp"
#include "nodetr/tensor/tensor.hpp"

namespace nodetr::data {

using nodetr::tensor::index_t;
using nodetr::tensor::Rng;
using nodetr::tensor::Tensor;

/// Mirror the image horizontally with probability `p`.
[[nodiscard]] Tensor random_horizontal_flip(const Tensor& img, Rng& rng, float p = 0.5f);

struct ColorJitterConfig {
  float brightness = 0.2f;  ///< multiply by U[1-b, 1+b]
  float contrast = 0.2f;    ///< blend toward the mean by U[1-c, 1+c]
  float saturation = 0.2f;  ///< blend toward grayscale by U[1-s, 1+s]
};

/// Randomly perturb brightness, contrast, saturation; output clipped to [0,1].
[[nodiscard]] Tensor color_jitter(const Tensor& img, Rng& rng, const ColorJitterConfig& cfg = {});

struct RandomErasingConfig {
  float p = 0.5f;              ///< probability of erasing anything
  float area_min = 0.02f;      ///< erased area as fraction of the image
  float area_max = 0.2f;
  float aspect_min = 0.3f;     ///< aspect ratio range of the erased box
  float aspect_max = 3.3f;
};

/// Erase a random rectangle, filling it with uniform noise.
[[nodiscard]] Tensor random_erasing(const Tensor& img, Rng& rng,
                                    const RandomErasingConfig& cfg = {});

/// The full training pipeline used by the paper's proposed model: flip,
/// jitter, erase.
[[nodiscard]] Tensor augment_train(const Tensor& img, Rng& rng);

}  // namespace nodetr::data
