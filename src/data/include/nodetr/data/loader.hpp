// Mini-batch assembly with shuffling and optional augmentation.
#pragma once

#include <functional>
#include <vector>

#include "nodetr/data/synth_stl.hpp"

namespace nodetr::data {

struct Batch {
  Tensor images;                ///< (B, 3, S, S)
  std::vector<index_t> labels;  ///< size B
};

class BatchLoader {
 public:
  /// `augment` (may be null) is applied per image at batch-assembly time.
  BatchLoader(const std::vector<Sample>& samples, index_t batch_size, std::uint64_t seed,
              std::function<Tensor(const Tensor&, Rng&)> augment = nullptr);

  /// Shuffle and reset the epoch.
  void reset();

  /// Fetch the next batch; returns false at epoch end.
  bool next(Batch& out);

  [[nodiscard]] index_t batches_per_epoch() const;
  [[nodiscard]] index_t size() const { return static_cast<index_t>(samples_->size()); }

 private:
  const std::vector<Sample>* samples_;
  index_t batch_size_;
  Rng rng_;
  std::function<Tensor(const Tensor&, Rng&)> augment_;
  std::vector<index_t> order_;
  index_t cursor_ = 0;
};

/// Stack a set of samples into one (B, 3, S, S) batch (no augmentation).
[[nodiscard]] Batch stack(const std::vector<Sample>& samples, index_t begin, index_t end);

}  // namespace nodetr::data
