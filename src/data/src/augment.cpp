#include "nodetr/data/augment.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nodetr::data {

namespace {
void check_image(const Tensor& img, const char* who) {
  if (img.rank() != 3 || img.dim(0) != 3) {
    throw std::invalid_argument(std::string(who) + ": expected (3, H, W), got " +
                                img.shape().to_string());
  }
}
}  // namespace

Tensor random_horizontal_flip(const Tensor& img, Rng& rng, float p) {
  check_image(img, "random_horizontal_flip");
  if (!rng.bernoulli(p)) return img;
  const index_t h = img.dim(1), w = img.dim(2);
  Tensor out(img.shape());
  for (index_t c = 0; c < 3; ++c)
    for (index_t y = 0; y < h; ++y)
      for (index_t x = 0; x < w; ++x) out.at(c, y, x) = img.at(c, y, w - 1 - x);
  return out;
}

Tensor color_jitter(const Tensor& img, Rng& rng, const ColorJitterConfig& cfg) {
  check_image(img, "color_jitter");
  const float fb = rng.uniform(1.0f - cfg.brightness, 1.0f + cfg.brightness);
  const float fc = rng.uniform(1.0f - cfg.contrast, 1.0f + cfg.contrast);
  const float fs = rng.uniform(1.0f - cfg.saturation, 1.0f + cfg.saturation);
  const index_t plane = img.dim(1) * img.dim(2);
  Tensor out = img;
  // Brightness.
  for (index_t i = 0; i < out.numel(); ++i) out[i] *= fb;
  // Contrast: blend toward the global mean intensity.
  double mean = 0.0;
  for (index_t i = 0; i < out.numel(); ++i) mean += out[i];
  mean /= static_cast<double>(out.numel());
  for (index_t i = 0; i < out.numel(); ++i) {
    out[i] = static_cast<float>(mean + fc * (out[i] - mean));
  }
  // Saturation: blend each pixel toward its grayscale value.
  for (index_t p = 0; p < plane; ++p) {
    const float gray =
        0.299f * out[p] + 0.587f * out[plane + p] + 0.114f * out[2 * plane + p];
    for (index_t c = 0; c < 3; ++c) {
      float& v = out[c * plane + p];
      v = gray + fs * (v - gray);
    }
  }
  for (index_t i = 0; i < out.numel(); ++i) out[i] = std::clamp(out[i], 0.0f, 1.0f);
  return out;
}

Tensor random_erasing(const Tensor& img, Rng& rng, const RandomErasingConfig& cfg) {
  check_image(img, "random_erasing");
  if (!rng.bernoulli(cfg.p)) return img;
  const index_t h = img.dim(1), w = img.dim(2);
  Tensor out = img;
  // A few attempts to fit a box, like torchvision.
  for (int attempt = 0; attempt < 10; ++attempt) {
    const float area = rng.uniform(cfg.area_min, cfg.area_max) * static_cast<float>(h * w);
    const float aspect = rng.uniform(cfg.aspect_min, cfg.aspect_max);
    const index_t eh = static_cast<index_t>(std::sqrt(area * aspect));
    const index_t ew = static_cast<index_t>(std::sqrt(area / aspect));
    if (eh <= 0 || ew <= 0 || eh >= h || ew >= w) continue;
    const index_t y0 = rng.randint(0, h - eh - 1);
    const index_t x0 = rng.randint(0, w - ew - 1);
    for (index_t c = 0; c < 3; ++c)
      for (index_t y = y0; y < y0 + eh; ++y)
        for (index_t x = x0; x < x0 + ew; ++x) out.at(c, y, x) = rng.uniform(0.0f, 1.0f);
    return out;
  }
  return out;
}

Tensor augment_train(const Tensor& img, Rng& rng) {
  Tensor out = random_horizontal_flip(img, rng);
  out = color_jitter(out, rng);
  return random_erasing(out, rng);
}

}  // namespace nodetr::data
