#include "nodetr/data/file_dataset.hpp"

#include <cstdint>
#include <fstream>
#include <stdexcept>

namespace nodetr::data {

std::vector<Sample> load_dataset(const std::string& images_path, const std::string& labels_path,
                                 index_t image_size, PixelOrder order,
                                 bool labels_are_one_based, index_t max_samples) {
  std::ifstream imgs(images_path, std::ios::binary);
  if (!imgs) throw std::runtime_error("load_dataset: cannot open " + images_path);
  std::ifstream labels(labels_path, std::ios::binary);
  if (!labels) throw std::runtime_error("load_dataset: cannot open " + labels_path);

  const index_t plane = image_size * image_size;
  const index_t bytes_per_image = 3 * plane;
  std::vector<std::uint8_t> buf(static_cast<std::size_t>(bytes_per_image));
  std::vector<Sample> out;
  while (max_samples < 0 || static_cast<index_t>(out.size()) < max_samples) {
    if (!imgs.read(reinterpret_cast<char*>(buf.data()), bytes_per_image)) break;
    std::uint8_t lab = 0;
    if (!labels.read(reinterpret_cast<char*>(&lab), 1)) {
      throw std::runtime_error("load_dataset: labels file shorter than images file");
    }
    Sample s;
    s.label = static_cast<index_t>(lab) - (labels_are_one_based ? 1 : 0);
    if (s.label < 0 || s.label >= SynthStl::kNumClasses) {
      throw std::runtime_error("load_dataset: label out of range: " + std::to_string(lab));
    }
    s.image = Tensor(Shape{3, image_size, image_size});
    for (index_t c = 0; c < 3; ++c) {
      for (index_t y = 0; y < image_size; ++y) {
        for (index_t x = 0; x < image_size; ++x) {
          // STL10 binaries store each channel column-major.
          const index_t src = (order == PixelOrder::kStl10Binary)
                                  ? c * plane + x * image_size + y
                                  : c * plane + y * image_size + x;
          s.image.at(c, y, x) =
              static_cast<float>(buf[static_cast<std::size_t>(src)]) / 255.0f;
        }
      }
    }
    out.push_back(std::move(s));
  }
  if (out.empty()) throw std::runtime_error("load_dataset: no samples in " + images_path);
  return out;
}

void save_dataset(const std::string& images_path, const std::string& labels_path,
                  const std::vector<Sample>& samples) {
  std::ofstream imgs(images_path, std::ios::binary);
  if (!imgs) throw std::runtime_error("save_dataset: cannot open " + images_path);
  std::ofstream labels(labels_path, std::ios::binary);
  if (!labels) throw std::runtime_error("save_dataset: cannot open " + labels_path);
  for (const auto& s : samples) {
    for (index_t i = 0; i < s.image.numel(); ++i) {
      const float v = std::min(std::max(s.image[i], 0.0f), 1.0f);
      const auto b = static_cast<std::uint8_t>(v * 255.0f + 0.5f);
      imgs.write(reinterpret_cast<const char*>(&b), 1);
    }
    const auto lab = static_cast<std::uint8_t>(s.label);
    labels.write(reinterpret_cast<const char*>(&lab), 1);
  }
}

}  // namespace nodetr::data
