#include "nodetr/data/loader.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace nodetr::data {

BatchLoader::BatchLoader(const std::vector<Sample>& samples, index_t batch_size,
                         std::uint64_t seed, std::function<Tensor(const Tensor&, Rng&)> augment)
    : samples_(&samples), batch_size_(batch_size), rng_(seed), augment_(std::move(augment)) {
  if (batch_size_ <= 0) throw std::invalid_argument("BatchLoader: batch_size must be positive");
  if (samples.empty()) throw std::invalid_argument("BatchLoader: empty dataset");
  order_.resize(samples.size());
  std::iota(order_.begin(), order_.end(), index_t{0});
  reset();
}

void BatchLoader::reset() {
  std::shuffle(order_.begin(), order_.end(), rng_.engine());
  cursor_ = 0;
}

bool BatchLoader::next(Batch& out) {
  const index_t n = size();
  if (cursor_ >= n) return false;
  const index_t end = std::min(cursor_ + batch_size_, n);
  const index_t b = end - cursor_;
  const Sample& first = (*samples_)[static_cast<std::size_t>(order_[static_cast<std::size_t>(cursor_)])];
  const index_t c = first.image.dim(0), h = first.image.dim(1), w = first.image.dim(2);
  out.images = Tensor(Shape{b, c, h, w});
  out.labels.resize(static_cast<std::size_t>(b));
  for (index_t i = 0; i < b; ++i) {
    const Sample& s = (*samples_)[static_cast<std::size_t>(order_[static_cast<std::size_t>(cursor_ + i)])];
    Tensor img = augment_ ? augment_(s.image, rng_) : s.image;
    std::copy(img.data(), img.data() + img.numel(), out.images.data() + i * c * h * w);
    out.labels[static_cast<std::size_t>(i)] = s.label;
  }
  cursor_ = end;
  return true;
}

index_t BatchLoader::batches_per_epoch() const {
  return (size() + batch_size_ - 1) / batch_size_;
}

Batch stack(const std::vector<Sample>& samples, index_t begin, index_t end) {
  if (begin < 0 || end > static_cast<index_t>(samples.size()) || begin >= end) {
    throw std::out_of_range("stack: bad range");
  }
  const index_t b = end - begin;
  const auto& first = samples[static_cast<std::size_t>(begin)].image;
  const index_t c = first.dim(0), h = first.dim(1), w = first.dim(2);
  Batch out;
  out.images = Tensor(Shape{b, c, h, w});
  out.labels.resize(static_cast<std::size_t>(b));
  for (index_t i = 0; i < b; ++i) {
    const Sample& s = samples[static_cast<std::size_t>(begin + i)];
    std::copy(s.image.data(), s.image.data() + s.image.numel(),
              out.images.data() + i * c * h * w);
    out.labels[static_cast<std::size_t>(i)] = s.label;
  }
  return out;
}

}  // namespace nodetr::data
