#include "nodetr/data/synth_stl.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nodetr::data {

namespace {

constexpr float kPi = 3.14159265358979f;

/// Random but saturated RGB color.
void random_color(Rng& rng, float c[3]) {
  for (int i = 0; i < 3; ++i) c[i] = rng.uniform(0.1f, 0.9f);
}

}  // namespace

SynthStl::SynthStl(SynthStlConfig config) : config_(config) {
  if (config_.image_size < 8) throw std::invalid_argument("SynthStl: image_size must be >= 8");
  Rng rng(config_.seed);
  for (index_t cls = 0; cls < kNumClasses; ++cls) {
    for (index_t i = 0; i < config_.train_per_class; ++i) {
      train_.push_back({render(cls, rng), cls});
    }
  }
  for (index_t cls = 0; cls < kNumClasses; ++cls) {
    for (index_t i = 0; i < config_.test_per_class; ++i) {
      test_.push_back({render(cls, rng), cls});
    }
  }
}

const char* SynthStl::class_name(index_t label) {
  static const char* names[kNumClasses] = {
      "h-stripes", "v-stripes", "diag-stripes", "checker",   "disk",
      "rings",     "blobs",     "cross",        "gradient",  "corner-pair"};
  if (label < 0 || label >= kNumClasses) return "unknown";
  return names[static_cast<std::size_t>(label)];
}

Tensor SynthStl::render(index_t label, Rng& rng) const {
  const index_t s = config_.image_size;
  Tensor img(Shape{3, s, s});
  float fg[3], bg[3];
  random_color(rng, fg);
  random_color(rng, bg);
  const float fs = static_cast<float>(s);

  auto set_px = [&](index_t y, index_t x, const float c[3], float alpha = 1.0f) {
    for (index_t ch = 0; ch < 3; ++ch) {
      float& v = img.at(ch, y, x);
      v = (1.0f - alpha) * v + alpha * c[ch];
    }
  };
  // Fill background.
  for (index_t y = 0; y < s; ++y)
    for (index_t x = 0; x < s; ++x) set_px(y, x, bg);

  switch (label) {
    case 0:    // horizontal stripes: local texture, orientation-specific
    case 1:    // vertical stripes
    case 2: {  // diagonal stripes
      const float freq = rng.uniform(2.0f, 5.0f) * 2.0f * kPi / fs;
      const float phase = rng.uniform(0.0f, 2.0f * kPi);
      for (index_t y = 0; y < s; ++y) {
        for (index_t x = 0; x < s; ++x) {
          float coord;
          if (label == 0) coord = static_cast<float>(y);
          else if (label == 1) coord = static_cast<float>(x);
          else coord = static_cast<float>(x + y) * 0.70710678f;
          const float m = 0.5f + 0.5f * std::sin(freq * coord + phase);
          if (m > 0.5f) set_px(y, x, fg);
        }
      }
      break;
    }
    case 3: {  // checkerboard
      const index_t cell = rng.randint(2, std::max<index_t>(s / 6, 3));
      for (index_t y = 0; y < s; ++y)
        for (index_t x = 0; x < s; ++x)
          if (((y / cell) + (x / cell)) % 2 == 0) set_px(y, x, fg);
      break;
    }
    case 4: {  // filled disk at a random position: a single global shape
      const float cy = rng.uniform(0.3f, 0.7f) * fs;
      const float cx = rng.uniform(0.3f, 0.7f) * fs;
      const float r = rng.uniform(0.15f, 0.3f) * fs;
      for (index_t y = 0; y < s; ++y)
        for (index_t x = 0; x < s; ++x) {
          const float d = std::hypot(y - cy, x - cx);
          if (d < r) set_px(y, x, fg);
        }
      break;
    }
    case 5: {  // concentric rings: global radial structure
      const float cy = rng.uniform(0.35f, 0.65f) * fs;
      const float cx = rng.uniform(0.35f, 0.65f) * fs;
      const float freq = rng.uniform(2.5f, 5.0f) * 2.0f * kPi / fs;
      for (index_t y = 0; y < s; ++y)
        for (index_t x = 0; x < s; ++x) {
          const float d = std::hypot(y - cy, x - cx);
          if (std::sin(freq * d) > 0.0f) set_px(y, x, fg);
        }
      break;
    }
    case 6: {  // several soft blobs
      const index_t count = rng.randint(3, 6);
      for (index_t b = 0; b < count; ++b) {
        const float cy = rng.uniform(0.1f, 0.9f) * fs;
        const float cx = rng.uniform(0.1f, 0.9f) * fs;
        const float sigma = rng.uniform(0.05f, 0.12f) * fs;
        float col[3];
        random_color(rng, col);
        for (index_t y = 0; y < s; ++y)
          for (index_t x = 0; x < s; ++x) {
            const float d2 = (y - cy) * (y - cy) + (x - cx) * (x - cx);
            const float alpha = std::exp(-d2 / (2 * sigma * sigma));
            if (alpha > 0.05f) set_px(y, x, col, alpha);
          }
      }
      break;
    }
    case 7: {  // axis-aligned cross at a random position
      const index_t cy = rng.randint(s / 4, 3 * s / 4);
      const index_t cx = rng.randint(s / 4, 3 * s / 4);
      const index_t thick = std::max<index_t>(s / 16, 1);
      for (index_t y = 0; y < s; ++y)
        for (index_t x = 0; x < s; ++x)
          if ((y >= cy - thick && y <= cy + thick) || (x >= cx - thick && x <= cx + thick)) {
            set_px(y, x, fg);
          }
      break;
    }
    case 8: {  // smooth global gradient along a random direction
      const float ang = rng.uniform(0.0f, 2.0f * kPi);
      const float dy = std::sin(ang), dx = std::cos(ang);
      for (index_t y = 0; y < s; ++y)
        for (index_t x = 0; x < s; ++x) {
          const float tproj = (dy * y + dx * x) / fs * 0.5f + 0.5f;
          const float a = std::clamp(tproj, 0.0f, 1.0f);
          set_px(y, x, fg, a);
        }
      break;
    }
    case 9: {  // matching patches in OPPOSITE corners: long-range dependency
      const index_t patch = std::max<index_t>(s / 5, 3);
      const bool main_diag = rng.bernoulli(0.5f);
      auto stamp = [&](index_t oy, index_t ox) {
        for (index_t y = 0; y < patch; ++y)
          for (index_t x = 0; x < patch; ++x) set_px(oy + y, ox + x, fg);
      };
      if (main_diag) {
        stamp(0, 0);
        stamp(s - patch, s - patch);
      } else {
        stamp(0, s - patch);
        stamp(s - patch, 0);
      }
      break;
    }
    default:
      throw std::invalid_argument("SynthStl::render: label out of range");
  }

  // Additive noise, clipped to [0, 1].
  if (config_.noise_stddev > 0.0f) {
    for (index_t i = 0; i < img.numel(); ++i) {
      img[i] = std::clamp(img[i] + rng.normal(0.0f, config_.noise_stddev), 0.0f, 1.0f);
    }
  }
  return img;
}

}  // namespace nodetr::data
