#include "nodetr/ode/ode_block.hpp"

#include <stdexcept>

#include "nodetr/obs/obs.hpp"

namespace nodetr::ode {

OdeBlock::OdeBlock(ModulePtr dynamics, index_t steps, SolverKind solver, float t0, float t1)
    : dynamics_(std::move(dynamics)), steps_(steps), kind_(solver), t0_(t0), t1_(t1),
      solver_(make_solver(solver)) {
  if (!dynamics_) throw std::invalid_argument("OdeBlock: null dynamics");
  if (steps_ <= 0) throw std::invalid_argument("OdeBlock: steps must be positive");
}

void OdeBlock::set_steps(index_t steps) {
  if (steps <= 0) throw std::invalid_argument("OdeBlock: steps must be positive");
  steps_ = steps;
}

void OdeBlock::set_solver(SolverKind kind) {
  kind_ = kind;
  solver_ = make_solver(kind);
}

Tensor OdeBlock::eval_dynamics(const Tensor& z, float t) {
  if (auto* ta = dynamic_cast<TimeAware*>(dynamics_.get())) ta->set_time(t);
  return dynamics_->forward(z);
}

Tensor OdeBlock::forward(const Tensor& x) {
  obs::ScopedSpan span("ode.block.forward");
  span.attr("solver", to_string(kind_));
  span.attr("steps", steps_);
  if (kind_ == SolverKind::kEuler) {
    // Inline Euler so the trajectory can be cached for backward.
    const float h = (t1_ - t0_) / static_cast<float>(steps_);
    states_.clear();
    states_.reserve(static_cast<std::size_t>(steps_));
    Tensor z = x;
    for (index_t j = 0; j < steps_; ++j) {
      obs::ScopedSpan step_span("ode.euler_step");
      step_span.attr("step", j);
      states_.push_back(z);
      const float t = t0_ + h * static_cast<float>(j);
      z.add_scaled(eval_dynamics(z, t), h);
    }
    forward_was_euler_ = true;
    return z;
  }
  forward_was_euler_ = false;
  states_.clear();
  return solver_->integrate(x, t0_, t1_, steps_,
                            [this](const Tensor& z, float t) { return eval_dynamics(z, t); });
}

Tensor OdeBlock::backward(const Tensor& grad_out) {
  obs::ScopedSpan span("ode.block.backward");
  span.attr("steps", steps_);
  if (!forward_was_euler_) {
    throw std::logic_error(
        "OdeBlock::backward: training requires the Euler solver (discretize-then-optimize); "
        "re-run forward with SolverKind::kEuler");
  }
  const float h = (t1_ - t0_) / static_cast<float>(steps_);
  Tensor g = grad_out;
  for (index_t j = steps_ - 1; j >= 0; --j) {
    const float t = t0_ + h * static_cast<float>(j);
    // Recompute the dynamics forward at the cached state to refresh its
    // internal caches (checkpointing), then pull the cotangent through.
    eval_dynamics(states_[static_cast<std::size_t>(j)], t);
    Tensor scaled = g;
    scaled *= h;
    g += dynamics_->backward(scaled);
  }
  return g;
}

std::string OdeBlock::name() const {
  return "OdeBlock(C=" + std::to_string(steps_) + "," + to_string(kind_) + ")";
}

}  // namespace nodetr::ode
