#include "nodetr/ode/adjoint.hpp"

#include <stdexcept>

namespace nodetr::ode {

AdjointOdeBlock::AdjointOdeBlock(ModulePtr dynamics, index_t steps, float t0, float t1)
    : dynamics_(std::move(dynamics)), steps_(steps), t0_(t0), t1_(t1) {
  if (!dynamics_) throw std::invalid_argument("AdjointOdeBlock: null dynamics");
  if (steps_ <= 0) throw std::invalid_argument("AdjointOdeBlock: steps must be positive");
}

Tensor AdjointOdeBlock::eval_dynamics(const Tensor& z, float t) {
  if (auto* ta = dynamic_cast<TimeAware*>(dynamics_.get())) ta->set_time(t);
  return dynamics_->forward(z);
}

Tensor AdjointOdeBlock::state_at(index_t j) {
  const float h = (t1_ - t0_) / static_cast<float>(steps_);
  Tensor z = input_;
  for (index_t i = 0; i < j; ++i) {
    z.add_scaled(eval_dynamics(z, t0_ + h * static_cast<float>(i)), h);
  }
  return z;
}

Tensor AdjointOdeBlock::forward(const Tensor& x) {
  input_ = x;  // O(1) memory: only the entry state is retained
  return state_at(steps_);
}

Tensor AdjointOdeBlock::backward(const Tensor& grad_out) {
  if (input_.empty()) throw std::logic_error("AdjointOdeBlock::backward before forward");
  const float h = (t1_ - t0_) / static_cast<float>(steps_);
  // Backward sweep of the adjoint recursion on the same Euler grid:
  //   a_j = a_{j+1} + h * (df/dz)^T|_{z_j} a_{j+1}
  // with parameter gradients accumulated as h * (df/dθ)^T a_{j+1} — exactly
  // the discrete adjoint of the forward recursion, so for Euler it matches
  // discretize-then-optimize gradients while storing no trajectory.
  Tensor a = grad_out;
  for (index_t j = steps_ - 1; j >= 0; --j) {
    const float t = t0_ + h * static_cast<float>(j);
    // Recover z(t_j) by re-solving forward from the cached input; the final
    // eval also primes the dynamics' internal caches for backward().
    Tensor zj = state_at(j);
    eval_dynamics(zj, t);
    Tensor scaled = a;
    scaled *= h;
    a += dynamics_->backward(scaled);
  }
  return a;
}

std::string AdjointOdeBlock::name() const {
  return "AdjointOdeBlock(C=" + std::to_string(steps_) + ")";
}

}  // namespace nodetr::ode
