#include "nodetr/ode/solver.hpp"

#include <cmath>
#include <stdexcept>

#include "nodetr/obs/obs.hpp"
#include "nodetr/tensor/ops.hpp"

namespace nodetr::ode {

namespace {
float step_size(float t0, float t1, index_t steps) {
  if (steps <= 0) throw std::invalid_argument("OdeSolver: steps must be positive");
  return (t1 - t0) / static_cast<float>(steps);
}
}  // namespace

Tensor EulerSolver::integrate(const Tensor& z0, float t0, float t1, index_t steps,
                              const OdeRhs& f) const {
  obs::ScopedSpan span("ode.solve");
  span.attr("solver", "Euler");
  span.attr("steps", steps);
  const float h = step_size(t0, t1, steps);
  Tensor z = z0;
  for (index_t j = 0; j < steps; ++j) {
    obs::ScopedSpan step_span("ode.euler_step");
    step_span.attr("step", j);
    const float t = t0 + h * static_cast<float>(j);
    z.add_scaled(f(z, t), h);
  }
  return z;
}

Tensor MidpointSolver::integrate(const Tensor& z0, float t0, float t1, index_t steps,
                                 const OdeRhs& f) const {
  obs::ScopedSpan span("ode.solve");
  span.attr("solver", "Midpoint");
  span.attr("steps", steps);
  const float h = step_size(t0, t1, steps);
  Tensor z = z0;
  Tensor mid;  // hoisted: copy-assign reuses its storage across steps
  for (index_t j = 0; j < steps; ++j) {
    const float t = t0 + h * static_cast<float>(j);
    mid = z;
    mid.add_scaled(f(z, t), 0.5f * h);
    z.add_scaled(f(mid, t + 0.5f * h), h);
  }
  return z;
}

Tensor Rk4Solver::integrate(const Tensor& z0, float t0, float t1, index_t steps,
                            const OdeRhs& f) const {
  obs::ScopedSpan span("ode.solve");
  span.attr("solver", "RK4");
  span.attr("steps", steps);
  const float h = step_size(t0, t1, steps);
  Tensor z = z0;
  // Stage-input tensors hoisted out of the loop: copy-assign into an
  // already-sized std::vector reuses its storage, so after the first step the
  // solver stops hitting the allocator for stage state.
  Tensor z2, z3, z4;
  for (index_t j = 0; j < steps; ++j) {
    const float t = t0 + h * static_cast<float>(j);
    Tensor k1 = f(z, t);
    z2 = z;
    z2.add_scaled(k1, 0.5f * h);
    Tensor k2 = f(z2, t + 0.5f * h);
    z3 = z;
    z3.add_scaled(k2, 0.5f * h);
    Tensor k3 = f(z3, t + 0.5f * h);
    z4 = z;
    z4.add_scaled(k3, h);
    Tensor k4 = f(z4, t + h);
    z.add_scaled(k1, h / 6.0f);
    z.add_scaled(k2, h / 3.0f);
    z.add_scaled(k3, h / 3.0f);
    z.add_scaled(k4, h / 6.0f);
  }
  return z;
}

Tensor DormandPrince45::integrate(const Tensor& z0, float t0, float t1, index_t /*steps*/,
                                  const OdeRhs& f) const {
  obs::ScopedSpan span("ode.solve");
  span.attr("solver", "DormandPrince45");
  // Dormand-Prince RK5(4)7M coefficients.
  static constexpr double c[7] = {0.0, 1.0 / 5, 3.0 / 10, 4.0 / 5, 8.0 / 9, 1.0, 1.0};
  static constexpr double a[7][6] = {
      {},
      {1.0 / 5},
      {3.0 / 40, 9.0 / 40},
      {44.0 / 45, -56.0 / 15, 32.0 / 9},
      {19372.0 / 6561, -25360.0 / 2187, 64448.0 / 6561, -212.0 / 729},
      {9017.0 / 3168, -355.0 / 33, 46732.0 / 5247, 49.0 / 176, -5103.0 / 18656},
      {35.0 / 384, 0.0, 500.0 / 1113, 125.0 / 192, -2187.0 / 6784, 11.0 / 84}};
  // 5th-order solution weights (same as a[6]); 4th-order embedded weights.
  static constexpr double b5[7] = {35.0 / 384,     0.0,  500.0 / 1113, 125.0 / 192,
                                   -2187.0 / 6784, 11.0 / 84, 0.0};
  static constexpr double b4[7] = {5179.0 / 57600,  0.0,         7571.0 / 16695, 393.0 / 640,
                                   -92097.0 / 339200, 187.0 / 2100, 1.0 / 40};

  stats_ = Stats{};
  Tensor z = z0;
  float t = t0;
  float h = (t1 - t0) * 0.1f;
  const float h_min = (t1 - t0) * 1e-6f;
  Tensor k[7];
  while (t < t1) {
    if (t + h > t1) h = t1 - t;
    for (int i = 0; i < 7; ++i) {
      Tensor zi = z;
      for (int j = 0; j < i; ++j) {
        if (a[i][j] != 0.0) zi.add_scaled(k[j], h * static_cast<float>(a[i][j]));
      }
      k[i] = f(zi, t + h * static_cast<float>(c[i]));
      ++stats_.rhs_evals;
    }
    Tensor z5 = z, z4 = z;
    for (int i = 0; i < 7; ++i) {
      if (b5[i] != 0.0) z5.add_scaled(k[i], h * static_cast<float>(b5[i]));
      if (b4[i] != 0.0) z4.add_scaled(k[i], h * static_cast<float>(b4[i]));
    }
    // Error norm relative to tolerance.
    double err = 0.0;
    for (index_t i = 0; i < z.numel(); ++i) {
      const double sc = atol_ + rtol_ * std::max(std::fabs(z5[i]), std::fabs(z[i]));
      const double e = (z5[i] - z4[i]) / sc;
      err += e * e;
    }
    err = std::sqrt(err / static_cast<double>(std::max<index_t>(z.numel(), 1)));
    if (err <= 1.0 || h <= h_min) {
      t += h;
      z = std::move(z5);
      ++stats_.accepted;
    } else {
      ++stats_.rejected;
    }
    const double factor = 0.9 * std::pow(std::max(err, 1e-10), -0.2);
    h *= static_cast<float>(std::clamp(factor, 0.2, 5.0));
    h = std::max(h, h_min);
  }
  span.attr("accepted", stats_.accepted);
  span.attr("rejected", stats_.rejected);
  span.attr("rhs_evals", stats_.rhs_evals);
  return z;
}

std::unique_ptr<OdeSolver> make_solver(SolverKind kind) {
  switch (kind) {
    case SolverKind::kEuler: return std::make_unique<EulerSolver>();
    case SolverKind::kMidpoint: return std::make_unique<MidpointSolver>();
    case SolverKind::kRk4: return std::make_unique<Rk4Solver>();
    case SolverKind::kDopri45: return std::make_unique<DormandPrince45>();
  }
  throw std::invalid_argument("make_solver: unknown kind");
}

std::string to_string(SolverKind kind) { return make_solver(kind)->name(); }

}  // namespace nodetr::ode
