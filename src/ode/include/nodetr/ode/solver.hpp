// Numerical ODE solvers (Sec. III-B, Eq. 13): fixed-step Euler, Midpoint,
// classic RK4, and adaptive Dormand-Prince 4(5).
//
// Solvers are stateless and integrate an arbitrary right-hand side
// f(z, t) -> dz/dt over [t0, t1]; states are Tensors of any shape.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "nodetr/tensor/tensor.hpp"

namespace nodetr::ode {

using nodetr::tensor::index_t;
using nodetr::tensor::Tensor;

using OdeRhs = std::function<Tensor(const Tensor&, float)>;

class OdeSolver {
 public:
  virtual ~OdeSolver() = default;

  /// Integrate z' = f(z, t) from (z0, t0) to t1 with `steps` fixed steps.
  [[nodiscard]] virtual Tensor integrate(const Tensor& z0, float t0, float t1, index_t steps,
                                         const OdeRhs& f) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// RHS evaluations per step (1 for Euler, 2 for midpoint, 4 for RK4) —
  /// the compute-vs-accuracy knob the ablation benches sweep.
  [[nodiscard]] virtual index_t rhs_evals_per_step() const = 0;
};

/// Forward Euler (Eq. 14): z_{j+1} = z_j + h f(z_j, t_j). One ResBlock
/// forward equals one Euler step — the observation Neural ODE builds on.
class EulerSolver final : public OdeSolver {
 public:
  Tensor integrate(const Tensor& z0, float t0, float t1, index_t steps,
                   const OdeRhs& f) const override;
  [[nodiscard]] std::string name() const override { return "Euler"; }
  [[nodiscard]] index_t rhs_evals_per_step() const override { return 1; }
};

/// Explicit midpoint (RK2).
class MidpointSolver final : public OdeSolver {
 public:
  Tensor integrate(const Tensor& z0, float t0, float t1, index_t steps,
                   const OdeRhs& f) const override;
  [[nodiscard]] std::string name() const override { return "Midpoint"; }
  [[nodiscard]] index_t rhs_evals_per_step() const override { return 2; }
};

/// Classic fourth-order Runge-Kutta.
class Rk4Solver final : public OdeSolver {
 public:
  Tensor integrate(const Tensor& z0, float t0, float t1, index_t steps,
                   const OdeRhs& f) const override;
  [[nodiscard]] std::string name() const override { return "RK4"; }
  [[nodiscard]] index_t rhs_evals_per_step() const override { return 4; }
};

/// Adaptive Dormand-Prince 4(5) with PI step-size control. `integrate`
/// ignores `steps` and uses the tolerances instead; `last_stats` reports the
/// work done.
class DormandPrince45 final : public OdeSolver {
 public:
  struct Stats {
    index_t accepted = 0;
    index_t rejected = 0;
    index_t rhs_evals = 0;
  };

  explicit DormandPrince45(float rtol = 1e-5f, float atol = 1e-7f)
      : rtol_(rtol), atol_(atol) {}

  Tensor integrate(const Tensor& z0, float t0, float t1, index_t steps,
                   const OdeRhs& f) const override;
  [[nodiscard]] std::string name() const override { return "DormandPrince45"; }
  [[nodiscard]] index_t rhs_evals_per_step() const override { return 6; }
  [[nodiscard]] const Stats& last_stats() const { return stats_; }

 private:
  float rtol_, atol_;
  mutable Stats stats_;
};

enum class SolverKind { kEuler, kMidpoint, kRk4, kDopri45 };

[[nodiscard]] std::unique_ptr<OdeSolver> make_solver(SolverKind kind);
[[nodiscard]] std::string to_string(SolverKind kind);

}  // namespace nodetr::ode
