// Adjoint-method training for OdeBlocks (Chen et al. [10], Sec. 2).
//
// Instead of caching the forward trajectory (discretize-then-optimize, as
// OdeBlock does), the adjoint method recovers gradients by integrating the
// augmented ODE backward in time:
//
//   da/dt = -a^T df/dz,        a(t1) = dL/dz(t1)
//   dL/dθ = -∫ a^T df/dθ dt
//
// Memory is O(1) in the number of solver steps — the property that lets
// Neural ODEs use arbitrarily fine integration during training. The price is
// a second (backward) integration pass plus re-evaluation of the dynamics.
//
// This implementation discretizes the backward integral with the same Euler
// grid as the forward pass, re-solving the state forward from the cached
// input to obtain z(t_j) at each step (so only the block input is stored).
// For the f(z) Jacobian-vector products it reuses the Module::backward
// machinery, so any dynamics module works unmodified.
#pragma once

#include "nodetr/ode/ode_block.hpp"

namespace nodetr::ode {

class AdjointOdeBlock final : public Module {
 public:
  AdjointOdeBlock(ModulePtr dynamics, index_t steps, float t0 = 0.0f, float t1 = 1.0f);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::vector<Module*> children() override { return {dynamics_.get()}; }
  [[nodiscard]] index_t steps() const { return steps_; }

 private:
  Tensor eval_dynamics(const Tensor& z, float t);
  /// Re-solve the forward Euler recursion up to step j from the cached input.
  [[nodiscard]] Tensor state_at(index_t j);

  ModulePtr dynamics_;
  index_t steps_;
  float t0_, t1_;
  Tensor input_;  ///< the ONLY cached tensor: O(1) trajectory memory
};

}  // namespace nodetr::ode
