// OdeBlock: the parameter-sharing building block of ODENets (Sec. III-B).
//
// An OdeBlock integrates z' = f(z, t) over [t0, t1] where f is an nn::Module
// (the "dynamics", e.g. BN-ReLU-DSC-BN-ReLU-DSC, or the MHSABlock of the
// proposed model). The same dynamics parameters are reused for every solver
// step — C ResBlocks collapse into one block evaluated C times, cutting
// parameters to 1/C.
//
// Training uses discretize-then-optimize through the Euler recursion
// (Eq. 14): forward caches the C intermediate states; backward re-runs the
// dynamics forward at each cached state (gradient checkpointing) and applies
//   g_j = g_{j+1} + f.backward(h * g_{j+1}).
// Higher-order solvers are supported for inference; calling backward after a
// non-Euler forward throws.
#pragma once

#include "nodetr/nn/module.hpp"
#include "nodetr/ode/solver.hpp"

namespace nodetr::ode {

using nodetr::nn::Module;
using nodetr::nn::ModulePtr;

/// Dynamics modules that depend explicitly on t implement this; the OdeBlock
/// calls set_time before every evaluation.
class TimeAware {
 public:
  virtual ~TimeAware() = default;
  virtual void set_time(float t) = 0;
};

class OdeBlock final : public Module {
 public:
  /// Takes ownership of the dynamics. `steps` is C, the iteration count.
  OdeBlock(ModulePtr dynamics, index_t steps, SolverKind solver = SolverKind::kEuler,
           float t0 = 0.0f, float t1 = 1.0f);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::vector<Module*> children() override { return {dynamics_.get()}; }

  [[nodiscard]] index_t steps() const { return steps_; }
  [[nodiscard]] SolverKind solver_kind() const { return kind_; }
  [[nodiscard]] Module& dynamics() { return *dynamics_; }
  [[nodiscard]] float t0() const { return t0_; }
  [[nodiscard]] float t1() const { return t1_; }

  /// Change the iteration count (inference-time accuracy/latency knob).
  void set_steps(index_t steps);
  void set_solver(SolverKind kind);

 private:
  Tensor eval_dynamics(const Tensor& z, float t);

  ModulePtr dynamics_;
  index_t steps_;
  SolverKind kind_;
  float t0_, t1_;
  std::unique_ptr<OdeSolver> solver_;
  std::vector<Tensor> states_;  ///< Euler trajectory cache for backward
  bool forward_was_euler_ = false;
};

}  // namespace nodetr::ode
