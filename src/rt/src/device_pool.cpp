#include "nodetr/rt/device_pool.hpp"

#include <stdexcept>

namespace nodetr::rt {

SimulatedDevice::SimulatedDevice(BoardConfig config, std::unique_ptr<hls::MhsaIpCore> ip)
    : config_(std::move(config)), clock_mhz_(config_.clock_mhz) {
  if (config_.name.empty()) {
    throw std::invalid_argument("SimulatedDevice: board name must be non-empty");
  }
  if (config_.clock_mhz <= 0.0) {
    throw std::invalid_argument("SimulatedDevice: clock_mhz must be > 0");
  }
  if (ip) {
    ddr_ = std::make_unique<DdrMemory>(config_.ddr_bytes);
    ddr_->set_fault_scope(config_.name);
    accel_ = std::make_unique<MhsaAccelerator>(std::move(ip), *ddr_, config_.profile());
  }
}

void SimulatedDevice::set_clock_mhz(double mhz) {
  if (mhz <= 0.0) throw std::invalid_argument("SimulatedDevice: clock_mhz must be > 0");
  clock_mhz_.store(mhz, std::memory_order_relaxed);
}

DevicePool::DevicePool(std::vector<BoardConfig> boards, IpFactory factory)
    : boards_(std::move(boards)), factory_(std::move(factory)) {
  if (boards_.empty()) throw std::invalid_argument("DevicePool: need at least one board");
  if (!factory_) throw std::invalid_argument("DevicePool: null IP factory");
  for (std::size_t i = 0; i < boards_.size(); ++i) {
    for (std::size_t j = i + 1; j < boards_.size(); ++j) {
      if (boards_[i].name == boards_[j].name) {
        throw std::invalid_argument("DevicePool: duplicate board name \"" + boards_[i].name +
                                    "\" (names key metrics and fault scopes)");
      }
    }
  }
  devices_.resize(boards_.size());
}

SimulatedDevice& DevicePool::device(std::size_t i) {
  if (i >= devices_.size()) throw std::out_of_range("DevicePool::device: bad index");
  if (!devices_[i]) return rebuild(i);
  return *devices_[i];
}

SimulatedDevice& DevicePool::rebuild(std::size_t i) {
  if (i >= devices_.size()) throw std::out_of_range("DevicePool::rebuild: bad index");
  devices_[i] = std::make_unique<SimulatedDevice>(boards_[i], factory_(i, boards_[i]));
  return *devices_[i];
}

}  // namespace nodetr::rt
