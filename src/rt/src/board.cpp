#include "nodetr/rt/board.hpp"

#include <chrono>
#include <cmath>
#include <stdexcept>

#include "nodetr/obs/obs.hpp"

namespace nodetr::rt {

namespace {
double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

TimingStats summarize(const std::vector<double>& samples_ms) {
  TimingStats s;
  if (samples_ms.empty()) return s;
  double sum = 0.0, mx = 0.0;
  for (double v : samples_ms) {
    sum += v;
    mx = std::max(mx, v);
  }
  s.mean_ms = sum / static_cast<double>(samples_ms.size());
  s.max_ms = mx;
  double var = 0.0;
  for (double v : samples_ms) var += (v - s.mean_ms) * (v - s.mean_ms);
  s.stddev_ms = std::sqrt(var / static_cast<double>(samples_ms.size()));
  return s;
}

OffloadedModel::OffloadedModel(models::OdeNet& model, hls::DataType dtype,
                               fx::QuantizationScheme scheme)
    : model_(model) {
  auto* block = model_.mhsa_block();
  if (block == nullptr) {
    throw std::invalid_argument("OffloadedModel: model has no MHSABlock (not a proposed model)");
  }
  auto& mhsa = block->mhsa();
  const auto& mc = mhsa.config();
  hls::MhsaDesignPoint point;
  point.dim = mc.dim;
  point.height = mc.height;
  point.width = mc.width;
  point.heads = mc.heads;
  point.dtype = dtype;
  point.scheme = scheme;
  auto ip = std::make_unique<hls::MhsaIpCore>(point, hls::MhsaWeights::from_module(mhsa));
  accel_ = std::make_unique<MhsaAccelerator>(std::move(ip), ddr_);

  mhsa.set_forward_override(
      [this](const Tensor& x, nodetr::nn::MultiHeadSelfAttention&) {
        const double t0 = now_ms();
        Tensor y = accel_->execute(x);
        override_wall_ms_ += now_ms() - t0;
        timing_.pl_ms += accel_->last_ms();
        return y;
      });
}

OffloadedModel::~OffloadedModel() {
  if (auto* block = model_.mhsa_block()) block->mhsa().clear_forward_override();
}

Tensor OffloadedModel::forward(const Tensor& batch) {
  obs::ScopedSpan span("rt.offload.forward");
  timing_ = InferenceTiming{};
  override_wall_ms_ = 0.0;
  const double t0 = now_ms();
  Tensor out = model_.forward(batch);
  const double wall = now_ms() - t0;
  timing_.ps_ms = std::max(wall - override_wall_ms_, 0.0);
  span.attr("ps_ms", timing_.ps_ms);
  span.attr("pl_ms", timing_.pl_ms);
  return out;
}

double timed_cpu_inference_ms(nodetr::nn::Module& model, const Tensor& batch) {
  const double t0 = now_ms();
  (void)model.forward(batch);
  return now_ms() - t0;
}

}  // namespace nodetr::rt
