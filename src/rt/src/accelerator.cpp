#include "nodetr/rt/accelerator.hpp"

#include <chrono>

#include "nodetr/obs/obs.hpp"

namespace nodetr::rt {

namespace {
constexpr std::uint64_t kDefaultInput = 0x0010'0000;
constexpr std::uint64_t kDefaultOutput = 0x0080'0000;

std::uint64_t addr64(const AxiLiteRegisterFile& regs, std::uint32_t lo, std::uint32_t hi) {
  return (static_cast<std::uint64_t>(regs.read(hi)) << 32) | regs.read(lo);
}
}  // namespace

MhsaAccelerator::MhsaAccelerator(std::unique_ptr<hls::MhsaIpCore> ip, DdrMemory& ddr,
                                 BoardProfile profile)
    : ip_(std::move(ip)),
      ddr_(ddr),
      profile_(std::move(profile)),
      dma_(profile_.dma_beat_bytes, profile_.dma_setup_cycles, profile_.fault_scope) {
  if (!ip_) throw std::invalid_argument("MhsaAccelerator: null IP core");
  if (profile_.clock_mhz <= 0.0) {
    throw std::invalid_argument("MhsaAccelerator: clock_mhz must be > 0");
  }
  regs_.set_fault_scope(profile_.fault_scope);
  regs_.on_write(MhsaRegs::kCtrl, [this](std::uint32_t v) {
    if (v & 1u) start();
  });
}

void MhsaAccelerator::start() {
  obs::ScopedSpan span("rt.mhsa_accel.start");
  regs_.write(MhsaRegs::kStatus, 0);
  const std::uint64_t in_addr = addr64(regs_, MhsaRegs::kInputAddrLo, MhsaRegs::kInputAddrHi);
  const std::uint64_t out_addr = addr64(regs_, MhsaRegs::kOutputAddrLo, MhsaRegs::kOutputAddrHi);
  const index_t batch = static_cast<index_t>(regs_.read(MhsaRegs::kBatch));
  if (batch < 1) {
    throw std::invalid_argument("MhsaAccelerator: BATCH register must be >= 1");
  }
  if (staged_shape_.rank() == 4 && staged_shape_.dim(0) != batch) {
    throw std::invalid_argument(
        "MhsaAccelerator: BATCH register (" + std::to_string(batch) +
        ") does not match the staged input batch (" + std::to_string(staged_shape_.dim(0)) + ")");
  }
  const auto& p = ip_->point();
  const Shape shape{batch, p.dim, p.height, p.width};

  dma_.reset();
  DeviceCounters delta;
  // Weight accounting is in *streamed* bytes: weight_dma_bytes() is already
  // the wire-actual payload (block-quantized codes + scales on a quantized
  // wire), so batch residency and wire compression compose — bytes_saved is
  // the re-streams residency avoided at the wire's width, and the gap to
  // weight_bytes_float is what the quantized wire itself saved.
  if (p.residency == hls::WeightResidency::kBatchResident) {
    // Weights in one descriptor for the whole batch, features per image.
    dma_.transfer(ip_->weight_dma_bytes());
    dma_.transfer(ip_->io_dma_bytes_per_image() * batch);
    delta.weight_bytes = ip_->weight_dma_bytes();
    delta.weight_bytes_float = ip_->weight_float_bytes();
    // The non-resident design would re-stream the parameters per image.
    delta.weight_bytes_saved = ip_->weight_dma_bytes() * (batch - 1);
  } else {
    // Weights + input stream in, output stream back (per image).
    dma_.transfer(ip_->dma_bytes_per_image() * batch);
    delta.weight_bytes = ip_->weight_dma_bytes() * batch;
    delta.weight_bytes_float = ip_->weight_float_bytes() * batch;
  }
  delta.dma_bytes_in = delta.weight_bytes + ip_->input_dma_bytes_per_image() * batch;
  delta.dma_bytes_out = ip_->output_dma_bytes_per_image() * batch;
  Tensor x = ddr_.read_tensor(in_addr, shape);
  Tensor y;
  try {
    // The IP model checks the process-wide "hls.ip.stall" site itself; the
    // board-scoped variant lets a fleet test hang exactly one device.
    if (!profile_.fault_scope.empty() &&
        fault::fire(("hls.ip.stall." + profile_.fault_scope).c_str())) {
      throw fault::IpStallFault("hls.ip.stall." + profile_.fault_scope);
    }
    y = ip_->run(x);
  } catch (const fault::IpStallFault&) {
    // The IP hung mid-run: DONE is never raised for this START. Latch the
    // stall so execute()'s deadline poll can diagnose it; the START write
    // itself completes normally, exactly as a real stalled device behaves.
    stalled_ = true;
    delta.stalls = 1;
    account(delta);
    static auto& stalls = obs::Registry::instance().counter("rt.mhsa_accel.stalls");
    stalls.add();
    return;
  }
  ddr_.write_tensor(out_addr, y);

  last_cycles_ = dma_.total_cycles() + ip_->last_cycles().total();
  total_cycles_ += last_cycles_;
  delta.starts = 1;
  delta.dma_cycles = dma_.total_cycles();
  delta.compute_cycles = ip_->last_cycles().total();
  account(delta);
  span.attr("batch", batch);
  span.attr("dma_cycles", dma_.total_cycles());
  span.attr("compute_cycles", ip_->last_cycles().total());
  span.attr("sim_ms", last_ms());
  static auto& starts = obs::Registry::instance().counter("rt.mhsa_accel.starts");
  static auto& dma_cycles = obs::Registry::instance().counter("rt.mhsa_accel.dma_cycles");
  static auto& compute_cycles = obs::Registry::instance().counter("rt.mhsa_accel.compute_cycles");
  starts.add();
  dma_cycles.add(dma_.total_cycles());
  compute_cycles.add(ip_->last_cycles().total());
  // Self-clearing start bit; done flag raised.
  regs_.write(MhsaRegs::kStatus, 1);
}

void MhsaAccelerator::account(const DeviceCounters& delta) {
  counters_ += delta;
  pending_ += delta;
  static auto& bytes_in = obs::Registry::instance().counter("rt.mhsa_accel.dma_bytes_in");
  static auto& bytes_out = obs::Registry::instance().counter("rt.mhsa_accel.dma_bytes_out");
  static auto& saved = obs::Registry::instance().counter("rt.mhsa_accel.weight_bytes_saved");
  static auto& stall_cycles = obs::Registry::instance().counter("rt.mhsa_accel.stall_cycles");
  bytes_in.add(delta.dma_bytes_in);
  bytes_out.add(delta.dma_bytes_out);
  saved.add(delta.weight_bytes_saved);
  stall_cycles.add(delta.stall_cycles);
  obs::Registry::instance().gauge("rt.mhsa_accel.utilization_pct").set(counters_.utilization_pct());
}

void MhsaAccelerator::swap_ip(std::unique_ptr<hls::MhsaIpCore> ip) {
  obs::ScopedSpan span("rt.mhsa_accel.swap_ip");
  if (!ip) throw std::invalid_argument("MhsaAccelerator::swap_ip: null IP core");
  const auto& old_p = ip_->point();
  const auto& new_p = ip->point();
  if (new_p.dim != old_p.dim || new_p.height != old_p.height || new_p.width != old_p.width ||
      new_p.heads != old_p.heads) {
    throw std::invalid_argument("MhsaAccelerator::swap_ip: geometry mismatch: staged " +
                                old_p.to_string() + " vs new " + new_p.to_string());
  }
  ip_ = std::move(ip);
  // The new bitstream starts clean: no staged input, no latched stall, no
  // batch-resident weights — the next START re-streams everything.
  staged_shape_ = Shape{std::initializer_list<index_t>{0}};
  stalled_ = false;
  static auto& swaps = obs::Registry::instance().counter("rt.mhsa_accel.ip_swaps");
  swaps.add();
}

Tensor MhsaAccelerator::execute(const Tensor& x) {
  obs::ScopedSpan span("rt.mhsa_accel.execute");
  if (x.rank() != 4) throw std::invalid_argument("MhsaAccelerator::execute: rank must be 4");
  const auto& p = ip_->point();
  if (x.dim(1) != p.dim || x.dim(2) != p.height || x.dim(3) != p.width) {
    throw std::invalid_argument("MhsaAccelerator::execute: input does not match design point " +
                                p.to_string());
  }
  staged_shape_ = x.shape();
  stalled_ = false;
  const auto poll_start = std::chrono::steady_clock::now();
  ddr_.write_tensor(kDefaultInput, x);
  regs_.write(MhsaRegs::kInputAddrLo, static_cast<std::uint32_t>(kDefaultInput));
  regs_.write(MhsaRegs::kInputAddrHi, static_cast<std::uint32_t>(kDefaultInput >> 32));
  regs_.write(MhsaRegs::kOutputAddrLo, static_cast<std::uint32_t>(kDefaultOutput));
  regs_.write(MhsaRegs::kOutputAddrHi, static_cast<std::uint32_t>(kDefaultOutput >> 32));
  regs_.write(MhsaRegs::kBatch, static_cast<std::uint32_t>(x.dim(0)));
  regs_.write(MhsaRegs::kCtrl, 1);
  // Check STATUS.DONE under the completion budget. START ran synchronously,
  // so a cleared DONE here means the IP stalled and will never answer: the
  // watchdog wait that a real driver would spend polling is fast-forwarded
  // (simulated time, not real time) and charged as the cycle budget.
  if (regs_.read(MhsaRegs::kStatus) != 1) {
    if (!stalled_) {
      // Not a latched stall — the device is misprogrammed or absent; keep
      // the pre-hardening fail-fast contract.
      throw std::runtime_error("MhsaAccelerator: device did not complete");
    }
    last_cycles_ = deadline_.sim_cycles;
    total_cycles_ += last_cycles_;
    DeviceCounters delta;
    delta.stall_cycles = deadline_.sim_cycles;
    account(delta);
    static auto& deadlines =
        obs::Registry::instance().counter("rt.mhsa_accel.deadline_exceeded");
    deadlines.add();
    obs::flight_event(0, obs::FlightKind::kDeadline, deadline_.sim_cycles);
    obs::FlightRecorder::instance().dump("deadline_exceeded");
    throw fault::DeadlineExceeded(
        "rt.mhsa_accel.deadline",
        "MhsaAccelerator::execute: device did not raise DONE within deadline (wall " +
            std::to_string(deadline_.wall_us) + " us, budget " +
            std::to_string(deadline_.sim_cycles) + " cycles)");
  }
  // Wall-clock budget: a START whose synchronous simulation outran the
  // configured wall deadline would have been abandoned by a real driver.
  if (deadline_.wall_us > 0) {
    const auto waited = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - poll_start);
    if (waited.count() > deadline_.wall_us) {
      static auto& deadlines =
          obs::Registry::instance().counter("rt.mhsa_accel.deadline_exceeded");
      deadlines.add();
      throw fault::DeadlineExceeded(
          "rt.mhsa_accel.deadline",
          "MhsaAccelerator::execute: completion exceeded wall deadline (" +
              std::to_string(waited.count()) + " us > " +
              std::to_string(deadline_.wall_us) + " us)");
    }
  }
  return ddr_.read_tensor(kDefaultOutput, x.shape());
}

}  // namespace nodetr::rt
