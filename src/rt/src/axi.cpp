#include "nodetr/rt/axi.hpp"

#include <cstring>

#include "nodetr/obs/metrics.hpp"

namespace nodetr::rt {

void DdrMemory::check(std::uint64_t addr, std::size_t bytes) const {
  if (addr + bytes > mem_.size()) {
    throw std::out_of_range("DdrMemory: access beyond end of memory");
  }
}

void DdrMemory::write(std::uint64_t addr, const void* src, std::size_t bytes) {
  check(addr, bytes);
  std::memcpy(mem_.data() + addr, src, bytes);
  if (bytes > 0 && fault::fire("rt.ddr.bitflip", fault_scope_)) {
    // The flipped bit lands in DDR (the write really was corrupted), but ECC
    // detects it and the access faults; a retry rewrites the clean payload.
    const std::uint64_t bit = fault::Injector::instance().draw("rt.ddr.bitflip") % (bytes * 8);
    mem_[addr + bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    static auto& ecc = obs::Registry::instance().counter("rt.ddr.ecc_errors");
    ecc.add();
    throw fault::DdrEccError(fault_scope_.empty() ? "rt.ddr.bitflip"
                                                  : "rt.ddr.bitflip." + fault_scope_);
  }
}

void DdrMemory::read(std::uint64_t addr, void* dst, std::size_t bytes) const {
  check(addr, bytes);
  std::memcpy(dst, mem_.data() + addr, bytes);
  if (bytes > 0 && fault::fire("rt.ddr.bitflip", fault_scope_)) {
    // Corrupt the returned buffer, then fault: the caller must discard it.
    const std::uint64_t bit = fault::Injector::instance().draw("rt.ddr.bitflip") % (bytes * 8);
    static_cast<std::uint8_t*>(dst)[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    static auto& ecc = obs::Registry::instance().counter("rt.ddr.ecc_errors");
    ecc.add();
    throw fault::DdrEccError(fault_scope_.empty() ? "rt.ddr.bitflip"
                                                  : "rt.ddr.bitflip." + fault_scope_);
  }
}

void DdrMemory::write_tensor(std::uint64_t addr, const Tensor& t) {
  write(addr, t.data(), static_cast<std::size_t>(t.numel()) * sizeof(float));
}

Tensor DdrMemory::read_tensor(std::uint64_t addr, Shape shape) const {
  Tensor t(std::move(shape));
  read(addr, t.data(), static_cast<std::size_t>(t.numel()) * sizeof(float));
  return t;
}

void AxiLiteRegisterFile::write(std::uint32_t offset, std::uint32_t value) {
  static auto& transactions = obs::Registry::instance().counter("rt.axi_lite.writes");
  transactions.add();
  if (fault::fire("rt.axi.nack", fault_scope_)) {
    throw fault::AxiNackError(fault_scope_.empty() ? "rt.axi.nack"
                                                   : "rt.axi.nack." + fault_scope_);
  }
  regs_[offset] = value;
  auto it = hooks_.find(offset);
  if (it != hooks_.end()) it->second(value);
}

std::uint32_t AxiLiteRegisterFile::read(std::uint32_t offset) const {
  static auto& transactions = obs::Registry::instance().counter("rt.axi_lite.reads");
  transactions.add();
  if (fault::fire("rt.axi.nack", fault_scope_)) {
    throw fault::AxiNackError(fault_scope_.empty() ? "rt.axi.nack"
                                                   : "rt.axi.nack." + fault_scope_);
  }
  auto it = regs_.find(offset);
  return it == regs_.end() ? 0 : it->second;
}

}  // namespace nodetr::rt
