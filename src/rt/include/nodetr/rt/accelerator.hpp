// MhsaAccelerator: the MHSA IP core wrapped with its driver-visible
// interface — AXI-Lite control registers and DMA-driven input/output through
// DDR (Fig. 5). The PS-side driver sequence is:
//   1. stage the input feature map in DDR at INPUT_ADDR
//   2. program INPUT_ADDR / OUTPUT_ADDR / BATCH registers
//   3. write CTRL.START; the device DMAs input+weights, runs the IP,
//      DMAs the output back, and raises STATUS.DONE
//   4. poll STATUS, then read the output tensor from DDR
// Simulated time = DMA cycles + IP cycles, at the 200 MHz PL clock.
#pragma once

#include <memory>

#include "nodetr/hls/mhsa_ip.hpp"
#include "nodetr/rt/axi.hpp"

namespace nodetr::rt {

/// Register map (AXI-Lite offsets).
struct MhsaRegs {
  static constexpr std::uint32_t kCtrl = 0x00;        ///< bit0: start (self-clearing)
  static constexpr std::uint32_t kStatus = 0x04;      ///< bit0: done
  static constexpr std::uint32_t kInputAddrLo = 0x10;
  static constexpr std::uint32_t kInputAddrHi = 0x14;
  static constexpr std::uint32_t kOutputAddrLo = 0x18;
  static constexpr std::uint32_t kOutputAddrHi = 0x1c;
  static constexpr std::uint32_t kBatch = 0x20;
};

/// Completion budget for one execute(): wall-clock time the driver will poll
/// STATUS.DONE, and the simulated cycles charged when the budget expires
/// (the cycles the PS burnt waiting on a device that never answered).
/// A field of 0 disables that bound.
struct ExecDeadline {
  std::int64_t wall_us = 200'000;        ///< 200 ms of real polling
  std::int64_t sim_cycles = 40'000'000;  ///< 200 ms at the 200 MHz PL clock

  /// This deadline with the wall budget tightened to at most `wall_us`
  /// (ignored when <= 0). The serving engine uses this to bound an execute
  /// by the submitting client's remaining deadline budget: there is no point
  /// polling a device past the moment the client gives up.
  [[nodiscard]] ExecDeadline clamped_to_wall(std::int64_t wall_us_cap) const {
    ExecDeadline d = *this;
    if (wall_us_cap > 0 && (d.wall_us <= 0 || wall_us_cap < d.wall_us)) {
      d.wall_us = wall_us_cap;
    }
    return d;
  }
};

class MhsaAccelerator {
 public:
  MhsaAccelerator(std::unique_ptr<hls::MhsaIpCore> ip, DdrMemory& ddr);

  [[nodiscard]] AxiLiteRegisterFile& regs() { return regs_; }
  [[nodiscard]] const hls::MhsaIpCore& ip() const { return *ip_; }

  /// Cycles consumed by the last START (DMA + compute).
  [[nodiscard]] std::int64_t last_cycles() const { return last_cycles_; }
  /// Total cycles over the accelerator's lifetime.
  [[nodiscard]] std::int64_t total_cycles() const { return total_cycles_; }
  /// Simulated milliseconds at the 200 MHz PL clock.
  [[nodiscard]] double last_ms() const { return last_cycles_ * hls::CycleModel::kClockNs * 1e-6; }

  /// Convenience driver: stages `x` (B, D, H, W), runs the register
  /// sequence, and returns the output read back from DDR. Throws
  /// std::invalid_argument when `x` does not match the IP's design point.
  /// START validates the programmed BATCH register against the staged shape,
  /// so a driver that reprograms BATCH inconsistently faults instead of
  /// silently reading a mis-sized feature map out of DDR.
  ///
  /// Bounded completion: execute() polls STATUS.DONE for at most the
  /// configured ExecDeadline. A device that never raises DONE (a stalled IP)
  /// surfaces as fault::DeadlineExceeded — a typed, transient error — with
  /// the simulated-cycle budget charged to last_cycles(). DMA / ECC / NACK
  /// faults propagate as their own typed transient errors.
  [[nodiscard]] Tensor execute(const Tensor& x);

  void set_deadline(ExecDeadline deadline) { deadline_ = deadline; }
  [[nodiscard]] const ExecDeadline& deadline() const { return deadline_; }

 private:
  void start();

  std::unique_ptr<hls::MhsaIpCore> ip_;
  DdrMemory& ddr_;
  AxiLiteRegisterFile regs_;
  AxiStreamDma dma_;
  ExecDeadline deadline_;
  std::int64_t last_cycles_ = 0;
  std::int64_t total_cycles_ = 0;
  bool stalled_ = false;  ///< latched injected stall: DONE will never rise
  Shape staged_shape_{std::initializer_list<index_t>{0}};
};

}  // namespace nodetr::rt
