// MhsaAccelerator: the MHSA IP core wrapped with its driver-visible
// interface — AXI-Lite control registers and DMA-driven input/output through
// DDR (Fig. 5). The PS-side driver sequence is:
//   1. stage the input feature map in DDR at INPUT_ADDR
//   2. program INPUT_ADDR / OUTPUT_ADDR / BATCH registers
//   3. write CTRL.START; the device DMAs input+weights, runs the IP,
//      DMAs the output back, and raises STATUS.DONE
//   4. poll STATUS, then read the output tensor from DDR
// Simulated time = DMA cycles + IP cycles, at the 200 MHz PL clock.
#pragma once

#include <memory>

#include "nodetr/hls/mhsa_ip.hpp"
#include "nodetr/rt/axi.hpp"

namespace nodetr::rt {

/// Register map (AXI-Lite offsets).
struct MhsaRegs {
  static constexpr std::uint32_t kCtrl = 0x00;        ///< bit0: start (self-clearing)
  static constexpr std::uint32_t kStatus = 0x04;      ///< bit0: done
  static constexpr std::uint32_t kInputAddrLo = 0x10;
  static constexpr std::uint32_t kInputAddrHi = 0x14;
  static constexpr std::uint32_t kOutputAddrLo = 0x18;
  static constexpr std::uint32_t kOutputAddrHi = 0x1c;
  static constexpr std::uint32_t kBatch = 0x20;
};

/// Completion budget for one execute(): wall-clock time the driver will poll
/// STATUS.DONE, and the simulated cycles charged when the budget expires
/// (the cycles the PS burnt waiting on a device that never answered).
/// A field of 0 disables that bound.
struct ExecDeadline {
  std::int64_t wall_us = 200'000;        ///< 200 ms of real polling
  std::int64_t sim_cycles = 40'000'000;  ///< 200 ms at the 200 MHz PL clock

  /// This deadline with the wall budget tightened to at most `wall_us`
  /// (ignored when <= 0). The serving engine uses this to bound an execute
  /// by the submitting client's remaining deadline budget: there is no point
  /// polling a device past the moment the client gives up.
  [[nodiscard]] ExecDeadline clamped_to_wall(std::int64_t wall_us_cap) const {
    ExecDeadline d = *this;
    if (wall_us_cap > 0 && (d.wall_us <= 0 || wall_us_cap < d.wall_us)) {
      d.wall_us = wall_us_cap;
    }
    return d;
  }
};

/// Device performance counters, accumulated per START / deadline event —
/// the per-resource accounting the paper's evaluation is built on, exported
/// so `EngineStats` can report it per backend. All quantities are simulated
/// (PL-clock cycles, HP-port bytes), not host wall time.
struct DeviceCounters {
  std::int64_t starts = 0;              ///< STARTs that raised DONE
  std::int64_t stalls = 0;              ///< STARTs that hung (injected IP stall)
  std::int64_t dma_bytes_in = 0;        ///< host -> device (weights + input maps)
  std::int64_t dma_bytes_out = 0;       ///< device -> host (output maps)
  std::int64_t weight_bytes = 0;        ///< parameter share of dma_bytes_in, as streamed
                                        ///< (quantized wire payload, not logical words)
  std::int64_t weight_bytes_float = 0;  ///< the same parameters at float32 width — the
                                        ///< word32-wire cost the quantized wire avoided
  std::int64_t weight_bytes_saved = 0;  ///< weight re-streams avoided by batch residency,
                                        ///< in streamed (wire) bytes
  std::int64_t dma_cycles = 0;          ///< HP-port transfer time
  std::int64_t compute_cycles = 0;      ///< IP datapath time
  std::int64_t stall_cycles = 0;        ///< deadline budget burnt polling a hung device

  [[nodiscard]] std::int64_t total_cycles() const {
    return dma_cycles + compute_cycles + stall_cycles;
  }
  /// Share of device time spent computing (vs moving data or stalled),
  /// in percent. 0 when the device never ran.
  [[nodiscard]] double utilization_pct() const {
    const std::int64_t t = total_cycles();
    return t == 0 ? 0.0 : 100.0 * static_cast<double>(compute_cycles) / static_cast<double>(t);
  }

  DeviceCounters& operator+=(const DeviceCounters& o) {
    starts += o.starts;
    stalls += o.stalls;
    dma_bytes_in += o.dma_bytes_in;
    dma_bytes_out += o.dma_bytes_out;
    weight_bytes += o.weight_bytes;
    weight_bytes_float += o.weight_bytes_float;
    weight_bytes_saved += o.weight_bytes_saved;
    dma_cycles += o.dma_cycles;
    compute_cycles += o.compute_cycles;
    stall_cycles += o.stall_cycles;
    return *this;
  }
};

/// Per-board physical parameters: the PL clock the cycle counts are paid at,
/// the DMA port geometry, and the fault scope (board name) whose scoped
/// sites — "rt.dma.error.<scope>", "rt.ddr.bitflip.<scope>",
/// "rt.axi.nack.<scope>", "hls.ip.stall.<scope>" — this board's interconnect
/// checks in addition to the process-wide ones. Defaults reproduce the
/// paper's single ZCU104 board exactly.
struct BoardProfile {
  double clock_mhz = 200.0;
  index_t dma_beat_bytes = AxiStreamDma::kBeatBytes;
  std::int64_t dma_setup_cycles = AxiStreamDma::kSetupCycles;
  std::string fault_scope;  ///< empty = unscoped (single-board behavior)
};

class MhsaAccelerator {
 public:
  MhsaAccelerator(std::unique_ptr<hls::MhsaIpCore> ip, DdrMemory& ddr,
                  BoardProfile profile = {});

  [[nodiscard]] AxiLiteRegisterFile& regs() { return regs_; }
  [[nodiscard]] const hls::MhsaIpCore& ip() const { return *ip_; }
  [[nodiscard]] const BoardProfile& profile() const { return profile_; }

  /// Cycles consumed by the last START (DMA + compute).
  [[nodiscard]] std::int64_t last_cycles() const { return last_cycles_; }
  /// Total cycles over the accelerator's lifetime.
  [[nodiscard]] std::int64_t total_cycles() const { return total_cycles_; }
  /// Simulated milliseconds at this board's PL clock.
  [[nodiscard]] double last_ms() const {
    return static_cast<double>(last_cycles_) / profile_.clock_mhz * 1e-3;
  }

  /// Convenience driver: stages `x` (B, D, H, W), runs the register
  /// sequence, and returns the output read back from DDR. Throws
  /// std::invalid_argument when `x` does not match the IP's design point.
  /// START validates the programmed BATCH register against the staged shape,
  /// so a driver that reprograms BATCH inconsistently faults instead of
  /// silently reading a mis-sized feature map out of DDR.
  ///
  /// Bounded completion: execute() polls STATUS.DONE for at most the
  /// configured ExecDeadline. A device that never raises DONE (a stalled IP)
  /// surfaces as fault::DeadlineExceeded — a typed, transient error — with
  /// the simulated-cycle budget charged to last_cycles(). DMA / ECC / NACK
  /// faults propagate as their own typed transient errors.
  [[nodiscard]] Tensor execute(const Tensor& x);

  void set_deadline(ExecDeadline deadline) { deadline_ = deadline; }
  [[nodiscard]] const ExecDeadline& deadline() const { return deadline_; }

  /// Re-stage the board with a new IP core image — the device half of a model
  /// hot-swap. The register file, DDR mapping, cycle accounting, and counters
  /// survive; the staged input shape is invalidated and any batch-resident
  /// weights are implicitly dropped, so the next START re-streams the new
  /// version's parameters over the configured weight wire. A latched IP stall
  /// is cleared (re-programming the PL resets the hung core). The new core
  /// must match the old one's geometry (dim/height/width/heads); a mismatch
  /// throws std::invalid_argument and leaves the old core serving. Call only
  /// from the thread driving the device, between executes.
  void swap_ip(std::unique_ptr<hls::MhsaIpCore> ip);

  /// Lifetime performance counters (see DeviceCounters).
  [[nodiscard]] const DeviceCounters& counters() const { return counters_; }
  /// Counters accumulated since the previous take_counters() call — the
  /// delta drain the serving engine absorbs into its per-backend totals.
  /// Call only from the thread driving the device (not thread-safe).
  [[nodiscard]] DeviceCounters take_counters() {
    DeviceCounters delta = pending_;
    pending_ = DeviceCounters{};
    return delta;
  }

 private:
  void start();

  std::unique_ptr<hls::MhsaIpCore> ip_;
  DdrMemory& ddr_;
  BoardProfile profile_;
  AxiLiteRegisterFile regs_;
  AxiStreamDma dma_;
  /// Merge `delta` into both counter accumulators and mirror it to the obs
  /// registry (counters + utilization gauge).
  void account(const DeviceCounters& delta);

  ExecDeadline deadline_;
  std::int64_t last_cycles_ = 0;
  std::int64_t total_cycles_ = 0;
  DeviceCounters counters_;  ///< lifetime totals
  DeviceCounters pending_;   ///< since the last take_counters()
  bool stalled_ = false;  ///< latched injected stall: DONE will never rise
  Shape staged_shape_{std::initializer_list<index_t>{0}};
};

}  // namespace nodetr::rt
