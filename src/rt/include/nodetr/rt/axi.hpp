// Board-level interconnect models (Fig. 5): DDR memory, the 32-bit HP0
// AXI4-Stream DMA path, and an AXI-Lite register file for memory-mapped IP
// control.
//
// Fault sites (see nodetr::fault): "rt.ddr.bitflip" corrupts one bit of the
// payload and raises DdrEccError (the ECC-protected DDR detects it),
// "rt.dma.error" makes a DMA transfer fail with DmaTransferError, and
// "rt.axi.nack" makes a register access fail with AxiNackError. All three
// are transient: re-issuing the operation retransfers clean data.
//
// Multi-board: each component can carry a fault *scope* (the board name), in
// which case it also checks the scoped site — "rt.dma.error.<scope>" etc. —
// so a fleet test can storm one board's interconnect while its siblings stay
// clean, deterministically (see fault::fire(site, scope)).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "nodetr/fault/fault.hpp"
#include "nodetr/tensor/tensor.hpp"

namespace nodetr::rt {

using nodetr::tensor::index_t;
using nodetr::tensor::Shape;
using nodetr::tensor::Tensor;

/// Shared DDR visible to both PS and PL.
class DdrMemory {
 public:
  explicit DdrMemory(std::size_t bytes = 64 << 20) : mem_(bytes, 0) {}

  [[nodiscard]] std::size_t size() const { return mem_.size(); }

  void write(std::uint64_t addr, const void* src, std::size_t bytes);
  void read(std::uint64_t addr, void* dst, std::size_t bytes) const;

  /// Stage a float tensor's payload at `addr`.
  void write_tensor(std::uint64_t addr, const Tensor& t);
  /// Read `shape.numel()` floats from `addr`.
  [[nodiscard]] Tensor read_tensor(std::uint64_t addr, Shape shape) const;

  /// Board name whose scoped bitflip site ("rt.ddr.bitflip.<scope>") this
  /// memory also checks; empty (the default) keeps the process-wide site only.
  void set_fault_scope(std::string scope) { fault_scope_ = std::move(scope); }
  [[nodiscard]] const std::string& fault_scope() const { return fault_scope_; }

 private:
  void check(std::uint64_t addr, std::size_t bytes) const;
  std::vector<std::uint8_t> mem_;
  std::string fault_scope_;
};

/// DMA transfer cost model for a high-performance AXI port: a fixed
/// descriptor-setup latency plus one beat per PL cycle. Defaults model the
/// paper's 32-bit HP0 port; a DevicePool board can widen the beat or change
/// the setup cost to give each simulated board its own DMA bandwidth.
class AxiStreamDma {
 public:
  static constexpr std::int64_t kSetupCycles = 120;  ///< descriptor + trigger
  static constexpr index_t kBeatBytes = 4;           ///< 32-bit data width

  AxiStreamDma() = default;
  AxiStreamDma(index_t beat_bytes, std::int64_t setup_cycles, std::string fault_scope = {})
      : beat_bytes_(beat_bytes), setup_cycles_(setup_cycles),
        fault_scope_(std::move(fault_scope)) {
    if (beat_bytes_ < 1 || setup_cycles_ < 0) {
      throw std::invalid_argument("AxiStreamDma: beat_bytes must be >= 1, setup_cycles >= 0");
    }
  }

  /// Cycles to move `bytes` in one direction over the default HP0 port.
  [[nodiscard]] static std::int64_t transfer_cycles(std::int64_t bytes) {
    return kSetupCycles + (bytes + kBeatBytes - 1) / kBeatBytes;
  }
  /// Cycles to move `bytes` over *this* port's beat width.
  [[nodiscard]] std::int64_t cycles_for(std::int64_t bytes) const {
    return setup_cycles_ + (bytes + beat_bytes_ - 1) / beat_bytes_;
  }
  [[nodiscard]] index_t beat_bytes() const { return beat_bytes_; }

  /// Accumulated cycles of all transfers issued through this engine. Throws
  /// fault::DmaTransferError when the "rt.dma.error" site (or its scoped
  /// variant) fires; the setup cycles are still accounted (the descriptor
  /// was issued before it failed).
  void transfer(std::int64_t bytes) {
    if (fault::fire("rt.dma.error", fault_scope_)) {
      total_cycles_ += setup_cycles_;
      throw fault::DmaTransferError(fault_scope_.empty() ? "rt.dma.error"
                                                         : "rt.dma.error." + fault_scope_);
    }
    total_cycles_ += cycles_for(bytes);
  }
  [[nodiscard]] std::int64_t total_cycles() const { return total_cycles_; }
  void reset() { total_cycles_ = 0; }

 private:
  index_t beat_bytes_ = kBeatBytes;
  std::int64_t setup_cycles_ = kSetupCycles;
  std::string fault_scope_;
  std::int64_t total_cycles_ = 0;
};

/// AXI-Lite register file accessed via the HPM0 port (memory-mapped I/O).
class AxiLiteRegisterFile {
 public:
  void write(std::uint32_t offset, std::uint32_t value);
  [[nodiscard]] std::uint32_t read(std::uint32_t offset) const;

  /// Register a write hook fired when `offset` is written (e.g. CTRL.START).
  using WriteHook = std::function<void(std::uint32_t value)>;
  void on_write(std::uint32_t offset, WriteHook hook) { hooks_[offset] = std::move(hook); }

  /// Board name whose scoped NACK site ("rt.axi.nack.<scope>") this register
  /// file also checks.
  void set_fault_scope(std::string scope) { fault_scope_ = std::move(scope); }

 private:
  std::map<std::uint32_t, std::uint32_t> regs_;
  std::map<std::uint32_t, WriteHook> hooks_;
  std::string fault_scope_;
};

}  // namespace nodetr::rt
