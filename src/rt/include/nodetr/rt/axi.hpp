// Board-level interconnect models (Fig. 5): DDR memory, the 32-bit HP0
// AXI4-Stream DMA path, and an AXI-Lite register file for memory-mapped IP
// control.
//
// Fault sites (see nodetr::fault): "rt.ddr.bitflip" corrupts one bit of the
// payload and raises DdrEccError (the ECC-protected DDR detects it),
// "rt.dma.error" makes a DMA transfer fail with DmaTransferError, and
// "rt.axi.nack" makes a register access fail with AxiNackError. All three
// are transient: re-issuing the operation retransfers clean data.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <stdexcept>
#include <vector>

#include "nodetr/fault/fault.hpp"
#include "nodetr/tensor/tensor.hpp"

namespace nodetr::rt {

using nodetr::tensor::index_t;
using nodetr::tensor::Shape;
using nodetr::tensor::Tensor;

/// Shared DDR visible to both PS and PL.
class DdrMemory {
 public:
  explicit DdrMemory(std::size_t bytes = 64 << 20) : mem_(bytes, 0) {}

  [[nodiscard]] std::size_t size() const { return mem_.size(); }

  void write(std::uint64_t addr, const void* src, std::size_t bytes);
  void read(std::uint64_t addr, void* dst, std::size_t bytes) const;

  /// Stage a float tensor's payload at `addr`.
  void write_tensor(std::uint64_t addr, const Tensor& t);
  /// Read `shape.numel()` floats from `addr`.
  [[nodiscard]] Tensor read_tensor(std::uint64_t addr, Shape shape) const;

 private:
  void check(std::uint64_t addr, std::size_t bytes) const;
  std::vector<std::uint8_t> mem_;
};

/// DMA transfer cost model for the 32-bit high-performance (HP0) port:
/// a fixed descriptor-setup latency plus one beat (4 bytes) per PL cycle.
class AxiStreamDma {
 public:
  static constexpr std::int64_t kSetupCycles = 120;  ///< descriptor + trigger
  static constexpr index_t kBeatBytes = 4;           ///< 32-bit data width

  /// Cycles to move `bytes` in one direction.
  [[nodiscard]] static std::int64_t transfer_cycles(std::int64_t bytes) {
    return kSetupCycles + (bytes + kBeatBytes - 1) / kBeatBytes;
  }

  /// Accumulated cycles of all transfers issued through this engine. Throws
  /// fault::DmaTransferError when the "rt.dma.error" site fires; the setup
  /// cycles are still accounted (the descriptor was issued before it failed).
  void transfer(std::int64_t bytes) {
    if (fault::fire("rt.dma.error")) {
      total_cycles_ += kSetupCycles;
      throw fault::DmaTransferError("rt.dma.error");
    }
    total_cycles_ += transfer_cycles(bytes);
  }
  [[nodiscard]] std::int64_t total_cycles() const { return total_cycles_; }
  void reset() { total_cycles_ = 0; }

 private:
  std::int64_t total_cycles_ = 0;
};

/// AXI-Lite register file accessed via the HPM0 port (memory-mapped I/O).
class AxiLiteRegisterFile {
 public:
  void write(std::uint32_t offset, std::uint32_t value);
  [[nodiscard]] std::uint32_t read(std::uint32_t offset) const;

  /// Register a write hook fired when `offset` is written (e.g. CTRL.START).
  using WriteHook = std::function<void(std::uint32_t value)>;
  void on_write(std::uint32_t offset, WriteHook hook) { hooks_[offset] = std::move(hook); }

 private:
  std::map<std::uint32_t, std::uint32_t> regs_;
  std::map<std::uint32_t, WriteHook> hooks_;
};

}  // namespace nodetr::rt
