// HW/SW co-design runtime (Fig. 5): run the proposed model with its MHSA
// offloaded to the simulated FPGA accelerator.
//
// Timing semantics for the Table IX experiment:
//   - PS time is the measured host wall-clock of everything executed in
//     software (stem, ODE blocks, convolutions, head), with the functional
//     simulation cost of the IP subtracted — the simulator's own compute
//     must not be billed as board time;
//   - PL time is the analytic accelerator time: DMA beats + IP cycles at
//     the 200 MHz PL clock.
#pragma once

#include <memory>

#include "nodetr/models/odenet.hpp"
#include "nodetr/rt/accelerator.hpp"

namespace nodetr::rt {

struct InferenceTiming {
  double ps_ms = 0.0;  ///< measured software milliseconds
  double pl_ms = 0.0;  ///< simulated accelerator milliseconds (DMA + IP)
  [[nodiscard]] double total_ms() const { return ps_ms + pl_ms; }
};

/// Mean / max / standard deviation across repeated runs (Table IX format).
struct TimingStats {
  double mean_ms = 0.0;
  double max_ms = 0.0;
  double stddev_ms = 0.0;
};

[[nodiscard]] TimingStats summarize(const std::vector<double>& samples_ms);

/// Scoped offload: on construction, routes the proposed model's MHSA through
/// a freshly built accelerator (weights extracted from the trained module);
/// on destruction, restores pure-software execution.
class OffloadedModel {
 public:
  /// `dtype` selects the float or fixed IP; `scheme` the fixed formats.
  OffloadedModel(models::OdeNet& model, hls::DataType dtype,
                 fx::QuantizationScheme scheme = fx::scheme_32_24());
  ~OffloadedModel();

  OffloadedModel(const OffloadedModel&) = delete;
  OffloadedModel& operator=(const OffloadedModel&) = delete;

  /// Inference with PS/PL time accounting.
  [[nodiscard]] Tensor forward(const Tensor& batch);

  [[nodiscard]] const InferenceTiming& last_timing() const { return timing_; }
  [[nodiscard]] MhsaAccelerator& accelerator() { return *accel_; }

 private:
  models::OdeNet& model_;
  DdrMemory ddr_;
  std::unique_ptr<MhsaAccelerator> accel_;
  InferenceTiming timing_;
  double override_wall_ms_ = 0.0;
};

/// Pure-software timed inference (the CPU row of Table IX).
[[nodiscard]] double timed_cpu_inference_ms(nodetr::nn::Module& model, const Tensor& batch);

}  // namespace nodetr::rt
