// rt::DevicePool — N simulated FPGA boards behind one runtime.
//
//   DevicePool
//     ├── SimulatedDevice "dev0"  (BoardConfig: clock, DMA beat, DDR size)
//     │      └── DdrMemory + MhsaAccelerator (own AXI-Lite regs + DMA port,
//     │          fault scope "dev0" → rt.dma.error.dev0, rt.ddr.bitflip.dev0,
//     │          rt.axi.nack.dev0, hls.ip.stall.dev0)
//     ├── SimulatedDevice "dev1"  (possibly a different design point / clock)
//     └── ...
//
// Each board is fully isolated: its own DDR, its own DMA cycle accounting,
// its own DeviceCounters, and its own deterministic fault stream (the scoped
// sites derive independent PRNG streams from (seed, site name) — see
// nodetr::fault). A board whose IP factory returns nullptr is a host-only
// board (CPU datapath, no accelerator model) — the serving engine runs such
// devices through its in-process float replica.
//
// The pool builds boards lazily and can rebuild one in place (`rebuild`),
// which is how the serving engine respawns a device after a worker crash:
// fresh DDR, fresh accelerator, counters at zero — exactly like the initial
// bring-up. Different board slots may be driven (and rebuilt) by different
// threads, but each slot must only ever be touched by its owning thread.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "nodetr/rt/accelerator.hpp"

namespace nodetr::rt {

/// Static description of one simulated board in the pool.
struct BoardConfig {
  std::string name = "dev0";  ///< metrics label AND fault scope
  double clock_mhz = 200.0;   ///< PL clock the board's cycle counts are paid at
  index_t dma_beat_bytes = AxiStreamDma::kBeatBytes;
  std::int64_t dma_setup_cycles = AxiStreamDma::kSetupCycles;
  std::size_t ddr_bytes = 64u << 20;

  [[nodiscard]] BoardProfile profile() const {
    BoardProfile p;
    p.clock_mhz = clock_mhz;
    p.dma_beat_bytes = dma_beat_bytes;
    p.dma_setup_cycles = dma_setup_cycles;
    p.fault_scope = name;
    return p;
  }
};

/// One simulated board: the accelerator plus the knobs the cluster router
/// costs it by. `clock_mhz` is atomic so a test can slow a board 10× at
/// runtime (thermal throttling, clock scaling) and watch the router
/// rebalance — the change affects cycles_to_us() conversions immediately.
class SimulatedDevice {
 public:
  /// `ip` may be null: a host-only board with no accelerator model.
  SimulatedDevice(BoardConfig config, std::unique_ptr<hls::MhsaIpCore> ip);

  [[nodiscard]] const BoardConfig& config() const { return config_; }
  [[nodiscard]] const std::string& name() const { return config_.name; }

  [[nodiscard]] double clock_mhz() const {
    return clock_mhz_.load(std::memory_order_relaxed);
  }
  /// Runtime clock change (simulated throttling). Affects cycles_to_us();
  /// the accelerator's own cycle *counts* are clock-independent.
  void set_clock_mhz(double mhz);
  /// Simulated µs this board takes to burn `cycles` at its current clock.
  [[nodiscard]] double cycles_to_us(std::int64_t cycles) const {
    return static_cast<double>(cycles) / clock_mhz();
  }

  [[nodiscard]] bool has_accelerator() const { return accel_ != nullptr; }
  [[nodiscard]] MhsaAccelerator& accelerator() { return *accel_; }
  [[nodiscard]] DdrMemory& ddr() { return *ddr_; }

 private:
  BoardConfig config_;
  std::atomic<double> clock_mhz_;
  std::unique_ptr<DdrMemory> ddr_;         ///< null for host-only boards
  std::unique_ptr<MhsaAccelerator> accel_; ///< null for host-only boards
};

/// Fixed-size pool of simulated boards. Boards are built on first access via
/// the IpFactory (which decides each board's design point / dtype, or
/// returns nullptr for a host-only board) and rebuilt in place on demand.
class DevicePool {
 public:
  /// Builds the IP core for board `index` (or nullptr for host-only).
  using IpFactory =
      std::function<std::unique_ptr<hls::MhsaIpCore>(std::size_t index, const BoardConfig&)>;

  DevicePool(std::vector<BoardConfig> boards, IpFactory factory);

  [[nodiscard]] std::size_t size() const { return boards_.size(); }
  [[nodiscard]] const std::vector<BoardConfig>& boards() const { return boards_; }

  /// The board in slot `i`, built on first access. Only the slot's owning
  /// thread may call this (slots are independent; the pool adds no locking).
  [[nodiscard]] SimulatedDevice& device(std::size_t i);
  /// Tear down and re-create board `i` (crash respawn): fresh DDR, fresh
  /// accelerator, counters at zero. Same ownership rule as device().
  SimulatedDevice& rebuild(std::size_t i);

 private:
  std::vector<BoardConfig> boards_;
  IpFactory factory_;
  std::vector<std::unique_ptr<SimulatedDevice>> devices_;
};

}  // namespace nodetr::rt
