#include "nodetr/obs/flight_recorder.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <sstream>

#include "nodetr/obs/metrics.hpp"
#include "nodetr/obs/trace.hpp"

namespace nodetr::obs {

namespace {

std::atomic<std::uint64_t> g_next_trace_id{1};

/// Chained std::terminate handler: flush the flight recorder before dying so
/// an uncaught exception in a serving run still leaves a timeline behind.
std::terminate_handler g_prev_terminate = nullptr;

[[noreturn]] void terminate_with_dump() {
  FlightRecorder::instance().dump("terminate");
  if (g_prev_terminate != nullptr) g_prev_terminate();
  std::abort();
}

thread_local void* t_ring = nullptr;  ///< FlightRecorder::Ring* of this thread

}  // namespace

const char* to_string(FlightKind kind) {
  switch (kind) {
    case FlightKind::kSubmit: return "submit";
    case FlightKind::kEnqueued: return "enqueued";
    case FlightKind::kRouted: return "routed";
    case FlightKind::kRejected: return "rejected";
    case FlightKind::kShed: return "shed";
    case FlightKind::kExpired: return "expired";
    case FlightKind::kDequeued: return "dequeued";
    case FlightKind::kCarried: return "carried";
    case FlightKind::kBatchJoin: return "batch_join";
    case FlightKind::kExecBegin: return "exec_begin";
    case FlightKind::kExecEnd: return "exec_end";
    case FlightKind::kRetry: return "retry";
    case FlightKind::kFallback: return "fallback";
    case FlightKind::kBreakerOpen: return "breaker_open";
    case FlightKind::kBreakerProbe: return "breaker_probe";
    case FlightKind::kBreakerClose: return "breaker_close";
    case FlightKind::kRequeued: return "requeued";
    case FlightKind::kIsolated: return "isolated";
    case FlightKind::kCompleted: return "completed";
    case FlightKind::kFailed: return "failed";
    case FlightKind::kWorkerCrash: return "worker_crash";
    case FlightKind::kDeadline: return "deadline";
    case FlightKind::kSwapBegin: return "swap_begin";
    case FlightKind::kSwapStage: return "swap_stage";
    case FlightKind::kSwapCanary: return "swap_canary";
    case FlightKind::kSwapCommit: return "swap_commit";
    case FlightKind::kSwapRollback: return "swap_rollback";
    case FlightKind::kTunerPublish: return "tuner_publish";
    case FlightKind::kMark: return "mark";
  }
  return "?";
}

FlightRecorder::FlightRecorder() {
  if (const char* env = std::getenv("NODETR_FLIGHT"); env != nullptr && *env != '\0') {
    const std::string v(env);
    if (v == "0" || v == "false" || v == "off") {
      enabled_.store(false, std::memory_order_relaxed);
    } else if (v != "1" && v != "true" && v != "on") {
      dump_path_ = v;
      // Only hook terminate when there is somewhere to write: the handler
      // exists to leave an artifact, not to change crash behavior.
      g_prev_terminate = std::set_terminate(&terminate_with_dump);
    }
  }
}

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder recorder;
  return recorder;
}

std::uint64_t FlightRecorder::new_trace_id() {
  return g_next_trace_id.fetch_add(1, std::memory_order_relaxed);
}

void FlightRecorder::set_dump_path(std::string path) {
  std::lock_guard lk(mu_);
  dump_path_ = std::move(path);
}

std::string FlightRecorder::dump_path() const {
  std::lock_guard lk(mu_);
  return dump_path_;
}

FlightRecorder::Ring& FlightRecorder::ring_for_this_thread() {
  if (t_ring == nullptr) {
    std::lock_guard lk(mu_);
    rings_.push_back(std::make_unique<Ring>());
    t_ring = rings_.back().get();
  }
  return *static_cast<Ring*>(t_ring);
}

void FlightRecorder::record(std::uint64_t trace_id, FlightKind kind, std::int64_t a,
                            std::int64_t b) {
  Ring& ring = ring_for_this_thread();
  // Only this thread advances its head, so relaxed RMW-free increments are
  // safe; a dumping thread sees a consistent-enough prefix (torn events are
  // documented and tolerated — this is a crash artifact, not a ledger).
  const std::uint64_t h = ring.head.load(std::memory_order_relaxed);
  Slot& slot = ring.slots[h % kRingSize];
  slot.trace_id.store(trace_id, std::memory_order_relaxed);
  slot.ts_ns.store(Tracer::instance().now_ns(), std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  slot.meta.store(static_cast<std::uint64_t>(kind) |
                      (static_cast<std::uint64_t>(Tracer::thread_index()) << 8),
                  std::memory_order_relaxed);
  ring.head.store(h + 1, std::memory_order_release);
}

void FlightRecorder::collect(std::vector<FlightEvent>& out) const {
  std::lock_guard lk(mu_);
  for (const auto& ring : rings_) {
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    const std::uint64_t n = std::min<std::uint64_t>(head, kRingSize);
    for (std::uint64_t i = 0; i < n; ++i) {
      const Slot& slot = ring->slots[i];
      FlightEvent ev;
      ev.trace_id = slot.trace_id.load(std::memory_order_relaxed);
      ev.ts_ns = slot.ts_ns.load(std::memory_order_relaxed);
      ev.a = slot.a.load(std::memory_order_relaxed);
      ev.b = slot.b.load(std::memory_order_relaxed);
      const std::uint64_t meta = slot.meta.load(std::memory_order_relaxed);
      ev.kind = static_cast<FlightKind>(meta & 0xff);
      ev.tid = static_cast<std::uint32_t>(meta >> 8);
      out.push_back(ev);
    }
  }
}

std::vector<FlightEvent> FlightRecorder::snapshot() const {
  std::vector<FlightEvent> out;
  collect(out);
  std::stable_sort(out.begin(), out.end(),
                   [](const FlightEvent& x, const FlightEvent& y) { return x.ts_ns < y.ts_ns; });
  return out;
}

std::vector<FlightEvent> FlightRecorder::events_for(std::uint64_t trace_id) const {
  std::vector<FlightEvent> all = snapshot();
  std::vector<FlightEvent> out;
  for (const FlightEvent& ev : all) {
    if (ev.trace_id == trace_id) out.push_back(ev);
  }
  return out;
}

std::string FlightRecorder::dump_string() const {
  const std::vector<FlightEvent> events = snapshot();
  std::ostringstream os;
  os << "nodetr flight recorder: " << events.size() << " events (last " << kRingSize
     << " per thread; ts relative to process trace epoch)\n";
  char line[160];
  std::snprintf(line, sizeof(line), "%14s %5s %10s %-14s %14s %14s\n", "ts_us", "tid", "trace",
                "event", "a", "b");
  os << line;
  for (const FlightEvent& ev : events) {
    std::snprintf(line, sizeof(line), "%14.3f %5u %10llu %-14s %14lld %14lld\n",
                  static_cast<double>(ev.ts_ns) / 1e3, ev.tid,
                  static_cast<unsigned long long>(ev.trace_id), to_string(ev.kind),
                  static_cast<long long>(ev.a), static_cast<long long>(ev.b));
    os << line;
  }
  return os.str();
}

void FlightRecorder::dump(const std::string& reason) {
  dumps_.fetch_add(1, std::memory_order_relaxed);
  Registry::instance().counter("obs.flight.dumps").add();
  const std::string path = dump_path();
  if (path.empty()) return;  // trigger counted; nothing to write to
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "nodetr::obs: flight dump failed: cannot open %s\n", path.c_str());
    return;
  }
  out << "reason: " << reason << "\n" << dump_string();
  std::fprintf(stderr, "nodetr::obs: flight recorder dumped to %s (reason: %s)\n", path.c_str(),
               reason.c_str());
}

void FlightRecorder::clear() {
  std::lock_guard lk(mu_);
  for (auto& ring : rings_) {
    // Only the head matters for collection; stale slot payloads past the
    // head are never read.
    ring->head.store(0, std::memory_order_release);
  }
}

}  // namespace nodetr::obs
