#include "nodetr/obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace nodetr::obs {

namespace {

void atomic_add_double(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

}  // namespace

std::vector<double> Histogram::default_bounds() {
  // Geometric grid: 1e-3 * 10^(k/3) for k = 0..30 — spans sub-microsecond
  // timings up to 1e7 (cycle counts, milliseconds) with ~2.15x resolution.
  std::vector<double> b;
  b.reserve(31);
  for (int k = 0; k <= 30; ++k) b.push_back(1e-3 * std::pow(10.0, k / 3.0));
  return b;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) bounds_ = default_bounds();
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (bounds_[i] <= bounds_[i - 1]) {
      throw std::invalid_argument("Histogram: bounds must be strictly increasing");
    }
  }
  buckets_ = std::make_unique<std::atomic<std::int64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add_double(sum_, v);
}

double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }

double Histogram::mean() const {
  const auto n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::percentile(double p) const {
  const std::int64_t n = count();
  if (n == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(n);
  std::int64_t cum = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    const std::int64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (static_cast<double>(cum + in_bucket) >= rank) {
      // Interpolate inside (lo, hi]. The overflow bucket has no upper bound;
      // report its lower edge.
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      if (i == bounds_.size()) return lo;
      const double hi = bounds_[i];
      const double frac =
          std::clamp((rank - static_cast<double>(cum)) / static_cast<double>(in_bucket), 0.0, 1.0);
      return lo + frac * (hi - lo);
    }
    cum += in_bucket;
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
  count_.store(0);
  sum_.store(0.0);
}

Registry::Registry() {
  if (const char* env = std::getenv("NODETR_METRICS"); env != nullptr && *env != '\0') {
    export_path_ = env;
  }
}

Registry::~Registry() {
  if (!export_path_.empty()) {
    try {
      write_json(export_path_);
      std::fprintf(stderr, "nodetr::obs: wrote metrics to %s\n", export_path_.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "nodetr::obs: metrics export failed: %s\n", e.what());
    }
  }
}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard lk(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard lk(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name, std::vector<double> bounds) {
  std::lock_guard lk(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

std::string Registry::to_json() const {
  std::lock_guard lk(mu_);
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "" : ",") << "\n    \"" << name << "\": " << c->value();
    first = false;
  }
  os << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "" : ",") << "\n    \"" << name << "\": " << g->value();
    first = false;
  }
  os << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "" : ",") << "\n    \"" << name << "\": {\"count\": " << h->count()
       << ", \"sum\": " << h->sum() << ", \"mean\": " << h->mean()
       << ", \"p50\": " << h->percentile(50.0) << ", \"p95\": " << h->percentile(95.0)
       << ", \"p99\": " << h->percentile(99.0) << "}";
    first = false;
  }
  os << "\n  }\n}\n";
  return os.str();
}

void Registry::write_json(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("Registry: cannot open " + path);
  out << to_json();
}

void Registry::reset() {
  std::lock_guard lk(mu_);
  for (auto& kv : counters_) kv.second->reset();
  for (auto& kv : gauges_) kv.second->reset();
  for (auto& kv : histograms_) kv.second->reset();
}

}  // namespace nodetr::obs
