#include "nodetr/obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace nodetr::obs {

namespace {

void atomic_add_double(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

/// Strict-JSON number: bare `inf`/`nan` are invalid JSON, so non-finite
/// values become null (the BENCH_fault.json bug this guards against).
void append_json_number(std::ostringstream& os, double v) {
  if (std::isfinite(v)) {
    os << v;
  } else {
    os << "null";
  }
}

/// OpenMetrics metric names allow [a-zA-Z0-9_:]; dots and anything else
/// become '_' ("serve.queue.wait_us" -> "serve_queue_wait_us").
std::string sanitize_metric_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
                    c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

/// OpenMetrics forbids NaN-free guarantees too — clamp non-finite to 0.
void append_om_number(std::ostringstream& os, double v) {
  if (std::isfinite(v)) {
    os << v;
  } else {
    os << 0;
  }
}

}  // namespace

std::vector<double> Histogram::default_bounds() {
  // Geometric grid: 1e-3 * 10^(k/3) for k = 0..30 — spans sub-microsecond
  // timings up to 1e7 (cycle counts, milliseconds) with ~2.15x resolution.
  std::vector<double> b;
  b.reserve(31);
  for (int k = 0; k <= 30; ++k) b.push_back(1e-3 * std::pow(10.0, k / 3.0));
  return b;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) bounds_ = default_bounds();
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (bounds_[i] <= bounds_[i - 1]) {
      throw std::invalid_argument("Histogram: bounds must be strictly increasing");
    }
  }
  buckets_ = std::make_unique<std::atomic<std::int64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double v) {
  if (!std::isfinite(v) || v < 0.0) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add_double(sum_, v);
}

double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }

double Histogram::mean() const {
  const auto n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::percentile(double p) const {
  const std::int64_t n = count();
  if (n == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(n);
  std::int64_t cum = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    const std::int64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (static_cast<double>(cum + in_bucket) >= rank) {
      // Interpolate inside (lo, hi]. The overflow bucket has no upper bound;
      // report its lower edge.
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      if (i == bounds_.size()) return lo;
      const double hi = bounds_[i];
      const double frac =
          std::clamp((rank - static_cast<double>(cum)) / static_cast<double>(in_bucket), 0.0, 1.0);
      return lo + frac * (hi - lo);
    }
    cum += in_bucket;
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
  count_.store(0);
  dropped_.store(0);
  sum_.store(0.0);
}

Registry::Registry() {
  if (const char* env = std::getenv("NODETR_METRICS"); env != nullptr && *env != '\0') {
    export_path_ = env;
  }
  if (const char* env = std::getenv("NODETR_OPENMETRICS"); env != nullptr && *env != '\0') {
    openmetrics_path_ = env;
  }
}

Registry::~Registry() {
  if (!export_path_.empty()) {
    try {
      write_json(export_path_);
      std::fprintf(stderr, "nodetr::obs: wrote metrics to %s\n", export_path_.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "nodetr::obs: metrics export failed: %s\n", e.what());
    }
  }
  if (!openmetrics_path_.empty()) {
    try {
      write_openmetrics(openmetrics_path_);
      std::fprintf(stderr, "nodetr::obs: wrote OpenMetrics to %s\n", openmetrics_path_.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "nodetr::obs: OpenMetrics export failed: %s\n", e.what());
    }
  }
}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard lk(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard lk(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name, std::vector<double> bounds) {
  std::lock_guard lk(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

std::string Registry::to_json() const {
  std::lock_guard lk(mu_);
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "" : ",") << "\n    \"" << name << "\": " << c->value();
    first = false;
  }
  os << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "" : ",") << "\n    \"" << name << "\": ";
    append_json_number(os, g->value());
    first = false;
  }
  os << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "" : ",") << "\n    \"" << name << "\": {\"count\": " << h->count()
       << ", \"dropped\": " << h->dropped() << ", \"sum\": ";
    append_json_number(os, h->sum());
    os << ", \"mean\": ";
    append_json_number(os, h->mean());
    os << ", \"p50\": ";
    append_json_number(os, h->percentile(50.0));
    os << ", \"p95\": ";
    append_json_number(os, h->percentile(95.0));
    os << ", \"p99\": ";
    append_json_number(os, h->percentile(99.0));
    os << "}";
    first = false;
  }
  os << "\n  }\n}\n";
  return os.str();
}

void Registry::write_json(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("Registry: cannot open " + path);
  out << to_json();
}

std::string Registry::to_openmetrics() const {
  std::lock_guard lk(mu_);
  std::ostringstream os;
  for (const auto& [name, c] : counters_) {
    const std::string om = "nodetr_" + sanitize_metric_name(name);
    os << "# TYPE " << om << " counter\n";
    os << om << "_total " << c->value() << '\n';
  }
  for (const auto& [name, g] : gauges_) {
    const std::string om = "nodetr_" + sanitize_metric_name(name);
    os << "# TYPE " << om << " gauge\n";
    os << om << ' ';
    append_om_number(os, g->value());
    os << '\n';
  }
  for (const auto& [name, h] : histograms_) {
    const std::string om = "nodetr_" + sanitize_metric_name(name);
    os << "# TYPE " << om << " summary\n";
    for (const double q : {0.5, 0.95, 0.99}) {
      os << om << "{quantile=\"" << q << "\"} ";
      append_om_number(os, h->percentile(q * 100.0));
      os << '\n';
    }
    os << om << "_count " << h->count() << '\n';
    os << om << "_sum ";
    append_om_number(os, h->sum());
    os << '\n';
  }
  os << "# EOF\n";
  return os.str();
}

void Registry::write_openmetrics(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("Registry: cannot open " + path);
  out << to_openmetrics();
}

void Registry::reset() {
  std::lock_guard lk(mu_);
  for (auto& kv : counters_) kv.second->reset();
  for (auto& kv : gauges_) kv.second->reset();
  for (auto& kv : histograms_) kv.second->reset();
}

}  // namespace nodetr::obs
