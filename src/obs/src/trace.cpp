#include "nodetr/obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

namespace nodetr::obs {

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

/// Per-thread stack of the names of currently-open spans.
thread_local std::vector<const char*> t_span_stack;

std::atomic<std::uint32_t> g_next_tid{0};

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void append_attr_value(std::ostringstream& os, const AttrValue& v) {
  if (const auto* i = std::get_if<std::int64_t>(&v)) {
    os << *i;
  } else if (const auto* d = std::get_if<double>(&v)) {
    os << *d;
  } else {
    os << '"' << json_escape(std::get<std::string>(v)) << '"';
  }
}

}  // namespace

Tracer::Tracer() : epoch_ns_(steady_now_ns()) {
  if (const char* env = std::getenv("NODETR_TRACE"); env != nullptr && *env != '\0') {
    const std::string v(env);
    if (v != "0" && v != "false" && v != "off") {
      enabled_.store(true, std::memory_order_relaxed);
      if (v != "1" && v != "true" && v != "on") export_path_ = v;
    }
  }
}

Tracer::~Tracer() {
  if (!export_path_.empty() && span_count() > 0) {
    try {
      write_chrome_trace(export_path_);
      std::fprintf(stderr, "nodetr::obs: wrote %zu spans to %s (%zu dropped)\n", span_count(),
                   export_path_.c_str(), dropped_count());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "nodetr::obs: trace export failed: %s\n", e.what());
    }
  }
}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

std::uint64_t Tracer::now_ns() const { return steady_now_ns() - epoch_ns_; }

std::uint32_t Tracer::thread_index() {
  thread_local std::uint32_t tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

void Tracer::record(SpanRecord&& rec) {
  std::lock_guard lk(mu_);
  if (spans_.size() >= kMaxSpans) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  spans_.push_back(std::move(rec));
}

void Tracer::record_flow(std::uint64_t id, char phase) {
  FlowRecord rec;
  rec.id = id;
  rec.ts_ns = now_ns();
  rec.tid = thread_index();
  rec.phase = phase;
  std::lock_guard lk(mu_);
  if (flows_.size() >= kMaxSpans) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  flows_.push_back(rec);
}

std::size_t Tracer::span_count() const {
  std::lock_guard lk(mu_);
  return spans_.size();
}

std::size_t Tracer::flow_count() const {
  std::lock_guard lk(mu_);
  return flows_.size();
}

std::size_t Tracer::dropped_count() const { return dropped_.load(std::memory_order_relaxed); }

std::vector<SpanRecord> Tracer::snapshot() const {
  std::lock_guard lk(mu_);
  return spans_;
}

std::vector<FlowRecord> Tracer::flow_snapshot() const {
  std::lock_guard lk(mu_);
  return flows_;
}

void Tracer::clear() {
  std::lock_guard lk(mu_);
  spans_.clear();
  flows_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

std::string Tracer::chrome_trace_json() const {
  const auto spans = snapshot();
  const auto flows = flow_snapshot();
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& s : spans) {
    if (!first) os << ',';
    first = false;
    os << "\n{\"name\":\"" << json_escape(s.name) << "\",\"cat\":\"nodetr\",\"ph\":\"X\""
       << ",\"ts\":" << static_cast<double>(s.start_ns) / 1e3
       << ",\"dur\":" << static_cast<double>(s.duration_ns()) / 1e3
       << ",\"pid\":1,\"tid\":" << s.tid;
    os << ",\"args\":{\"path\":\"" << json_escape(s.path) << '"';
    for (const auto& [key, value] : s.attrs) {
      os << ",\"" << json_escape(key) << "\":";
      append_attr_value(os, value);
    }
    os << "}}";
  }
  // Flow arrows: "s"/"t"/"f" events sharing an id draw one chain across
  // threads; "bp":"e" binds each point to the slice enclosing its timestamp.
  for (const auto& f : flows) {
    if (!first) os << ',';
    first = false;
    os << "\n{\"name\":\"request\",\"cat\":\"serve.request\",\"ph\":\"" << f.phase << '"'
       << ",\"id\":" << f.id << ",\"ts\":" << static_cast<double>(f.ts_ns) / 1e3
       << ",\"pid\":1,\"tid\":" << f.tid << ",\"bp\":\"e\"}";
  }
  os << "\n]}\n";
  return os.str();
}

void Tracer::write_chrome_trace(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("Tracer: cannot open " + path);
  out << chrome_trace_json();
}

std::string Tracer::summary() const {
  struct Agg {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t child_ns = 0;
    std::uint32_t depth = 0;
  };
  const auto spans = snapshot();
  std::map<std::string, Agg> by_path;
  for (const auto& s : spans) {
    auto& a = by_path[s.path];
    ++a.count;
    a.total_ns += s.duration_ns();
    a.depth = s.depth;
  }
  // Self time = total minus the time attributed to direct children.
  for (const auto& [path, agg] : by_path) {
    const auto cut = path.rfind('/');
    if (cut == std::string::npos) continue;
    auto parent = by_path.find(path.substr(0, cut));
    if (parent != by_path.end()) parent->second.child_ns += agg.total_ns;
  }
  std::ostringstream os;
  os << "span summary (" << spans.size() << " spans)\n";
  char line[256];
  std::snprintf(line, sizeof(line), "  %-48s %8s %12s %12s %12s\n", "path", "calls", "total ms",
                "self ms", "mean ms");
  os << line;
  for (const auto& [path, a] : by_path) {
    const auto cut = path.rfind('/');
    const std::string leaf = cut == std::string::npos ? path : path.substr(cut + 1);
    const std::string label = std::string(2 * a.depth, ' ') + leaf;
    const double total_ms = static_cast<double>(a.total_ns) / 1e6;
    const double self_ms =
        static_cast<double>(a.total_ns - std::min(a.child_ns, a.total_ns)) / 1e6;
    std::snprintf(line, sizeof(line), "  %-48s %8llu %12.3f %12.3f %12.4f\n", label.c_str(),
                  static_cast<unsigned long long>(a.count), total_ms, self_ms,
                  total_ms / static_cast<double>(a.count));
    os << line;
  }
  return os.str();
}

void ScopedSpan::begin(const char* name) {
  active_ = true;
  name_ = name;
  depth_ = static_cast<std::uint32_t>(t_span_stack.size());
  t_span_stack.push_back(name);
  start_ns_ = Tracer::instance().now_ns();
}

void ScopedSpan::finish() {
  auto& tracer = Tracer::instance();
  SpanRecord rec;
  rec.end_ns = tracer.now_ns();
  rec.start_ns = start_ns_;
  rec.name = name_;
  rec.path.reserve(64);
  for (const char* frame : t_span_stack) {
    if (!rec.path.empty()) rec.path += '/';
    rec.path += frame;
  }
  t_span_stack.pop_back();
  rec.tid = Tracer::thread_index();
  rec.depth = depth_;
  rec.attrs = std::move(attrs_);
  tracer.record(std::move(rec));
}

}  // namespace nodetr::obs
