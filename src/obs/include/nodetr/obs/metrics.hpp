// Process-wide metrics registry (nodetr::obs): named counters, gauges, and
// fixed-bucket histograms with percentile queries and a JSON dump.
//
// Instruments stay cheap on hot paths: a Counter increment is one relaxed
// atomic add, a Histogram observation is a branchless-ish bucket search plus
// two atomic adds. Look instruments up once and cache the reference:
//
//   static auto& chunks = Registry::instance().counter("tensor.pool.chunks");
//   chunks.add(n);
//
// The registry never deletes an instrument, so cached references stay valid
// for the process lifetime. If NODETR_METRICS=<path> is set, the registry
// writes its JSON dump there at process exit.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace nodetr::obs {

/// Monotonic counter.
class Counter {
 public:
  void add(std::int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-value gauge.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Buckets are (prev_bound, bound] plus an overflow
/// bucket; percentiles are linearly interpolated inside the winning bucket.
class Histogram {
 public:
  /// `bounds` must be strictly increasing upper bucket bounds. An empty list
  /// selects the default geometric grid (1e-3 .. 1e7, ratio ~2.15) suited to
  /// microsecond/millisecond timings and cycle counts.
  explicit Histogram(std::vector<double> bounds = {});

  /// Records `v`. Non-finite or negative samples (a NaN latency, a clock that
  /// went backwards) are rejected and counted in dropped() instead of silently
  /// polluting the percentiles.
  void observe(double v);

  [[nodiscard]] std::int64_t count() const { return count_.load(std::memory_order_relaxed); }
  /// Samples rejected by observe() (NaN / infinite / negative).
  [[nodiscard]] std::int64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  [[nodiscard]] double sum() const;
  [[nodiscard]] double mean() const;
  /// p in [0, 100]. Returns 0 for an empty histogram.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  void reset();

  [[nodiscard]] static std::vector<double> default_bounds();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::int64_t>[]> buckets_;  ///< bounds_.size() + 1
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> dropped_{0};
  std::atomic<double> sum_{0.0};
};

/// Name -> instrument registry. Instruments are created on first lookup and
/// live for the process lifetime (stable addresses).
class Registry {
 public:
  static Registry& instance();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` is honoured only on first creation of `name`.
  Histogram& histogram(const std::string& name, std::vector<double> bounds = {});

  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,mean,
  /// p50,p95,p99}}} — keys sorted. Non-finite values are emitted as null so
  /// the dump is always strict JSON.
  [[nodiscard]] std::string to_json() const;
  void write_json(const std::string& path) const;

  /// OpenMetrics text exposition (https://openmetrics.io): counters as
  /// `nodetr_<name>_total`, gauges as `nodetr_<name>`, histograms as
  /// summaries (quantile 0.5/0.95/0.99 + _count/_sum), names sanitized to
  /// [a-zA-Z0-9_:], terminated by `# EOF`. If NODETR_OPENMETRICS=<path> is
  /// set it is written there at process exit, alongside the JSON dump.
  [[nodiscard]] std::string to_openmetrics() const;
  void write_openmetrics(const std::string& path) const;

  /// Zero every instrument (the instruments themselves survive).
  void reset();

 private:
  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::string export_path_;       ///< from NODETR_METRICS; written at destruction
  std::string openmetrics_path_;  ///< from NODETR_OPENMETRICS; written at destruction
};

}  // namespace nodetr::obs
