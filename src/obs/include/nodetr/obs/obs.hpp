// Umbrella header for nodetr::obs — scoped tracing spans, the metrics
// registry, and their exporters. See trace.hpp and metrics.hpp for the
// individual pieces, and the README "Observability" section for usage.
#pragma once

#include "nodetr/obs/metrics.hpp"
#include "nodetr/obs/trace.hpp"

namespace nodetr::obs {

/// True when span collection is on (runtime flag or NODETR_TRACE env var).
[[nodiscard]] inline bool tracing_enabled() { return Tracer::instance().enabled(); }

}  // namespace nodetr::obs
