// Umbrella header for nodetr::obs — scoped tracing spans, the metrics
// registry, the flight recorder, and their exporters. See trace.hpp,
// metrics.hpp and flight_recorder.hpp for the individual pieces, and the
// README "Observability" section for usage.
#pragma once

#include "nodetr/obs/flight_recorder.hpp"
#include "nodetr/obs/metrics.hpp"
#include "nodetr/obs/trace.hpp"

namespace nodetr::obs {

/// True when span collection is on (runtime flag or NODETR_TRACE env var).
[[nodiscard]] inline bool tracing_enabled() { return Tracer::instance().enabled(); }

}  // namespace nodetr::obs
