// Always-on flight recorder (nodetr::obs): a lock-free per-thread ring of
// the most recent request-scoped trace events, kept even when full span
// tracing is off, so a crash / deadline / breaker-open leaves behind a
// diagnosable timeline instead of a bare exception message.
//
// Model:
//   - every serving-path milestone (submit, enqueue, dequeue, batch join,
//     device exec, retry, fallback, requeue, completion, ...) calls
//     flight_event(trace_id, kind, a, b). The trace id is minted at
//     InferenceEngine::submit (see new_trace_id()) and rides on the request
//     through the queue, the micro-batcher's split/merge/carry, the workers,
//     and the accelerator, so one id names one request everywhere;
//   - each thread records into its own fixed-size ring (no locks, no
//     allocation on the hot path; slot fields are relaxed atomics so a
//     concurrent dump is race-free). The ring holds the last kRingSize
//     events per thread — older history is overwritten, which is the point:
//     the recorder is a black box, not a log;
//   - recording is ON by default. Disabling it (NODETR_FLIGHT=0 or
//     set_enabled(false)) reduces flight_event() to one relaxed atomic load,
//     the same dormant cost as a fault-injection site check. Compiling with
//     -DNODETR_OBS_NO_FLIGHT removes the calls entirely;
//   - dump(reason) merges every thread's ring into one timestamp-sorted
//     text timeline. When NODETR_FLIGHT=<path> is set, dumps are written
//     there automatically on the wired triggers: an injected worker crash,
//     a device DeadlineExceeded, a circuit-breaker open, and std::terminate.
//     Without a path, triggers are only counted (obs.flight.dumps metric)
//     and dump_string()/snapshot() serve on-demand inspection.
//
// Timestamps share the Tracer's epoch, so a flight dump lines up with a
// Chrome trace captured in the same run.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace nodetr::obs {

/// One milestone in a request's life (or a device/session-level event with
/// trace_id 0). `a`/`b` are kind-specific payloads (rows, µs, cycles, ...).
enum class FlightKind : std::uint8_t {
  kSubmit,        ///< a: rows, b: priority
  kEnqueued,      ///< a: queue depth after push
  kRouted,        ///< a: device index, b: rows (cluster router dispatch)
  kRejected,      ///< a: queue capacity (kReject backpressure)
  kShed,          ///< a: 0 = admission control, 1 = kShedOldest eviction
  kExpired,       ///< a: µs spent in the pipeline
  kDequeued,      ///< a: queue wait µs
  kCarried,       ///< a: rows left for the worker's next batch (split request)
  kBatchJoin,     ///< a: worker, b: rows of this request in the batch
  kExecBegin,     ///< a: worker, b: backend index
  kExecEnd,       ///< a: device cycles of the batch, b: backend index
  kRetry,         ///< a: attempt number, b: backend index
  kFallback,      ///< a: worker (session demoted to the CPU datapath)
  kBreakerOpen,   ///< a: worker (session-level, trace_id 0)
  kBreakerProbe,  ///< a: worker
  kBreakerClose,  ///< a: worker
  kRequeued,      ///< crash salvage returned the request to the queue front
  kIsolated,      ///< a: worker (slice re-run alone after a batch fault)
  kCompleted,     ///< a: latency µs, b: queue wait µs
  kFailed,        ///< a: µs since submit
  kWorkerCrash,   ///< a: worker (trace_id 0)
  kDeadline,      ///< a: stall cycles charged (device-level, trace_id 0)
  kSwapBegin,     ///< a: candidate version id (trace_id 0)
  kSwapStage,     ///< a: worker, b: staged version id (trace_id 0)
  kSwapCanary,    ///< a: worker, b: candidate version id (per canary batch)
  kSwapCommit,    ///< a: promoted version id, b: canary batches (trace_id 0)
  kSwapRollback,  ///< a: rejected version id, b: rollback reason (trace_id 0)
  kTunerPublish,  ///< a: publish count, b: tuner steps (trace_id 0)
  kMark,          ///< free-form user marker
};

[[nodiscard]] const char* to_string(FlightKind kind);

struct FlightEvent {
  std::uint64_t trace_id = 0;
  std::uint64_t ts_ns = 0;  ///< since the Tracer epoch (steady clock)
  std::int64_t a = 0;
  std::int64_t b = 0;
  FlightKind kind = FlightKind::kMark;
  std::uint32_t tid = 0;  ///< dense thread index (shared with the Tracer)
};

/// Process-wide recorder over per-thread rings. See the file comment.
class FlightRecorder {
 public:
  /// Events retained per thread. Power of two; at ~10 events per request
  /// this keeps the last few hundred requests per worker.
  static constexpr std::size_t kRingSize = 4096;

  static FlightRecorder& instance();

  /// Mint a process-unique request trace id (never returns 0).
  [[nodiscard]] static std::uint64_t new_trace_id();

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Where automatic dumps land ("" disables file output; triggers are still
  /// counted). Initialized from NODETR_FLIGHT.
  void set_dump_path(std::string path);
  [[nodiscard]] std::string dump_path() const;

  /// Record one event on the calling thread's ring. Prefer the free
  /// flight_event() wrapper, which short-circuits when disabled.
  void record(std::uint64_t trace_id, FlightKind kind, std::int64_t a = 0, std::int64_t b = 0);

  /// Merge every thread's ring, sorted by timestamp. Events being written
  /// concurrently may read torn (each field is atomic, the event is not);
  /// quiesce first when exactness matters (tests do).
  [[nodiscard]] std::vector<FlightEvent> snapshot() const;
  /// The timeline of one request, sorted by timestamp.
  [[nodiscard]] std::vector<FlightEvent> events_for(std::uint64_t trace_id) const;

  /// Human-readable merged timeline (the dump file format).
  [[nodiscard]] std::string dump_string() const;

  /// Trigger a dump: bumps the obs.flight.dumps counter and, when a dump
  /// path is set, (over)writes the merged timeline there with `reason` in
  /// the header. Called on worker crash, DeadlineExceeded, breaker open,
  /// std::terminate — or on demand.
  void dump(const std::string& reason);

  [[nodiscard]] std::uint64_t dump_count() const {
    return dumps_.load(std::memory_order_relaxed);
  }

  /// Drop all recorded events (tests; rings themselves are kept).
  void clear();

 private:
  FlightRecorder();
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  struct Slot {
    std::atomic<std::uint64_t> trace_id{0};
    std::atomic<std::uint64_t> ts_ns{0};
    std::atomic<std::int64_t> a{0};
    std::atomic<std::int64_t> b{0};
    std::atomic<std::uint64_t> meta{0};  ///< kind | tid<<8 | seq<<40
  };
  struct Ring {
    std::atomic<std::uint64_t> head{0};  ///< events ever recorded by this thread
    std::unique_ptr<Slot[]> slots{new Slot[kRingSize]};
  };

  [[nodiscard]] Ring& ring_for_this_thread();
  void collect(std::vector<FlightEvent>& out) const;

  std::atomic<bool> enabled_{true};
  std::atomic<std::uint64_t> dumps_{0};
  mutable std::mutex mu_;             ///< guards rings_ registration and dump_path_
  std::vector<std::unique_ptr<Ring>> rings_;  ///< rings outlive their threads
  std::string dump_path_;             ///< from NODETR_FLIGHT
};

/// The hot-path entry point: one relaxed atomic load when recording is
/// disabled, a handful of relaxed stores into the thread's ring when on.
/// Compiled out entirely under NODETR_OBS_NO_FLIGHT.
inline void flight_event(std::uint64_t trace_id, FlightKind kind, std::int64_t a = 0,
                         std::int64_t b = 0) {
#if defined(NODETR_OBS_NO_FLIGHT)
  (void)trace_id;
  (void)kind;
  (void)a;
  (void)b;
#else
  FlightRecorder& fr = FlightRecorder::instance();
  if (!fr.enabled()) return;
  fr.record(trace_id, kind, a, b);
#endif
}

/// Mint a request trace id (see FlightRecorder::new_trace_id).
[[nodiscard]] inline std::uint64_t new_trace_id() { return FlightRecorder::new_trace_id(); }

}  // namespace nodetr::obs
