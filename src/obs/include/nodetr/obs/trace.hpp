// Lightweight scoped tracing (nodetr::obs).
//
// RAII spans with thread-local nesting, steady-clock timestamps, and typed
// attributes; completed spans land in a process-wide Tracer that exports
// Chrome trace-event JSON (load in chrome://tracing or https://ui.perfetto.dev)
// and a hierarchical text summary.
//
// Cost model: tracing is off by default. A disabled ScopedSpan is one relaxed
// atomic load in the constructor and a branch in the destructor — cheap enough
// to leave in the hottest paths (the tier-1 benches must not regress). Enable
// at runtime with Tracer::instance().set_enabled(true), or from the
// environment:
//
//   NODETR_TRACE=trace.json ./quickstart   # enable + write trace.json at exit
//   NODETR_TRACE=1          ./quickstart   # enable only (export manually)
//
// Simulated time (FPGA cycles) and wall-clock land in one trace: the HLS and
// rt layers attach their cycle counts as span attributes.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace nodetr::obs {

/// Span attribute value: integer (e.g. simulated cycles), floating point
/// (e.g. loss), or string (e.g. solver name).
using AttrValue = std::variant<std::int64_t, double, std::string>;
using Attr = std::pair<std::string, AttrValue>;

/// One point of a cross-thread flow arrow (Chrome trace "s"/"t"/"f" events).
/// Recorded while a span is open on the same thread so the exporter's
/// binding point ("bp":"e") attaches the arrow to that enclosing slice; all
/// points sharing an id render as one clickable chain in Perfetto. The
/// serving engine uses the request trace id, so a request's life —
/// submit → batch (per split) → completion — is one arrow chain.
struct FlowRecord {
  std::uint64_t id = 0;
  std::uint64_t ts_ns = 0;  ///< since Tracer epoch
  std::uint32_t tid = 0;
  char phase = 's';  ///< 's' start, 't' step, 'f' end
};

/// One completed span. `path` is the '/'-joined chain of enclosing span names
/// on the same thread ("train.fit/train.epoch/ode.block.forward").
struct SpanRecord {
  std::string name;
  std::string path;
  std::uint64_t start_ns = 0;  ///< since Tracer epoch (steady clock)
  std::uint64_t end_ns = 0;
  std::uint32_t tid = 0;       ///< dense per-process thread index
  std::uint32_t depth = 0;     ///< nesting depth on its thread (0 = root)
  std::vector<Attr> attrs;

  [[nodiscard]] std::uint64_t duration_ns() const { return end_ns - start_ns; }
};

/// Process-wide span sink. Thread-safe; spans are buffered in memory (capped
/// at kMaxSpans, further spans are counted as dropped).
class Tracer {
 public:
  static constexpr std::size_t kMaxSpans = 1u << 20;

  static Tracer& instance();

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Nanoseconds since the tracer's epoch (process start, roughly).
  [[nodiscard]] std::uint64_t now_ns() const;

  /// Dense index of the calling thread (0 = first thread that traced).
  [[nodiscard]] static std::uint32_t thread_index();

  void record(SpanRecord&& rec);
  /// Record one flow point (see FlowRecord). Call while the span the arrow
  /// should bind to is open on this thread; prefer the flow_start/step/end
  /// helpers, which check enabled() first.
  void record_flow(std::uint64_t id, char phase);

  [[nodiscard]] std::size_t span_count() const;
  [[nodiscard]] std::size_t flow_count() const;
  [[nodiscard]] std::size_t dropped_count() const;
  [[nodiscard]] std::vector<SpanRecord> snapshot() const;
  [[nodiscard]] std::vector<FlowRecord> flow_snapshot() const;
  void clear();

  /// Chrome trace-event JSON ("X" complete events, ts/dur in microseconds).
  [[nodiscard]] std::string chrome_trace_json() const;
  void write_chrome_trace(const std::string& path) const;

  /// Hierarchical text summary: per unique span path, call count, total /
  /// self / mean wall time, indented by depth.
  [[nodiscard]] std::string summary() const;

 private:
  Tracer();
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;
  std::vector<FlowRecord> flows_;
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> dropped_{0};
  std::uint64_t epoch_ns_ = 0;   ///< steady-clock origin
  std::string export_path_;      ///< from NODETR_TRACE; written at destruction
};

/// RAII span. Construct with a compile-time name literal; attach attributes
/// any time before destruction. When tracing is disabled the object is inert.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    if (Tracer::instance().enabled()) begin(name);
  }
  ~ScopedSpan() {
    if (active_) finish();
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  [[nodiscard]] bool active() const { return active_; }

  /// Close the span before scope exit (e.g. to exclude a trailing stage).
  void end() {
    if (active_) {
      finish();
      active_ = false;
    }
  }

  void attr(const char* key, std::int64_t value) {
    if (active_) attrs_.emplace_back(key, AttrValue{value});
  }
  void attr(const char* key, int value) { attr(key, static_cast<std::int64_t>(value)); }
  void attr(const char* key, double value) {
    if (active_) attrs_.emplace_back(key, AttrValue{value});
  }
  void attr(const char* key, const char* value) {
    if (active_) attrs_.emplace_back(key, AttrValue{std::string(value)});
  }
  void attr(const char* key, const std::string& value) {
    if (active_) attrs_.emplace_back(key, AttrValue{value});
  }

 private:
  void begin(const char* name);
  void finish();

  bool active_ = false;
  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
  std::uint32_t depth_ = 0;
  std::vector<Attr> attrs_;
};

/// Flow arrows linking spans across threads. Record while the span the
/// arrow should attach to is open on the calling thread: start under the
/// producer's span, step under each intermediate hop's span, end under the
/// final span. No-ops while tracing is disabled.
inline void flow_start(std::uint64_t id) {
  auto& t = Tracer::instance();
  if (t.enabled()) t.record_flow(id, 's');
}
inline void flow_step(std::uint64_t id) {
  auto& t = Tracer::instance();
  if (t.enabled()) t.record_flow(id, 't');
}
inline void flow_end(std::uint64_t id) {
  auto& t = Tracer::instance();
  if (t.enabled()) t.record_flow(id, 'f');
}

namespace detail {
#define NODETR_OBS_CONCAT_IMPL(a, b) a##b
#define NODETR_OBS_CONCAT(a, b) NODETR_OBS_CONCAT_IMPL(a, b)
}  // namespace detail

/// Scoped span with an auto-generated variable name:
///   NODETR_TRACE_SCOPE("mhsa.qkv_projection");
#define NODETR_TRACE_SCOPE(name) \
  ::nodetr::obs::ScopedSpan NODETR_OBS_CONCAT(nodetr_obs_span_, __LINE__)(name)

}  // namespace nodetr::obs
