// BoTNet50 [7]: ResNet50 with the last stage's 3x3 convs replaced by MHSA
// with 2-D relative positional encoding.
#pragma once

#include "nodetr/models/resnet.hpp"

namespace nodetr::models {

/// BoTNet50 for 10 classes as evaluated in the paper (Table IV/V).
[[nodiscard]] ModulePtr botnet50(index_t image_size, index_t classes, Rng& rng);

}  // namespace nodetr::models
