// ViT (Vision Transformer [2]) counterpart: the pure-attention baseline of
// Tables IV/V and Fig. 8.
//
// Faithful to the paper's description of MHSA (Eq. 9): Q/K/V projections
// without biases and NO output projection; encoder blocks are pre-LN with a
// GELU MLP; a learnable class token and learnable absolute position
// embeddings; classification head on the class token.
#pragma once

#include "nodetr/nn/nn.hpp"

namespace nodetr::models {

using namespace nodetr::nn;  // NOLINT: model builders compose many nn types

struct ViTConfig {
  index_t image_size = 96;
  index_t patch_size = 16;
  index_t classes = 10;
  index_t dim = 768;     ///< ViT-Base embedding width
  index_t depth = 12;    ///< encoder blocks
  index_t heads = 12;
  index_t mlp_dim = 3072;
};

/// One pre-LN encoder block: x += MHSA(LN(x)); x += MLP(LN(x)).
class ViTBlock final : public Module {
 public:
  ViTBlock(index_t dim, index_t heads, index_t mlp_dim, Rng& rng);

  Tensor forward(const Tensor& x) override;   ///< (B, T, D)
  Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] std::string name() const override { return "ViTBlock"; }
  [[nodiscard]] std::vector<Module*> children() override;

 private:
  index_t dim_, mlp_dim_;
  std::unique_ptr<LayerNorm> ln1_, ln2_;
  std::unique_ptr<SeqMhsa> attn_;
  std::unique_ptr<Linear> fc1_, fc2_;
  std::unique_ptr<GELU> gelu_;
  Shape seq_shape_{std::initializer_list<index_t>{0}};
};

class ViT final : public Module {
 public:
  ViT(ViTConfig config, Rng& rng);

  /// x: (B, 3, S, S) -> logits (B, classes).
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] std::string name() const override { return "ViT"; }
  [[nodiscard]] std::vector<Module*> children() override;
  [[nodiscard]] std::vector<Param*> local_parameters() override;

  [[nodiscard]] const ViTConfig& config() const { return config_; }
  [[nodiscard]] index_t tokens() const { return tokens_; }  ///< incl. class token

 private:
  ViTConfig config_;
  index_t tokens_;  ///< patches + 1
  std::unique_ptr<Conv2d> patch_embed_;
  Param cls_token_;  ///< (D)
  Param pos_embed_;  ///< (T, D)
  std::vector<std::unique_ptr<ViTBlock>> blocks_;
  std::unique_ptr<LayerNorm> final_ln_;
  std::unique_ptr<Linear> head_;
  index_t batch_ = 0;
};

/// ViT-Base as configured in the paper.
[[nodiscard]] std::unique_ptr<ViT> vit_base(index_t image_size, index_t classes, Rng& rng);

}  // namespace nodetr::models
