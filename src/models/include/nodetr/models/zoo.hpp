// Model zoo: the five models of Table IV plus scaled-down "tiny" variants
// used by the CI-speed training benches.
#pragma once

#include <string>
#include <vector>

#include "nodetr/models/botnet.hpp"
#include "nodetr/models/odenet.hpp"
#include "nodetr/models/resnet.hpp"
#include "nodetr/models/vit.hpp"

namespace nodetr::models {

enum class ModelKind {
  kResNet50,
  kBoTNet50,
  kOdeNet,
  kProposed,
  kViTBase,
  // Tiny variants: same topology, shrunk widths/depths for 32x32 training.
  kTinyResNet,
  kTinyBoTNet,
  kTinyOdeNet,
  kTinyProposed,
  kTinyViT,
};

[[nodiscard]] std::string to_string(ModelKind kind);

/// Paper-evaluated display name ("ResNet50", "Proposed model", ...).
[[nodiscard]] std::string paper_name(ModelKind kind);

/// Construct a model. Full-size kinds expect image_size 96 (STL10);
/// tiny kinds expect 32. `classes` defaults to STL10's 10.
[[nodiscard]] ModulePtr make_model(ModelKind kind, index_t image_size, index_t classes,
                                   Rng& rng);

/// The five full-size models in Table IV order.
[[nodiscard]] const std::vector<ModelKind>& table4_models();

/// The tiny training set used by the accuracy benches.
[[nodiscard]] const std::vector<ModelKind>& tiny_models();

/// Parameter counts the paper reports in Table IV (for comparison output).
[[nodiscard]] index_t paper_param_count(ModelKind kind);

}  // namespace nodetr::models
