// ResNet with bottleneck blocks (the ResNet50 counterpart of Table IV) and
// its BoTNet variant: following [7], the 3x3 spatial convolutions of the last
// stage's bottlenecks are replaced with MHSA.
//
// Structure (torchvision-compatible):
//   stem: 7x7/2 conv -> BN -> ReLU -> 3x3/2 maxpool
//   4 stages of bottleneck blocks (1x1 reduce, 3x3 spatial, 1x1 expand x4),
//   first block of stages 2-4 downsamples with stride 2 and a 1x1 skip
//   GlobalAvgPool -> Linear head
#pragma once

#include <array>

#include "nodetr/nn/nn.hpp"

namespace nodetr::models {

using namespace nodetr::nn;  // NOLINT: model builders compose many nn types

struct ResNetConfig {
  index_t image_size = 96;  ///< square input, STL10-sized by default
  index_t classes = 10;
  index_t stem_channels = 64;
  std::array<index_t, 4> blocks{3, 4, 6, 3};  ///< ResNet50 depths
  index_t base_width = 64;                    ///< stage-1 bottleneck width
  /// Replace the last stage's 3x3 convolutions with MHSA (=> BoTNet).
  bool bot_last_stage = false;
  index_t mhsa_heads = 4;
  AttentionKind bot_attention = AttentionKind::kSoftmax;  ///< BoTNet default
};

/// Builds the full network as a Sequential tree. Throws if image_size is not
/// divisible far enough for the stage strides.
[[nodiscard]] ModulePtr build_resnet(const ResNetConfig& config, Rng& rng);

/// ResNet50 for 10 classes as evaluated in the paper.
[[nodiscard]] ModulePtr resnet50(index_t image_size, index_t classes, Rng& rng);

}  // namespace nodetr::models
