// ODENet (the dsODENet-style backbone [21], Fig. 2 left) and the paper's
// proposed model (Fig. 2 right / Fig. 3).
//
//   stem: 3x3/2 conv -> BN -> ReLU -> 3x3/2 maxpool        (image/4)
//   OdeBlock1 (stage_channels[0]): C Euler iterations of
//        BN -> ReLU -> DSC -> BN -> ReLU -> DSC
//   downsample1: residual 3x3/2 conv block, channels x2    (image/8)
//   OdeBlock2 (stage_channels[1])
//   downsample2                                            (image/16)
//   OdeBlock3 (stage_channels[2])  <-- replaced by an MHSABlock-dynamics
//                                      OdeBlock in the proposed model
//   GlobalAvgPool -> Linear head
//
// With the default 96x96 input and 64/128/256 channels, the final stage is a
// 256-channel 6x6 feature map, and the proposed model's MHSA runs in a
// 64-dimensional bottleneck — the paper's "(64, 6, 6)" design point.
#pragma once

#include "nodetr/nn/nn.hpp"
#include "nodetr/ode/ode_block.hpp"

namespace nodetr::models {

using namespace nodetr::nn;  // NOLINT: model builders compose many nn types
using nodetr::ode::OdeBlock;
using nodetr::ode::SolverKind;

enum class FinalStage {
  kConvOde,  ///< plain ODENet (Fig. 2 left)
  kMhsaOde,  ///< proposed model: MHSABlock dynamics (Fig. 2 right)
};

struct OdeNetConfig {
  index_t image_size = 96;
  index_t classes = 10;
  index_t stem_channels = 64;
  std::array<index_t, 3> stage_channels{64, 128, 256};
  index_t steps = 6;  ///< C: Euler iterations per ODEBlock
  SolverKind solver = SolverKind::kEuler;
  FinalStage final_stage = FinalStage::kConvOde;
  // Proposed-model MHSA settings (used when final_stage == kMhsaOde).
  index_t mhsa_bottleneck = 64;  ///< Dm of the 1x1-reduced attention
  index_t mhsa_heads = 4;
  AttentionKind attention = AttentionKind::kRelu;       ///< Eq. 16
  PosEncodingKind pos = PosEncodingKind::kRelative2d;   ///< Eq. 15
  bool mhsa_layer_norm = true;                          ///< Eq. 17
};

/// Holds the assembled network plus handles to the OdeBlocks so experiments
/// can retune solver/steps after construction.
class OdeNet final : public Module {
 public:
  OdeNet(OdeNetConfig config, Rng& rng);

  Tensor forward(const Tensor& x) override { return net_->forward(x); }
  Tensor backward(const Tensor& grad_out) override { return net_->backward(grad_out); }

  /// Feature vector entering the final FC layer (B, C_final) — the signal
  /// Figs. 9/10 compare between software and FPGA execution.
  [[nodiscard]] Tensor features(const Tensor& x);
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::vector<Module*> children() override { return {net_.get()}; }

  [[nodiscard]] const OdeNetConfig& config() const { return config_; }
  [[nodiscard]] std::vector<OdeBlock*>& ode_blocks() { return ode_blocks_; }
  /// The MHSABlock dynamics of the final stage (proposed model only).
  [[nodiscard]] MhsaBlock* mhsa_block() { return mhsa_block_; }
  /// Spatial extent of the final stage's feature map.
  [[nodiscard]] index_t final_spatial() const { return final_spatial_; }

 private:
  OdeNetConfig config_;
  ModulePtr net_;
  std::vector<OdeBlock*> ode_blocks_;
  MhsaBlock* mhsa_block_ = nullptr;
  index_t final_spatial_ = 0;
};

/// The plain Neural-ODE backbone of Table IV ("Neural ODE").
[[nodiscard]] std::unique_ptr<OdeNet> odenet(index_t image_size, index_t classes, Rng& rng,
                                             index_t steps = 6);

/// The paper's proposed model ("Proposed model", Fig. 2 right).
[[nodiscard]] std::unique_ptr<OdeNet> proposed_model(index_t image_size, index_t classes,
                                                     Rng& rng, index_t steps = 6);

}  // namespace nodetr::models
