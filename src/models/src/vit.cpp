#include "nodetr/models/vit.hpp"

#include <stdexcept>

namespace nodetr::models {

ViTBlock::ViTBlock(index_t dim, index_t heads, index_t mlp_dim, Rng& rng)
    : dim_(dim), mlp_dim_(mlp_dim) {
  ln1_ = std::make_unique<LayerNorm>(dim);
  attn_ = std::make_unique<SeqMhsa>(dim, heads, rng);
  ln2_ = std::make_unique<LayerNorm>(dim);
  fc1_ = std::make_unique<Linear>(dim, mlp_dim, /*bias=*/true, rng);
  gelu_ = std::make_unique<GELU>();
  fc2_ = std::make_unique<Linear>(mlp_dim, dim, /*bias=*/true, rng);
}

Tensor ViTBlock::forward(const Tensor& x) {
  seq_shape_ = x.shape();
  const index_t b = x.dim(0), t = x.dim(1);
  // Attention branch (pre-LN residual).
  Tensor h = ln1_->forward(x);
  h = attn_->forward(h);
  h += x;
  // MLP branch.
  Tensor m = ln2_->forward(h);
  Tensor m2 = m.reshape(Shape{b * t, dim_});
  m2 = fc1_->forward(m2);
  m2 = gelu_->forward(m2);
  m2 = fc2_->forward(m2);
  Tensor out = m2.reshape(Shape{b, t, dim_});
  out += h;
  return out;
}

Tensor ViTBlock::backward(const Tensor& grad_out) {
  const index_t b = seq_shape_.dim(0), t = seq_shape_.dim(1);
  // MLP branch: out = h + MLP(LN2(h)).
  Tensor g2 = grad_out.reshape(Shape{b * t, dim_});
  Tensor gm = fc2_->backward(g2);
  gm = gelu_->backward(gm);
  gm = fc1_->backward(gm);
  Tensor gh = ln2_->backward(gm.reshape(Shape{b, t, dim_}));
  gh += grad_out;  // residual path
  // Attention branch: h = x + Attn(LN1(x)).
  Tensor ga = attn_->backward(gh);
  Tensor gx = ln1_->backward(ga);
  gx += gh;  // residual path
  return gx;
}

std::vector<Module*> ViTBlock::children() {
  return {ln1_.get(), attn_.get(), ln2_.get(), fc1_.get(), gelu_.get(), fc2_.get()};
}

ViT::ViT(ViTConfig config, Rng& rng)
    : config_(config), tokens_(0), cls_token_("cls", {}), pos_embed_("pos", {}) {
  if (config_.image_size % config_.patch_size != 0) {
    throw std::invalid_argument("ViT: image_size must be divisible by patch_size");
  }
  const index_t grid = config_.image_size / config_.patch_size;
  tokens_ = grid * grid + 1;
  patch_embed_ = std::make_unique<Conv2d>(3, config_.dim, config_.patch_size, config_.patch_size,
                                          0, /*bias=*/true, rng);
  cls_token_ = Param("cls", rng.randn(Shape{config_.dim}, 0.0f, 0.02f));
  pos_embed_ = Param("pos", rng.randn(Shape{tokens_, config_.dim}, 0.0f, 0.02f));
  for (index_t i = 0; i < config_.depth; ++i) {
    blocks_.push_back(std::make_unique<ViTBlock>(config_.dim, config_.heads, config_.mlp_dim, rng));
  }
  final_ln_ = std::make_unique<LayerNorm>(config_.dim);
  head_ = std::make_unique<Linear>(config_.dim, config_.classes, /*bias=*/true, rng);
}

Tensor ViT::forward(const Tensor& x) {
  batch_ = x.dim(0);
  const index_t d = config_.dim;
  // Patchify: (B, D, G, G) -> (B, G*G, D) tokens.
  Tensor p = patch_embed_->forward(x);
  const index_t g2 = p.dim(2) * p.dim(3);
  Tensor tok = p.reshape(Shape{batch_, d, g2}).permute({0, 2, 1});
  // Prepend class token, add position embedding.
  Tensor seq(Shape{batch_, tokens_, d});
  for (index_t b = 0; b < batch_; ++b) {
    float* dst = seq.data() + b * tokens_ * d;
    for (index_t c = 0; c < d; ++c) dst[c] = cls_token_.value[c] + pos_embed_.value[c];
    for (index_t t = 0; t < g2; ++t) {
      const float* src = tok.data() + (b * g2 + t) * d;
      float* row = dst + (t + 1) * d;
      const float* pe = pos_embed_.value.data() + (t + 1) * d;
      for (index_t c = 0; c < d; ++c) row[c] = src[c] + pe[c];
    }
  }
  for (auto& blk : blocks_) seq = blk->forward(seq);
  seq = final_ln_->forward(seq);
  // Class-token readout.
  Tensor cls(Shape{batch_, d});
  for (index_t b = 0; b < batch_; ++b) {
    const float* src = seq.data() + b * tokens_ * d;
    std::copy(src, src + d, cls.data() + b * d);
  }
  return head_->forward(cls);
}

Tensor ViT::backward(const Tensor& grad_out) {
  const index_t d = config_.dim;
  Tensor gcls = head_->backward(grad_out);
  Tensor gseq(Shape{batch_, tokens_, d});
  for (index_t b = 0; b < batch_; ++b) {
    const float* src = gcls.data() + b * d;
    std::copy(src, src + d, gseq.data() + b * tokens_ * d);
  }
  gseq = final_ln_->backward(gseq);
  for (auto it = blocks_.rbegin(); it != blocks_.rend(); ++it) gseq = (*it)->backward(gseq);
  // Position embedding and class token gradients.
  const index_t g2 = tokens_ - 1;
  Tensor gtok(Shape{batch_, g2, d});
  for (index_t b = 0; b < batch_; ++b) {
    const float* gb = gseq.data() + b * tokens_ * d;
    for (index_t c = 0; c < d; ++c) {
      cls_token_.grad[c] += gb[c];
      pos_embed_.grad[c] += gb[c];
    }
    for (index_t t = 0; t < g2; ++t) {
      const float* row = gb + (t + 1) * d;
      float* pg = pos_embed_.grad.data() + (t + 1) * d;
      float* tg = gtok.data() + (b * g2 + t) * d;
      for (index_t c = 0; c < d; ++c) {
        pg[c] += row[c];
        tg[c] = row[c];
      }
    }
  }
  // Un-patchify: (B, T, D) -> (B, D, G, G) and back through the conv.
  const index_t grid = config_.image_size / config_.patch_size;
  Tensor gp = gtok.permute({0, 2, 1}).reshape(Shape{batch_, d, grid, grid});
  return patch_embed_->backward(gp);
}

std::vector<Module*> ViT::children() {
  std::vector<Module*> c{patch_embed_.get()};
  for (auto& b : blocks_) c.push_back(b.get());
  c.push_back(final_ln_.get());
  c.push_back(head_.get());
  return c;
}

std::vector<Param*> ViT::local_parameters() { return {&cls_token_, &pos_embed_}; }

std::unique_ptr<ViT> vit_base(index_t image_size, index_t classes, Rng& rng) {
  ViTConfig cfg;
  cfg.image_size = image_size;
  cfg.classes = classes;
  return std::make_unique<ViT>(cfg, rng);
}

}  // namespace nodetr::models
