#include "nodetr/models/odenet.hpp"

#include <stdexcept>

namespace nodetr::models {

namespace {

/// The dsODENet conv dynamics: BN -> ReLU -> DSC -> BN -> ReLU -> DSC.
ModulePtr conv_dynamics(index_t channels, Rng& rng) {
  auto f = std::make_unique<Sequential>();
  f->emplace<BatchNorm2d>(channels);
  f->emplace<ReLU>();
  f->emplace<DepthwiseSeparableConv>(channels, channels, 3, 1, 1, rng);
  f->emplace<BatchNorm2d>(channels);
  f->emplace<ReLU>();
  f->emplace<DepthwiseSeparableConv>(channels, channels, 3, 1, 1, rng);
  return f;
}

/// Downsampling layer [21]: halves H/W, doubles channels. Implemented as a
/// residual block (3x3/2 conv body, 1x1/2 conv skip) so gradients flow well
/// through the strided boundary.
ModulePtr downsample(index_t in_channels, index_t out_channels, Rng& rng) {
  auto body = std::make_unique<Sequential>();
  body->emplace<Conv2d>(in_channels, out_channels, 3, 2, 1, /*bias=*/false, rng);
  body->emplace<BatchNorm2d>(out_channels);
  auto skip = std::make_unique<Sequential>();
  skip->emplace<Conv2d>(in_channels, out_channels, 1, 2, 0, /*bias=*/false, rng);
  skip->emplace<BatchNorm2d>(out_channels);
  return std::make_unique<Residual>(std::move(body), std::move(skip), /*final_relu=*/true);
}

}  // namespace

OdeNet::OdeNet(OdeNetConfig config, Rng& rng) : config_(config) {
  if (config_.image_size % 16 != 0) {
    throw std::invalid_argument("OdeNet: image_size must be divisible by 16");
  }
  auto net = std::make_unique<Sequential>();
  // Stem: /4 total.
  net->emplace<Conv2d>(3, config_.stem_channels, 3, 2, 1, /*bias=*/false, rng);
  net->emplace<BatchNorm2d>(config_.stem_channels);
  net->emplace<ReLU>();
  net->emplace<MaxPool2d>(3, 2, 1);

  index_t channels = config_.stem_channels;
  index_t spatial = config_.image_size / 4;
  if (channels != config_.stage_channels[0]) {
    throw std::invalid_argument("OdeNet: stem_channels must equal stage_channels[0]");
  }

  for (int stage = 0; stage < 3; ++stage) {
    if (stage > 0) {
      net->push_back(downsample(channels, config_.stage_channels[static_cast<std::size_t>(stage)],
                                rng));
      channels = config_.stage_channels[static_cast<std::size_t>(stage)];
      spatial /= 2;
    }
    ModulePtr dynamics;
    if (stage == 2 && config_.final_stage == FinalStage::kMhsaOde) {
      MhsaBlockConfig mc{.channels = channels,
                         .bottleneck_dim = config_.mhsa_bottleneck,
                         .heads = config_.mhsa_heads,
                         .height = spatial,
                         .width = spatial,
                         .attention = config_.attention,
                         .pos = config_.pos,
                         .layer_norm_out = config_.mhsa_layer_norm};
      auto block = std::make_unique<MhsaBlock>(mc, rng);
      mhsa_block_ = block.get();
      dynamics = std::move(block);
    } else {
      dynamics = conv_dynamics(channels, rng);
    }
    auto ob = std::make_unique<OdeBlock>(std::move(dynamics), config_.steps, config_.solver);
    ode_blocks_.push_back(ob.get());
    net->push_back(std::move(ob));
  }
  final_spatial_ = spatial;

  net->emplace<BatchNorm2d>(channels);
  net->emplace<ReLU>();
  net->emplace<GlobalAvgPool>();
  net->emplace<Linear>(channels, config_.classes, /*bias=*/true, rng);
  net_ = std::move(net);
}

Tensor OdeNet::features(const Tensor& x) {
  // Forward through every stage except the classification head.
  auto mods = net_->children();
  Tensor h = x;
  for (std::size_t i = 0; i + 1 < mods.size(); ++i) h = mods[i]->forward(h);
  return h;
}

std::string OdeNet::name() const {
  return config_.final_stage == FinalStage::kMhsaOde ? "ProposedModel" : "OdeNet";
}

std::unique_ptr<OdeNet> odenet(index_t image_size, index_t classes, Rng& rng, index_t steps) {
  OdeNetConfig cfg;
  cfg.image_size = image_size;
  cfg.classes = classes;
  cfg.steps = steps;
  return std::make_unique<OdeNet>(cfg, rng);
}

std::unique_ptr<OdeNet> proposed_model(index_t image_size, index_t classes, Rng& rng,
                                       index_t steps) {
  OdeNetConfig cfg;
  cfg.image_size = image_size;
  cfg.classes = classes;
  cfg.steps = steps;
  cfg.final_stage = FinalStage::kMhsaOde;
  return std::make_unique<OdeNet>(cfg, rng);
}

}  // namespace nodetr::models
