#include "nodetr/models/botnet.hpp"

namespace nodetr::models {

ModulePtr botnet50(index_t image_size, index_t classes, Rng& rng) {
  ResNetConfig cfg;
  cfg.image_size = image_size;
  cfg.classes = classes;
  cfg.bot_last_stage = true;
  return build_resnet(cfg, rng);
}

}  // namespace nodetr::models
