#include "nodetr/models/zoo.hpp"

#include <stdexcept>

namespace nodetr::models {

std::string to_string(ModelKind kind) {
  switch (kind) {
    case ModelKind::kResNet50: return "resnet50";
    case ModelKind::kBoTNet50: return "botnet50";
    case ModelKind::kOdeNet: return "odenet";
    case ModelKind::kProposed: return "proposed";
    case ModelKind::kViTBase: return "vit_base";
    case ModelKind::kTinyResNet: return "tiny_resnet";
    case ModelKind::kTinyBoTNet: return "tiny_botnet";
    case ModelKind::kTinyOdeNet: return "tiny_odenet";
    case ModelKind::kTinyProposed: return "tiny_proposed";
    case ModelKind::kTinyViT: return "tiny_vit";
  }
  throw std::invalid_argument("to_string: unknown ModelKind");
}

std::string paper_name(ModelKind kind) {
  switch (kind) {
    case ModelKind::kResNet50: case ModelKind::kTinyResNet: return "ResNet50";
    case ModelKind::kBoTNet50: case ModelKind::kTinyBoTNet: return "BoTNet50";
    case ModelKind::kOdeNet: case ModelKind::kTinyOdeNet: return "Neural ODE";
    case ModelKind::kProposed: case ModelKind::kTinyProposed: return "Proposed model";
    case ModelKind::kViTBase: case ModelKind::kTinyViT: return "ViT-Base";
  }
  throw std::invalid_argument("paper_name: unknown ModelKind");
}

namespace {

ResNetConfig tiny_resnet_cfg(index_t image_size, index_t classes, bool bot) {
  ResNetConfig cfg;
  cfg.image_size = image_size;
  cfg.classes = classes;
  cfg.stem_channels = 16;
  cfg.blocks = {1, 1, 1, 1};
  cfg.base_width = 8;
  cfg.bot_last_stage = bot;
  cfg.mhsa_heads = 2;
  return cfg;
}

OdeNetConfig tiny_odenet_cfg(index_t image_size, index_t classes, bool mhsa) {
  OdeNetConfig cfg;
  cfg.image_size = image_size;
  cfg.classes = classes;
  cfg.stem_channels = 16;
  cfg.stage_channels = {16, 32, 64};
  cfg.steps = 3;
  cfg.final_stage = mhsa ? FinalStage::kMhsaOde : FinalStage::kConvOde;
  cfg.mhsa_bottleneck = 32;
  cfg.mhsa_heads = 2;
  return cfg;
}

}  // namespace

ModulePtr make_model(ModelKind kind, index_t image_size, index_t classes, Rng& rng) {
  switch (kind) {
    case ModelKind::kResNet50:
      return resnet50(image_size, classes, rng);
    case ModelKind::kBoTNet50:
      return botnet50(image_size, classes, rng);
    case ModelKind::kOdeNet:
      return odenet(image_size, classes, rng);
    case ModelKind::kProposed:
      return proposed_model(image_size, classes, rng);
    case ModelKind::kViTBase:
      return vit_base(image_size, classes, rng);
    case ModelKind::kTinyResNet:
      return build_resnet(tiny_resnet_cfg(image_size, classes, false), rng);
    case ModelKind::kTinyBoTNet:
      return build_resnet(tiny_resnet_cfg(image_size, classes, true), rng);
    case ModelKind::kTinyOdeNet:
      return std::make_unique<OdeNet>(tiny_odenet_cfg(image_size, classes, false), rng);
    case ModelKind::kTinyProposed:
      return std::make_unique<OdeNet>(tiny_odenet_cfg(image_size, classes, true), rng);
    case ModelKind::kTinyViT: {
      ViTConfig cfg;
      cfg.image_size = image_size;
      cfg.patch_size = 8;
      cfg.classes = classes;
      cfg.dim = 64;
      cfg.depth = 4;
      cfg.heads = 4;
      cfg.mlp_dim = 128;
      return std::make_unique<ViT>(cfg, rng);
    }
  }
  throw std::invalid_argument("make_model: unknown ModelKind");
}

const std::vector<ModelKind>& table4_models() {
  static const std::vector<ModelKind> kinds = {ModelKind::kResNet50, ModelKind::kBoTNet50,
                                               ModelKind::kOdeNet, ModelKind::kProposed,
                                               ModelKind::kViTBase};
  return kinds;
}

const std::vector<ModelKind>& tiny_models() {
  static const std::vector<ModelKind> kinds = {ModelKind::kTinyResNet, ModelKind::kTinyBoTNet,
                                               ModelKind::kTinyOdeNet, ModelKind::kTinyProposed,
                                               ModelKind::kTinyViT};
  return kinds;
}

index_t paper_param_count(ModelKind kind) {
  switch (kind) {
    case ModelKind::kResNet50: case ModelKind::kTinyResNet: return 23522362;
    case ModelKind::kBoTNet50: case ModelKind::kTinyBoTNet: return 18885962;
    case ModelKind::kOdeNet: case ModelKind::kTinyOdeNet: return 599309;
    case ModelKind::kProposed: case ModelKind::kTinyProposed: return 513275;
    case ModelKind::kViTBase: case ModelKind::kTinyViT: return 78218506;
  }
  throw std::invalid_argument("paper_param_count: unknown ModelKind");
}

}  // namespace nodetr::models
