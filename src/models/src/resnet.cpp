#include "nodetr/models/resnet.hpp"

#include <stdexcept>

namespace nodetr::models {

namespace {

constexpr index_t kExpansion = 4;  // bottleneck output = 4x width

/// One bottleneck block. `spatial` is the feature-map extent at the BLOCK
/// INPUT; with stride 2 the 3x3 (or the post-MHSA avgpool in BoTNet) halves
/// it. `use_mhsa` swaps the 3x3 conv for multi-head self-attention [7].
ModulePtr bottleneck(index_t in_channels, index_t width, index_t stride, index_t spatial,
                     bool use_mhsa, index_t heads, AttentionKind attention, Rng& rng) {
  const index_t out_channels = width * kExpansion;
  auto body = std::make_unique<Sequential>();
  body->emplace<Conv2d>(in_channels, width, 1, 1, 0, /*bias=*/false, rng);
  body->emplace<BatchNorm2d>(width);
  body->emplace<ReLU>();
  if (use_mhsa) {
    // BoTNet: MHSA runs at the incoming resolution; when the block strides,
    // a 2x2 average pool after the attention performs the downsampling [7].
    MhsaConfig mc{.dim = width, .heads = heads, .height = spatial, .width = spatial,
                  .attention = attention, .pos = PosEncodingKind::kRelative2d,
                  .layer_norm_out = false};
    body->emplace<MultiHeadSelfAttention>(mc, rng);
    if (stride == 2) body->emplace<AvgPool2d>(2, 2, 0);
  } else {
    body->emplace<Conv2d>(width, width, 3, stride, 1, /*bias=*/false, rng);
  }
  body->emplace<BatchNorm2d>(width);
  body->emplace<ReLU>();
  body->emplace<Conv2d>(width, out_channels, 1, 1, 0, /*bias=*/false, rng);
  body->emplace<BatchNorm2d>(out_channels);

  ModulePtr skip;
  if (stride != 1 || in_channels != out_channels) {
    auto s = std::make_unique<Sequential>();
    s->emplace<Conv2d>(in_channels, out_channels, 1, stride, 0, /*bias=*/false, rng);
    s->emplace<BatchNorm2d>(out_channels);
    skip = std::move(s);
  }
  return std::make_unique<Residual>(std::move(body), std::move(skip), /*final_relu=*/true);
}

}  // namespace

ModulePtr build_resnet(const ResNetConfig& config, Rng& rng) {
  // Spatial bookkeeping: stem conv /2, maxpool /2, stages 2-4 each /2.
  index_t spatial = config.image_size;
  auto half = [](index_t s) { return (s + 1) / 2; };

  auto net = std::make_unique<Sequential>();
  net->emplace<Conv2d>(3, config.stem_channels, 7, 2, 3, /*bias=*/false, rng);
  spatial = half(spatial);
  net->emplace<BatchNorm2d>(config.stem_channels);
  net->emplace<ReLU>();
  net->emplace<MaxPool2d>(3, 2, 1);
  spatial = half(spatial);

  index_t in_channels = config.stem_channels;
  for (index_t stage = 0; stage < 4; ++stage) {
    const index_t width = config.base_width << stage;
    const bool mhsa_stage = config.bot_last_stage && stage == 3;
    for (index_t b = 0; b < config.blocks[static_cast<std::size_t>(stage)]; ++b) {
      const index_t stride = (stage > 0 && b == 0) ? 2 : 1;
      if (mhsa_stage && spatial < 1) {
        throw std::invalid_argument("build_resnet: image too small for BoT stage");
      }
      net->push_back(bottleneck(in_channels, width, stride, spatial, mhsa_stage,
                                config.mhsa_heads, config.bot_attention, rng));
      if (stride == 2) spatial = half(spatial);
      in_channels = width * kExpansion;
    }
  }
  net->emplace<GlobalAvgPool>();
  net->emplace<Linear>(in_channels, config.classes, /*bias=*/true, rng);
  return net;
}

ModulePtr resnet50(index_t image_size, index_t classes, Rng& rng) {
  ResNetConfig cfg;
  cfg.image_size = image_size;
  cfg.classes = classes;
  return build_resnet(cfg, rng);
}

}  // namespace nodetr::models
