#include "nodetr/core/lightweight_transformer.hpp"

#include <stdexcept>

#include "nodetr/obs/obs.hpp"
#include "nodetr/tensor/ops.hpp"
#include "nodetr/train/checkpoint.hpp"

namespace nodetr::core {

LightweightTransformer::LightweightTransformer(Options options) : options_(options) {
  models::OdeNetConfig cfg;
  cfg.image_size = options_.image_size;
  cfg.classes = options_.classes;
  cfg.stem_channels = options_.stem_channels;
  cfg.stage_channels = {options_.stem_channels, options_.stem_channels * 2,
                        options_.stem_channels * 4};
  cfg.steps = options_.solver_steps;
  cfg.final_stage = models::FinalStage::kMhsaOde;
  cfg.mhsa_bottleneck = options_.mhsa_bottleneck;
  cfg.mhsa_heads = options_.mhsa_heads;
  cfg.attention = options_.relu_attention ? models::AttentionKind::kRelu
                                          : models::AttentionKind::kSoftmax;
  nodetr::tensor::Rng rng(options_.seed);
  model_ = std::make_unique<models::OdeNet>(cfg, rng);
}

train::History LightweightTransformer::fit(const std::vector<data::Sample>& train_set,
                                           const std::vector<data::Sample>& test_set,
                                           const train::TrainConfig& config) {
  return train::fit(*model_, train_set, test_set, config);
}

float LightweightTransformer::evaluate(const std::vector<data::Sample>& test_set) {
  return train::evaluate(*model_, test_set);
}

Tensor LightweightTransformer::predict_logits(const Tensor& batch) {
  obs::ScopedSpan span("core.predict_logits");
  span.attr("batch", batch.dim(0));
  const bool was_training = model_->training();
  model_->train(false);
  Tensor logits = model_->forward(batch);
  model_->train(was_training);
  return logits;
}

index_t LightweightTransformer::predict(const Tensor& image) {
  if (image.rank() != 3) {
    throw std::invalid_argument("LightweightTransformer::predict: expected (3, S, S)");
  }
  Tensor batch = image.reshape(
      nodetr::tensor::Shape{1, image.dim(0), image.dim(1), image.dim(2)});
  Tensor logits = predict_logits(batch);
  return nodetr::tensor::argmax(logits);
}

std::unique_ptr<rt::OffloadedModel> LightweightTransformer::offload(
    hls::DataType dtype, fx::QuantizationScheme scheme) {
  return std::make_unique<rt::OffloadedModel>(*model_, dtype, scheme);
}

hls::MhsaDesignPoint LightweightTransformer::design_point(hls::DataType dtype) const {
  hls::MhsaDesignPoint point;
  point.dim = options_.mhsa_bottleneck;
  point.height = point.width = model_->final_spatial();
  point.heads = options_.mhsa_heads;
  point.dtype = dtype;
  return point;
}

hls::ResourceUsage LightweightTransformer::estimate_resources(hls::DataType dtype) const {
  return hls::ResourceModel{}.estimate(design_point(dtype));
}

double LightweightTransformer::estimate_ip_watts(hls::DataType dtype) const {
  return hls::PowerModel{}.ip_watts(estimate_resources(dtype));
}

void LightweightTransformer::save(const std::string& path) {
  train::save_checkpoint(path, *model_);
}

void LightweightTransformer::load(const std::string& path) {
  train::load_checkpoint(path, *model_);
}

index_t LightweightTransformer::num_parameters() { return model_->num_parameters(); }

}  // namespace nodetr::core
