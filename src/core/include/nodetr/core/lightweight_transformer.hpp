// LightweightTransformer: the library's top-level API — the paper's proposed
// Neural-ODE + BoTNet hybrid, packaged for a downstream user: build, train,
// evaluate, quantize, estimate FPGA cost, and run with the simulated MHSA
// accelerator.
#pragma once

#include <memory>
#include <string>

#include "nodetr/data/synth_stl.hpp"
#include "nodetr/hls/power.hpp"
#include "nodetr/hls/resources.hpp"
#include "nodetr/models/odenet.hpp"
#include "nodetr/rt/board.hpp"
#include "nodetr/train/trainer.hpp"

namespace nodetr::core {

using nodetr::tensor::index_t;
using nodetr::tensor::Tensor;

struct Options {
  index_t image_size = 96;  ///< must be divisible by 16
  index_t classes = 10;
  index_t solver_steps = 6;        ///< C: Euler iterations per ODEBlock
  index_t stem_channels = 64;      ///< stage widths are stem, 2x, 4x
  index_t mhsa_bottleneck = 64;    ///< attention width Dm
  index_t mhsa_heads = 4;
  bool relu_attention = true;      ///< Eq. 16 (false: softmax)
  std::uint64_t seed = 0xb07;
};

class LightweightTransformer {
 public:
  explicit LightweightTransformer(Options options = {});

  // ---- training & evaluation ------------------------------------------------

  /// Train with the paper's recipe (SGD + momentum, cosine warm restarts,
  /// flip/jitter/erase augmentation). Returns the per-epoch history.
  train::History fit(const std::vector<data::Sample>& train_set,
                     const std::vector<data::Sample>& test_set,
                     const train::TrainConfig& config);

  /// Top-1 accuracy in eval mode.
  [[nodiscard]] float evaluate(const std::vector<data::Sample>& test_set);

  // ---- inference ------------------------------------------------------------

  /// Logits for a batch (B, 3, S, S).
  [[nodiscard]] Tensor predict_logits(const Tensor& batch);
  /// Predicted class of one image (3, S, S).
  [[nodiscard]] index_t predict(const Tensor& image);

  /// Route the MHSA through the simulated FPGA accelerator. The returned
  /// session owns the offload; destroy it to restore software execution.
  [[nodiscard]] std::unique_ptr<rt::OffloadedModel> offload(
      hls::DataType dtype, fx::QuantizationScheme scheme = fx::scheme_32_24());

  // ---- deployment estimation --------------------------------------------------

  /// FPGA resources of this model's MHSA IP at its design point.
  [[nodiscard]] hls::ResourceUsage estimate_resources(hls::DataType dtype) const;
  /// IP power draw at that design point.
  [[nodiscard]] double estimate_ip_watts(hls::DataType dtype) const;
  /// The accelerator design point implied by the model configuration.
  [[nodiscard]] hls::MhsaDesignPoint design_point(hls::DataType dtype) const;

  // ---- persistence & introspection --------------------------------------------

  void save(const std::string& path);
  void load(const std::string& path);
  [[nodiscard]] index_t num_parameters();
  [[nodiscard]] models::OdeNet& model() { return *model_; }
  [[nodiscard]] const Options& options() const { return options_; }

 private:
  Options options_;
  std::unique_ptr<models::OdeNet> model_;
};

}  // namespace nodetr::core
