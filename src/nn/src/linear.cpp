#include "nodetr/nn/linear.hpp"

#include <stdexcept>

#include "nodetr/tensor/gemm.hpp"

namespace nodetr::nn {

namespace nt = nodetr::tensor;

Linear::Linear(index_t in_features, index_t out_features, bool bias, Rng& rng)
    : in_(in_features), out_(out_features), has_bias_(bias),
      weight_("weight", rng.kaiming_normal(Shape{out_features, in_features}, in_features)),
      bias_("bias", bias ? Tensor(Shape{out_features}) : Tensor(Shape{0})) {}

Tensor Linear::forward(const Tensor& x) {
  if (x.rank() != 2 || x.dim(1) != in_) {
    throw std::invalid_argument("Linear: expected (B, " + std::to_string(in_) + "), got " +
                                x.shape().to_string());
  }
  x_ = x;
  const index_t b = x.dim(0);
  Tensor y(Shape{b, out_});
  // y = x W^T with the bias fused into the GEMM epilogue.
  nt::gemm_blocked(b, in_, out_, nt::GemmView::plain(x.data(), in_),
                   nt::GemmView::transposed(weight_.value.data(), in_), y.data(), out_,
                   {.bias_col = has_bias_ ? bias_.value.data() : nullptr});
  return y;
}

Tensor Linear::backward(const Tensor& grad_out) {
  const index_t b = grad_out.dim(0);
  // dW (out,in) += g^T (out,B) * x (B,in), accumulated straight into the grad
  // buffer instead of materializing a temporary and adding it.
  nt::gemm_blocked(out_, b, in_, nt::GemmView::transposed(grad_out.data(), out_),
                   nt::GemmView::plain(x_.data(), in_), weight_.grad.data(), in_,
                   {.accumulate = true});
  if (has_bias_) {
    for (index_t r = 0; r < b; ++r) {
      const float* row = grad_out.data() + r * out_;
      for (index_t c = 0; c < out_; ++c) bias_.grad[c] += row[c];
    }
  }
  // dx (B,in) = g (B,out) * W (out,in)
  return nt::matmul(grad_out, weight_.value);
}

std::string Linear::name() const {
  return "Linear(" + std::to_string(in_) + "->" + std::to_string(out_) + ")";
}

std::vector<Param*> Linear::local_parameters() {
  std::vector<Param*> p{&weight_};
  if (has_bias_) p.push_back(&bias_);
  return p;
}

}  // namespace nodetr::nn
