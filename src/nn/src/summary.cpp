#include "nodetr/nn/summary.hpp"

#include <sstream>

namespace nodetr::nn {

std::string with_commas(index_t value) {
  std::string digits = std::to_string(value < 0 ? -value : value);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (value < 0) out.push_back('-');
  return {out.rbegin(), out.rend()};
}

namespace {

void render(Module& m, int depth, std::ostringstream& os) {
  index_t local = 0;
  for (const Param* p : m.local_parameters()) local += p->numel();
  os << std::string(static_cast<std::size_t>(depth) * 2, ' ') << m.name();
  if (depth == 0) {
    os << "  [" << with_commas(m.num_parameters()) << " params total]";
  } else if (local > 0) {
    os << "  (" << with_commas(local) << " params)";
  }
  os << "\n";
  for (Module* c : m.children()) render(*c, depth + 1, os);
}

}  // namespace

std::string summary(Module& module) {
  std::ostringstream os;
  render(module, 0, os);
  return os.str();
}

}  // namespace nodetr::nn
