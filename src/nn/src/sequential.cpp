#include "nodetr/nn/sequential.hpp"

#include <stdexcept>

namespace nodetr::nn {

Tensor Sequential::forward(const Tensor& x) {
  Tensor h = x;
  for (auto& m : modules_) {
    h = m->forward(h);
    if (act_hook_) h = act_hook_(h);
  }
  return h;
}

Tensor Sequential::backward(const Tensor& grad_out) {
  if (act_hook_) {
    throw std::logic_error(
        "Sequential::backward: unsupported while an activation hook is installed");
  }
  Tensor g = grad_out;
  for (auto it = modules_.rbegin(); it != modules_.rend(); ++it) g = (*it)->backward(g);
  return g;
}

std::string Sequential::name() const {
  return "Sequential[" + std::to_string(modules_.size()) + "]";
}

std::vector<Module*> Sequential::children() {
  std::vector<Module*> out;
  out.reserve(modules_.size());
  for (auto& m : modules_) out.push_back(m.get());
  return out;
}

}  // namespace nodetr::nn
