#include "nodetr/nn/attention.hpp"

#include <cmath>
#include <stdexcept>

#include "nodetr/nn/posenc.hpp"
#include "nodetr/obs/obs.hpp"
#include "nodetr/tensor/gemm.hpp"
#include "nodetr/tensor/ops.hpp"

namespace nodetr::nn {

namespace nt = nodetr::tensor;

namespace {

/// Offset of the (N, Dh) head block for sample `b`, head `h` inside a
/// (B*N, D) matrix. The block is addressed in place as a strided GemmView
/// with leading dimension D — no gather/scatter copies.
index_t head_offset(index_t b, index_t n, index_t d, index_t h, index_t dh) {
  return b * n * d + h * dh;
}

}  // namespace

MultiHeadSelfAttention::MultiHeadSelfAttention(MhsaConfig config, Rng& rng)
    : config_(config),
      wq_("wq", {}), wk_("wk", {}), wv_("wv", {}),
      rel_h_("rel_h", {}), rel_w_("rel_w", {}) {
  if (config_.dim % config_.heads != 0) {
    throw std::invalid_argument("MHSA: dim must be divisible by heads");
  }
  const index_t d = config_.dim;
  const float proj_std = 1.0f / std::sqrt(static_cast<float>(d));
  wq_ = Param("wq", rng.randn(Shape{d, d}, 0.0f, proj_std));
  wk_ = Param("wk", rng.randn(Shape{d, d}, 0.0f, proj_std));
  wv_ = Param("wv", rng.randn(Shape{d, d}, 0.0f, proj_std));
  if (config_.pos == PosEncodingKind::kRelative2d) {
    // "Initial values of these vectors are drawn from a normal distribution."
    const index_t dh = config_.head_dim();
    const float pos_std = 1.0f / std::sqrt(static_cast<float>(dh));
    rel_h_ = Param("rel_h", rng.randn(Shape{config_.heads, config_.height, dh}, 0.0f, pos_std));
    rel_w_ = Param("rel_w", rng.randn(Shape{config_.heads, config_.width, dh}, 0.0f, pos_std));
  }
  if (config_.layer_norm_out) ln_ = std::make_unique<LayerNorm>(d);
  if (config_.pos == PosEncodingKind::kAbsoluteSinusoidal) {
    abs_pos_ = sinusoidal_encoding(config_.tokens(), d);
  }
}

const Tensor& MultiHeadSelfAttention::attention_weights(index_t sample, index_t head) const {
  if (sample < 0 || sample >= batch_ || head < 0 || head >= config_.heads) {
    throw std::out_of_range("MHSA::attention_weights: sample/head out of range");
  }
  return attn_[static_cast<std::size_t>(sample * config_.heads + head)];
}

Tensor MultiHeadSelfAttention::relative_matrix(index_t head) const {
  const index_t h_ = config_.height, w_ = config_.width, dh = config_.head_dim();
  Tensor r(Shape{h_ * w_, dh});
  for (index_t y = 0; y < h_; ++y) {
    const float* rh = rel_h_.value.data() + (head * h_ + y) * dh;
    for (index_t x = 0; x < w_; ++x) {
      const float* rw = rel_w_.value.data() + (head * w_ + x) * dh;
      float* dst = r.data() + (y * w_ + x) * dh;
      for (index_t c = 0; c < dh; ++c) dst[c] = rh[c] + rw[c];
    }
  }
  return r;
}

Tensor MultiHeadSelfAttention::forward(const Tensor& x) {
  obs::ScopedSpan span("mhsa.forward");
  span.attr("dim", config_.dim);
  span.attr("heads", config_.heads);
  static auto& forwards = obs::Registry::instance().counter("nn.mhsa.forwards");
  forwards.add();
  if (override_) {
    // Offloaded execution (e.g. the simulated accelerator) nests under this
    // span so software and offloaded runs line up in one trace.
    span.attr("offloaded", std::int64_t{1});
    return override_(x, *this);
  }
  if (x.rank() != 4 || x.dim(1) != config_.dim || x.dim(2) != config_.height ||
      x.dim(3) != config_.width) {
    throw std::invalid_argument("MHSA: expected (B, " + std::to_string(config_.dim) + ", " +
                                std::to_string(config_.height) + ", " +
                                std::to_string(config_.width) + "), got " +
                                x.shape().to_string());
  }
  const index_t b = x.dim(0), d = config_.dim, n = config_.tokens();
  const index_t heads = config_.heads, dh = config_.head_dim();
  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));
  batch_ = b;

  // (B, D, H, W) -> tokens (B*N, D).
  tokens_ = x.permute({0, 2, 3, 1}).reshape(Shape{b * n, d});
  if (config_.pos == PosEncodingKind::kAbsoluteSinusoidal) {
    for (index_t s = 0; s < b; ++s) {
      for (index_t r = 0; r < n; ++r) {
        float* row = tokens_.data() + (s * n + r) * d;
        const float* p = abs_pos_.data() + r * d;
        for (index_t c = 0; c < d; ++c) row[c] += p[c];
      }
    }
  }

  {
    NODETR_TRACE_SCOPE("mhsa.qkv_projection");
    q_ = nt::matmul(tokens_, wq_.value);
    k_ = nt::matmul(tokens_, wk_.value);
    v_ = nt::matmul(tokens_, wv_.value);
  }

  Tensor out(Shape{b * n, d});
  attn_.assign(static_cast<std::size_t>(b * heads), Tensor());
  double zero_count = 0.0;
  obs::ScopedSpan attn_span("mhsa.attention");
  for (index_t s = 0; s < b; ++s) {
    for (index_t h = 0; h < heads; ++h) {
      const index_t off = head_offset(s, n, d, h, dh);
      const auto qh = nt::GemmView::plain(q_.data() + off, d);
      const auto kh = nt::GemmView::transposed(k_.data() + off, d);
      const auto vh = nt::GemmView::plain(v_.data() + off, d);
      // logits = (Q K^T [+ Q R^T]) / sqrt(Dh)  — Eq. (15).
      Tensor logits(Shape{n, n});
      nt::gemm_blocked(n, dh, n, qh, kh, logits.data(), n);
      if (config_.pos == PosEncodingKind::kRelative2d) {
        const Tensor r = relative_matrix(h);
        nt::gemm_blocked(n, dh, n, qh, nt::GemmView::transposed(r.data(), dh), logits.data(), n,
                         {.accumulate = true});
      }
      logits *= scale;
      Tensor a = (config_.attention == AttentionKind::kRelu) ? nt::relu(logits)
                                                             : nt::softmax_rows(logits);
      for (index_t i = 0; i < a.numel(); ++i) zero_count += (a[i] == 0.0f) ? 1.0 : 0.0;
      // O head block = A V, written straight into its strided slot of `out`.
      nt::gemm_blocked(n, n, dh, nt::GemmView::plain(a.data(), n), vh, out.data() + off, d);
      attn_[static_cast<std::size_t>(s * heads + h)] = std::move(a);
    }
  }
  last_sparsity_ = static_cast<float>(zero_count / static_cast<double>(b * heads * n * n));
  attn_span.attr("sparsity", static_cast<double>(last_sparsity_));
  attn_span.end();

  if (ln_) {
    NODETR_TRACE_SCOPE("mhsa.layer_norm");
    out = ln_->forward(out);
  }
  return out.reshape(Shape{b, config_.height, config_.width, d}).permute({0, 3, 1, 2});
}

Tensor MultiHeadSelfAttention::backward(const Tensor& grad_out) {
  if (override_) {
    throw std::logic_error("MHSA::backward: unsupported while a forward override is active");
  }
  const index_t b = batch_, d = config_.dim, n = config_.tokens();
  const index_t heads = config_.heads, dh = config_.head_dim();
  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));

  Tensor g = grad_out.permute({0, 2, 3, 1}).reshape(Shape{b * n, d});
  if (ln_) g = ln_->backward(g);

  Tensor gq(Shape{b * n, d}), gk(Shape{b * n, d}), gv(Shape{b * n, d});
  for (index_t s = 0; s < b; ++s) {
    for (index_t h = 0; h < heads; ++h) {
      const Tensor& a = attn_[static_cast<std::size_t>(s * heads + h)];
      const index_t off = head_offset(s, n, d, h, dh);
      const auto qh = nt::GemmView::plain(q_.data() + off, d);
      const auto goh = nt::GemmView::plain(g.data() + off, d);

      Tensor ga(Shape{n, n});  // gA = gOh V^T
      nt::gemm_blocked(n, dh, n, goh, nt::GemmView::transposed(v_.data() + off, d), ga.data(), n);
      // gV head block = A^T gOh, written in place into its slot of gv.
      nt::gemm_blocked(n, n, dh, nt::GemmView::transposed(a.data(), n), goh, gv.data() + off, d);

      Tensor glogits(Shape{n, n});
      if (config_.attention == AttentionKind::kRelu) {
        // ReLU': positive attention weight <=> positive logit.
        for (index_t i = 0; i < glogits.numel(); ++i) {
          glogits[i] = a[i] > 0.0f ? ga[i] : 0.0f;
        }
      } else {
        // Softmax rows: dl = A * (gA - <gA, A>_row).
        for (index_t r = 0; r < n; ++r) {
          const float* arow = a.data() + r * n;
          const float* garow = ga.data() + r * n;
          float* glrow = glogits.data() + r * n;
          double dot = 0.0;
          for (index_t c = 0; c < n; ++c) dot += static_cast<double>(garow[c]) * arow[c];
          for (index_t c = 0; c < n; ++c) {
            glrow[c] = arow[c] * (garow[c] - static_cast<float>(dot));
          }
        }
      }
      glogits *= scale;
      const auto gl = nt::GemmView::plain(glogits.data(), n);
      const auto gl_t = nt::GemmView::transposed(glogits.data(), n);

      // Q gets contributions from both Q K^T and Q R^T.
      nt::gemm_blocked(n, n, dh, gl, nt::GemmView::plain(k_.data() + off, d), gq.data() + off, d);
      // gK head block = glogits^T Q.
      nt::gemm_blocked(n, n, dh, gl_t, qh, gk.data() + off, d);
      if (config_.pos == PosEncodingKind::kRelative2d) {
        const Tensor r = relative_matrix(h);
        nt::gemm_blocked(n, n, dh, gl, nt::GemmView::plain(r.data(), dh), gq.data() + off, d,
                         {.accumulate = true});
        // gR = glogits^T Q — already sitting in the gK block — marginalized
        // onto R_h (rows) and R_w (cols).
        const index_t hh = config_.height, ww = config_.width;
        for (index_t y = 0; y < hh; ++y) {
          float* grh = rel_h_.grad.data() + (h * hh + y) * dh;
          for (index_t x = 0; x < ww; ++x) {
            float* grw = rel_w_.grad.data() + (h * ww + x) * dh;
            const float* src = gk.data() + off + (y * ww + x) * d;
            for (index_t c = 0; c < dh; ++c) {
              grh[c] += src[c];
              grw[c] += src[c];
            }
          }
        }
      }
    }
  }

  // dW* (D,D) += tokens^T g*, accumulated directly into the grad buffers.
  const auto tok_t = nt::GemmView::transposed(tokens_.data(), d);
  nt::gemm_blocked(d, b * n, d, tok_t, nt::GemmView::plain(gq.data(), d), wq_.grad.data(), d,
                   {.accumulate = true});
  nt::gemm_blocked(d, b * n, d, tok_t, nt::GemmView::plain(gk.data(), d), wk_.grad.data(), d,
                   {.accumulate = true});
  nt::gemm_blocked(d, b * n, d, tok_t, nt::GemmView::plain(gv.data(), d), wv_.grad.data(), d,
                   {.accumulate = true});

  Tensor gtok(Shape{b * n, d});
  nt::gemm_blocked(b * n, d, d, nt::GemmView::plain(gq.data(), d),
                   nt::GemmView::transposed(wq_.value.data(), d), gtok.data(), d);
  nt::gemm_blocked(b * n, d, d, nt::GemmView::plain(gk.data(), d),
                   nt::GemmView::transposed(wk_.value.data(), d), gtok.data(), d,
                   {.accumulate = true});
  nt::gemm_blocked(b * n, d, d, nt::GemmView::plain(gv.data(), d),
                   nt::GemmView::transposed(wv_.value.data(), d), gtok.data(), d,
                   {.accumulate = true});
  // Absolute positional table is a constant; its addition passes the gradient
  // through unchanged.
  return gtok.reshape(Shape{b, config_.height, config_.width, d}).permute({0, 3, 1, 2});
}

std::string MultiHeadSelfAttention::name() const {
  return "MHSA(D=" + std::to_string(config_.dim) + ",heads=" + std::to_string(config_.heads) +
         "," + std::to_string(config_.height) + "x" + std::to_string(config_.width) +
         (config_.attention == AttentionKind::kRelu ? ",relu" : ",softmax") + ")";
}

std::vector<Param*> MultiHeadSelfAttention::local_parameters() {
  std::vector<Param*> p{&wq_, &wk_, &wv_};
  if (config_.pos == PosEncodingKind::kRelative2d) {
    p.push_back(&rel_h_);
    p.push_back(&rel_w_);
  }
  return p;
}

std::vector<Module*> MultiHeadSelfAttention::children() {
  if (ln_) return {ln_.get()};
  return {};
}

}  // namespace nodetr::nn
