#include "nodetr/nn/module.hpp"

namespace nodetr::nn {

std::vector<Param*> Module::parameters() {
  std::vector<Param*> out = local_parameters();
  for (Module* c : children()) {
    auto sub = c->parameters();
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

std::vector<Tensor*> Module::buffers() {
  std::vector<Tensor*> out = local_buffers();
  for (Module* c : children()) {
    auto sub = c->buffers();
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

index_t Module::num_parameters() {
  index_t n = 0;
  for (const Param* p : parameters()) n += p->numel();
  return n;
}

void Module::train(bool on) {
  training_ = on;
  for (Module* c : children()) c->train(on);
}

void Module::zero_grad() {
  for (Param* p : parameters()) p->grad.zero();
}

}  // namespace nodetr::nn
