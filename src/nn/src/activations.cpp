#include "nodetr/nn/activations.hpp"

#include <cmath>

namespace nodetr::nn {

Tensor ReLU::forward(const Tensor& x) {
  mask_ = Tensor(x.shape());
  Tensor out(x.shape());
  for (index_t i = 0; i < x.numel(); ++i) {
    const bool pos = x[i] > 0.0f;
    mask_[i] = pos ? 1.0f : 0.0f;
    out[i] = pos ? x[i] : 0.0f;
  }
  return out;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  Tensor gx(grad_out.shape());
  for (index_t i = 0; i < grad_out.numel(); ++i) gx[i] = grad_out[i] * mask_[i];
  return gx;
}

namespace {
constexpr float kSqrt2OverPi = 0.7978845608028654f;
constexpr float kGeluC = 0.044715f;
}  // namespace

Tensor GELU::forward(const Tensor& x) {
  x_ = x;
  Tensor out(x.shape());
  for (index_t i = 0; i < x.numel(); ++i) {
    const float v = x[i];
    const float t = std::tanh(kSqrt2OverPi * (v + kGeluC * v * v * v));
    out[i] = 0.5f * v * (1.0f + t);
  }
  return out;
}

Tensor GELU::backward(const Tensor& grad_out) {
  Tensor gx(grad_out.shape());
  for (index_t i = 0; i < grad_out.numel(); ++i) {
    const float v = x_[i];
    const float u = kSqrt2OverPi * (v + kGeluC * v * v * v);
    const float t = std::tanh(u);
    const float du = kSqrt2OverPi * (1.0f + 3.0f * kGeluC * v * v);
    const float d = 0.5f * (1.0f + t) + 0.5f * v * (1.0f - t * t) * du;
    gx[i] = grad_out[i] * d;
  }
  return gx;
}

}  // namespace nodetr::nn
