#include "nodetr/nn/mhsa_block.hpp"

#include "nodetr/obs/obs.hpp"

namespace nodetr::nn {

MhsaBlock::MhsaBlock(MhsaBlockConfig config, Rng& rng) : config_(config) {
  bn_in_ = std::make_unique<BatchNorm2d>(config.channels);
  relu_in_ = std::make_unique<ReLU>();
  reduce_ = std::make_unique<Conv2d>(config.channels, config.bottleneck_dim, 1, 1, 0,
                                     /*bias=*/false, rng);
  bn_mid_ = std::make_unique<BatchNorm2d>(config.bottleneck_dim);
  relu_mid_ = std::make_unique<ReLU>();
  MhsaConfig mc{.dim = config.bottleneck_dim,
                .heads = config.heads,
                .height = config.height,
                .width = config.width,
                .attention = config.attention,
                .pos = config.pos,
                .layer_norm_out = config.layer_norm_out};
  mhsa_ = std::make_unique<MultiHeadSelfAttention>(mc, rng);
  expand_ = std::make_unique<Conv2d>(config.bottleneck_dim, config.channels, 1, 1, 0,
                                     /*bias=*/false, rng);
}

Tensor MhsaBlock::forward(const Tensor& x) {
  NODETR_TRACE_SCOPE("mhsa.block");
  obs::ScopedSpan pre("mhsa.block.bottleneck_in");
  Tensor h = bn_in_->forward(x);
  h = relu_in_->forward(h);
  h = reduce_->forward(h);
  h = bn_mid_->forward(h);
  h = relu_mid_->forward(h);
  pre.end();
  h = mhsa_->forward(h);
  NODETR_TRACE_SCOPE("mhsa.block.expand");
  return expand_->forward(h);
}

Tensor MhsaBlock::backward(const Tensor& grad_out) {
  Tensor g = expand_->backward(grad_out);
  g = mhsa_->backward(g);
  g = relu_mid_->backward(g);
  g = bn_mid_->backward(g);
  g = reduce_->backward(g);
  g = relu_in_->backward(g);
  return bn_in_->backward(g);
}

std::string MhsaBlock::name() const {
  return "MhsaBlock(C=" + std::to_string(config_.channels) +
         ",Dm=" + std::to_string(config_.bottleneck_dim) + ")";
}

std::vector<Module*> MhsaBlock::children() {
  return {bn_in_.get(), relu_in_.get(), reduce_.get(), bn_mid_.get(),
          relu_mid_.get(), mhsa_.get(), expand_.get()};
}

}  // namespace nodetr::nn
