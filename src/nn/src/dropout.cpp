#include "nodetr/nn/dropout.hpp"

#include <stdexcept>

namespace nodetr::nn {

Dropout::Dropout(float p, std::uint64_t seed) : p_(p), rng_(seed) {
  if (p < 0.0f || p >= 1.0f) throw std::invalid_argument("Dropout: p must be in [0, 1)");
}

Tensor Dropout::forward(const Tensor& x) {
  if (!training_ || p_ == 0.0f) {
    mask_ = Tensor();
    return x;
  }
  mask_ = Tensor(x.shape());
  Tensor out(x.shape());
  const float scale = 1.0f / (1.0f - p_);
  for (index_t i = 0; i < x.numel(); ++i) {
    const float m = rng_.bernoulli(p_) ? 0.0f : scale;
    mask_[i] = m;
    out[i] = x[i] * m;
  }
  return out;
}

Tensor Dropout::backward(const Tensor& grad_out) {
  if (mask_.empty()) return grad_out;
  Tensor gx(grad_out.shape());
  for (index_t i = 0; i < grad_out.numel(); ++i) gx[i] = grad_out[i] * mask_[i];
  return gx;
}

std::string Dropout::name() const { return "Dropout(" + std::to_string(p_) + ")"; }

}  // namespace nodetr::nn
