#include "nodetr/nn/residual.hpp"

#include <stdexcept>

namespace nodetr::nn {

Residual::Residual(ModulePtr body, ModulePtr skip, bool final_relu)
    : body_(std::move(body)), skip_(std::move(skip)), final_relu_(final_relu) {
  if (!body_) throw std::invalid_argument("Residual: null body");
}

Tensor Residual::forward(const Tensor& x) {
  Tensor y = body_->forward(x);
  y += skip_ ? skip_->forward(x) : x;
  if (final_relu_) {
    relu_mask_ = Tensor(y.shape());
    for (index_t i = 0; i < y.numel(); ++i) {
      const bool pos = y[i] > 0.0f;
      relu_mask_[i] = pos ? 1.0f : 0.0f;
      if (!pos) y[i] = 0.0f;
    }
  }
  return y;
}

Tensor Residual::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  if (final_relu_) {
    for (index_t i = 0; i < g.numel(); ++i) g[i] *= relu_mask_[i];
  }
  Tensor gx = body_->backward(g);
  gx += skip_ ? skip_->backward(g) : g;
  return gx;
}

std::vector<Module*> Residual::children() {
  std::vector<Module*> c{body_.get()};
  if (skip_) c.push_back(skip_.get());
  return c;
}

}  // namespace nodetr::nn
