#include "nodetr/nn/norm.hpp"

#include <cmath>
#include <stdexcept>

namespace nodetr::nn {

BatchNorm2d::BatchNorm2d(index_t channels, float eps, float momentum)
    : channels_(channels), eps_(eps), momentum_(momentum),
      gamma_("gamma", Tensor(Shape{channels}, 1.0f)), beta_("beta", Tensor(Shape{channels})),
      running_mean_(Shape{channels}), running_var_(Shape{channels}, 1.0f) {}

Tensor BatchNorm2d::forward(const Tensor& x) {
  if (x.rank() != 4 || x.dim(1) != channels_) {
    throw std::invalid_argument("BatchNorm2d: bad input shape " + x.shape().to_string());
  }
  const index_t b = x.dim(0), c_ = x.dim(1), h = x.dim(2), w = x.dim(3);
  const index_t plane = h * w;
  const index_t n = b * plane;
  Tensor out(x.shape());
  xhat_ = Tensor(x.shape());
  inv_std_ = Tensor(Shape{c_});
  for (index_t c = 0; c < c_; ++c) {
    float mean, var;
    if (training_) {
      double s = 0.0, s2 = 0.0;
      for (index_t s_i = 0; s_i < b; ++s_i) {
        const float* p = x.data() + (s_i * c_ + c) * plane;
        for (index_t i = 0; i < plane; ++i) {
          s += p[i];
          s2 += static_cast<double>(p[i]) * p[i];
        }
      }
      mean = static_cast<float>(s / n);
      var = static_cast<float>(s2 / n - static_cast<double>(mean) * mean);
      var = std::max(var, 0.0f);
      running_mean_[c] = (1 - momentum_) * running_mean_[c] + momentum_ * mean;
      running_var_[c] = (1 - momentum_) * running_var_[c] + momentum_ * var;
    } else {
      mean = running_mean_[c];
      var = running_var_[c];
    }
    const float istd = 1.0f / std::sqrt(var + eps_);
    inv_std_[c] = istd;
    const float g = gamma_.value[c], bt = beta_.value[c];
    for (index_t s_i = 0; s_i < b; ++s_i) {
      const float* p = x.data() + (s_i * c_ + c) * plane;
      float* xh = xhat_.data() + (s_i * c_ + c) * plane;
      float* o = out.data() + (s_i * c_ + c) * plane;
      for (index_t i = 0; i < plane; ++i) {
        xh[i] = (p[i] - mean) * istd;
        o[i] = g * xh[i] + bt;
      }
    }
  }
  return out;
}

Tensor BatchNorm2d::backward(const Tensor& grad_out) {
  const index_t b = grad_out.dim(0), c_ = grad_out.dim(1), h = grad_out.dim(2),
                w = grad_out.dim(3);
  const index_t plane = h * w;
  const index_t n = b * plane;
  Tensor gx(grad_out.shape());
  for (index_t c = 0; c < c_; ++c) {
    // Accumulate sum(g) and sum(g * xhat) for this channel.
    double sg = 0.0, sgx = 0.0;
    for (index_t s_i = 0; s_i < b; ++s_i) {
      const float* g = grad_out.data() + (s_i * c_ + c) * plane;
      const float* xh = xhat_.data() + (s_i * c_ + c) * plane;
      for (index_t i = 0; i < plane; ++i) {
        sg += g[i];
        sgx += static_cast<double>(g[i]) * xh[i];
      }
    }
    gamma_.grad[c] += static_cast<float>(sgx);
    beta_.grad[c] += static_cast<float>(sg);
    if (training_) {
      const float coeff = gamma_.value[c] * inv_std_[c] / static_cast<float>(n);
      const float fn = static_cast<float>(n);
      for (index_t s_i = 0; s_i < b; ++s_i) {
        const float* g = grad_out.data() + (s_i * c_ + c) * plane;
        const float* xh = xhat_.data() + (s_i * c_ + c) * plane;
        float* o = gx.data() + (s_i * c_ + c) * plane;
        for (index_t i = 0; i < plane; ++i) {
          o[i] = coeff * (fn * g[i] - static_cast<float>(sg) - xh[i] * static_cast<float>(sgx));
        }
      }
    } else {
      // Inference-mode backward (running stats are constants).
      const float coeff = gamma_.value[c] * inv_std_[c];
      for (index_t s_i = 0; s_i < b; ++s_i) {
        const float* g = grad_out.data() + (s_i * c_ + c) * plane;
        float* o = gx.data() + (s_i * c_ + c) * plane;
        for (index_t i = 0; i < plane; ++i) o[i] = coeff * g[i];
      }
    }
  }
  return gx;
}

std::string BatchNorm2d::name() const { return "BatchNorm2d(" + std::to_string(channels_) + ")"; }

LayerNorm::LayerNorm(index_t dim, float eps)
    : dim_(dim), eps_(eps), gamma_("gamma", Tensor(Shape{dim}, 1.0f)),
      beta_("beta", Tensor(Shape{dim})) {}

Tensor LayerNorm::forward(const Tensor& x) {
  if (x.dim(-1) != dim_) {
    throw std::invalid_argument("LayerNorm: last axis must be " + std::to_string(dim_));
  }
  const index_t rows = x.numel() / dim_;
  Tensor out(x.shape());
  xhat_ = Tensor(x.shape());
  inv_std_ = Tensor(Shape{rows});
  for (index_t r = 0; r < rows; ++r) {
    const float* p = x.data() + r * dim_;
    float* xh = xhat_.data() + r * dim_;
    float* o = out.data() + r * dim_;
    double s = 0.0, s2 = 0.0;
    for (index_t i = 0; i < dim_; ++i) {
      s += p[i];
      s2 += static_cast<double>(p[i]) * p[i];
    }
    const float mean = static_cast<float>(s / dim_);
    const float var =
        std::max(static_cast<float>(s2 / dim_ - static_cast<double>(mean) * mean), 0.0f);
    const float istd = 1.0f / std::sqrt(var + eps_);
    inv_std_[r] = istd;
    for (index_t i = 0; i < dim_; ++i) {
      xh[i] = (p[i] - mean) * istd;
      o[i] = gamma_.value[i] * xh[i] + beta_.value[i];
    }
  }
  return out;
}

Tensor LayerNorm::backward(const Tensor& grad_out) {
  const index_t rows = grad_out.numel() / dim_;
  Tensor gx(grad_out.shape());
  const float fd = static_cast<float>(dim_);
  for (index_t r = 0; r < rows; ++r) {
    const float* g = grad_out.data() + r * dim_;
    const float* xh = xhat_.data() + r * dim_;
    float* o = gx.data() + r * dim_;
    double sg = 0.0, sgx = 0.0;
    for (index_t i = 0; i < dim_; ++i) {
      const float gg = g[i] * gamma_.value[i];
      sg += gg;
      sgx += static_cast<double>(gg) * xh[i];
      gamma_.grad[i] += g[i] * xh[i];
      beta_.grad[i] += g[i];
    }
    const float istd = inv_std_[r];
    for (index_t i = 0; i < dim_; ++i) {
      const float gg = g[i] * gamma_.value[i];
      o[i] = istd * (gg - static_cast<float>(sg) / fd -
                     xh[i] * static_cast<float>(sgx) / fd);
    }
  }
  return gx;
}

std::string LayerNorm::name() const { return "LayerNorm(" + std::to_string(dim_) + ")"; }

}  // namespace nodetr::nn
