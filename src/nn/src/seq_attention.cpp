#include "nodetr/nn/seq_attention.hpp"

#include <cmath>
#include <stdexcept>

#include "nodetr/tensor/gemm.hpp"
#include "nodetr/tensor/ops.hpp"

namespace nodetr::nn {

namespace nt = nodetr::tensor;

namespace {

Tensor gather_head(const Tensor& m, index_t b, index_t t, index_t h, index_t dh) {
  Tensor out(Shape{t, dh});
  const index_t d = m.dim(1);
  for (index_t r = 0; r < t; ++r) {
    const float* src = m.data() + (b * t + r) * d + h * dh;
    std::copy(src, src + dh, out.data() + r * dh);
  }
  return out;
}

void scatter_head(const Tensor& block, Tensor& m, index_t b, index_t t, index_t h, index_t dh) {
  const index_t d = m.dim(1);
  for (index_t r = 0; r < t; ++r) {
    float* dst = m.data() + (b * t + r) * d + h * dh;
    const float* src = block.data() + r * dh;
    for (index_t c = 0; c < dh; ++c) dst[c] += src[c];
  }
}

}  // namespace

SeqMhsa::SeqMhsa(index_t dim, index_t heads, Rng& rng)
    : dim_(dim), heads_(heads), wq_("wq", {}), wk_("wk", {}), wv_("wv", {}) {
  if (dim % heads != 0) throw std::invalid_argument("SeqMhsa: dim must be divisible by heads");
  const float std = 1.0f / std::sqrt(static_cast<float>(dim));
  wq_ = Param("wq", rng.randn(Shape{dim, dim}, 0.0f, std));
  wk_ = Param("wk", rng.randn(Shape{dim, dim}, 0.0f, std));
  wv_ = Param("wv", rng.randn(Shape{dim, dim}, 0.0f, std));
}

Tensor SeqMhsa::forward(const Tensor& x) {
  if (x.rank() != 3 || x.dim(2) != dim_) {
    throw std::invalid_argument("SeqMhsa: expected (B, T, " + std::to_string(dim_) + "), got " +
                                x.shape().to_string());
  }
  batch_ = x.dim(0);
  tokens_ = x.dim(1);
  const index_t dh = dim_ / heads_;
  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));
  x2_ = x.reshape(Shape{batch_ * tokens_, dim_});
  q_ = nt::matmul(x2_, wq_.value);
  k_ = nt::matmul(x2_, wk_.value);
  v_ = nt::matmul(x2_, wv_.value);
  Tensor out(Shape{batch_ * tokens_, dim_});
  attn_.assign(static_cast<std::size_t>(batch_ * heads_), Tensor());
  for (index_t b = 0; b < batch_; ++b) {
    for (index_t h = 0; h < heads_; ++h) {
      Tensor qh = gather_head(q_, b, tokens_, h, dh);
      Tensor kh = gather_head(k_, b, tokens_, h, dh);
      Tensor vh = gather_head(v_, b, tokens_, h, dh);
      Tensor logits = nt::matmul_nt(qh, kh);
      logits *= scale;
      Tensor a = nt::softmax_rows(logits);
      Tensor oh = nt::matmul(a, vh);
      scatter_head(oh, out, b, tokens_, h, dh);
      attn_[static_cast<std::size_t>(b * heads_ + h)] = std::move(a);
    }
  }
  return out.reshape(Shape{batch_, tokens_, dim_});
}

Tensor SeqMhsa::backward(const Tensor& grad_out) {
  const index_t dh = dim_ / heads_;
  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));
  Tensor g = grad_out.reshape(Shape{batch_ * tokens_, dim_});
  Tensor gq(g.shape()), gk(g.shape()), gv(g.shape());
  for (index_t b = 0; b < batch_; ++b) {
    for (index_t h = 0; h < heads_; ++h) {
      const Tensor& a = attn_[static_cast<std::size_t>(b * heads_ + h)];
      Tensor qh = gather_head(q_, b, tokens_, h, dh);
      Tensor kh = gather_head(k_, b, tokens_, h, dh);
      Tensor vh = gather_head(v_, b, tokens_, h, dh);
      Tensor goh = gather_head(g, b, tokens_, h, dh);
      Tensor ga = nt::matmul_nt(goh, vh);
      Tensor gvh = nt::matmul_tn(a, goh);
      Tensor glogits(Shape{tokens_, tokens_});
      for (index_t r = 0; r < tokens_; ++r) {
        const float* arow = a.data() + r * tokens_;
        const float* garow = ga.data() + r * tokens_;
        float* glrow = glogits.data() + r * tokens_;
        double dot = 0.0;
        for (index_t c = 0; c < tokens_; ++c) dot += static_cast<double>(garow[c]) * arow[c];
        for (index_t c = 0; c < tokens_; ++c) glrow[c] = arow[c] * (garow[c] - static_cast<float>(dot));
      }
      glogits *= scale;
      Tensor gqh = nt::matmul(glogits, kh);
      Tensor gkh = nt::matmul_tn(glogits, qh);
      scatter_head(gqh, gq, b, tokens_, h, dh);
      scatter_head(gkh, gk, b, tokens_, h, dh);
      scatter_head(gvh, gv, b, tokens_, h, dh);
    }
  }
  wq_.grad += nt::matmul_tn(x2_, gq);
  wk_.grad += nt::matmul_tn(x2_, gk);
  wv_.grad += nt::matmul_tn(x2_, gv);
  Tensor gx = nt::matmul_nt(gq, wq_.value);
  gx += nt::matmul_nt(gk, wk_.value);
  gx += nt::matmul_nt(gv, wv_.value);
  return gx.reshape(Shape{batch_, tokens_, dim_});
}

std::string SeqMhsa::name() const {
  return "SeqMhsa(D=" + std::to_string(dim_) + ",heads=" + std::to_string(heads_) + ")";
}

}  // namespace nodetr::nn
