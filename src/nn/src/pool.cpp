#include "nodetr/nn/pool.hpp"

#include <limits>
#include <stdexcept>

namespace nodetr::nn {

namespace {
index_t pooled_extent(index_t in, index_t k, index_t s, index_t p) {
  return (in + 2 * p - k) / s + 1;
}
}  // namespace

MaxPool2d::MaxPool2d(index_t kernel, index_t stride, index_t pad)
    : kernel_(kernel), stride_(stride), pad_(pad) {}

Tensor MaxPool2d::forward(const Tensor& x) {
  if (x.rank() != 4) throw std::invalid_argument("MaxPool2d: rank must be 4");
  in_shape_ = x.shape();
  const index_t b = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const index_t ho = pooled_extent(h, kernel_, stride_, pad_);
  const index_t wo = pooled_extent(w, kernel_, stride_, pad_);
  Tensor out(Shape{b, c, ho, wo});
  argmax_.assign(static_cast<std::size_t>(out.numel()), 0);
  index_t oidx = 0;
  for (index_t bc = 0; bc < b * c; ++bc) {
    const float* src = x.data() + bc * h * w;
    for (index_t oy = 0; oy < ho; ++oy) {
      for (index_t ox = 0; ox < wo; ++ox, ++oidx) {
        float best = -std::numeric_limits<float>::infinity();
        index_t besti = -1;
        for (index_t ky = 0; ky < kernel_; ++ky) {
          const index_t iy = oy * stride_ + ky - pad_;
          if (iy < 0 || iy >= h) continue;
          for (index_t kx = 0; kx < kernel_; ++kx) {
            const index_t ix = ox * stride_ + kx - pad_;
            if (ix < 0 || ix >= w) continue;
            const float v = src[iy * w + ix];
            if (v > best) {
              best = v;
              besti = bc * h * w + iy * w + ix;
            }
          }
        }
        out[oidx] = best;
        argmax_[static_cast<std::size_t>(oidx)] = besti;
      }
    }
  }
  return out;
}

Tensor MaxPool2d::backward(const Tensor& grad_out) {
  Tensor gx(in_shape_);
  for (index_t i = 0; i < grad_out.numel(); ++i) {
    const index_t src = argmax_[static_cast<std::size_t>(i)];
    if (src >= 0) gx[src] += grad_out[i];
  }
  return gx;
}

std::string MaxPool2d::name() const {
  return "MaxPool2d(k" + std::to_string(kernel_) + ",s" + std::to_string(stride_) + ")";
}

AvgPool2d::AvgPool2d(index_t kernel, index_t stride, index_t pad)
    : kernel_(kernel), stride_(stride), pad_(pad) {}

Tensor AvgPool2d::forward(const Tensor& x) {
  if (x.rank() != 4) throw std::invalid_argument("AvgPool2d: rank must be 4");
  in_shape_ = x.shape();
  const index_t b = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const index_t ho = pooled_extent(h, kernel_, stride_, pad_);
  const index_t wo = pooled_extent(w, kernel_, stride_, pad_);
  Tensor out(Shape{b, c, ho, wo});
  index_t oidx = 0;
  for (index_t bc = 0; bc < b * c; ++bc) {
    const float* src = x.data() + bc * h * w;
    for (index_t oy = 0; oy < ho; ++oy) {
      for (index_t ox = 0; ox < wo; ++ox, ++oidx) {
        double acc = 0.0;
        index_t cnt = 0;
        for (index_t ky = 0; ky < kernel_; ++ky) {
          const index_t iy = oy * stride_ + ky - pad_;
          if (iy < 0 || iy >= h) continue;
          for (index_t kx = 0; kx < kernel_; ++kx) {
            const index_t ix = ox * stride_ + kx - pad_;
            if (ix < 0 || ix >= w) continue;
            acc += src[iy * w + ix];
            ++cnt;
          }
        }
        out[oidx] = cnt > 0 ? static_cast<float>(acc / cnt) : 0.0f;
      }
    }
  }
  return out;
}

Tensor AvgPool2d::backward(const Tensor& grad_out) {
  const index_t b = in_shape_.dim(0), c = in_shape_.dim(1), h = in_shape_.dim(2),
                w = in_shape_.dim(3);
  const index_t ho = pooled_extent(h, kernel_, stride_, pad_);
  const index_t wo = pooled_extent(w, kernel_, stride_, pad_);
  Tensor gx(in_shape_);
  index_t oidx = 0;
  for (index_t bc = 0; bc < b * c; ++bc) {
    float* dst = gx.data() + bc * h * w;
    for (index_t oy = 0; oy < ho; ++oy) {
      for (index_t ox = 0; ox < wo; ++ox, ++oidx) {
        index_t cnt = 0;
        for (index_t ky = 0; ky < kernel_; ++ky) {
          const index_t iy = oy * stride_ + ky - pad_;
          if (iy < 0 || iy >= h) continue;
          for (index_t kx = 0; kx < kernel_; ++kx) {
            const index_t ix = ox * stride_ + kx - pad_;
            if (ix >= 0 && ix < w) ++cnt;
          }
        }
        if (cnt == 0) continue;
        const float g = grad_out[oidx] / static_cast<float>(cnt);
        for (index_t ky = 0; ky < kernel_; ++ky) {
          const index_t iy = oy * stride_ + ky - pad_;
          if (iy < 0 || iy >= h) continue;
          for (index_t kx = 0; kx < kernel_; ++kx) {
            const index_t ix = ox * stride_ + kx - pad_;
            if (ix >= 0 && ix < w) dst[iy * w + ix] += g;
          }
        }
      }
    }
  }
  return gx;
}

std::string AvgPool2d::name() const {
  return "AvgPool2d(k" + std::to_string(kernel_) + ",s" + std::to_string(stride_) + ")";
}

Tensor GlobalAvgPool::forward(const Tensor& x) {
  if (x.rank() != 4) throw std::invalid_argument("GlobalAvgPool: rank must be 4");
  in_shape_ = x.shape();
  const index_t b = x.dim(0), c = x.dim(1), plane = x.dim(2) * x.dim(3);
  Tensor out(Shape{b, c});
  for (index_t bc = 0; bc < b * c; ++bc) {
    const float* src = x.data() + bc * plane;
    double acc = 0.0;
    for (index_t i = 0; i < plane; ++i) acc += src[i];
    out[bc] = static_cast<float>(acc / static_cast<double>(plane));
  }
  return out;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_out) {
  const index_t plane = in_shape_.dim(2) * in_shape_.dim(3);
  Tensor gx(in_shape_);
  const float inv = 1.0f / static_cast<float>(plane);
  for (index_t bc = 0; bc < grad_out.numel(); ++bc) {
    float* dst = gx.data() + bc * plane;
    const float g = grad_out[bc] * inv;
    for (index_t i = 0; i < plane; ++i) dst[i] = g;
  }
  return gx;
}

}  // namespace nodetr::nn
