#include "nodetr/nn/conv_layers.hpp"

namespace nodetr::nn {

namespace nt = nodetr::tensor;

Conv2d::Conv2d(index_t in_channels, index_t out_channels, index_t kernel, index_t stride,
               index_t pad, bool bias, Rng& rng)
    : geom_{.in_channels = in_channels, .out_channels = out_channels, .kernel = kernel,
            .stride = stride, .pad = pad},
      has_bias_(bias),
      weight_("weight", rng.kaiming_normal(Shape{out_channels, in_channels, kernel, kernel},
                                           in_channels * kernel * kernel)),
      bias_("bias", bias ? Tensor(Shape{out_channels}) : Tensor(Shape{0})) {}

Tensor Conv2d::forward(const Tensor& x) {
  x_ = x;
  return nt::conv2d(x, weight_.value, bias_.value, geom_);
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  nt::conv2d_backward_params(x_, grad_out, geom_, weight_.grad, bias_.grad);
  return nt::conv2d_backward_input(grad_out, weight_.value, geom_, x_.dim(2), x_.dim(3));
}

std::string Conv2d::name() const {
  return "Conv2d(" + std::to_string(geom_.in_channels) + "->" +
         std::to_string(geom_.out_channels) + ",k" + std::to_string(geom_.kernel) + ",s" +
         std::to_string(geom_.stride) + ")";
}

std::vector<Param*> Conv2d::local_parameters() {
  std::vector<Param*> p{&weight_};
  if (has_bias_) p.push_back(&bias_);
  return p;
}

DepthwiseSeparableConv::DepthwiseSeparableConv(index_t in_channels, index_t out_channels,
                                               index_t kernel, index_t stride, index_t pad,
                                               Rng& rng)
    : dw_geom_{.in_channels = in_channels, .out_channels = in_channels, .kernel = kernel,
               .stride = stride, .pad = pad},
      pw_geom_{.in_channels = in_channels, .out_channels = out_channels, .kernel = 1, .stride = 1,
               .pad = 0},
      dw_weight_("dw_weight",
                 rng.kaiming_normal(Shape{in_channels, kernel, kernel}, kernel * kernel)),
      pw_weight_("pw_weight",
                 rng.kaiming_normal(Shape{out_channels, in_channels, 1, 1}, in_channels)) {}

Tensor DepthwiseSeparableConv::forward(const Tensor& x) {
  x_ = x;
  mid_ = nt::depthwise_conv2d(x, dw_weight_.value, {}, dw_geom_);
  return nt::conv2d(mid_, pw_weight_.value, {}, pw_geom_);
}

Tensor DepthwiseSeparableConv::backward(const Tensor& grad_out) {
  Tensor no_bias;
  nt::conv2d_backward_params(mid_, grad_out, pw_geom_, pw_weight_.grad, no_bias);
  Tensor gmid =
      nt::conv2d_backward_input(grad_out, pw_weight_.value, pw_geom_, mid_.dim(2), mid_.dim(3));
  nt::depthwise_conv2d_backward_params(x_, gmid, dw_geom_, dw_weight_.grad, no_bias);
  return nt::depthwise_conv2d_backward_input(gmid, dw_weight_.value, dw_geom_, x_.dim(2),
                                             x_.dim(3));
}

std::string DepthwiseSeparableConv::name() const {
  return "DSC(" + std::to_string(dw_geom_.in_channels) + "->" +
         std::to_string(pw_geom_.out_channels) + ",k" + std::to_string(dw_geom_.kernel) + ")";
}

std::vector<Param*> DepthwiseSeparableConv::local_parameters() {
  return {&dw_weight_, &pw_weight_};
}

}  // namespace nodetr::nn
