#include "nodetr/nn/posenc.hpp"

#include <cmath>

namespace nodetr::nn {

Tensor sinusoidal_encoding(index_t positions, index_t dim, float base) {
  Tensor p(Shape{positions, dim});
  for (index_t pos = 0; pos < positions; ++pos) {
    for (index_t j = 0; 2 * j < dim; ++j) {
      const double freq = std::pow(static_cast<double>(base),
                                   2.0 * static_cast<double>(j) / static_cast<double>(dim));
      const double angle = static_cast<double>(pos) / freq;
      p.at(pos, 2 * j) = static_cast<float>(std::sin(angle));
      if (2 * j + 1 < dim) p.at(pos, 2 * j + 1) = static_cast<float>(std::cos(angle));
    }
  }
  return p;
}

}  // namespace nodetr::nn
