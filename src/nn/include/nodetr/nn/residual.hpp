// Residual wrapper: y = act(body(x) + skip(x)) with skip defaulting to
// identity — the ResBlock shape of Eq. 10.
#pragma once

#include "nodetr/nn/module.hpp"

namespace nodetr::nn {

class Residual final : public Module {
 public:
  /// `skip` may be null (identity). `final_relu` applies ReLU after the sum
  /// (standard post-activation ResNet).
  Residual(ModulePtr body, ModulePtr skip = nullptr, bool final_relu = true);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;

  [[nodiscard]] std::string name() const override { return "Residual"; }
  [[nodiscard]] std::vector<Module*> children() override;
  [[nodiscard]] Module& body() { return *body_; }
  [[nodiscard]] Module* skip() { return skip_.get(); }
  [[nodiscard]] bool final_relu() const { return final_relu_; }

 private:
  ModulePtr body_;
  ModulePtr skip_;
  bool final_relu_;
  Tensor relu_mask_;
};

}  // namespace nodetr::nn
