// Umbrella header for the nodetr::nn module.
#pragma once

#include "nodetr/nn/activations.hpp"
#include "nodetr/nn/attention.hpp"
#include "nodetr/nn/conv_layers.hpp"
#include "nodetr/nn/dropout.hpp"
#include "nodetr/nn/linear.hpp"
#include "nodetr/nn/mhsa_block.hpp"
#include "nodetr/nn/module.hpp"
#include "nodetr/nn/norm.hpp"
#include "nodetr/nn/pool.hpp"
#include "nodetr/nn/posenc.hpp"
#include "nodetr/nn/residual.hpp"
#include "nodetr/nn/seq_attention.hpp"
#include "nodetr/nn/sequential.hpp"
#include "nodetr/nn/summary.hpp"
