// Inverted dropout.
#pragma once

#include "nodetr/nn/module.hpp"

namespace nodetr::nn {

class Dropout final : public Module {
 public:
  /// Drop probability `p`; scaling 1/(1-p) is applied at train time so
  /// inference is the identity.
  explicit Dropout(float p, std::uint64_t seed = 0xd20);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] std::string name() const override;

 private:
  float p_;
  Rng rng_;
  Tensor mask_;
};

}  // namespace nodetr::nn
