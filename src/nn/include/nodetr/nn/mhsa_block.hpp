// MHSABlock (Fig. 3/4): the bottleneck attention sandwich used both inside
// BoTNet bottleneck blocks and as the ODE dynamics of the proposed model.
//
//   BN(C) -> ReLU -> 1x1 conv C->Dm -> BN(Dm) -> ReLU -> MHSA(Dm, HxW)
//         -> 1x1 conv Dm->C
//
// The MHSA itself applies the paper's modifications (relative positional
// encoding, ReLU attention, output LayerNorm) through its MhsaConfig. The
// block computes the *body* only — no residual — so it can serve directly as
// the derivative f(z) of an ODEBlock (the solver adds the skip), or be
// wrapped with a residual by model code.
#pragma once

#include "nodetr/nn/activations.hpp"
#include "nodetr/nn/attention.hpp"
#include "nodetr/nn/conv_layers.hpp"
#include "nodetr/nn/norm.hpp"

namespace nodetr::nn {

struct MhsaBlockConfig {
  index_t channels = 256;       ///< C: feature-map channels in and out
  index_t bottleneck_dim = 64;  ///< Dm: MHSA width after the 1x1 reduction
  index_t heads = 4;
  index_t height = 6;
  index_t width = 6;
  AttentionKind attention = AttentionKind::kRelu;
  PosEncodingKind pos = PosEncodingKind::kRelative2d;
  bool layer_norm_out = true;
};

class MhsaBlock final : public Module {
 public:
  MhsaBlock(MhsaBlockConfig config, Rng& rng);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::vector<Module*> children() override;

  [[nodiscard]] MultiHeadSelfAttention& mhsa() { return *mhsa_; }
  [[nodiscard]] const MhsaBlockConfig& config() const { return config_; }

 private:
  MhsaBlockConfig config_;
  std::unique_ptr<BatchNorm2d> bn_in_;
  std::unique_ptr<ReLU> relu_in_;
  std::unique_ptr<Conv2d> reduce_;
  std::unique_ptr<BatchNorm2d> bn_mid_;
  std::unique_ptr<ReLU> relu_mid_;
  std::unique_ptr<MultiHeadSelfAttention> mhsa_;
  std::unique_ptr<Conv2d> expand_;
};

}  // namespace nodetr::nn
