// Module: the building block of every network in this library.
//
// Training uses classic module-local reverse mode (no tape): forward() caches
// whatever backward() needs, and backward() must be invoked with the cotangent
// of the *most recent* forward() output, returning the cotangent of its input
// while accumulating parameter gradients. Composite modules own their children
// through unique_ptr and chain backward in reverse order.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nodetr/tensor/rng.hpp"
#include "nodetr/tensor/tensor.hpp"

namespace nodetr::nn {

using nodetr::tensor::index_t;
using nodetr::tensor::Rng;
using nodetr::tensor::Shape;
using nodetr::tensor::Tensor;

/// A learnable tensor with its gradient accumulator.
struct Param {
  std::string name;
  Tensor value;
  Tensor grad;

  Param() = default;
  Param(std::string n, Tensor v) : name(std::move(n)), value(std::move(v)), grad(value.shape()) {}

  [[nodiscard]] index_t numel() const { return value.numel(); }
};

class Module {
 public:
  virtual ~Module() = default;

  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// Compute the output for `x`, caching activations needed by backward().
  virtual Tensor forward(const Tensor& x) = 0;

  /// Propagate the output cotangent back through the most recent forward(),
  /// accumulating parameter gradients; returns the input cotangent.
  virtual Tensor backward(const Tensor& grad_out) = 0;

  /// Short human-readable layer name, e.g. "Conv2d(64->128,k3,s2)".
  [[nodiscard]] virtual std::string name() const = 0;

  /// Direct sub-modules (non-owning). Used for recursive traversal.
  [[nodiscard]] virtual std::vector<Module*> children() { return {}; }

  /// Parameters owned directly by this module (not by children).
  [[nodiscard]] virtual std::vector<Param*> local_parameters() { return {}; }

  /// Non-learnable persistent state owned directly by this module (e.g.
  /// BatchNorm running statistics). Saved in checkpoints, never optimized.
  [[nodiscard]] virtual std::vector<Tensor*> local_buffers() { return {}; }

  /// All parameters in the subtree, depth first.
  [[nodiscard]] std::vector<Param*> parameters();

  /// All buffers in the subtree, depth first.
  [[nodiscard]] std::vector<Tensor*> buffers();

  /// Total learnable parameter count in the subtree.
  [[nodiscard]] index_t num_parameters();

  /// Set training mode (affects BatchNorm, Dropout) for the whole subtree.
  void train(bool on = true);
  [[nodiscard]] bool training() const { return training_; }

  /// Zero every gradient accumulator in the subtree.
  void zero_grad();

 protected:
  bool training_ = true;
};

using ModulePtr = std::unique_ptr<Module>;

}  // namespace nodetr::nn
