// Pointwise activation modules.
#pragma once

#include "nodetr/nn/module.hpp"

namespace nodetr::nn {

/// max(0, x). The paper replaces attention softmax with ReLU because in
/// hardware it costs one comparator and one multiplexer (Sec. V-A).
class ReLU final : public Module {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] std::string name() const override { return "ReLU"; }

 private:
  Tensor mask_;
};

/// Gaussian error linear unit (tanh approximation), used by the ViT MLP.
class GELU final : public Module {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] std::string name() const override { return "GELU"; }

 private:
  Tensor x_;
};

}  // namespace nodetr::nn
