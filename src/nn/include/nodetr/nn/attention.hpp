// Multi-Head Self-Attention over a convolutional feature map (Sec. III-A,
// V-A). Supports both the original softmax attention (Eq. 6) and the paper's
// hardware-friendly ReLU attention (Eq. 16), and three positional encodings:
// none, absolute sinusoidal (Eq. 8), and the learnable 2-D relative encoding
// of BoTNet (Eq. 15) with per-head vertical/horizontal vectors R_h, R_w.
//
// Input/output are NCHW feature maps (B, D, H, W); tokens are the H*W spatial
// positions with D channels. Following BoTNet, the Q/K/V projections carry no
// bias. With `layer_norm_out` the concatenated head outputs pass through a
// LayerNorm (Eq. 17), stabilizing the un-normalized ReLU attention.
#pragma once

#include <functional>

#include "nodetr/nn/norm.hpp"

namespace nodetr::nn {

enum class AttentionKind {
  kSoftmax,  ///< original scaled-dot-product attention
  kRelu,     ///< ReLU attention (one comparator + one mux in hardware)
};

enum class PosEncodingKind {
  kNone,
  kAbsoluteSinusoidal,  ///< added to tokens before the projections
  kRelative2d,          ///< learnable R_h, R_w fused into logits as Q R^T
};

struct MhsaConfig {
  index_t dim = 64;     ///< D: channels of the feature map
  index_t heads = 4;    ///< k: number of attention heads (D % k == 0)
  index_t height = 6;   ///< H of the expected feature map
  index_t width = 6;    ///< W of the expected feature map
  AttentionKind attention = AttentionKind::kRelu;
  PosEncodingKind pos = PosEncodingKind::kRelative2d;
  bool layer_norm_out = true;

  [[nodiscard]] index_t head_dim() const { return dim / heads; }
  [[nodiscard]] index_t tokens() const { return height * width; }
};

class MultiHeadSelfAttention final : public Module {
 public:
  /// Inference-time offload hook: when set, forward() delegates to this
  /// function (e.g. a simulated FPGA IP core) instead of computing locally.
  /// The override receives the input feature map and this module (for weight
  /// access). backward() is unsupported while an override is active.
  using ForwardOverride = std::function<Tensor(const Tensor&, MultiHeadSelfAttention&)>;

  MultiHeadSelfAttention(MhsaConfig config, Rng& rng);

  /// x: (B, D, H, W) -> (B, D, H, W).
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::vector<Param*> local_parameters() override;
  [[nodiscard]] std::vector<Module*> children() override;

  [[nodiscard]] const MhsaConfig& config() const { return config_; }

  /// The full (N, head_dim) relative-position matrix for head `h`:
  /// R[(y,x), :] = R_h[y, :] + R_w[x, :] (i.e. R = R_h 1^T + 1 R_w^T).
  [[nodiscard]] Tensor relative_matrix(index_t head) const;

  /// Mean fraction of exactly-zero attention weights over the last forward —
  /// ReLU attention sparsifies the attention map ([25], Sec. V-A).
  [[nodiscard]] float last_attention_sparsity() const { return last_sparsity_; }

  /// Attention weights (N, N) of `head` for batch element `sample` from the
  /// most recent (non-overridden) forward — for analyzing information flow,
  /// e.g. the sparsification study of [25].
  [[nodiscard]] const Tensor& attention_weights(index_t sample, index_t head) const;

  void set_forward_override(ForwardOverride f) { override_ = std::move(f); }
  void clear_forward_override() { override_ = nullptr; }
  [[nodiscard]] bool has_forward_override() const { return static_cast<bool>(override_); }

  [[nodiscard]] const Param& wq() const { return wq_; }
  [[nodiscard]] const Param& wk() const { return wk_; }
  [[nodiscard]] const Param& wv() const { return wv_; }
  [[nodiscard]] const Param& rel_h() const { return rel_h_; }
  [[nodiscard]] const Param& rel_w() const { return rel_w_; }
  /// Output LayerNorm (null unless layer_norm_out).
  [[nodiscard]] LayerNorm* layer_norm() { return ln_.get(); }

 private:
  MhsaConfig config_;
  Param wq_, wk_, wv_;  ///< (D, D) each
  Param rel_h_;         ///< (heads, H, head_dim)
  Param rel_w_;         ///< (heads, W, head_dim)
  std::unique_ptr<LayerNorm> ln_;
  Tensor abs_pos_;      ///< (N, D) sinusoidal table (when enabled)

  // Forward caches.
  Tensor tokens_;  ///< (B*N, D) projection input (after abs-pos addition)
  Tensor q_, k_, v_;
  std::vector<Tensor> attn_;  ///< per (b*heads + h): (N, N) attention weights
  index_t batch_ = 0;
  float last_sparsity_ = 0.0f;
  ForwardOverride override_;
};

}  // namespace nodetr::nn
