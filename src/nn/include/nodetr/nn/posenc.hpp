// Positional encodings (Sec. III-A3).
#pragma once

#include "nodetr/nn/module.hpp"

namespace nodetr::nn {

/// Absolute sinusoidal positional encoding (Transformer [1], Eq. 8):
///   P[pos, 2j]   = sin(pos / base^(2j/D))
///   P[pos, 2j+1] = cos(pos / base^(2j/D))
/// Returns an (N, D) hyperparameter tensor (not learnable). The original
/// Transformer uses base = 10000 (the paper's Eq. 8 prints 1000).
[[nodiscard]] Tensor sinusoidal_encoding(index_t positions, index_t dim, float base = 10000.0f);

}  // namespace nodetr::nn
