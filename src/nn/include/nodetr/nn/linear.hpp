// Fully connected layer y = x W^T + b.
#pragma once

#include "nodetr/nn/module.hpp"

namespace nodetr::nn {

class Linear final : public Module {
 public:
  /// Weight is (out, in), Kaiming-initialized from `rng`; bias optional.
  Linear(index_t in_features, index_t out_features, bool bias, Rng& rng);

  /// x: (B, in) -> (B, out).
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::vector<Param*> local_parameters() override;

  [[nodiscard]] Param& weight() { return weight_; }
  [[nodiscard]] Param& bias() { return bias_; }
  [[nodiscard]] bool has_bias() const { return has_bias_; }
  [[nodiscard]] index_t in_features() const { return in_; }
  [[nodiscard]] index_t out_features() const { return out_; }

 private:
  index_t in_, out_;
  bool has_bias_;
  Param weight_;
  Param bias_;
  Tensor x_;
};

}  // namespace nodetr::nn
