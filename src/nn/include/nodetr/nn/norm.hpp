// Normalization layers: BatchNorm2d for the CNN backbone, LayerNorm for the
// MHSA output (Eq. 17).
#pragma once

#include "nodetr/nn/module.hpp"

namespace nodetr::nn {

/// Per-channel batch normalization over (B, C, H, W); tracks running stats
/// for inference.
class BatchNorm2d final : public Module {
 public:
  explicit BatchNorm2d(index_t channels, float eps = 1e-5f, float momentum = 0.1f);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::vector<Param*> local_parameters() override { return {&gamma_, &beta_}; }
  [[nodiscard]] std::vector<Tensor*> local_buffers() override {
    return {&running_mean_, &running_var_};
  }

  [[nodiscard]] const Tensor& running_mean() const { return running_mean_; }
  [[nodiscard]] const Tensor& running_var() const { return running_var_; }
  [[nodiscard]] float eps() const { return eps_; }
  [[nodiscard]] Param& gamma() { return gamma_; }
  [[nodiscard]] Param& beta() { return beta_; }

 private:
  index_t channels_;
  float eps_, momentum_;
  Param gamma_, beta_;
  Tensor running_mean_, running_var_;  // buffers, not learnable
  // Cached for backward.
  Tensor xhat_;
  Tensor inv_std_;  // (C)
};

/// LayerNorm over the last axis; all leading axes are treated as rows.
class LayerNorm final : public Module {
 public:
  explicit LayerNorm(index_t dim, float eps = 1e-5f);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::vector<Param*> local_parameters() override { return {&gamma_, &beta_}; }
  [[nodiscard]] float eps() const { return eps_; }
  [[nodiscard]] index_t dim() const { return dim_; }

 private:
  index_t dim_;
  float eps_;
  Param gamma_, beta_;
  Tensor xhat_;
  Tensor inv_std_;  // one per row
};

}  // namespace nodetr::nn
