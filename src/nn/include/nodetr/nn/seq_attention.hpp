// Sequence-form multi-head self-attention for token sequences (B, T, D) —
// used by the ViT-Base counterpart. Faithful to the paper's Eq. 9: Q/K/V
// projections without biases, softmax attention, heads concatenated with NO
// output projection.
#pragma once

#include "nodetr/nn/module.hpp"

namespace nodetr::nn {

class SeqMhsa final : public Module {
 public:
  SeqMhsa(index_t dim, index_t heads, Rng& rng);

  /// x: (B, T, D) -> (B, T, D).
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::vector<Param*> local_parameters() override { return {&wq_, &wk_, &wv_}; }

 private:
  index_t dim_, heads_;
  Param wq_, wk_, wv_;
  Tensor x2_;  ///< cached (B*T, D) input
  Tensor q_, k_, v_;
  std::vector<Tensor> attn_;
  index_t batch_ = 0, tokens_ = 0;
};

}  // namespace nodetr::nn
