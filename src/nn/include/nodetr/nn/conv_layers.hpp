// Convolutional modules on NCHW tensors.
#pragma once

#include "nodetr/nn/module.hpp"
#include "nodetr/tensor/conv.hpp"

namespace nodetr::nn {

using nodetr::tensor::Conv2dGeom;

/// Dense 2-D convolution, square kernel.
class Conv2d final : public Module {
 public:
  Conv2d(index_t in_channels, index_t out_channels, index_t kernel, index_t stride, index_t pad,
         bool bias, Rng& rng);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::vector<Param*> local_parameters() override;
  [[nodiscard]] const Conv2dGeom& geom() const { return geom_; }
  [[nodiscard]] Param& weight() { return weight_; }
  [[nodiscard]] Param& bias() { return bias_; }
  [[nodiscard]] bool has_bias() const { return has_bias_; }

 private:
  Conv2dGeom geom_;
  bool has_bias_;
  Param weight_;  ///< (Cout, Cin, K, K)
  Param bias_;    ///< (Cout) or empty
  Tensor x_;
};

/// Depthwise separable convolution: a per-channel KxK depthwise filter
/// followed by a 1x1 pointwise mix (MobileNet [22] / Xception [23]).
/// Parameter size is N*K^2 + N*M versus N*M*K^2 for a dense conv — the
/// reduction the dsODENet backbone [21] relies on. No biases, matching the
/// paper's parameter-size formula; a BatchNorm always follows in the backbone.
class DepthwiseSeparableConv final : public Module {
 public:
  DepthwiseSeparableConv(index_t in_channels, index_t out_channels, index_t kernel, index_t stride,
                         index_t pad, Rng& rng);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::vector<Param*> local_parameters() override;
  [[nodiscard]] const Conv2dGeom& dw_geom() const { return dw_geom_; }
  [[nodiscard]] const Conv2dGeom& pw_geom() const { return pw_geom_; }
  [[nodiscard]] Param& dw_weight() { return dw_weight_; }
  [[nodiscard]] Param& pw_weight() { return pw_weight_; }

 private:
  Conv2dGeom dw_geom_;   ///< depthwise stage
  Conv2dGeom pw_geom_;   ///< pointwise (1x1) stage
  Param dw_weight_;      ///< (Cin, K, K)
  Param pw_weight_;      ///< (Cout, Cin, 1, 1)
  Tensor x_;
  Tensor mid_;           ///< depthwise output, cached for pointwise backward
};

}  // namespace nodetr::nn
