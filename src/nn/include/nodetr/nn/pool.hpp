// Pooling modules on NCHW tensors.
#pragma once

#include "nodetr/nn/module.hpp"

namespace nodetr::nn {

/// Max pooling with a square window; caches argmax indices for backward.
class MaxPool2d final : public Module {
 public:
  MaxPool2d(index_t kernel, index_t stride, index_t pad);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] index_t kernel() const { return kernel_; }
  [[nodiscard]] index_t stride() const { return stride_; }
  [[nodiscard]] index_t pad() const { return pad_; }

 private:
  index_t kernel_, stride_, pad_;
  Shape in_shape_{std::initializer_list<index_t>{0}};
  std::vector<index_t> argmax_;  ///< flat input index per output element
};

/// Average pooling with a square window (count includes padding positions,
/// matching the conventional count_include_pad=false? No: divisor is the
/// number of valid taps).
class AvgPool2d final : public Module {
 public:
  AvgPool2d(index_t kernel, index_t stride, index_t pad);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] std::string name() const override;

 private:
  index_t kernel_, stride_, pad_;
  Shape in_shape_{std::initializer_list<index_t>{0}};
};

/// Global average pooling (B, C, H, W) -> (B, C).
class GlobalAvgPool final : public Module {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] std::string name() const override { return "GlobalAvgPool"; }

 private:
  Shape in_shape_{std::initializer_list<index_t>{0}};
};

}  // namespace nodetr::nn
