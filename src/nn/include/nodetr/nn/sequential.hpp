// Sequential container chaining modules.
#pragma once

#include <functional>

#include "nodetr/nn/module.hpp"

namespace nodetr::nn {

class Sequential final : public Module {
 public:
  Sequential() = default;

  /// Append a module; returns a typed reference to it for later access.
  template <typename M, typename... Args>
  M& emplace(Args&&... args) {
    auto m = std::make_unique<M>(std::forward<Args>(args)...);
    M& ref = *m;
    modules_.push_back(std::move(m));
    return ref;
  }

  void push_back(ModulePtr m) { modules_.push_back(std::move(m)); }

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::vector<Module*> children() override;
  [[nodiscard]] std::size_t size() const { return modules_.size(); }
  [[nodiscard]] Module& operator[](std::size_t i) { return *modules_[i]; }

  /// Inference-only hook applied to the activation after every submodule —
  /// used to emulate fixed-point feature maps between layers (Sec. V-B1).
  /// backward() throws while a hook is installed (it is not differentiated).
  using ActivationHook = std::function<Tensor(const Tensor&)>;
  void set_activation_hook(ActivationHook hook) { act_hook_ = std::move(hook); }
  void clear_activation_hook() { act_hook_ = nullptr; }
  [[nodiscard]] bool has_activation_hook() const { return static_cast<bool>(act_hook_); }

 private:
  std::vector<ModulePtr> modules_;
  ActivationHook act_hook_;
};

}  // namespace nodetr::nn
