// Model structure inspection: an indented tree of layers with parameter
// counts, like the summaries printed by mainstream frameworks.
#pragma once

#include <string>

#include "nodetr/nn/module.hpp"

namespace nodetr::nn {

/// Render the module tree, one line per module:
///   OdeNet                               513,275 params
///     Sequential[12]
///       Conv2d(3->64,k3,s2)                1,728 params
///       ...
/// Parameter counts are local (not including children) except on the root
/// line, which shows the subtree total.
[[nodiscard]] std::string summary(Module& module);

/// Format an integer with thousands separators ("1,234,567").
[[nodiscard]] std::string with_commas(index_t value);

}  // namespace nodetr::nn
