#include "nodetr/fault/fault.hpp"

#include <algorithm>

#include "nodetr/obs/metrics.hpp"

namespace nodetr::fault {

namespace {

/// splitmix64 — tiny, seedable, and good enough for Bernoulli draws and bit
/// indices. State advances per draw; streams are decorrelated by mixing the
/// site name into the initial state.
std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

Injector& Injector::instance() {
  static Injector inj;
  return inj;
}

void Injector::seed(std::uint64_t seed) {
  std::lock_guard lk(mu_);
  seed_ = seed;
}

std::uint64_t Injector::seed() const {
  std::lock_guard lk(mu_);
  return seed_;
}

void Injector::arm(const std::string& site, Schedule schedule) {
  std::lock_guard lk(mu_);
  auto [it, inserted] = sites_.try_emplace(site);
  if (inserted) armed_sites_.fetch_add(1, std::memory_order_relaxed);
  it->second = Site{};
  it->second.schedule = std::move(schedule);
  it->second.rng_state = seed_ ^ fnv1a(site);
}

void Injector::disarm(const std::string& site) {
  std::lock_guard lk(mu_);
  if (sites_.erase(site) > 0) armed_sites_.fetch_sub(1, std::memory_order_relaxed);
}

void Injector::reset() {
  std::lock_guard lk(mu_);
  armed_sites_.fetch_sub(static_cast<int>(sites_.size()), std::memory_order_relaxed);
  sites_.clear();
}

bool Injector::fire_locked(Site& site) {
  const std::uint64_t op = site.ops++;
  if (site.fires >= site.schedule.max_fires) return false;
  bool hit = std::find(site.schedule.at.begin(), site.schedule.at.end(), op) !=
             site.schedule.at.end();
  hit = hit || (op >= site.schedule.first && op < site.schedule.last);
  if (!hit && site.schedule.probability > 0.0) {
    const double u =
        static_cast<double>(splitmix64(site.rng_state) >> 11) * 0x1.0p-53;  // [0, 1)
    hit = u < site.schedule.probability;
  }
  if (hit) ++site.fires;
  return hit;
}

bool Injector::fire(const std::string& site) {
  bool hit = false;
  {
    std::lock_guard lk(mu_);
    auto it = sites_.find(site);
    if (it == sites_.end()) return false;
    hit = fire_locked(it->second);
  }
  if (hit) {
    static auto& injected = obs::Registry::instance().counter("fault.injected");
    injected.add();
    obs::Registry::instance().counter("fault.injected." + site).add();
  }
  return hit;
}

std::uint64_t Injector::draw(const std::string& site) {
  std::lock_guard lk(mu_);
  auto it = sites_.find(site);
  // An unarmed site still yields a deterministic value (seed + name only).
  std::uint64_t scratch = seed_ ^ fnv1a(site);
  return splitmix64(it == sites_.end() ? scratch : it->second.rng_state);
}

std::uint64_t Injector::ops(const std::string& site) const {
  std::lock_guard lk(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.ops;
}

std::uint64_t Injector::fires(const std::string& site) const {
  std::lock_guard lk(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.fires;
}

bool is_transient(const std::exception_ptr& error) {
  if (!error) return false;
  try {
    std::rethrow_exception(error);
  } catch (const FaultError& e) {
    return e.transient();
  } catch (...) {
    return false;
  }
}

}  // namespace nodetr::fault
