// nodetr::fault — deterministic, seedable fault injection for the serving
// stack (the dependability counterpart to nodetr::obs).
//
// The hardware this project simulates fails in well-known ways: a stalled IP
// core that never raises STATUS.DONE, a DMA engine reporting a transfer
// error, an ECC event on the DDR path, an AXI-Lite slave NACKing a register
// access, an allocation failing under memory pressure, a worker thread
// dying. This module lets tests (and soak runs) inject exactly those faults
// on a deterministic schedule so the hardening around them — deadlines,
// retries, fallback, worker supervision — stays tested forever.
//
// Model:
//   - every place that can fault is a named *site* ("rt.dma.error",
//     "hls.ip.stall", "serve.alloc", "serve.worker_crash", ...); the code at
//     the site asks `fault::fire(site)` on each operation. Not every site
//     throws: the overload sites "serve.overload.shed" (admission refuses
//     the submit) and "serve.overload.expire" (a queued request is treated
//     as past its deadline at batch formation) force the serving engine's
//     shedding paths on a deterministic schedule instead;
//   - a site is dormant (one relaxed atomic load, no strings, no locks)
//     until a test *arms* it with a Schedule;
//   - a Schedule decides, from the site's per-site operation counter and a
//     seeded per-site PRNG, whether this operation faults. Same seed + same
//     schedule + same operation order => same fault pattern, always.
//
// Faults surface as exceptions derived from FaultError, which carries the
// site and whether the fault is *transient* (retrying the operation may
// succeed — the contract the serving engine's retry policy keys on).
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

namespace nodetr::fault {

/// Base of the fault taxonomy. `transient()` tells recovery code whether the
/// operation is worth retrying (DMA error, ECC event, NACK, stall) or not.
class FaultError : public std::runtime_error {
 public:
  FaultError(std::string site, const std::string& what, bool transient)
      : std::runtime_error(what), site_(std::move(site)), transient_(transient) {}

  [[nodiscard]] const std::string& site() const { return site_; }
  [[nodiscard]] bool transient() const { return transient_; }

 private:
  std::string site_;
  bool transient_;
};

/// AXI-Stream DMA reported a transfer error (descriptor fault / slave error).
class DmaTransferError : public FaultError {
 public:
  explicit DmaTransferError(std::string site)
      : FaultError(std::move(site), "DMA transfer error (injected)", true) {}
};

/// The DDR path detected an uncorrectable ECC event on a read or write.
class DdrEccError : public FaultError {
 public:
  explicit DdrEccError(std::string site)
      : FaultError(std::move(site), "DDR ECC error: bit flip detected (injected)", true) {}
};

/// An AXI-Lite register access was NACKed by the slave.
class AxiNackError : public FaultError {
 public:
  explicit AxiNackError(std::string site)
      : FaultError(std::move(site), "AXI-Lite access NACKed (injected)", true) {}
};

/// The IP core hung: it will never raise STATUS.DONE for this START. Thrown
/// by the functional IP model; the accelerator driver converts it into an
/// unraised DONE flag, which the execute() deadline then diagnoses.
class IpStallFault : public FaultError {
 public:
  explicit IpStallFault(std::string site)
      : FaultError(std::move(site), "IP core stalled: DONE never raised (injected)", true) {}
};

/// The fixed-point datapath's sticky overflow flag tripped: at least one
/// accumulator saturated hard enough that the driver must discard the run.
class FixedOverflowFault : public FaultError {
 public:
  explicit FixedOverflowFault(std::string site)
      : FaultError(std::move(site), "fixed-point overflow saturation event (injected)", true) {}
};

/// A batch-assembly allocation failed (memory pressure).
class AllocationFault : public FaultError {
 public:
  explicit AllocationFault(std::string site)
      : FaultError(std::move(site), "allocation failure (injected)", true) {}
};

/// A worker thread died outside the per-batch guard.
class WorkerCrashFault : public FaultError {
 public:
  explicit WorkerCrashFault(std::string site)
      : FaultError(std::move(site), "worker crash (injected)", false) {}
};

/// Staging a new model version into a live session failed (the IP rebuild /
/// weight re-quantization / board re-wire step of a hot-swap). Transient: the
/// worker keeps serving its previously staged version and retries staging at
/// the next batch boundary; a swap that can never stage rolls back via its
/// timeout.
class SwapStageFault : public FaultError {
 public:
  explicit SwapStageFault(std::string site)
      : FaultError(std::move(site), "model version staging failed (injected)", true) {}
};

/// The background continual-tuner thread died mid-step. Non-transient for the
/// step (its progress is lost); the tuner's supervisor restarts from the last
/// published weights, so a crash can never publish a half-stepped candidate.
class TunerCrashFault : public FaultError {
 public:
  explicit TunerCrashFault(std::string site)
      : FaultError(std::move(site), "continual tuner crash (injected)", false) {}
};

/// A device operation did not complete within its wall-clock or
/// simulated-cycle budget. Transient: re-issuing the START may succeed.
class DeadlineExceeded : public FaultError {
 public:
  DeadlineExceeded(std::string site, const std::string& what)
      : FaultError(std::move(site), what, true) {}
};

/// When this operation (and the ones after it) should fault. All fields
/// combine with OR; every decision is deterministic in (seed, op index).
struct Schedule {
  /// Fire at exactly these 0-based operation indices (counted per site from
  /// the moment the site is armed).
  std::vector<std::uint64_t> at;
  /// Fire on every operation in [first, last) (end-exclusive; empty = off).
  std::uint64_t first = 0;
  std::uint64_t last = 0;
  /// Fire each operation independently with this probability, drawn from the
  /// site's seeded PRNG.
  double probability = 0.0;
  /// Stop firing after this many faults (the schedule stays armed but inert).
  std::uint64_t max_fires = std::numeric_limits<std::uint64_t>::max();

  /// Fire once, at operation `op`.
  [[nodiscard]] static Schedule once(std::uint64_t op = 0) {
    Schedule s;
    s.at = {op};
    return s;
  }
  /// Fire at each listed operation index.
  [[nodiscard]] static Schedule at_ops(std::vector<std::uint64_t> ops) {
    Schedule s;
    s.at = std::move(ops);
    return s;
  }
  /// Fire on every operation (until `max_fires`, if given).
  [[nodiscard]] static Schedule always(
      std::uint64_t max_fires = std::numeric_limits<std::uint64_t>::max()) {
    Schedule s;
    s.first = 0;
    s.last = std::numeric_limits<std::uint64_t>::max();
    s.max_fires = max_fires;
    return s;
  }
  /// Fire each operation with probability `p` from the seeded PRNG.
  [[nodiscard]] static Schedule with_probability(double p) {
    Schedule s;
    s.probability = p;
    return s;
  }
};

/// Process-wide injector. Dormant (one relaxed atomic load per site check)
/// unless at least one site is armed — production builds pay nothing.
class Injector {
 public:
  static Injector& instance();

  /// Reseed the per-site PRNG streams. Each armed site derives its own
  /// stream from (seed, site name), so schedules on different sites are
  /// independent but individually reproducible. Affects sites armed after
  /// the call.
  void seed(std::uint64_t seed);
  [[nodiscard]] std::uint64_t seed() const;

  /// Arm `site` with `schedule` (replacing any previous schedule and
  /// resetting the site's operation/fire counters).
  void arm(const std::string& site, Schedule schedule);
  void disarm(const std::string& site);
  /// Disarm every site and forget all counters. Tests call this in
  /// SetUp/TearDown so schedules never leak across cases.
  void reset();

  /// One operation at `site`: advances the site's op counter and reports
  /// whether this operation faults. Dormant sites return false without
  /// taking the lock.
  [[nodiscard]] bool fire(const std::string& site);

  /// Deterministic 64-bit parameter for the *current* fault (e.g. which bit
  /// to flip). Draws from the site's PRNG stream.
  [[nodiscard]] std::uint64_t draw(const std::string& site);

  [[nodiscard]] std::uint64_t ops(const std::string& site) const;
  [[nodiscard]] std::uint64_t fires(const std::string& site) const;

  [[nodiscard]] bool armed() const {
    return armed_sites_.load(std::memory_order_relaxed) > 0;
  }

 private:
  Injector() = default;

  struct Site {
    Schedule schedule;
    std::uint64_t ops = 0;
    std::uint64_t fires = 0;
    std::uint64_t rng_state = 0;  ///< splitmix64 stream seeded from (seed, name)
  };

  [[nodiscard]] bool fire_locked(Site& site);

  mutable std::mutex mu_;
  std::map<std::string, Site> sites_;
  std::uint64_t seed_ = 0;
  std::atomic<int> armed_sites_{0};
};

/// The site check every instrumented operation calls. Zero-cost when no site
/// is armed (a single relaxed atomic load, no string construction — pass a
/// literal).
[[nodiscard]] inline bool fire(const char* site) {
  Injector& inj = Injector::instance();
  if (!inj.armed()) return false;
  return inj.fire(std::string(site));
}

/// Scoped variant for multi-device hardware models: checks the process-wide
/// site AND, when `scope` is non-empty, the site "<site>.<scope>" (e.g.
/// "rt.dma.error.dev3"). Each scoped site draws from its own (seed, name)
/// PRNG stream, so arming "rt.dma.error.dev3" fault-storms one board while
/// its siblings keep running clean — and the same seed replays the same
/// per-device pattern. Both op counters always advance (no short-circuit) so
/// a schedule on one site never perturbs the other's determinism.
[[nodiscard]] inline bool fire(const char* site, const std::string& scope) {
  Injector& inj = Injector::instance();
  if (!inj.armed()) return false;
  const bool base = inj.fire(std::string(site));
  const bool scoped = !scope.empty() && inj.fire(std::string(site) + '.' + scope);
  return base || scoped;
}

/// Classify an in-flight exception: true iff it is a FaultError marked
/// transient, or a DeadlineExceeded. Recovery policy (retry/backoff) keys on
/// this; unknown exceptions are permanent by definition.
[[nodiscard]] bool is_transient(const std::exception_ptr& error);

}  // namespace nodetr::fault
