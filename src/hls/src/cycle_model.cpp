#include "nodetr/hls/cycle_model.hpp"

#include <cmath>

namespace nodetr::hls {

const char* to_string(WeightWire wire) {
  switch (wire) {
    case WeightWire::kWord32: return "word32";
    case WeightWire::kBlockInt8: return "block_int8";
    case WeightWire::kBlockInt4: return "block_int4";
  }
  return "?";
}

std::string MhsaDesignPoint::to_string() const {
  std::string s = std::to_string(dim) + "ch, " + std::to_string(height) + "x" +
                  std::to_string(width) + " (";
  s += (dtype == DataType::kFloat32) ? "floating point" : "fixed point " + scheme.to_string();
  s += buffers == BufferPlan::kNaive7 ? ", naive buffers" : ", shared buffer";
  if (wire != WeightWire::kWord32) {
    s += std::string(", ") + nodetr::hls::to_string(wire) + "/" + std::to_string(wire_block) +
         " weight wire";
  }
  s += ")";
  return s;
}

MhsaDesignPoint MhsaDesignPoint::botnet_512(DataType dtype, BufferPlan buffers) {
  MhsaDesignPoint p;
  p.dim = 512;
  p.height = p.width = 3;
  p.heads = 4;
  p.dtype = dtype;
  p.buffers = buffers;
  return p;
}

MhsaDesignPoint MhsaDesignPoint::proposed_64(DataType dtype) {
  MhsaDesignPoint p;
  p.dim = 64;
  p.height = p.width = 6;
  p.heads = 4;
  p.dtype = dtype;
  return p;
}

namespace {

// Per-operation cycle costs calibrated against the paper's HLS report at the
// (512, 3x3) point (see header table). The projection loop is not pipelined
// in the "original" design (full fixed-point MAC latency every iteration);
// the attention-side loops are partially pipelined, hence the lower
// per-MAC costs. ReLU is elementwise.
constexpr double kProjCyclesPerMac = 40158722.0 / (9 * 512.0 * 512.0);       // 17.02
constexpr double kQrCyclesPerMac = 74132.0 / (4 * 9 * 9.0 * 128.0);          // 1.787
constexpr double kQkCyclesPerMac = 78740.0 / (4 * 9 * 9.0 * 128.0);          // 1.899
constexpr double kReluCyclesPerElem = 1701.0 / (4 * 9 * 9.0);                // 5.25
constexpr double kAvCyclesPerMac = 370696.0 / (4 * 9 * 9.0 * 128.0);         // 8.938
// Pipeline fill + burst setup overhead of the unrolled projection engine,
// calibrated so the parallelized projection matches the paper's 316,009.
constexpr double kParallelOverhead = 2267.0;
// Weight/feature streaming cycles per 32-bit word, calibrated to Table III's
// unlisted 864,658-cycle remainder at (512, 3x3).
constexpr double kStreamCyclesPerWord = 864658.0 / (3 * 512.0 * 512 + 2 * 9.0 * 512);
// The floating-point datapath's MACs have roughly twice the initiation
// interval of the wide fixed-point MACs — calibrated to Table IX, where the
// float IP saves 10.84 ms less than the fixed IP over the same workload
// (24.21 vs 13.37 ms end-to-end).
constexpr double kFloatMacFactor = 2.0;
// LayerNorm: two reduction passes plus a normalization pass per token row.
constexpr double kLnCyclesPerElem = 3.0;
constexpr double kLnCyclesPerRow = 40.0;  // mean/var finalize + rsqrt

/// Weight-wire compression: 32-bit words a quantized wire moves per logical
/// weight word (1.0 for word32; int8 at block 32 moves ~0.28 words/word).
double wire_words_per_weight(const MhsaDesignPoint& point) {
  const double bs = static_cast<double>(point.wire_block);
  switch (point.wire) {
    case WeightWire::kBlockInt8: return (bs + 4.0) / (4.0 * bs);
    case WeightWire::kBlockInt4: return (bs / 2.0 + 4.0) / (4.0 * bs);
    case WeightWire::kWord32: break;
  }
  return 1.0;
}

}  // namespace

std::int64_t CycleModel::weight_stream_cycles(const MhsaDesignPoint& point) const {
  const double d = static_cast<double>(point.dim);
  return static_cast<std::int64_t>(3.0 * d * d * wire_words_per_weight(point) *
                                   kStreamCyclesPerWord);
}

CycleBreakdown CycleModel::estimate(const MhsaDesignPoint& point, bool include_layer_norm) const {
  const double n = static_cast<double>(point.tokens());
  const double d = static_cast<double>(point.dim);
  const double dh = static_cast<double>(point.head_dim());
  const double heads = static_cast<double>(point.heads);

  const double proj_macs = n * d * d;  // one projection
  const double attn_macs = heads * n * n * dh;
  const double attn_elems = heads * n * n;
  const double f = point.dtype == DataType::kFloat32 ? kFloatMacFactor : 1.0;

  CycleBreakdown b;
  const index_t unroll = std::max<index_t>(point.parallel.unroll, 1);
  if (unroll > 1) {
    b.projection_each = static_cast<std::int64_t>(
        std::ceil(proj_macs / static_cast<double>(unroll)) * kProjCyclesPerMac * f +
        kParallelOverhead);
  } else {
    b.projection_each = static_cast<std::int64_t>(proj_macs * kProjCyclesPerMac * f);
  }
  // Feature maps always move at full width; the weight share rides the wire.
  b.streaming = static_cast<std::int64_t>(
      (3.0 * d * d * wire_words_per_weight(point) + 2.0 * n * d) * kStreamCyclesPerWord);
  b.qr = static_cast<std::int64_t>(attn_macs * kQrCyclesPerMac * f);
  b.qk = static_cast<std::int64_t>(attn_macs * kQkCyclesPerMac * f);
  b.relu = static_cast<std::int64_t>(attn_elems * kReluCyclesPerElem);
  b.av = static_cast<std::int64_t>(attn_macs * kAvCyclesPerMac * f);
  if (include_layer_norm) {
    b.layer_norm = static_cast<std::int64_t>(n * d * kLnCyclesPerElem + n * kLnCyclesPerRow);
  }
  return b;
}

}  // namespace nodetr::hls
