#include "nodetr/hls/qexec.hpp"

#include <cmath>
#include <stdexcept>

#include "nodetr/hls/mhsa_ip.hpp"
#include "nodetr/ode/adjoint.hpp"

namespace nodetr::hls {

namespace nn = nodetr::nn;
namespace ode = nodetr::ode;
using nodetr::tensor::index_t;
using nodetr::tensor::Shape;

fx::FixedTensor QuantizedExecutor::quantize_param(const Tensor& t) const {
  return fx::FixedTensor::from_float(t, scheme_.param);
}

Tensor QuantizedExecutor::run(nn::Module& model, const Tensor& input) {
  const bool was_training = model.training();
  model.train(false);
  fx::FixedTensor x = fx::FixedTensor::from_float(input, scheme_.feature);
  fx::FixedTensor y = run_fixed(model, x);
  model.train(was_training);
  return y.to_float();
}

fx::FixedTensor QuantizedExecutor::run_fixed(nn::Module& model, const fx::FixedTensor& x) {
  return dispatch(model, x);
}

namespace {

/// Fold inference BatchNorm into per-channel scale/shift floats.
void fold_batchnorm(nn::BatchNorm2d& bn, Tensor& scale, Tensor& shift) {
  const auto& mean = bn.running_mean();
  const auto& var = bn.running_var();
  const index_t c = mean.numel();
  scale = Tensor(Shape{c});
  shift = Tensor(Shape{c});
  for (index_t i = 0; i < c; ++i) {
    const float istd = 1.0f / std::sqrt(var[i] + bn.eps());
    scale[i] = bn.gamma().value[i] * istd;
    shift[i] = bn.beta().value[i] - mean[i] * scale[i];
  }
}

}  // namespace

fx::FixedTensor QuantizedExecutor::dispatch(nn::Module& m, const fx::FixedTensor& x) {
  const auto ff = scheme_.feature;

  if (auto* seq = dynamic_cast<nn::Sequential*>(&m)) {
    fx::FixedTensor h = x;
    for (auto* child : seq->children()) h = dispatch(*child, h);
    return h;
  }
  if (auto* conv = dynamic_cast<nn::Conv2d*>(&m)) {
    return fx::qconv2d(x, quantize_param(conv->weight().value),
                       conv->has_bias() ? quantize_param(conv->bias().value) : fx::FixedTensor{},
                       conv->geom(), ff);
  }
  if (auto* dsc = dynamic_cast<nn::DepthwiseSeparableConv*>(&m)) {
    fx::FixedTensor mid =
        fx::qdepthwise_conv2d(x, quantize_param(dsc->dw_weight().value), dsc->dw_geom(), ff);
    return fx::qconv2d(mid, quantize_param(dsc->pw_weight().value), {}, dsc->pw_geom(), ff);
  }
  if (auto* bn = dynamic_cast<nn::BatchNorm2d*>(&m)) {
    Tensor scale, shift;
    fold_batchnorm(*bn, scale, shift);
    return fx::qscale_shift_channels(x, quantize_param(scale), quantize_param(shift));
  }
  if (dynamic_cast<nn::ReLU*>(&m) != nullptr) return fx::qrelu(x);
  if (auto* pool = dynamic_cast<nn::MaxPool2d*>(&m)) {
    return fx::qmax_pool(x, pool->kernel(), pool->stride(), pool->pad());
  }
  if (dynamic_cast<nn::GlobalAvgPool*>(&m) != nullptr) return fx::qglobal_avg_pool(x);
  if (auto* lin = dynamic_cast<nn::Linear*>(&m)) {
    return fx::qlinear(x, quantize_param(lin->weight().value),
                       lin->has_bias() ? quantize_param(lin->bias().value) : fx::FixedTensor{},
                       ff);
  }
  if (auto* ln = dynamic_cast<nn::LayerNorm*>(&m)) {
    auto params = ln->local_parameters();
    const index_t rows = x.numel() / ln->dim();
    fx::FixedTensor flat = x;
    // qlayernorm_rows expects rank 2.
    fx::FixedTensor view(Shape{rows, ln->dim()}, x.format());
    for (index_t i = 0; i < x.numel(); ++i) view[i] = x[i];
    auto normed = fx::qlayernorm_rows(view, quantize_param(params[0]->value),
                                      quantize_param(params[1]->value), ln->eps());
    fx::FixedTensor out(x.shape(), x.format());
    for (index_t i = 0; i < x.numel(); ++i) out[i] = normed[i];
    return out;
  }
  if (auto* res = dynamic_cast<nn::Residual*>(&m)) {
    fx::FixedTensor body = dispatch(res->body(), x);
    fx::FixedTensor skip = res->skip() ? dispatch(*res->skip(), x) : x;
    fx::FixedTensor sum = fx::qadd(body, skip);
    return res->final_relu() ? fx::qrelu(sum) : sum;
  }
  if (auto* ob = dynamic_cast<ode::OdeBlock*>(&m)) {
    if (ob->solver_kind() != ode::SolverKind::kEuler) {
      throw std::invalid_argument("QuantizedExecutor: only Euler OdeBlocks supported");
    }
    // z <- z + h * f(z): h enters as a quantized hardware constant.
    const float h = (ob->t1() - ob->t0()) / static_cast<float>(ob->steps());
    fx::FixedTensor z = x;
    for (index_t s = 0; s < ob->steps(); ++s) {
      fx::FixedTensor f = dispatch(ob->dynamics(), z);
      z = fx::qadd(z, fx::qscale(f, h));
    }
    return z;
  }
  if (auto* mhsa = dynamic_cast<nn::MultiHeadSelfAttention*>(&m)) {
    const auto& mc = mhsa->config();
    MhsaDesignPoint point;
    point.dim = mc.dim;
    point.height = mc.height;
    point.width = mc.width;
    point.heads = mc.heads;
    point.dtype = DataType::kFixed;
    point.scheme = scheme_;
    if (mc.attention != nn::AttentionKind::kRelu) {
      throw std::invalid_argument("QuantizedExecutor: fixed MHSA datapath implements ReLU "
                                  "attention only (the paper's Eq. 16)");
    }
    MhsaIpCore ip(point, MhsaWeights::from_module(*mhsa));
    // (B, D, H, W) -> per-image token matrices through the IP datapath.
    const index_t b = x.shape().dim(0), d = mc.dim, n = mc.tokens();
    fx::FixedTensor out(x.shape(), x.format());
    for (index_t s = 0; s < b; ++s) {
      fx::FixedTensor tokens(Shape{n, d}, x.format());
      for (index_t t = 0; t < n; ++t) {
        const index_t y = t / mc.width, xx = t % mc.width;
        for (index_t c = 0; c < d; ++c) {
          tokens[t * d + c] = x[((s * d + c) * mc.height + y) * mc.width + xx];
        }
      }
      fx::FixedTensor o = ip.run_fixed_tokens(tokens);
      for (index_t t = 0; t < n; ++t) {
        const index_t y = t / mc.width, xx = t % mc.width;
        for (index_t c = 0; c < d; ++c) {
          out[((s * d + c) * mc.height + y) * mc.width + xx] = o[t * d + c];
        }
      }
    }
    return out;
  }
  if (auto* block = dynamic_cast<nn::MhsaBlock*>(&m)) {
    // Children are wired in execution order.
    fx::FixedTensor h = x;
    for (auto* child : block->children()) h = dispatch(*child, h);
    return h;
  }
  if (dynamic_cast<nn::Dropout*>(&m) != nullptr) return x;  // identity at inference
  if (dynamic_cast<ode::AdjointOdeBlock*>(&m) != nullptr) {
    throw std::invalid_argument(
        "QuantizedExecutor: AdjointOdeBlock is a training-time alternative; deploy with "
        "OdeBlock");
  }
  // Transparent wrappers (e.g. models::OdeNet around its Sequential):
  // exactly one child and no parameters of their own.
  if (m.children().size() == 1 && m.local_parameters().empty()) {
    return dispatch(*m.children()[0], x);
  }
  throw std::invalid_argument("QuantizedExecutor: no fixed-point implementation for " +
                              m.name());
}

}  // namespace nodetr::hls
