#include "nodetr/hls/mhsa_ip.hpp"

#include <cmath>
#include <stdexcept>

#include "nodetr/fault/fault.hpp"
#include "nodetr/fx/block_quant.hpp"
#include "nodetr/obs/obs.hpp"
#include "nodetr/tensor/gemm.hpp"
#include "nodetr/tensor/ops.hpp"

namespace nodetr::hls {

namespace nt = nodetr::tensor;
namespace fx = nodetr::fx;

MhsaWeights MhsaWeights::from_module(nodetr::nn::MultiHeadSelfAttention& mhsa) {
  MhsaWeights w;
  w.wq = mhsa.wq().value;
  w.wk = mhsa.wk().value;
  w.wv = mhsa.wv().value;
  if (mhsa.config().pos == nodetr::nn::PosEncodingKind::kRelative2d) {
    w.rel_h = mhsa.rel_h().value;
    w.rel_w = mhsa.rel_w().value;
  }
  if (auto* ln = mhsa.layer_norm()) {
    auto params = ln->local_parameters();
    w.ln_gamma = params[0]->value;
    w.ln_beta = params[1]->value;
  }
  return w;
}

MhsaIpCore::MhsaIpCore(MhsaDesignPoint point, MhsaWeights weights)
    : point_(point), weights_(std::move(weights)) {
  const index_t d = point_.dim;
  if (weights_.wq.shape() != nt::Shape{d, d} || weights_.wk.shape() != nt::Shape{d, d} ||
      weights_.wv.shape() != nt::Shape{d, d}) {
    throw std::invalid_argument("MhsaIpCore: weight shape does not match design point");
  }
  if (!weights_.rel_h.empty()) {
    const nt::Shape want_h{point_.heads, point_.height, point_.head_dim()};
    const nt::Shape want_w{point_.heads, point_.width, point_.head_dim()};
    if (weights_.rel_h.shape() != want_h || weights_.rel_w.shape() != want_w) {
      throw std::invalid_argument("MhsaIpCore: relative-position shape mismatch");
    }
  }
  if (point_.wire_block < 1) {
    throw std::invalid_argument("MhsaIpCore: wire_block must be >= 1");
  }
  if (point_.wire != WeightWire::kWord32) {
    // The DDR-resident copy of the projection weights and relative tables is
    // block-quantized; the IP dequantizes into its on-chip buffers as the
    // beats land. Round-tripping here makes both datapaths (float and fixed)
    // compute on exactly the weights the wire can carry — the accuracy cost
    // of the quantized wire is real, not just an accounting trick. The
    // LayerNorm gain/bias stay full-width (see WeightWire).
    const fx::BlockType bt = point_.wire == WeightWire::kBlockInt8 ? fx::BlockType::kInt8
                                                                   : fx::BlockType::kInt4;
    const index_t bs = point_.wire_block;
    weights_.wq = fx::block_roundtrip(weights_.wq, bt, bs);
    weights_.wk = fx::block_roundtrip(weights_.wk, bt, bs);
    weights_.wv = fx::block_roundtrip(weights_.wv, bt, bs);
    if (!weights_.rel_h.empty()) {
      weights_.rel_h = fx::block_roundtrip(weights_.rel_h, bt, bs);
      weights_.rel_w = fx::block_roundtrip(weights_.rel_w, bt, bs);
    }
  }
  const auto pf = point_.scheme.param;
  qwq_ = fx::FixedTensor::from_float(weights_.wq, pf);
  qwk_ = fx::FixedTensor::from_float(weights_.wk, pf);
  qwv_ = fx::FixedTensor::from_float(weights_.wv, pf);
  if (!weights_.rel_h.empty()) {
    qrel_h_ = fx::FixedTensor::from_float(weights_.rel_h, pf);
    qrel_w_ = fx::FixedTensor::from_float(weights_.rel_w, pf);
  }
  if (!weights_.ln_gamma.empty()) {
    qln_gamma_ = fx::FixedTensor::from_float(weights_.ln_gamma, pf);
    qln_beta_ = fx::FixedTensor::from_float(weights_.ln_beta, pf);
  }
}

std::int64_t MhsaIpCore::dma_bytes_per_image() const {
  return weight_dma_bytes() + io_dma_bytes_per_image();
}

std::int64_t MhsaIpCore::weight_float_bytes() const {
  const std::int64_t d = point_.dim;
  std::int64_t words = 3 * d * d;      // Wq, Wk, Wv (reloaded into the shared buffer)
  if (!weights_.rel_h.empty()) {
    words += point_.heads * (point_.height + point_.width) * point_.head_dim();
  }
  if (!weights_.ln_gamma.empty()) words += 2 * d;
  return words * 4;                    // 32-bit HP0 beats
}

std::int64_t MhsaIpCore::weight_dma_bytes() const {
  if (point_.wire == WeightWire::kWord32) return weight_float_bytes();
  const fx::BlockType bt = point_.wire == WeightWire::kBlockInt8 ? fx::BlockType::kInt8
                                                                 : fx::BlockType::kInt4;
  const index_t bs = point_.wire_block;
  const std::int64_t d = point_.dim;
  std::int64_t bytes = 3 * fx::BlockQuantTensor::payload_bytes_for(d * d, bt, bs);
  if (!weights_.rel_h.empty()) {
    const index_t dh = point_.head_dim();
    bytes += fx::BlockQuantTensor::payload_bytes_for(point_.heads * point_.height * dh, bt, bs);
    bytes += fx::BlockQuantTensor::payload_bytes_for(point_.heads * point_.width * dh, bt, bs);
  }
  // LayerNorm gain/bias ride the wire at full width (see WeightWire).
  if (!weights_.ln_gamma.empty()) bytes += 2 * d * 4;
  return bytes;
}

std::int64_t MhsaIpCore::io_dma_bytes_per_image() const {
  return input_dma_bytes_per_image() + output_dma_bytes_per_image();
}

std::int64_t MhsaIpCore::input_dma_bytes_per_image() const {
  const std::int64_t d = point_.dim, n = point_.tokens();
  return n * d * 4;                    // input stream
}

std::int64_t MhsaIpCore::output_dma_bytes_per_image() const {
  const std::int64_t d = point_.dim, n = point_.tokens();
  return n * d * 4;                    // output stream (same shape as input)
}

namespace {

/// (B, D, H, W) -> (B*N, D) tokens.
Tensor to_tokens(const Tensor& x, index_t d, index_t h, index_t w) {
  return x.permute({0, 2, 3, 1}).reshape(nt::Shape{x.dim(0) * h * w, d});
}

Tensor from_tokens(const Tensor& tokens, index_t b, index_t d, index_t h, index_t w) {
  return tokens.reshape(nt::Shape{b, h, w, d}).permute({0, 3, 1, 2});
}

/// R[(y,x),:] = rel_h[head,y,:] + rel_w[head,x,:].
Tensor relative_matrix(const Tensor& rel_h, const Tensor& rel_w, index_t head, index_t h,
                       index_t w, index_t dh) {
  Tensor r(nt::Shape{h * w, dh});
  for (index_t y = 0; y < h; ++y) {
    const float* rh = rel_h.data() + (head * h + y) * dh;
    for (index_t x = 0; x < w; ++x) {
      const float* rw = rel_w.data() + (head * w + x) * dh;
      float* dst = r.data() + (y * w + x) * dh;
      for (index_t c = 0; c < dh; ++c) dst[c] = rh[c] + rw[c];
    }
  }
  return r;
}

Tensor gather_cols(const Tensor& m, index_t col0, index_t cols) {
  const index_t rows = m.dim(0), d = m.dim(1);
  Tensor out(nt::Shape{rows, cols});
  for (index_t r = 0; r < rows; ++r) {
    const float* src = m.data() + r * d + col0;
    std::copy(src, src + cols, out.data() + r * cols);
  }
  return out;
}

void scatter_cols(const Tensor& block, Tensor& m, index_t col0) {
  const index_t rows = m.dim(0), d = m.dim(1), cols = block.dim(1);
  for (index_t r = 0; r < rows; ++r) {
    std::copy(block.data() + r * cols, block.data() + (r + 1) * cols, m.data() + r * d + col0);
  }
}

fx::FixedTensor gather_cols_fx(const fx::FixedTensor& m, index_t col0, index_t cols) {
  const index_t rows = m.shape().dim(0), d = m.shape().dim(1);
  fx::FixedTensor out(nt::Shape{rows, cols}, m.format());
  for (index_t r = 0; r < rows; ++r) {
    for (index_t c = 0; c < cols; ++c) out[r * cols + c] = m[r * d + col0 + c];
  }
  return out;
}

void scatter_cols_fx(const fx::FixedTensor& block, fx::FixedTensor& m, index_t col0) {
  const index_t rows = m.shape().dim(0), d = m.shape().dim(1), cols = block.shape().dim(1);
  for (index_t r = 0; r < rows; ++r) {
    for (index_t c = 0; c < cols; ++c) m[r * d + col0 + c] = block[r * cols + c];
  }
}

}  // namespace

Tensor MhsaIpCore::run_tokens_float(const Tensor& tokens) const {
  const index_t n = point_.tokens(), d = point_.dim, heads = point_.heads,
                dh = point_.head_dim();
  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));
  Tensor q = nt::matmul(tokens, weights_.wq);
  Tensor k = nt::matmul(tokens, weights_.wk);
  Tensor v = nt::matmul(tokens, weights_.wv);
  Tensor out(nt::Shape{n, d});
  for (index_t h = 0; h < heads; ++h) {
    Tensor qh = gather_cols(q, h * dh, dh);
    Tensor kh = gather_cols(k, h * dh, dh);
    Tensor vh = gather_cols(v, h * dh, dh);
    Tensor logits = nt::matmul_nt(qh, kh);
    if (!weights_.rel_h.empty()) {
      logits += nt::matmul_nt(
          qh, relative_matrix(weights_.rel_h, weights_.rel_w, h, point_.height, point_.width, dh));
    }
    logits *= scale;
    Tensor a = nt::relu(logits);
    scatter_cols(nt::matmul(a, vh), out, h * dh);
  }
  if (!weights_.ln_gamma.empty()) {
    // Row-wise LayerNorm with learned gain/bias.
    for (index_t r = 0; r < n; ++r) {
      float* row = out.data() + r * d;
      double s = 0.0, s2 = 0.0;
      for (index_t c = 0; c < d; ++c) {
        s += row[c];
        s2 += static_cast<double>(row[c]) * row[c];
      }
      const double mean = s / d;
      const double var = std::max(s2 / d - mean * mean, 0.0);
      const float istd = static_cast<float>(1.0 / std::sqrt(var + 1e-5));
      for (index_t c = 0; c < d; ++c) {
        row[c] = weights_.ln_gamma[c] * (row[c] - static_cast<float>(mean)) * istd +
                 weights_.ln_beta[c];
      }
    }
  }
  return out;
}

Tensor MhsaIpCore::run_tokens_fixed(const Tensor& tokens) const {
  return run_fixed_tokens(fx::FixedTensor::from_float(tokens, point_.scheme.feature)).to_float();
}

fx::FixedTensor MhsaIpCore::run_fixed_tokens(const fx::FixedTensor& x) const {
  const index_t n = point_.tokens(), d = point_.dim, heads = point_.heads,
                dh = point_.head_dim();
  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));
  const auto ff = point_.scheme.feature;
  // Shared weight buffer dataflow: Q, K, V computed sequentially (Sec. V-B2).
  fx::FixedTensor q = fx::qmatmul(x, qwq_, ff);
  fx::FixedTensor k = fx::qmatmul(x, qwk_, ff);
  fx::FixedTensor v = fx::qmatmul(x, qwv_, ff);
  fx::FixedTensor out(nt::Shape{n, d}, ff);
  for (index_t h = 0; h < heads; ++h) {
    fx::FixedTensor qh = gather_cols_fx(q, h * dh, dh);
    fx::FixedTensor kh = gather_cols_fx(k, h * dh, dh);
    fx::FixedTensor vh = gather_cols_fx(v, h * dh, dh);
    fx::FixedTensor logits = fx::qmatmul_nt(qh, kh, ff);
    if (!qrel_h_.empty()) {
      // R built on the fly from the parameter-format tables, at feature scale.
      Tensor r = relative_matrix(qrel_h_.to_float(), qrel_w_.to_float(), h, point_.height,
                                 point_.width, dh);
      fx::FixedTensor qr =
          fx::qmatmul_nt(qh, fx::FixedTensor::from_float(r, point_.scheme.param), ff);
      logits = fx::qadd(logits, qr);
    }
    logits = fx::qscale(logits, scale);
    fx::FixedTensor a = fx::qrelu(logits);
    scatter_cols_fx(fx::qmatmul(a, vh, ff), out, h * dh);
  }
  if (!qln_gamma_.empty()) out = fx::qlayernorm_rows(out, qln_gamma_, qln_beta_);
  return out;
}

Tensor MhsaIpCore::run(const Tensor& x) {
  obs::ScopedSpan span("hls.mhsa_ip.run");
  span.attr("dtype", point_.dtype == DataType::kFloat32 ? "float32" : "fixed");
  // Fault sites. A stall means this START will never raise DONE — the
  // accelerator driver latches it and lets its deadline diagnose the hang.
  // An overflow event is the fixed datapath's sticky saturation flag: the
  // arithmetic saturated hard enough that the driver must discard the run.
  if (fault::fire("hls.ip.stall")) throw fault::IpStallFault("hls.ip.stall");
  if (fault::fire("hls.ip.overflow")) {
    static auto& overflows = obs::Registry::instance().counter("hls.ip.overflow_events");
    overflows.add();
    throw fault::FixedOverflowFault("hls.ip.overflow");
  }
  Tensor input = x;
  bool squeeze = false;
  if (input.rank() == 3) {
    input = input.reshape(nt::Shape{1, x.dim(0), x.dim(1), x.dim(2)});
    squeeze = true;
  }
  if (input.rank() != 4 || input.dim(1) != point_.dim || input.dim(2) != point_.height ||
      input.dim(3) != point_.width) {
    throw std::invalid_argument("MhsaIpCore::run: input does not match design point " +
                                point_.to_string());
  }
  const index_t b = input.dim(0), d = point_.dim, h = point_.height, w = point_.width;
  const index_t n = point_.tokens();
  Tensor tokens = to_tokens(input, d, h, w);
  Tensor out_tokens(tokens.shape());
  for (index_t s = 0; s < b; ++s) {
    Tensor t = tokens.slice0(s * n, (s + 1) * n);
    Tensor o = (point_.dtype == DataType::kFloat32) ? run_tokens_float(t) : run_tokens_fixed(t);
    std::copy(o.data(), o.data() + o.numel(), out_tokens.data() + s * n * d);
  }
  // Latency: one IP invocation per image. With batch-resident weights the
  // weight share of the streaming stage is paid once per run(), not per image.
  CycleBreakdown one = cycle_model_.estimate(point_, !weights_.ln_gamma.empty());
  std::int64_t streaming = one.streaming * b;
  if (point_.residency == WeightResidency::kBatchResident) {
    const std::int64_t w = cycle_model_.weight_stream_cycles(point_);
    streaming = w + (one.streaming - w) * b;
  }
  last_cycles_ = CycleBreakdown{one.projection_each * b, one.qr * b,         one.qk * b,
                                one.relu * b,            one.av * b,
                                one.layer_norm * b,      streaming};
  // Simulated FPGA time rides on the wall-clock span so both land in one
  // trace; breakdown mirrors Table III's stages.
  span.attr("batch", b);
  span.attr("sim_cycles_total", last_cycles_.total());
  span.attr("sim_cycles_projections", 3 * last_cycles_.projection_each);
  span.attr("sim_cycles_qr", last_cycles_.qr);
  span.attr("sim_cycles_qk", last_cycles_.qk);
  span.attr("sim_cycles_relu", last_cycles_.relu);
  span.attr("sim_cycles_av", last_cycles_.av);
  span.attr("sim_cycles_layer_norm", last_cycles_.layer_norm);
  span.attr("sim_cycles_streaming", last_cycles_.streaming);
  span.attr("sim_ms", CycleModel::latency_ms(last_cycles_));
  static auto& invocations = obs::Registry::instance().counter("hls.mhsa_ip.invocations");
  static auto& sim_cycles = obs::Registry::instance().counter("hls.mhsa_ip.sim_cycles");
  invocations.add();
  sim_cycles.add(last_cycles_.total());
  Tensor out = from_tokens(out_tokens, b, d, h, w);
  if (squeeze) out = out.reshape(nt::Shape{d, h, w});
  return out;
}

}  // namespace nodetr::hls
