#include "nodetr/hls/quantize.hpp"

namespace nodetr::hls {

using nodetr::tensor::index_t;
using nodetr::tensor::Tensor;

ScopedParamQuantization::ScopedParamQuantization(nodetr::nn::Module& model,
                                                 fx::FixedFormat format)
    : model_(model) {
  for (auto* p : model_.parameters()) {
    backup_.push_back(p->value);
    for (index_t i = 0; i < p->value.numel(); ++i) {
      p->value[i] = fx::quantize_dequantize(p->value[i], format);
    }
  }
}

ScopedParamQuantization::~ScopedParamQuantization() {
  std::size_t i = 0;
  for (auto* p : model_.parameters()) p->value = std::move(backup_[i++]);
}

nodetr::nn::Sequential::ActivationHook activation_quantizer(fx::FixedFormat format) {
  return [format](const Tensor& t) {
    Tensor out(t.shape());
    for (index_t i = 0; i < t.numel(); ++i) out[i] = fx::quantize_dequantize(t[i], format);
    return out;
  };
}

namespace {

void visit_sequentials(nodetr::nn::Module& m, const std::function<void(nodetr::nn::Sequential&)>& fn) {
  if (auto* seq = dynamic_cast<nodetr::nn::Sequential*>(&m)) fn(*seq);
  for (auto* c : m.children()) visit_sequentials(*c, fn);
}

}  // namespace

void set_activation_quantization(nodetr::nn::Module& model, fx::FixedFormat format) {
  visit_sequentials(model, [format](nodetr::nn::Sequential& s) {
    s.set_activation_hook(activation_quantizer(format));
  });
}

void clear_activation_quantization(nodetr::nn::Module& model) {
  visit_sequentials(model, [](nodetr::nn::Sequential& s) { s.clear_activation_hook(); });
}

}  // namespace nodetr::hls
