#include "nodetr/hls/resources.hpp"

#include <cmath>

namespace nodetr::hls {

double Zcu104::bram_pct(const ResourceUsage& u) { return 100.0 * u.bram18 / kBram18; }
double Zcu104::dsp_pct(const ResourceUsage& u) { return 100.0 * u.dsp / kDsp; }
double Zcu104::ff_pct(const ResourceUsage& u) { return 100.0 * u.ff / kFf; }
double Zcu104::lut_pct(const ResourceUsage& u) { return 100.0 * u.lut / kLut; }
bool Zcu104::fits(const ResourceUsage& u) {
  return u.bram18 <= kBram18 && u.dsp <= kDsp && u.ff <= kFf && u.lut <= kLut;
}

namespace {

constexpr index_t kBramBits = 18 * 1024;

/// Banks at or below this size are mapped to distributed LUTRAM by the HLS
/// tool rather than consuming a whole BRAM18K block.
constexpr index_t kLutramThresholdBits = 4096;

/// BRAM18K blocks for one buffer of `elems` elements at `bits` per element,
/// cyclically partitioned into `partitions` banks (each bank needs at least
/// one physical block unless small enough for LUTRAM).
index_t buffer_bram(index_t elems, index_t bits, index_t partitions) {
  if (elems <= 0) return 0;
  const index_t per_bank = (elems + partitions - 1) / partitions;
  const index_t bank_bits = per_bank * bits;
  if (bank_bits <= kLutramThresholdBits) return 0;
  const index_t blocks_per_bank = std::max<index_t>((bank_bits + kBramBits - 1) / kBramBits, 1);
  return partitions * blocks_per_bank;
}

struct Calibration {
  index_t dim, height, width;
  DataType dtype;
  BufferPlan buffers;
  ResourceUsage usage;
};

/// Synthesis results reported in Tables I, II and VII.
constexpr Calibration kCalibrations[] = {
    // Table I: naive buffers, (512, 3x3).
    {512, 3, 3, DataType::kFloat32, BufferPlan::kNaive7, {1716, 680, 89912, 112698}},
    {512, 3, 3, DataType::kFixed, BufferPlan::kNaive7, {1396, 137, 30041, 83116}},
    // Table II after / Table VII BoTNet rows: shared buffer.
    {512, 3, 3, DataType::kFloat32, BufferPlan::kShared5, {693, 680, 101851, 90072}},
    {512, 3, 3, DataType::kFixed, BufferPlan::kShared5, {559, 137, 37333, 55842}},
    // Table VII proposed rows: (64, 6x6).
    {64, 6, 6, DataType::kFloat32, BufferPlan::kShared5, {441, 868, 144263, 124091}},
    {64, 6, 6, DataType::kFixed, BufferPlan::kShared5, {433, 212, 68809, 79476}},
};

}  // namespace

std::optional<ResourceUsage> ResourceModel::calibrated(const MhsaDesignPoint& point) const {
  for (const auto& c : kCalibrations) {
    if (c.dim == point.dim && c.height == point.height && c.width == point.width &&
        c.dtype == point.dtype && c.buffers == point.buffers &&
        point.parallel.partition == 64 && point.parallel.unroll == 128) {
      return c.usage;
    }
  }
  return std::nullopt;
}

ResourceUsage ResourceModel::analytic(const MhsaDesignPoint& point) const {
  const index_t n = point.tokens(), d = point.dim;
  const index_t feat_bits = point.dtype == DataType::kFloat32 ? 32 : point.scheme.feature.total_bits;
  const index_t param_bits = point.dtype == DataType::kFloat32 ? 32 : point.scheme.param.total_bits;
  const index_t part = std::max<index_t>(point.parallel.partition, 1);

  ResourceUsage u;
  // Weight buffers: D x D parameters; three copies when naive, one shared.
  const index_t weight_copies = point.buffers == BufferPlan::kNaive7 ? 3 : 1;
  u.bram18 += weight_copies * buffer_bram(d * d, param_bits, part);
  // Feature-side buffers: X plus Q, K, V (N x D each, feature format),
  // partitioned for the unrolled MACs.
  u.bram18 += 4 * buffer_bram(n * d, feat_bits, part);
  // Attention map, relative-position table, output buffer (unpartitioned).
  u.bram18 += buffer_bram(point.heads * n * n, feat_bits, 1);
  u.bram18 += buffer_bram(point.heads * (point.height + point.width) * point.head_dim(),
                          param_bits, 1);
  u.bram18 += buffer_bram(n * d, feat_bits, 1);

  // MAC lanes: a float MAC consumes ~5 DSP48E2 (3 mul + 2 add), a wide fixed
  // MAC 1 (27x18 multiplier plus the slice pre-adder); plus control.
  const index_t lanes = std::max<index_t>(point.parallel.unroll, 1);
  const index_t dsp_per_lane = point.dtype == DataType::kFloat32 ? 5 : 1;
  u.dsp = lanes * dsp_per_lane + 9;

  // Registers / logic: per-lane datapath plus buffer-control overhead that
  // grows with partitioning.
  const index_t ff_per_lane = point.dtype == DataType::kFloat32 ? 620 : 240;
  const index_t lut_per_lane = point.dtype == DataType::kFloat32 ? 540 : 330;
  u.ff = lanes * ff_per_lane + part * 180 + 8000;
  u.lut = lanes * lut_per_lane + part * 160 + 10000;
  return u;
}

ResourceUsage ResourceModel::estimate(const MhsaDesignPoint& point) const {
  if (auto c = calibrated(point)) return *c;
  return analytic(point);
}

}  // namespace nodetr::hls
