#include "nodetr/hls/model_plan.hpp"

#include <cmath>

namespace nodetr::hls {

namespace {
// Fixed-point MAC pipeline cost of the unrolled projection engine,
// calibrated in cycle_model.cpp (Table III): 17.02 cycles/MAC sequential,
// divided by the unroll factor when parallelized, plus fill overhead.
constexpr double kMacCycles = 40158722.0 / (9 * 512.0 * 512.0);
constexpr double kFillOverhead = 2267.0;
constexpr double kElemCycles = 1.1;  // pipelined elementwise op incl. streaming
}  // namespace

std::int64_t ConvCycleModel::mac_cycles(std::int64_t macs) const {
  if (unroll_ <= 1) return static_cast<std::int64_t>(macs * kMacCycles);
  return static_cast<std::int64_t>(
      std::ceil(static_cast<double>(macs) / static_cast<double>(unroll_)) * kMacCycles +
      kFillOverhead);
}

LayerCost ConvCycleModel::conv2d(const std::string& name, index_t cin, index_t cout,
                                 index_t kernel, index_t out_h, index_t out_w) const {
  LayerCost c;
  c.name = name;
  c.macs = cin * cout * kernel * kernel * out_h * out_w;
  c.cycles = mac_cycles(c.macs);
  return c;
}

LayerCost ConvCycleModel::depthwise_separable(const std::string& name, index_t cin, index_t cout,
                                              index_t kernel, index_t out_h,
                                              index_t out_w) const {
  LayerCost c;
  c.name = name;
  // Depthwise K^2 per channel plus 1x1 pointwise mix.
  c.macs = (cin * kernel * kernel + cin * cout) * out_h * out_w;
  c.cycles = mac_cycles(c.macs);
  return c;
}

LayerCost ConvCycleModel::elementwise(const std::string& name, index_t elems) const {
  LayerCost c;
  c.name = name;
  c.macs = 0;
  c.cycles = static_cast<std::int64_t>(elems * kElemCycles);
  return c;
}

LayerCost ConvCycleModel::linear(const std::string& name, index_t in, index_t out) const {
  LayerCost c;
  c.name = name;
  c.macs = in * out;
  c.cycles = mac_cycles(c.macs);
  return c;
}

std::int64_t ProposedModelPlan::total_cycles() const {
  std::int64_t t = 0;
  for (const auto& l : layers) t += l.cycles;
  return t + mhsa_cycles();
}

ProposedModelPlan plan_proposed_model(index_t image_size, index_t solver_steps, index_t unroll) {
  ConvCycleModel conv(unroll);
  ProposedModelPlan plan;
  plan.solver_steps = solver_steps;
  const index_t s4 = image_size / 4, s8 = image_size / 8, s16 = image_size / 16;

  plan.layers.push_back(conv.conv2d("stem conv 3->64 /2", 3, 64, 3, image_size / 2,
                                    image_size / 2));
  plan.layers.push_back(conv.elementwise("stem BN+ReLU+pool", 64 * (image_size / 2) *
                                                                  (image_size / 2) * 2));
  // Stage 1: ODEBlock(64) x C — two DSCs + norms per step.
  for (index_t c = 0; c < solver_steps; ++c) {
    plan.layers.push_back(
        conv.depthwise_separable("ode1 DSC a (step " + std::to_string(c) + ")", 64, 64, 3, s4,
                                 s4));
    plan.layers.push_back(
        conv.depthwise_separable("ode1 DSC b (step " + std::to_string(c) + ")", 64, 64, 3, s4,
                                 s4));
    plan.layers.push_back(conv.elementwise("ode1 norms (step " + std::to_string(c) + ")",
                                           4 * 64 * s4 * s4));
  }
  plan.layers.push_back(conv.conv2d("downsample 64->128 /2", 64, 128, 3, s8, s8));
  plan.layers.push_back(conv.conv2d("downsample skip 1x1", 64, 128, 1, s8, s8));
  for (index_t c = 0; c < solver_steps; ++c) {
    plan.layers.push_back(
        conv.depthwise_separable("ode2 DSC a (step " + std::to_string(c) + ")", 128, 128, 3, s8,
                                 s8));
    plan.layers.push_back(
        conv.depthwise_separable("ode2 DSC b (step " + std::to_string(c) + ")", 128, 128, 3, s8,
                                 s8));
    plan.layers.push_back(conv.elementwise("ode2 norms (step " + std::to_string(c) + ")",
                                           4 * 128 * s8 * s8));
  }
  plan.layers.push_back(conv.conv2d("downsample 128->256 /2", 128, 256, 3, s16, s16));
  plan.layers.push_back(conv.conv2d("downsample skip 1x1", 128, 256, 1, s16, s16));
  // Stage 3 (MHSABlock x C): 1x1 reduce/expand per step; the MHSA itself is
  // accounted by the attention cycle model.
  for (index_t c = 0; c < solver_steps; ++c) {
    plan.layers.push_back(conv.conv2d("mhsa reduce 256->64 (step " + std::to_string(c) + ")",
                                      256, 64, 1, s16, s16));
    plan.layers.push_back(conv.conv2d("mhsa expand 64->256 (step " + std::to_string(c) + ")",
                                      64, 256, 1, s16, s16));
    plan.layers.push_back(conv.elementwise("mhsa norms (step " + std::to_string(c) + ")",
                                           2 * 256 * s16 * s16 + 2 * 64 * s16 * s16));
  }
  plan.layers.push_back(conv.elementwise("head BN+ReLU+GAP", 2 * 256 * s16 * s16));
  plan.layers.push_back(conv.linear("FC 256->10", 256, 10));

  MhsaDesignPoint mhsa_point = MhsaDesignPoint::proposed_64(DataType::kFixed);
  mhsa_point.parallel.unroll = unroll;
  plan.mhsa = CycleModel{}.estimate(mhsa_point, /*include_layer_norm=*/true);
  return plan;
}

}  // namespace nodetr::hls
