#include "nodetr/hls/power.hpp"

namespace nodetr::hls {

namespace {
// Solved from the paper's two IP measurements:
//   0.866 = s + 137 k;  3.977 = s + 680 k.
constexpr double kWattsPerDsp = (3.977 - 0.866) / (680.0 - 137.0);  // 0.005729
constexpr double kStaticWatts = 0.866 - 137.0 * kWattsPerDsp;       // 0.0811
}  // namespace

double PowerModel::ip_watts(const ResourceUsage& usage) const {
  return kStaticWatts + kWattsPerDsp * static_cast<double>(usage.dsp);
}

double PowerModel::efficiency_gain(double cpu_ms, double accel_ms,
                                   const ResourceUsage& usage) const {
  const double cpu_energy = kPsWatts * cpu_ms;
  const double accel_energy = accelerated_watts(usage) * accel_ms;
  return cpu_energy / accel_energy;
}

}  // namespace nodetr::hls
