// Full-model-on-FPGA projection (the paper's future work, Sec. VII).
//
// Extends the MHSA cycle model to the remaining layer types of the proposed
// network (dense conv, depthwise-separable conv, BN/ReLU, pooling, FC) using
// the same calibrated per-MAC pipeline costs, and walks the paper-scale
// architecture to estimate the latency of executing the ENTIRE model on the
// PL — versus the paper's implemented hybrid (MHSA on PL, rest on PS).
#pragma once

#include <string>
#include <vector>

#include "nodetr/hls/cycle_model.hpp"

namespace nodetr::hls {

/// One layer's latency contribution.
struct LayerCost {
  std::string name;
  std::int64_t macs = 0;
  std::int64_t cycles = 0;
  [[nodiscard]] double ms() const { return cycles * CycleModel::kClockNs * 1e-6; }
};

/// Cycle estimates for non-attention layers at a given unroll factor.
/// MACs are counted exactly from the geometry; the per-MAC pipeline cost is
/// the projection engine's (the same MAC array is time-shared).
class ConvCycleModel {
 public:
  explicit ConvCycleModel(index_t unroll = 128) : unroll_(unroll) {}

  [[nodiscard]] LayerCost conv2d(const std::string& name, index_t cin, index_t cout,
                                 index_t kernel, index_t out_h, index_t out_w) const;
  [[nodiscard]] LayerCost depthwise_separable(const std::string& name, index_t cin, index_t cout,
                                              index_t kernel, index_t out_h,
                                              index_t out_w) const;
  /// Elementwise layers (BN, ReLU, pooling): one op per element, fully
  /// pipelined.
  [[nodiscard]] LayerCost elementwise(const std::string& name, index_t elems) const;
  [[nodiscard]] LayerCost linear(const std::string& name, index_t in, index_t out) const;

 private:
  [[nodiscard]] std::int64_t mac_cycles(std::int64_t macs) const;
  index_t unroll_;
};

/// Latency plan for the paper-scale proposed model (96x96, 64/128/256
/// channels, C solver steps, bottleneck MHSA at (64, 6x6)).
struct ProposedModelPlan {
  std::vector<LayerCost> layers;   ///< per-layer costs, model order
  CycleBreakdown mhsa;             ///< one MHSA invocation (per solver step)
  index_t solver_steps = 0;

  [[nodiscard]] std::int64_t total_cycles() const;
  [[nodiscard]] double total_ms() const { return total_cycles() * CycleModel::kClockNs * 1e-6; }
  /// Cycles spent in MHSA across all solver steps.
  [[nodiscard]] std::int64_t mhsa_cycles() const { return mhsa.total() * solver_steps; }
};

/// Build the plan for the paper configuration.
[[nodiscard]] ProposedModelPlan plan_proposed_model(index_t image_size = 96,
                                                    index_t solver_steps = 6,
                                                    index_t unroll = 128);

}  // namespace nodetr::hls
