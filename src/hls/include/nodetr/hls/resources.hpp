// FPGA resource estimation for the MHSA IP core on a Xilinx ZCU104
// (Tables I, II, VII).
//
// The estimator has two layers:
//  1. A first-principles model: BRAM18K from buffer enumeration (weights,
//     feature/Q/K/V buffers, attention map — honoring the buffer plan and
//     array-partition minimums), DSP from the unrolled MAC lanes (a float MAC
//     costs ~5 DSP48s, a wide fixed MAC 1), FF/LUT linear in lanes and
//     datapath width.
//  2. A calibration table carrying the six synthesis results the paper
//     reports; for those exact design points the estimator returns the
//     paper's numbers, so downstream benches regenerate the tables verbatim
//     while off-table points fall back to the analytic model.
#pragma once

#include <optional>

#include "nodetr/hls/design_point.hpp"

namespace nodetr::hls {

struct ResourceUsage {
  index_t bram18 = 0;
  index_t dsp = 0;
  index_t ff = 0;
  index_t lut = 0;
};

/// ZCU104 (XCZU7EV) budget as listed in the paper's tables.
struct Zcu104 {
  static constexpr index_t kBram18 = 624;
  static constexpr index_t kDsp = 1728;
  static constexpr index_t kFf = 460800;
  static constexpr index_t kLut = 230400;

  /// Utilization percentage (may exceed 100 for infeasible designs).
  [[nodiscard]] static double bram_pct(const ResourceUsage& u);
  [[nodiscard]] static double dsp_pct(const ResourceUsage& u);
  [[nodiscard]] static double ff_pct(const ResourceUsage& u);
  [[nodiscard]] static double lut_pct(const ResourceUsage& u);
  /// True when every resource fits on the device (BRAM only, no URAM —
  /// matching the paper's evaluation setting).
  [[nodiscard]] static bool fits(const ResourceUsage& u);
};

class ResourceModel {
 public:
  /// Estimated utilization of an MHSA IP at the given design point.
  [[nodiscard]] ResourceUsage estimate(const MhsaDesignPoint& point) const;

  /// Analytic estimate only (skipping the calibration table) — used by tests
  /// to validate model trends.
  [[nodiscard]] ResourceUsage analytic(const MhsaDesignPoint& point) const;

  /// Calibrated synthesis result if this exact point appears in the paper.
  [[nodiscard]] std::optional<ResourceUsage> calibrated(const MhsaDesignPoint& point) const;
};

}  // namespace nodetr::hls
