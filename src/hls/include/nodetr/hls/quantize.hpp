// Whole-model fixed-point inference emulation (Sec. V-B1 / VI-B5).
//
// In the paper's accuracy evaluation, feature maps AND weight parameters use
// fixed-point representations throughout. This header provides the two
// fake-quantization tools that emulate that on the software model:
//   - ScopedParamQuantization: rounds every learnable parameter into the
//     scheme's parameter format for the object's lifetime (restores exact
//     float values on destruction);
//   - activation_quantizer: a Sequential activation hook that rounds every
//     inter-layer feature map into the feature format.
// Combined with an rt::OffloadedModel running the bit-accurate fixed MHSA
// IP, this reproduces the Table VIII accuracy-vs-format experiment.
#pragma once

#include <vector>

#include "nodetr/fx/format.hpp"
#include "nodetr/nn/sequential.hpp"

namespace nodetr::hls {

/// RAII: quantize-dequantize every parameter of `model` into `format`;
/// restore the original float values on destruction.
class ScopedParamQuantization {
 public:
  ScopedParamQuantization(nodetr::nn::Module& model, fx::FixedFormat format);
  ~ScopedParamQuantization();

  ScopedParamQuantization(const ScopedParamQuantization&) = delete;
  ScopedParamQuantization& operator=(const ScopedParamQuantization&) = delete;

 private:
  nodetr::nn::Module& model_;
  std::vector<nodetr::tensor::Tensor> backup_;
};

/// Activation hook rounding every value into `format` (round + saturate).
[[nodiscard]] nodetr::nn::Sequential::ActivationHook activation_quantizer(
    fx::FixedFormat format);

/// Install/remove an activation quantizer on every Sequential in the module
/// tree (the top-level container and nested stage containers).
void set_activation_quantization(nodetr::nn::Module& model, fx::FixedFormat format);
void clear_activation_quantization(nodetr::nn::Module& model);

}  // namespace nodetr::hls
