// MHSA accelerator design points (Sec. V): the knobs Tables I/II/III/VII
// sweep — data type, buffer plan, array partitioning / loop unrolling, and
// the MHSA geometry itself.
#pragma once

#include <string>

#include "nodetr/fx/format.hpp"
#include "nodetr/tensor/shape.hpp"

namespace nodetr::hls {

using nodetr::tensor::index_t;

enum class DataType {
  kFloat32,  ///< single-precision floating point
  kFixed,    ///< fixed point per the attached QuantizationScheme
};

enum class BufferPlan {
  kNaive7,   ///< Wq, Wk, Wv, X, Q, K, V on individual buffers (Sec. V-B2)
  kShared5,  ///< one shared weight buffer reloaded for Wq/Wk/Wv
};

/// How long DMA'd weights stay resident in the IP's on-chip buffers.
enum class WeightResidency {
  kStreamPerImage,   ///< weights re-streamed for every image (Table III calibration)
  kBatchResident,    ///< weights streamed once per START and reused across the
                     ///< whole programmed batch (the serving path)
};

/// Wire format of the DDR-resident weight images the DMA streams into the
/// PL. Block formats carry per-block float scales (fx::BlockQuantTensor);
/// the IP dequantizes into its on-chip parameter buffers as the beats land,
/// so a quantized wire degrades the weights exactly once, at rest. The
/// LayerNorm gain/bias (2·D values) stay at 32-bit words on every wire —
/// they are tiny and the mixed-precision escape hatch keeps them exact.
enum class WeightWire {
  kWord32,     ///< full-width 32-bit words (the pre-quantization wire)
  kBlockInt8,  ///< int8 codes + per-block scales (~3.6x fewer weight bytes)
  kBlockInt4,  ///< packed int4 codes + per-block scales (~6.4x fewer)
};

[[nodiscard]] const char* to_string(WeightWire wire);

struct ParallelPlan {
  index_t partition = 64;  ///< sub-buffers for X and W (array partitioning)
  index_t unroll = 128;    ///< innermost-loop unroll factor
  [[nodiscard]] bool parallel() const { return unroll > 1 || partition > 1; }
  static ParallelPlan sequential() { return {.partition = 1, .unroll = 1}; }
  /// The paper's chosen configuration (Sec. V-B3).
  static ParallelPlan paper() { return {.partition = 64, .unroll = 128}; }
};

/// Geometry + implementation choices for one synthesized MHSA IP core.
struct MhsaDesignPoint {
  index_t dim = 512;   ///< D: channels of the attended feature map
  index_t height = 3;
  index_t width = 3;
  index_t heads = 4;
  DataType dtype = DataType::kFixed;
  fx::QuantizationScheme scheme = fx::scheme_32_24();
  BufferPlan buffers = BufferPlan::kShared5;
  ParallelPlan parallel = ParallelPlan::paper();
  WeightResidency residency = WeightResidency::kStreamPerImage;
  WeightWire wire = WeightWire::kWord32;
  index_t wire_block = 32;  ///< block size of the quantized wire (32 or 64)

  [[nodiscard]] index_t tokens() const { return height * width; }
  [[nodiscard]] index_t head_dim() const { return dim / heads; }
  [[nodiscard]] std::string to_string() const;

  /// The two design points the paper synthesizes (Table VII): BoTNet's
  /// (512ch, 3x3) and the proposed model's (64ch, 6x6).
  static MhsaDesignPoint botnet_512(DataType dtype, BufferPlan buffers = BufferPlan::kShared5);
  static MhsaDesignPoint proposed_64(DataType dtype);
};

}  // namespace nodetr::hls
