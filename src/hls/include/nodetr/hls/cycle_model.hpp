// Analytic cycle model of the HLS MHSA datapath (Sec. V-B3, Table III).
//
// The accelerator's latency is dominated by five loop nests; their trip
// counts follow directly from the MHSA geometry, and their per-iteration
// costs are calibrated against the paper's HLS synthesis report at the
// (512ch, 3x3) design point:
//
//   stage                 MAC count            original    parallelized
//   X W^q (each of 3)     N D^2                40,158,722  316,009
//   Q R^T                 heads N^2 D_h        74,132      74,132
//   Q K^T                 heads N^2 D_h        78,740      78,740
//   ReLU(QK^T + QR^T)     heads N^2 (elems)    1,701       1,701
//   ReLU(.) V^T           heads N^2 D_h        370,696     370,696
//   (data movement)       3 D^2 + 2 N D words  864,658     864,658
//   Total                                      121,866,093 2,337,954
//
// Only the projections are parallelized (partition 64 / unroll 128) — the
// paper reports a 127x speedup on them and 52x overall. The model reproduces
// these numbers to <1.5% and extrapolates to other geometries/unrolls.
// Clock: 200 MHz (5 ns/cycle), matching Table III's cycles-to-ns ratio.
#pragma once

#include "nodetr/hls/design_point.hpp"

namespace nodetr::hls {

/// Per-stage and total cycle/latency estimates for one MHSA invocation.
/// Note Table III's projection row reports ONE of the three projections;
/// its Total row equals 3x projections + the attention stages + an unlisted
/// ~865k-cycle data-movement stage (identical in both columns). The model
/// reproduces that structure: `projection_each` is the per-projection count
/// (the table row) and total() accounts all three plus streaming.
struct CycleBreakdown {
  std::int64_t projection_each = 0;  ///< one of X W^q / X W^k / X W^v
  std::int64_t qr = 0;               ///< Q R^T
  std::int64_t qk = 0;               ///< Q K^T
  std::int64_t relu = 0;             ///< ReLU(QK^T + QR^T)
  std::int64_t av = 0;               ///< ReLU(.) V^T
  std::int64_t layer_norm = 0;       ///< output LayerNorm (proposed model only)
  std::int64_t streaming = 0;        ///< weight/feature data movement

  [[nodiscard]] std::int64_t total() const {
    return 3 * projection_each + qr + qk + relu + av + layer_norm + streaming;
  }
};

class CycleModel {
 public:
  /// 200 MHz accelerator clock, as in Table III.
  static constexpr double kClockNs = 5.0;

  /// Cycle breakdown for one MHSA execution at the given design point.
  [[nodiscard]] CycleBreakdown estimate(const MhsaDesignPoint& point,
                                        bool include_layer_norm = false) const;

  /// The weight share (3 D^2 words) of the streaming stage — the part a
  /// batch-resident invocation pays once instead of per image. The remainder
  /// of `CycleBreakdown::streaming` (2 N D words) is per-image feature I/O.
  [[nodiscard]] std::int64_t weight_stream_cycles(const MhsaDesignPoint& point) const;

  /// Latency in nanoseconds for a breakdown.
  [[nodiscard]] static double latency_ns(const CycleBreakdown& b) { return b.total() * kClockNs; }
  [[nodiscard]] static double latency_ms(const CycleBreakdown& b) {
    return latency_ns(b) * 1e-6;
  }
};

}  // namespace nodetr::hls
