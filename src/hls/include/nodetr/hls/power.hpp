// Activity-based power model (Sec. VI-B7).
//
// The IP core's dynamic power is dominated by the DSP datapath; a linear
// model P = P_static + k_dsp * DSP reproduces the paper's two measurements
// (fixed IP 0.866 W at 137 DSPs, float IP 3.977 W at 680 DSPs) exactly and
// extrapolates to other design points. The PS (Cortex-A53 cluster) draws a
// constant 2.647 W while busy.
#pragma once

#include "nodetr/hls/resources.hpp"

namespace nodetr::hls {

class PowerModel {
 public:
  /// PS-side (CPU) power while executing, from the paper.
  static constexpr double kPsWatts = 2.647;

  /// IP-core power for a design point's resource usage.
  [[nodiscard]] double ip_watts(const ResourceUsage& usage) const;

  /// Total board power while the accelerator runs (PS orchestrates + PL).
  [[nodiscard]] double accelerated_watts(const ResourceUsage& usage) const {
    return kPsWatts + ip_watts(usage);
  }

  /// Energy in millijoules for an execution time in milliseconds.
  [[nodiscard]] static double energy_mj(double watts, double ms) { return watts * ms; }

  /// Energy-efficiency gain of an accelerated run vs a CPU-only run:
  /// (CPU time * CPU power) / (accel time * accel power).
  [[nodiscard]] double efficiency_gain(double cpu_ms, double accel_ms,
                                       const ResourceUsage& usage) const;
};

}  // namespace nodetr::hls
