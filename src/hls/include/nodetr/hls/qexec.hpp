// QuantizedExecutor: run an ENTIRE trained model in fixed point.
//
// This is the functional core of the paper's future work ("implementing the
// proposed model on the FPGA entirely"): a structural interpreter that walks
// the module tree and executes every layer with the bit-accurate fx kernels
// — feature maps in the scheme's feature format, parameters quantized once
// into the parameter format, BatchNorms folded to per-channel scale/shift
// (inference mode), MHSA on the same datapath as the MhsaIpCore, and the
// Euler recursion of OdeBlocks computed in fixed point (z <- z + h*f(z) with
// the step size h a quantized hardware constant).
//
// Unlike the fake-quantization hooks of quantize.hpp (which round float
// results), every intermediate here IS a fixed-point value; outputs match
// what a full-model FPGA datapath would produce bit for bit.
#pragma once

#include "nodetr/fx/qconv.hpp"
#include "nodetr/nn/nn.hpp"
#include "nodetr/ode/ode_block.hpp"

namespace nodetr::hls {

using nodetr::tensor::Tensor;

class QuantizedExecutor {
 public:
  explicit QuantizedExecutor(fx::QuantizationScheme scheme) : scheme_(scheme) {}

  /// Execute `model` (eval mode, inference only) on a float input; the input
  /// is quantized into the feature format at the boundary and the output
  /// dequantized back. Throws for module types without a fixed-point
  /// implementation (training-only modules like Dropout pass through).
  [[nodiscard]] Tensor run(nodetr::nn::Module& model, const Tensor& input);

  /// Fixed-in / fixed-out variant for composing executors.
  [[nodiscard]] fx::FixedTensor run_fixed(nodetr::nn::Module& model, const fx::FixedTensor& x);

  [[nodiscard]] const fx::QuantizationScheme& scheme() const { return scheme_; }

 private:
  [[nodiscard]] fx::FixedTensor dispatch(nodetr::nn::Module& m, const fx::FixedTensor& x);
  [[nodiscard]] fx::FixedTensor quantize_param(const Tensor& t) const;

  fx::QuantizationScheme scheme_;
};

}  // namespace nodetr::hls
