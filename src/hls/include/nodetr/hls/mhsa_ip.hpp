// Functional model of the MHSA IP core (Fig. 4 / Sec. V).
//
// The core executes the paper's *modified* MHSA — learnable 2-D relative
// positional encoding fused as Q R^T (Eq. 15), ReLU activation instead of
// softmax (Eq. 16), and an optional output LayerNorm (Eq. 17) — over one
// feature map. Two datapaths:
//   - float32: reference dataflow, bit-identical to the software module;
//   - fixed:   bit-accurate emulation of the ap_fixed datapath, with feature
//              maps in the scheme's feature format and parameters quantized
//              once into the parameter format (as the DMA'd weights would
//              be). This is what makes Table VIII and Figs. 9-10 exact.
//
// Latency comes from the analytic CycleModel; run() reports the cycles of
// the last invocation so callers (the rt::ZynqBoard) can account time.
#pragma once

#include "nodetr/fx/qops.hpp"
#include "nodetr/hls/cycle_model.hpp"
#include "nodetr/nn/attention.hpp"

namespace nodetr::hls {

using nodetr::tensor::Tensor;

/// The learned tensors an MHSA IP needs, in float (pre-quantization).
struct MhsaWeights {
  Tensor wq, wk, wv;        ///< (D, D)
  Tensor rel_h, rel_w;      ///< (heads, H, Dh), (heads, W, Dh); empty if unused
  Tensor ln_gamma, ln_beta; ///< (D); empty if the core skips LayerNorm

  /// Extract from a trained software module (weights are copied).
  static MhsaWeights from_module(nodetr::nn::MultiHeadSelfAttention& mhsa);
};

class MhsaIpCore {
 public:
  /// Geometry of `point` must match the weight shapes.
  MhsaIpCore(MhsaDesignPoint point, MhsaWeights weights);

  /// Execute on (B, D, H, W) or (D, H, W); returns the same shape in float.
  [[nodiscard]] Tensor run(const Tensor& x);

  /// Cycle cost of the last run() (per batch element x batch).
  [[nodiscard]] const CycleBreakdown& last_cycles() const { return last_cycles_; }
  [[nodiscard]] const MhsaDesignPoint& point() const { return point_; }

  /// Bytes transferred over the HP port per invocation: input + Wq/Wk/Wv
  /// (+ relative tables, LayerNorm params) + output, at 32-bit beats.
  [[nodiscard]] std::int64_t dma_bytes_per_image() const;

  /// The parameter share of the DMA traffic (Wq/Wk/Wv, relative tables,
  /// LayerNorm params) — paid once per START when the design point is
  /// WeightResidency::kBatchResident. This is the *streamed* byte count of
  /// the design point's WeightWire: a block-quantized wire moves the packed
  /// codes + per-block scales, not the logical 32-bit words.
  [[nodiscard]] std::int64_t weight_dma_bytes() const;
  /// The logical float32 size of the same parameters — what a word32 wire
  /// would stream. weight_dma_bytes() == weight_float_bytes() iff the wire
  /// is WeightWire::kWord32; the gap is the DMA saving the quantized wire
  /// buys (DeviceCounters::weight_bytes_float reports it per board).
  [[nodiscard]] std::int64_t weight_float_bytes() const;
  /// The per-image share of the DMA traffic (input + output feature maps).
  [[nodiscard]] std::int64_t io_dma_bytes_per_image() const;
  /// Host -> device share of the per-image traffic (input feature map).
  [[nodiscard]] std::int64_t input_dma_bytes_per_image() const;
  /// Device -> host share of the per-image traffic (output feature map).
  [[nodiscard]] std::int64_t output_dma_bytes_per_image() const;

  /// Fixed-in / fixed-out datapath on one image's tokens (N, D) in the
  /// scheme's feature format — the exact arithmetic a full-model fixed
  /// pipeline composes with (used by QuantizedExecutor).
  [[nodiscard]] fx::FixedTensor run_fixed_tokens(const fx::FixedTensor& tokens) const;

 private:
  [[nodiscard]] Tensor run_tokens_float(const Tensor& tokens) const;
  [[nodiscard]] Tensor run_tokens_fixed(const Tensor& tokens) const;

  MhsaDesignPoint point_;
  MhsaWeights weights_;
  // Pre-quantized parameters for the fixed datapath.
  fx::FixedTensor qwq_, qwk_, qwv_, qrel_h_, qrel_w_, qln_gamma_, qln_beta_;
  CycleBreakdown last_cycles_;
  CycleModel cycle_model_;
};

}  // namespace nodetr::hls
